# Empty compiler generated dependencies file for altis_apps.
# This may be replaced when dependencies are built.
