// Per-application contract glue: which runtime a variant uses, which devices
// a variant may target, and the result struct every app's run() returns.
#pragma once

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/registry.hpp"
#include "perf/device.hpp"
#include "perf/overhead.hpp"

namespace altis::apps {

struct AppResult {
    double kernel_ms = 0.0;
    double non_kernel_ms = 0.0;
    double total_ms = 0.0;
    double error = 0.0;  ///< verification error metric (0 when exact)
};

[[nodiscard]] inline perf::runtime_kind runtime_for(Variant v) {
    return v == Variant::cuda ? perf::runtime_kind::cuda
                              : perf::runtime_kind::sycl;
}

/// The paper's variant/device matrix: the original CUDA code only runs on
/// NVIDIA GPUs; the DPCT-migrated and GPU-optimized SYCL run on CPU and
/// GPUs; the FPGA-refactored variants only target FPGAs.
[[nodiscard]] inline bool variant_allowed(Variant v, const perf::device_spec& d) {
    switch (v) {
        case Variant::cuda:
            return d.kind == perf::device_kind::gpu && d.name != "max_1100";
        case Variant::sycl_base:
        case Variant::sycl_opt:
            return d.kind != perf::device_kind::fpga;
        case Variant::fpga_base:
        case Variant::fpga_opt:
            return d.kind == perf::device_kind::fpga;
    }
    return false;
}

/// Registers an app whose run() follows the standard contract; the registry
/// entry runs `cfg.passes` trials and reports kernel_time / total_time (ms).
void register_standard_app(std::string name, std::string description,
                           std::vector<Variant> variants,
                           AppResult (*run)(const RunConfig&));

/// Registers every application in the suite (idempotent).
void register_all_apps();

/// Opt-in for the out-of-order graph scheduler in apps that were ported to
/// explicit event dependencies (fdtd2d, cfd): ALTIS_OOO=1 in the
/// environment. Off by default so golden figure outputs -- produced through
/// default in-order queues -- stay byte-identical.
[[nodiscard]] inline bool ooo_enabled() {
    const char* v = std::getenv("ALTIS_OOO");
    return v != nullptr && v[0] == '1' && v[1] == '\0';
}

inline const perf::device_spec& resolve_device(const RunConfig& cfg) {
    const perf::device_spec& dev = perf::device_by_name(cfg.device);
    if (!variant_allowed(cfg.variant, dev))
        throw std::invalid_argument(std::string("variant ") +
                                    to_string(cfg.variant) +
                                    " cannot target device " + dev.name);
    return dev;
}

}  // namespace altis::apps
