// Direct unit tests of the timed-region simulator (apps/common/region).
#include "apps/common/region.hpp"

#include <gtest/gtest.h>

#include "perf/model.hpp"

namespace altis::apps {
namespace {

perf::kernel_stats small_kernel(const char* name) {
    perf::kernel_stats k;
    k.name = name;
    k.global_items = 1 << 16;
    k.wg_size = 256;
    k.fp32_ops = 10;
    k.bytes_read = 8;
    k.bytes_written = 4;
    k.static_fp32_ops = 10;
    return k;
}

TEST(TimedRegion, LaunchCountsSumKernelsAndDataflow) {
    timed_region r;
    r.kernels.push_back({small_kernel("a"), 3.0});
    r.kernels.push_back({small_kernel("b"), 2.0});
    r.dataflow.push_back({{small_kernel("c"), small_kernel("d")}, 4.0});
    EXPECT_DOUBLE_EQ(r.total_launches(), 3.0 + 2.0 + 8.0);
    EXPECT_EQ(r.all_kernels().size(), 4u);
}

TEST(TimedRegion, KernelTimeScalesWithCount) {
    const auto& dev = perf::device_by_name("a100");
    timed_region one, five;
    one.kernels.push_back({small_kernel("k"), 1.0});
    five.kernels.push_back({small_kernel("k"), 5.0});
    const auto t1 = simulate_region(one, dev, perf::runtime_kind::sycl);
    const auto t5 = simulate_region(five, dev, perf::runtime_kind::sycl);
    EXPECT_NEAR(t5.kernel_ms() / t1.kernel_ms(), 5.0, 1e-9);
}

TEST(TimedRegion, DataflowGroupTakesMaxNotSum) {
    const auto& dev = perf::device_by_name("stratix_10");
    perf::kernel_stats heavy;
    heavy.name = "heavy";
    heavy.form = perf::kernel_form::single_task;
    perf::loop_info big;
    big.trip_count = 1e7;
    heavy.loops.push_back(big);
    perf::kernel_stats light = heavy;
    light.name = "light";
    light.loops[0].trip_count = 10;

    timed_region group, serial;
    group.dataflow.push_back({{heavy, light}, 1.0});
    serial.kernels.push_back({heavy, 1.0});
    serial.kernels.push_back({light, 1.0});
    const auto tg = simulate_region(group, dev, perf::runtime_kind::sycl);
    const auto ts = simulate_region(serial, dev, perf::runtime_kind::sycl);
    EXPECT_LT(tg.kernel_ms(), ts.kernel_ms());
    // Both pay two launches of non-kernel overhead.
    EXPECT_DOUBLE_EQ(tg.non_kernel_ms(), ts.non_kernel_ms());
}

TEST(TimedRegion, UnsynchronizedRegionDropsKernelTime) {
    const auto& dev = perf::device_by_name("rtx_2080");
    timed_region r;
    r.kernels.push_back({small_kernel("k"), 10.0});
    r.synchronized = false;
    r.syncs = 0.0;
    const auto t = simulate_region(r, dev, perf::runtime_kind::cuda);
    EXPECT_DOUBLE_EQ(t.kernel_ms(), 0.0);
    EXPECT_GT(t.non_kernel_ms(), 0.0);  // submission cost is still observed
}

TEST(TimedRegion, TransferCostAmortizesPayloadAcrossCalls) {
    const auto& dev = perf::device_by_name("rtx_2080");
    timed_region few, many;
    few.transfer_bytes = many.transfer_bytes = 64.0 * 1024 * 1024;
    few.transfer_calls = 1.0;
    many.transfer_calls = 64.0;
    few.syncs = many.syncs = 0.0;
    const auto tf = simulate_region(few, dev, perf::runtime_kind::sycl);
    const auto tm = simulate_region(many, dev, perf::runtime_kind::sycl);
    // Same payload, more fixed per-call costs.
    EXPECT_GT(tm.non_kernel_ms(), tf.non_kernel_ms());
}

TEST(TimedRegion, ExtraNonKernelIsChargedOnce) {
    const auto& dev = perf::device_by_name("rtx_2080");
    timed_region r;
    r.syncs = 0.0;
    r.extra_non_kernel_ns = 5e6;
    const auto t = simulate_region(r, dev, perf::runtime_kind::sycl);
    EXPECT_DOUBLE_EQ(t.non_kernel_ms(), 5.0);
}

TEST(TimedRegion, FpgaKernelsShareDesignFmax) {
    // A slow-clocking kernel in the design drags every kernel's time.
    const auto& dev = perf::device_by_name("stratix_10");
    perf::kernel_stats fast = small_kernel("fast");
    fast.control_complexity = 1;
    fast.args_restrict = true;
    perf::kernel_stats branchy = small_kernel("branchy");
    branchy.control_complexity = 9;

    timed_region alone, with_branchy;
    alone.kernels.push_back({fast, 1.0});
    with_branchy.kernels.push_back({fast, 1.0});
    with_branchy.kernels.push_back({branchy, 0.0});  // in bitstream, never run
    const auto ta = simulate_region(alone, dev, perf::runtime_kind::sycl);
    const auto tb = simulate_region(with_branchy, dev, perf::runtime_kind::sycl);
    EXPECT_GT(tb.kernel_ms(), ta.kernel_ms() * 1.5);
}

TEST(TimedRegion, TotalIsKernelPlusNonKernel) {
    const auto& dev = perf::device_by_name("max_1100");
    timed_region r;
    r.kernels.push_back({small_kernel("k"), 7.0});
    r.transfer_bytes = 1e6;
    r.transfer_calls = 2.0;
    const auto t = simulate_region(r, dev, perf::runtime_kind::sycl);
    EXPECT_DOUBLE_EQ(t.total_ms(), t.kernel_ms() + t.non_kernel_ms());
}

}  // namespace
}  // namespace altis::apps
