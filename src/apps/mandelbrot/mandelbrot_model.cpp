// Model descriptors for Mandelbrot's implementation variants. Dynamic trip
// counts come from mean_iterations() (a deterministic 128x128 probe of the
// same complex window -- escape statistics are resolution-independent).
#include "apps/mandelbrot/mandelbrot.hpp"

namespace altis::apps::mandelbrot {
namespace detail {

namespace {

// FP32 latency of the z = z^2 + c chain: the serial recurrence no FPGA
// datapath can pipeline away within one pixel.
constexpr double kChainLatency = 6.0;

struct tuning {
    int interleave;  // independent pixel chains in flight (single-task)
    int cus;         // compute-unit replication
};

// Per-size bitstream tuning (Table 3 lists three Mandelbrot rows; Sec. 5.5
// scales factors down when retargeting the smaller Agilex).
tuning fpga_tuning(const perf::device_spec& dev, int size) {
    const bool s10 = dev.name == "stratix_10";
    switch (size) {
        case 1: return s10 ? tuning{20, 8} : tuning{16, 6};
        case 2: return s10 ? tuning{40, 10} : tuning{25, 8};
        case 3: return s10 ? tuning{40, 10} : tuning{25, 8};
        default: throw std::invalid_argument("mandelbrot: size must be 1..3");
    }
}

}  // namespace

perf::kernel_stats stats_nd(const params& p, Variant v,
                            const perf::device_spec& dev) {
    (void)dev;
    const double iters = mean_iterations(p);
    perf::kernel_stats k;
    k.name = "mandelbrot_nd";
    k.form = perf::kernel_form::nd_range;
    k.global_items = static_cast<double>(p.pixels());
    k.wg_size = (v == Variant::fpga_base) ? 128 : 256;
    k.fp32_ops = iters * 8.0 + 10.0;
    k.int_ops = iters * 2.0 + 8.0;
    k.bytes_written = 2.0;
    k.divergence = 0.55;  // escape counts vary wildly between neighbours
    k.dep_chain_cycles = iters * kChainLatency;
    k.static_fp32_ops = 10;
    k.static_int_ops = 14;
    k.static_branches = 3;
    k.control_complexity = 3;  // data-dependent escape-loop exit
    k.accessor_args = 1;
    return k;
}

perf::kernel_stats stats_single_task(const params& p,
                                     const perf::device_spec& dev, int size) {
    const double iters = mean_iterations(p);
    const double pixels = static_cast<double>(p.pixels());
    const tuning t = fpga_tuning(dev, size);

    perf::kernel_stats k;
    k.name = "mandelbrot_st";
    k.form = perf::kernel_form::single_task;
    k.bytes_written = 2.0 * pixels;
    k.static_fp32_ops = 10;
    k.static_int_ops = 18;
    k.static_branches = 4;
    k.control_complexity = 2;  // exit test moved off the critical path
    k.accessor_args = 1;
    k.args_restrict = true;
    k.replication = t.cus;

    // Escape loop: II equals the chain latency, but `interleave` independent
    // pixel chains share the pipeline, so effective throughput is
    // interleave/II iterations per cycle (the functional kernel literally
    // interleaves that many pixels).
    perf::loop_info escape;
    escape.name = "escape";
    escape.trip_count = iters * pixels;
    escape.entries = pixels / static_cast<double>(t.interleave);
    escape.initiation_interval = static_cast<int>(kChainLatency);
    escape.unroll = t.interleave;  // cycles = trips * II / interleave
    // Sec. 5.3: [[intel::speculated_iterations]] lowered from the default 4;
    // with 8192-iteration nested loops the discarded work is the headline.
    escape.speculated_iterations = 1;
    k.loops.push_back(escape);
    return k;
}

}  // namespace detail

timed_region region(Variant v, const perf::device_spec& dev, int size) {
    const params p = params::preset(size);
    timed_region r;
    r.name = std::string("mandelbrot/") + to_string(v) + "/size" + std::to_string(size);
    r.include_setup = false;  // timed region excludes one-time setup (warm-up)
    r.transfer_bytes = static_cast<double>(p.pixels()) * 2.0;  // result D2H
    r.transfer_calls = 1.0;
    r.syncs = 1.0;
    if (v == Variant::fpga_opt)
        r.kernels.push_back({detail::stats_single_task(p, dev, size), 1.0});
    else
        r.kernels.push_back({detail::stats_nd(p, v, dev), 1.0});
    return r;
}

std::vector<perf::kernel_stats> fpga_design(const perf::device_spec& dev,
                                            int size) {
    return {detail::stats_single_task(params::preset(size), dev, size)};
}

}  // namespace altis::apps::mandelbrot
