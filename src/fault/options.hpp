// Shared CLI/env wiring for fault injection and the resilient harness; every
// harness binary (altis_run, the fig*/table* regenerators) registers the
// same options:
//
//   --inject <spec>        activate a fault plan (grammar: fault/spec.hpp);
//                          defaults to $ALTIS_FAULT when the env var is set
//   --fail-fast            rethrow the first unrecoverable failure instead of
//                          recording it and continuing the sweep
//   --retries N            max attempts per configuration (default 3)
//   --retry-backoff-ms B   base backoff before the first retry (default 25)
#pragma once

#include <string>

#include "core/option_parser.hpp"
#include "fault/retry.hpp"
#include "fault/spec.hpp"

namespace altis::fault {

void add_fault_options(OptionParser& opts);

struct options {
    std::string spec;  ///< empty: no injection
    bool fail_fast = false;
    retry_policy policy;

    [[nodiscard]] bool enabled() const { return !spec.empty(); }
    /// Reads the registered options (and $ALTIS_FAULT). Does not validate
    /// the spec; call make_plan() for that.
    [[nodiscard]] static options from(const OptionParser& opts);
    /// Compiles the spec (empty spec -> empty plan). Throws spec_error.
    [[nodiscard]] plan make_plan() const;
};

}  // namespace altis::fault
