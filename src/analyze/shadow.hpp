// Observed-access shadow tracking -- the capture half of the ALS-R*/ALS-D1
// race rules. While a sanitize session is active, accessor element accesses,
// instrumented USM reads/writes (observe_read/observe_write) and buffer
// transfers are recorded as coalesced per-thread byte intervals, each
// stamped with the vector clock of the actor that made it; pipe counter
// publications add the happens-before edges that order them.
//
// Cost model (mirrors metrics::collecting()): with no recorder current the
// hooks are one relaxed atomic load and a never-taken branch -- no shadow
// cell is allocated, nothing is logged (the zero-overhead contract pinned by
// tests/analyze/test_race.cpp). With a session active the hot path appends
// to a small thread-local run table; an interval reaches the store (one
// mutex acquisition) only when a run closes: on a clock event of the calling
// actor, on slot eviction, or at session teardown.
//
// Soundness invariant: an actor's clock is only ever advanced from the
// actor's own thread (pipe publish/consume) or from the host thread for the
// host's own clock (submit/wait), and every such event first flushes the
// calling thread's open runs. An open run's accesses therefore always
// flush under the exact clock they were made under.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analyze/clock.hpp"

namespace altis::analyze::shadow {

class store;

/// Actor 0 is the host thread; kernel submissions get actors > 0.
inline constexpr int kHostActor = 0;
/// "No actor": hooks fire as the host, and actor_scope is a no-op.
inline constexpr int kNoActor = -1;

namespace detail {

/// Store of the process-wide current sanitize session (published by
/// recorder::set_current); null means every hook is a cheap no-op.
inline std::atomic<store*> g_store{nullptr};  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

/// Actor executing on this thread. The queue binds it around kernel
/// execution; the thread pool propagates it to workers per job.
inline thread_local int tl_actor = kHostActor;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

/// Process-lifetime count of intervals flushed into any store -- the
/// zero-overhead contract's witness: with no session active it must not
/// move, no matter how many accessor elements are dereferenced.
inline std::atomic<std::uint64_t> g_intervals_flushed{0};  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

/// Out-of-line slow path: coalesce [base+off, base+off+len) into the
/// calling thread's run table for `s`.
void record(store* s, const void* base, std::size_t off, std::size_t len,
            bool write);

void set_current_store(store* s);

}  // namespace detail

/// True while a sanitize session records observed accesses.
[[nodiscard]] inline bool tracking() {
    return detail::g_store.load(std::memory_order_acquire) != nullptr;
}

[[nodiscard]] inline int current_actor() { return detail::tl_actor; }

/// Binds the executing actor to the current thread (RAII). kNoActor leaves
/// the binding untouched -- the hot constructor is two thread-local writes
/// and is used unconditionally on the kernel dispatch path.
class actor_scope {
public:
    explicit actor_scope(int actor) : prev_(detail::tl_actor) {
        if (actor >= 0) detail::tl_actor = actor;
    }
    ~actor_scope() { detail::tl_actor = prev_; }
    actor_scope(const actor_scope&) = delete;
    actor_scope& operator=(const actor_scope&) = delete;

private:
    int prev_;
};

/// Accessor hot-path hook (accessor::operator[]): no-op without a session.
inline void on_accessor_access(const void* base, std::size_t off,
                               std::size_t len, bool write) {
    store* s = detail::g_store.load(std::memory_order_acquire);
    if (s == nullptr) return;
    detail::record(s, base, off, len, write);
}

/// Instrumented-app USM hooks: a kernel (or host code) touching raw USM
/// memory records the access here; the declaration-drift rule ALS-D1 then
/// checks it against what the command group declared via uses_usm().
inline void observe_read(const void* ptr, std::size_t bytes) {
    on_accessor_access(ptr, 0, bytes, /*write=*/false);
}
inline void observe_write(const void* ptr, std::size_t bytes) {
    on_accessor_access(ptr, 0, bytes, /*write=*/true);
}

/// Pipe counter-publication hooks (SPSC monotonic positions, elements in
/// [from, to)). Publish snapshots the producer's clock *before* ticking it,
/// so the snapshot covers everything the producer did up to and including
/// the published items; consume joins the covering snapshot into the
/// consumer *before* ticking, so everything the consumer does next
/// happens-after the production of what it read. Gate on tracking() first.
void on_pipe_publish(const void* pipe, const char* name, std::uint64_t from,
                     std::uint64_t to);
void on_pipe_consume(const void* pipe, const char* name, std::uint64_t from,
                     std::uint64_t to);

/// One closed observed-access interval: absolute byte range [lo, hi),
/// stamped with the acting actor and its interned clock snapshot.
struct interval {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    int actor = kHostActor;
    bool write = false;
    std::uint32_t clock = 0;  ///< index into store::clocks()
};

/// Producer-side publication: ring positions up to `upto` are covered by
/// clock snapshot `clock`.
struct pipe_pub {
    std::uint64_t upto = 0;
    std::uint32_t clock = 0;
};

/// Consumer-side receive of positions [from, to).
struct pipe_recv {
    std::uint64_t from = 0;
    std::uint64_t to = 0;
};

/// Everything observed about one pipe (keyed by the pipe object's address,
/// matching handler::reads_pipe/writes_pipe declarations).
struct pipe_log {
    std::string name;
    int producer = kNoActor;  ///< actor observed publishing
    int consumer = kNoActor;  ///< actor observed consuming
    std::deque<pipe_pub> pubs;  ///< not yet fully consumed publications
    std::vector<pipe_recv> recvs;
};

/// The shadow store of one sanitize session (owned by analyze::recorder).
/// All state is guarded by one mutex; only the thread-local run tables in
/// shadow.cpp are lock-free.
class store {
public:
    store();
    ~store();
    store(const store&) = delete;
    store& operator=(const store&) = delete;

    // ---- clock events (called by the recorder on the host thread) ----

    /// Allocates the next actor ordinal (kernel submissions).
    int new_actor();
    /// Names an actor after its kernel (reported in findings).
    void name_actor(int actor, const std::string& kernel);
    /// Kernel submission: K = join(host, Q[queue]); tick K; tick host.
    /// Sequential submissions then chain the queue clock through the kernel
    /// (Q = K); dataflow members leave Q untouched until on_group_end.
    void on_submit(int actor, int queue, bool dataflow);
    /// Out-of-order submission: K = join(host, dep actors...); tick K; tick
    /// host. No queue-clock chaining -- on an OOO queue the only ordering is
    /// the graph's real edges, so two edge-free kernels stay concurrent and
    /// ALS-R1 sees exactly the schedules the scheduler may produce.
    void on_submit_graph(int actor, const std::vector<int>& dep_actors);
    /// Out-of-order transfer: the copy runs asynchronously under its own
    /// actor, ordered after its graph dependencies; the copied range is
    /// recorded under that actor's clock (not the host's).
    void on_transfer_graph(int actor, const std::vector<int>& dep_actors,
                           const void* base, std::size_t bytes, bool write);
    /// Graph join (queue::wait / event::wait / buffer write-back on an OOO
    /// queue): the host joins the given actors' clocks, then ticks.
    void on_host_join(const std::vector<int>& actors);
    /// Dataflow group joined: Q[queue] absorbs every member's final clock,
    /// and the host joins Q -- end_dataflow() joins the worker threads, so
    /// the host is genuinely ordered after the whole group.
    void on_group_end(int queue, const std::vector<int>& members);
    /// queue::wait(): host joins Q[queue], then ticks.
    void on_wait(int queue);
    /// Host-side transfer touching [base, base+bytes): recorded as a host
    /// observed access under the current host clock.
    void on_transfer(const void* base, std::size_t bytes, bool write);
    /// Registers a declared memory region (accessor span, USM allocation,
    /// observe_* target): the source of the stable "mem#N" labels findings
    /// use instead of raw (ASLR-dependent) pointers.
    void register_region(const void* base, std::size_t bytes);

    /// Flushes every thread's open runs for this store (idempotent; called
    /// when the session stops being current and before analysis).
    void finalize();

    /// Closes one coalesced run into the interval log. Not an app-facing
    /// API: only the thread-local run tables in shadow.cpp call it, but it
    /// must be public because those tables flush from free functions (the
    /// registry walk in finalize(), thread-exit cleanup).
    void flush_run(const void* base, std::uint64_t lo, std::uint64_t hi,
                   int actor, bool write);

    // ---- analysis-side API (after finalize) ----

    /// All intervals, merged per (actor, write, clock) and sorted by
    /// (lo, hi, actor, write): deterministic across runs even though pool
    /// workers carve up kernels nondeterministically.
    [[nodiscard]] std::vector<interval> merged_intervals() const;
    /// a happens-before b?
    [[nodiscard]] bool hb(const interval& a, const interval& b) const;
    [[nodiscard]] const std::string& actor_name(int actor) const;
    /// Stable label for [lo, hi): "mem#N[a..b)" relative to the containing
    /// registered region, or a hex fallback for wild ranges.
    [[nodiscard]] std::string label_range(std::uint64_t lo,
                                          std::uint64_t hi) const;
    [[nodiscard]] const std::unordered_map<const void*, pipe_log>& pipe_logs()
        const {
        return pipes_;
    }
    [[nodiscard]] std::size_t interval_count() const;

private:
    friend void detail::record(store*, const void*, std::size_t, std::size_t,
                               bool);
    friend void on_pipe_publish(const void*, const char*, std::uint64_t,
                                std::uint64_t);
    friend void on_pipe_consume(const void*, const char*, std::uint64_t,
                                std::uint64_t);

    struct region {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        int ordinal = 0;
    };

    /// Interns the current clock of `actor`; caches until the clock moves.
    /// Caller holds mu_.
    std::uint32_t intern_locked(int actor);
    void dirty_locked(int actor) { clock_id_[actor] = -1; }
    void push_interval_locked(std::uint64_t lo, std::uint64_t hi, int actor,
                              bool write);

    mutable std::mutex mu_;
    std::vector<vector_clock> actor_clock_;   ///< index = actor
    std::vector<int> clock_id_;               ///< cached intern id, -1 dirty
    std::vector<std::string> actor_name_;
    std::vector<vector_clock> clocks_;        ///< interned snapshots
    std::unordered_map<int, vector_clock> queue_clock_;
    std::vector<region> regions_;
    std::vector<interval> intervals_;
    std::unordered_map<const void*, pipe_log> pipes_;
    bool finalized_ = false;
};

}  // namespace altis::analyze::shadow
