#include "perf/resource_model.hpp"

#include <algorithm>
#include <cmath>

namespace altis::perf {

using namespace calibration;

namespace {

// Width of the replicated datapath inside one compute unit: full unrolling
// and SIMD vectorization both instantiate the loop body that many times
// (Sec. 5.2: "resource utilization scales approximately linearly with the
// vectorization factor").
double datapath_width(const kernel_stats& k) {
    return std::max(1.0, static_cast<double>(k.unroll) *
                             static_cast<double>(k.simd));
}

// Local-memory read/write ports the datapath requests concurrently.
double local_ports(const kernel_stats& k) {
    if (k.pattern == local_pattern::none) return 0.0;
    return std::clamp(datapath_width(k), 1.0, 32.0);
}

double estimate_fmax(const kernel_stats& k, const device_spec& dev,
                     double alm_frac) {
    double f = dev.fmax_mhz;

    // Control flow on the critical path (data-dependent loop exits, deep
    // nesting) dominates Fmax: ParticleFilter's branch-heavy kernels only
    // reach ~105 MHz in the paper.
    f *= std::pow(0.85, k.control_complexity);

    // Arbiters inserted for congested local memory stretch the clock path.
    if (k.pattern == local_pattern::congested) f *= 0.80;

    // Very wide datapaths (heavy unroll x SIMD) add routing pressure.
    f /= 1.0 + 0.004 * datapath_width(k);

    // Local-memory port pressure: SIMD lanes multiply the concurrent ports
    // on every shared array; past ~16 ports the routed memory system melts
    // the clock (Sec. 5.2 case 2: SRAD at SIMD 8 on eleven arrays).
    if (k.pattern != local_pattern::none) {
        const double ports =
            static_cast<double>(k.local_arrays) * std::max(1, k.simd);
        f /= 1.0 + 0.02 * std::max(0.0, ports - 16.0);
    }

    // Placement pressure: congested devices close timing at lower clocks.
    f *= 1.0 - 0.30 * std::max(0.0, alm_frac - 0.5);

    return std::min(f, dev.fmax_mhz);
}

}  // namespace

resource_usage estimate_kernel_resources(const kernel_stats& k,
                                         const device_spec& dev) {
    resource_usage u;
    const double width = datapath_width(k);
    const double repl = std::max(1, k.replication);

    // --- DSPs: FP datapath, replicated by unroll x SIMD x compute units.
    double dsps = (k.static_fp32_ops * kDspsPerFp32Op +
                   k.static_fp64_ops * kDspsPerFp64Op) *
                  width;

    // --- ALMs: arithmetic, control, argument interfaces. Unrolled copies
    // share control/steering logic, so ALMs grow sublinearly in the width.
    const double alm_width = 1.0 + kWidthAlmFrac * (width - 1.0);
    double alms = (k.static_fp32_ops * kAlmsPerFp32Op +
                   k.static_fp64_ops * kAlmsPerFp64Op +
                   k.static_int_ops * kAlmsPerIntOp +
                   k.static_branches * kAlmsPerBranch) *
                  alm_width;
    alms += k.accessor_args * (k.pass_accessor_objects ? kAlmsPerAccessorObjArg
                                                       : kAlmsPerPointerArg);

    // --- BRAMs: local memory. Dynamically-sized DPCT accessors force the
    // compiler to assume 16 KiB per array (Sec. 4); exact sizing via
    // group_local_memory_for_overwrite uses the true footprint.
    double brams = 0.0;
    if (k.pattern != local_pattern::none && k.local_arrays > 0) {
        const double bytes_per_array =
            k.dynamic_local_size
                ? kDynamicLocalBytes
                : std::max(1.0, k.local_mem_bytes /
                                    static_cast<double>(k.local_arrays));
        const double blocks_per_array = std::ceil(bytes_per_array / kM20kBytes);
        // Banked/replicated memories duplicate blocks to serve the ports the
        // unrolled datapath requests; each M20K offers two ports.
        const double port_copies =
            k.pattern == local_pattern::banked
                ? std::max(1.0, std::ceil(local_ports(k) / 2.0))
                : 1.0;
        brams = static_cast<double>(k.local_arrays) * blocks_per_array *
                port_copies;
    }
    if (k.pass_accessor_objects)
        brams += k.accessor_args * kBramsPerAccessorObjArg;

    // --- Arbitration logic for congested local memories (Sec. 5.2, case 3).
    if (k.pattern == local_pattern::congested)
        alms += k.local_arrays * local_ports(k) * kAlmsPerArbiterPort;

    u.alms = alms * repl;
    u.brams = brams * repl;
    u.dsps = dsps * repl;

    u.alm_frac = u.alms / static_cast<double>(dev.total_alms);
    u.bram_frac = u.brams / static_cast<double>(dev.total_brams);
    u.dsp_frac = u.dsps / static_cast<double>(dev.total_dsps);

    u.fmax_mhz = estimate_fmax(k, dev, u.alm_frac);

    // Timing violations the paper reports: unrolling a loop that accesses
    // arbiter-managed local memory (Sec. 5.2, case 3); unroll/SIMD beyond the
    // banking limit (Sec. 5.2, case 1: LavaMD past 30x); large work-groups on
    // a congested memory system (Sec. 4).
    if (k.pattern == local_pattern::congested && k.unroll > 1) {
        u.timing_clean = false;
        u.failure_reason = "timing violation: unrolled loop on arbiter-managed "
                           "local memory";
    } else if (k.pattern == local_pattern::banked && datapath_width(k) > 32.0) {
        u.timing_clean = false;
        u.failure_reason = "timing violation: datapath exceeds local-memory "
                           "banking limit";
    } else if (k.pattern == local_pattern::congested && k.wg_size > 128.0) {
        u.timing_clean = false;
        u.failure_reason = "timing violation: congested memory system with "
                           "large work-group";
    }

    return u;
}

resource_usage estimate_design_resources(std::span<const kernel_stats> kernels,
                                         const device_spec& dev) {
    resource_usage total;
    total.alms = kShellAlmFrac * static_cast<double>(dev.total_alms);
    total.brams = kShellBramFrac * static_cast<double>(dev.total_brams);
    total.dsps = 0.0;
    total.fmax_mhz = dev.fmax_mhz;

    for (const auto& k : kernels) {
        const resource_usage u = estimate_kernel_resources(k, dev);
        total.alms += u.alms;
        total.brams += u.brams;
        total.dsps += u.dsps;
        total.fmax_mhz = std::min(total.fmax_mhz, u.fmax_mhz);
        if (!u.timing_clean && total.timing_clean) {
            total.timing_clean = false;
            total.failure_reason = k.name + ": " + u.failure_reason;
        }
    }

    total.alm_frac = total.alms / static_cast<double>(dev.total_alms);
    total.bram_frac = total.brams / static_cast<double>(dev.total_brams);
    total.dsp_frac = total.dsps / static_cast<double>(dev.total_dsps);

    if (total.alm_frac > kFitLimit || total.bram_frac > kFitLimit ||
        total.dsp_frac > kFitLimit) {
        total.fits = false;
        if (total.failure_reason.empty())
            total.failure_reason = "placement failure: design exceeds device "
                                   "resources";
    }
    return total;
}

resource_usage estimate_design_resources(const std::vector<kernel_stats>& kernels,
                                         const device_spec& dev) {
    return estimate_design_resources(
        std::span<const kernel_stats>(kernels.data(), kernels.size()), dev);
}

}  // namespace altis::perf
