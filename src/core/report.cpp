#include "core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/result_database.hpp"

namespace altis {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size())
        throw std::invalid_argument("table row width mismatch");
    rows_.push_back(std::move(row));
}

void Table::print(std::ostream& out) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "| " : " | ") << std::left
                << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        out << " |\n";
    };
    auto print_rule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
        }
        out << "-|\n";
    };

    print_row(header_);
    print_rule();
    for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double value, int digits) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return os.str();
}

std::string Table::percent(double fraction) {
    return num(fraction * 100.0, 1) + "%";
}

SeriesBlock::SeriesBlock(std::string title, std::vector<std::string> categories)
    : title_(std::move(title)), table_([&categories] {
          std::vector<std::string> header{"series"};
          header.insert(header.end(), categories.begin(), categories.end());
          return header;
      }()) {}

void SeriesBlock::add_series(const std::string& label,
                             const std::vector<double>& values, int digits) {
    std::vector<std::string> row{label};
    for (double v : values) row.push_back(Table::num(v, digits));
    table_.add_row(std::move(row));
}

void SeriesBlock::print(std::ostream& out) const {
    out << "== " << title_ << " ==\n";
    table_.print(out);
    out << '\n';
}

void print_outcomes(const ResultDatabase& db, std::ostream& out) {
    const auto& outcomes = db.outcomes();
    if (outcomes.empty()) return;
    std::size_t ok = 0, retried = 0, failed = 0, skipped = 0;
    std::size_t deadline = 0, quarantined = 0, cancelled = 0;
    for (const auto& oc : outcomes) {
        if (oc.status == "ok") ++ok;
        else if (oc.status == "retried") ++retried;
        else if (oc.status == "failed") ++failed;
        else if (oc.status == "deadline") ++deadline;
        else if (oc.status == "quarantined") ++quarantined;
        else if (oc.status == "cancelled") ++cancelled;
        else ++skipped;
    }
    out << "outcomes: " << ok << " ok, " << retried << " retried, " << failed
        << " failed, " << skipped << " skipped";
    // Only populated resilience buckets are printed, keeping reports from
    // runs without the supervisor byte-identical to older output.
    if (deadline != 0) out << ", " << deadline << " deadline";
    if (quarantined != 0) out << ", " << quarantined << " quarantined";
    if (cancelled != 0) out << ", " << cancelled << " cancelled";
    out << '\n';
    for (const auto& oc : outcomes) {
        if (oc.status == "ok") continue;
        out << "  [" << oc.status << "] " << oc.config;
        if (oc.attempts > 1) out << " (" << oc.attempts << " attempts)";
        if (!oc.error.empty()) out << " -- " << oc.error;
        out << '\n';
    }
    out << '\n';
}

}  // namespace altis
