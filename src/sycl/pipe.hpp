// Inter-kernel pipes (Intel FPGA extension analogue). A pipe is a bounded
// blocking FIFO connecting two kernels of one dataflow group; the optimized
// KMeans design (paper Fig. 3) streams every point's mapping through a pipe
// instead of bouncing it off global memory.
//
// Divergence from Intel SYCL: Intel pipes are static program-scope classes
// (pipe<id, T, capacity>::write). syclite pipes are objects captured by
// reference, which keeps them testable; capacity semantics are identical.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace syclite {

class pipe_deadlock : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

template <typename T>
class pipe {
public:
    explicit pipe(std::size_t capacity = 64)
        : capacity_(capacity), ring_(capacity) {
        if (capacity == 0) throw std::invalid_argument("pipe capacity must be > 0");
    }

    pipe(const pipe&) = delete;
    pipe& operator=(const pipe&) = delete;

    /// Blocking write; throws pipe_deadlock if the consumer never drains
    /// (guards against kernels mistakenly run outside a dataflow group).
    void write(const T& value) {
        std::unique_lock lock(mutex_);
        if (!not_full_.wait_for(lock, kDeadlockTimeout,
                                [&] { return count_ < capacity_; }))
            throw pipe_deadlock("pipe::write timed out -- are both kernels "
                                "running in a dataflow group?");
        ring_[(head_ + count_) % capacity_] = value;
        ++count_;
        not_empty_.notify_one();
    }

    /// Blocking read; throws pipe_deadlock if no producer ever writes.
    T read() {
        std::unique_lock lock(mutex_);
        if (!not_empty_.wait_for(lock, kDeadlockTimeout,
                                 [&] { return count_ > 0; }))
            throw pipe_deadlock("pipe::read timed out -- are both kernels "
                                "running in a dataflow group?");
        T value = ring_[head_];
        head_ = (head_ + 1) % capacity_;
        --count_;
        not_full_.notify_one();
        return value;
    }

    [[nodiscard]] bool try_write(const T& value) {
        std::lock_guard lock(mutex_);
        if (count_ == capacity_) return false;
        ring_[(head_ + count_) % capacity_] = value;
        ++count_;
        not_empty_.notify_one();
        return true;
    }

    [[nodiscard]] bool try_read(T& value) {
        std::lock_guard lock(mutex_);
        if (count_ == 0) return false;
        value = ring_[head_];
        head_ = (head_ + 1) % capacity_;
        --count_;
        not_full_.notify_one();
        return true;
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }

private:
    static constexpr std::chrono::seconds kDeadlockTimeout{30};

    std::size_t capacity_;
    std::vector<T> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::mutex mutex_;
    std::condition_variable not_full_, not_empty_;
};

}  // namespace syclite
