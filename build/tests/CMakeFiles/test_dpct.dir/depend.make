# Empty dependencies file for test_dpct.
# This may be replaced when dependencies are built.
