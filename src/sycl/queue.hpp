// Queue, event and the simulated timeline. Kernels execute functionally on
// the host; each submission advances a simulated clock using the perf models
// of the queue's device and runtime (DESIGN.md Sec. 4):
//
//   submit --(launch overhead: non-kernel)--> start --(kernel model)--> end
//
// Events expose the simulated start/end like sycl::event profiling info.
// Dataflow groups (begin_dataflow/end_dataflow) run their kernels on real
// concurrent threads -- required for pipe communication -- and overlap them
// on the simulated timeline (paper Fig. 3).
//
// Error model (SYCL-conformant, see sycl/error.hpp): a queue may carry an
// async_handler. Errors raised by kernel execution -- including injected
// faults from an active altis::fault plan -- are then collected and
// delivered as an exception_list at wait()/end_dataflow() boundaries, in
// submission order, and the queue remains usable. Without a handler the
// first error is (re)thrown at the point it is observed.
//
// Queue properties (sycl::property::queue analogue): the default in_order
// queue executes every submission eagerly and synchronously, exactly as
// before the command graph existed. queue_property::out_of_order routes
// kernels and copies through a graph::scheduler instead -- edges from
// handler::depends_on events and accessor/USM-implied conflicts, ready nodes
// dispatched asynchronously on the thread pool, errors delivered as an
// exception_list at the next graph join (wait()/throw_asynchronous). See
// sycl/graph.hpp and DESIGN.md "Command graph & scheduling".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "mem/transfer.hpp"
#include "perf/device.hpp"
#include "perf/overhead.hpp"
#include "sycl/error.hpp"
#include "sycl/event.hpp"
#include "sycl/graph.hpp"
#include "sycl/handler.hpp"
#include "trace/session.hpp"

namespace syclite {

namespace trace = altis::trace;

/// Execution-ordering property fixed at queue construction.
enum class queue_property {
    in_order,      ///< eager synchronous execution in submission order
    out_of_order,  ///< DAG scheduler; only declared dependencies order work
};

class queue {
public:
    explicit queue(const perf::device_spec& dev,
                   perf::runtime_kind rt = perf::runtime_kind::sycl,
                   async_handler handler = {},
                   queue_property prop = queue_property::in_order);
    queue(const std::string& device_name,
          perf::runtime_kind rt = perf::runtime_kind::sycl,
          async_handler handler = {},
          queue_property prop = queue_property::in_order);
    queue(const perf::device_spec& dev, queue_property prop)
        : queue(dev, perf::runtime_kind::sycl, {}, prop) {}
    queue(const std::string& device_name, queue_property prop)
        : queue(device_name, perf::runtime_kind::sycl, {}, prop) {}
    ~queue();

    queue(const queue&) = delete;
    queue& operator=(const queue&) = delete;

    [[nodiscard]] const perf::device_spec& device() const { return dev_; }
    [[nodiscard]] perf::runtime_kind runtime() const { return rt_; }
    [[nodiscard]] bool is_in_order() const { return sched_ == nullptr; }

    /// Installs (or clears) the asynchronous error handler; see the header
    /// comment for the delivery contract.
    void set_async_handler(async_handler handler) {
        handler_ = std::move(handler);
    }
    [[nodiscard]] bool has_async_handler() const {
        return static_cast<bool>(handler_);
    }

    template <typename CGF>
    event submit(CGF&& cgf) {
        handler h;
        h.begin_capture(recorder_, /*track_ranges=*/sched_ != nullptr);
        cgf(h);
        // Dataflow groups defer/overlap their own way, even on OOO queues.
        return sched_ != nullptr && !in_dataflow_
                   ? finish_submit_graph(std::move(h))
                   : finish_submit(std::move(h));
    }

    /// Host synchronization (cudaDeviceSynchronize / queue::wait analogue);
    /// charges sync overhead to the non-kernel region, then delivers any
    /// pending asynchronous errors (sycl::queue::wait_and_throw semantics).
    void wait();

    /// Delivers pending asynchronous errors without synchronizing: calls the
    /// async_handler with the accumulated exception_list, or rethrows the
    /// first pending error when no handler is installed. No-op when clean.
    void throw_asynchronous();

    /// All kernels submitted until end_dataflow() run concurrently (real
    /// threads; pipes may connect them) and overlap on the simulated
    /// timeline. Nesting is not allowed. Prefer dataflow_guard (below) so an
    /// exception cannot leave the group latched open.
    void begin_dataflow();
    /// Joins the dataflow kernels and returns their events. Worker errors
    /// are delivered here: pipe deadlocks are merged into one structured
    /// dataflow_error naming every blocked kernel; with an async_handler the
    /// full list arrives in submission order and the queue stays usable.
    std::vector<event> end_dataflow();
    /// Abandons an open dataflow group: joins any worker threads and
    /// discards their pending stats and errors. Safe to call when no group
    /// is open. Used by dataflow_guard on exception escape.
    void abort_dataflow() noexcept;

    /// Modeled host->device / device->host copies; mirror the cudaMemcpy
    /// calls of the original Altis code. Functionally a memcpy (buffers are
    /// host-backed); on the timeline a PCIe transfer. Large trivially
    /// copyable spans take the mem::copy_bytes fast path -- chunked parallel
    /// memcpy jobs on the thread pool. Wall-clock only: the simulated PCIe
    /// charge from annotate_transfer is identical either way.
    template <typename T>
    event copy_to_device(buffer<T>& dst, const T* src) {
        if constexpr (std::is_trivially_copyable_v<T>) {
            if (sched_ != nullptr)
                // Asynchronous on the graph: a node writing the buffer's
                // range, ordered after conflicting in-flight commands by the
                // implied-edge machinery; the returned event joins it.
                return submit_transfer_graph(/*to_device=*/true,
                                             dst.host_data(), src,
                                             dst.byte_size());
        } else {
            if (sched_ != nullptr) join_graph();
        }
        annotate_transfer(static_cast<double>(dst.byte_size()));
        if (recorder_ != nullptr)
            record_transfer_node(/*to_device=*/true, dst.host_data(),
                                 dst.byte_size());
        if constexpr (std::is_trivially_copyable_v<T>)
            altis::mem::copy_bytes(dst.host_data(), src, dst.byte_size());
        else
            std::copy(src, src + dst.size(), dst.host_data());
        return events_.back();
    }
    template <typename T>
    event copy_from_device(const buffer<T>& src, T* dst) {
        if constexpr (std::is_trivially_copyable_v<T>) {
            if (sched_ != nullptr) {
                // Write-back is a targeted graph join: the copy node depends
                // (through implied edges) on every producer of the buffer's
                // range, and waiting on it drains exactly that chain.
                event e = submit_transfer_graph(/*to_device=*/false, dst,
                                                src.host_data(),
                                                src.byte_size());
                e.wait();
                return e;
            }
        } else {
            if (sched_ != nullptr) join_graph();
        }
        annotate_transfer(static_cast<double>(src.byte_size()));
        if (recorder_ != nullptr)
            record_transfer_node(/*to_device=*/false, src.host_data(),
                                 src.byte_size());
        if constexpr (std::is_trivially_copyable_v<T>)
            altis::mem::copy_bytes(dst, src.host_data(), src.byte_size());
        else
            std::copy(src.host_data(), src.host_data() + src.size(), dst);
        return events_.back();
    }
    /// Timing-only transfer annotation (no functional copy); also the
    /// injection point for `transfer` faults.
    void annotate_transfer(double bytes);

    /// Charge arbitrary non-kernel time (library temp allocations, etc.).
    void annotate_overhead_ns(double ns);

    /// FPGA only: pin the design Fmax to that of a full bitstream (all
    /// kernels compiled together); subsequent kernel timings use it instead
    /// of per-kernel estimates. Matches simulate_region's design-level Fmax.
    void set_design(const std::vector<perf::kernel_stats>& design_kernels);

    // ---- simulated timeline ----
    [[nodiscard]] double sim_now_ns() const { return sim_now_ns_; }
    [[nodiscard]] double kernel_ns() const { return kernel_ns_; }
    [[nodiscard]] double non_kernel_ns() const { return non_kernel_ns_; }
    void reset_timers();
    /// Charges the runtime's one-time setup cost (context/JIT) to the
    /// non-kernel region; apps call this at the start of a timed region.
    void charge_setup();

    [[nodiscard]] const std::vector<event>& events() const { return events_; }

    /// Tracing. The constructor adopts trace::session::current(), so a
    /// session activated around queue construction observes every command;
    /// set_trace() overrides (nullptr detaches). Spans land on the simulated
    /// clock as commands complete.
    void set_trace(trace::session* s) { trace_ = s; }
    [[nodiscard]] trace::session* trace() const { return trace_; }

    /// Replaces the thread pool the graph scheduler dispatches ready nodes
    /// onto (default: thread_pool::global()). Benchmarks hand in a dedicated
    /// multi-worker pool to measure overlap on single-core hosts. The pool
    /// must outlive the queue or be swapped out again before dying. No-op on
    /// in-order queues.
    void set_graph_pool(thread_pool* pool) {
        if (sched_ != nullptr) sched_->set_pool(pool);
    }

    /// Sanitizing. The constructor adopts analyze::recorder::current() the
    /// same way, so `--sanitize` captures every submission's command graph
    /// with no app changes; set_recorder() overrides (nullptr detaches).
    void set_recorder(analyze::recorder* r);
    [[nodiscard]] analyze::recorder* recorder() const { return recorder_; }

private:
    /// One failed dataflow worker, keyed by submission order.
    struct worker_error {
        std::size_t index = 0;
        std::string kernel;
        std::exception_ptr error;
        bool pipe_blocked = false;  ///< failure was a pipe deadlock-timeout
        bool cancelled = false;     ///< cooperative cancellation, not a fault
        std::string detail;         ///< deadlock message (pipe, occupancy)
    };

    /// One dataflow kernel accepted but not yet started: under a dataflow
    /// group, submissions are deferred and launched together at
    /// end_dataflow(), which lets the sanitizer lint the group's complete
    /// pipe topology before any worker thread can block on a pipe.
    struct pending_work {
        std::size_t index = 0;
        std::uint64_t cg = 0;  ///< recorder command-group id (0: none)
        std::string kernel;
        detail::small_function<void(thread_pool&)> exec;
        int actor = -1;  ///< shadow actor bound around execution (-1: none)
    };

    event finish_submit(handler&& h);
    /// Out-of-order path of submit(): two-phase enqueue onto the graph
    /// scheduler (enqueue -> recorder/trace/events bookkeeping -> release).
    event finish_submit_graph(handler&& h);
    /// Async copy as a graph node. `device` is the buffer's backing range
    /// (the conflict identity kernels declare); `host` the app-side pointer.
    event submit_transfer_graph(bool to_device, void* dst_ptr,
                                const void* src_ptr, std::size_t bytes);
    /// Joins the whole graph and folds its modeled timeline into the queue
    /// clocks; queues node errors for async delivery (cancellation rethrows)
    /// and starts a fresh epoch. No-op on in-order queues.
    void join_graph();
    /// Moves settled node failures into async_errors_ (submission order)
    /// without joining; rethrows directly on cancellation.
    void collect_graph_errors();
    /// Appends the kernel event; when `name` is non-null its string is moved
    /// into the event instead of copying stats.name (submissions own their
    /// handler, so finish_submit can donate the name it no longer needs).
    event record(const perf::kernel_stats& stats, double duration_ns,
                 std::string* name = nullptr);
    void record_error_span(const std::string& label);
    void record_transfer_node(bool to_device, const void* base,
                              std::size_t bytes);
    void deliver(exception_list errors);
    void launch_dataflow_workers();

    const perf::device_spec& dev_;
    perf::runtime_kind rt_;
    trace::session* trace_ = nullptr;
    /// Session-timeline offset for emitted spans: each queue's simulated
    /// clock starts at 0, but a session may outlive many queues (altis_run
    /// over several apps), so spans are shifted to append after whatever the
    /// session already holds. Queue-local timers/events are unaffected.
    double trace_base_ns_ = 0.0;
    double design_fmax_mhz_ = 0.0;  ///< 0: estimate per kernel

    double sim_now_ns_ = 0.0;
    double kernel_ns_ = 0.0;
    double non_kernel_ns_ = 0.0;
    std::vector<event> events_;

    async_handler handler_;
    /// Errors from sequential submissions awaiting delivery (handler set).
    std::vector<std::exception_ptr> async_errors_;

    bool in_dataflow_ = false;
    std::vector<perf::kernel_stats> pending_stats_;
    std::vector<pending_work> pending_work_;
    std::vector<std::thread> pending_threads_;
    std::vector<worker_error> worker_errors_;
    std::mutex worker_errors_mutex_;

    analyze::recorder* recorder_ = nullptr;
    int queue_id_ = -1;       ///< recorder-assigned ordinal
    int current_group_ = -1;  ///< open dataflow group id (recorder active)

    /// Non-null iff constructed queue_property::out_of_order.
    std::unique_ptr<graph::scheduler> sched_;
    /// Simulated time the current graph epoch opened at; the overlap metric
    /// compares the epoch's modeled busy time against horizon - this.
    double epoch_start_ns_ = 0.0;
    /// Launch overhead already charged to non_kernel_ns_ this epoch, so the
    /// join's remainder fold does not double-count it.
    double epoch_launch_ns_ = 0.0;
};

/// RAII dataflow group: begins the group on construction; join() ends it and
/// returns the events. If the scope unwinds before join() -- a kernel threw,
/// an allocation failed -- the group is aborted instead of leaving the queue
/// latched in dataflow mode.
class dataflow_guard {
public:
    explicit dataflow_guard(queue& q) : q_(q) { q.begin_dataflow(); }
    ~dataflow_guard() {
        if (open_) q_.abort_dataflow();
    }
    dataflow_guard(const dataflow_guard&) = delete;
    dataflow_guard& operator=(const dataflow_guard&) = delete;

    /// Ends the group (see queue::end_dataflow). May throw; the guard is
    /// disarmed first, so the queue is never left latched.
    std::vector<event> join() {
        open_ = false;
        return q_.end_dataflow();
    }

private:
    queue& q_;
    bool open_ = true;
};

}  // namespace syclite
