// Regenerates the result behind Figure 3: KMeans' baseline FPGA design
// (four kernels per Lloyd iteration communicating through DDR) against the
// optimized dataflow design (mapCenters + resetAccFin connected by pipes,
// one launch for the whole clustering). Prints the per-design breakdown and
// the speedup the pipes deliver (~510x in the paper, Sec. 5.3 / Fig. 4).
// Also executes both designs *functionally* at size 1 and verifies they
// produce identical clusterings.
#include <iostream>

#include "apps/common/app.hpp"
#include "apps/kmeans/kmeans.hpp"
#include "core/report.hpp"
#include "trace/harness.hpp"

int main(int argc, char** argv) {
    altis::trace::cli_harness trace_harness("fig3_kmeans_pipes");
    if (const int rc = trace_harness.parse(argc, argv); rc >= 0) return rc;

    using altis::Table;
    using altis::Variant;
    namespace apps = altis::apps;
    namespace perf = altis::perf;

    const perf::device_spec& s10 = perf::device_by_name("stratix_10");

    std::cout << "Figure 3: KMeans FPGA designs -- global-memory baseline vs "
                 "pipe dataflow (Stratix 10)\n\n";

    Table t({"Design", "Size", "Launches", "Kernel [ms]", "Non-kernel [ms]",
             "Total [ms]"});
    for (int size : {1, 2, 3}) {
        for (const Variant v : {Variant::fpga_base, Variant::fpga_opt}) {
            const auto region = apps::kmeans::region(v, s10, size);
            const auto est =
                apps::simulate_region(region, s10, perf::runtime_kind::sycl);
            t.add_row({v == Variant::fpga_base ? "baseline (4 kernels/iter)"
                                               : "optimized (pipes, 1 launch)",
                       std::to_string(size),
                       Table::num(region.total_launches(), 0),
                       Table::num(est.kernel_ms(), 2),
                       Table::num(est.non_kernel_ms(), 2),
                       Table::num(est.total_ms(), 2)});
        }
    }
    t.print(std::cout);

    for (int size : {1, 2, 3}) {
        const auto base = apps::simulate_region(
            apps::kmeans::region(Variant::fpga_base, s10, size), s10,
            perf::runtime_kind::sycl);
        const auto opt = apps::simulate_region(
            apps::kmeans::region(Variant::fpga_opt, s10, size), s10,
            perf::runtime_kind::sycl);
        std::cout << "size " << size << ": pipes speedup = "
                  << Table::num(base.total_ms() / opt.total_ms(), 1) << "x\n";
    }
    std::cout << "(paper: ~510x at size 3)\n\n";

    // Functional cross-check of the two designs at size 1.
    altis::RunConfig cfg;
    cfg.size = 1;
    cfg.device = "stratix_10";
    cfg.variant = Variant::fpga_base;
    const auto base = apps::kmeans::run(cfg);
    cfg.variant = Variant::fpga_opt;
    const auto opt = apps::kmeans::run(cfg);
    std::cout << "functional check (size 1): baseline err=" << base.error
              << ", dataflow err=" << opt.error
              << " -- both verified against the host reference\n";
    return trace_harness.finish();
}
