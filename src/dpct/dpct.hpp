// Simulated DPC++ Compatibility Tool (DPCT): reproduces the paper's
// migration experience (Sec. 2.1 / 3.2) as a deterministic transformation
// from a static inventory of CUDA constructs ("what intercept-build + dpct
// would walk") to the diagnostics DPCT emits, the auto-migrated fraction,
// and the issues DPCT does *not* flag (device-side new/delete, virtual
// functions) that break functional correctness until fixed by hand.
//
// Calibration targets from the paper: Altis is ~40k lines of CUDA, DPCT
// inserted 2,535 warnings, ~90-95% of the code migrates automatically, and
// after addressing the warnings ~70% of the applications run without
// errors; the rest need the Sec. 3.2.2 manual fixes.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace altis::dpct {

/// Static inventory of the CUDA constructs in one application's sources.
struct cuda_source_manifest {
    std::string app;
    int lines_of_code = 0;
    int kernels = 0;

    int cuda_event_timer_pairs = 0;  ///< cudaEvent start/stop pairs
    int mem_advise_calls = 0;        ///< cudaMemAdvise
    int barriers = 0;                ///< __syncthreads() sites
    int barriers_detectable_local = 0;  ///< DPCT proves local fence scope
    int error_code_checks = 0;       ///< cudaError_t result checks
    int texture_refs = 0;
    int constant_memory_objects = 0;  ///< __constant__ globals
    int thrust_calls = 0;            ///< Thrust/CUB -> oneDPL mappings
    int default_wg_size_kernels = 0; ///< launches above the FPGA default cap

    // Constructs DPCT migrates *silently wrong* or not at all (Sec. 3.2.2).
    int device_new_delete = 0;   ///< new/delete inside kernels
    int virtual_functions = 0;   ///< virtual dispatch in device code
    int pow_square_calls = 0;    ///< pow(a,2): silently rewritten to a*a
};

/// The DPCT diagnostics relevant to the paper's migration, with their real
/// identifiers.
enum class diagnostic_id {
    DPCT1003,  ///< migrated API differs in error-code semantics
    DPCT1012,  ///< kernel time measurement moved to std::chrono
    DPCT1049,  ///< work-group size may exceed device limit
    DPCT1059,  ///< texture/image API mapping needs review
    DPCT1063,  ///< mem_advise advice is device-defined
    DPCT1065,  ///< barrier(): consider local fence space for performance
    DPCT1084,  ///< constant-memory wrapper usage needs review
};

[[nodiscard]] const char* to_string(diagnostic_id id);
[[nodiscard]] const char* description(diagnostic_id id);

struct diagnostic {
    diagnostic_id id;
    int count = 0;
    bool needs_manual_fix = false;
};

/// Outcome of migrating one application.
struct migration_result {
    std::string app;
    std::vector<diagnostic> diagnostics;
    int loc = 0;
    int auto_migrated_loc = 0;  ///< lines DPCT converted without hints
    /// Issues DPCT does not warn about; each entry is a Sec. 3.2.2 category.
    std::vector<std::string> silent_issues;
    /// Whether the app executes correctly after addressing only the inline
    /// warnings (the paper's ~70%); false when silent issues remain.
    bool runs_after_warning_fixes = true;

    [[nodiscard]] int warning_count() const;
    [[nodiscard]] double auto_migrated_fraction() const;
};

/// Deterministic migration of one manifest.
[[nodiscard]] migration_result migrate(const cuda_source_manifest& m);

/// The manifests of the 13 Altis Level-2 configurations, calibrated so the
/// suite totals match the paper (~40k LoC, 2,535 warnings, ~70% running).
[[nodiscard]] std::span<const cuda_source_manifest> altis_manifests();

struct suite_report {
    std::vector<migration_result> apps;
    int total_loc = 0;
    int total_warnings = 0;
    double auto_migrated_fraction = 0.0;
    double runs_without_errors_fraction = 0.0;
};

[[nodiscard]] suite_report migrate_suite(
    std::span<const cuda_source_manifest> manifests);

/// Human-readable report (the `migration_report` example binary prints it).
void render(const suite_report& report, std::ostream& out);

}  // namespace altis::dpct
