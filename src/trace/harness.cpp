#include "trace/harness.hpp"

#include <iostream>
#include <utility>

namespace altis::trace {

cli_harness::cli_harness(std::string name) : session_(std::move(name)) {
    add_trace_options(opts_);
    fault::add_fault_options(opts_);
}

int cli_harness::parse(int argc, char** argv) {
    try {
        if (!opts_.parse(argc, argv, std::cout)) return 0;  // --help
    } catch (const OptionError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
    topts_ = options::from(opts_);
    fopts_ = fault::options::from(opts_);
    if (fopts_.enabled()) {
        try {
            plan_.emplace(fopts_.make_plan());
        } catch (const fault::spec_error& e) {
            std::cerr << "error: bad --inject spec: " << e.what() << "\n";
            return 2;
        }
        fault_scope_.emplace(*plan_);
    }
    // Only install the session when asked to: an inactive bench collects no
    // spans and behaves exactly as before the trace layer existed.
    if (topts_.enabled()) scope_.emplace(session_);
    return -1;
}

int cli_harness::finish() {
    if (!topts_.enabled()) return 0;
    scope_.reset();
    return finish_session(session_, topts_, session_.last_end_ns(), std::cout,
                          std::cerr)
               ? 0
               : 2;
}

}  // namespace altis::trace
