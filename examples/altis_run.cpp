// Suite runner CLI: the Altis-style entry point. Runs one application (or
// every registered application) functionally on a simulated device, verifies
// the results against the host reference, and reports timing statistics.
//
//   ./examples/altis_run --help
//   ./examples/altis_run kmeans --device stratix_10 --variant fpga_opt
//   ./examples/altis_run all --size 1 --device rtx_2080 --passes 3 --csv
//   ./examples/altis_run kmeans --trace out.json --profile
#include <iostream>

#include "apps/common/app.hpp"
#include "core/option_parser.hpp"
#include "core/registry.hpp"
#include "core/result_database.hpp"
#include "trace/options.hpp"

int main(int argc, char** argv) {
    using namespace altis;

    OptionParser opts;
    add_standard_options(opts);
    opts.add_option("variant", "sycl_opt",
                    "cuda | sycl_base | sycl_opt | fpga_base | fpga_opt");
    opts.add_flag("csv", "dump raw trial values as CSV");
    opts.add_flag("json", "dump results as JSON");
    opts.add_flag("list", "list registered applications and exit");
    trace::add_trace_options(opts);

    try {
        if (!opts.parse(argc, argv, std::cout)) return 0;
    } catch (const OptionError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }

    apps::register_all_apps();
    auto& registry = Registry::instance();

    if (opts.get_flag("list")) {
        for (const auto& app : registry.apps()) {
            std::cout << app.name << " -- " << app.description << " [";
            for (std::size_t i = 0; i < app.variants.size(); ++i)
                std::cout << (i ? " " : "") << to_string(app.variants[i]);
            std::cout << "]\n";
        }
        return 0;
    }

    RunConfig cfg;
    cfg.size = static_cast<int>(opts.get_int("size"));
    cfg.device = opts.get_string("device");
    cfg.passes = static_cast<int>(opts.get_int("passes"));
    const std::string vname = opts.get_string("variant");
    bool found = false;
    for (const Variant v : {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
                            Variant::fpga_base, Variant::fpga_opt}) {
        if (vname == to_string(v)) {
            cfg.variant = v;
            found = true;
        }
    }
    if (!found) {
        std::cerr << "error: unknown variant " << vname << "\n";
        return 2;
    }

    std::vector<std::string> targets = opts.positional();
    if (targets.empty()) {
        std::cerr << "usage: altis_run <app|all> [options]; see --help or "
                     "--list\n";
        return 2;
    }
    if (targets.size() == 1 && targets[0] == "all") {
        targets.clear();
        for (const auto& app : registry.apps()) targets.push_back(app.name);
    }

    // With --trace/--profile active, every queue the apps construct emits
    // spans into this session; each app run becomes a top-level region span.
    const trace::options topts = trace::options::from(opts);
    trace::session tsession("altis_run");
    trace::session::scope tscope(tsession);

    ResultDatabase db;
    int failures = 0;
    for (const auto& name : targets) {
        const AppInfo* app = registry.find(name);
        if (app == nullptr) {
            std::cerr << "error: unknown application '" << name
                      << "' (try --list)\n";
            return 2;
        }
        const bool supported =
            std::find(app->variants.begin(), app->variants.end(),
                      cfg.variant) != app->variants.end() &&
            apps::variant_allowed(cfg.variant,
                                  perf::device_by_name(cfg.device));
        if (!supported) {
            std::cout << name << ": skipped (variant/device unsupported)\n";
            continue;
        }
        tsession.begin_region(name + "/" + to_string(cfg.variant) + "/size" +
                                  std::to_string(cfg.size),
                              tsession.last_end_ns());
        try {
            app->run(cfg, db);
            std::cout << name << ": ok (" << cfg.passes << " passes, verified)\n";
        } catch (const std::exception& e) {
            std::cout << name << ": FAILED -- " << e.what() << "\n";
            ++failures;
        }
        tsession.end_region(tsession.last_end_ns());
    }

    std::cout << '\n';
    if (opts.get_flag("csv"))
        db.dump_csv(std::cout);
    else if (opts.get_flag("json"))
        db.dump_json(std::cout);
    else
        db.dump_summary(std::cout);
    if (topts.enabled() &&
        !trace::finish_session(tsession, topts, tsession.last_end_ns(),
                               std::cout, std::cerr))
        return 2;
    return failures == 0 ? 0 : 1;
}
