#include "resilience/options.hpp"

#include <cmath>
#include <cstdlib>

namespace altis::resilience {

void add_resilience_options(OptionParser& opts) {
    opts.add_option("deadline-ms", "",
                    "wall-clock budget per configuration; overruns are "
                    "cancelled and recorded as 'deadline' (default: "
                    "$ALTIS_DEADLINE_MS, else no deadline)");
    opts.add_option("journal", "",
                    "append a crash-safe JSONL checkpoint per completed "
                    "configuration to <path>");
    opts.add_option("resume", "",
                    "replay completed configurations from a journal and "
                    "continue, appending to it");
    opts.add_option("breaker-threshold", "3",
                    "consecutive hard failures before a configuration is "
                    "quarantined (0 disables the circuit breaker)");
    opts.add_option("breaker-cooldown", "2",
                    "quarantined encounters before a half-open probe");
}

namespace {

double checked_deadline(const std::string& text, const std::string& origin) {
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        throw OptionError(origin + " expects a number, got: " + text);
    if (errno == ERANGE || !std::isfinite(v) || v < 0.0 || v > 1e9)
        throw OptionError(origin +
                          " must be a finite value in [0, 1e9] ms, got: " +
                          text);
    return v;
}

}  // namespace

options options::from(const OptionParser& opts) {
    options o;
    std::string deadline = opts.get_string("deadline-ms");
    std::string origin = "--deadline-ms";
    if (deadline.empty()) {
        if (const char* env = std::getenv("ALTIS_DEADLINE_MS")) {
            deadline = env;
            origin = "$ALTIS_DEADLINE_MS";
        }
    }
    if (!deadline.empty()) o.deadline_ms = checked_deadline(deadline, origin);
    o.journal_path = opts.get_string("journal");
    o.resume_path = opts.get_string("resume");
    const std::int64_t threshold = opts.get_int("breaker-threshold");
    if (threshold < 0 || threshold > 1000000)
        throw OptionError("--breaker-threshold must be in [0, 1000000], got: " +
                          opts.get_string("breaker-threshold"));
    const std::int64_t cooldown = opts.get_int("breaker-cooldown");
    if (cooldown < 0 || cooldown > 1000000)
        throw OptionError("--breaker-cooldown must be in [0, 1000000], got: " +
                          opts.get_string("breaker-cooldown"));
    o.breaker.threshold = static_cast<int>(threshold);
    o.breaker.cooldown = static_cast<int>(cooldown);
    return o;
}

}  // namespace altis::resilience
