// Runtime (non-kernel) overhead model: kernel launch, synchronization and
// host<->device transfer costs for the two runtimes the paper compares.
// These constants produce Figure 1's kernel/non-kernel decomposition: the
// migrated SYCL runtime pays substantially more per kernel invocation than
// CUDA because it issues extra context/event-management API calls underneath
// (Sec. 3.3, "Discussion"; also observed by Castano et al. [3]).
#pragma once

#include "perf/device.hpp"

namespace altis::perf {

enum class runtime_kind {
    cuda,  ///< original Altis runtime (NVIDIA driver, events timing)
    sycl,  ///< oneAPI runtime (opens CUDA/L0/OpenCL underneath)
};

[[nodiscard]] const char* to_string(runtime_kind k);

/// Cost in ns of submitting one kernel (driver + runtime bookkeeping).
[[nodiscard]] double launch_overhead_ns(runtime_kind rt, const device_spec& dev);

/// Cost in ns of a host-side synchronization (cudaDeviceSynchronize /
/// queue::wait).
[[nodiscard]] double sync_overhead_ns(runtime_kind rt, const device_spec& dev);

/// Time in ns to move `bytes` across the host<->device link, including the
/// per-call fixed cost. Zero-byte transfers still pay the fixed cost.
/// On the CPU "device" there is no link: only the fixed cost applies.
[[nodiscard]] double transfer_ns(runtime_kind rt, const device_spec& dev,
                                 double bytes);

/// One-time setup cost in ns inside a timed region (context/queue creation,
/// first-touch JIT for GPUs). FPGA bitstream programming happens ahead of
/// time and is excluded, as in the paper.
[[nodiscard]] double setup_overhead_ns(runtime_kind rt, const device_spec& dev);

}  // namespace altis::perf
