// Each injection kind exercised through the real syclite operation it hooks:
// USM and buffer allocation, kernel launch, transfer annotation, device
// acquisition, and pipe stalls.
#include "fault/inject.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sycl/syclite.hpp"

namespace altis::fault {
namespace {

namespace sl = syclite;

sl::perf::kernel_stats stats(const char* name) {
    sl::perf::kernel_stats k;
    k.name = name;
    k.fp32_ops = 1.0;
    k.bytes_read = 4.0;
    return k;
}

TEST(FaultInject, NoActivePlanIsANoOp) {
    ASSERT_EQ(active(), nullptr);
    EXPECT_NO_THROW(maybe_inject(op_kind::alloc, "anything"));
    EXPECT_FALSE(should_stall_pipe("anything"));
}

TEST(FaultInject, ScopeInstallsAndRestoresThePlan) {
    plan p = plan::parse("alloc@1");
    {
        scope s(p);
        EXPECT_EQ(active(), &p);
    }
    EXPECT_EQ(active(), nullptr);
}

TEST(FaultInject, NthUsmAllocationFails) {
    plan p = plan::parse("alloc:usm*@2");
    scope s(p);
    sl::queue q("rtx_2080");
    float* a = sl::malloc_device<float>(16, q);
    EXPECT_NE(a, nullptr);
    try {
        (void)sl::malloc_device<float>(16, q);
        FAIL() << "second USM allocation should fault";
    } catch (const alloc_fault& f) {
        EXPECT_EQ(f.kind(), op_kind::alloc);
        EXPECT_EQ(f.op(), "usm_device");
        EXPECT_TRUE(f.retryable());
        EXPECT_NE(std::string(f.what()).find("injected alloc fault"),
                  std::string::npos);
        EXPECT_NE(std::string(f.what()).find("alloc:usm*@2"),
                  std::string::npos);
    }
    // The rule fired once; later allocations proceed.
    float* b = sl::malloc_device<float>(16, q);
    EXPECT_NE(b, nullptr);
    sl::usm_free(a, q);
    sl::usm_free(b, q);
}

TEST(FaultInject, BufferConstructionFails) {
    plan p = plan::parse("alloc:buffer@1");
    scope s(p);
    EXPECT_THROW(sl::buffer<int>(64), alloc_fault);
    EXPECT_NO_THROW(sl::buffer<int>(64));  // rule exhausted
}

TEST(FaultInject, KernelLaunchFaultThrowsSynchronouslyWithoutHandler) {
    plan p = plan::parse("launch:boom@1");
    scope s(p);
    sl::queue q("rtx_2080");
    bool ran = false;
    try {
        q.submit([&](sl::handler& h) {
            h.single_task(stats("boom"), [&] { ran = true; });
        });
        FAIL() << "launch should fault";
    } catch (const launch_fault& f) {
        EXPECT_EQ(f.op(), "boom");
        EXPECT_FALSE(f.retryable());
    }
    EXPECT_FALSE(ran);  // the fault preempts execution
    // Other kernels are unaffected, and the queue remains usable.
    q.submit([&](sl::handler& h) { h.single_task(stats("fine"), [] {}); });
    q.wait();
}

TEST(FaultInject, TransferFaultOnCopy) {
    plan p = plan::parse("transfer@1");
    scope s(p);
    sl::queue q("rtx_2080");
    sl::buffer<float> b(32);
    std::vector<float> host(32, 1.0f);
    EXPECT_THROW(q.copy_to_device(b, host.data()), transfer_fault);
    EXPECT_NO_THROW(q.copy_to_device(b, host.data()));
}

TEST(FaultInject, DeviceFaultOnQueueConstruction) {
    plan p = plan::parse("device:agilex@1");
    scope s(p);
    EXPECT_THROW(sl::queue("agilex"), device_fault);
    EXPECT_NO_THROW(sl::queue("agilex"));    // transient: next acquisition ok
    EXPECT_NO_THROW(sl::queue("rtx_2080"));  // other devices never matched
}

TEST(FaultInject, PipeRuleStallsViaShouldStallPipe) {
    plan p = plan::parse("pipe:kmeans_*@1");
    scope s(p);
    EXPECT_FALSE(should_stall_pipe("other_pipe"));
    EXPECT_TRUE(should_stall_pipe("kmeans_map"));
    EXPECT_FALSE(should_stall_pipe("kmeans_map"));  // rule exhausted
}

TEST(FaultInject, TryWriteRealizesStallAsRefusal) {
    // The non-blocking API consumes the same `pipe:<name>@N` rules as the
    // blocking one; a stall surfaces as a refusal (as if the ring were
    // full/empty), not as a block.
    plan p = plan::parse("pipe:refused@1");
    scope s(p);
    sl::pipe<int> pp(4, "refused");
    EXPECT_FALSE(pp.try_write(1));   // stall consumed here
    EXPECT_TRUE(pp.try_write(2));    // rule exhausted: normal behavior
    int v = 0;
    EXPECT_TRUE(pp.try_read(v));
    EXPECT_EQ(v, 2);
}

TEST(FaultInject, TryReadRealizesStallAsRefusal) {
    plan p = plan::parse("pipe:refused@2");
    scope s(p);
    sl::pipe<int> pp(4, "refused");
    ASSERT_TRUE(pp.try_write(7));    // first match: not the 2nd op yet
    int v = 0;
    EXPECT_FALSE(pp.try_read(v));    // second matching op: refused
    EXPECT_TRUE(pp.try_read(v));
    EXPECT_EQ(v, 7);
}

}  // namespace
}  // namespace altis::fault
