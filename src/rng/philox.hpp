// Philox4x32-10 counter-based generator (Salmon et al., SC'11) -- the engine
// oneMKL supplies as philox4x32x10, which DPCT substitutes for cuRAND's
// XORWOW when migrating Raytracing (paper Sec. 3.3). Counter-based: ideal
// for per-work-item streams (no stored state, just counter = item id).
#pragma once

#include <array>
#include <cstdint>

namespace altis::rng {

class philox4x32 {
public:
    using counter_t = std::array<std::uint32_t, 4>;
    using key_t = std::array<std::uint32_t, 2>;

    /// One 10-round Philox4x32 block: 128 bits of output per counter value.
    [[nodiscard]] static counter_t block(counter_t ctr, key_t key);

    philox4x32(std::uint64_t seed, std::uint64_t stream = 0)
        : key_{static_cast<std::uint32_t>(seed),
               static_cast<std::uint32_t>(seed >> 32)},
          ctr_{static_cast<std::uint32_t>(stream),
               static_cast<std::uint32_t>(stream >> 32), 0u, 0u} {}

    std::uint32_t next_u32() {
        if (idx_ == 0) {
            out_ = block(ctr_, key_);
            // 128-bit counter increment.
            for (int i = 0; i < 4; ++i)
                if (++ctr_[static_cast<std::size_t>(i)] != 0u) break;
        }
        const std::uint32_t v = out_[idx_];
        idx_ = (idx_ + 1) % 4;
        return v;
    }

    float next_float() {
        return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
    }

    double next_double() {
        const std::uint64_t hi = next_u32();
        const std::uint64_t lo = next_u32();
        return static_cast<double>((hi << 21) ^ lo) * (1.0 / 9007199254740992.0);
    }

private:
    key_t key_;
    counter_t ctr_;
    counter_t out_{};
    std::size_t idx_ = 0;
};

}  // namespace altis::rng
