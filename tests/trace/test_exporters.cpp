// Exporters and CLI wiring: the Chrome trace-event JSON must survive a
// round trip through a strict parser, the profile's aggregate math must
// reproduce the session's counters, and the --trace/--profile/$ALTIS_TRACE
// plumbing must behave like every harness binary expects.
#include "trace/chrome_export.hpp"
#include "trace/options.hpp"
#include "trace/profile.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sycl/syclite.hpp"
#include "support/mini_json.hpp"

namespace altis::trace {
namespace {

perf::kernel_stats named_stats(const char* name) {
    perf::kernel_stats k;
    k.name = name;
    k.fp32_ops = 4.0;
    k.bytes_read = 8.0;
    k.bytes_written = 4.0;
    return k;
}

void submit_kernel(syclite::queue& q, syclite::buffer<int>& b,
                   const perf::kernel_stats& k) {
    q.submit([&](syclite::handler& h) {
        auto acc = h.get_access(b, syclite::access_mode::discard_write);
        h.parallel_for(
            syclite::nd_range<1>(syclite::range<1>(b.size()),
                                 syclite::range<1>(64)),
            k, [=](syclite::nd_item<1> it) { acc[it.get_global_id(0)] = 1; });
    });
}

/// A sequential + dataflow session exercising every span kind.
session make_session(double* queue_kernel_ns = nullptr) {
    session s("roundtrip");
    session::scope scope(s);
    syclite::queue q("stratix_10");
    q.charge_setup();
    syclite::buffer<int> b(256);
    std::vector<int> host(256, 0);
    q.copy_to_device(b, host.data());
    submit_kernel(q, b, named_stats("seq_kernel"));
    submit_kernel(q, b, named_stats("seq_kernel"));
    syclite::pipe<int> p(8);
    q.begin_dataflow();
    q.submit([&](syclite::handler& h) {
        perf::kernel_stats k = named_stats("producer");
        k.writes_pipe = true;
        h.single_task(k, [&p]() {
            for (int i = 0; i < 32; ++i) p.write(i);
        });
    });
    q.submit([&](syclite::handler& h) {
        auto acc = h.get_access(b, syclite::access_mode::discard_write);
        perf::kernel_stats k = named_stats("consumer");
        k.reads_pipe = true;
        h.single_task(k, [&p, acc]() {
            for (int i = 0; i < 32; ++i) acc[i] = p.read();
        });
    });
    q.end_dataflow();
    q.wait();
    if (queue_kernel_ns != nullptr) *queue_kernel_ns = q.kernel_ns();
    return s;
}

TEST(ChromeExport, RoundTripsThroughParser) {
    double queue_kernel_ns = 0.0;
    session s = make_session(&queue_kernel_ns);
    std::ostringstream out;
    write_chrome_json(s, out);

    const mini_json::value doc = mini_json::parse(out.str());
    EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ns");
    EXPECT_EQ(doc.at("otherData").at("session").as_string(), "roundtrip");
    EXPECT_EQ(doc.at("otherData").at("device").as_string(), "stratix_10");

    double kernel_us = 0.0;       // track-0 kernels + dataflow envelopes
    double dataflow_start = -1.0;
    int dataflow_lanes = 0;
    bool saw_seq_kernel = false;
    for (const auto& ev : doc.at("traceEvents").as_array()) {
        if (ev.at("ph").as_string() == "M") continue;  // thread_name labels
        EXPECT_EQ(ev.at("ph").as_string(), "X");
        EXPECT_GE(ev.at("dur").as_number(), 0.0);
        const std::string cat = ev.at("cat").as_string();
        const double tid = ev.at("tid").as_number();
        if (cat == "kernel" && tid == 1.0) {
            kernel_us += ev.at("dur").as_number();
            if (ev.at("name").as_string() == "seq_kernel") {
                saw_seq_kernel = true;
                EXPECT_GT(ev.at("args").at("modeled_bytes").as_number(), 0.0);
                EXPECT_GT(ev.at("args").at("modeled_gbs").as_number(), 0.0);
            }
        }
        if (cat == "dataflow_group") kernel_us += ev.at("dur").as_number();
        if (cat == "kernel" && tid > 1.0) {
            ++dataflow_lanes;
            if (dataflow_start < 0.0) dataflow_start = ev.at("ts").as_number();
            EXPECT_DOUBLE_EQ(ev.at("ts").as_number(), dataflow_start);
        }
    }
    EXPECT_TRUE(saw_seq_kernel);
    // Fig. 3 shape: the two pipe kernels render on distinct parallel lanes.
    EXPECT_EQ(dataflow_lanes, 2);
    // Named kernel spans (+ group envelopes) sum to the queue's counter; the
    // serialization is microseconds at stream precision, hence the relative
    // tolerance.
    EXPECT_NEAR(kernel_us * 1e3, queue_kernel_ns,
                queue_kernel_ns * 1e-4 + 1e-9);
}

TEST(ChromeExport, EscapesHostileNames) {
    session s("quote\" back\\slash\nnewline\ttab\x01ctl");
    s.begin_region("region \"r\" \\ one", 0.0);
    perf::kernel_stats k = named_stats("kernel\\with\"specials\"");
    s.record_kernel(k, 0.0, 10.0);
    s.end_region(10.0);
    std::ostringstream out;
    write_chrome_json(s, out);
    const mini_json::value doc = mini_json::parse(out.str());
    EXPECT_EQ(doc.at("otherData").at("session").as_string(),
              "quote\" back\\slash\nnewline\ttab\x01ctl");
    bool saw_kernel = false, saw_region = false;
    for (const auto& ev : doc.at("traceEvents").as_array()) {
        if (ev.at("ph").as_string() != "X") continue;
        const std::string name = ev.at("name").as_string();
        if (name == "kernel\\with\"specials\"") saw_kernel = true;
        if (name == "region \"r\" \\ one") saw_region = true;
    }
    EXPECT_TRUE(saw_kernel);
    EXPECT_TRUE(saw_region);
}

TEST(Profile, AggregateMathMatchesSession) {
    session s("agg");
    session::scope scope(s);
    syclite::queue q("rtx_2080");
    syclite::buffer<int> b(256);
    submit_kernel(q, b, named_stats("alpha"));
    submit_kernel(q, b, named_stats("alpha"));
    submit_kernel(q, b, named_stats("beta"));
    q.wait();

    const profile_report p = build_profile(s);
    EXPECT_EQ(p.device, "rtx_2080");
    ASSERT_EQ(p.kernels.size(), 2u);
    double sum_ns = 0.0, sum_pct = 0.0;
    for (const auto& k : p.kernels) {
        sum_ns += k.total_ns;
        sum_pct += k.pct_of_kernel;
        EXPECT_NEAR(k.mean_ns, k.total_ns / k.invocations, 1e-9);
        EXPECT_FALSE(k.in_dataflow);
    }
    // Sum of per-kernel time reproduces the session's kernel counter
    // exactly when nothing overlaps.
    EXPECT_NEAR(sum_ns, s.kernel_ns(), 1e-9);
    EXPECT_NEAR(sum_ns, q.kernel_ns(), 1e-9);
    EXPECT_NEAR(p.kernel_span_ns, p.kernel_ns, 1e-9);
    EXPECT_NEAR(sum_pct, 1.0, 1e-9);
    // Sorted by total time: "alpha" ran twice with identical stats.
    EXPECT_EQ(p.kernels[0].name, "alpha");
    EXPECT_DOUBLE_EQ(p.kernels[0].invocations, 2.0);
    EXPECT_NEAR(p.kernels[0].total_ns, 2.0 * p.kernels[1].total_ns, 1e-9);
}

TEST(Profile, DataflowOverlapIsReportedNotDoubleCounted) {
    double queue_kernel_ns = 0.0;
    const session s = make_session(&queue_kernel_ns);
    const profile_report p = build_profile(s);
    EXPECT_NEAR(p.kernel_ns, queue_kernel_ns, 1e-9);
    // Lane spans overlap, so their sum exceeds the wall-clock counter.
    EXPECT_GT(p.kernel_span_ns, p.kernel_ns);
    for (const auto& k : p.kernels) {
        if (k.name == "producer" || k.name == "consumer")
            EXPECT_TRUE(k.in_dataflow);
        if (k.name == "seq_kernel") EXPECT_FALSE(k.in_dataflow);
    }
}

TEST(Profile, RooflineClassification) {
    session s("walls");
    s.bind_device(perf::device_by_name("rtx_2080"));
    const profile_report walls = build_profile(s);
    ASSERT_GT(walls.peak_gflops, 0.0);
    ASSERT_GT(walls.peak_gbs, 0.0);

    auto synth = [&](const char* name, double flops, double bytes) {
        span sp;
        sp.kind = span_kind::kernel;
        sp.name = name;
        sp.start_ns = s.last_end_ns();
        sp.end_ns = sp.start_ns + 100.0;
        sp.counters.flops = flops;
        sp.counters.bytes = bytes;
        s.record(sp);
    };
    // Over 100 ns: flops -> GFLOP/s = flops/100, bytes -> GB/s = bytes/100.
    synth("hot_alu", walls.peak_gflops * 90.0, walls.peak_gbs * 1.0);
    synth("streamer", walls.peak_gflops * 1.0, walls.peak_gbs * 90.0);
    synth("tiny", walls.peak_gflops * 0.1, walls.peak_gbs * 0.1);

    const profile_report p = build_profile(s);
    ASSERT_EQ(p.kernels.size(), 3u);
    for (const auto& k : p.kernels) {
        if (k.name == "hot_alu") {
            EXPECT_EQ(k.bound, bound_by::compute);
            EXPECT_NEAR(k.compute_utilization, 0.9, 1e-9);
        } else if (k.name == "streamer") {
            EXPECT_EQ(k.bound, bound_by::bandwidth);
            EXPECT_NEAR(k.memory_utilization, 0.9, 1e-9);
        } else {
            EXPECT_EQ(k.bound, bound_by::latency);
        }
    }
    // Without a device there are no walls to classify against.
    session bare("no-device");
    perf::kernel_stats k = named_stats("k");
    bare.record_kernel(k, 0.0, 10.0);
    const profile_report q = build_profile(bare);
    ASSERT_EQ(q.kernels.size(), 1u);
    EXPECT_EQ(q.kernels[0].bound, bound_by::unknown);
}

TEST(Profile, JsonExportRoundTrips) {
    const session s = make_session();
    const profile_report p = build_profile(s);
    std::ostringstream out;
    write_profile_json(p, out);
    const mini_json::value doc = mini_json::parse(out.str());
    EXPECT_EQ(doc.at("session").as_string(), "roundtrip");
    EXPECT_EQ(doc.at("device").as_string(), "stratix_10");
    double sum_ns = 0.0;
    for (const auto& k : doc.at("kernels").as_array()) {
        sum_ns += k.at("total_ns").as_number();
        EXPECT_TRUE(k.has("bound_by"));
        EXPECT_TRUE(k.has("gbs"));
        EXPECT_TRUE(k.has("gflops"));
    }
    EXPECT_NEAR(sum_ns, doc.at("kernel_span_ns").as_number(),
                doc.at("kernel_span_ns").as_number() * 1e-4);
}

TEST(Profile, TableRendersKernelsAndOverlapNote) {
    const session s = make_session();
    const profile_report p = build_profile(s);
    std::ostringstream out;
    render_profile(p, out);
    const std::string text = out.str();
    EXPECT_NE(text.find("seq_kernel"), std::string::npos);
    EXPECT_NE(text.find("GB/s"), std::string::npos);
    EXPECT_NE(text.find("Bound by"), std::string::npos);
    EXPECT_NE(text.find("(dataflow)"), std::string::npos);
    EXPECT_NE(text.find("dataflow overlap"), std::string::npos);
}

TEST(TraceOptions, FlagsParseAndEnvProvidesDefault) {
    {
        OptionParser opts;
        add_trace_options(opts);
        const char* argv[] = {"bin", "--trace", "/tmp/t.json", "--profile"};
        std::ostringstream out;
        ASSERT_TRUE(opts.parse(4, argv, out));
        const options o = options::from(opts);
        EXPECT_EQ(o.trace_path, "/tmp/t.json");
        EXPECT_TRUE(o.profile);
        EXPECT_TRUE(o.enabled());
    }
    {
        ::setenv("ALTIS_TRACE", "/tmp/env.json", 1);
        OptionParser opts;
        add_trace_options(opts);
        const char* argv[] = {"bin"};
        std::ostringstream out;
        ASSERT_TRUE(opts.parse(1, argv, out));
        ::unsetenv("ALTIS_TRACE");
        const options o = options::from(opts);
        EXPECT_EQ(o.trace_path, "/tmp/env.json");
        EXPECT_FALSE(o.profile);
        EXPECT_TRUE(o.enabled());  // env alone turns tracing on
    }
    {
        OptionParser opts;
        add_trace_options(opts);
        const char* argv[] = {"bin"};
        std::ostringstream out;
        ASSERT_TRUE(opts.parse(1, argv, out));
        EXPECT_FALSE(options::from(opts).enabled());
    }
}

TEST(TraceOptions, FinishSessionWritesParseableArtifacts) {
    session s = make_session();
    s.begin_region("left open", 0.0);  // finish_session must close it

    options o;
    o.trace_path = "finish_session_test.json";
    o.profile = true;
    std::ostringstream out, err;
    ASSERT_TRUE(finish_session(s, o, s.last_end_ns(), out, err));
    EXPECT_EQ(s.open_regions(), 0);
    EXPECT_EQ(err.str(), "");
    EXPECT_NE(out.str().find("Per-kernel profile"), std::string::npos);

    auto slurp = [](const std::string& path) {
        std::ifstream f(path);
        EXPECT_TRUE(f.good()) << path;
        std::ostringstream ss;
        ss << f.rdbuf();
        return ss.str();
    };
    EXPECT_NO_THROW((void)mini_json::parse(slurp(o.trace_path)));
    EXPECT_NO_THROW(
        (void)mini_json::parse(slurp(o.trace_path + ".profile.json")));
    std::remove(o.trace_path.c_str());
    std::remove((o.trace_path + ".profile.json").c_str());
}

TEST(TraceOptions, FinishSessionReportsUnwritablePath) {
    session s("t");
    options o;
    o.trace_path = "/nonexistent-dir/trace.json";
    std::ostringstream out, err;
    EXPECT_FALSE(finish_session(s, o, 0.0, out, err));
    EXPECT_NE(err.str().find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace altis::trace
