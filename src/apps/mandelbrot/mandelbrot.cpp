#include "apps/mandelbrot/mandelbrot.hpp"

#include <algorithm>

#include "apps/common/verify.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps::mandelbrot {

params params::preset(int size) {
    params p;
    switch (size) {
        case 1: p.width = p.height = 512; break;
        case 2: p.width = p.height = 2048; break;
        case 3: p.width = p.height = 8192; break;
        default: throw std::invalid_argument("mandelbrot: size must be 1..3");
    }
    return p;
}

namespace {

/// Escape iteration count for one pixel; shared verbatim by the golden
/// reference and every kernel so integer outputs match exactly.
std::uint16_t escape_iters(const params& p, int px, int py) {
    const float cx =
        p.x0 + (p.x1 - p.x0) * (static_cast<float>(px) + 0.5f) /
                   static_cast<float>(p.width);
    const float cy =
        p.y0 + (p.y1 - p.y0) * (static_cast<float>(py) + 0.5f) /
                   static_cast<float>(p.height);
    float zx = 0.0f, zy = 0.0f;
    int it = 0;
    while (it < p.max_iters && zx * zx + zy * zy <= 4.0f) {
        const float nx = zx * zx - zy * zy + cx;
        zy = 2.0f * zx * zy + cy;
        zx = nx;
        ++it;
    }
    return static_cast<std::uint16_t>(std::min(it, 65535));
}

}  // namespace

void golden(const params& p, std::span<std::uint16_t> iters) {
    if (iters.size() != p.pixels())
        throw std::invalid_argument("mandelbrot::golden: bad output size");
    for (int y = 0; y < p.height; ++y)
        for (int x = 0; x < p.width; ++x)
            iters[static_cast<std::size_t>(y) * p.width + x] =
                escape_iters(p, x, y);
}

double mean_iterations(const params& p) {
    params probe = p;
    probe.width = probe.height = 128;
    double sum = 0.0;
    for (int y = 0; y < probe.height; ++y)
        for (int x = 0; x < probe.width; ++x)
            sum += escape_iters(probe, x, y);
    return sum / static_cast<double>(probe.pixels());
}

namespace detail {

perf::kernel_stats stats_nd(const params& p, Variant v,
                            const perf::device_spec& dev);
perf::kernel_stats stats_single_task(const params& p,
                                     const perf::device_spec& dev, int size);

}  // namespace detail

namespace {

void run_nd_range(sl::queue& q, const params& p, const perf::kernel_stats& stats,
                  sl::buffer<std::uint16_t>& out, std::size_t wg) {
    q.submit([&](sl::handler& h) {
        auto acc = h.get_access(out, sl::access_mode::discard_write);
        const params cp = p;
        h.parallel_for(
            sl::nd_range<1>(sl::range<1>(cp.pixels()), sl::range<1>(wg)), stats,
            [=](sl::nd_item<1> it) {
                const std::size_t gid = it.get_global_id(0);
                const int px = static_cast<int>(gid % cp.width);
                const int py = static_cast<int>(gid / cp.width);
                acc[gid] = escape_iters(cp, px, py);
            });
    });
}

/// Single-Task rewrite: U independent escape chains interleaved so the
/// pipelined loop sustains one iteration per chain per II (the descriptor's
/// unroll factor is this interleave width).
void run_single_task(sl::queue& q, const params& p,
                     const perf::kernel_stats& stats,
                     sl::buffer<std::uint16_t>& out, int interleave) {
    q.submit([&](sl::handler& h) {
        auto acc = h.get_access(out, sl::access_mode::discard_write);
        const params cp = p;
        const int u = interleave;
        h.single_task(stats, [=]() {
            const std::size_t n = cp.pixels();
            for (std::size_t base = 0; base < n;
                 base += static_cast<std::size_t>(u)) {
                const std::size_t lanes =
                    std::min<std::size_t>(static_cast<std::size_t>(u), n - base);
                for (std::size_t lane = 0; lane < lanes; ++lane) {
                    const std::size_t gid = base + lane;
                    const int px = static_cast<int>(gid % cp.width);
                    const int py = static_cast<int>(gid / cp.width);
                    acc[gid] = escape_iters(cp, px, py);
                }
            }
        });
    });
}

}  // namespace

AppResult run(const RunConfig& cfg) {
    const perf::device_spec& dev = resolve_device(cfg);
    const params p = params::preset(cfg.size);

    std::vector<std::uint16_t> expected(p.pixels());
    golden(p, expected);

    sl::queue q(dev, runtime_for(cfg.variant));
    if (dev.is_fpga()) q.set_design(region(cfg.variant, dev, cfg.size).all_kernels());
    // One-time context/JIT setup is excluded from the timed region (warmed up).

    sl::buffer<std::uint16_t> out(p.pixels());
    switch (cfg.variant) {
        case Variant::cuda:
        case Variant::sycl_base:
        case Variant::sycl_opt:
            run_nd_range(q, p, detail::stats_nd(p, cfg.variant, dev), out, 256);
            break;
        case Variant::fpga_base:
            // Sec. 4 refactor: work-group capped at 128 by the barrier rule.
            run_nd_range(q, p, detail::stats_nd(p, cfg.variant, dev), out, 128);
            break;
        case Variant::fpga_opt: {
            const auto stats = detail::stats_single_task(p, dev, cfg.size);
            run_single_task(q, p, stats, out,
                            stats.loops.empty() ? 1 : stats.loops[0].unroll);
            break;
        }
    }
    q.wait();

    std::vector<std::uint16_t> actual(p.pixels());
    q.copy_from_device(out, actual.data());

    const std::size_t bad = mismatch_count<std::uint16_t>(expected, actual);
    require_close(static_cast<double>(bad), 0.0, "mandelbrot");

    AppResult r;
    r.kernel_ms = q.kernel_ns() / 1e6;
    r.non_kernel_ms = q.non_kernel_ns() / 1e6;
    r.total_ms = q.sim_now_ns() / 1e6;
    return r;
}

void register_app() {
    register_standard_app(
        "mandelbrot", "Fractal image computation (escape iterations)",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run);
}

}  // namespace altis::apps::mandelbrot
