#include "apps/where/where.hpp"

#include "apps/common/verify.hpp"
#include "rng/xorwow.hpp"
#include "scan/scan.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps::where {

params params::preset(int size) {
    params p;
    switch (size) {
        case 1: p.n = 1u << 20; break;
        case 2: p.n = 1u << 23; break;
        case 3: p.n = 1u << 25; break;
        default: throw std::invalid_argument("where: size must be 1..3");
    }
    p.threshold = 1 << 18;  // selects ~25% of uniform keys in [0, 2^20)
    return p;
}

std::vector<record> make_table(const params& p) {
    std::vector<record> table(p.n);
    rng::xorwow gen(p.seed);
    for (std::size_t i = 0; i < p.n; ++i) {
        table[i].key = static_cast<std::int32_t>(gen.next_u32() & 0xFFFFFu);
        table[i].payload = static_cast<std::int32_t>(i);
    }
    return table;
}

std::vector<record> golden(const params& p, std::span<const record> table) {
    std::vector<record> out;
    out.reserve(table.size() / 3);
    for (const record& r : table)
        if (r.key < p.threshold) out.push_back(r);
    return out;
}

namespace detail {

perf::kernel_stats stats_mark(const params& p, const perf::device_spec& dev,
                              Variant v);
perf::kernel_stats stats_scatter(const params& p, const perf::device_spec& dev,
                                 Variant v);
perf::kernel_stats stats_scan(const params& p, const perf::device_spec& dev,
                              Variant v);
double onedpl_scan_overhead_ns(const params& p, const perf::device_spec& dev);

}  // namespace detail

bool crashes_on(const perf::device_spec& dev, Variant v, int size) {
    return dev.name == "agilex" && size == 3 &&
           (v == Variant::fpga_base || v == Variant::fpga_opt);
}

namespace {

/// Mark kernel: flags[i] = (table[i].key < threshold).
void submit_mark(sl::queue& q, const params& p, sl::buffer<record>& table,
                 sl::buffer<int>& flags, const perf::kernel_stats& stats,
                 std::size_t wg) {
    q.submit([&](sl::handler& h) {
        auto t = h.get_access(table, sl::access_mode::read);
        auto f = h.get_access(flags, sl::access_mode::discard_write);
        const std::int32_t threshold = p.threshold;
        h.parallel_for(sl::nd_range<1>(sl::range<1>(p.n), sl::range<1>(wg)),
                       stats, [=](sl::nd_item<1> it) {
                           const std::size_t i = it.get_global_id(0);
                           f[i] = t[i].key < threshold ? 1 : 0;
                       });
    });
}

/// Scatter kernel: out[prefix[i]] = table[i] where flags[i].
void submit_scatter(sl::queue& q, const params& p, sl::buffer<record>& table,
                    sl::buffer<int>& flags, sl::buffer<int>& prefix,
                    sl::buffer<record>& out, const perf::kernel_stats& stats,
                    std::size_t wg) {
    q.submit([&](sl::handler& h) {
        auto t = h.get_access(table, sl::access_mode::read);
        auto f = h.get_access(flags, sl::access_mode::read);
        auto pre = h.get_access(prefix, sl::access_mode::read);
        auto o = h.get_access(out, sl::access_mode::write);
        h.parallel_for(sl::nd_range<1>(sl::range<1>(p.n), sl::range<1>(wg)),
                       stats, [=](sl::nd_item<1> it) {
                           const std::size_t i = it.get_global_id(0);
                           if (f[i] != 0)
                               o[static_cast<std::size_t>(pre[i])] = t[i];
                       });
    });
}

/// Library-style scan on CPU/GPU: blocked three-phase scan (the oneDPL /
/// CUB structure), run functionally through the pool.
void submit_library_scan(sl::queue& q, const params& p, sl::buffer<int>& flags,
                         sl::buffer<int>& prefix,
                         const perf::kernel_stats& stats) {
    q.submit([&](sl::handler& h) {
        auto f = h.get_access(flags, sl::access_mode::read);
        auto pre = h.get_access(prefix, sl::access_mode::discard_write);
        const std::size_t n = p.n;
        // Opaque library call: the descriptor carries the library scan's
        // multi-pass structure; functionally we run the real blocked scan.
        h.library_call(stats, [=]() {
            scan::exclusive_scan_blocked(
                std::span<const int>(f.get_pointer(), n),
                std::span<int>(pre.get_pointer(), n),
                sl::thread_pool::global());
        });
    });
}

/// Listing 2: custom Single-Task FPGA scan. The kernel consumes a shifted
/// flag stream so its prefix[i] = prefix[i-1] + results[i] recurrence yields
/// an exclusive scan of the original flags.
void submit_custom_scan(sl::queue& q, const params& p,
                        sl::buffer<int>& flags_shifted, sl::buffer<int>& prefix,
                        const perf::kernel_stats& stats) {
    q.submit([&](sl::handler& h) {
        auto results = h.get_access(flags_shifted, sl::access_mode::read);
        auto pre = h.get_access(prefix, sl::access_mode::discard_write);
        const std::size_t n = p.n;
        h.single_task(stats, [=]() {
            scan::exclusive_scan_fpga_custom(
                std::span<const int>(results.get_pointer(), n),
                std::span<int>(pre.get_pointer(), n));
        });
    });
}

}  // namespace

AppResult run(const RunConfig& cfg) {
    const perf::device_spec& dev = resolve_device(cfg);
    const params p = params::preset(cfg.size);
    if (crashes_on(dev, cfg.variant, cfg.size))
        throw std::runtime_error(
            "where: execution with size 3 crashes on Agilex (reproduced "
            "paper behaviour, Sec. 5.5)");

    const std::vector<record> table = make_table(p);
    const std::vector<record> expected = golden(p, table);

    sl::queue q(dev, runtime_for(cfg.variant));
    if (dev.is_fpga()) q.set_design(region(cfg.variant, dev, cfg.size).all_kernels());

    sl::buffer<record> table_buf(p.n);
    q.copy_to_device(table_buf, table.data());
    sl::buffer<int> flags(p.n);
    sl::buffer<int> prefix(p.n);
    sl::buffer<record> out(p.n);

    // Altis' Where times the query kernels only: restart the timed region
    // after data staging (transfers stay outside, unlike e.g. FDTD2D).
    q.reset_timers();

    const bool custom_scan = cfg.variant == Variant::fpga_opt;
    const bool onedpl_scan = cfg.variant != Variant::cuda && !custom_scan;
    const std::size_t wg = dev.is_fpga() ? 128 : 256;

    submit_mark(q, p, table_buf, flags, detail::stats_mark(p, dev, cfg.variant),
                wg);
    if (custom_scan) {
        // Shift flags by one element on device (cheap pass, folded into the
        // mark kernel on real hardware; modeled inside the scan stats).
        sl::buffer<int> shifted(p.n);
        {
            auto* src = flags.host_data();
            auto* dst = shifted.host_data();
            dst[0] = 0;
            for (std::size_t i = 1; i < p.n; ++i) dst[i] = src[i - 1];
        }
        submit_custom_scan(q, p, shifted, prefix,
                           detail::stats_scan(p, dev, cfg.variant));
    } else {
        if (onedpl_scan)
            q.annotate_overhead_ns(detail::onedpl_scan_overhead_ns(p, dev));
        submit_library_scan(q, p, flags, prefix,
                            detail::stats_scan(p, dev, cfg.variant));
    }
    submit_scatter(q, p, table_buf, flags, prefix, out,
                   detail::stats_scatter(p, dev, cfg.variant), wg);
    q.wait();

    const std::size_t count = expected.size();
    std::vector<record> actual(p.n);
    q.copy_from_device(out, actual.data());
    actual.resize(count);
    require_close(static_cast<double>(mismatch_count<record>(expected, actual)),
                  0.0, "where");

    AppResult r;
    r.kernel_ms = q.kernel_ns() / 1e6;
    r.non_kernel_ms = q.non_kernel_ns() / 1e6;
    r.total_ms = q.sim_now_ns() / 1e6;
    return r;
}

void register_app() {
    register_standard_app(
        "where", "Record filtering for data analytics (mark/scan/scatter)",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run);
}

}  // namespace altis::apps::where
