// Console table/series printers shared by the figure- and table-regenerating
// benchmark binaries. Each bench prints the same rows/series as the paper's
// corresponding exhibit.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace altis {

class ResultDatabase;

/// Fixed-width console table. Columns are sized to fit contents.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);
    void print(std::ostream& out) const;

    /// Format helper: fixed-point with `digits` decimals.
    static std::string num(double value, int digits = 2);
    /// Format helper: percentage with one decimal, e.g. "35.9%".
    static std::string percent(double fraction);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Prints a figure-like series block: one labeled row of values per series,
/// matching the bar groups in the paper's figures.
class SeriesBlock {
public:
    SeriesBlock(std::string title, std::vector<std::string> categories);

    void add_series(const std::string& label, const std::vector<double>& values,
                    int digits = 2);
    void print(std::ostream& out) const;

private:
    std::string title_;
    Table table_;
};

/// Prints the per-config outcome log of a resilient sweep: a one-line tally
/// ("N ok, N retried, N failed, N skipped") plus one row per non-ok config
/// with its attempt count and error string. Prints nothing when the database
/// holds no outcomes, so fault-free runs keep their historical output.
void print_outcomes(const ResultDatabase& db, std::ostream& out);

}  // namespace altis
