#include "perf/analysis.hpp"

#include <algorithm>
#include <ostream>

#include "perf/model.hpp"
#include "perf/resource_model.hpp"

namespace altis::perf {

const char* to_string(bottleneck b) {
    switch (b) {
        case bottleneck::compute: return "compute throughput";
        case bottleneck::memory_bandwidth: return "memory bandwidth";
        case bottleneck::latency: return "launch/wave latency";
        case bottleneck::pipeline: return "FPGA pipeline cycles";
        case bottleneck::local_memory: return "local-memory ports/arbiters";
    }
    return "unknown";
}

namespace {

void suggest(kernel_analysis& a, std::string what, std::string ref,
             double gain) {
    a.suggestions.push_back({std::move(what), std::move(ref), gain});
}

void fpga_suggestions(kernel_analysis& a, const kernel_stats& k,
                      const device_spec& dev, double fmax) {
    if (!k.args_restrict &&
        a.bound == bottleneck::memory_bandwidth) {
        kernel_stats fixed = k;
        fixed.args_restrict = true;
        const double gain = fpga_kernel_time_ns(k, dev, fmax) /
                            fpga_kernel_time_ns(fixed, dev, fmax);
        suggest(a, "denote non-aliasing pointers with "
                   "[[intel::kernel_args_restrict]]", "Sec. 5.1", gain);
    }
    if (a.bound == bottleneck::pipeline && k.form == kernel_form::nd_range &&
        k.simd < 8 && k.pattern == local_pattern::none) {
        kernel_stats wider = k;
        wider.simd = std::min(8, k.simd * 2 == 0 ? 2 : k.simd * 2);
        const double gain = fpga_kernel_time_ns(k, dev, fmax) /
                            fpga_kernel_time_ns(wider, dev, fmax);
        if (gain > 1.1)
            suggest(a, "vectorize with [[intel::num_simd_work_items]]",
                    "Sec. 5.2", gain);
    }
    if (a.bound == bottleneck::local_memory) {
        if (k.pattern == local_pattern::congested) {
            suggest(a, "access pattern prevents banking: arbiters serialize; "
                       "restructure the shared-memory layout or accept the "
                       "stall (unrolling would violate timing)",
                    "Sec. 5.2 case 3", 1.0);
        } else if (k.unroll < 30) {
            kernel_stats unrolled = k;
            unrolled.unroll = std::min(30, std::max(2, k.unroll * 4));
            const double gain = fpga_kernel_time_ns(k, dev, fmax) /
                                fpga_kernel_time_ns(unrolled, dev, fmax);
            if (gain > 1.1)
                suggest(a, "unroll the shared-memory loop (banking serves the "
                           "unrolled accesses)", "Sec. 5.2 case 1", gain);
        }
    }
    if (a.bound == bottleneck::pipeline && k.dep_chain_cycles > 4.0 &&
        k.form == kernel_form::nd_range) {
        suggest(a, "rewrite as Single-Task and interleave independent "
                   "iterations to hide the loop-carried chain", "Sec. 5.3",
                k.dep_chain_cycles / 4.0);
    }
    if (k.form == kernel_form::single_task) {
        for (const auto& loop : k.loops) {
            const double waste = loop.entries *
                                 (loop.speculated_iterations + 4.0);
            const double useful =
                loop.trip_count / std::max(1, loop.unroll) *
                std::max(1, loop.initiation_interval);
            if (loop.speculated_iterations > 1 && waste > 0.1 * useful)
                suggest(a, "lower [[intel::speculated_iterations]] on loop '" +
                               loop.name + "'",
                        "Sec. 5.3", (useful + waste) /
                                        (useful + loop.entries * 5.0));
        }
    }
    if (k.replication <= 2 && a.bound == bottleneck::pipeline) {
        kernel_stats repl = k;
        repl.replication = k.replication * 2;
        const auto fits = estimate_kernel_resources(repl, dev);
        if (fits.alm_frac < 0.5)
            suggest(a, "replicate compute units", "Sec. 5.1",
                    fpga_kernel_time_ns(k, dev, fmax) /
                        fpga_kernel_time_ns(repl, dev, fmax));
    }
    if (k.pass_accessor_objects)
        suggest(a, "pass pointers instead of accessor objects (member "
                   "functions get synthesized)", "Sec. 4", 1.0);
    if (k.dynamic_local_size)
        suggest(a, "size local memory exactly with "
                   "group_local_memory_for_overwrite (dynamic accessors "
                   "reserve 16 KiB each)", "Sec. 5.2 / Sec. 4", 1.0);
}

void xpu_suggestions(kernel_analysis& a, const kernel_stats& k,
                     const device_spec& dev) {
    if (a.bound == bottleneck::latency)
        suggest(a, "kernel is launch-bound: fuse launches or batch more work "
                   "per submission (cf. FDTD2D's non-kernel region, Fig. 1)",
                "Sec. 3.3", a.memory_only_ns > 0
                                ? a.time_ns / std::max(a.compute_only_ns,
                                                       a.memory_only_ns)
                                : 1.0);
    if (k.sfu_ops > 10.0 && a.bound == bottleneck::compute) {
        kernel_stats cheap = k;
        cheap.fp32_ops += cheap.sfu_ops;
        cheap.sfu_ops = 0.0;
        suggest(a, "replace special-function calls (e.g. pow(a,2) -> a*a)",
                "Sec. 3.3",
                kernel_time_ns(k, dev) / kernel_time_ns(cheap, dev));
    }
    if (k.occupancy < 0.9)
        suggest(a, "raise the inlining threshold (-finlining-threshold): "
                   "un-inlined calls cost registers and occupancy",
                "Sec. 3.3", 1.0 / (0.5 + 0.5 * k.occupancy));
    if (dev.kind == device_kind::gpu && k.divergence > 0.5 &&
        a.bound == bottleneck::compute)
        suggest(a, "reduce divergence (rewrite conditionals as ternaries / "
                   "sort work by behaviour)", "Sec. 5.2", 1.3);
}

}  // namespace

kernel_analysis analyze(const kernel_stats& k, const device_spec& dev,
                        double design_fmax_mhz) {
    kernel_analysis a;

    if (dev.is_fpga()) {
        const double fmax = design_fmax_mhz > 0.0
                                ? design_fmax_mhz
                                : estimate_kernel_resources(k, dev).fmax_mhz;
        a.time_ns = fpga_kernel_time_ns(k, dev, fmax);
        const double alias = k.args_restrict ? 1.0 : 1.35;
        a.memory_only_ns = k.total_bytes() * alias /
                           (dev.mem_bw_gbs * dev.mem_efficiency);
        // Pipe-only time: zero the global traffic.
        kernel_stats no_mem = k;
        no_mem.bytes_read = no_mem.bytes_written = 0.0;
        a.compute_only_ns = fpga_kernel_time_ns(no_mem, dev, fmax);

        if (a.memory_only_ns >= a.compute_only_ns * 0.999) {
            a.bound = bottleneck::memory_bandwidth;
            a.limit_utilization = 1.0;
        } else {
            // Pipeline-bound: distinguish local-memory cycles from datapath.
            const bool local_bound =
                k.form == kernel_form::nd_range &&
                k.pattern != local_pattern::none &&
                k.local_accesses / std::max(1, k.unroll) >
                    std::max(1.0, k.dep_chain_cycles) /
                        std::max(1, k.simd);
            a.bound = local_bound ? bottleneck::local_memory
                                  : bottleneck::pipeline;
            a.limit_utilization = a.memory_only_ns / a.time_ns;
        }
        fpga_suggestions(a, k, dev, fmax);
        return a;
    }

    a.time_ns = kernel_time_ns(k, dev);
    // Re-derive the roofline terms (mirrors perf::xpu_time_ns).
    kernel_stats mem_only = k;
    mem_only.fp32_ops = mem_only.fp64_ops = mem_only.int_ops =
        mem_only.sfu_ops = 0.0;
    mem_only.local_accesses = 0.0;
    a.memory_only_ns = kernel_time_ns(mem_only, dev);
    kernel_stats compute_only = k;
    compute_only.bytes_read = compute_only.bytes_written = 0.0;
    a.compute_only_ns = kernel_time_ns(compute_only, dev);

    const double floor_share =
        std::min(a.memory_only_ns, a.compute_only_ns) / a.time_ns;
    if (floor_share > 0.85 &&
        std::max(a.memory_only_ns, a.compute_only_ns) < a.time_ns * 1.02) {
        a.bound = bottleneck::latency;
        a.limit_utilization = 0.0;
    } else if (a.memory_only_ns >= a.compute_only_ns) {
        a.bound = bottleneck::memory_bandwidth;
        a.limit_utilization = a.memory_only_ns / a.time_ns;
    } else {
        a.bound = bottleneck::compute;
        a.limit_utilization = a.compute_only_ns / a.time_ns;
    }
    xpu_suggestions(a, k, dev);
    return a;
}

void render(const kernel_analysis& a, const kernel_stats& k,
            const device_spec& dev, std::ostream& out) {
    out << k.name << " on " << dev.display << ": " << a.time_ns / 1e6
        << " ms, bound by " << to_string(a.bound) << '\n';
    out << "  if compute-only: " << a.compute_only_ns / 1e6
        << " ms, if memory-only: " << a.memory_only_ns / 1e6 << " ms\n";
    for (const auto& s : a.suggestions) {
        out << "  -> " << s.what << " (" << s.paper_ref;
        if (s.expected_gain > 1.05)
            out << ", ~" << s.expected_gain << "x";
        out << ")\n";
    }
}

}  // namespace altis::perf
