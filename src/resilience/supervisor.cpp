#include "resilience/supervisor.hpp"

#include "metrics/instruments.hpp"

namespace altis::resilience {

supervisor::supervisor(const options& opts, const std::string& sweep)
    : opts_(opts), breaker_(opts.breaker) {
    if (!opts_.resume_path.empty()) {
        if (auto jf = read_journal(opts_.resume_path, sweep)) {
            for (auto& e : jf->entries) {
                // Interrupted configs are journaled as nothing; a stray
                // "cancelled" line (older files) must re-run too.
                if (e.status == "cancelled") continue;
                replay_.emplace(e.config, std::move(e));
            }
        }
    }
    if (!opts_.journal_path.empty()) {
        // An explicit --journal wins over appending to the resume file:
        // the fresh journal re-records everything (including replays), so
        // it is a compacted, complete checkpoint of this run.
        writer_.emplace(opts_.journal_path, sweep, /*append=*/false);
    } else if (!opts_.resume_path.empty()) {
        writer_.emplace(opts_.resume_path, sweep, /*append=*/true);
        writer_appends_ = true;
    }
}

supervisor::result supervisor::run(
    const std::string& config, const std::string& breaker_key,
    const std::function<journal_entry()>& body) {
    if (const auto it = replay_.find(config); it != replay_.end()) {
        result r{it->second, /*replayed=*/true};
        // Drive the breaker through the same admit/report sequence the
        // original run took: the sweep re-encounters configs in the same
        // deterministic order, so breaker state (and every later
        // quarantine decision) evolves identically to the uninterrupted
        // run -- which is what makes the final report byte-identical.
        if (r.entry.status == "quarantined") {
            (void)breaker_.admit(breaker_key);
        } else {
            (void)breaker_.admit(breaker_key);
            breaker_.report(breaker_key, hard_failure(r.entry.status));
        }
        if (metrics::collecting())
            metrics::instruments::resilience_replays().add();
        if (writer_ && !writer_appends_) writer_->append(r.entry);
        return r;
    }

    if (!breaker_.admit(breaker_key)) {
        result r;
        r.entry.config = config;
        r.entry.status = "quarantined";
        r.entry.attempts = 0;
        r.entry.error = "circuit open: " + std::to_string(breaker_.policy().threshold) +
                        " consecutive hard failures of " + breaker_key +
                        " (probe after " +
                        std::to_string(breaker_.policy().cooldown) +
                        " more configs)";
        if (metrics::collecting())
            metrics::instruments::resilience_quarantined().add();
        if (writer_) writer_->append(r.entry);
        return r;
    }

    result r;
    {
        deadline_scope deadline(opts_.deadline_ms);
        r.entry = body();
    }
    r.entry.config = config;
    breaker_.report(breaker_key, hard_failure(r.entry.status));
    if (writer_ && r.entry.status != "cancelled") writer_->append(r.entry);
    return r;
}

}  // namespace altis::resilience
