#include "analyze/pipes.hpp"

#include <cmath>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <utility>

namespace altis::analyze {

namespace {

struct pipe_use {
    std::string name;
    std::size_t capacity = 0;
    std::vector<std::pair<const node*, const pipe_endpoint*>> writers;
    std::vector<std::pair<const node*, const pipe_endpoint*>> readers;
};

void lint_peers_and_volumes(const std::map<const void*, pipe_use>& pipes,
                            report& out) {
    for (const auto& [id, use] : pipes) {
        if (use.writers.empty())
            for (const auto& [k, e] : use.readers)
                out.add(make_finding("ALS-P1", k->kernel, use.name,
                                     "kernel reads pipe '" + use.name +
                                         "' but no kernel in the group "
                                         "writes it"));
        if (use.readers.empty())
            for (const auto& [k, e] : use.writers)
                out.add(make_finding("ALS-P1", k->kernel, use.name,
                                     "kernel writes pipe '" + use.name +
                                         "' but no kernel in the group "
                                         "reads it"));
        if (use.writers.empty() || use.readers.empty()) continue;

        double written = 0.0, read = 0.0;
        bool known = true;
        for (const auto& [k, e] : use.writers) {
            if (e->items_per_round <= 0.0) known = false;
            written += e->total_items();
        }
        for (const auto& [k, e] : use.readers) {
            if (e->items_per_round <= 0.0) known = false;
            read += e->total_items();
        }
        if (known && std::abs(written - read) > 1e-9)
            out.add(make_finding(
                "ALS-P3",
                use.writers.front().first->kernel + " & " +
                    use.readers.front().first->kernel,
                use.name,
                "producers write " + std::to_string(written) +
                    " items but consumers read " + std::to_string(read)));
    }
}

/// ALS-P2: cycle detection restricted to "overflowing" edges (per-round
/// volume exceeds capacity). A cycle that survives the restriction has no
/// pipe able to buffer a round, so the group cannot make progress.
void lint_capacity_cycles(const std::vector<node>& kernels,
                          const std::map<const void*, pipe_use>& pipes,
                          report& out) {
    std::map<const node*, std::size_t> index;
    for (std::size_t i = 0; i < kernels.size(); ++i)
        index.emplace(&kernels[i], i);

    struct edge {
        std::size_t to;
        const pipe_use* pipe;
        double items = 0.0;
    };
    std::vector<std::vector<edge>> adj(kernels.size());
    for (const auto& [id, use] : pipes)
        for (const auto& [wk, we] : use.writers)
            for (const auto& [rk, re] : use.readers) {
                if (we->items_per_round <= 0.0) continue;
                if (we->items_per_round <=
                    static_cast<double>(use.capacity))
                    continue;  // this pipe can buffer a full round
                adj[index.at(wk)].push_back(
                    {index.at(rk), &use, we->items_per_round});
            }

    // Recursive DFS cycle detection (groups hold a handful of kernels).
    enum class color { white, grey, black };
    std::vector<color> c(kernels.size(), color::white);
    std::vector<std::size_t> path;
    const std::function<const edge*(std::size_t)> visit =
        [&](std::size_t v) -> const edge* {
        c[v] = color::grey;
        path.push_back(v);
        for (const edge& e : adj[v]) {
            if (c[e.to] == color::grey) return &e;
            if (c[e.to] == color::white)
                if (const edge* found = visit(e.to)) return found;
        }
        path.pop_back();
        c[v] = color::black;
        return nullptr;
    };
    for (std::size_t root = 0; root < kernels.size(); ++root) {
        if (c[root] != color::white) continue;
        path.clear();
        const edge* cyc = visit(root);
        if (cyc == nullptr) continue;
        std::string names;
        for (const std::size_t p : path)
            names += (names.empty() ? "" : " -> ") + kernels[p].kernel;
        out.add(make_finding(
            "ALS-P2", names, cyc->pipe->name,
            "feedback cycle in which every pipe's per-round volume exceeds "
            "its capacity (e.g. '" +
                cyc->pipe->name + "': " + std::to_string(cyc->items) +
                " items/round > capacity " +
                std::to_string(cyc->pipe->capacity) + ")"));
        return;  // one finding per group is enough
    }
}

}  // namespace

void lint_pipe_group(const std::vector<node>& kernels, report& out) {
    std::map<const void*, pipe_use> pipes;
    for (const node& n : kernels)
        for (const pipe_endpoint& e : n.pipes) {
            pipe_use& u = pipes[e.pipe];
            u.name = e.name;
            u.capacity = e.capacity;
            (e.dir == pipe_dir::write ? u.writers : u.readers)
                .emplace_back(&n, &e);
        }
    if (pipes.empty()) return;
    lint_peers_and_volumes(pipes, out);
    lint_capacity_cycles(kernels, pipes, out);
}

void lint_pipes(const command_graph& g, report& out) {
    std::map<std::pair<int, int>, std::vector<node>> groups;
    for (const node& n : g.nodes)
        if (n.kind == node_kind::kernel && !n.simulated && n.group >= 0)
            groups[{n.queue, n.group}].push_back(n);
    for (const auto& [key, kernels] : groups) lint_pipe_group(kernels, out);
}

}  // namespace altis::analyze
