#include "perf/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "perf/resource_model.hpp"

namespace altis::perf {

namespace {

constexpr double kNsPerSec = 1e9;

// ---------------------------------------------------------------- CPU / GPU

double xpu_time_ns(const kernel_stats& k, const device_spec& dev) {
    const double occ = std::clamp(k.occupancy, 0.1, 1.0);
    const double eff = dev.compute_efficiency *
                       (1.0 - 0.5 * std::clamp(k.divergence, 0.0, 1.0)) *
                       (0.8 + 0.2 * occ);

    // On the CPU backend, heavily data-dependent loops (early-exit searches,
    // per-item trip counts) defeat vectorization entirely and fall back to
    // near-scalar issue (~5 Gop/s per core). Mildly divergent kernels still
    // vectorize with masking; GPUs mask per lane either way (via `eff`).
    const double scalar_cap_ops =
        static_cast<double>(dev.compute_units) * 5.0e9;
    auto cpu_rate = [&](double vector_rate) {
        if (dev.kind != device_kind::cpu || k.divergence < 0.58)
            return vector_rate;
        return std::min(vector_rate, scalar_cap_ops);
    };

    double compute_s = 0.0;
    if (dev.peak_fp32_tflops > 0.0)
        compute_s +=
            k.total_fp32() / cpu_rate(dev.peak_fp32_tflops * 1e12 * eff);
    if (dev.peak_fp64_tflops > 0.0)
        compute_s +=
            k.total_fp64() / cpu_rate(dev.peak_fp64_tflops * 1e12 * eff);
    // Integer/address arithmetic issues on the FP32 pipes at a similar rate.
    if (dev.peak_fp32_tflops > 0.0)
        compute_s += k.total_int() / cpu_rate(dev.peak_fp32_tflops * 1e12 * 0.8);
    if (dev.peak_sfu_tops > 0.0)
        compute_s += k.total_sfu() / (dev.peak_sfu_tops * 1e12);

    // On-chip shared/local memory: roughly 6x the DRAM bandwidth.
    const double local_bytes = k.local_accesses * 4.0 * k.global_items;
    compute_s += local_bytes / (dev.mem_bw_gbs * 1e9 * 6.0);

    const double mem_s = k.total_bytes() / (dev.mem_bw_gbs * 1e9 *
                                            dev.mem_efficiency *
                                            (0.7 + 0.3 * occ));

    double floor_ns = 0.0;
    if (dev.kind == device_kind::gpu) {
        // Pipeline/wave latency: a kernel cannot finish faster than its wave
        // count allows, and never faster than the device round-trip. Low
        // occupancy exposes more of this latency.
        const double groups = std::max(1.0, k.num_groups());
        const double waves =
            std::ceil(groups / (static_cast<double>(dev.compute_units) * 32.0));
        floor_ns = (1800.0 + waves * 150.0) / occ;
        // Work-group barriers cost a pipeline re-fill each.
        floor_ns += k.barriers * groups * 100.0 /
                    (static_cast<double>(dev.compute_units) * occ);
    } else {
        // Parallel-region fork/join on the host.
        floor_ns = 5000.0;
    }

    return std::max(compute_s, mem_s) * kNsPerSec + floor_ns;
}

// --------------------------------------------------------------------- FPGA

// Datapath cycles per work-item (before SIMD widening). An FPGA ND-Range
// pipeline spatializes the whole straight-line kernel body and retires one
// work-item per cycle regardless of its op count -- which is why most Altis
// FPGA designs end up limited by board memory bandwidth (Sec. 5.4/6). Only
// serial recurrences (dep_chain_cycles: Mandelbrot's escape chain, a path
// tracer's bounce chain) force more cycles per item.
double fpga_fp_item_cycles(const kernel_stats& k) {
    return std::max(1.0, k.dep_chain_cycles);
}

// Local-memory cycles per work-item; SIMD does not help here (port sharing).
double fpga_local_item_cycles(const kernel_stats& k) {
    const double unroll = std::max(1, k.unroll);
    switch (k.pattern) {
        case local_pattern::none:
        case local_pattern::scalar:
            return 0.0;
        case local_pattern::banked:
            // Banking serves `unroll` accesses per cycle (Sec. 5.2 case 1:
            // LavaMD speeds up almost linearly with the unroll factor).
            return k.local_accesses / unroll;
        case local_pattern::congested:
            // Arbiters serialize and stall (Sec. 5.2 case 3).
            return 2.0 + k.local_accesses / 2.0;
    }
    return 0.0;
}

double fpga_nd_range_cycles(const kernel_stats& k) {
    const double simd = std::max(1, k.simd);
    const double repl = std::max(1, k.replication);
    // SIMD lanes share the work-group local memory: banking serves the
    // unrolled accesses of one item, but vector lanes contend for the same
    // ports (Sec. 5.2 case 2 -- why SRAD prefers wide work-groups over wide
    // SIMD). FP datapaths replicate cleanly with SIMD.
    const double divergence_stall =
        1.0 + 2.0 * std::clamp(k.divergence, 0.0, 1.0);
    const double fp_cycles_per_item =
        std::max({1.0, fpga_fp_item_cycles(k), k.dep_chain_cycles}) *
        divergence_stall;
    const double local_cycles_per_item = fpga_local_item_cycles(k);
    const double cycles_fp = k.global_items * fp_cycles_per_item / simd;
    const double cycles_local = k.global_items * local_cycles_per_item;
    double cycles = std::max(cycles_fp, cycles_local) / repl;

    // Each barrier drains and refills the work-group pipeline.
    const double groups = std::max(1.0, k.num_groups() / repl);
    cycles += groups * k.barriers * (25.0 + k.wg_size / std::max(simd, 2.0));

    return cycles + 300.0;  // pipeline startup
}

double fpga_single_task_cycles(const kernel_stats& k) {
    double cycles = 200.0;  // control prologue
    for (const auto& loop : k.loops) {
        const double unroll = std::max(1, loop.unroll);
        cycles += loop.trip_count / unroll *
                  static_cast<double>(std::max(1, loop.initiation_interval));
        // Every loop exit discards the speculated in-flight iterations and
        // pays a short refill bubble (Sec. 5.3).
        cycles += loop.entries *
                  (static_cast<double>(loop.speculated_iterations) + 4.0);
    }
    // Replicated compute units split the trip counts (SubmitComputeUnits).
    return cycles / std::max(1, k.replication);
}

}  // namespace

double fpga_kernel_time_ns(const kernel_stats& k, const device_spec& dev,
                           double fmax_mhz) {
    if (!dev.is_fpga())
        throw std::invalid_argument("fpga_kernel_time_ns: not an FPGA device");
    const double cycles = (k.form == kernel_form::single_task)
                              ? fpga_single_task_cycles(k)
                              : fpga_nd_range_cycles(k);
    const double pipe_s = cycles / (fmax_mhz * 1e6);
    // Without [[intel::kernel_args_restrict]] the compiler must assume
    // aliasing and emits conservative, non-coalescing load/store units --
    // one of the paper's "general optimizations" (Sec. 5.1).
    const double alias_penalty = k.args_restrict ? 1.0 : 1.35;
    const double mem_s = k.total_bytes() * alias_penalty /
                         (dev.mem_bw_gbs * 1e9 * dev.mem_efficiency);
    return std::max(pipe_s, mem_s) * kNsPerSec;
}

double kernel_time_ns(const kernel_stats& k, const device_spec& dev) {
    if (!dev.is_fpga()) return xpu_time_ns(k, dev);
    const resource_usage u = estimate_kernel_resources(k, dev);
    return fpga_kernel_time_ns(k, dev, u.fmax_mhz);
}

double dataflow_time_ns(std::span<const kernel_stats> kernels,
                        const device_spec& dev) {
    double worst = 0.0;
    if (dev.is_fpga()) {
        // All kernels share one bitstream: clock everything at design Fmax.
        const resource_usage design = estimate_design_resources(kernels, dev);
        for (const auto& k : kernels)
            worst = std::max(worst, fpga_kernel_time_ns(k, dev, design.fmax_mhz));
    } else {
        for (const auto& k : kernels)
            worst = std::max(worst, kernel_time_ns(k, dev));
    }
    return worst;
}

double dataflow_time_ns(const std::vector<kernel_stats>& kernels,
                        const device_spec& dev) {
    return dataflow_time_ns(
        std::span<const kernel_stats>(kernels.data(), kernels.size()), dev);
}

}  // namespace altis::perf
