#include "rng/philox.hpp"

namespace altis::rng {

namespace {

constexpr std::uint32_t kM0 = 0xD2511F53u;
constexpr std::uint32_t kM1 = 0xCD9E8D57u;
constexpr std::uint32_t kW0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kW1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                    std::uint32_t& lo) {
    const std::uint64_t p = static_cast<std::uint64_t>(a) * b;
    hi = static_cast<std::uint32_t>(p >> 32);
    lo = static_cast<std::uint32_t>(p);
}

inline philox4x32::counter_t round(const philox4x32::counter_t& ctr,
                                   const philox4x32::key_t& key) {
    std::uint32_t hi0, lo0, hi1, lo1;
    mulhilo(kM0, ctr[0], hi0, lo0);
    mulhilo(kM1, ctr[2], hi1, lo1);
    return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

}  // namespace

philox4x32::counter_t philox4x32::block(counter_t ctr, key_t key) {
    for (int r = 0; r < 10; ++r) {
        ctr = round(ctr, key);
        if (r < 9) {
            key[0] += kW0;
            key[1] += kW1;
        }
    }
    return ctr;
}

}  // namespace altis::rng
