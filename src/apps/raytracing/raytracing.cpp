#include "apps/raytracing/raytracing.hpp"

#include <cmath>

#include "apps/common/verify.hpp"
#include "rng/philox.hpp"
#include "rng/xorwow.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps::raytracing {

params params::preset(int size) {
    switch (size) {
        case 1: return {256, 256, 4, 8, 0x7ace5ULL};
        case 2: return {512, 512, 8, 8, 0x7ace5ULL};
        case 3: return {1024, 1024, 16, 8, 0x7ace5ULL};
        default: throw std::invalid_argument("raytracing: size must be 1..3");
    }
}

material material::make_metal(vec3 albedo, float fuzz) {
    material m;
    m.data = {fuzz, 0.0f, albedo.x, albedo.y, albedo.z,
              static_cast<float>(metal), 0.0f, 0.0f};
    return m;
}
material material::make_dielectric(float ref_idx) {
    material m;
    m.data = {0.0f, ref_idx, 1.0f, 1.0f, 1.0f,
              static_cast<float>(dielectric), 0.0f, 0.0f};
    return m;
}
material material::make_lambertian(vec3 albedo) {
    material m;
    m.data = {0.0f, 0.0f, albedo.x, albedo.y, albedo.z,
              static_cast<float>(lambertian), 0.0f, 0.0f};
    return m;
}

namespace {

vec3 operator+(vec3 a, vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
vec3 operator-(vec3 a, vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
vec3 operator*(vec3 a, float s) { return {a.x * s, a.y * s, a.z * s}; }
vec3 operator*(vec3 a, vec3 b) { return {a.x * b.x, a.y * b.y, a.z * b.z}; }
float dot(vec3 a, vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
vec3 normalize(vec3 v) {
    const float inv = 1.0f / std::sqrt(dot(v, v));
    return v * inv;
}
vec3 reflect(vec3 v, vec3 n) { return v - n * (2.0f * dot(v, n)); }

struct ray {
    vec3 origin, dir;
};

/// Unified per-sample random stream over either generator.
class sampler {
public:
    sampler(rng_kind kind, std::uint64_t seed, std::uint32_t pixel,
            std::uint32_t sample)
        : kind_(kind),
          xw_(rng_kind_seed(seed, pixel, sample)),
          ph_(seed, (static_cast<std::uint64_t>(pixel) << 16) | sample) {}

    float next() {
        return kind_ == rng_kind::xorwow ? xw_.next_float() : ph_.next_float();
    }

private:
    static std::uint64_t rng_kind_seed(std::uint64_t seed, std::uint32_t pixel,
                                       std::uint32_t sample) {
        std::uint64_t s = seed ^ (static_cast<std::uint64_t>(pixel) << 20) ^
                          sample;
        return rng::splitmix64(s);
    }
    rng_kind kind_;
    rng::xorwow xw_;
    rng::philox4x32 ph_;
};

vec3 random_in_unit_sphere(sampler& rng) {
    for (int tries = 0; tries < 16; ++tries) {
        const vec3 v{2.0f * rng.next() - 1.0f, 2.0f * rng.next() - 1.0f,
                     2.0f * rng.next() - 1.0f};
        if (dot(v, v) < 1.0f) return v;
    }
    return {0.0f, 0.0f, 0.0f};
}

bool hit_sphere(const sphere& s, const ray& r, float tmin, float tmax,
                float& t_out, vec3& n_out) {
    const vec3 oc = r.origin - s.center;
    const float a = dot(r.dir, r.dir);
    const float b = dot(oc, r.dir);
    const float c = dot(oc, oc) - s.radius * s.radius;
    const float disc = b * b - a * c;
    if (disc <= 0.0f) return false;
    const float sq = std::sqrt(disc);
    for (const float t : {(-b - sq) / a, (-b + sq) / a}) {
        if (t > tmin && t < tmax) {
            t_out = t;
            n_out = normalize((r.origin + r.dir * t) - s.center);
            return true;
        }
    }
    return false;
}

float schlick(float cosine, float ref_idx) {
    float r0 = (1.0f - ref_idx) / (1.0f + ref_idx);
    r0 = r0 * r0;
    // (1-cos)^5 as a multiply chain: pow() with a small constant integer
    // exponent expands to an exp/log sequence (Sec. 3.3's 2-6x trap, lint
    // rule ALS-L1).
    const float m = 1.0f - cosine;
    const float m2 = m * m;
    return r0 + (1.0f - r0) * (m2 * m2 * m);
}

bool refract(vec3 v, vec3 n, float ni_over_nt, vec3& refracted) {
    const vec3 uv = normalize(v);
    const float dt = dot(uv, n);
    const float disc = 1.0f - ni_over_nt * ni_over_nt * (1.0f - dt * dt);
    if (disc <= 0.0f) return false;
    refracted = (uv - n * dt) * ni_over_nt - n * std::sqrt(disc);
    return true;
}

/// Scatter by material kind -- the branch that replaced the CUDA virtual
/// call (Sec. 3.2.2). Returns false when the ray is absorbed.
bool scatter(const material& m, const ray& in, vec3 p, vec3 n, sampler& rng,
             vec3& attenuation, ray& out) {
    const vec3 albedo{m.data[2], m.data[3], m.data[4]};
    switch (m.kind()) {
        case material::lambertian: {
            attenuation = albedo;
            out = {p, normalize(n + random_in_unit_sphere(rng))};
            return true;
        }
        case material::metal: {
            attenuation = albedo;
            const vec3 dir =
                reflect(normalize(in.dir), n) + random_in_unit_sphere(rng) * m.data[0];
            out = {p, dir};
            return dot(dir, n) > 0.0f;
        }
        case material::dielectric: {
            attenuation = {1.0f, 1.0f, 1.0f};
            const float ref_idx = m.data[1];
            vec3 outward_n = n;
            float ni_over_nt = 1.0f / ref_idx;
            float cosine = -dot(normalize(in.dir), n);
            if (dot(in.dir, n) > 0.0f) {
                outward_n = n * -1.0f;
                ni_over_nt = ref_idx;
                cosine = ref_idx * dot(normalize(in.dir), n);
            }
            vec3 refracted;
            if (refract(in.dir, outward_n, ni_over_nt, refracted) &&
                rng.next() >= schlick(cosine, ref_idx)) {
                out = {p, refracted};
            } else {
                out = {p, reflect(normalize(in.dir), n)};
            }
            return true;
        }
        default: return false;
    }
}

struct trace_counters {
    long bounces = 0;
    long rays = 0;
    long tests = 0;
};

vec3 trace(const sphere* scene, std::size_t nspheres, ray r, int max_depth,
           sampler& rng, trace_counters* counters) {
    vec3 color{1.0f, 1.0f, 1.0f};
    for (int depth = 0; depth < max_depth; ++depth) {
        if (counters != nullptr) {
            ++counters->rays;
            counters->tests += static_cast<long>(nspheres);
        }
        float best_t = 1e9f;
        vec3 best_n{};
        std::size_t best_i = nspheres;
        for (std::size_t i = 0; i < nspheres; ++i) {
            float t;
            vec3 n;
            if (hit_sphere(scene[i], r, 1e-3f, best_t, t, n)) {
                best_t = t;
                best_n = n;
                best_i = i;
            }
        }
        if (best_i == nspheres) {
            // Sky gradient background.
            const float s = 0.5f * (normalize(r.dir).y + 1.0f);
            const vec3 sky =
                vec3{1.0f, 1.0f, 1.0f} * (1.0f - s) + vec3{0.5f, 0.7f, 1.0f} * s;
            return color * sky;
        }
        if (counters != nullptr) ++counters->bounces;
        const vec3 p = r.origin + r.dir * best_t;
        vec3 attenuation;
        ray scattered;
        if (!scatter(scene[best_i].mat, r, p, best_n, rng, attenuation,
                     scattered))
            return {0.0f, 0.0f, 0.0f};
        color = color * attenuation;
        r = scattered;
    }
    return {0.0f, 0.0f, 0.0f};
}

ray camera_ray(const params& p, std::size_t px, std::size_t py, float jx,
               float jy) {
    const float u =
        (static_cast<float>(px) + jx) / static_cast<float>(p.width) * 2.0f - 1.0f;
    const float v =
        (static_cast<float>(py) + jy) / static_cast<float>(p.height) * 2.0f - 1.0f;
    const vec3 origin{0.0f, 1.2f, 3.0f};
    const vec3 dir = normalize(vec3{u * 1.6f, -v * 0.9f - 0.25f, -1.0f});
    return {origin, dir};
}

vec3 render_pixel(const params& p, const sphere* scene, std::size_t nspheres,
                  rng_kind kind, std::size_t px, std::size_t py,
                  trace_counters* counters) {
    vec3 acc{};
    for (int s = 0; s < p.samples; ++s) {
        sampler rng(kind, p.seed,
                    static_cast<std::uint32_t>(py * p.width + px),
                    static_cast<std::uint32_t>(s));
        const ray r = camera_ray(p, px, py, rng.next(), rng.next());
        acc = acc + trace(scene, nspheres, r, p.max_depth, rng, counters);
    }
    return acc * (1.0f / static_cast<float>(p.samples));
}

}  // namespace

std::vector<sphere> make_scene() {
    std::vector<sphere> scene;
    scene.push_back({{0.0f, -100.5f, -1.0f}, 100.0f,
                     material::make_lambertian({0.5f, 0.5f, 0.5f})});
    // 4x4 grid of small spheres with cycling materials.
    int idx = 0;
    for (int gz = 0; gz < 4; ++gz)
        for (int gx = 0; gx < 4; ++gx, ++idx) {
            const vec3 c{-1.8f + 1.2f * static_cast<float>(gx), -0.3f,
                         -2.5f + 0.9f * static_cast<float>(gz)};
            material m;
            switch (idx % 3) {
                case 0:
                    m = material::make_lambertian(
                        {0.2f + 0.15f * static_cast<float>(gx), 0.4f,
                         0.2f + 0.15f * static_cast<float>(gz)});
                    break;
                case 1:
                    m = material::make_metal(
                        {0.8f, 0.6f + 0.1f * static_cast<float>(gx % 3), 0.4f},
                        0.05f * static_cast<float>(gz));
                    break;
                default: m = material::make_dielectric(1.5f); break;
            }
            scene.push_back({c, 0.2f, m});
        }
    scene.push_back({{-1.0f, 0.3f, -1.6f}, 0.8f,
                     material::make_metal({0.85f, 0.85f, 0.9f}, 0.02f)});
    scene.push_back({{1.1f, 0.2f, -1.2f}, 0.7f, material::make_dielectric(1.5f)});
    scene.push_back({{0.1f, 0.15f, -0.6f}, 0.45f,
                     material::make_lambertian({0.7f, 0.3f, 0.25f})});
    return scene;
}

std::vector<vec3> golden(const params& p, rng_kind kind) {
    const std::vector<sphere> scene = make_scene();
    std::vector<vec3> image(p.pixels());
    for (std::size_t py = 0; py < p.height; ++py)
        for (std::size_t px = 0; px < p.width; ++px)
            image[py * p.width + px] = render_pixel(
                p, scene.data(), scene.size(), kind, px, py, nullptr);
    return image;
}

trace_profile probe_profile(const params& p) {
    params probe = p;
    probe.width = probe.height = 64;
    probe.samples = 2;
    const std::vector<sphere> scene = make_scene();
    trace_counters counters;
    for (std::size_t py = 0; py < probe.height; ++py)
        for (std::size_t px = 0; px < probe.width; ++px)
            render_pixel(probe, scene.data(), scene.size(), rng_kind::philox,
                         px, py, &counters);
    trace_profile out;
    const double samples =
        static_cast<double>(probe.pixels()) * probe.samples;
    out.mean_bounces = static_cast<double>(counters.rays) / samples;
    out.tests_per_ray = static_cast<double>(counters.tests) /
                        std::max(1.0, static_cast<double>(counters.rays));
    return out;
}

namespace detail {

perf::kernel_stats stats_render(const params& p, Variant v,
                                const perf::device_spec& dev);

}  // namespace detail

AppResult run(const RunConfig& cfg) {
    const perf::device_spec& dev = resolve_device(cfg);
    const params p = params::preset(cfg.size);
    const rng_kind kind =
        cfg.variant == Variant::cuda ? rng_kind::xorwow : rng_kind::philox;
    const std::vector<vec3> expected = golden(p, kind);
    const std::vector<sphere> scene = make_scene();

    sl::queue q(dev, runtime_for(cfg.variant));
    if (dev.is_fpga()) q.set_design(region(cfg.variant, dev, cfg.size).all_kernels());
    // One-time context/JIT setup is excluded from the timed region (warmed up).

    sl::buffer<sphere> scene_buf(scene.size());
    q.copy_to_device(scene_buf, scene.data());
    sl::buffer<vec3> image(p.pixels());

    q.submit([&](sl::handler& h) {
        auto sc = h.get_access(scene_buf, sl::access_mode::read);
        auto img = h.get_access(image, sl::access_mode::discard_write);
        const params cp = p;
        const std::size_t nspheres = scene.size();
        const rng_kind k = kind;
        h.parallel_for(
            sl::nd_range<1>(sl::range<1>(p.pixels()),
                            sl::range<1>(dev.is_fpga() ? 128 : 256)),
            detail::stats_render(p, cfg.variant, dev), [=](sl::nd_item<1> it) {
                const std::size_t gid = it.get_global_id(0);
                img[gid] = render_pixel(cp, &sc[0], nspheres, k,
                                        gid % cp.width, gid / cp.width,
                                        nullptr);
            });
    });
    q.wait();

    std::vector<vec3> got(p.pixels());
    q.copy_from_device(image, got.data());
    double err = 0.0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        err = std::max({err, std::abs(static_cast<double>(got[i].x - expected[i].x)),
                        std::abs(static_cast<double>(got[i].y - expected[i].y)),
                        std::abs(static_cast<double>(got[i].z - expected[i].z))});
    }
    require_close(err, 1e-6, "raytracing image");

    AppResult r;
    r.kernel_ms = q.kernel_ns() / 1e6;
    r.non_kernel_ms = q.non_kernel_ns() / 1e6;
    r.total_ms = q.sim_now_ns() / 1e6;
    r.error = err;
    return r;
}

void register_app() {
    register_standard_app(
        "raytracing", "Path-traced sphere scene (Listing 1 float8 materials)",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run);
}

}  // namespace altis::apps::raytracing
