# Empty compiler generated dependencies file for ablation_scan.
# This may be replaced when dependencies are built.
