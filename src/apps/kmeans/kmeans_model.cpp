// Model descriptors for KMeans. The baseline launches 4 kernels x
// `iterations` through global memory; the optimized design is one dataflow
// launch of two Single-Task kernels for the whole clustering (Fig. 3).
#include "apps/kmeans/kmeans.hpp"

#include <algorithm>
#include <cmath>

namespace altis::apps::kmeans {
namespace detail {

perf::kernel_stats stats_map_nd(const params& p, const perf::device_spec& dev) {
    perf::kernel_stats k;
    k.name = "kmeans_mapCenters_nd";
    k.global_items = static_cast<double>(p.n);
    k.wg_size = dev.is_fpga() ? 64 : 256;
    const double kd = static_cast<double>(p.k * p.d);
    k.fp32_ops = kd * 3.0;             // sub, mul, add per feature per center
    k.int_ops = static_cast<double>(p.k) * 2.0;
    // The DPCT ND-Range kernel iterates centers x features serially with a
    // loop-carried distance accumulator: each feature's FMA waits on the
    // previous one's result (~4-cycle FP32 add latency) on an FPGA datapath.
    // (The optimized design escapes this via the Single-Task rewrite with a
    // d-parallel MAC array; Fig. 3/4's ~510x.)
    k.dep_chain_cycles = static_cast<double>(p.k * p.d) * 3.0;
    k.bytes_read = static_cast<double>(p.d) * 4.0 + kd * 4.0 / 64.0;  // centers cached
    k.bytes_written = 4.0;
    k.static_fp32_ops = static_cast<double>(p.d) * 3.0;
    k.static_int_ops = 20;
    k.static_branches = 3;
    k.accessor_args = 3;
    k.control_complexity = 2;
    return k;
}

perf::kernel_stats stats_reset_nd(const params& p) {
    perf::kernel_stats k;
    k.name = "kmeans_reset_nd";
    k.global_items = static_cast<double>(p.k * p.d);
    k.wg_size = std::min<std::size_t>(p.k * p.d, 64);
    k.int_ops = 2.0;
    k.bytes_written = 4.0;
    k.static_int_ops = 4;
    k.accessor_args = 2;
    k.control_complexity = 1;
    return k;
}

perf::kernel_stats stats_accumulate_nd(const params& p) {
    perf::kernel_stats k;
    k.name = "kmeans_accumulate_nd";
    // Launch geometry: one work-item per 512-point chunk (matches the
    // hierarchical launch in kmeans.cpp); per-item costs are per-chunk.
    const double chunk = 512.0;
    const double chunks = std::ceil(static_cast<double>(p.n) / chunk);
    k.global_items = chunks;
    k.wg_size = 1;
    k.fp32_ops = static_cast<double>(p.d) * chunk;
    k.int_ops = 6.0 * chunk;
    k.bytes_read = (static_cast<double>(p.d) * 4.0 + 4.0) * chunk;
    k.bytes_written = static_cast<double>(p.k * p.d) * 4.0 + p.k * 4.0;
    k.barriers = 1.0;
    // Scattered accumulation into per-group partial arrays: irregular local
    // access the FPGA compiler arbitrates.
    k.pattern = perf::local_pattern::congested;
    k.local_arrays = 2;
    k.local_mem_bytes = static_cast<double>(p.k * p.d) * 4.0 + p.k * 4.0;
    k.local_accesses = (static_cast<double>(p.d) + 1.0) * 512.0;
    k.dynamic_local_size = true;  // DPCT accessors in the migrated version
    k.static_fp32_ops = static_cast<double>(p.d);
    k.static_int_ops = 16;
    k.static_branches = 4;
    k.accessor_args = 4;
    k.control_complexity = 3;
    return k;
}

perf::kernel_stats stats_finalize_nd(const params& p) {
    perf::kernel_stats k;
    k.name = "kmeans_finalize_nd";
    k.global_items = static_cast<double>(p.k);
    k.wg_size = 1;
    const double chunks = std::ceil(static_cast<double>(p.n) / 512.0);
    k.fp32_ops = chunks * static_cast<double>(p.d) + static_cast<double>(p.d);
    k.int_ops = chunks;
    k.bytes_read = chunks * (static_cast<double>(p.d) * 4.0 + 4.0);
    k.bytes_written = static_cast<double>(p.d) * 4.0;
    k.static_fp32_ops = static_cast<double>(p.d);
    k.static_int_ops = 10;
    k.static_branches = 3;
    k.accessor_args = 3;
    k.control_complexity = 2;
    return k;
}

perf::kernel_stats stats_map_st(const params& p, const perf::device_spec& dev) {
    (void)dev;
    perf::kernel_stats k;
    k.name = "kmeans_mapCenters_st";
    k.form = perf::kernel_form::single_task;
    const double n = static_cast<double>(p.n);
    const double iters = static_cast<double>(p.iterations);
    // The only kernel touching global memory in the optimized design.
    k.bytes_read = n * static_cast<double>(p.d) * 4.0 * iters +
                   static_cast<double>(p.k * p.d) * 4.0;
    k.bytes_written = n * 4.0;  // final assignments
    k.writes_pipe = true;
    k.reads_pipe = true;  // center feedback
    k.args_restrict = true;
    k.accessor_args = 3;
    k.static_fp32_ops = static_cast<double>(p.d) * 3.0;  // d-parallel MAC array
    k.static_int_ops = 24;
    k.static_branches = 4;
    k.control_complexity = 2;
    perf::loop_info loop;
    loop.name = "points_x_centers";
    // One candidate center per cycle per lane, 8 center lanes unrolled,
    // each with a d-parallel MAC array (no loop-carried chain).
    loop.trip_count = n * static_cast<double>(p.k) * iters;
    loop.entries = iters;
    loop.initiation_interval = 1;
    loop.unroll = 8;
    loop.speculated_iterations = 2;
    k.loops.push_back(loop);
    return k;
}

perf::kernel_stats stats_resetaccfin_st(const params& p,
                                        const perf::device_spec& dev) {
    (void)dev;
    perf::kernel_stats k;
    k.name = "kmeans_resetAccFin_st";
    k.form = perf::kernel_form::single_task;
    k.bytes_read = static_cast<double>(p.k * p.d) * 4.0;
    k.bytes_written = static_cast<double>(p.k * p.d) * 4.0;
    k.reads_pipe = true;
    k.writes_pipe = true;
    k.args_restrict = true;
    k.accessor_args = 1;
    k.static_fp32_ops = static_cast<double>(p.d) + 1.0;  // d-parallel adds + div
    k.static_int_ops = 16;
    k.static_branches = 3;
    k.control_complexity = 2;
    perf::loop_info loop;
    loop.name = "accumulate";
    loop.trip_count =
        static_cast<double>(p.n) * static_cast<double>(p.iterations);
    loop.entries = static_cast<double>(p.iterations);
    loop.initiation_interval = 1;  // d-wide accumulators, one point per cycle
    loop.unroll = 1;
    loop.speculated_iterations = 2;
    k.loops.push_back(loop);
    return k;
}

}  // namespace detail

timed_region region(Variant v, const perf::device_spec& dev, int size) {
    const params p = params::preset(size);
    timed_region r;
    r.name = std::string("kmeans/") + to_string(v) + "/size" + std::to_string(size);
    r.include_setup = false;  // timed region excludes one-time setup (warm-up)
    r.transfer_bytes = static_cast<double>(p.n * p.d) * 4.0 +   // points H2D
                       static_cast<double>(p.k * p.d) * 4.0 * 2.0 +  // centers
                       static_cast<double>(p.n) * 4.0;          // assignment D2H
    r.transfer_calls = 4.0;
    r.syncs = 1.0;
    const double iters = static_cast<double>(p.iterations);
    if (v == Variant::fpga_opt) {
        r.dataflow.push_back(
            {{detail::stats_map_st(p, dev), detail::stats_resetaccfin_st(p, dev)},
             1.0});
    } else {
        r.kernels.push_back({detail::stats_map_nd(p, dev), iters});
        r.kernels.push_back({detail::stats_reset_nd(p), iters});
        r.kernels.push_back({detail::stats_accumulate_nd(p), iters});
        r.kernels.push_back({detail::stats_finalize_nd(p), iters});
    }
    return r;
}

std::vector<perf::kernel_stats> fpga_design(const perf::device_spec& dev,
                                            int size) {
    const params p = params::preset(size);
    return {detail::stats_map_st(p, dev), detail::stats_resetaccfin_st(p, dev)};
}

}  // namespace altis::apps::kmeans
