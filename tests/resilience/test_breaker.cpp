#include "resilience/breaker.hpp"

#include <gtest/gtest.h>

namespace altis::resilience {
namespace {

breaker_policy make_policy(int threshold, int cooldown) {
    breaker_policy p;
    p.threshold = threshold;
    p.cooldown = cooldown;
    return p;
}

TEST(Breaker, ClosedUntilThresholdConsecutiveHardFailures) {
    breaker b(make_policy(3, 2));
    const std::string key = "KMeans/fpga_opt/stratix_10";
    for (int i = 0; i < 2; ++i) {
        EXPECT_TRUE(b.admit(key));
        b.report(key, /*hard_failure=*/true);
        EXPECT_EQ(b.state_of(key), breaker::state::closed);
    }
    EXPECT_EQ(b.consecutive_failures(key), 2);
    EXPECT_TRUE(b.admit(key));
    b.report(key, true);
    EXPECT_EQ(b.state_of(key), breaker::state::open);
    EXPECT_FALSE(b.admit(key)) << "open breaker must quarantine";
}

TEST(Breaker, SuccessResetsTheConsecutiveCount) {
    breaker b(make_policy(2, 1));
    const std::string key = "CFD/fpga_base/stratix_10";
    EXPECT_TRUE(b.admit(key));
    b.report(key, true);
    EXPECT_TRUE(b.admit(key));
    b.report(key, /*hard_failure=*/false);
    EXPECT_EQ(b.consecutive_failures(key), 0);
    // The earlier failure no longer counts: one more failure stays closed.
    EXPECT_TRUE(b.admit(key));
    b.report(key, true);
    EXPECT_EQ(b.state_of(key), breaker::state::closed);
}

TEST(Breaker, HalfOpenProbeAfterCooldownClosesOnSuccess) {
    breaker b(make_policy(1, 2));
    const std::string key = "NW/fpga_opt/agilex";
    EXPECT_TRUE(b.admit(key));
    b.report(key, true);  // trips immediately (threshold 1)
    EXPECT_EQ(b.state_of(key), breaker::state::open);

    // Two quarantined encounters serve the cooldown.
    EXPECT_FALSE(b.admit(key));
    EXPECT_FALSE(b.admit(key));

    // Third encounter is the half-open probe.
    EXPECT_TRUE(b.admit(key));
    EXPECT_EQ(b.state_of(key), breaker::state::half_open);
    b.report(key, /*hard_failure=*/false);
    EXPECT_EQ(b.state_of(key), breaker::state::closed);
    EXPECT_TRUE(b.admit(key));
}

TEST(Breaker, FailedProbeReopensAndRestartsCooldown) {
    breaker b(make_policy(1, 1));
    const std::string key = "k";
    EXPECT_TRUE(b.admit(key));
    b.report(key, true);
    EXPECT_FALSE(b.admit(key));  // cooldown
    EXPECT_TRUE(b.admit(key));   // probe
    b.report(key, true);         // probe fails
    EXPECT_EQ(b.state_of(key), breaker::state::open);
    EXPECT_FALSE(b.admit(key));  // cooldown counts from zero again
    EXPECT_TRUE(b.admit(key));   // next probe
}

TEST(Breaker, ZeroThresholdDisablesTheBreaker) {
    breaker b(make_policy(0, 2));
    EXPECT_FALSE(b.policy().enabled());
    const std::string key = "k";
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(b.admit(key));
        b.report(key, true);
    }
    EXPECT_EQ(b.state_of(key), breaker::state::closed);
}

TEST(Breaker, KeysAreIndependent) {
    breaker b(make_policy(1, 1));
    EXPECT_TRUE(b.admit("a"));
    b.report("a", true);
    EXPECT_EQ(b.state_of("a"), breaker::state::open);
    // A different configuration key is untouched by a's trip.
    EXPECT_EQ(b.state_of("b"), breaker::state::closed);
    EXPECT_TRUE(b.admit("b"));
    b.report("b", false);
    EXPECT_EQ(b.state_of("b"), breaker::state::closed);
}

}  // namespace
}  // namespace altis::resilience
