# Runs BIN and byte-compares its combined stdout+stderr against GOLDEN.
# Used by the golden_fig* ctest entries: the fast-path execution engine may
# only change wall-clock, never the simulated timings or any ResultDatabase
# output (docs/PERFORMANCE.md), and this is the gate that enforces it.
#
# Regenerate a golden after an *intentional* timing-model change with:
#   ./build/bench/<bin> > tests/golden/<bin>.txt 2>&1

if(NOT DEFINED BIN OR NOT DEFINED GOLDEN)
    message(FATAL_ERROR "compare.cmake requires -DBIN=... and -DGOLDEN=...")
endif()

execute_process(
    COMMAND "${BIN}"
    OUTPUT_VARIABLE got
    ERROR_VARIABLE got_err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BIN} exited with ${rc}:\n${got}${got_err}")
endif()

file(READ "${GOLDEN}" want)
string(APPEND got "${got_err}")
if(NOT got STREQUAL want)
    file(WRITE "${GOLDEN}.actual" "${got}")
    message(FATAL_ERROR
        "output of ${BIN} differs from golden ${GOLDEN} -- the execution "
        "engine must not change simulated output (diff against "
        "${GOLDEN}.actual)")
endif()
