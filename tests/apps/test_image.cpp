#include "apps/common/image.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

namespace altis::apps {
namespace {

TEST(Image, PpmRoundTrip) {
    const std::size_t w = 5, h = 3;
    std::vector<rgb8> pixels(w * h);
    for (std::size_t i = 0; i < pixels.size(); ++i)
        pixels[i] = {static_cast<std::uint8_t>(i * 7),
                     static_cast<std::uint8_t>(255 - i),
                     static_cast<std::uint8_t>(i)};
    const std::string path = "/tmp/altis_test_roundtrip.ppm";
    write_ppm(path, pixels, w, h);
    std::size_t rw = 0, rh = 0;
    const auto back = read_ppm(path, rw, rh);
    EXPECT_EQ(rw, w);
    EXPECT_EQ(rh, h);
    ASSERT_EQ(back.size(), pixels.size());
    for (std::size_t i = 0; i < pixels.size(); ++i) EXPECT_EQ(back[i], pixels[i]);
    std::remove(path.c_str());
}

TEST(Image, SizeMismatchThrows) {
    std::vector<rgb8> pixels(4);
    EXPECT_THROW(write_ppm("/tmp/x.ppm", pixels, 3, 2), std::invalid_argument);
}

TEST(Image, UnwritablePathThrows) {
    std::vector<rgb8> pixels(1);
    EXPECT_THROW(write_ppm("/nonexistent-dir/x.ppm", pixels, 1, 1),
                 std::runtime_error);
}

TEST(Image, TonemapClampsAndGammaEncodes) {
    EXPECT_EQ(tonemap(0.0f, 0.0f, 0.0f), (rgb8{0, 0, 0}));
    const rgb8 white = tonemap(1.0f, 2.0f, 100.0f);  // clamped
    EXPECT_EQ(white.r, 255);
    EXPECT_EQ(white.g, 255);
    EXPECT_EQ(white.b, 255);
    // Gamma-2: linear 0.25 encodes to ~0.5.
    const rgb8 mid = tonemap(0.25f, 0.25f, 0.25f);
    EXPECT_NEAR(mid.r, 128, 2);
}

TEST(Image, EscapeColormapInteriorIsBlackExteriorIsNot) {
    EXPECT_EQ(escape_colormap(1024, 1024), (rgb8{0, 0, 0}));
    EXPECT_NE(escape_colormap(10, 1024), (rgb8{0, 0, 0}));
    // Monotone-ish: later escapes are brighter in red.
    EXPECT_LE(escape_colormap(4, 1024).r, escape_colormap(512, 1024).r);
}

}  // namespace
}  // namespace altis::apps
