// Shared CLI/env wiring for the sanitizer, mirroring trace/options.hpp so
// every harness binary behaves identically:
//
//   --sanitize <off|warn|error>   capture the command graph and lint it at
//                                 exit; `error` turns any warning-or-worse
//                                 finding into exit code 1 and refuses to
//                                 launch dataflow groups with pipe errors.
//                                 Defaults to $ALTIS_SANITIZE when set.
//   --sanitize-json <file>        also write the findings as JSON.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "analyze/recorder.hpp"

namespace altis {
class OptionParser;
}

namespace altis::analyze {

void add_sanitize_options(OptionParser& opts);

struct options {
    level lv = level::off;
    std::string json_path;

    [[nodiscard]] bool enabled() const { return lv != level::off; }
    /// Reads --sanitize/--sanitize-json, falling back to $ALTIS_SANITIZE.
    /// Throws OptionError on an unknown level name.
    [[nodiscard]] static options from(const OptionParser& opts);
};

/// Callback the harness uses to mirror findings onto another sink (e.g.
/// error-flagged trace spans) without analyze depending on the trace layer.
using span_sink = std::function<void(const finding&)>;

/// Runs the passes over `rec`, renders the findings to `out`, writes the
/// JSON file when requested, and hands each finding to `sink` (the harness
/// uses it to emit error-flagged trace spans) when provided. Returns the
/// process exit code contribution: 1 when level is `error` and any
/// warning-or-worse finding exists, 2 when the JSON file could not be
/// written, else 0.
[[nodiscard]] int finish(const recorder& rec, const options& opt,
                         std::ostream& out, std::ostream& err,
                         const span_sink& sink = {});

}  // namespace altis::analyze
