file(REMOVE_RECURSE
  "CMakeFiles/altis_rng.dir/philox.cpp.o"
  "CMakeFiles/altis_rng.dir/philox.cpp.o.d"
  "CMakeFiles/altis_rng.dir/xorwow.cpp.o"
  "CMakeFiles/altis_rng.dir/xorwow.cpp.o.d"
  "libaltis_rng.a"
  "libaltis_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altis_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
