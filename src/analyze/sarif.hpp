// SARIF v2.1.0 exporter + baseline/suppression support, so altis_lint plugs
// into GitHub code scanning (--sanitize-sarif / --sanitize-baseline).
//
// Every result carries a stable partialFingerprints entry
// ("altisSanitizeFingerprint/v1", from analyze::fingerprint): pointer-free,
// so two runs of the same binary emit byte-identical fingerprints under
// ASLR. A baseline file is any JSON document containing those fingerprint
// strings (the parser is shape-tolerant -- a saved SARIF run works as-is):
// findings whose fingerprint appears in the baseline are demoted to notes,
// and baseline entries matching no current finding come back as ALS-B1
// stale-entry notes so suppressions cannot silently outlive their bugs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/findings.hpp"

namespace altis::analyze {

/// Renders the report as one SARIF v2.1.0 run (sorted like render_json).
void render_sarif(const report& r, std::ostream& out);

/// Extracts every fingerprint-shaped string (16 lowercase hex chars) from a
/// baseline file's text. Tolerant of the surrounding JSON shape.
[[nodiscard]] std::vector<std::string> parse_baseline(const std::string& text);

/// Applies a baseline: findings whose fingerprint is listed are demoted to
/// severity::note; fingerprints matching nothing become ALS-B1 notes.
[[nodiscard]] report apply_baseline(const report& r,
                                    const std::vector<std::string>& baseline);

}  // namespace altis::analyze
