
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/analysis.cpp" "src/perf/CMakeFiles/altis_perf.dir/analysis.cpp.o" "gcc" "src/perf/CMakeFiles/altis_perf.dir/analysis.cpp.o.d"
  "/root/repo/src/perf/device.cpp" "src/perf/CMakeFiles/altis_perf.dir/device.cpp.o" "gcc" "src/perf/CMakeFiles/altis_perf.dir/device.cpp.o.d"
  "/root/repo/src/perf/model.cpp" "src/perf/CMakeFiles/altis_perf.dir/model.cpp.o" "gcc" "src/perf/CMakeFiles/altis_perf.dir/model.cpp.o.d"
  "/root/repo/src/perf/overhead.cpp" "src/perf/CMakeFiles/altis_perf.dir/overhead.cpp.o" "gcc" "src/perf/CMakeFiles/altis_perf.dir/overhead.cpp.o.d"
  "/root/repo/src/perf/resource_model.cpp" "src/perf/CMakeFiles/altis_perf.dir/resource_model.cpp.o" "gcc" "src/perf/CMakeFiles/altis_perf.dir/resource_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
