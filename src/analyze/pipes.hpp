// Static pipe-topology linter for dataflow groups (Fig. 3), run before the
// group's worker threads launch (complementing the runtime deadlock
// watchdog from PR 2, which can only report after the timeout fired).
//
//   ALS-P1  an endpoint with no peer: somebody reads (writes) a pipe that no
//           group member writes (reads) -- the guaranteed-deadlock shape the
//           watchdog otherwise catches at runtime.
//   ALS-P2  a feedback cycle in the writer->reader graph in which *every*
//           pipe's per-round volume exceeds its capacity: no stage can
//           finish a round before its downstream drains, and nothing around
//           the cycle has room to buffer a whole round (SDF-style buffer
//           sufficiency). One adequately sized pipe anywhere on the cycle --
//           kmeans' 1024-deep center feedback -- makes the loop feasible.
//   ALS-P3  producers and consumers of a pipe declare different total item
//           counts: the group finishes only if someone blocks forever or
//           data is left in flight.
//
// Volumes come from handler::reads_pipe/writes_pipe declarations; endpoints
// without declared volumes (items_per_round == 0) only participate in the
// P1 peer check.
#pragma once

#include <vector>

#include "analyze/findings.hpp"
#include "analyze/graph.hpp"

namespace altis::analyze {

/// Lints the kernels of one dataflow group.
void lint_pipe_group(const std::vector<node>& kernels, report& out);

/// Lints every dataflow group in the graph.
void lint_pipes(const command_graph& g, report& out);

}  // namespace altis::analyze
