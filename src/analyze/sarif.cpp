#include "analyze/sarif.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <ostream>
#include <set>

namespace altis::analyze {

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

const char* sarif_level(severity s) {
    switch (s) {
        case severity::note: return "note";
        case severity::warning: return "warning";
        case severity::error: return "error";
    }
    return "none";
}

std::size_t rule_index(const std::string& id) {
    const std::vector<rule_info>& catalog = rule_catalog();
    for (std::size_t i = 0; i < catalog.size(); ++i)
        if (id == catalog[i].id) return i;
    return 0;
}

}  // namespace

void render_sarif(const report& r, std::ostream& out) {
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"altis-sanitize\",\n"
        << "          \"informationUri\": "
           "\"https://github.com/altis-sycl/altis-sycl\",\n"
        << "          \"rules\": [";
    const std::vector<rule_info>& catalog = rule_catalog();
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const rule_info& ri = catalog[i];
        out << (i == 0 ? "" : ",") << "\n            {"
            << "\"id\": \"" << ri.id << "\", "
            << "\"shortDescription\": {\"text\": \"" << json_escape(ri.title)
            << "\"}, "
            << "\"help\": {\"text\": \"" << json_escape(ri.fix_hint)
            << "\"}, "
            << "\"defaultConfiguration\": {\"level\": \""
            << sarif_level(ri.sev) << "\"}, "
            << "\"properties\": {\"paperRef\": \""
            << json_escape(ri.paper_ref) << "\"}}";
    }
    out << "\n          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [";
    const std::vector<finding> findings = r.sorted_findings();
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const finding& f = findings[i];
        out << (i == 0 ? "" : ",") << "\n        {"
            << "\"ruleId\": \"" << json_escape(f.rule) << "\", "
            << "\"ruleIndex\": " << rule_index(f.rule) << ", "
            << "\"level\": \"" << sarif_level(f.sev) << "\", "
            << "\"message\": {\"text\": \"" << json_escape(f.message)
            << "\"}, "
            << "\"locations\": [{\"logicalLocations\": [{\"name\": \""
            << json_escape(f.kernel) << "\", \"fullyQualifiedName\": \""
            << json_escape(f.kernel + "::" + f.object)
            << "\", \"kind\": \"function\"}]}], "
            << "\"partialFingerprints\": {\"altisSanitizeFingerprint/v1\": "
               "\""
            << fingerprint(f) << "\"}, "
            << "\"properties\": {\"object\": \"" << json_escape(f.object)
            << "\", \"fixHint\": \"" << json_escape(f.fix_hint) << "\"}}";
    }
    out << "\n      ]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
}

std::vector<std::string> parse_baseline(const std::string& text) {
    std::vector<std::string> out;
    std::set<std::string> seen;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '"') continue;
        const std::size_t close = text.find('"', i + 1);
        if (close == std::string::npos) break;
        const std::string token = text.substr(i + 1, close - i - 1);
        i = close;
        if (token.size() != 16) continue;
        const bool hex = std::all_of(token.begin(), token.end(), [](char c) {
            return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        });
        if (hex && seen.insert(token).second) out.push_back(token);
    }
    return out;
}

report apply_baseline(const report& r,
                      const std::vector<std::string>& baseline) {
    report out;
    std::set<std::string> unmatched(baseline.begin(), baseline.end());
    for (const finding& f : r.findings()) {
        finding g = f;
        if (unmatched.erase(fingerprint(f)) > 0 ||
            std::find(baseline.begin(), baseline.end(), fingerprint(f)) !=
                baseline.end())
            g.sev = severity::note;  // known finding: keep visible, don't gate
        out.add(std::move(g));
    }
    // Stale entries surface in fingerprint order (set iteration), stable
    // across runs because fingerprints are pointer-free.
    for (const std::string& fp : unmatched)
        out.add(make_finding("ALS-B1", "baseline", fp,
                             "baseline entry " + fp +
                                 " matches no current finding -- remove it"));
    return out;
}

}  // namespace altis::analyze
