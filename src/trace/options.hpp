// Shared CLI/env wiring for the trace subsystem: every harness binary
// (altis_run, the fig*/table* bench regenerators) registers the same two
// options and calls the same teardown, so tracing behaves identically
// everywhere:
//
//   --trace <file>   write a Chrome trace-event JSON (Perfetto-loadable);
//                    defaults to $ALTIS_TRACE when the env var is set
//   --profile        print the per-kernel aggregate profile table after the
//                    run; with --trace, also writes <file>.profile.json
#pragma once

#include <iosfwd>
#include <string>

#include "core/option_parser.hpp"
#include "trace/session.hpp"

namespace altis::metrics {
class session;
}

namespace altis::trace {

void add_trace_options(OptionParser& opts);

struct options {
    std::string trace_path;  ///< empty: no trace file
    bool profile = false;

    [[nodiscard]] bool enabled() const { return !trace_path.empty() || profile; }
    [[nodiscard]] static options from(const OptionParser& opts);
};

/// Close any still-open regions at `end_ns`, write the trace file and/or the
/// profile per `opt`. When `metrics` names a stopped metrics session, its
/// sampled series are merged into the trace file as Perfetto counter tracks.
/// Returns false (after a message on `err`) when a file could not be written.
bool finish_session(session& s, const options& opt, double end_ns,
                    std::ostream& out, std::ostream& err,
                    const altis::metrics::session* metrics = nullptr);

}  // namespace altis::trace
