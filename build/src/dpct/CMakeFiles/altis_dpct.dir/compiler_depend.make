# Empty compiler generated dependencies file for altis_dpct.
# This may be replaced when dependencies are built.
