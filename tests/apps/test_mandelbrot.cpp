#include "apps/mandelbrot/mandelbrot.hpp"

#include <gtest/gtest.h>

namespace altis::apps::mandelbrot {
namespace {

TEST(Mandelbrot, GoldenHasInteriorAndExteriorPixels) {
    params p;
    p.width = p.height = 64;
    std::vector<std::uint16_t> iters(p.pixels());
    golden(p, iters);
    bool has_max = false, has_small = false;
    for (auto v : iters) {
        if (v == p.max_iters) has_max = true;
        if (v < 8) has_small = true;
    }
    EXPECT_TRUE(has_max);    // interior of the set never escapes
    EXPECT_TRUE(has_small);  // far corners escape immediately
}

TEST(Mandelbrot, MeanIterationsIsResolutionStable) {
    const double m1 = mean_iterations(params::preset(1));
    const double m3 = mean_iterations(params::preset(3));
    EXPECT_NEAR(m1, m3, 1e-9);  // probe uses the window, not the resolution
    EXPECT_GT(m1, 10.0);
    EXPECT_LT(m1, 8192.0);
}

struct Case {
    const char* device;
    Variant variant;
};

class MandelbrotVariants : public ::testing::TestWithParam<Case> {};

TEST_P(MandelbrotVariants, FunctionalRunVerifiesAndTimes) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = GetParam().device;
    cfg.variant = GetParam().variant;
    const AppResult r = run(cfg);  // throws on verification failure
    EXPECT_GT(r.kernel_ms, 0.0);
    EXPECT_GT(r.total_ms, r.kernel_ms);
    EXPECT_DOUBLE_EQ(r.error, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndVariants, MandelbrotVariants,
    ::testing::Values(Case{"rtx_2080", Variant::cuda},
                      Case{"rtx_2080", Variant::sycl_base},
                      Case{"rtx_2080", Variant::sycl_opt},
                      Case{"xeon_6128", Variant::sycl_opt},
                      Case{"a100", Variant::sycl_opt},
                      Case{"max_1100", Variant::sycl_opt},
                      Case{"stratix_10", Variant::fpga_base},
                      Case{"stratix_10", Variant::fpga_opt},
                      Case{"agilex", Variant::fpga_opt}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.device) + "_" +
               to_string(info.param.variant);
    });

TEST(Mandelbrot, WrongDeviceVariantComboRejected) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "xeon_6128";
    cfg.variant = Variant::cuda;
    EXPECT_THROW(run(cfg), std::invalid_argument);
}

TEST(Mandelbrot, RunMatchesRegionSimulation) {
    // The functional path and the analytic region must agree: same stats,
    // same overhead sequence (DESIGN.md Sec. 4 cross-check).
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "stratix_10";
    cfg.variant = Variant::fpga_opt;
    const AppResult r = run(cfg);
    const auto& dev = perf::device_by_name(cfg.device);
    const timing_estimate est = simulate_region(
        region(cfg.variant, dev, cfg.size), dev, perf::runtime_kind::sycl);
    EXPECT_NEAR(r.kernel_ms, est.kernel_ms(), r.kernel_ms * 0.01);
    EXPECT_NEAR(r.total_ms, est.total_ms(), r.total_ms * 0.01);
}

TEST(Mandelbrot, FpgaOptimizationDeliversLargeSpeedup) {
    // Fig. 4: ~240x at size 1 on Stratix 10 (we accept a broad band).
    const auto& s10 = perf::device_by_name("stratix_10");
    const auto base = simulate_region(region(Variant::fpga_base, s10, 1), s10,
                                      perf::runtime_kind::sycl);
    const auto opt = simulate_region(region(Variant::fpga_opt, s10, 1), s10,
                                     perf::runtime_kind::sycl);
    const double speedup = base.kernel_ms() / opt.kernel_ms();
    EXPECT_GT(speedup, 50.0);
    EXPECT_LT(speedup, 2000.0);
}

TEST(Mandelbrot, PerSizeBitstreamsDiffer) {
    const auto& s10 = perf::device_by_name("stratix_10");
    const auto d1 = fpga_design(s10, 1);
    const auto d3 = fpga_design(s10, 3);
    ASSERT_EQ(d1.size(), 1u);
    ASSERT_EQ(d3.size(), 1u);
    // Table 3 lists one Mandelbrot row per size: different tuning.
    EXPECT_NE(d1[0].replication * d1[0].loops[0].unroll,
              d3[0].replication * d3[0].loops[0].unroll);
}

TEST(Mandelbrot, SpeculatedIterationsLoweredInOptimizedDesign) {
    const auto& s10 = perf::device_by_name("stratix_10");
    const auto d = fpga_design(s10, 2);
    ASSERT_FALSE(d[0].loops.empty());
    EXPECT_LT(d[0].loops[0].speculated_iterations, 4);  // compiler default
}

}  // namespace
}  // namespace altis::apps::mandelbrot
