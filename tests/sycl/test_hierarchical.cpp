// Hierarchical (work-group + implicit barrier) execution semantics: these
// tests exercise the pattern the migrated Altis kernels with barriers use
// (DESIGN.md Sec. 4).
#include "sycl/syclite.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace syclite {
namespace {

perf::kernel_stats stats(const char* name) {
    perf::kernel_stats k;
    k.name = name;
    return k;
}

// A two-phase kernel where phase 2 reads what *other* work-items wrote in
// phase 1 -- only correct if an implicit barrier separates the phases.
TEST(Hierarchical, ImplicitBarrierBetweenPhases) {
    constexpr std::size_t kGroups = 8, kLocal = 32;
    queue q("rtx_2080");
    buffer<int> out(kGroups * kLocal);
    q.submit([&](handler& h) {
        auto acc = h.get_access(out, access_mode::discard_write);
        h.parallel_for_work_group(
            range<1>(kGroups), range<1>(kLocal), stats("reverse"),
            [=](group<1> g) {
                int tile[kLocal];  // work-group local memory
                g.parallel_for_work_item([&](h_item<1> it) {
                    tile[it.get_local_id(0)] =
                        static_cast<int>(it.get_global_id(0));
                });
                // implicit barrier
                g.parallel_for_work_item([&](h_item<1> it) {
                    const std::size_t rev = kLocal - 1 - it.get_local_id(0);
                    acc[it.get_global_id(0)] = tile[rev];
                });
            });
    });
    q.wait();
    for (std::size_t grp = 0; grp < kGroups; ++grp)
        for (std::size_t i = 0; i < kLocal; ++i)
            EXPECT_EQ(out.host_data()[grp * kLocal + i],
                      static_cast<int>(grp * kLocal + (kLocal - 1 - i)));
}

// Work-group tree reduction with a barrier per level.
TEST(Hierarchical, MultiPhaseReduction) {
    constexpr std::size_t kGroups = 4, kLocal = 64;
    queue q("xeon_6128");
    std::vector<float> input(kGroups * kLocal);
    std::iota(input.begin(), input.end(), 1.0f);
    buffer<float> in(input.data(), input.size());
    buffer<float> sums(kGroups);
    q.submit([&](handler& h) {
        auto src = h.get_access(in, access_mode::read);
        auto dst = h.get_access(sums, access_mode::discard_write);
        h.parallel_for_work_group(
            range<1>(kGroups), range<1>(kLocal), stats("reduce"),
            [=](group<1> g) {
                float tile[kLocal];
                g.parallel_for_work_item([&](h_item<1> it) {
                    tile[it.get_local_id(0)] = src[it.get_global_id(0)];
                });
                for (std::size_t stride = kLocal / 2; stride > 0; stride /= 2) {
                    g.parallel_for_work_item([&](h_item<1> it) {
                        const std::size_t lid = it.get_local_id(0);
                        if (lid < stride) tile[lid] += tile[lid + stride];
                    });
                }
                g.parallel_for_work_item([&](h_item<1> it) {
                    if (it.get_local_id(0) == 0)
                        dst[g.get_group_linear_id()] = tile[0];
                });
            });
    });
    q.wait();
    for (std::size_t grp = 0; grp < kGroups; ++grp) {
        const double first = static_cast<double>(grp * kLocal + 1);
        const double expected = (first + first + kLocal - 1) * kLocal / 2.0;
        EXPECT_FLOAT_EQ(sums.host_data()[grp], static_cast<float>(expected));
    }
}

TEST(Hierarchical, TwoDimensionalGroups) {
    queue q("a100");
    constexpr std::size_t kGy = 2, kGx = 3, kLy = 4, kLx = 5;
    buffer<int> out(kGy * kLy * kGx * kLx);
    q.submit([&](handler& h) {
        auto acc = h.get_access(out, access_mode::discard_write);
        h.parallel_for_work_group(
            range<2>(kGy, kGx), range<2>(kLy, kLx), stats("2d"),
            [=](group<2> g) {
                g.parallel_for_work_item([&](h_item<2> it) {
                    const std::size_t row = it.get_global_id(0);
                    const std::size_t col = it.get_global_id(1);
                    acc[row * (kGx * kLx) + col] =
                        static_cast<int>(g.get_group_linear_id());
                });
            });
    });
    q.wait();
    // Every element written exactly once with its group's id.
    const int max_gid = kGy * kGx - 1;
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_GE(out.host_data()[i], 0);
        EXPECT_LE(out.host_data()[i], max_gid);
    }
}

}  // namespace
}  // namespace syclite
