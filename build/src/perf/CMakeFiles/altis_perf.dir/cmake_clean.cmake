file(REMOVE_RECURSE
  "CMakeFiles/altis_perf.dir/analysis.cpp.o"
  "CMakeFiles/altis_perf.dir/analysis.cpp.o.d"
  "CMakeFiles/altis_perf.dir/device.cpp.o"
  "CMakeFiles/altis_perf.dir/device.cpp.o.d"
  "CMakeFiles/altis_perf.dir/model.cpp.o"
  "CMakeFiles/altis_perf.dir/model.cpp.o.d"
  "CMakeFiles/altis_perf.dir/overhead.cpp.o"
  "CMakeFiles/altis_perf.dir/overhead.cpp.o.d"
  "CMakeFiles/altis_perf.dir/resource_model.cpp.o"
  "CMakeFiles/altis_perf.dir/resource_model.cpp.o.d"
  "libaltis_perf.a"
  "libaltis_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altis_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
