#include "analyze/options.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>

#include "analyze/sanitize.hpp"
#include "core/option_parser.hpp"

namespace altis::analyze {

void add_sanitize_options(OptionParser& opts) {
    opts.add_option("sanitize", "",
                    "lint the run's command graph: off | warn | error "
                    "(default $ALTIS_SANITIZE)");
    opts.add_option("sanitize-json", "", "write sanitize findings as JSON");
}

options options::from(const OptionParser& opts) {
    options o;
    std::string name = opts.get_string("sanitize");
    if (name.empty())
        if (const char* env = std::getenv("ALTIS_SANITIZE")) name = env;
    if (name.empty() || name == "off")
        o.lv = level::off;
    else if (name == "warn")
        o.lv = level::warn;
    else if (name == "error")
        o.lv = level::error;
    else
        throw OptionError("--sanitize: unknown level '" + name +
                          "' (off | warn | error)");
    o.json_path = opts.get_string("sanitize-json");
    return o;
}

int finish(const recorder& rec, const options& opt, std::ostream& out,
           std::ostream& err, const span_sink& sink) {
    const report r = run_all(rec);
    r.render_text(out);
    if (sink)
        for (const finding& f : r.findings()) sink(f);
    if (!opt.json_path.empty()) {
        std::ofstream f(opt.json_path);
        if (!f) {
            err << "error: cannot write " << opt.json_path << "\n";
            return 2;
        }
        r.render_json(f);
    }
    return opt.lv == level::error && r.count_at_least(severity::warning) > 0
               ? 1
               : 0;
}

}  // namespace altis::analyze
