// Model descriptors for DWT2D: the congested shared-memory case the paper
// could not optimize on FPGAs (baseline only, Sec. 5.4).
#include "apps/dwt2d/dwt2d.hpp"

namespace altis::apps::dwt2d {
namespace detail {

perf::kernel_stats stats_pass(const params& p, Variant v,
                              const perf::device_spec& dev, std::size_t lines,
                              std::size_t line_len, const char* name) {
    (void)p;
    perf::kernel_stats k;
    k.name = name;
    const std::size_t groups = lines / 64 + (lines % 64 ? 1 : 0);
    k.global_items = static_cast<double>(groups * 64);
    k.wg_size = 64;
    const double n = static_cast<double>(line_len);
    k.fp32_ops = n * 9.0;  // four lifting passes + scaling
    k.int_ops = n * 6.0;
    k.bytes_read = n * 4.0;
    k.bytes_written = n * 4.0;
    k.barriers = 4.0;  // between lifting passes in the tiled original
    // The lifting tile interleaves even/odd strided accesses -- the
    // congestion the paper reports as unremovable (Sec. 5.4).
    k.pattern = perf::local_pattern::congested;
    k.local_arrays = 2;
    k.local_mem_bytes = n * 4.0 * 2.0;
    k.local_accesses = n * 6.0;
    k.dynamic_local_size = (v == Variant::sycl_base || v == Variant::fpga_base);
    k.static_fp32_ops = 9;
    k.static_int_ops = 22;
    k.static_branches = 8;
    k.accessor_args = 2;
    k.control_complexity = 3;
    (void)dev;
    return k;
}

}  // namespace detail

timed_region region(Variant v, const perf::device_spec& dev, int size) {
    if (v == Variant::fpga_opt)
        throw std::invalid_argument("dwt2d: no optimized FPGA version");
    const params p = params::preset(size);
    timed_region r;
    r.name = std::string("dwt2d/") + to_string(v) + "/size" + std::to_string(size);
    r.include_setup = false;  // timed region excludes one-time setup (warm-up)
    r.transfer_bytes = static_cast<double>(p.pixels()) * 4.0 * 2.0;
    r.transfer_calls = 2.0;
    r.syncs = 1.0;
    std::size_t w = p.width, h = p.height;
    for (int level = 0; level < kLevels; ++level) {
        r.kernels.push_back(
            {detail::stats_pass(p, v, dev, h, w, "fdwt97_h"), 1.0});
        r.kernels.push_back(
            {detail::stats_pass(p, v, dev, w, h, "fdwt97_v"), 1.0});
        w /= 2;
        h /= 2;
    }
    return r;
}

std::vector<perf::kernel_stats> fpga_design(const perf::device_spec& dev,
                                            int size) {
    // Sec. 4: of the 14 kernel versions in Altis DWT2D, only the two needed
    // for the default algorithm and the given input size are synthesized.
    const params p = params::preset(size);
    return {detail::stats_pass(p, Variant::fpga_base, dev, p.height, p.width,
                               "fdwt97_h"),
            detail::stats_pass(p, Variant::fpga_base, dev, p.width, p.height,
                               "fdwt97_v")};
}

}  // namespace altis::apps::dwt2d
