// Ablation: the three prefix-sum implementations of the Where story
// (Sec. 3.3 / 5.3 / Listing 2), measured functionally with google-benchmark
// on the host. Shapes to observe: the blocked (library-style) scan needs
// multiple passes; the Listing-2 recurrence is a single pass.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "scan/scan.hpp"
#include "sycl/thread_pool.hpp"

namespace {

std::vector<int> input(std::size_t n) {
    std::mt19937 gen(42);
    std::uniform_int_distribution<int> dist(0, 3);
    std::vector<int> v(n);
    for (auto& x : v) x = dist(gen);
    return v;
}

void BM_ScanSerial(benchmark::State& state) {
    const auto in = input(static_cast<std::size_t>(state.range(0)));
    std::vector<int> out(in.size());
    for (auto _ : state) {
        altis::scan::exclusive_scan_serial(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanSerial)->Range(1 << 12, 1 << 22);

void BM_ScanBlocked(benchmark::State& state) {
    const auto in = input(static_cast<std::size_t>(state.range(0)));
    std::vector<int> out(in.size());
    syclite::thread_pool pool;
    for (auto _ : state) {
        altis::scan::exclusive_scan_blocked(in, out, pool);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanBlocked)->Range(1 << 12, 1 << 22);

void BM_ScanFpgaCustom(benchmark::State& state) {
    const auto in = input(static_cast<std::size_t>(state.range(0)));
    std::vector<int> out(in.size());
    for (auto _ : state) {
        altis::scan::exclusive_scan_fpga_custom(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanFpgaCustom)->Range(1 << 12, 1 << 22);

}  // namespace

BENCHMARK_MAIN();
