# Empty compiler generated dependencies file for render_scenes.
# This may be replaced when dependencies are built.
