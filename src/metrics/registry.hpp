// Process-wide instrument registry. Instrumentation sites ask for an
// instrument once (by Prometheus-style name + optional static labels) and
// keep the reference: registration is a mutex-guarded map lookup on the cold
// path, updates afterwards never touch the registry. Instruments live in
// deques, so references stay valid for the process lifetime; asking for the
// same (name, labels) twice returns the same instrument, which is what makes
// per-template-instantiation static references in pipe<T> safe.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "metrics/metrics.hpp"

namespace altis::metrics {

enum class instrument_kind { counter, gauge, watermark, histogram };

[[nodiscard]] const char* to_string(instrument_kind k);

/// Static labels attached at registration (e.g. {"worker", "3"}). Order is
/// preserved into the exports.
using label_set = std::vector<std::pair<std::string, std::string>>;

/// Descriptor of one registered instrument; exporters walk these.
struct instrument_info {
    std::string name;  ///< Prometheus metric name (snake_case, unit-suffixed)
    std::string help;  ///< one-line description for # HELP / JSON
    instrument_kind kind = instrument_kind::counter;
    label_set labels;

    const class counter* ctr = nullptr;
    const class gauge* gge = nullptr;
    const class watermark* wmk = nullptr;
    const class histogram* hst = nullptr;
};

class registry {
public:
    static registry& instance();

    registry(const registry&) = delete;
    registry& operator=(const registry&) = delete;

    /// Find-or-create. The help string of the first registration wins.
    counter& get_counter(const std::string& name, const std::string& help,
                         label_set labels = {});
    gauge& get_gauge(const std::string& name, const std::string& help,
                     label_set labels = {});
    watermark& get_watermark(const std::string& name, const std::string& help,
                             label_set labels = {});
    histogram& get_histogram(const std::string& name, const std::string& help,
                             label_set labels = {});

    /// Stable snapshot of the registered instrument descriptors (the
    /// instruments themselves keep collecting; only the list is copied).
    [[nodiscard]] std::vector<instrument_info> instruments() const;

    /// Zero every registered instrument (session start: one process may host
    /// several sessions in sequence and each reports its own interval).
    /// Reset hooks run afterwards, outside the registry lock.
    void reset_all();

    /// Registers fn to run at the end of every reset_all(). Subsystems whose
    /// backing state outlives a session (the altis::mem pool caches) re-seed
    /// their level gauges here, so a session starting mid-process observes
    /// the true resident level instead of draining it negative.
    void add_reset_hook(std::function<void()> fn);

private:
    registry() = default;

    struct entry {
        instrument_info info;
    };

    /// Registration key: name plus serialized labels.
    [[nodiscard]] static std::string key_of(const std::string& name,
                                            const label_set& labels);

    mutable std::mutex mutex_;
    std::vector<std::function<void()>> reset_hooks_;
    std::deque<counter> counters_;
    std::deque<gauge> gauges_;
    std::deque<watermark> watermarks_;
    std::deque<histogram> histograms_;
    std::vector<entry> entries_;
};

}  // namespace altis::metrics
