// Pool integration with the neighbouring subsystems: metrics sessions that
// start while the caches are already warm (gauges must never go negative),
// and fault injection, whose `alloc:usm*@N` checkpoints count logical
// allocations -- pool-internal slab and cache traffic must be invisible.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "fault/inject.hpp"
#include "mem/pool.hpp"
#include "metrics/instruments.hpp"
#include "metrics/session.hpp"
#include "sycl/syclite.hpp"

namespace altis::mem {
namespace {

TEST(PoolMetrics, WarmCachesSurviveASessionBoundaryWithoutNegativeGauges) {
    namespace mi = altis::metrics::instruments;
    // Warm the caches with no session active: blocks park in the magazine
    // and the large reuse cache while the gauges are not collecting.
    flush_thread_magazines();
    trim();
    std::vector<void*> small;
    for (int i = 0; i < 20; ++i) small.push_back(allocate(256));
    void* big = allocate(std::size_t{8} << 20);
    for (void* p : small) deallocate(p);
    deallocate(big);
    {
        // Session start resets the registry; the pool's reset hook must
        // re-seed the level gauges from the true resident level, so that
        // draining the pre-session caches cannot drive them negative.
        altis::metrics::session s("epoch-test", {/*sample_hz=*/0.0});
        EXPECT_GT(mi::mem_magazine_blocks().value(), 0);
        EXPECT_GT(mi::mem_reuse_cache_bytes().value(), 0);
        std::vector<void*> again;
        for (int i = 0; i < 20; ++i) again.push_back(allocate(256));
        void* big2 = allocate(std::size_t{8} << 20);
        EXPECT_GE(mi::mem_magazine_blocks().value(), 0)
            << "draining a pre-session magazine went negative";
        EXPECT_GE(mi::mem_reuse_cache_bytes().value(), 0)
            << "draining the pre-session reuse cache went negative";
        EXPECT_GT(mi::mem_pool_hits().value(), 0u)
            << "warm caches must register as hits in the new session";
        for (void* p : again) deallocate(p);
        deallocate(big2);
        EXPECT_GE(mi::mem_magazine_blocks().value(), 0);
        EXPECT_GE(mi::mem_reuse_cache_bytes().value(), 0);
    }
}

TEST(PoolFault, UsmCheckpointsCountLogicalAllocationsNotSlabs) {
    // The first allocation carves a fresh slab (several OS blocks) and the
    // large one below touches the OS directly; none of that internal
    // traffic may consume fault checkpoints. Only the Nth *logical* USM
    // allocation fires.
    fault::plan p = fault::plan::parse("alloc:usm*@3");
    fault::scope scope(p);
    syclite::queue q("rtx_2080");
    float* a = syclite::malloc_device<float>(4096, q);  // slab carve
    ASSERT_NE(a, nullptr);
    auto* b = syclite::malloc_device<double>(1 << 21, q);  // large, fresh OS
    ASSERT_NE(b, nullptr);
    EXPECT_THROW((void)syclite::malloc_device<float>(16, q),
                 fault::alloc_fault);
    // The plan is one-shot at @3: the next allocation proceeds.
    float* c = syclite::malloc_device<float>(16, q);
    EXPECT_NE(c, nullptr);
    syclite::usm_free(a, q);
    syclite::usm_free(b, q);
    syclite::usm_free(c, q);
}

TEST(PoolFault, InjectionIsDeterministicAcrossWarmAndColdCaches) {
    // Same plan, run twice: cold caches the first time, warm the second.
    // The checkpoint index must hit the same logical allocation both times.
    for (int round = 0; round < 2; ++round) {
        fault::plan p = fault::plan::parse("alloc:usm*@2");
        fault::scope scope(p);
        syclite::queue q("rtx_2080");
        float* a = syclite::malloc_device<float>(512, q);
        ASSERT_NE(a, nullptr) << "round " << round;
        EXPECT_THROW((void)syclite::malloc_device<float>(512, q),
                     fault::alloc_fault)
            << "round " << round;
        syclite::usm_free(a, q);
    }
}

}  // namespace
}  // namespace altis::mem
