#include "metrics/session.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace altis::metrics {

namespace {
session* g_current = nullptr;
}  // namespace

session::config session::config::from_env() {
    config c;
    if (const char* env = std::getenv("ALTIS_METRICS_HZ")) {
        char* end = nullptr;
        const double hz = std::strtod(env, &end);
        if (end != env && *end == '\0') c.sample_hz = hz;
    }
    return c;
}

session* session::current() { return g_current; }

session::session(std::string name, config cfg)
    : name_(std::move(name)), cfg_(cfg) {
    if (g_current != nullptr)
        throw std::logic_error(
            "metrics::session: a session is already active");
    g_current = this;
    // Each session reports its own interval; instruments registered by
    // earlier runs keep their identity but restart from zero.
    registry::instance().reset_all();
    start_ = std::chrono::steady_clock::now();
    detail::g_enabled.store(true, std::memory_order_relaxed);
    if (cfg_.sample_hz > 0.0)
        sampler_ = std::thread([this] { sampler_loop(); });
}

session::~session() {
    stop();
    g_current = nullptr;
}

double session::now_ns() const {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
}

void session::stop() {
    if (stopped_) return;
    stopped_ = true;
    detail::g_enabled.store(false, std::memory_order_relaxed);
    if (sampler_.joinable()) {
        {
            std::lock_guard lock(sampler_mutex_);
            sampler_stop_ = true;
        }
        sampler_cv_.notify_all();
        sampler_.join();
    }
    // One final sample so even a run shorter than the period yields a
    // non-empty series with the end-state levels.
    take_sample();
    stopped_duration_ns_ = now_ns();
}

void session::sampler_loop() {
    const auto period = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(1.0 / cfg_.sample_hz));
    std::unique_lock lock(sampler_mutex_);
    while (!sampler_stop_) {
        sampler_cv_.wait_for(lock, period);
        if (sampler_stop_) break;
        lock.unlock();
        take_sample();
        lock.lock();
    }
}

void session::take_sample() {
    const double t = now_ns();
    for (const instrument_info& info : registry::instance().instruments()) {
        double v = 0.0;
        if (info.kind == instrument_kind::gauge)
            v = static_cast<double>(info.gge->value());
        else if (info.kind == instrument_kind::watermark)
            v = static_cast<double>(info.wmk->value());
        else
            continue;  // counters/histograms are exported as totals
        sampled_series* dst = nullptr;
        for (sampled_series& s : series_)
            if (s.info.ctr == info.ctr && s.info.gge == info.gge &&
                s.info.wmk == info.wmk && s.info.hst == info.hst) {
                dst = &s;
                break;
            }
        if (dst == nullptr) {
            series_.push_back({info, {}});
            dst = &series_.back();
        }
        dst->samples.emplace_back(t, v);
    }
}

snapshot session::take_snapshot() const {
    snapshot out;
    out.session_name = name_;
    out.duration_ns = stopped_ ? stopped_duration_ns_ : now_ns();
    for (const instrument_info& info : registry::instance().instruments()) {
        metric_value mv;
        mv.info = info;
        switch (info.kind) {
            case instrument_kind::counter:
                mv.value = static_cast<std::int64_t>(info.ctr->value());
                break;
            case instrument_kind::gauge:
                mv.value = info.gge->value();
                break;
            case instrument_kind::watermark:
                mv.value = static_cast<std::int64_t>(info.wmk->value());
                break;
            case instrument_kind::histogram:
                mv.hist = info.hst->aggregate();
                mv.value = static_cast<std::int64_t>(mv.hist.count);
                break;
        }
        out.metrics.push_back(std::move(mv));
    }
    return out;
}

}  // namespace altis::metrics
