// Chrome trace-event exporter: serializes a session as the JSON object
// format understood by Perfetto / chrome://tracing / speedscope. Spans
// become complete ("ph":"X") duration events; timestamps are microseconds
// with nanosecond precision preserved as fractions. Dataflow kernels land on
// their own tracks (tid = lane + 1) so the Fig. 3 overlap is visible as
// parallel bars; everything sequential shares the main track.
#pragma once

#include <iosfwd>

#include "trace/session.hpp"

namespace altis::metrics {
class session;
}

namespace altis::trace {

/// When `metrics` is non-null (a stopped metrics::session), its sampled
/// gauge/watermark series are spliced into the same traceEvents array as
/// "ph":"C" counter tracks under pid 2, so the simulated timeline and the
/// wall-clock telemetry render in one Perfetto view.
void write_chrome_json(const session& s, std::ostream& out,
                       const altis::metrics::session* metrics = nullptr);

}  // namespace altis::trace
