file(REMOVE_RECURSE
  "libaltis_rng.a"
)
