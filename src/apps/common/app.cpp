#include "apps/common/app.hpp"

#include "core/result_database.hpp"

namespace altis::apps {

void register_standard_app(std::string name, std::string description,
                           std::vector<Variant> variants,
                           AppResult (*run)(const RunConfig&)) {
    AppInfo info;
    info.name = std::move(name);
    info.description = std::move(description);
    info.variants = std::move(variants);
    info.run = [run](const RunConfig& cfg, ResultDatabase& db) {
        const std::string atts = "size=" + std::to_string(cfg.size) +
                                 ",device=" + cfg.device +
                                 ",variant=" + std::string(to_string(cfg.variant));
        for (int pass = 0; pass < cfg.passes; ++pass) {
            const AppResult r = run(cfg);
            db.add_result("kernel_time", atts, "ms", r.kernel_ms);
            db.add_result("non_kernel_time", atts, "ms", r.non_kernel_ms);
            db.add_result("total_time", atts, "ms", r.total_ms);
        }
    };
    Registry::instance().add(std::move(info));
}

}  // namespace altis::apps
