// SYCL-style asynchronous error delivery, the dataflow watchdog's structured
// deadlock reporting, the RAII dataflow guard, and the configurable pipe
// deadlock timeout.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault/inject.hpp"
#include "sycl/syclite.hpp"

namespace syclite {
namespace {

namespace fault = altis::fault;

perf::kernel_stats stats(const char* name) {
    perf::kernel_stats k;
    k.name = name;
    k.fp32_ops = 1.0;
    k.bytes_read = 4.0;
    return k;
}

TEST(AsyncErrors, HandlerReceivesErrorsAtWaitInSubmissionOrder) {
    fault::plan p = fault::plan::parse("launch:k1@1;launch:k3@1");
    fault::scope s(p);
    std::vector<std::string> delivered;
    queue q("rtx_2080", perf::runtime_kind::sycl, [&](exception_list errors) {
        for (const auto& e : errors) {
            try {
                std::rethrow_exception(e);
            } catch (const std::exception& ex) {
                delivered.emplace_back(ex.what());
            }
        }
    });
    int ran = 0;
    q.submit([&](handler& h) { h.single_task(stats("k1"), [&] { ++ran; }); });
    q.submit([&](handler& h) { h.single_task(stats("k2"), [&] { ++ran; }); });
    q.submit([&](handler& h) { h.single_task(stats("k3"), [&] { ++ran; }); });
    EXPECT_TRUE(delivered.empty());  // errors are asynchronous
    q.wait();
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_NE(delivered[0].find("'k1'"), std::string::npos);
    EXPECT_NE(delivered[1].find("'k3'"), std::string::npos);
    EXPECT_EQ(ran, 1);  // only k2 executed

    // The queue stays usable and the list was drained.
    delivered.clear();
    q.submit([&](handler& h) { h.single_task(stats("k4"), [] {}); });
    q.wait();
    EXPECT_TRUE(delivered.empty());
}

TEST(AsyncErrors, ThrowAsynchronousIsNoOpWhenClean) {
    bool called = false;
    queue q("rtx_2080", perf::runtime_kind::sycl,
            [&](exception_list) { called = true; });
    q.throw_asynchronous();
    EXPECT_FALSE(called);
}

TEST(AsyncErrors, WithoutHandlerFirstErrorRethrown) {
    fault::plan p = fault::plan::parse("launch:k1@1");
    fault::scope s(p);
    queue q("rtx_2080");
    EXPECT_THROW(
        q.submit([&](handler& h) { h.single_task(stats("k1"), [] {}); }),
        fault::launch_fault);
}

TEST(AsyncErrors, InjectedPipeStallBecomesStructuredDataflowError) {
    fault::plan p = fault::plan::parse("pipe:stall_me@1");
    fault::scope s(p);
    queue q("stratix_10");
    pipe<int> pp(4, "stall_me", std::chrono::milliseconds(50));
    q.begin_dataflow();
    q.submit([&](handler& h) {
        perf::kernel_stats k = stats("writer");
        k.writes_pipe = true;
        h.single_task(k, [&pp] { pp.write(1); });
    });
    try {
        q.end_dataflow();
        FAIL() << "stalled group should collapse into a dataflow_error";
    } catch (const dataflow_error& e) {
        ASSERT_EQ(e.blocked_kernels().size(), 1u);
        EXPECT_EQ(e.blocked_kernels()[0], "writer");
        const std::string what = e.what();
        EXPECT_NE(what.find("injected stall"), std::string::npos);
        EXPECT_NE(what.find("stall_me"), std::string::npos);
        EXPECT_NE(what.find("capacity 4"), std::string::npos);
        EXPECT_NE(what.find("occupancy"), std::string::npos);
    }
    // The queue recovered: a fresh dataflow group works.
    buffer<int> out(8);
    dataflow_guard g(q);
    q.submit([&](handler& h) {
        auto acc = h.get_access(out, access_mode::discard_write);
        h.single_task(stats("fine"), [acc] { acc[0] = 7; });
    });
    EXPECT_EQ(g.join().size(), 1u);
    EXPECT_EQ(out.host_data()[0], 7);
}

TEST(AsyncErrors, HandlerConsumesDataflowErrorAndQueueStaysUsable) {
    fault::plan p = fault::plan::parse("pipe:wedged@1");
    fault::scope s(p);
    std::vector<std::string> delivered;
    queue q("stratix_10", perf::runtime_kind::sycl, [&](exception_list errors) {
        for (const auto& e : errors) {
            try {
                std::rethrow_exception(e);
            } catch (const std::exception& ex) {
                delivered.emplace_back(ex.what());
            }
        }
    });
    pipe<int> pp(2, "wedged", std::chrono::milliseconds(50));
    dataflow_guard g(q);
    q.submit([&](handler& h) {
        perf::kernel_stats k = stats("reader");
        k.reads_pipe = true;
        h.single_task(k, [&pp] { (void)pp.read(); });
    });
    const auto events = g.join();  // handler consumes; no throw
    EXPECT_TRUE(events.empty());
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_NE(delivered[0].find("dataflow deadlock"), std::string::npos);
    q.submit([&](handler& h) { h.single_task(stats("after"), [] {}); });
    q.wait();
}

TEST(AsyncErrors, DataflowGuardUnlatchesQueueOnException) {
    queue q("stratix_10");
    try {
        dataflow_guard g(q);
        q.submit([&](handler& h) { h.single_task(stats("a"), [] {}); });
        throw std::runtime_error("host-side failure mid-group");
    } catch (const std::runtime_error&) {
    }
    // Regression: without the guard the queue stayed latched in dataflow
    // mode and every later submit silently queued forever.
    buffer<int> b(4);
    q.submit([&](handler& h) {
        auto acc = h.get_access(b, access_mode::discard_write);
        h.single_task(stats("sequential"), [acc] { acc[0] = 3; });
    });
    q.wait();
    EXPECT_EQ(b.host_data()[0], 3);
    // And a fresh group can be opened.
    dataflow_guard g2(q);
    q.submit([&](handler& h) { h.single_task(stats("b"), [] {}); });
    EXPECT_EQ(g2.join().size(), 1u);
}

TEST(PipeTimeout, ConstructorTimeoutBoundsBlockingOps) {
    pipe<int> pp(2, "tiny", std::chrono::milliseconds(20));
    EXPECT_EQ(pp.timeout(), std::chrono::milliseconds(20));
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW((void)pp.read(), pipe_deadlock);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::seconds(5));  // not the 30 s default
    try {
        (void)pp.read();
    } catch (const pipe_deadlock& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("'tiny'"), std::string::npos);
        EXPECT_NE(what.find("20 ms"), std::string::npos);
        EXPECT_NE(what.find("capacity 2"), std::string::npos);
        EXPECT_NE(what.find("occupancy 0/2"), std::string::npos);
    }
}

TEST(PipeTimeout, EnvironmentOverridesDefault) {
    ::setenv("ALTIS_PIPE_TIMEOUT_MS", "17", 1);
    EXPECT_EQ(default_pipe_timeout(), std::chrono::milliseconds(17));
    pipe<int> pp(1, "env_pipe");
    EXPECT_EQ(pp.timeout(), std::chrono::milliseconds(17));
    ::setenv("ALTIS_PIPE_TIMEOUT_MS", "not-a-number", 1);
    EXPECT_EQ(default_pipe_timeout(), std::chrono::milliseconds(30000));
    ::setenv("ALTIS_PIPE_TIMEOUT_MS", "-5", 1);
    EXPECT_EQ(default_pipe_timeout(), std::chrono::milliseconds(30000));
    ::unsetenv("ALTIS_PIPE_TIMEOUT_MS");
    EXPECT_EQ(default_pipe_timeout(), std::chrono::milliseconds(30000));
}

TEST(PipeTimeout, NonPositiveTimeoutRejected) {
    EXPECT_THROW(pipe<int>(4, "bad", std::chrono::milliseconds(0)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace syclite
