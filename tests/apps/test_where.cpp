#include "apps/where/where.hpp"

#include <gtest/gtest.h>

namespace altis::apps::where {
namespace {

TEST(Where, GoldenSelectsByPredicateInOrder) {
    params p;
    p.n = 1000;
    p.threshold = 1 << 18;
    const auto table = make_table(p);
    const auto selected = golden(p, table);
    EXPECT_GT(selected.size(), 0u);
    EXPECT_LT(selected.size(), table.size());
    for (const auto& r : selected) EXPECT_LT(r.key, p.threshold);
    // Stable: payloads (original indices) strictly increasing.
    for (std::size_t i = 1; i < selected.size(); ++i)
        EXPECT_LT(selected[i - 1].payload, selected[i].payload);
}

TEST(Where, SelectivityNearQuarter) {
    const params p = params::preset(1);
    const auto table = make_table(p);
    const auto selected = golden(p, table);
    const double sel =
        static_cast<double>(selected.size()) / static_cast<double>(p.n);
    EXPECT_NEAR(sel, 0.25, 0.02);
}

struct Case {
    const char* device;
    Variant variant;
};

class WhereVariants : public ::testing::TestWithParam<Case> {};

TEST_P(WhereVariants, FunctionalRunVerifies) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = GetParam().device;
    cfg.variant = GetParam().variant;
    const AppResult r = run(cfg);
    EXPECT_GT(r.kernel_ms, 0.0);
    EXPECT_GT(r.total_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndVariants, WhereVariants,
    ::testing::Values(Case{"rtx_2080", Variant::cuda},
                      Case{"rtx_2080", Variant::sycl_opt},
                      Case{"xeon_6128", Variant::sycl_base},
                      Case{"stratix_10", Variant::fpga_base},
                      Case{"stratix_10", Variant::fpga_opt},
                      Case{"agilex", Variant::fpga_opt}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.device) + "_" +
               to_string(info.param.variant);
    });

// Sec. 3.3 / Fig. 2: Where is the one application whose optimized SYCL stays
// ~0.3x of CUDA on the RTX 2080, because of the oneDPL prefix sum.
TEST(Where, SyclUnderperformsCudaOnGpuBecauseOfScan) {
    const auto& rtx = perf::device_by_name("rtx_2080");
    const auto cuda = simulate_region(region(Variant::cuda, rtx, 2), rtx,
                                      perf::runtime_kind::cuda);
    const auto sycl = simulate_region(region(Variant::sycl_opt, rtx, 2), rtx,
                                      perf::runtime_kind::sycl);
    const double speedup = cuda.total_ms() / sycl.total_ms();
    EXPECT_LT(speedup, 0.9);
    EXPECT_GT(speedup, 0.1);
}

// Sec. 5.3: the custom Single-Task scan dominates the FPGA-side win.
TEST(Where, FpgaOptBeatsFpgaBase) {
    const auto& s10 = perf::device_by_name("stratix_10");
    const auto base = simulate_region(region(Variant::fpga_base, s10, 3), s10,
                                      perf::runtime_kind::sycl);
    const auto opt = simulate_region(region(Variant::fpga_opt, s10, 3), s10,
                                     perf::runtime_kind::sycl);
    const double speedup = base.kernel_ms() / opt.kernel_ms();
    EXPECT_GT(speedup, 5.0);   // paper: 33.5x-90.8x across sizes
    EXPECT_LT(speedup, 300.0);
}

TEST(Where, AgilexSizeThreeCrashReproduced) {
    const auto& agx = perf::device_by_name("agilex");
    EXPECT_TRUE(crashes_on(agx, Variant::fpga_opt, 3));
    EXPECT_FALSE(crashes_on(agx, Variant::fpga_opt, 2));
    EXPECT_FALSE(
        crashes_on(perf::device_by_name("stratix_10"), Variant::fpga_opt, 3));
    RunConfig cfg;
    cfg.size = 3;
    cfg.device = "agilex";
    cfg.variant = Variant::fpga_opt;
    EXPECT_THROW(run(cfg), std::runtime_error);
}

TEST(Where, ReplicationRetunedBetweenBoards) {
    // Sec. 5.5: 20x -> 25x and 2x -> 4x.
    const auto s10 = fpga_design(perf::device_by_name("stratix_10"), 1);
    const auto agx = fpga_design(perf::device_by_name("agilex"), 1);
    ASSERT_EQ(s10.size(), 3u);
    EXPECT_EQ(s10[0].replication, 20);
    EXPECT_EQ(agx[0].replication, 25);
    EXPECT_EQ(s10[2].replication, 2);
    EXPECT_EQ(agx[2].replication, 4);
}

TEST(Where, RunMatchesRegionSimulation) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "rtx_2080";
    cfg.variant = Variant::sycl_opt;
    const AppResult r = run(cfg);
    const auto& dev = perf::device_by_name(cfg.device);
    const auto est = simulate_region(region(cfg.variant, dev, cfg.size), dev,
                                     perf::runtime_kind::sycl);
    EXPECT_NEAR(r.kernel_ms, est.kernel_ms(), r.kernel_ms * 0.01);
}

}  // namespace
}  // namespace altis::apps::where
