// Output-verification helpers: every application run checks its device
// results against the golden host reference before reporting timings.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>

namespace altis::apps {

/// Maximum elementwise relative error (absolute fallback near zero).
template <typename T>
[[nodiscard]] double max_rel_error(std::span<const T> expected,
                                   std::span<const T> actual) {
    if (expected.size() != actual.size())
        throw std::invalid_argument("max_rel_error: size mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const double e = static_cast<double>(expected[i]);
        const double a = static_cast<double>(actual[i]);
        const double denom = std::max(std::abs(e), 1.0);
        worst = std::max(worst, std::abs(a - e) / denom);
    }
    return worst;
}

/// Exact-match count of mismatching elements (integer outputs).
template <typename T>
[[nodiscard]] std::size_t mismatch_count(std::span<const T> expected,
                                         std::span<const T> actual) {
    if (expected.size() != actual.size())
        throw std::invalid_argument("mismatch_count: size mismatch");
    std::size_t bad = 0;
    for (std::size_t i = 0; i < expected.size(); ++i)
        if (expected[i] != actual[i]) ++bad;
    return bad;
}

class verification_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Throws verification_error when err exceeds tol.
inline void require_close(double err, double tol, const std::string& what) {
    if (!(err <= tol))
        throw verification_error(what + ": verification failed, error " +
                                 std::to_string(err) + " > tol " +
                                 std::to_string(tol));
}

}  // namespace altis::apps
