// Regenerates Figure 2: speedup of Altis-SYCL over Altis (CUDA) on the
// RTX 2080 -- the Baseline (functionally-correct DPCT migration) and the
// Optimized (Sec. 3.3 techniques) panels, across input sizes 1-3, plus the
// geometric means. FDTD2D's baseline compares against the *mistimed*
// original CUDA (missing cudaDeviceSynchronize), as in the paper.
//
// The sweep is resilient: under an --inject fault plan each cell (which
// simulates both the CUDA reference and the SYCL variant) is retried per
// policy; degraded cells print as FAILED and are logged in the outcome
// section while the rest of the figure still regenerates.
#include <cmath>
#include <iostream>

#include "apps/common/app.hpp"
#include "apps/common/suite.hpp"
#include "core/report.hpp"
#include "core/result_database.hpp"
#include "fault/retry.hpp"
#include "trace/harness.hpp"

namespace {

using altis::Table;
using altis::Variant;
namespace bench = altis::bench;
namespace apps = altis::apps;
namespace perf = altis::perf;
namespace fault = altis::fault;

double speedup(const bench::SuiteEntry& e, Variant sycl_variant, int size) {
    const perf::device_spec& rtx = perf::device_by_name("rtx_2080");
    // FDTD2D baseline: the paper's comparison point is the unsynchronized
    // CUDA timing (Sec. 3.3).
    double cuda_ms;
    if (sycl_variant == Variant::sycl_base && e.cuda_mistimed) {
        cuda_ms = apps::simulate_region(e.cuda_mistimed(rtx, size), rtx,
                                        perf::runtime_kind::cuda)
                      .total_ms();
    } else if (sycl_variant == Variant::sycl_opt && e.cuda_fixed) {
        // Optimized panel: the paper ported the fix back to CUDA first.
        cuda_ms = apps::simulate_region(e.cuda_fixed(rtx, size), rtx,
                                        perf::runtime_kind::cuda)
                      .total_ms();
    } else {
        cuda_ms = *bench::total_ms(e, Variant::cuda, "rtx_2080", size);
    }
    const double sycl_ms = *bench::total_ms(e, sycl_variant, "rtx_2080", size);
    return cuda_ms / sycl_ms;
}

void panel(const char* title, Variant v,
           const std::array<double, 3> bench::SuiteEntry::* paper,
           const fault::retry_policy& policy, bool fail_fast, bool injecting,
           altis::resilience::supervisor* sup,
           altis::ResultDatabase& outcomes) {
    std::cout << "== " << title << " ==\n";
    Table t({"Application", "Size 1", "Size 2", "Size 3", "Paper S1",
             "Paper S2", "Paper S3"});
    altis::ResultDatabase db;
    for (const auto& e : bench::suite()) {
        if (!e.in_fig2) continue;
        std::vector<std::string> row{e.label};
        for (int size : {1, 2, 3}) {
            const std::string label = bench::config_label(e, v, "rtx_2080", size);
            bench::ConfigOutcome co;
            auto cell = [&] {
                co.oc = fault::run_guarded(
                    [&] { co.ms = speedup(e, v, size); }, policy, fail_fast);
                if (!co.oc.succeeded()) co.ms.reset();
            };
            if (sup != nullptr) {
                const auto res =
                    sup->run(label, e.label + "/" + to_string(v) + "/rtx_2080",
                             [&] {
                                 cell();
                                 return bench::outcome_to_entry(label, co);
                             });
                if (res.replayed || res.entry.status == "quarantined")
                    co = bench::entry_to_outcome(res.entry);
                if (!res.replayed) bench::emit_degraded_span(label, co.oc);
            } else {
                cell();
            }
            const fault::outcome& oc = co.oc;
            if (injecting || sup != nullptr || !oc.succeeded() || oc.retried())
                fault::record_outcome(outcomes, label, oc);
            if (!oc.succeeded()) {
                row.push_back(oc.st == fault::outcome::status::failed
                                  ? "FAILED"
                                  : oc.label());
                continue;
            }
            db.add_result("speedup_size" + std::to_string(size), e.label, "x",
                          *co.ms);
            row.push_back(Table::num(*co.ms, 2));
        }
        for (int i = 0; i < 3; ++i)
            row.push_back(
                Table::num((e.*paper)[static_cast<std::size_t>(i)], 2));
        t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "geomean: size1 " << Table::num(db.geomean("speedup_size1"), 2)
              << ", size2 " << Table::num(db.geomean("speedup_size2"), 2)
              << ", size3 " << Table::num(db.geomean("speedup_size3"), 2)
              << '\n';
}

}  // namespace

int main(int argc, char** argv) {
    altis::trace::cli_harness trace_harness("fig2_gpu_speedup");
    if (const int rc = trace_harness.parse(argc, argv); rc >= 0) return rc;

    const auto& policy = trace_harness.retry_policy();
    const bool fail_fast = trace_harness.fail_fast();
    const bool injecting = trace_harness.fault_options().enabled();
    altis::resilience::supervisor* sup = trace_harness.supervisor();

    std::cout << "Figure 2: Speedup of Altis-SYCL over Altis (CUDA) on the "
                 "RTX 2080\n\n";
    altis::ResultDatabase outcomes;
    try {
        panel("Baseline (DPCT migration, functionally correct)",
              Variant::sycl_base, &bench::SuiteEntry::paper_fig2_baseline,
              policy, fail_fast, injecting, sup, outcomes);
        std::cout << "paper geomean reference: optimized 1.0 / 1.1 / 1.3\n\n";
        panel("Optimized (Sec. 3.3)", Variant::sycl_opt,
              &bench::SuiteEntry::paper_fig2_optimized, policy, fail_fast,
              injecting, sup, outcomes);
    } catch (const std::exception& e) {
        std::cerr << "aborting (--fail-fast): " << e.what() << "\n";
        return 1;
    }
    altis::print_outcomes(outcomes, std::cout);
    if (const int rc = trace_harness.finish(); rc != 0) return rc;
    if (altis::resilience::interrupted())
        return 128 + altis::resilience::interrupt_signal();
    return outcomes.all_outcomes_ok() ? 0 : 1;
}
