#include "sycl/pipe.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

namespace syclite {
namespace {

using std::chrono::milliseconds;

TEST(Pipe, FifoOrderSingleThread) {
    pipe<int> p(4);
    p.write(1);
    p.write(2);
    p.write(3);
    EXPECT_EQ(p.read(), 1);
    EXPECT_EQ(p.read(), 2);
    p.write(4);
    EXPECT_EQ(p.read(), 3);
    EXPECT_EQ(p.read(), 4);
}

TEST(Pipe, TryVariantsRespectCapacity) {
    pipe<int> p(2);
    EXPECT_TRUE(p.try_write(1));
    EXPECT_TRUE(p.try_write(2));
    EXPECT_FALSE(p.try_write(3));  // full
    int v = 0;
    EXPECT_TRUE(p.try_read(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(p.try_read(v));
    EXPECT_FALSE(p.try_read(v));  // empty
}

TEST(Pipe, ZeroCapacityRejected) {
    EXPECT_THROW(pipe<int>(0), std::invalid_argument);
}

TEST(Pipe, ProducerConsumerTransfersEverythingInOrder) {
    constexpr int kN = 20000;
    pipe<int> p(8);  // small capacity forces frequent blocking
    std::vector<int> received;
    received.reserve(kN);
    std::thread consumer([&] {
        for (int i = 0; i < kN; ++i) received.push_back(p.read());
    });
    for (int i = 0; i < kN; ++i) p.write(i);
    consumer.join();
    ASSERT_EQ(received.size(), static_cast<std::size_t>(kN));
    for (int i = 0; i < kN; ++i) ASSERT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(Pipe, CapacityAccessor) {
    pipe<float> p(32);
    EXPECT_EQ(p.capacity(), 32u);
}

TEST(Pipe, OccupancyTracksBufferedElements) {
    pipe<int> p(4);
    EXPECT_EQ(p.occupancy(), 0u);
    p.write(1);
    p.write(2);
    EXPECT_EQ(p.occupancy(), 2u);
    (void)p.read();
    EXPECT_EQ(p.occupancy(), 1u);
}

TEST(Pipe, BurstRoundTripSingleThread) {
    pipe<int> p(8);
    const std::vector<int> src = {1, 2, 3, 4, 5};
    std::vector<int> dst(5, 0);
    p.write_burst(src.data(), src.size());
    EXPECT_EQ(p.occupancy(), 5u);
    p.read_burst(dst.data(), dst.size());
    EXPECT_EQ(src, dst);
    EXPECT_EQ(p.occupancy(), 0u);
}

TEST(Pipe, BurstLargerThanCapacityStreamsThrough) {
    constexpr std::size_t kN = 10000;
    pipe<int> p(16);  // bursts far exceed capacity -> chunked handoff
    std::vector<int> src(kN), dst(kN, -1);
    std::iota(src.begin(), src.end(), 0);
    std::thread consumer([&] { p.read_burst(dst.data(), kN); });
    p.write_burst(src.data(), kN);
    consumer.join();
    EXPECT_EQ(src, dst);
}

TEST(Pipe, BurstAndElementOpsInterleaveCompatibly) {
    pipe<int> p(4);
    const int burst[3] = {10, 11, 12};
    p.write(9);
    p.write_burst(burst, 3);
    EXPECT_EQ(p.read(), 9);
    int got[2] = {0, 0};
    p.read_burst(got, 2);
    EXPECT_EQ(got[0], 10);
    EXPECT_EQ(got[1], 11);
    EXPECT_EQ(p.read(), 12);
}

/// Capacity-1 torture: every transfer is a full/empty handoff, the worst
/// case for the parking handshake; producer and consumer additionally mix
/// try_ and blocking operations (each side stays single-threaded: the pipe
/// is strictly SPSC).
TEST(Pipe, CapacityOneTortureInterleavedTryAndBlockingOps) {
    constexpr int kN = 5000;
    pipe<int> p(1, "cap1", milliseconds(10000));
    std::thread consumer([&] {
        for (int i = 0; i < kN; ++i) {
            int v = -1;
            if ((i & 1) == 0) {
                while (!p.try_read(v)) std::this_thread::yield();
            } else {
                v = p.read();
            }
            ASSERT_EQ(v, i);
        }
    });
    for (int i = 0; i < kN; ++i) {
        if ((i & 3) == 0) {
            while (!p.try_write(i)) std::this_thread::yield();
        } else {
            p.write(i);
        }
    }
    consumer.join();
    EXPECT_EQ(p.occupancy(), 0u);
}

/// Large-ring torture (capacity 2^16): the producer mostly runs ahead of
/// the consumer; bursts, try_ and blocking ops interleave.
TEST(Pipe, LargeCapacityTortureWithBursts) {
    constexpr std::size_t kN = 1 << 18;
    pipe<int> p(1 << 16, "cap64k", milliseconds(10000));
    std::thread consumer([&] {
        std::vector<int> got(kN, -1);
        std::size_t i = 0;
        while (i < kN) {
            if ((i & 7) == 0) {
                const std::size_t take = std::min<std::size_t>(1024, kN - i);
                p.read_burst(got.data() + i, take);
                i += take;
            } else {
                got[i] = p.read();
                ++i;
            }
        }
        for (std::size_t j = 0; j < kN; ++j)
            ASSERT_EQ(got[j], static_cast<int>(j));
    });
    std::vector<int> src(kN);
    std::iota(src.begin(), src.end(), 0);
    std::size_t i = 0;
    while (i < kN) {
        if ((i & 3) == 0) {
            const std::size_t take = std::min<std::size_t>(512, kN - i);
            p.write_burst(src.data() + i, take);
            i += take;
        } else {
            if (p.try_write(src[i])) ++i;  // full ring: retry via blocking
            else { p.write(src[i]); ++i; }
        }
    }
    consumer.join();
}

/// The deadlock watchdog must survive the lock-free rewrite: an abandoned
/// peer (nobody ever reads / writes) still turns into pipe_deadlock within
/// the configured timeout, on blocking and burst ops alike.
TEST(Pipe, WatchdogFiresOnAbandonedPeer) {
    pipe<int> p(2, "abandoned", milliseconds(50));
    p.write(1);
    p.write(2);
    EXPECT_THROW(p.write(3), pipe_deadlock);  // full, no consumer
    int drain = 0;
    (void)p.try_read(drain);
    (void)p.try_read(drain);
    EXPECT_THROW((void)p.read(), pipe_deadlock);  // empty, no producer
    const int burst[4] = {1, 2, 3, 4};
    EXPECT_THROW(p.write_burst(burst, 4), pipe_deadlock);
}

/// Regression for the occupancy() snapshot: head and tail are published
/// independently and bursts advance them by whole spans, so a naive
/// tail-minus-head read racing a concurrent burst could report a level far
/// beyond capacity (or underflow). A poller hammering occupancy() during
/// heavy burst traffic must only ever observe values in [0, capacity].
TEST(Pipe, OccupancySnapshotStaysWithinCapacityUnderBursts) {
    constexpr std::size_t kCapacity = 8;
    constexpr std::size_t kItems = 50000;
    pipe<int> p(kCapacity, "occ_poll");

    std::atomic<bool> done{false};
    std::atomic<bool> violated{false};
    std::thread poller([&] {
        while (!done.load(std::memory_order_relaxed)) {
            const std::size_t occ = p.occupancy();
            if (occ > kCapacity) violated.store(true);
        }
    });

    std::thread producer([&] {
        int batch[32];
        std::size_t sent = 0;
        while (sent < kItems) {
            const std::size_t take = std::min<std::size_t>(32, kItems - sent);
            for (std::size_t i = 0; i < take; ++i)
                batch[i] = static_cast<int>(sent + i);
            p.write_burst(batch, take);
            sent += take;
        }
    });

    int batch[32];
    long long sum = 0;
    std::size_t got = 0;
    while (got < kItems) {
        const std::size_t take = std::min<std::size_t>(32, kItems - got);
        p.read_burst(batch, take);
        for (std::size_t i = 0; i < take; ++i) sum += batch[i];
        got += take;
    }
    producer.join();
    done.store(true);
    poller.join();

    EXPECT_FALSE(violated.load());
    EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
    EXPECT_EQ(p.occupancy(), 0u);
}

TEST(Pipe, WatchdogReportsOccupancyAfterRewrite) {
    pipe<int> p(4, "occ", milliseconds(50));
    p.write(7);
    try {
        (void)p.read();  // succeeds
        (void)p.read();  // empty -> watchdog
        FAIL() << "read on an empty abandoned pipe must throw";
    } catch (const pipe_deadlock& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("'occ'"), std::string::npos);
        EXPECT_NE(what.find("occupancy 0/4"), std::string::npos);
    }
}

}  // namespace
}  // namespace syclite
