// SRAD: Speckle-Reducing Anisotropic Diffusion (Altis Level-2; ultrasound
// image denoising PDE). Two stencil kernels per iteration plus a statistics
// reduction. Paper roles: the eleven shared arrays whose accessor-object
// arguments exceeded the Stratix 10 until pointers were passed instead
// (Sec. 4), the work-group-size/SIMD trade-off (64x64 @ SIMD 2 is ~4x faster
// than 16x16 @ SIMD 8, Sec. 5.2 case 2), the 16->32 work-group retune on
// Agilex (Sec. 5.5), and the Single-Task implementation row of Table 3.
#pragma once

#include <vector>

#include "apps/common/app.hpp"
#include "apps/common/region.hpp"

namespace altis::apps::srad {

struct params {
    std::size_t rows = 256;
    std::size_t cols = 256;
    int iterations = 50;
    float lambda = 0.5f;

    [[nodiscard]] static params preset(int size);
    [[nodiscard]] std::size_t cells() const { return rows * cols; }
};

/// Deterministic synthetic speckled image, values in (0, 1].
[[nodiscard]] std::vector<float> make_image(const params& p);

/// Host reference: `iterations` diffusion steps in place.
void golden(const params& p, std::vector<float>& image);

AppResult run(const RunConfig& cfg);

[[nodiscard]] timed_region region(Variant v, const perf::device_spec& dev,
                                  int size);
[[nodiscard]] std::vector<perf::kernel_stats> fpga_design(
    const perf::device_spec& dev, int size);

/// The pre-refactoring SRAD kernel set that passed eleven accessor objects
/// (Sec. 4) -- kept to demonstrate the placement failure on Stratix 10.
[[nodiscard]] std::vector<perf::kernel_stats> fpga_design_accessor_objects(
    const perf::device_spec& dev, int size);

inline constexpr const char* kFpgaImplLabel = "Single-Task";

void register_app();

}  // namespace altis::apps::srad
