// Regenerates Figure 4: speedup of the "FPGA Optimized" over the "FPGA
// Baseline" implementations on the Stratix 10, sizes 1-3, plus geometric
// means. (DWT2D has no optimized FPGA version -- Sec. 5.4 -- and is absent,
// exactly as in the figure.)
//
// The sweep is resilient: under an --inject fault plan, configurations that
// fault are retried per policy and degraded cells print as FAILED while the
// rest of the figure still regenerates (outcome log at the end).
#include <iostream>

#include "apps/common/suite.hpp"
#include "core/report.hpp"
#include "core/result_database.hpp"
#include "trace/harness.hpp"

int main(int argc, char** argv) {
    altis::trace::cli_harness trace_harness("fig4_fpga_opt");
    if (const int rc = trace_harness.parse(argc, argv); rc >= 0) return rc;

    using altis::Table;
    using altis::Variant;
    namespace bench = altis::bench;

    const auto& policy = trace_harness.retry_policy();
    const bool fail_fast = trace_harness.fail_fast();
    const bool injecting = trace_harness.fault_options().enabled();
    altis::resilience::supervisor* sup = trace_harness.supervisor();

    std::cout << "Figure 4: Speedup of FPGA Optimized over FPGA Baseline on "
                 "Stratix 10\n\n";
    Table t({"Application", "Size 1", "Size 2", "Size 3", "Paper S1",
             "Paper S2", "Paper S3"});
    altis::ResultDatabase db;
    try {
        for (const auto& e : bench::suite()) {
            if (!e.in_fig45) continue;
            std::vector<std::string> row{e.label};
            for (int size : {1, 2, 3}) {
                const auto base = bench::run_config(e, Variant::fpga_base,
                                                    "stratix_10", size, policy,
                                                    fail_fast, sup);
                const auto opt = bench::run_config(e, Variant::fpga_opt,
                                                   "stratix_10", size, policy,
                                                   fail_fast, sup);
                bench::record_config_outcome(
                    db, bench::config_label(e, Variant::fpga_base, "stratix_10", size),
                    base, injecting || sup != nullptr);
                bench::record_config_outcome(
                    db, bench::config_label(e, Variant::fpga_opt, "stratix_10", size),
                    opt, injecting || sup != nullptr);
                if (base.oc.st == altis::fault::outcome::status::failed ||
                    opt.oc.st == altis::fault::outcome::status::failed) {
                    row.push_back("FAILED");
                    continue;
                }
                // Other degraded terminal states (deadline, cancelled,
                // quarantined) only occur under the supervisor; name them
                // instead of conflating them with nonexistent "n/a" cells.
                if (!base.oc.succeeded() && !base.skipped) {
                    row.push_back(base.oc.label());
                    continue;
                }
                if (!opt.oc.succeeded() && !opt.skipped) {
                    row.push_back(opt.oc.label());
                    continue;
                }
                if (!base.ms || !opt.ms) {
                    row.push_back("n/a");
                    continue;
                }
                const double s = *base.ms / *opt.ms;
                db.add_result("speedup_size" + std::to_string(size), e.label,
                              "x", s);
                row.push_back(Table::num(s, 1));
            }
            for (int i = 0; i < 3; ++i)
                row.push_back(
                    Table::num(e.paper_fig4[static_cast<std::size_t>(i)], 1));
            t.add_row(std::move(row));
        }
    } catch (const std::exception& e) {
        std::cerr << "aborting (--fail-fast): " << e.what() << "\n";
        return 1;
    }
    t.print(std::cout);
    std::cout << "geomean: size1 " << Table::num(db.geomean("speedup_size1"), 1)
              << ", size2 " << Table::num(db.geomean("speedup_size2"), 1)
              << ", size3 " << Table::num(db.geomean("speedup_size3"), 1)
              << "   (paper: 10.7 / 20.7 / 35.6)\n";
    altis::print_outcomes(db, std::cout);
    if (const int rc = trace_harness.finish(); rc != 0) return rc;
    if (altis::resilience::interrupted())
        return 128 + altis::resilience::interrupt_signal();
    return db.all_outcomes_ok() ? 0 : 1;
}
