# Empty compiler generated dependencies file for fig4_fpga_opt.
# This may be replaced when dependencies are built.
