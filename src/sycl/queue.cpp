#include "sycl/queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include <chrono>
#include <cstdint>

#include "analyze/pipes.hpp"
#include "analyze/sanitize.hpp"
#include "fault/inject.hpp"
#include "metrics/instruments.hpp"
#include "perf/model.hpp"
#include "perf/resource_model.hpp"
#include "resilience/cancel.hpp"
#include "sycl/pipe.hpp"

namespace syclite {

namespace fault = altis::fault;

namespace {

/// Wall-clock nanoseconds for telemetry; distinct from the simulated
/// timeline (sim_now_ns_), which must stay byte-identical with metrics off
/// or on.
[[nodiscard]] std::uint64_t wall_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// RAII inc/dec of the in-flight kernel gauge; captures the metering
/// decision once so the pair always balances even if a session starts or
/// stops mid-kernel.
struct inflight_guard {
    bool metered = altis::metrics::collecting();
    inflight_guard() {
        if (metered)
            altis::metrics::instruments::queue_inflight_kernels().add(1);
    }
    ~inflight_guard() {
        if (metered)
            altis::metrics::instruments::queue_inflight_kernels().sub(1);
    }
};

/// Retires a command group's accessor-lifetime token on every exit path of
/// the owning scope (success, injected fault, app exception).
struct retire_guard {
    analyze::recorder* rec;
    std::uint64_t cg;
    ~retire_guard() {
        if (rec != nullptr && cg != 0) rec->retire(cg);
    }
};

/// Releases an enqueued (held) graph node on every exit path of the
/// submit-side bookkeeping, so an exception there cannot leave the node held
/// (which would deadlock every subsequent graph join). release() ignores
/// non-held nodes, so the guard is idempotent.
struct release_guard {
    graph::scheduler* sched;
    std::uint64_t id;
    int actor = -1;
    ~release_guard() { sched->release(id, actor); }
};

}  // namespace

queue::queue(const perf::device_spec& dev, perf::runtime_kind rt,
             async_handler handler, queue_property prop)
    : dev_(dev), rt_(rt), trace_(trace::session::current()),
      handler_(std::move(handler)),
      recorder_(analyze::recorder::current()) {
    if (prop == queue_property::out_of_order)
        sched_ = std::make_unique<graph::scheduler>(&thread_pool::global());
    // Sized for a typical timed region; amortizes away the vector growth
    // that showed up in BM_SubmitDispatch.
    events_.reserve(256);
    if (trace_ != nullptr) {
        if (trace_->device() == nullptr) trace_->bind_device(dev_);
        trace_base_ns_ = trace_->last_end_ns();
    }
    if (recorder_ != nullptr) queue_id_ = recorder_->register_queue(dev_);
    // Device acquisition is an injection point: a fault plan can make this
    // device intermittently unavailable (oneAPI enumeration failures).
    try {
        fault::maybe_inject(fault::op_kind::device, dev_.name,
                            "device acquisition failed");
    } catch (const std::exception& e) {
        record_error_span(std::string("error: ") + e.what());
        throw;
    }
}

queue::queue(const std::string& device_name, perf::runtime_kind rt,
             async_handler handler, queue_property prop)
    : queue(perf::device_by_name(device_name), rt, std::move(handler), prop) {}

queue::~queue() {
    // Abandoning a dataflow group would leak blocked threads; join them.
    for (auto& t : pending_threads_)
        if (t.joinable()) t.join();
    for (const pending_work& w : pending_work_)
        if (recorder_ != nullptr && w.cg != 0) recorder_->retire(w.cg);
    if (sched_ != nullptr) {
        // Implicit join; destructors cannot deliver, so errors are dropped
        // (same contract as an in-order queue destroyed with async errors
        // pending).
        sched_->wait_all();
        (void)sched_->drain_errors();
        if (recorder_ != nullptr) recorder_->record_graph_join(queue_id_);
    }
}

void queue::record_transfer_node(bool to_device, const void* base,
                                 std::size_t bytes) {
    recorder_->record_transfer(queue_id_,
                               to_device ? analyze::node_kind::transfer_in
                                         : analyze::node_kind::transfer_out,
                               base, bytes);
}

void queue::record_error_span(const std::string& label) {
    // Count every error event the queue observes, traced or not.
    if (altis::metrics::collecting())
        altis::metrics::instruments::queue_async_errors().add();
    if (trace_ == nullptr) return;
    trace::span s{trace::span_kind::overhead, label,
                  trace_base_ns_ + sim_now_ns_, trace_base_ns_ + sim_now_ns_};
    s.status = trace::span_status::failed;
    trace_->record(std::move(s));
}

event queue::record(const perf::kernel_stats& stats, double duration_ns,
                    std::string* name) {
    const double launch = perf::launch_overhead_ns(rt_, dev_);
    const double submit = sim_now_ns_;
    const double start = submit + launch;
    const double end = start + duration_ns;
    sim_now_ns_ = end;
    non_kernel_ns_ += launch;
    kernel_ns_ += duration_ns;
    if (trace_ != nullptr) {
        const double b = trace_base_ns_;
        trace_->record({trace::span_kind::overhead, "launch", b + submit,
                        b + start});
        trace_->record_kernel(stats, b + start, b + end);
    }
    // The trace above is the last reader of stats.name; a donated name is
    // moved from here on.
    events_.emplace_back(submit, start, end,
                         name != nullptr ? std::move(*name)
                                         : std::string(stats.name));
    return events_.back();
}

event queue::finish_submit(handler&& h) {
    // Submission latency is wall-clock host time spent inside submit() --
    // bookkeeping plus (outside dataflow groups) the kernel execution
    // itself, mirroring what a profiler sees on q.submit() in the paper's
    // in-order queues.
    const bool metered = altis::metrics::collecting();
    const std::uint64_t submit_t0 = metered ? wall_ns() : 0;
    struct latency_guard {
        bool metered;
        std::uint64_t t0;
        ~latency_guard() {
            if (!metered) return;
            namespace mi = altis::metrics::instruments;
            mi::queue_submissions().add();
            mi::queue_submit_latency_ns().record(wall_ns() - t0);
        }
    } submit_latency{metered, submit_t0};

    // In-order queues run synchronously, so a depends_on edge on a
    // same-queue event is vacuous -- but an event from an out-of-order
    // queue's graph (the only kind that carries a command id) still needs a
    // real join before this command may run.
    for (const handler::graph_dep& d : h.deps_) graph::wait_node(d.state, d.id);

    if (!h.has_kernel()) {
        // An empty command group still handed out accessors; their lifetime
        // ends here.
        retire_guard retire{recorder_, h.cg_.id};
        return event(sim_now_ns_, sim_now_ns_, sim_now_ns_);
    }

    if (recorder_ != nullptr) {
        analyze::node n;
        n.kind = analyze::node_kind::kernel;
        n.cg = h.cg_.id;
        n.kernel = h.stats().name;
        n.queue = queue_id_;
        n.group = in_dataflow_ ? current_group_ : -1;
        n.accesses = std::move(h.accesses_);
        n.pipes = std::move(h.pipes_);
        n.stats = h.stats();
        n.device = &dev_;
        recorder_->add_node(std::move(n));
    }

    if (in_dataflow_) {
        // Deferred: the worker thread starts at end_dataflow(), once the
        // whole group is known (see pending_work in the header).
        pending_stats_.push_back(h.stats());
        pending_work_.push_back({pending_work_.size(), h.cg_.id,
                                 h.stats().name, std::move(h.exec_),
                                 h.cg_.actor});
        return event();  // timestamps assigned at end_dataflow()
    }

    retire_guard retire{recorder_, h.cg_.id};
    try {
        altis::resilience::checkpoint();
        fault::maybe_inject(fault::op_kind::launch, h.stats().name,
                            "kernel launch failed");
        inflight_guard inflight;
        // Attribute the kernel's observed accesses to its shadow actor
        // (no-op when no sanitize session assigned one).
        altis::analyze::shadow::actor_scope actor(h.cg_.actor);
        h.exec_(thread_pool::global());
    } catch (const std::exception& e) {
        // Copy the kernel name into the span label *before* anything can
        // donate h.stats_.name: the error span must keep naming the kernel
        // even after the handler is torn down.
        record_error_span("error[" + h.stats().name + "]: " + e.what());
        if (handler_) {
            // SYCL semantics: execution errors are asynchronous -- they
            // surface at the next wait()/throw_asynchronous(), not here.
            async_errors_.push_back(std::current_exception());
            return event(sim_now_ns_, sim_now_ns_, sim_now_ns_,
                         h.stats().name);
        }
        throw;
    }
    const double duration =
        (dev_.is_fpga() && design_fmax_mhz_ > 0.0)
            ? perf::fpga_kernel_time_ns(h.stats(), dev_, design_fmax_mhz_)
            : perf::kernel_time_ns(h.stats(), dev_);
    return record(h.stats(), duration, &h.stats_.name);
}

event queue::finish_submit_graph(handler&& h) {
    const bool metered = altis::metrics::collecting();
    const std::uint64_t submit_t0 = metered ? wall_ns() : 0;
    struct latency_guard {
        bool metered;
        std::uint64_t t0;
        ~latency_guard() {
            if (!metered) return;
            namespace mi = altis::metrics::instruments;
            mi::queue_submissions().add();
            mi::queue_submit_latency_ns().record(wall_ns() - t0);
        }
    } submit_latency{metered, submit_t0};

    if (!h.has_kernel()) {
        retire_guard retire{recorder_, h.cg_.id};
        return event(sim_now_ns_, sim_now_ns_, sim_now_ns_);
    }

    const double duration =
        (dev_.is_fpga() && design_fmax_mhz_ > 0.0)
            ? perf::fpga_kernel_time_ns(h.stats(), dev_, design_fmax_mhz_)
            : perf::kernel_time_ns(h.stats(), dev_);
    // The host side of an async launch: submission overhead lands on the
    // host clock now; the kernel's own time lives on a graph lane and folds
    // in at the join.
    const double launch = perf::launch_overhead_ns(rt_, dev_);
    const double submit = sim_now_ns_;
    sim_now_ns_ += launch;
    non_kernel_ns_ += launch;
    epoch_launch_ns_ += launch;

    graph::submission s;
    s.name = h.stats().name;
    s.exec = std::move(h.exec_);
    s.ranges.reserve(h.accesses_.size());
    for (const auto& a : h.accesses_)
        s.ranges.push_back({a.base, a.bytes, analyze::writes(a.mode)});
    // Explicit deps: ids are per-scheduler counters, so only events produced
    // by *this* queue's graph become edges. An event from another queue's
    // graph is joined here instead -- a blocking cross-queue sync rather
    // than a graph edge (documented limitation, DESIGN.md Sec. 4a); the
    // foreign id must never reach enqueue(), where it would alias an
    // unrelated node of this graph.
    s.after.reserve(h.deps_.size());
    for (const handler::graph_dep& d : h.deps_) {
        if (d.state == sched_->state())
            s.after.push_back(d.id);
        else
            graph::wait_node(d.state, d.id);
    }
    s.submit_ns = sim_now_ns_;
    s.duration_ns = duration;
    s.cg = h.cg_.id;
    s.actor = h.cg_.actor;
    s.recorder = recorder_;
    const graph::ticket t = sched_->enqueue(std::move(s));

    // Phase two: shadow edges, command-graph node, trace span and the event
    // log all complete on this thread before release() lets the node run.
    // The release is a scope guard: if any of that bookkeeping throws, the
    // node must still be released, or it stays `held` forever and every
    // later join -- including ~queue during unwind -- deadlocks.
    release_guard release{sched_.get(), t.id};
    if (recorder_ != nullptr) {
        analyze::node n;
        n.kind = analyze::node_kind::kernel;
        n.cg = h.cg_.id;
        n.kernel = h.stats().name;
        n.queue = queue_id_;
        n.accesses = std::move(h.accesses_);
        n.pipes = std::move(h.pipes_);
        n.stats = h.stats();
        n.device = &dev_;
        recorder_->add_node_graph(std::move(n), t.dep_actors);
    }
    if (trace_ != nullptr) {
        const double b = trace_base_ns_;
        trace_->record({trace::span_kind::overhead, "launch", b + submit,
                        b + submit + launch});
        trace_->record_kernel(h.stats(), b + t.start_ns, b + t.end_ns, t.lane,
                              1.0, t.id, t.deps);
    }
    events_.emplace_back(submit, t.start_ns, t.end_ns, h.stats().name, t.id,
                         sched_->state());
    return events_.back();
}

event queue::submit_transfer_graph(bool to_device, void* dst_ptr,
                                   const void* src_ptr, std::size_t bytes) {
    const double dur = perf::transfer_ns(rt_, dev_, static_cast<double>(bytes));
    const double submit = sim_now_ns_;

    graph::submission s;
    s.name = "transfer";
    s.transfer = true;
    s.exec = [dst_ptr, src_ptr, bytes](thread_pool&) {
        altis::mem::copy_bytes(dst_ptr, src_ptr, bytes);
    };
    // Both sides conflict: the source orders this copy after kernels writing
    // it (USM on the host side, the buffer on write-back), the destination
    // after readers/writers of the buffer being overwritten.
    s.ranges.push_back({src_ptr, bytes, false});
    s.ranges.push_back({dst_ptr, bytes, true});
    s.submit_ns = submit;
    s.duration_ns = dur;
    s.recorder = recorder_;
    const graph::ticket t = sched_->enqueue(std::move(s));

    release_guard release{sched_.get(), t.id};
    int actor = -1;
    if (recorder_ != nullptr)
        actor = recorder_->record_transfer_graph(
            queue_id_,
            to_device ? analyze::node_kind::transfer_in
                      : analyze::node_kind::transfer_out,
            to_device ? dst_ptr : src_ptr, bytes, t.dep_actors);
    release.actor = actor;
    if (trace_ != nullptr) {
        trace::span sp{trace::span_kind::transfer, "transfer",
                       trace_base_ns_ + t.start_ns,
                       trace_base_ns_ + t.end_ns};
        sp.counters.bytes = static_cast<double>(bytes);
        sp.track = t.lane;  // 1: the modeled PCIe lane
        sp.cmd = t.id;
        sp.deps = t.deps;
        trace_->record(std::move(sp));
    }
    events_.emplace_back(submit, t.start_ns, t.end_ns, std::string(), t.id,
                         sched_->state());
    return events_.back();
}

void queue::collect_graph_errors() {
    if (sched_ == nullptr) return;
    std::vector<graph::completion> failed = sched_->drain_errors();
    // Cancellation outranks node errors, exactly as in dataflow groups: the
    // supervisor pulled the plug, so it unwinds directly and the collateral
    // failures are dropped with the sweep.
    for (const graph::completion& c : failed)
        if (c.cancelled) {
            record_error_span("graph cancelled");
            std::rethrow_exception(c.error);
        }
    for (graph::completion& c : failed) {
        std::string label = "error[" + c.name + "]";
        try {
            std::rethrow_exception(c.error);
        } catch (const std::exception& e) {
            label += std::string(": ") + e.what();
        } catch (...) {
        }
        record_error_span(label);
        async_errors_.push_back(std::move(c.error));
    }
}

void queue::join_graph() {
    if (sched_ == nullptr) return;
    sched_->wait_all();
    // Fold the epoch's modeled timeline into the queue clocks. Kernel time
    // is the *union* of the lanes' kernel intervals (overlapped kernels
    // count once -- the dataflow-group convention); whatever of the epoch's
    // span is neither kernel union nor already-charged launch overhead
    // (serialized transfers, dependency stalls) lands on the non-kernel
    // side, keeping kernel + non-kernel == simulated wall.
    const double horizon = sched_->horizon_ns();
    const double busy = sched_->busy_ns();
    std::vector<std::pair<double, double>> spans = sched_->kernel_spans();
    std::sort(spans.begin(), spans.end());
    std::vector<std::pair<double, double>> merged;
    double covered = 0.0, lo = 0.0, hi = -1.0;
    for (const auto& [s, e] : spans) {
        if (hi < 0.0 || s > hi) {
            if (hi >= 0.0) {
                covered += hi - lo;
                merged.emplace_back(lo, hi);
            }
            lo = s;
            hi = e;
        } else {
            hi = std::max(hi, e);
        }
    }
    if (hi >= 0.0) {
        covered += hi - lo;
        merged.emplace_back(lo, hi);
    }
    kernel_ns_ += covered;
    if (trace_ != nullptr) {
        // The per-kernel spans live on lane tracks (>= 2), which the trace
        // session excludes from its wall-time sums; the epoch's kernel wall
        // share is published as group spans over the union intervals, the
        // same convention dataflow regions use.
        const double b = trace_base_ns_;
        for (const auto& [s, e] : merged)
            trace_->record(
                {trace::span_kind::dataflow_group, "graph epoch", b + s, b + e});
    }
    sim_now_ns_ = std::max(sim_now_ns_, horizon);
    const double elapsed = sim_now_ns_ - epoch_start_ns_;
    // The epoch's non-kernel share is exactly `elapsed - covered`. Launch
    // overhead was already charged at submit (epoch_launch_ns_), so the
    // correction here may be negative: a launch window that a kernel lane
    // covered gets credited back, keeping kernel + non-kernel == simulated
    // wall. The per-epoch sum of both charges is elapsed - covered >= 0.
    non_kernel_ns_ += elapsed - covered - epoch_launch_ns_;
    if (altis::metrics::collecting() && busy > 0.0 && elapsed > 0.0)
        // > 100%: the epoch packed more modeled device time than wall span,
        // i.e. kernels/transfers actually overlapped.
        altis::metrics::instruments::sched_overlap_pct().record(
            100.0 * busy / elapsed);
    if (recorder_ != nullptr) recorder_->record_graph_join(queue_id_);
    sched_->reset_epoch();
    epoch_start_ns_ = sim_now_ns_;
    epoch_launch_ns_ = 0.0;
    collect_graph_errors();
}

void queue::set_design(const std::vector<perf::kernel_stats>& design_kernels) {
    if (!dev_.is_fpga())
        throw std::logic_error("queue::set_design: only meaningful on FPGAs");
    design_fmax_mhz_ =
        perf::estimate_design_resources(design_kernels, dev_).fmax_mhz;
}

void queue::set_recorder(analyze::recorder* r) {
    recorder_ = r;
    queue_id_ = r != nullptr ? r->register_queue(dev_) : -1;
}

void queue::begin_dataflow() {
    if (in_dataflow_)
        throw std::logic_error("queue: dataflow groups cannot nest");
    // Dataflow groups are their own concurrency construct; on an OOO queue
    // the graph drains first so the group starts from a settled timeline.
    join_graph();
    in_dataflow_ = true;
    if (recorder_ != nullptr) current_group_ = recorder_->begin_group();
}

void queue::abort_dataflow() noexcept {
    for (auto& t : pending_threads_)
        if (t.joinable()) t.join();
    pending_threads_.clear();
    // Deferred kernels that never started: drop them, ending the lifetime of
    // any accessor their command groups handed out.
    for (const pending_work& w : pending_work_)
        if (recorder_ != nullptr && w.cg != 0) recorder_->retire(w.cg);
    pending_work_.clear();
    pending_stats_.clear();
    worker_errors_.clear();
    in_dataflow_ = false;
    current_group_ = -1;
}

void queue::launch_dataflow_workers() {
    pending_threads_.reserve(pending_work_.size());
    for (pending_work& w : pending_work_) {
        pending_threads_.emplace_back(
            [this, index = w.index, cg = w.cg, name = std::move(w.kernel),
             exec = std::move(w.exec), actor = w.actor]() mutable {
                altis::analyze::shadow::actor_scope actor_binding(actor);
                retire_guard retire{recorder_, cg};
                worker_error we;
                we.index = index;
                we.kernel = name;
                try {
                    altis::resilience::checkpoint();
                    fault::maybe_inject(fault::op_kind::launch, name,
                                        "kernel launch failed");
                    inflight_guard inflight;
                    exec(thread_pool::global());
                    return;
                } catch (const pipe_deadlock& pd) {
                    // Watchdog: a pipe timeout means this kernel was wedged
                    // waiting for its peer; end_dataflow() merges these into
                    // one structured dataflow_error.
                    we.error = std::current_exception();
                    we.pipe_blocked = true;
                    we.detail = pd.what();
                } catch (const altis::resilience::cancelled_error&) {
                    // Cancellation reached a worker mid-kernel (deadline
                    // supervisor or signal). Flagged so end_dataflow()
                    // rethrows it as the group's root cause instead of
                    // folding it into a dataflow_error.
                    we.error = std::current_exception();
                    we.cancelled = true;
                } catch (...) {
                    we.error = std::current_exception();
                }
                std::lock_guard lock(worker_errors_mutex_);
                worker_errors_.push_back(std::move(we));
            });
    }
    pending_work_.clear();
}

void queue::deliver(exception_list errors) {
    if (errors.empty()) return;
    if (handler_) {
        handler_(std::move(errors));
        return;
    }
    std::rethrow_exception(errors[0]);
}

std::vector<event> queue::end_dataflow() {
    if (!in_dataflow_)
        throw std::logic_error("queue: end_dataflow without begin_dataflow");
    in_dataflow_ = false;
    if (altis::metrics::collecting())
        altis::metrics::instruments::queue_dataflow_groups().add();

    // Pre-launch pipe lint: with the group's submissions complete but no
    // worker started yet, the static topology can be checked before anything
    // can block on a pipe. Under --sanitize=error a group with pipe errors
    // is refused here -- the static complement of PR 2's runtime watchdog.
    if (recorder_ != nullptr && current_group_ >= 0) {
        analyze::report findings;
        analyze::lint_pipe_group(recorder_->group_nodes(current_group_),
                                 findings);
        for (const analyze::finding& f : findings.findings())
            recorder_->add_finding(f);
        if (recorder_->enforcement() == analyze::level::error &&
            findings.count_at_least(analyze::severity::error) > 0) {
            std::string msg = "sanitize: refusing to launch dataflow group:";
            for (const analyze::finding& f : findings.findings())
                msg += " [" + f.rule + "] " + f.message + ";";
            for (const pending_work& w : pending_work_)
                if (w.cg != 0) recorder_->retire(w.cg);
            pending_work_.clear();
            pending_stats_.clear();
            current_group_ = -1;
            record_error_span("sanitize: pipe topology");
            throw analyze::sanitize_error(msg);
        }
    }
    const int joined_group = current_group_;
    current_group_ = -1;

    launch_dataflow_workers();
    for (auto& t : pending_threads_) t.join();
    pending_threads_.clear();
    // The join above is a real synchronization point: close the group's
    // happens-before edges (members -> queue -> host) in the shadow store.
    if (recorder_ != nullptr && joined_group >= 0)
        recorder_->end_group(joined_group, queue_id_);
    if (!worker_errors_.empty()) {
        std::vector<worker_error> errors = std::move(worker_errors_);
        worker_errors_.clear();
        pending_stats_.clear();
        // Delivery order is submission order, independent of which worker
        // thread lost the race to report first.
        std::sort(errors.begin(), errors.end(),
                  [](const worker_error& a, const worker_error& b) {
                      return a.index < b.index;
                  });
        // Cancellation outranks every other failure in the group: the
        // supervisor pulled the plug, so peers that then saw a dead pipe are
        // collateral. Rethrow directly -- never routed through an async
        // handler, a cancelled sweep must unwind.
        for (const auto& we : errors)
            if (we.cancelled) {
                record_error_span("dataflow cancelled");
                std::rethrow_exception(we.error);
            }
        std::vector<std::string> blocked;
        std::string detail;
        for (const auto& we : errors) {
            if (!we.pipe_blocked) continue;
            blocked.push_back(we.kernel);
            if (!detail.empty()) detail += "; ";
            detail += we.kernel + ": " + we.detail;
        }
        exception_list list;
        if (!blocked.empty()) {
            std::string msg = "dataflow deadlock: kernel(s) blocked on pipes:";
            for (const auto& k : blocked) msg += " " + k;
            msg += " [" + detail + "]";
            list.push_back(std::make_exception_ptr(
                dataflow_error(msg, std::move(blocked))));
        }
        for (auto& we : errors)
            if (!we.pipe_blocked) list.push_back(std::move(we.error));
        record_error_span("dataflow error");
        deliver(std::move(list));
        return {};  // handler consumed the errors; the group produced no work
    }

    // Simulated overlap: every kernel of the group launches together; the
    // group completes with its slowest member. On FPGA all kernels share one
    // bitstream, so each is clocked at the design Fmax.
    std::vector<double> durations;
    durations.reserve(pending_stats_.size());
    if (dev_.is_fpga()) {
        const double fmax =
            design_fmax_mhz_ > 0.0
                ? design_fmax_mhz_
                : perf::estimate_design_resources(pending_stats_, dev_).fmax_mhz;
        for (const auto& s : pending_stats_)
            durations.push_back(perf::fpga_kernel_time_ns(s, dev_, fmax));
    } else {
        for (const auto& s : pending_stats_)
            durations.push_back(perf::kernel_time_ns(s, dev_));
    }

    const double launch = perf::launch_overhead_ns(rt_, dev_);
    const double submit = sim_now_ns_;
    const double start = submit + launch;
    std::vector<event> evs;
    double group_end = start;
    for (std::size_t i = 0; i < durations.size(); ++i) {
        evs.emplace_back(submit, start, start + durations[i],
                         pending_stats_[i].name);
        group_end = std::max(group_end, start + durations[i]);
    }
    non_kernel_ns_ += launch * static_cast<double>(durations.size());
    kernel_ns_ += group_end - start;  // wall-clock kernel region of the group
    sim_now_ns_ = group_end +
                  launch * std::max<double>(0.0,
                                            static_cast<double>(durations.size()) - 1.0);
    if (trace_ != nullptr && !durations.empty()) {
        // The group's wall-clock envelope sits on the main lane; each member
        // kernel gets its own lane so exporters show the overlap (Fig. 3).
        const double b = trace_base_ns_;
        trace_->record({trace::span_kind::overhead, "launch", b + submit,
                        b + start});
        std::string label = "dataflow";
        for (const auto& s : pending_stats_) label += ":" + s.name;
        trace_->record({trace::span_kind::dataflow_group, label, b + start,
                        b + group_end});
        for (std::size_t i = 0; i < durations.size(); ++i)
            trace_->record_kernel(pending_stats_[i], b + start,
                                  b + start + durations[i],
                                  static_cast<int>(i) + 1);
        if (durations.size() > 1)
            trace_->record({trace::span_kind::overhead, "launch drain",
                            b + group_end, b + sim_now_ns_});
    }
    pending_stats_.clear();
    events_.insert(events_.end(), evs.begin(), evs.end());
    return evs;
}

void queue::throw_asynchronous() {
    collect_graph_errors();  // settled-but-undelivered graph node failures
    if (async_errors_.empty()) return;
    exception_list list(std::move(async_errors_));
    async_errors_.clear();
    deliver(std::move(list));
}

void queue::wait() {
    if (in_dataflow_)
        throw std::logic_error("queue: wait() inside a dataflow group -- call "
                               "end_dataflow() first");
    altis::resilience::checkpoint();
    if (altis::metrics::collecting())
        altis::metrics::instruments::queue_waits().add();
    std::size_t graph_pending = 0;
    if (sched_ != nullptr) {
        // The L5 hint keys off how much work this join actually had in
        // front of it, so sample before joining.
        graph_pending = sched_->pending_count();
        join_graph();
    }
    const double sync = perf::sync_overhead_ns(rt_, dev_);
    if (trace_ != nullptr)
        trace_->record({trace::span_kind::sync, "wait",
                        trace_base_ns_ + sim_now_ns_,
                        trace_base_ns_ + sim_now_ns_ + sync});
    sim_now_ns_ += sync;
    non_kernel_ns_ += sync;
    epoch_start_ns_ = sim_now_ns_;
    if (recorder_ != nullptr) {
        if (sched_ != nullptr)
            recorder_->record_graph_wait_node(queue_id_, graph_pending);
        else
            recorder_->record_wait(queue_id_);
    }
    throw_asynchronous();
}

void queue::annotate_overhead_ns(double ns) {
    if (trace_ != nullptr)
        trace_->record({trace::span_kind::overhead, "overhead",
                        trace_base_ns_ + sim_now_ns_,
                        trace_base_ns_ + sim_now_ns_ + ns});
    events_.emplace_back(sim_now_ns_, sim_now_ns_, sim_now_ns_ + ns);
    sim_now_ns_ += ns;
    non_kernel_ns_ += ns;
}

void queue::annotate_transfer(double bytes) {
    try {
        fault::maybe_inject(fault::op_kind::transfer, "transfer",
                            std::to_string(static_cast<long long>(bytes)) +
                                " bytes");
    } catch (const std::exception& e) {
        record_error_span(std::string("error: ") + e.what());
        throw;
    }
    const double t = perf::transfer_ns(rt_, dev_, bytes);
    if (trace_ != nullptr) {
        trace::span s{trace::span_kind::transfer, "transfer",
                      trace_base_ns_ + sim_now_ns_,
                      trace_base_ns_ + sim_now_ns_ + t};
        s.counters.bytes = bytes;
        trace_->record(std::move(s));
    }
    events_.emplace_back(sim_now_ns_, sim_now_ns_, sim_now_ns_ + t);
    sim_now_ns_ += t;
    non_kernel_ns_ += t;
}

void queue::reset_timers() {
    // An OOO queue joins first: in-flight nodes still charge the epoch being
    // discarded, never the fresh timers (their errors stay queued).
    join_graph();
    if (trace_ != nullptr) trace_base_ns_ = trace_->last_end_ns();
    sim_now_ns_ = 0.0;
    kernel_ns_ = 0.0;
    non_kernel_ns_ = 0.0;
    epoch_start_ns_ = 0.0;
    epoch_launch_ns_ = 0.0;
    events_.clear();
}

void queue::charge_setup() {
    const double t = perf::setup_overhead_ns(rt_, dev_);
    if (trace_ != nullptr)
        trace_->record({trace::span_kind::setup, "setup",
                        trace_base_ns_ + sim_now_ns_,
                        trace_base_ns_ + sim_now_ns_ + t});
    sim_now_ns_ += t;
    non_kernel_ns_ += t;
}

}  // namespace syclite
