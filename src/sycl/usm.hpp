// Unified Shared Memory emulation. The paper's FPGA boards (BittWare 520N,
// DE10-Agilex) do not support USM: sycl::malloc_host queries return nullptr
// (Sec. 3.2.1), which forced the authors to strip USM from Altis-SYCL. We
// reproduce exactly that observable behaviour so the migration story is
// testable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "analyze/recorder.hpp"
#include "fault/inject.hpp"
#include "mem/pool.hpp"
#include "metrics/alloc_ledger.hpp"
#include "metrics/instruments.hpp"
#include "sycl/queue.hpp"

namespace syclite {

enum class usm_alloc_kind { host, device, shared };

[[nodiscard]] inline const char* to_string(usm_alloc_kind k) {
    switch (k) {
        case usm_alloc_kind::host: return "usm_host";
        case usm_alloc_kind::device: return "usm_device";
        case usm_alloc_kind::shared: return "usm_shared";
    }
    return "usm";
}

template <typename T>
[[nodiscard]] T* usm_malloc(std::size_t count, const queue& q,
                            usm_alloc_kind kind) {
    // Injection point: `alloc:usm*@N` makes the Nth USM allocation fail
    // (throwing alloc_fault -- the retryable out-of-resources analogue).
    altis::fault::maybe_inject(altis::fault::op_kind::alloc, to_string(kind),
                               std::to_string(count * sizeof(T)) + " bytes");
    if (!q.device().usm_supported) return nullptr;
    // Pool-backed: the altis::mem size-class allocator recycles the block
    // the next sweep configuration will ask for again (64-byte aligned, as
    // ::operator new(std::align_val_t{64}) was before). A zero-count request
    // still yields a unique, freeable pointer (smallest size class), so the
    // alloc/free pairing stays observable to the ledger and the sanitizer.
    T* p = static_cast<T*>(altis::mem::allocate(count * sizeof(T)));
    // The sanitizer's USM liveness tracking (ALS-H4) pairs this with
    // usm_free and the ranges kernels declare via handler::uses_usm. The
    // generation tag keeps a recycled address from aliasing two logical
    // allocations onto one fingerprint.
    if (auto* rec = altis::analyze::recorder::current())
        rec->record_usm_alloc(p, count * sizeof(T),
                              altis::mem::generation_of(p));
    if (altis::metrics::collecting()) {
        namespace mi = altis::metrics::instruments;
        const std::uint64_t bytes = count * sizeof(T);
        altis::metrics::alloc_ledger::instance().on_alloc(p, bytes);
        mi::usm_allocs().add();
        mi::usm_live_bytes().add(static_cast<std::int64_t>(bytes));
        const std::int64_t live = mi::usm_live_bytes().value();
        if (live > 0)
            mi::usm_peak_bytes().record(static_cast<std::uint64_t>(live));
    }
    return p;
}

template <typename T>
[[nodiscard]] T* malloc_host(std::size_t count, const queue& q) {
    return usm_malloc<T>(count, q, usm_alloc_kind::host);
}
template <typename T>
[[nodiscard]] T* malloc_device(std::size_t count, const queue& q) {
    return usm_malloc<T>(count, q, usm_alloc_kind::device);
}
template <typename T>
[[nodiscard]] T* malloc_shared(std::size_t count, const queue& q) {
    return usm_malloc<T>(count, q, usm_alloc_kind::shared);
}

inline void usm_free(void* ptr, const queue& /*q*/) {
    if (ptr != nullptr) {
        if (auto* rec = altis::analyze::recorder::current())
            rec->record_usm_free(ptr, altis::mem::generation_of(ptr));
        if (altis::metrics::collecting()) {
            namespace mi = altis::metrics::instruments;
            mi::usm_frees().add();
            // The ledger only knows allocations metered by the *current*
            // session, so a buffer allocated before the session started
            // frees as 0 bytes instead of driving the gauge negative.
            const std::uint64_t bytes =
                altis::metrics::alloc_ledger::instance().on_free(ptr);
            if (bytes > 0)
                mi::usm_live_bytes().sub(static_cast<std::int64_t>(bytes));
        }
    }
    // Routed by the block header to whichever path allocated it (pool size
    // class, large reuse cache, or the system fallback backend); debug
    // builds assert on mismatched or double frees.
    altis::mem::deallocate(ptr);
}

/// mem_advise advice values. The valid set is device-dependent (the DPCT
/// warning the paper discusses): advising a device that does not support the
/// hint is an error the runtime reports.
enum class mem_advice { read_mostly, preferred_location, accessed_by };

inline void mem_advise(const queue& q, const void* ptr, std::size_t /*bytes*/,
                       mem_advice advice) {
    if (ptr == nullptr)
        throw std::invalid_argument("mem_advise: null allocation");
    if (!q.device().usm_supported)
        throw std::runtime_error("mem_advise: device has no USM support");
    // GPUs accept all three hints; the CPU runtime only accepts read_mostly
    // (others are device-placement hints that have no meaning on host).
    if (q.device().kind == perf::device_kind::cpu &&
        advice != mem_advice::read_mostly)
        throw std::runtime_error(
            "mem_advise: advice not supported on this device");
}

}  // namespace syclite
