// Fault-plan specification: the grammar behind `--inject=<spec>` and
// $ALTIS_FAULT. A plan is a list of rules; each rule names an operation kind
// the runtime performs (allocation, kernel launch, transfer, pipe operation,
// device acquisition), optionally a glob over operation names, and a trigger:
// deterministic ("the Nth matching operation, M times in a row") or
// probabilistic (each matching operation fails with probability P, drawn from
// a seeded XORWOW stream so the firing pattern is reproducible).
//
//   spec    := clause (';' clause)*
//   clause  := rule | 'seed=' UINT
//   rule    := kind [':' match] trigger
//   kind    := 'alloc' | 'launch' | 'transfer' | 'pipe' | 'device'
//   trigger := '@' N ['x' M]      fire on matches N .. N+M-1 (1-based, M=1)
//            | '%' P              fire each match with probability P in [0,1]
//
// Examples:
//   alloc@3                 third allocation fails
//   launch:kmeans*@2x2      2nd and 3rd launches of kernels named kmeans*
//   pipe:map@1              first operation on pipes/kernels matching "map"
//   device:agilex@1         first acquisition of the agilex device
//   transfer%0.05;seed=7    5% of transfers, reproducibly
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rng/xorwow.hpp"

namespace altis::fault {

class spec_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Operation kinds the runtime exposes as injection points.
enum class op_kind { alloc, launch, transfer, pipe, device };

[[nodiscard]] const char* to_string(op_kind k);

/// Whether a fault of this kind is transient: the resilient harness retries
/// retryable faults (allocation pressure, transfer hiccups, a device briefly
/// unavailable) and treats the rest (launch faults, pipe deadlocks) as
/// structural failures of the configuration.
[[nodiscard]] bool retryable(op_kind k);

struct rule {
    op_kind kind = op_kind::alloc;
    std::string match;          ///< glob over operation names; empty = any
    std::uint64_t nth = 1;      ///< 1-based first firing match (counting mode)
    std::uint64_t times = 1;    ///< consecutive firings starting at nth
    double probability = -1.0;  ///< >= 0: probabilistic mode (nth/times unused)

    /// Round-trips the rule back into spec syntax (for error messages).
    [[nodiscard]] std::string text() const;
};

/// One firing of a rule against a concrete operation.
struct hit {
    op_kind kind = op_kind::alloc;
    std::string op;         ///< operation name that matched
    std::string rule_text;  ///< the rule that fired, in spec syntax
};

/// A compiled fault plan with per-rule firing state. check() is thread-safe:
/// dataflow kernels probe it from concurrent worker threads. Given the same
/// spec (and seed, for probabilistic rules) and the same sequence of checked
/// operations, the firing pattern is identical run to run.
class plan {
public:
    plan() = default;
    plan(const plan& other);
    plan& operator=(const plan& other);

    /// Compiles a spec string. Throws spec_error on malformed input.
    [[nodiscard]] static plan parse(const std::string& spec);

    [[nodiscard]] bool empty() const { return rules_.empty(); }
    [[nodiscard]] std::uint64_t seed() const { return seed_; }
    [[nodiscard]] const std::vector<rule>& rules() const { return rules_; }

    /// Records one operation of `kind` named `name` against every rule and
    /// returns the first rule that fires, if any.
    [[nodiscard]] std::optional<hit> check(op_kind kind, std::string_view name);

    /// Rewinds all counters and probabilistic streams to the parsed state.
    void reset();

private:
    struct rule_state {
        std::uint64_t matches = 0;
        rng::xorwow stream{0};
    };

    std::vector<rule> rules_;
    std::uint64_t seed_ = 0;
    std::vector<rule_state> states_;
    std::mutex mutex_;
};

/// Glob match with '*' wildcards (no character classes); empty pattern
/// matches everything.
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace altis::fault
