#include "core/option_parser.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace altis {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
    std::vector<const char*> v{"prog"};
    v.insert(v.end(), args.begin(), args.end());
    return v;
}

TEST(OptionParser, DefaultsApplyWhenUnset) {
    OptionParser p;
    add_standard_options(p);
    std::ostringstream os;
    auto args = argv_of({});
    ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data(), os));
    EXPECT_EQ(p.get_int("size"), 1);
    EXPECT_EQ(p.get_string("device"), "xeon_6128");
    EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(OptionParser, ParsesSeparateAndInlineValues) {
    OptionParser p;
    add_standard_options(p);
    std::ostringstream os;
    auto args = argv_of({"--size", "3", "--device=stratix_10", "--verbose"});
    ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data(), os));
    EXPECT_EQ(p.get_int("size"), 3);
    EXPECT_EQ(p.get_string("device"), "stratix_10");
    EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(OptionParser, UnknownOptionThrows) {
    OptionParser p;
    add_standard_options(p);
    std::ostringstream os;
    auto args = argv_of({"--bogus", "1"});
    EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data(), os),
                 OptionError);
}

TEST(OptionParser, MissingValueThrows) {
    OptionParser p;
    add_standard_options(p);
    std::ostringstream os;
    auto args = argv_of({"--size"});
    EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data(), os),
                 OptionError);
}

TEST(OptionParser, NonNumericIntThrows) {
    OptionParser p;
    add_standard_options(p);
    std::ostringstream os;
    auto args = argv_of({"--size", "big"});
    ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data(), os));
    EXPECT_THROW(p.get_int("size"), OptionError);
}

TEST(OptionParser, HelpShortCircuitsAndPrintsUsage) {
    OptionParser p;
    add_standard_options(p);
    std::ostringstream os;
    auto args = argv_of({"--help"});
    EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data(), os));
    EXPECT_NE(os.str().find("--size"), std::string::npos);
}

TEST(OptionParser, PositionalArgumentsCollected) {
    OptionParser p;
    add_standard_options(p);
    std::ostringstream os;
    auto args = argv_of({"kmeans", "--size", "2", "nw"});
    ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data(), os));
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "kmeans");
    EXPECT_EQ(p.positional()[1], "nw");
}

TEST(OptionParser, DuplicateRegistrationThrows) {
    OptionParser p;
    p.add_option("size", "1", "x");
    EXPECT_THROW(p.add_option("size", "2", "y"), OptionError);
}

TEST(OptionParser, FlagWithInlineValueThrows) {
    OptionParser p;
    p.add_flag("verbose", "x");
    std::ostringstream os;
    auto args = argv_of({"--verbose=1"});
    EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data(), os),
                 OptionError);
}

TEST(OptionParser, DoubleParsing) {
    OptionParser p;
    p.add_option("tol", "0.5", "tolerance");
    std::ostringstream os;
    auto args = argv_of({"--tol", "1.25"});
    ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data(), os));
    EXPECT_DOUBLE_EQ(p.get_double("tol"), 1.25);
}

}  // namespace
}  // namespace altis
