// FDTD2D: 2D finite-difference time-domain Maxwell solver (TMz mode,
// PolyBench-style ex/ey/hz update). Paper roles: Figure 1's kernel vs
// non-kernel execution-time decomposition on the RTX 2080 (the SYCL runtime
// pays ~12x the per-launch cost of CUDA across thousands of time-step
// launches), and the missing-cudaDeviceSynchronize mistiming of the original
// CUDA code (Sec. 3.3) that made the Fig. 2 baseline speedups collapse to
// 0.01-0.1x before the fix.
#pragma once

#include <vector>

#include "apps/common/app.hpp"
#include "apps/common/region.hpp"

namespace altis::apps::fdtd2d {

struct params {
    std::size_t nx = 256;
    std::size_t ny = 256;
    int steps = 60;

    [[nodiscard]] static params preset(int size);
    [[nodiscard]] std::size_t cells() const { return nx * ny; }
};

struct fields {
    std::vector<float> ex, ey, hz;  ///< nx x ny row-major each
};

/// Initial condition (deterministic ramp) shared by golden and kernels.
[[nodiscard]] fields initial_fields(const params& p);

/// Host reference: `steps` leapfrog updates.
void golden(const params& p, fields& f);

AppResult run(const RunConfig& cfg);

[[nodiscard]] timed_region region(Variant v, const perf::device_spec& dev,
                                  int size);

/// The original CUDA timing bug: no device synchronization before stopping
/// the timer, so the timed region sees only submission cost (Sec. 3.3).
[[nodiscard]] timed_region region_cuda_mistimed(const perf::device_spec& dev,
                                                int size);

[[nodiscard]] std::vector<perf::kernel_stats> fpga_design(
    const perf::device_spec& dev, int size);

inline constexpr const char* kFpgaImplLabel = "ND-Range";

void register_app();

}  // namespace altis::apps::fdtd2d
