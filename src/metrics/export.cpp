#include "metrics/export.hpp"

#include <ostream>

namespace altis::metrics {

namespace {

/// Prometheus HELP text escaping: backslash and newline only (quotes are
/// legal in help text).
std::string escape_help(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void write_label_set(std::ostream& out, const label_set& labels) {
    if (labels.empty()) return;
    out << '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) out << ',';
        first = false;
        out << k << "=\"" << escape_label_value(v) << '"';
    }
    out << '}';
}

/// Labels plus one extra (the histogram `le`), reusing the same escaping.
void write_label_set_with(std::ostream& out, const label_set& labels,
                          const std::string& extra_key,
                          const std::string& extra_value) {
    out << '{';
    for (const auto& [k, v] : labels)
        out << k << "=\"" << escape_label_value(v) << "\",";
    out << extra_key << "=\"" << escape_label_value(extra_value) << "\"}";
}

/// JSON string emission, mirroring chrome_export's escaping.
void write_json_string(std::ostream& out, const std::string& s) {
    out << '"';
    for (char c : s) {
        switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\t': out << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
                } else {
                    out << c;
                }
        }
    }
    out << '"';
}

/// Highest non-empty bucket index, so expositions stay compact: a latency
/// histogram peaking at ~1 us emits ~11 cumulative buckets, not 65.
int last_used_bucket(const histogram::snapshot& h) {
    int last = 0;
    for (int b = 0; b < histogram::kBuckets; ++b)
        if (h.buckets[static_cast<std::size_t>(b)] != 0) last = b;
    return last;
}

}  // namespace

std::string escape_label_value(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void write_prometheus(const snapshot& snap, std::ostream& out) {
    for (const metric_value& m : snap.metrics) {
        const instrument_info& info = m.info;
        out << "# HELP " << info.name << ' ' << escape_help(info.help) << '\n';
        const char* prom_type = "untyped";
        switch (info.kind) {
            case instrument_kind::counter: prom_type = "counter"; break;
            case instrument_kind::gauge:
            case instrument_kind::watermark: prom_type = "gauge"; break;
            case instrument_kind::histogram: prom_type = "histogram"; break;
        }
        out << "# TYPE " << info.name << ' ' << prom_type << '\n';
        if (info.kind == instrument_kind::histogram) {
            const histogram::snapshot& h = m.hist;
            std::uint64_t cumulative = 0;
            const int last = last_used_bucket(h);
            for (int b = 0; b <= last; ++b) {
                cumulative += h.buckets[static_cast<std::size_t>(b)];
                out << info.name << "_bucket";
                write_label_set_with(out, info.labels, "le",
                                     std::to_string(histogram::bucket_bound(b)));
                out << ' ' << cumulative << '\n';
            }
            out << info.name << "_bucket";
            write_label_set_with(out, info.labels, "le", "+Inf");
            out << ' ' << h.count << '\n';
            out << info.name << "_sum";
            write_label_set(out, info.labels);
            out << ' ' << h.sum << '\n';
            out << info.name << "_count";
            write_label_set(out, info.labels);
            out << ' ' << h.count << '\n';
        } else {
            out << info.name;
            write_label_set(out, info.labels);
            out << ' ' << m.value << '\n';
        }
    }
}

void write_json(const snapshot& snap,
                const std::vector<sampled_series>& series,
                std::ostream& out) {
    out << "{\n  \"session\": ";
    write_json_string(out, snap.session_name);
    out << ",\n  \"duration_ns\": " << snap.duration_ns;
    out << ",\n  \"metrics\": [\n";
    bool first = true;
    for (const metric_value& m : snap.metrics) {
        if (!first) out << ",\n";
        first = false;
        out << "    {\"name\": ";
        write_json_string(out, m.info.name);
        out << ", \"type\": ";
        write_json_string(out, to_string(m.info.kind));
        if (!m.info.labels.empty()) {
            out << ", \"labels\": {";
            bool lf = true;
            for (const auto& [k, v] : m.info.labels) {
                if (!lf) out << ", ";
                lf = false;
                write_json_string(out, k);
                out << ": ";
                write_json_string(out, v);
            }
            out << '}';
        }
        if (m.info.kind == instrument_kind::histogram) {
            out << ", \"count\": " << m.hist.count
                << ", \"sum\": " << m.hist.sum << ", \"buckets\": [";
            bool bf = true;
            const int last = last_used_bucket(m.hist);
            for (int b = 0; b <= last; ++b) {
                const std::uint64_t n =
                    m.hist.buckets[static_cast<std::size_t>(b)];
                if (n == 0) continue;
                if (!bf) out << ", ";
                bf = false;
                out << "{\"le\": " << histogram::bucket_bound(b)
                    << ", \"count\": " << n << '}';
            }
            out << ']';
        } else {
            out << ", \"value\": " << m.value;
        }
        out << ", \"help\": ";
        write_json_string(out, m.info.help);
        out << '}';
    }
    out << "\n  ],\n  \"series\": [\n";
    first = true;
    for (const sampled_series& s : series) {
        if (!first) out << ",\n";
        first = false;
        out << "    {\"name\": ";
        write_json_string(out, s.info.name);
        out << ", \"samples\": [";
        bool sf = true;
        for (const auto& [t, v] : s.samples) {
            if (!sf) out << ", ";
            sf = false;
            out << '[' << t << ", " << v << ']';
        }
        out << "]}";
    }
    out << "\n  ]\n}\n";
}

void write_chrome_counter_events(const std::vector<sampled_series>& series,
                                 std::ostream& out, bool& first) {
    if (series.empty()) return;
    // Name the counter process so Perfetto groups the wall-clock tracks
    // apart from the simulated-timeline lanes (pid 1).
    if (!first) out << ",\n";
    first = false;
    out << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, "
           "\"args\": {\"name\": \"wall-clock metrics\"}}";
    for (const sampled_series& s : series) {
        for (const auto& [t, v] : s.samples) {
            out << ",\n    {\"name\": ";
            write_json_string(out, s.info.name);
            // ts is microseconds; wall-clock ns survive as fractions.
            out << ", \"ph\": \"C\", \"ts\": " << t / 1e3
                << ", \"pid\": 2, \"args\": {\"value\": " << v << "}}";
        }
    }
}

}  // namespace altis::metrics
