#include "fault/inject.hpp"

#include <atomic>

namespace altis::fault {
namespace {

std::atomic<plan*> g_active{nullptr};

std::string describe(const hit& h, const std::string& site_detail) {
    std::string msg = std::string("injected ") + to_string(h.kind) +
                      " fault on '" + h.op + "' (rule " + h.rule_text + ")";
    if (!site_detail.empty()) msg += ": " + site_detail;
    return msg;
}

}  // namespace

injected_fault::injected_fault(const hit& h, const std::string& site_detail)
    : std::runtime_error(describe(h, site_detail)),
      kind_(h.kind),
      op_(h.op),
      rule_text_(h.rule_text) {}

plan* active() { return g_active.load(std::memory_order_acquire); }

void set_active(plan* p) { g_active.store(p, std::memory_order_release); }

void maybe_inject(op_kind kind, std::string_view name,
                  const std::string& site_detail) {
    plan* p = active();
    if (p == nullptr) return;
    const auto h = p->check(kind, name);
    if (!h) return;
    switch (kind) {
        case op_kind::alloc: throw alloc_fault(*h, site_detail);
        case op_kind::launch: throw launch_fault(*h, site_detail);
        case op_kind::transfer: throw transfer_fault(*h, site_detail);
        case op_kind::device: throw device_fault(*h, site_detail);
        case op_kind::pipe:
            // Stalls are realized by the pipe layer; firing here means a
            // caller probed the wrong entry point.
            throw injected_fault(*h, site_detail);
    }
}

bool should_stall_pipe(std::string_view name) {
    plan* p = active();
    if (p == nullptr) return false;
    return p->check(op_kind::pipe, name).has_value();
}

}  // namespace altis::fault
