// CFD: 3D Euler equations solver for compressible flow on an unstructured
// mesh (Altis Level-2, from Rodinia's euler3d). Rusanov-flux finite-volume
// update with RK3 time integration; provided in FP32 and FP64, which the
// paper evaluates separately ("CFD FP32" / "CFD FP64"). Paper roles: the
// loop-unrolling regression in SYCL (up to 3x slower, so unrolling is
// removed -- Sec. 3.3), pipes + compute-unit replication on FPGAs (4x/8x
// FP32, 2x FP64 -- Sec. 5.1/5.5), SIMD scaling capped at 2 by memory
// bandwidth (Sec. 5.2), and the FP64 penalty column of Fig. 5 (1:32 on the
// RTX 2080 vs 1:2 on A100 and 1:1 on Max 1100).
#pragma once

#include <vector>

#include "apps/common/app.hpp"
#include "apps/common/region.hpp"

namespace altis::apps::cfd {

inline constexpr int kNeighbors = 4;
inline constexpr int kVars = 5;  ///< density, momentum x/y/z, energy
inline constexpr int kRkSteps = 3;

struct params {
    std::size_t nx = 64, ny = 64;  ///< synthetic mesh dimensions
    int iterations = 30;

    [[nodiscard]] static params preset(int size);
    [[nodiscard]] std::size_t nel() const { return nx * ny; }
};

/// Synthetic unstructured mesh: grid topology stored as explicit neighbour
/// lists with outward normals; -1 marks far-field boundary faces.
struct mesh {
    std::vector<int> neighbors;     ///< nel x 4
    std::vector<float> normals_x;   ///< nel x 4
    std::vector<float> normals_y;   ///< nel x 4
};

[[nodiscard]] mesh make_mesh(const params& p);

/// Initial free-stream state, 5 variables per element (SoA by variable).
template <typename Real>
[[nodiscard]] std::vector<Real> initial_variables(const params& p);

/// Host reference: `iterations` RK3 steps; updates variables in place.
template <typename Real>
void golden(const params& p, const mesh& m, std::vector<Real>& variables);

AppResult run_fp32(const RunConfig& cfg);
AppResult run_fp64(const RunConfig& cfg);

[[nodiscard]] timed_region region(bool fp64, Variant v,
                                  const perf::device_spec& dev, int size);
[[nodiscard]] std::vector<perf::kernel_stats> fpga_design(
    bool fp64, const perf::device_spec& dev, int size);

inline constexpr const char* kFpgaImplLabelFp32 = "ND-Range & Single-Task";
inline constexpr const char* kFpgaImplLabelFp64 = "ND-Range";

void register_apps();  // registers "cfd" and "cfd_fp64"

}  // namespace altis::apps::cfd
