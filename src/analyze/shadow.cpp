#include "analyze/shadow.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <unordered_set>

#include "metrics/instruments.hpp"

namespace altis::analyze::shadow {

namespace detail {

namespace {

/// One open coalescing run: an access stream by one actor into one base
/// pointer, still growing. lo/hi are absolute byte addresses.
struct run {
    const void* base = nullptr;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    int actor = kNoActor;
    bool write = false;
    bool open = false;
};

/// Per-thread run table. Kernels typically alternate between a handful of
/// accessors, so a small direct-mapped table with round-robin eviction keeps
/// the hot path to a linear scan of 6 entries.
struct thread_runs {
    store* owner = nullptr;
    std::array<run, 6> runs{};
    unsigned next_evict = 0;
};

/// Registry of every thread's run table, so store::finalize() can close
/// runs left open by pool workers that are parked (not dead) when the
/// session ends. Reading another thread's table from finalize() is ordered
/// by construction: finalize only runs after every kernel of the session
/// completed, and kernel completion synchronizes with the host through the
/// pool's job-drain mutex (or the dataflow thread join).
std::mutex g_reg_mu;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)
std::vector<thread_runs*> g_registry;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)
std::unordered_set<store*> g_live_stores;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

struct tls_holder;
thread_local tls_holder* t_holder = nullptr;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

/// Owns the thread's run table and deregisters it when the thread dies
/// (flushing any runs that still belong to a live store).
struct tls_holder {
    thread_runs tr;
    tls_holder() {
        std::lock_guard lock(g_reg_mu);
        g_registry.push_back(&tr);
    }
    ~tls_holder();
};

thread_local tls_holder t_storage;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

}  // namespace

}  // namespace detail

// ---- store ----------------------------------------------------------------

store::store() {
    actor_clock_.emplace_back();  // actor 0: the host
    actor_clock_[0].tick(kHostActor);
    clock_id_.push_back(-1);
    actor_name_.emplace_back("host");
    {
        std::lock_guard lock(detail::g_reg_mu);
        detail::g_live_stores.insert(this);
    }
}

store::~store() {
    finalize();
    std::lock_guard lock(detail::g_reg_mu);
    detail::g_live_stores.erase(this);
}

int store::new_actor() {
    std::lock_guard lock(mu_);
    const int actor = static_cast<int>(actor_clock_.size());
    actor_clock_.emplace_back();
    clock_id_.push_back(-1);
    actor_name_.emplace_back("kernel #" + std::to_string(actor));
    return actor;
}

void store::name_actor(int actor, const std::string& kernel) {
    std::lock_guard lock(mu_);
    if (actor > 0 && actor < static_cast<int>(actor_name_.size()))
        actor_name_[actor] = kernel;
}

std::uint32_t store::intern_locked(int actor) {
    if (clock_id_[actor] >= 0) return static_cast<std::uint32_t>(clock_id_[actor]);
    clocks_.push_back(actor_clock_[actor]);
    clock_id_[actor] = static_cast<int>(clocks_.size()) - 1;
    return static_cast<std::uint32_t>(clock_id_[actor]);
}

void store::push_interval_locked(std::uint64_t lo, std::uint64_t hi, int actor,
                                 bool write) {
    if (lo >= hi || actor < 0 ||
        actor >= static_cast<int>(actor_clock_.size()))
        return;
    intervals_.push_back({lo, hi, actor, write, intern_locked(actor)});
    detail::g_intervals_flushed.fetch_add(1, std::memory_order_relaxed);
    if (altis::metrics::collecting())
        altis::metrics::instruments::sanitize_shadow_intervals().add();
}

void store::flush_run(const void* /*base*/, std::uint64_t lo, std::uint64_t hi,
                      int actor, bool write) {
    std::lock_guard lock(mu_);
    push_interval_locked(lo, hi, actor, write);
}

namespace detail {

namespace {

/// Closes every open run of `tr` that belongs to `s`. Caller guarantees the
/// runs are quiescent (same thread, or the session-teardown ordering above).
void flush_table(thread_runs& tr, store* s) {
    if (tr.owner != s) return;
    for (run& r : tr.runs) {
        if (!r.open) continue;
        s->flush_run(r.base, r.lo, r.hi, r.actor, r.write);
        r.open = false;
    }
}

/// Flushes the calling thread's runs for `s` -- the prelude to every clock
/// event, preserving the "runs flush under the clock they ran under"
/// invariant (header comment).
void flush_calling_thread(store* s) { flush_table(t_storage.tr, s); }

tls_holder::~tls_holder() {  // NOLINT(modernize-use-equals-default)
    std::lock_guard lock(g_reg_mu);
    if (tr.owner != nullptr && g_live_stores.count(tr.owner) > 0)
        flush_table(tr, tr.owner);
    g_registry.erase(std::remove(g_registry.begin(), g_registry.end(), &tr),
                     g_registry.end());
}

}  // namespace

void record(store* s, const void* base, std::size_t off, std::size_t len,
            bool write) {
    thread_runs& tr = t_storage.tr;
    if (tr.owner != s) {
        // First touch under a (possibly new) session: settle any runs still
        // owned by a previous store, then adopt the current one.
        std::lock_guard lock(g_reg_mu);
        if (tr.owner != nullptr && g_live_stores.count(tr.owner) > 0)
            flush_table(tr, tr.owner);
        for (run& r : tr.runs) r.open = false;
        tr.owner = s;
    }
    const int actor = tl_actor;
    const auto b = reinterpret_cast<std::uint64_t>(base);
    const std::uint64_t lo = b + off;
    const std::uint64_t hi = lo + len;
    for (run& r : tr.runs) {
        if (!r.open || r.base != base || r.write != write || r.actor != actor)
            continue;
        if (lo >= r.lo && hi <= r.hi) return;  // already covered
        if (lo <= r.hi && hi >= r.lo) {        // overlaps or extends
            r.lo = std::min(r.lo, lo);
            r.hi = std::max(r.hi, hi);
            return;
        }
        // Disjoint from the existing run: close it, restart in place.
        s->flush_run(r.base, r.lo, r.hi, r.actor, r.write);
        r.lo = lo;
        r.hi = hi;
        return;
    }
    for (run& r : tr.runs) {
        if (r.open) continue;
        r = {base, lo, hi, actor, write, true};
        return;
    }
    run& victim = tr.runs[tr.next_evict++ % tr.runs.size()];
    s->flush_run(victim.base, victim.lo, victim.hi, victim.actor, victim.write);
    victim = {base, lo, hi, actor, write, true};
}

void set_current_store(store* s) {
    g_store.store(s, std::memory_order_release);
}

}  // namespace detail

void store::on_submit(int actor, int queue, bool dataflow) {
    detail::flush_calling_thread(this);
    std::lock_guard lock(mu_);
    if (actor <= 0 || actor >= static_cast<int>(actor_clock_.size())) return;
    vector_clock& k = actor_clock_[actor];
    k.join(actor_clock_[kHostActor]);  // host clock *before* its tick
    k.join(queue_clock_[queue]);
    k.tick(static_cast<std::size_t>(actor));
    dirty_locked(actor);
    actor_clock_[kHostActor].tick(kHostActor);
    dirty_locked(kHostActor);
    // In-order queues: a sequential submission chains the queue clock
    // through the kernel, so the next submission (and wait()) sees it.
    if (!dataflow) queue_clock_[queue] = k;
}

void store::on_submit_graph(int actor, const std::vector<int>& dep_actors) {
    detail::flush_calling_thread(this);
    std::lock_guard lock(mu_);
    if (actor <= 0 || actor >= static_cast<int>(actor_clock_.size())) return;
    vector_clock& k = actor_clock_[actor];
    k.join(actor_clock_[kHostActor]);
    // The scheduler only starts this node after every dependency completed,
    // so everything a dependency did -- including what it has not flushed
    // yet, stamped with a clock no newer than read here -- happens-before
    // this kernel. Joining the dependency's current clock is therefore a
    // sound (possibly under-approximating, never over-approximating) edge.
    for (const int d : dep_actors)
        if (d > 0 && d < static_cast<int>(actor_clock_.size()))
            k.join(actor_clock_[d]);
    k.tick(static_cast<std::size_t>(actor));
    dirty_locked(actor);
    actor_clock_[kHostActor].tick(kHostActor);
    dirty_locked(kHostActor);
}

void store::on_transfer_graph(int actor, const std::vector<int>& dep_actors,
                              const void* base, std::size_t bytes,
                              bool write) {
    detail::flush_calling_thread(this);
    std::lock_guard lock(mu_);
    if (actor <= 0 || actor >= static_cast<int>(actor_clock_.size())) return;
    vector_clock& k = actor_clock_[actor];
    k.join(actor_clock_[kHostActor]);
    for (const int d : dep_actors)
        if (d > 0 && d < static_cast<int>(actor_clock_.size()))
            k.join(actor_clock_[d]);
    k.tick(static_cast<std::size_t>(actor));
    dirty_locked(actor);
    actor_clock_[kHostActor].tick(kHostActor);
    dirty_locked(kHostActor);
    const auto lo = reinterpret_cast<std::uint64_t>(base);
    push_interval_locked(lo, lo + bytes, actor, write);
}

void store::on_host_join(const std::vector<int>& actors) {
    detail::flush_calling_thread(this);
    std::lock_guard lock(mu_);
    for (const int a : actors)
        if (a > 0 && a < static_cast<int>(actor_clock_.size()))
            actor_clock_[kHostActor].join(actor_clock_[a]);
    actor_clock_[kHostActor].tick(kHostActor);
    dirty_locked(kHostActor);
}

void store::on_group_end(int queue, const std::vector<int>& members) {
    detail::flush_calling_thread(this);
    std::lock_guard lock(mu_);
    vector_clock& q = queue_clock_[queue];
    for (const int m : members)
        if (m > 0 && m < static_cast<int>(actor_clock_.size()))
            q.join(actor_clock_[m]);
    // end_dataflow() joins the worker threads, so -- unlike a bare kernel
    // submission, which only synchronizes at wait() -- the host really is
    // ordered after every member here.
    actor_clock_[kHostActor].join(q);
    actor_clock_[kHostActor].tick(kHostActor);
    dirty_locked(kHostActor);
}

void store::on_wait(int queue) {
    detail::flush_calling_thread(this);
    std::lock_guard lock(mu_);
    actor_clock_[kHostActor].join(queue_clock_[queue]);
    actor_clock_[kHostActor].tick(kHostActor);
    dirty_locked(kHostActor);
}

void store::on_transfer(const void* base, std::size_t bytes, bool write) {
    detail::flush_calling_thread(this);
    std::lock_guard lock(mu_);
    const auto lo = reinterpret_cast<std::uint64_t>(base);
    push_interval_locked(lo, lo + bytes, kHostActor, write);
}

void store::register_region(const void* base, std::size_t bytes) {
    if (bytes == 0) return;
    std::lock_guard lock(mu_);
    const auto lo = reinterpret_cast<std::uint64_t>(base);
    for (region& r : regions_) {
        if (r.lo != lo) continue;
        r.hi = std::max(r.hi, lo + bytes);
        return;
    }
    regions_.push_back({lo, lo + bytes, static_cast<int>(regions_.size())});
}

void store::finalize() {
    std::lock_guard reg_lock(detail::g_reg_mu);
    if (detail::g_live_stores.count(this) == 0) return;
    for (detail::thread_runs* tr : detail::g_registry)
        detail::flush_table(*tr, this);
    std::lock_guard lock(mu_);
    finalized_ = true;
}

// ---- pipe hooks -----------------------------------------------------------

void on_pipe_publish(const void* pipe, const char* name, std::uint64_t from,
                     std::uint64_t to) {
    store* s = detail::g_store.load(std::memory_order_acquire);
    if (s == nullptr || to <= from) return;
    detail::flush_calling_thread(s);
    const int actor = detail::tl_actor;
    std::lock_guard lock(s->mu_);
    if (actor < 0 || actor >= static_cast<int>(s->actor_clock_.size())) return;
    pipe_log& log = s->pipes_[pipe];
    if (log.name.empty()) log.name = name;
    log.producer = actor;
    // Snapshot first (covers everything produced so far), then tick so the
    // producer's next accesses are distinguishable from this publication.
    log.pubs.push_back({to, s->intern_locked(actor)});
    s->actor_clock_[actor].tick(static_cast<std::size_t>(actor));
    s->dirty_locked(actor);
}

void on_pipe_consume(const void* pipe, const char* name, std::uint64_t from,
                     std::uint64_t to) {
    store* s = detail::g_store.load(std::memory_order_acquire);
    if (s == nullptr || to <= from) return;
    detail::flush_calling_thread(s);
    const int actor = detail::tl_actor;
    std::lock_guard lock(s->mu_);
    if (actor < 0 || actor >= static_cast<int>(s->actor_clock_.size())) return;
    pipe_log& log = s->pipes_[pipe];
    if (log.name.empty()) log.name = name;
    log.consumer = actor;
    log.recvs.push_back({from, to});
    // Join the earliest publication covering the last consumed item:
    // producer clocks are monotone, so that one snapshot dominates every
    // earlier publication this receive also drew from.
    const pipe_pub* covering = nullptr;
    for (const pipe_pub& p : log.pubs) {
        if (p.upto >= to) {
            covering = &p;
            break;
        }
    }
    if (covering == nullptr && !log.pubs.empty()) covering = &log.pubs.back();
    if (covering != nullptr) {
        s->actor_clock_[actor].join(s->clocks_[covering->clock]);
        // Fully consumed publications can never be the covering snapshot of
        // a later receive; drop them to bound memory on long streams.
        while (!log.pubs.empty() && log.pubs.front().upto <= to)
            log.pubs.pop_front();
    }
    s->actor_clock_[actor].tick(static_cast<std::size_t>(actor));
    s->dirty_locked(actor);
}

// ---- analysis-side --------------------------------------------------------

std::vector<interval> store::merged_intervals() const {
    std::lock_guard lock(mu_);
    std::vector<interval> out = intervals_;
    // Pool workers split one kernel's sweep into per-thread runs at
    // nondeterministic boundaries, but all pieces carry the same (actor,
    // write, clock) stamp: merging adjacent/overlapping pieces per stamp
    // restores a canonical, run-stable interval set.
    std::sort(out.begin(), out.end(), [](const interval& a, const interval& b) {
        if (a.actor != b.actor) return a.actor < b.actor;
        if (a.write != b.write) return a.write < b.write;
        if (a.clock != b.clock) return a.clock < b.clock;
        if (a.lo != b.lo) return a.lo < b.lo;
        return a.hi < b.hi;
    });
    std::vector<interval> merged;
    for (const interval& iv : out) {
        if (!merged.empty()) {
            interval& last = merged.back();
            if (last.actor == iv.actor && last.write == iv.write &&
                last.clock == iv.clock && iv.lo <= last.hi) {
                last.hi = std::max(last.hi, iv.hi);
                continue;
            }
        }
        merged.push_back(iv);
    }
    std::sort(merged.begin(), merged.end(),
              [](const interval& a, const interval& b) {
                  if (a.lo != b.lo) return a.lo < b.lo;
                  if (a.hi != b.hi) return a.hi < b.hi;
                  if (a.actor != b.actor) return a.actor < b.actor;
                  return a.write < b.write;
              });
    return merged;
}

bool store::hb(const interval& a, const interval& b) const {
    std::lock_guard lock(mu_);
    // a's local time at the access is its own component in its snapshot;
    // b has seen it iff b's snapshot carries at least that component.
    const std::uint64_t t = clocks_[a.clock].get(static_cast<std::size_t>(a.actor));
    return clocks_[b.clock].get(static_cast<std::size_t>(a.actor)) >= t;
}

const std::string& store::actor_name(int actor) const {
    std::lock_guard lock(mu_);
    static const std::string unknown = "?";
    if (actor < 0 || actor >= static_cast<int>(actor_name_.size()))
        return unknown;
    return actor_name_[actor];
}

std::string store::label_range(std::uint64_t lo, std::uint64_t hi) const {
    std::lock_guard lock(mu_);
    for (const region& r : regions_) {
        if (lo < r.lo || lo >= r.hi) continue;
        return "mem#" + std::to_string(r.ordinal) + "[" +
               std::to_string(lo - r.lo) + ".." + std::to_string(hi - r.lo) +
               ")";
    }
    std::ostringstream os;  // wild range: raw (run-dependent) fallback
    os << "0x" << std::hex << lo << "+" << std::dec << (hi - lo) << "B";
    return os.str();
}

std::size_t store::interval_count() const {
    std::lock_guard lock(mu_);
    return intervals_.size();
}

}  // namespace altis::analyze::shadow
