#include "perf/resource_model.hpp"

#include <gtest/gtest.h>

namespace altis::perf {
namespace {

kernel_stats base_kernel() {
    kernel_stats k;
    k.name = "k";
    k.form = kernel_form::nd_range;
    k.global_items = 1 << 20;
    k.wg_size = 64;
    k.static_fp32_ops = 20;
    k.static_int_ops = 30;
    k.static_branches = 4;
    k.accessor_args = 3;
    return k;
}

TEST(ResourceModel, DspCountScalesWithDatapathWidth) {
    const auto& dev = device_by_name("stratix_10");
    kernel_stats k = base_kernel();
    const double d1 = estimate_kernel_resources(k, dev).dsps;
    k.simd = 4;
    const double d4 = estimate_kernel_resources(k, dev).dsps;
    EXPECT_DOUBLE_EQ(d4, d1 * 4.0);
    k.simd = 1;
    k.unroll = 8;
    EXPECT_DOUBLE_EQ(estimate_kernel_resources(k, dev).dsps, d1 * 8.0);
}

TEST(ResourceModel, Fp64CostsFourDspsPerOp) {
    const auto& dev = device_by_name("stratix_10");
    kernel_stats k = base_kernel();
    k.static_fp32_ops = 0;
    k.static_fp64_ops = 10;
    EXPECT_DOUBLE_EQ(estimate_kernel_resources(k, dev).dsps, 40.0);
}

TEST(ResourceModel, ReplicationMultipliesEverything) {
    const auto& dev = device_by_name("agilex");
    kernel_stats k = base_kernel();
    const resource_usage u1 = estimate_kernel_resources(k, dev);
    k.replication = 4;
    const resource_usage u4 = estimate_kernel_resources(k, dev);
    EXPECT_DOUBLE_EQ(u4.alms, u1.alms * 4.0);
    EXPECT_DOUBLE_EQ(u4.dsps, u1.dsps * 4.0);
}

// Sec. 4: dynamically-sized DPCT accessors force 16 KiB per shared variable;
// PF Float's single shared double occupied 16 KiB instead of 8 bytes.
TEST(ResourceModel, DynamicLocalSizeReservesSixteenKiB) {
    const auto& dev = device_by_name("stratix_10");
    kernel_stats k = base_kernel();
    k.pattern = local_pattern::scalar;
    k.local_arrays = 1;
    k.local_mem_bytes = 8.0;  // one double
    k.dynamic_local_size = true;
    const double dynamic_brams = estimate_kernel_resources(k, dev).brams;
    k.dynamic_local_size = false;
    const double exact_brams = estimate_kernel_resources(k, dev).brams;
    // 16 KiB spans ceil(16384/2560) = 7 M20K blocks; 8 bytes needs one.
    EXPECT_DOUBLE_EQ(dynamic_brams, 7.0);
    EXPECT_DOUBLE_EQ(exact_brams, 1.0);
}

// Sec. 4: SRAD passed eleven accessor *objects*, exceeding the Stratix 10;
// passing pointers instead made the design fit.
TEST(ResourceModel, AccessorObjectsVsPointersDecidesFit) {
    const auto& dev = device_by_name("stratix_10");
    kernel_stats k = base_kernel();
    k.accessor_args = 11;
    k.pass_accessor_objects = true;
    k.static_fp32_ops = 60;
    k.static_int_ops = 120;
    k.static_branches = 30;
    std::vector<kernel_stats> design{k, k};  // two such kernels
    const resource_usage obj = estimate_design_resources(design, dev);
    EXPECT_FALSE(obj.fits);
    EXPECT_FALSE(obj.failure_reason.empty());

    for (auto& kk : design) kk.pass_accessor_objects = false;
    const resource_usage ptr = estimate_design_resources(design, dev);
    EXPECT_TRUE(ptr.fits);
    EXPECT_LT(ptr.alms, obj.alms);
}

TEST(ResourceModel, ControlComplexityDegradesFmax) {
    const auto& dev = device_by_name("stratix_10");
    kernel_stats simple = base_kernel();
    simple.control_complexity = 1;
    kernel_stats branchy = base_kernel();
    branchy.control_complexity = 9;  // ParticleFilter-like
    const double f_simple = estimate_kernel_resources(simple, dev).fmax_mhz;
    const double f_branchy = estimate_kernel_resources(branchy, dev).fmax_mhz;
    EXPECT_GT(f_simple, 300.0);
    EXPECT_LT(f_branchy, 130.0);  // the paper's PF designs run at ~105 MHz
}

TEST(ResourceModel, AgilexClocksHigherThanStratix10) {
    // Table 3: every design achieves a higher frequency on Agilex.
    kernel_stats k = base_kernel();
    k.control_complexity = 2;
    const double s10 =
        estimate_kernel_resources(k, device_by_name("stratix_10")).fmax_mhz;
    const double agx =
        estimate_kernel_resources(k, device_by_name("agilex")).fmax_mhz;
    EXPECT_GT(agx, s10);
}

TEST(ResourceModel, TimingViolations) {
    const auto& dev = device_by_name("stratix_10");
    kernel_stats k = base_kernel();
    k.pattern = local_pattern::congested;
    k.local_arrays = 2;
    k.local_mem_bytes = 8192;
    k.local_accesses = 10;

    k.unroll = 1;
    k.wg_size = 64;
    EXPECT_TRUE(estimate_kernel_resources(k, dev).timing_clean);

    k.unroll = 4;  // unrolling arbiter-managed local memory
    EXPECT_FALSE(estimate_kernel_resources(k, dev).timing_clean);

    k.unroll = 1;
    k.wg_size = 256;  // large work-group on congested memory (Sec. 4)
    EXPECT_FALSE(estimate_kernel_resources(k, dev).timing_clean);

    kernel_stats wide = base_kernel();
    wide.pattern = local_pattern::banked;
    wide.local_arrays = 1;
    wide.local_mem_bytes = 4096;
    wide.unroll = 40;  // beyond the banking limit (LavaMD past 30x)
    EXPECT_FALSE(estimate_kernel_resources(wide, dev).timing_clean);
}

TEST(ResourceModel, DesignAggregatesShellAndKernels) {
    const auto& dev = device_by_name("stratix_10");
    kernel_stats k = base_kernel();
    const resource_usage kernel_only = estimate_kernel_resources(k, dev);
    const resource_usage design = estimate_design_resources({k}, dev);
    EXPECT_NEAR(design.alms,
                kernel_only.alms +
                    calibration::kShellAlmFrac * static_cast<double>(dev.total_alms),
                1.0);
    EXPECT_NEAR(design.brams,
                kernel_only.brams + calibration::kShellBramFrac *
                                        static_cast<double>(dev.total_brams),
                1.0);
}

TEST(ResourceModel, DesignFmaxIsMinOverKernels) {
    const auto& dev = device_by_name("agilex");
    kernel_stats fast = base_kernel();
    fast.control_complexity = 1;
    kernel_stats slow = base_kernel();
    slow.control_complexity = 8;
    const resource_usage design = estimate_design_resources({fast, slow}, dev);
    EXPECT_DOUBLE_EQ(design.fmax_mhz,
                     estimate_kernel_resources(slow, dev).fmax_mhz);
}

TEST(ResourceModel, UtilizationFractionsConsistent) {
    const auto& dev = device_by_name("agilex");
    const resource_usage u = estimate_design_resources({base_kernel()}, dev);
    EXPECT_NEAR(u.alm_frac, u.alms / static_cast<double>(dev.total_alms), 1e-12);
    EXPECT_NEAR(u.bram_frac, u.brams / static_cast<double>(dev.total_brams), 1e-12);
    EXPECT_NEAR(u.dsp_frac, u.dsps / static_cast<double>(dev.total_dsps), 1e-12);
}

}  // namespace
}  // namespace altis::perf
