// Migration report: replays the paper's Sec. 3.2 DPCT experience over the
// Altis construct manifests -- per-application warnings, auto-migration
// fraction, which applications run after addressing only the inline
// warnings (~70%), and which need the Sec. 3.2.2 manual fixes.
//
// Build & run:   ./examples/migration_report
#include <iostream>

#include "dpct/dpct.hpp"

int main() {
    const auto report = altis::dpct::migrate_suite(altis::dpct::altis_manifests());
    altis::dpct::render(report, std::cout);
    return 0;
}
