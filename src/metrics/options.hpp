// Shared CLI/env wiring for wall-clock metrics, following the trace/fault
// options pattern so every harness binary behaves identically:
//
//   --metrics              collect runtime telemetry and print a summary of
//                          the non-zero metrics after the run; defaults on
//                          when $ALTIS_METRICS is set
//   --metrics-prom <file>  write the Prometheus text exposition (implies
//                          --metrics)
//   --metrics-json <file>  write the structured JSON snapshot + sampler
//                          series (implies --metrics)
//
// The sampler period comes from $ALTIS_METRICS_HZ (default 100 Hz).
#pragma once

#include <iosfwd>
#include <string>

#include "core/option_parser.hpp"
#include "metrics/session.hpp"

namespace altis::metrics {

void add_metrics_options(OptionParser& opts);

struct options {
    bool metrics = false;
    std::string prom_path;  ///< empty: no Prometheus file
    std::string json_path;  ///< empty: no JSON file

    [[nodiscard]] bool enabled() const {
        return metrics || !prom_path.empty() || !json_path.empty();
    }
    [[nodiscard]] static options from(const OptionParser& opts);
};

/// Stops the session, writes the requested artifacts and prints the summary
/// (for bare --metrics). Returns false (after a message on `err`) when a
/// file could not be written.
bool finish_metrics(session& s, const options& opt, std::ostream& out,
                    std::ostream& err);

}  // namespace altis::metrics
