// Suite runner CLI: the Altis-style entry point. Runs one application (or
// every registered application) functionally on a simulated device, verifies
// the results against the host reference, and reports timing statistics.
//
//   ./examples/altis_run --help
//   ./examples/altis_run kmeans --device stratix_10 --variant fpga_opt
//   ./examples/altis_run all --size 1 --device rtx_2080 --passes 3 --csv
//   ./examples/altis_run kmeans --trace out.json --profile
//   ./examples/altis_run all --inject 'alloc@2;seed=7'   # fault drill
//   ./examples/altis_run all --sanitize error             # hazard/perf lint
//   ./examples/altis_run all --journal run.jsonl          # crash-safe sweep
//   ./examples/altis_run all --resume run.jsonl           # continue after kill
#include <algorithm>
#include <iostream>
#include <optional>
#include <sstream>

#include "analyze/options.hpp"
#include "analyze/recorder.hpp"
#include "apps/common/app.hpp"
#include "core/option_parser.hpp"
#include "core/registry.hpp"
#include "core/result_database.hpp"
#include "fault/inject.hpp"
#include "fault/options.hpp"
#include "metrics/options.hpp"
#include "metrics/session.hpp"
#include "resilience/cancel.hpp"
#include "resilience/options.hpp"
#include "resilience/supervisor.hpp"
#include "trace/options.hpp"

namespace {

/// Snapshot of a per-attempt database for the checkpoint journal; values
/// round-trip exactly (to_chars), so a replayed merge is byte-identical.
std::vector<altis::resilience::journal_series> capture_series(
    const altis::ResultDatabase& db) {
    std::vector<altis::resilience::journal_series> out;
    for (const auto& r : db.results())
        out.push_back({r.test, r.atts, r.unit, r.values});
    return out;
}

void restore_series(const std::vector<altis::resilience::journal_series>& in,
                    altis::ResultDatabase& db) {
    for (const auto& s : in)
        for (double v : s.values) db.add_result(s.test, s.atts, s.unit, v);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace altis;

    OptionParser opts;
    add_standard_options(opts);
    opts.add_option("variant", "sycl_opt",
                    "cuda | sycl_base | sycl_opt | fpga_base | fpga_opt");
    opts.add_flag("csv", "dump raw trial values as CSV");
    opts.add_flag("json", "dump results as JSON");
    opts.add_flag("list", "list registered applications and exit");
    trace::add_trace_options(opts);
    fault::add_fault_options(opts);
    analyze::add_sanitize_options(opts);
    metrics::add_metrics_options(opts);
    resilience::add_resilience_options(opts);

    // Every value-carrying option is range-checked here: a malformed or
    // out-of-range value is one clear line on stderr and exit code 2.
    analyze::options aopts;
    fault::options fopts;
    trace::options topts;
    metrics::options mopts;
    resilience::options ropts;
    try {
        if (!opts.parse(argc, argv, std::cout)) return 0;
        aopts = analyze::options::from(opts);
        fopts = fault::options::from(opts);
        topts = trace::options::from(opts);
        mopts = metrics::options::from(opts);
        ropts = resilience::options::from(opts);
    } catch (const OptionError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }

    fault::plan fplan;
    try {
        fplan = fopts.make_plan();
    } catch (const fault::spec_error& e) {
        std::cerr << "error: bad --inject spec: " << e.what() << "\n";
        return 2;
    }
    std::optional<fault::scope> fscope;
    if (fopts.enabled()) fscope.emplace(fplan);

    // SIGINT/SIGTERM turn into cooperative cancellation: the running config
    // unwinds at its next checkpoint, the loop below breaks, and the partial
    // report plus the (already fsync'd) journal survive the exit.
    resilience::install_signal_cancellation();
    std::optional<resilience::supervisor> supervisor;
    if (ropts.enabled()) {
        try {
            supervisor.emplace(ropts, "altis_run");
        } catch (const std::runtime_error& e) {
            std::cerr << "error: " << e.what() << "\n";
            return 2;
        }
    }
    resilience::supervisor* sup = supervisor ? &*supervisor : nullptr;

    apps::register_all_apps();
    auto& registry = Registry::instance();

    if (opts.get_flag("list")) {
        for (const auto& app : registry.apps()) {
            std::cout << app.name << " -- " << app.description << " [";
            for (std::size_t i = 0; i < app.variants.size(); ++i)
                std::cout << (i ? " " : "") << to_string(app.variants[i]);
            std::cout << "]\n";
        }
        return 0;
    }

    RunConfig cfg;
    cfg.size = static_cast<int>(opts.get_int("size"));
    cfg.device = opts.get_string("device");
    cfg.passes = static_cast<int>(opts.get_int("passes"));
    const std::string vname = opts.get_string("variant");
    bool found = false;
    for (const Variant v : {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
                            Variant::fpga_base, Variant::fpga_opt}) {
        if (vname == to_string(v)) {
            cfg.variant = v;
            found = true;
        }
    }
    if (!found) {
        std::cerr << "error: unknown variant " << vname << "\n";
        return 2;
    }

    std::vector<std::string> targets = opts.positional();
    if (targets.empty()) {
        std::cerr << "usage: altis_run <app|all> [options]; see --help or "
                     "--list\n";
        return 2;
    }
    if (targets.size() == 1 && targets[0] == "all") {
        targets.clear();
        for (const auto& app : registry.apps()) targets.push_back(app.name);
    }

    // With --trace/--profile active, every queue the apps construct emits
    // spans into this session; each app run becomes a top-level region span.
    trace::session tsession("altis_run");
    trace::session::scope tscope(tsession);

    // With --metrics active, the execution engine's wall-clock telemetry
    // (queue/pool/pipe/allocator instruments) collects for the whole run.
    std::optional<metrics::session> msession;
    if (mopts.enabled()) msession.emplace("altis_run");

    // With --sanitize active, every queue the apps construct feeds the
    // command graph of this recorder; the passes run after the loop.
    std::optional<analyze::recorder> sanitizer;
    std::optional<analyze::recorder::scope> sanitize_scope;
    if (aopts.enabled()) {
        sanitizer.emplace(aopts.lv);
        sanitize_scope.emplace(*sanitizer);
    }

    // Outcomes are recorded only when they carry information (injection
    // active, or an app actually failed/retried); a clean un-injected run
    // keeps the historical report byte-for-byte.
    ResultDatabase db;
    int failures = 0;
    bool interrupted = false;
    for (const auto& name : targets) {
        const AppInfo* app = registry.find(name);
        if (app == nullptr) {
            std::cerr << "error: unknown application '" << name
                      << "' (try --list)\n";
            return 2;
        }
        const std::string label = name + "/" + to_string(cfg.variant) + "/" +
                                  cfg.device + "/size" +
                                  std::to_string(cfg.size);
        const bool supported =
            std::find(app->variants.begin(), app->variants.end(),
                      cfg.variant) != app->variants.end() &&
            apps::variant_allowed(cfg.variant,
                                  perf::device_by_name(cfg.device));
        if (!supported) {
            // Deterministic skip: recomputed identically on resume, so it
            // bypasses journal and breaker entirely.
            std::cout << name << ": skipped (variant/device unsupported)\n";
            if (fopts.enabled()) {
                fault::outcome oc;
                oc.st = fault::outcome::status::skipped;
                oc.error = "variant/device unsupported";
                fault::record_outcome(db, label, oc);
            }
            continue;
        }
        // Each attempt runs into its own database so a failed partial pass
        // never leaks half a trial's metrics into the report; only the
        // successful attempt is merged. Everything the config prints is also
        // captured into the journal entry so a resumed run replays the exact
        // same stdout.
        ResultDatabase attempt_db;
        fault::outcome oc;
        std::string log;
        auto emit = [&](const std::string& text) {
            std::cout << text;
            log += text;
        };
        auto run_body = [&]() {
            tsession.begin_region(label, tsession.last_end_ns());
            try {
                oc = fault::run_guarded(
                    [&] {
                        attempt_db.clear();
                        app->run(cfg, attempt_db);
                    },
                    fopts.policy, fopts.fail_fast,
                    [&](int attempt, const std::string& error,
                        double backoff_ms) {
                        std::ostringstream os;
                        os << name << ": attempt " << attempt << " failed ("
                           << error << "), retrying after " << backoff_ms
                           << " ms\n";
                        emit(os.str());
                    });
            } catch (...) {
                tsession.end_region(tsession.last_end_ns());
                throw;
            }
            tsession.end_region(tsession.last_end_ns());
            if (oc.succeeded()) {
                std::ostringstream os;
                os << name << ": ok (" << cfg.passes << " passes, verified";
                if (oc.retried())
                    os << ", " << oc.attempts << " attempts, " << oc.backoff_ms
                       << " ms backoff";
                os << ")\n";
                emit(os.str());
            } else {
                std::ostringstream os;
                os << name << ": "
                   << (oc.st == fault::outcome::status::failed ? "FAILED"
                                                               : oc.label())
                   << " -- " << oc.error << "\n";
                emit(os.str());
            }
        };
        try {
            if (sup != nullptr) {
                const std::string bkey = name + "/" + to_string(cfg.variant) +
                                         "/" + cfg.device;
                const auto res = sup->run(label, bkey, [&] {
                    run_body();
                    resilience::journal_entry entry;
                    entry.config = label;
                    entry.status = oc.label();
                    entry.attempts = oc.attempts;
                    entry.backoff_ms = oc.backoff_ms;
                    entry.error = oc.error;
                    entry.log = log;
                    if (oc.succeeded())
                        entry.results = capture_series(attempt_db);
                    return entry;
                });
                if (res.replayed || res.entry.status == "quarantined") {
                    oc.st = fault::status_from_label(res.entry.status);
                    oc.attempts = res.entry.attempts;
                    oc.backoff_ms = res.entry.backoff_ms;
                    oc.error = res.entry.error;
                    attempt_db.clear();
                    restore_series(res.entry.results, attempt_db);
                    // Replays print their captured stdout verbatim;
                    // quarantined entries never ran, so their one line is
                    // composed the same way live and on replay.
                    if (res.entry.status == "quarantined")
                        std::cout << name << ": quarantined -- "
                                  << res.entry.error << "\n";
                    else
                        std::cout << res.entry.log;
                }
            } else {
                run_body();
            }
        } catch (const std::exception& e) {
            std::cerr << name << ": FAILED -- " << e.what()
                      << "\naborting (--fail-fast)\n";
            return 1;
        }

        if (oc.succeeded())
            db.merge(attempt_db);
        else
            ++failures;
        if (fopts.enabled() || sup != nullptr || !oc.succeeded() ||
            oc.retried())
            fault::record_outcome(db, label, oc);
        if (resilience::interrupted()) {
            interrupted = true;
            break;
        }
    }

    if (interrupted)
        std::cout << "\ninterrupted -- partial results follow"
                  << (sup != nullptr && !sup->journal_path().empty()
                          ? " (journal flushed: " + sup->journal_path() + ")"
                          : "")
                  << "\n";
    std::cout << '\n';
    if (opts.get_flag("csv"))
        db.dump_csv(std::cout);
    else if (opts.get_flag("json"))
        db.dump_json(std::cout);
    else
        db.dump_summary(std::cout);

    int sanitize_rc = 0;
    if (sanitizer) {
        sanitize_scope.reset();
        analyze::span_sink sink;
        if (topts.enabled())
            sink = [&](const analyze::finding& f) {
                const double t = tsession.last_end_ns();
                trace::span s;
                s.name = "sanitize " + f.rule + ": " + f.message;
                s.start_ns = t;
                s.end_ns = t;
                s.status = trace::span_status::failed;
                tsession.record(std::move(s));
            };
        sanitize_rc =
            analyze::finish(*sanitizer, aopts, std::cout, std::cerr, sink);
        if (sanitize_rc == 2) return 2;
    }
    // Stop metrics first so the finished series can merge into the Perfetto
    // export as counter tracks.
    if (msession) msession->stop();
    if (topts.enabled() &&
        !trace::finish_session(tsession, topts, tsession.last_end_ns(),
                               std::cout, std::cerr,
                               msession ? &*msession : nullptr))
        return 2;
    if (msession &&
        !metrics::finish_metrics(*msession, mopts, std::cout, std::cerr))
        return 2;
    if (interrupted) return 128 + resilience::interrupt_signal();
    if (failures != 0) return 1;
    return sanitize_rc;
}
