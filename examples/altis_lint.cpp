// altis_lint: the standalone front-end of altis::sanitize. Lints one
// application (or the whole suite) two ways:
//
//   1. Functional pass -- runs the app once (passes=1) with a recorder
//      installed, so every real queue submission, transfer, wait and USM
//      call lands in the command graph; the hazard and pipe passes then
//      check the actual execution (ALS-H*/ALS-P* rules).
//   2. Descriptor pass -- walks the bench suite's model descriptors for
//      sizes 1..3 on the chosen variant/device and runs the paper-derived
//      perf-lint rules over them (ALS-L* rules), without simulating.
//
//   ./examples/altis_lint all                        # lint everything
//   ./examples/altis_lint kmeans --variant fpga_opt --device stratix_10
//   ./examples/altis_lint all --sanitize error       # CI gate: exit 1 on
//                                                    # any warning-or-worse
#include <algorithm>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analyze/options.hpp"
#include "analyze/recorder.hpp"
#include "apps/common/app.hpp"
#include "apps/common/suite.hpp"
#include "core/option_parser.hpp"
#include "core/registry.hpp"
#include "core/result_database.hpp"
#include "metrics/options.hpp"
#include "metrics/session.hpp"

namespace {

// The suite's regions are named "<app>/<variant>/sizeN". A few registry
// names differ from the region prefix: both ParticleFilter flavors share
// the "particlefilter" region family, and CFD FP64 shares "cfd".
std::string region_prefix(const std::string& app) {
    if (app == "pf_naive" || app == "pf_float") return "particlefilter";
    if (app == "cfd_fp64") return "cfd";
    return app;
}

bool region_matches(const std::string& region_name, const std::string& app) {
    return region_name.rfind(region_prefix(app) + "/", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace altis;

    OptionParser opts;
    add_standard_options(opts);
    opts.add_option("variant", "sycl_opt",
                    "cuda | sycl_base | sycl_opt | fpga_base | fpga_opt");
    opts.add_flag("functional-only", "skip the descriptor (perf-lint) pass");
    opts.add_flag("descriptors-only", "skip the functional (hazard) pass");
    analyze::add_sanitize_options(opts);
    metrics::add_metrics_options(opts);

    analyze::options aopts;
    try {
        if (!opts.parse(argc, argv, std::cout)) return 0;
        aopts = analyze::options::from(opts);
    } catch (const OptionError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
    // A lint tool always lints: --sanitize only picks warn (default, report
    // and exit 0) vs error (any warning-or-worse finding fails the run).
    if (aopts.lv == analyze::level::off) aopts.lv = analyze::level::warn;

    apps::register_all_apps();
    auto& registry = Registry::instance();

    RunConfig cfg;
    cfg.size = static_cast<int>(opts.get_int("size"));
    cfg.device = opts.get_string("device");
    cfg.passes = 1;  // one pass captures the full command graph
    const std::string vname = opts.get_string("variant");
    bool found = false;
    for (const Variant v : {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
                            Variant::fpga_base, Variant::fpga_opt}) {
        if (vname == to_string(v)) {
            cfg.variant = v;
            found = true;
        }
    }
    if (!found) {
        std::cerr << "error: unknown variant " << vname << "\n";
        return 2;
    }
    const perf::device_spec& dev = perf::device_by_name(cfg.device);

    std::vector<std::string> targets = opts.positional();
    if (targets.empty()) {
        std::cerr << "usage: altis_lint <app|all> [options]; see --help\n";
        return 2;
    }
    const bool all = targets.size() == 1 && targets[0] == "all";
    if (all) {
        targets.clear();
        for (const auto& app : registry.apps()) targets.push_back(app.name);
    }
    for (const auto& name : targets) {
        if (registry.find(name) == nullptr) {
            std::cerr << "error: unknown application '" << name << "'\n";
            return 2;
        }
    }

    // The functional pass executes real kernels, so --metrics reports the
    // engine telemetry of the lint run like any other harness binary.
    const metrics::options mopts = metrics::options::from(opts);
    std::optional<metrics::session> msession;
    if (mopts.enabled()) msession.emplace("altis_lint");

    analyze::recorder rec(aopts.lv);
    int failures = 0;
    {
        analyze::recorder::scope scope(rec);

        if (!opts.get_flag("descriptors-only")) {
            for (const auto& name : targets) {
                const AppInfo* app = registry.find(name);
                const bool supported =
                    std::find(app->variants.begin(), app->variants.end(),
                              cfg.variant) != app->variants.end() &&
                    apps::variant_allowed(cfg.variant, dev);
                if (!supported) {
                    std::cout << name
                              << ": skipped (variant/device unsupported)\n";
                    continue;
                }
                ResultDatabase db;
                try {
                    app->run(cfg, db);
                    std::cout << name << ": captured\n";
                } catch (const std::exception& e) {
                    // Under --sanitize error the pre-launch pipe gate throws
                    // out of the run; the findings are already recorded.
                    std::cout << name << ": FAILED -- " << e.what() << "\n";
                    ++failures;
                }
            }
        }

        if (!opts.get_flag("functional-only")) {
            for (const auto& e : bench::suite()) {
                for (int size = 1; size <= 3; ++size) {
                    if (e.crashes && e.crashes(dev, cfg.variant, size))
                        continue;
                    try {
                        const apps::timed_region r =
                            e.region(cfg.variant, dev, size);
                        const bool wanted =
                            all || std::any_of(targets.begin(), targets.end(),
                                               [&](const std::string& t) {
                                                   return region_matches(r.name,
                                                                         t);
                                               });
                        if (!wanted) continue;
                        for (const auto& k : r.all_kernels())
                            rec.record_simulated_kernel(k, dev);
                    } catch (const std::exception&) {
                        // Entries without this variant/size combination are
                        // simply absent from the descriptor pass.
                    }
                }
            }
        }
    }

    const int rc = analyze::finish(rec, aopts, std::cout, std::cerr);
    if (msession &&
        !metrics::finish_metrics(*msession, mopts, std::cout, std::cerr))
        return 2;
    if (rc == 2 || failures != 0) return rc == 2 ? 2 : 1;
    return rc;
}
