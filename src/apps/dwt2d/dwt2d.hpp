// DWT2D: 2D forward discrete wavelet transform (CDF 9/7 lifting scheme,
// JPEG2000-style, 3 decomposition levels) from Altis Level-2. Paper roles:
// the multiple-kernel-versions problem (Altis DWT2D has 14 kernels; only the
// two needed for the default algorithm/input fit one FPGA bitstream, Sec. 4)
// and the congested-shared-memory case the authors could not optimize -- on
// FPGAs only a baseline is provided (Sec. 5.4), so DWT2D appears in Fig. 2
// but not in Fig. 4/5.
#pragma once

#include <vector>

#include "apps/common/app.hpp"
#include "apps/common/region.hpp"

namespace altis::apps::dwt2d {

inline constexpr int kLevels = 3;
inline constexpr int kTotalKernelVersions = 14;  ///< in the Altis codebase
inline constexpr int kSynthesizedKernels = 2;    ///< selected per bitstream

struct params {
    std::size_t width = 1024;
    std::size_t height = 1024;

    [[nodiscard]] static params preset(int size);
    [[nodiscard]] std::size_t pixels() const { return width * height; }
};

[[nodiscard]] std::vector<float> make_image(const params& p);

/// Host reference: kLevels of 2D CDF 9/7 forward lifting, in place
/// (LL quadrant recursion).
void golden(const params& p, std::vector<float>& image);

/// Inverse transform: undoes golden() exactly (the 9/7 lifting scheme is
/// perfectly invertible up to floating-point rounding). Used by the
/// reconstruction property tests.
void inverse(const params& p, std::vector<float>& image);

AppResult run(const RunConfig& cfg);

[[nodiscard]] timed_region region(Variant v, const perf::device_spec& dev,
                                  int size);
[[nodiscard]] std::vector<perf::kernel_stats> fpga_design(
    const perf::device_spec& dev, int size);

inline constexpr const char* kFpgaImplLabel = "ND-Range (baseline only)";

void register_app();

}  // namespace altis::apps::dwt2d
