file(REMOVE_RECURSE
  "CMakeFiles/fpga_migration.dir/fpga_migration.cpp.o"
  "CMakeFiles/fpga_migration.dir/fpga_migration.cpp.o.d"
  "fpga_migration"
  "fpga_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
