file(REMOVE_RECURSE
  "CMakeFiles/ablation_apps.dir/ablation_apps.cpp.o"
  "CMakeFiles/ablation_apps.dir/ablation_apps.cpp.o.d"
  "ablation_apps"
  "ablation_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
