file(REMOVE_RECURSE
  "CMakeFiles/altis_dpct.dir/dpct.cpp.o"
  "CMakeFiles/altis_dpct.dir/dpct.cpp.o.d"
  "libaltis_dpct.a"
  "libaltis_dpct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altis_dpct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
