
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sycl/test_buffer.cpp" "tests/CMakeFiles/test_syclite.dir/sycl/test_buffer.cpp.o" "gcc" "tests/CMakeFiles/test_syclite.dir/sycl/test_buffer.cpp.o.d"
  "/root/repo/tests/sycl/test_compute_units.cpp" "tests/CMakeFiles/test_syclite.dir/sycl/test_compute_units.cpp.o" "gcc" "tests/CMakeFiles/test_syclite.dir/sycl/test_compute_units.cpp.o.d"
  "/root/repo/tests/sycl/test_group_algorithms.cpp" "tests/CMakeFiles/test_syclite.dir/sycl/test_group_algorithms.cpp.o" "gcc" "tests/CMakeFiles/test_syclite.dir/sycl/test_group_algorithms.cpp.o.d"
  "/root/repo/tests/sycl/test_hierarchical.cpp" "tests/CMakeFiles/test_syclite.dir/sycl/test_hierarchical.cpp.o" "gcc" "tests/CMakeFiles/test_syclite.dir/sycl/test_hierarchical.cpp.o.d"
  "/root/repo/tests/sycl/test_pipe.cpp" "tests/CMakeFiles/test_syclite.dir/sycl/test_pipe.cpp.o" "gcc" "tests/CMakeFiles/test_syclite.dir/sycl/test_pipe.cpp.o.d"
  "/root/repo/tests/sycl/test_queue.cpp" "tests/CMakeFiles/test_syclite.dir/sycl/test_queue.cpp.o" "gcc" "tests/CMakeFiles/test_syclite.dir/sycl/test_queue.cpp.o.d"
  "/root/repo/tests/sycl/test_range.cpp" "tests/CMakeFiles/test_syclite.dir/sycl/test_range.cpp.o" "gcc" "tests/CMakeFiles/test_syclite.dir/sycl/test_range.cpp.o.d"
  "/root/repo/tests/sycl/test_thread_pool.cpp" "tests/CMakeFiles/test_syclite.dir/sycl/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_syclite.dir/sycl/test_thread_pool.cpp.o.d"
  "/root/repo/tests/sycl/test_usm.cpp" "tests/CMakeFiles/test_syclite.dir/sycl/test_usm.cpp.o" "gcc" "tests/CMakeFiles/test_syclite.dir/sycl/test_usm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/altis_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/altis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/altis_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sycl/CMakeFiles/altis_syclite.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/altis_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/altis_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/dpct/CMakeFiles/altis_dpct.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
