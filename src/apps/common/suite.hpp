// Suite view shared by the figure/table benches: one entry per column of the
// paper's evaluation figures, wiring the app's region/design builders plus
// the paper's published values for side-by-side comparison (EXPERIMENTS.md
// is generated from these outputs).
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "apps/common/region.hpp"
#include "core/registry.hpp"
#include "fault/retry.hpp"
#include "perf/device.hpp"
#include "resilience/journal.hpp"
#include "resilience/supervisor.hpp"

namespace altis::bench {

struct SuiteEntry {
    std::string label;  ///< figure column label, e.g. "CFD FP32"
    bool in_fig2 = true;
    bool in_fig45 = true;  ///< DWT2D is absent from Figs. 4/5 (Sec. 5.4)
    const char* fpga_impl = "";

    std::function<apps::timed_region(Variant, const perf::device_spec&, int)>
        region;
    /// Region of the original CUDA with its timing bug, when the app has one
    /// (FDTD2D, Sec. 3.3); used for the Fig. 2 baseline comparison.
    std::function<apps::timed_region(const perf::device_spec&, int)>
        cuda_mistimed;
    /// Region of the CUDA code after applying the fix the paper ported back
    /// (PF Float's pow(a,2) -> a*a); used for the Fig. 2 optimized panel.
    std::function<apps::timed_region(const perf::device_spec&, int)>
        cuda_fixed;
    std::function<std::vector<perf::kernel_stats>(const perf::device_spec&, int)>
        fpga_design;
    /// True when this configuration crashes (Where size 3 on Agilex).
    std::function<bool(const perf::device_spec&, Variant, int)> crashes;

    // ---- paper reference values (indexed by size-1) ----
    std::array<double, 3> paper_fig2_baseline{};   ///< Fig. 2 top panel
    std::array<double, 3> paper_fig2_optimized{};  ///< Fig. 2 bottom panel
    std::array<double, 3> paper_fig4{};            ///< Fig. 4 (S10 opt/base)
    /// Fig. 5 rows: per device {rtx, a100, max, s10, agilex} x size; 0 = not
    /// reported (Where size 3 on Agilex).
    std::array<std::array<double, 3>, 5> paper_fig5{};
};

/// The 13 Fig. 2 columns in figure order.
[[nodiscard]] const std::vector<SuiteEntry>& suite();

/// Device name list of Fig. 5's bar series, in order.
[[nodiscard]] std::span<const std::string> fig5_devices();

/// Total simulated milliseconds of one configuration; uses the matching
/// runtime (CUDA variant -> CUDA runtime). Returns nullopt when the
/// configuration crashes or does not exist.
[[nodiscard]] std::optional<double> total_ms(const SuiteEntry& e, Variant v,
                                             const std::string& device,
                                             int size);

/// Canonical configuration label used everywhere a sweep names one cell:
/// "<label>/<variant>/<device>/size<N>", e.g. "KMeans/fpga_opt/stratix_10/size2".
[[nodiscard]] std::string config_label(const SuiteEntry& e, Variant v,
                                       const std::string& device, int size);

/// Result of one resilient configuration run (see run_config).
struct ConfigOutcome {
    /// Simulated total, present only when some attempt succeeded.
    std::optional<double> ms;
    /// Retry bookkeeping: status/attempts/backoff/error.
    fault::outcome oc;
    /// True when the configuration does not exist (variant/device mismatch,
    /// known crash, unimplemented variant) rather than having failed.
    bool skipped = false;
    std::string skip_reason;
};

/// Resilient replacement for total_ms: simulates the configuration under the
/// active fault plan, retrying retryable injected faults per `policy`.
/// Nonexistent configurations come back skipped; failures come back with the
/// error string instead of throwing (unless `fail_fast`). Retries emit a
/// `retried` span into the current trace session so timelines show where the
/// sweep degraded.
[[nodiscard]] ConfigOutcome run_config(const SuiteEntry& e, Variant v,
                                       const std::string& device, int size,
                                       const fault::retry_policy& policy = {},
                                       bool fail_fast = false);

/// Supervised variant: routes the configuration through the resilience
/// supervisor (journal replay -> breaker admission -> deadline scope ->
/// fsync'd journaling). Nonexistent configurations are skipped before the
/// supervisor -- the checks are deterministic, so resume recomputes them
/// identically and the journal stays free of noise. With `sup == nullptr`
/// this is exactly the plain overload. Degraded terminal states (deadline,
/// cancelled, quarantined) emit a matching zero-length span into the
/// current trace session.
[[nodiscard]] ConfigOutcome run_config(const SuiteEntry& e, Variant v,
                                       const std::string& device, int size,
                                       const fault::retry_policy& policy,
                                       bool fail_fast,
                                       resilience::supervisor* sup);

/// Breaker quarantine key of a configuration: the config label without the
/// size component, so repeated hard failures of one app/variant/device pair
/// open the circuit for its remaining sizes.
[[nodiscard]] std::string breaker_key(const SuiteEntry& e, Variant v,
                                      const std::string& device);

/// Journal conversion for the fig sweeps (altis_run captures log/results on
/// top of these).
[[nodiscard]] resilience::journal_entry outcome_to_entry(
    const std::string& label, const ConfigOutcome& co);
[[nodiscard]] ConfigOutcome entry_to_outcome(
    const resilience::journal_entry& entry);

/// Records a zero-length cancelled/quarantined span at the end of the
/// current trace session (no-op without one, or for healthy statuses).
void emit_degraded_span(const std::string& label, const fault::outcome& oc);

/// Records the outcome under `label` when it carries information: injection
/// is active, or the configuration failed or needed retries. Expected skips
/// of nonexistent configurations (the legacy "n/a"/"crash" cells) are only
/// logged while a fault plan is active, so fault-free reports keep their
/// historical shape.
void record_config_outcome(ResultDatabase& db, const std::string& label,
                           const ConfigOutcome& co, bool injection_enabled);

}  // namespace altis::bench
