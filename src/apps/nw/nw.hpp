// NW: Needleman-Wunsch global DNA sequence alignment (Altis Level-2).
// Tiled wavefront dynamic program with heavy work-group local memory whose
// irregular access pattern the FPGA compiler can only arbitrate (paper
// Sec. 5.2 case 3: no banking, no unrolling -- timing violations), making NW
// the application that runs at ~half CPU speed on the Stratix 10 at larger
// sizes (Sec. 5.4). On GPUs it is the poster child for the compiler
// inlining-threshold fix (Sec. 3.3: up to 2x for NW).
#pragma once

#include <vector>

#include "apps/common/app.hpp"
#include "apps/common/region.hpp"

namespace altis::apps::nw {

inline constexpr int kTile = 16;
inline constexpr int kPenalty = 10;

struct params {
    std::size_t n = 1024;  ///< sequence length (multiple of kTile)
    std::uint64_t seed = 0xA11C0DEULL;

    [[nodiscard]] static params preset(int size);
    [[nodiscard]] std::size_t blocks() const {
        return n / static_cast<std::size_t>(kTile);
    }
};

struct workload {
    std::vector<std::int8_t> seq1, seq2;  ///< n each, symbols in [0,10)
};

[[nodiscard]] workload make_workload(const params& p);

/// Similarity of two symbols (match/mismatch), shared by golden and kernels.
[[nodiscard]] inline int similarity(std::int8_t a, std::int8_t b) {
    return a == b ? 5 : -3;
}

/// Host reference: full (n+1)x(n+1) DP table, returns the interior n x n
/// scores row-major (the boundary row/column is implicit -i*penalty).
[[nodiscard]] std::vector<int> golden(const params& p, const workload& w);

AppResult run(const RunConfig& cfg);

[[nodiscard]] timed_region region(Variant v, const perf::device_spec& dev,
                                  int size);
[[nodiscard]] std::vector<perf::kernel_stats> fpga_design(
    const perf::device_spec& dev, int size);

inline constexpr const char* kFpgaImplLabel = "ND-Range";

void register_app();

}  // namespace altis::apps::nw
