file(REMOVE_RECURSE
  "CMakeFiles/fig3_kmeans_pipes.dir/fig3_kmeans_pipes.cpp.o"
  "CMakeFiles/fig3_kmeans_pipes.dir/fig3_kmeans_pipes.cpp.o.d"
  "fig3_kmeans_pipes"
  "fig3_kmeans_pipes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_kmeans_pipes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
