#include "trace/harness.hpp"

#include <iostream>
#include <stdexcept>
#include <utility>

namespace altis::trace {

cli_harness::cli_harness(std::string name) : session_(std::move(name)) {
    add_trace_options(opts_);
    fault::add_fault_options(opts_);
    analyze::add_sanitize_options(opts_);
    metrics::add_metrics_options(opts_);
    resilience::add_resilience_options(opts_);
}

int cli_harness::parse(int argc, char** argv) {
    try {
        if (!opts_.parse(argc, argv, std::cout)) return 0;  // --help
        aopts_ = analyze::options::from(opts_);
        topts_ = options::from(opts_);
        fopts_ = fault::options::from(opts_);
        ropts_ = resilience::options::from(opts_);
    } catch (const OptionError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
    if (ropts_.enabled()) {
        try {
            supervisor_.emplace(ropts_, session_.name());
        } catch (const std::runtime_error& e) {
            std::cerr << "error: " << e.what() << "\n";
            return 2;
        }
        resilience::install_signal_cancellation();
    }
    if (aopts_.enabled()) {
        recorder_.emplace(aopts_.lv);
        sanitize_scope_.emplace(*recorder_);
    }
    if (fopts_.enabled()) {
        try {
            plan_.emplace(fopts_.make_plan());
        } catch (const fault::spec_error& e) {
            std::cerr << "error: bad --inject spec: " << e.what() << "\n";
            return 2;
        }
        fault_scope_.emplace(*plan_);
    }
    mopts_ = metrics::options::from(opts_);
    if (mopts_.enabled()) msession_.emplace(session_.name());
    // Only install the session when asked to: an inactive bench collects no
    // spans and behaves exactly as before the trace layer existed.
    if (topts_.enabled()) scope_.emplace(session_);
    return -1;
}

int cli_harness::finish() {
    int sanitize_rc = 0;
    if (recorder_) {
        sanitize_scope_.reset();
        // Findings land on the trace (when one is active) as zero-length
        // failed spans at the end of the timeline, so exported timelines
        // show what the sanitizer objected to.
        analyze::span_sink sink;
        if (topts_.enabled()) {
            sink = [this](const analyze::finding& f) {
                const double t = session_.last_end_ns();
                span s;
                s.name = "sanitize " + f.rule + ": " + f.message;
                s.start_ns = t;
                s.end_ns = t;
                s.status = span_status::failed;
                session_.record(std::move(s));
            };
        }
        sanitize_rc =
            analyze::finish(*recorder_, aopts_, std::cout, std::cerr, sink);
    }
    // Stop metrics before the trace export so the finished sampled series
    // can merge into the Perfetto file as counter tracks.
    if (msession_) msession_->stop();
    int trace_rc = 0;
    if (topts_.enabled()) {
        scope_.reset();
        trace_rc = finish_session(session_, topts_, session_.last_end_ns(),
                                  std::cout, std::cerr,
                                  msession_ ? &*msession_ : nullptr)
                       ? 0
                       : 2;
    }
    int metrics_rc = 0;
    if (msession_)
        metrics_rc = metrics::finish_metrics(*msession_, mopts_, std::cout,
                                             std::cerr)
                         ? 0
                         : 2;
    if (sanitize_rc != 0) return sanitize_rc;
    if (trace_rc != 0) return trace_rc;
    return metrics_rc;
}

}  // namespace altis::trace
