#include "apps/dwt2d/dwt2d.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace altis::apps::dwt2d {
namespace {

TEST(Dwt2d, GoldenCompactsEnergyIntoLLBand) {
    // A smooth low-frequency image: after kLevels decompositions the
    // top-left approximation band holds the bulk of the energy. The LL band
    // is 1/64 of the pixels, so >40% concentration demonstrates compaction.
    params p{128, 128};
    std::vector<float> img(p.pixels());
    for (std::size_t i = 0; i < p.height; ++i)
        for (std::size_t j = 0; j < p.width; ++j)
            img[i * p.width + j] =
                std::sin(static_cast<float>(i) * 0.05f) +
                std::cos(static_cast<float>(j) * 0.04f);
    golden(p, img);
    const std::size_t llw = p.width >> kLevels, llh = p.height >> kLevels;
    double ll_energy = 0.0, total = 0.0;
    for (std::size_t i = 0; i < p.height; ++i)
        for (std::size_t j = 0; j < p.width; ++j) {
            const double v = img[i * p.width + j];
            total += v * v;
            if (i < llh && j < llw) ll_energy += v * v;
        }
    EXPECT_GT(ll_energy / total, 0.4);
}

TEST(Dwt2d, GoldenConstantImageHasZeroDetail) {
    params p{64, 64};
    std::vector<float> img(p.pixels(), 8.0f);
    golden(p, img);
    // All detail (high-pass) coefficients of a constant signal are ~0.
    const std::size_t llw = p.width >> 1;
    double detail = 0.0;
    for (std::size_t j = llw; j < p.width; ++j)
        detail += std::abs(img[j]);  // first-level H band, top row
    EXPECT_LT(detail / static_cast<double>(llw), 1e-3);
}

struct Case {
    const char* device;
    Variant variant;
};

class Dwt2dVariants : public ::testing::TestWithParam<Case> {};

TEST_P(Dwt2dVariants, FunctionalRunVerifies) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = GetParam().device;
    cfg.variant = GetParam().variant;
    const AppResult r = run(cfg);
    EXPECT_GT(r.kernel_ms, 0.0);
    EXPECT_LE(r.error, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndVariants, Dwt2dVariants,
    ::testing::Values(Case{"rtx_2080", Variant::cuda},
                      Case{"rtx_2080", Variant::sycl_opt},
                      Case{"xeon_6128", Variant::sycl_base},
                      Case{"stratix_10", Variant::fpga_base},
                      Case{"agilex", Variant::fpga_base}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.device) + "_" +
               to_string(info.param.variant);
    });

// Sec. 5.4: no optimized FPGA version exists (would need an algorithmic
// rewrite); requesting one is an error, and DWT2D is absent from Fig. 4/5.
TEST(Dwt2d, NoOptimizedFpgaVersion) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "stratix_10";
    cfg.variant = Variant::fpga_opt;
    EXPECT_THROW(run(cfg), std::invalid_argument);
    EXPECT_THROW(region(Variant::fpga_opt,
                        perf::device_by_name("stratix_10"), 1),
                 std::invalid_argument);
}

// Sec. 4: only 2 of the 14 kernel versions are synthesized per bitstream.
TEST(Dwt2d, BitstreamSelectsTwoOfFourteenKernels) {
    EXPECT_EQ(kTotalKernelVersions, 14);
    const auto design = fpga_design(perf::device_by_name("stratix_10"), 3);
    EXPECT_EQ(design.size(), static_cast<std::size_t>(kSynthesizedKernels));
}

TEST(Dwt2d, SharedMemoryIsCongested) {
    const auto design = fpga_design(perf::device_by_name("stratix_10"), 1);
    for (const auto& k : design)
        EXPECT_EQ(k.pattern, perf::local_pattern::congested);
}

// The 9/7 lifting scheme is perfectly invertible: forward + inverse must
// reproduce the input up to floating-point rounding.
TEST(Dwt2d, PerfectReconstruction) {
    params p{256, 256};
    const std::vector<float> original = make_image(p);
    std::vector<float> img = original;
    golden(p, img);
    inverse(p, img);
    double worst = 0.0;
    for (std::size_t i = 0; i < img.size(); ++i)
        worst = std::max(worst,
                         static_cast<double>(std::abs(img[i] - original[i])));
    EXPECT_LT(worst, 1e-2);  // float lifting across 3 levels
}

TEST(Dwt2d, ReconstructionAfterDeviceTransform) {
    // The device path's coefficients must also invert back to the input.
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "xeon_6128";
    cfg.variant = Variant::sycl_opt;
    EXPECT_NO_THROW(run(cfg));  // run() already checks device == golden
    params p = params::preset(1);
    std::vector<float> img = make_image(p);
    golden(p, img);
    inverse(p, img);
    const std::vector<float> original = make_image(p);
    double worst = 0.0;
    for (std::size_t i = 0; i < img.size(); ++i)
        worst = std::max(worst,
                         static_cast<double>(std::abs(img[i] - original[i])));
    EXPECT_LT(worst, 2e-2);
}

TEST(Dwt2d, RunMatchesRegionSimulation) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "rtx_2080";
    cfg.variant = Variant::sycl_opt;
    const AppResult r = run(cfg);
    const auto& dev = perf::device_by_name(cfg.device);
    const auto est = simulate_region(region(cfg.variant, dev, cfg.size), dev,
                                     perf::runtime_kind::sycl);
    EXPECT_NEAR(r.kernel_ms, est.kernel_ms(), r.kernel_ms * 0.02);
}

}  // namespace
}  // namespace altis::apps::dwt2d
