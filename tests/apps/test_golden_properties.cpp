// Algorithm-level property tests of the golden references -- invariants that
// hold regardless of implementation details, catching logic regressions the
// device-vs-golden comparisons cannot (both would drift together).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/cfd/cfd.hpp"
#include "apps/kmeans/kmeans.hpp"
#include "apps/lavamd/lavamd.hpp"
#include "apps/mandelbrot/mandelbrot.hpp"
#include "apps/nw/nw.hpp"
#include "apps/where/where.hpp"

namespace altis::apps {
namespace {

// KMeans is a coordinate-descent method: the within-cluster sum of squares
// must be non-increasing across Lloyd iterations.
TEST(GoldenProperties, KmeansObjectiveIsNonIncreasing) {
    kmeans::params p;
    p.n = 512;
    p.d = 4;
    p.k = 4;
    const kmeans::dataset data = kmeans::make_dataset(p);

    auto objective = [&](const kmeans::clustering& c) {
        double sum = 0.0;
        for (std::size_t i = 0; i < p.n; ++i) {
            const auto ci = static_cast<std::size_t>(c.assignment[i]);
            for (std::size_t j = 0; j < p.d; ++j) {
                const double diff = data.points[i * p.d + j] -
                                    c.centers[ci * p.d + j];
                sum += diff * diff;
            }
        }
        return sum;
    };

    double prev = std::numeric_limits<double>::max();
    for (int iters = 1; iters <= 16; iters *= 2) {
        kmeans::params pi = p;
        pi.iterations = iters;
        const double obj = objective(kmeans::golden(pi, data));
        EXPECT_LE(obj, prev * (1.0 + 1e-6)) << iters;
        prev = obj;
    }
}

// NW with swapped sequences yields the transposed score matrix (the DP is
// symmetric in its two inputs).
TEST(GoldenProperties, NwSwapGivesTranspose) {
    nw::params p;
    p.n = 64;
    const nw::workload w = nw::make_workload(p);
    nw::workload swapped;
    swapped.seq1 = w.seq2;
    swapped.seq2 = w.seq1;
    const auto a = nw::golden(p, w);
    const auto b = nw::golden(p, swapped);
    for (std::size_t i = 0; i < p.n; ++i)
        for (std::size_t j = 0; j < p.n; ++j)
            ASSERT_EQ(a[i * p.n + j], b[j * p.n + i]);
}

// NW scores are bounded: at most +5 per aligned pair, at least the all-gap
// path.
TEST(GoldenProperties, NwScoresAreBounded) {
    nw::params p;
    p.n = 128;
    const auto score = nw::golden(p, nw::make_workload(p));
    for (std::size_t i = 0; i < p.n; ++i)
        for (std::size_t j = 0; j < p.n; ++j) {
            const long best = 5L * static_cast<long>(std::min(i, j) + 1);
            ASSERT_LE(score[i * p.n + j], best);
        }
}

// LavaMD forces obey Newton's third law per pair: summing fx over ALL
// particles of a closed 1-box system gives ~0 (q-weighted asymmetry aside,
// the potential's pair force is antisymmetric in the distance vector only
// when charges match; use unit charges to test the kernel's geometry).
TEST(GoldenProperties, LavamdSelfBoxForcesAreFinite) {
    lavamd::params p;
    p.boxes1d = 1;
    auto particles = lavamd::make_particles(p);
    const auto forces = lavamd::golden(p, particles);
    for (const auto& f : forces) {
        ASSERT_TRUE(std::isfinite(f.fx + f.fy + f.fz));
        ASSERT_GT(f.energy, 0.0f);  // every pair contributes exp(-u2)*q > 0
    }
    // A particle interacting with itself contributes exp(0)*q = q to its own
    // energy; total energy must therefore exceed the sum of charges.
    double total_q = 0.0, total_e = 0.0;
    for (std::size_t i = 0; i < p.particles(); ++i) {
        total_q += particles[i].q;
        total_e += forces[i].energy;
    }
    EXPECT_GT(total_e, total_q * 0.99);
}

// Mandelbrot iterations are monotone in max_iters: capping later never
// changes early-escaping pixels.
TEST(GoldenProperties, MandelbrotCapMonotone) {
    mandelbrot::params lo;
    lo.width = lo.height = 64;
    lo.max_iters = 64;
    mandelbrot::params hi = lo;
    hi.max_iters = 512;
    std::vector<std::uint16_t> a(lo.pixels()), b(hi.pixels());
    mandelbrot::golden(lo, a);
    mandelbrot::golden(hi, b);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] < lo.max_iters)
            ASSERT_EQ(a[i], b[i]) << i;  // escaped before the cap
        else
            ASSERT_GE(b[i], a[i]) << i;
    }
}

// Where: selectivity is monotone in the threshold, and the output is always
// a subsequence of the input.
TEST(GoldenProperties, WhereSelectivityMonotone) {
    where::params p;
    p.n = 4096;
    const auto table = where::make_table(p);
    std::size_t prev = 0;
    for (std::int32_t threshold : {0, 1 << 16, 1 << 18, 1 << 19, 1 << 20}) {
        where::params pt = p;
        pt.threshold = threshold;
        const auto out = where::golden(pt, table);
        ASSERT_GE(out.size(), prev);
        prev = out.size();
    }
    EXPECT_EQ(prev, p.n);  // threshold above the key range selects everything
}

// CFD: a uniform free-stream flow is a steady state -- fluxes cancel and the
// solution must stay (nearly) unchanged.
TEST(GoldenProperties, CfdFreeStreamIsSteady) {
    cfd::params p{24, 24, 20};
    const cfd::mesh m = cfd::make_mesh(p);
    const std::size_t nel = p.nel();
    // Uniform free-stream state: element 0 of initial_variables carries no
    // perturbation (its bump factor is exactly 1), so broadcasting it makes
    // the interior identical to the far-field ghost state.
    std::vector<double> vars(nel * cfd::kVars);
    const auto seed = cfd::initial_variables<double>(p);
    for (int k = 0; k < cfd::kVars; ++k)
        for (std::size_t e = 0; e < nel; ++e)
            vars[static_cast<std::size_t>(k) * nel + e] =
                seed[static_cast<std::size_t>(k) * nel];
    const std::vector<double> before = vars;
    cfd::golden(p, m, vars);
    double worst = 0.0;
    for (std::size_t i = 0; i < vars.size(); ++i)
        worst = std::max(worst, std::abs(vars[i] - before[i]));
    EXPECT_LT(worst, 1e-9);
}

}  // namespace
}  // namespace altis::apps
