file(REMOVE_RECURSE
  "CMakeFiles/render_scenes.dir/render_scenes.cpp.o"
  "CMakeFiles/render_scenes.dir/render_scenes.cpp.o.d"
  "render_scenes"
  "render_scenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_scenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
