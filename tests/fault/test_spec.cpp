#include "fault/spec.hpp"

#include <gtest/gtest.h>

namespace altis::fault {
namespace {

TEST(FaultSpec, ParsesEveryKindAndRoundTrips) {
    plan p = plan::parse("alloc@1;launch:k*@2x3;transfer%0.25;pipe:map@4;"
                         "device:agilex@1;seed=11");
    ASSERT_EQ(p.rules().size(), 5u);
    EXPECT_EQ(p.seed(), 11u);
    EXPECT_EQ(p.rules()[0].kind, op_kind::alloc);
    EXPECT_EQ(p.rules()[0].nth, 1u);
    EXPECT_EQ(p.rules()[1].kind, op_kind::launch);
    EXPECT_EQ(p.rules()[1].match, "k*");
    EXPECT_EQ(p.rules()[1].nth, 2u);
    EXPECT_EQ(p.rules()[1].times, 3u);
    EXPECT_DOUBLE_EQ(p.rules()[2].probability, 0.25);
    EXPECT_EQ(p.rules()[3].kind, op_kind::pipe);
    EXPECT_EQ(p.rules()[4].kind, op_kind::device);
    EXPECT_EQ(p.rules()[0].text(), "alloc@1");
    EXPECT_EQ(p.rules()[1].text(), "launch:k*@2x3");
    EXPECT_EQ(p.rules()[3].text(), "pipe:map@4");
}

TEST(FaultSpec, EmptySpecIsEmptyPlan) {
    plan p = plan::parse("");
    EXPECT_TRUE(p.empty());
    EXPECT_FALSE(p.check(op_kind::alloc, "anything").has_value());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
    EXPECT_THROW(plan::parse("frobnicate@1"), spec_error);  // unknown kind
    EXPECT_THROW(plan::parse("alloc"), spec_error);         // no trigger
    EXPECT_THROW(plan::parse("alloc@0"), spec_error);       // 1-based
    EXPECT_THROW(plan::parse("alloc@1x0"), spec_error);     // 1-based
    EXPECT_THROW(plan::parse("alloc@2%0.5"), spec_error);   // mixed triggers
    EXPECT_THROW(plan::parse("alloc%1.5"), spec_error);     // P out of range
    EXPECT_THROW(plan::parse("alloc@x"), spec_error);       // bad number
    EXPECT_THROW(plan::parse("seed=abc"), spec_error);
}

std::string parse_error(const std::string& spec) {
    try {
        (void)plan::parse(spec);
    } catch (const spec_error& e) {
        return e.what();
    }
    return "";
}

TEST(FaultSpec, EmptyClausesAreTolerated) {
    // Stray semicolons (";;", trailing ";") are not rules; they parse to an
    // empty plan rather than erroring, so generated specs can be sloppy
    // about separators.
    EXPECT_TRUE(plan::parse(";;").empty());
    EXPECT_TRUE(plan::parse(" ; ; ").empty());
    plan p = plan::parse("alloc@1;;");
    EXPECT_EQ(p.rules().size(), 1u);
}

TEST(FaultSpec, ExactErrorForRuleWithNoKind) {
    EXPECT_EQ(parse_error("@1"),
              "fault spec: unknown kind '' in @1 "
              "(expected alloc|launch|transfer|pipe|device)");
    EXPECT_EQ(parse_error(":map@1"),
              "fault spec: unknown kind '' in :map@1 "
              "(expected alloc|launch|transfer|pipe|device)");
}

TEST(FaultSpec, ExactErrorForRuleWithNoTrigger) {
    EXPECT_EQ(parse_error("alloc"),
              "fault spec: rule 'alloc' has no trigger (expected @N[xM] or %P)");
}

TEST(FaultSpec, ExactErrorForProbabilityOutOfRange) {
    EXPECT_EQ(parse_error("alloc%1.5"),
              "fault spec: probability must be in [0,1], got '1.5' in "
              "alloc%1.5");
    EXPECT_EQ(parse_error("alloc%-0.1"),
              "fault spec: probability must be in [0,1], got '-0.1' in "
              "alloc%-0.1");
}

TEST(FaultSpec, ExactErrorForDuplicateSeed) {
    EXPECT_EQ(parse_error("seed=1;alloc@1;seed=2"),
              "fault spec: duplicate seed= clause 'seed=2'");
    // A single seed clause stays legal wherever it appears.
    EXPECT_EQ(plan::parse("alloc@1;seed=9").seed(), 9u);
}

TEST(FaultSpec, GlobMatching) {
    EXPECT_TRUE(glob_match("", "anything"));
    EXPECT_TRUE(glob_match("*", "anything"));
    EXPECT_TRUE(glob_match("kmeans*", "kmeans_map"));
    EXPECT_FALSE(glob_match("kmeans*", "nw_kernel"));
    EXPECT_TRUE(glob_match("*map*", "kmeans_map_st"));
    EXPECT_TRUE(glob_match("k?eans", "kmeans"));
    EXPECT_FALSE(glob_match("k?eans", "kmeeans"));
    EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
    EXPECT_FALSE(glob_match("a*b*c", "aXXbYY"));
}

TEST(FaultSpec, CountingRuleFiresOnNthMatchOnly) {
    plan p = plan::parse("alloc@3");
    EXPECT_FALSE(p.check(op_kind::alloc, "a").has_value());
    EXPECT_FALSE(p.check(op_kind::alloc, "b").has_value());
    const auto h = p.check(op_kind::alloc, "c");
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->op, "c");
    EXPECT_EQ(h->rule_text, "alloc@3");
    EXPECT_FALSE(p.check(op_kind::alloc, "d").has_value());
}

TEST(FaultSpec, TimesWindowFiresConsecutively) {
    plan p = plan::parse("launch@2x2");
    EXPECT_FALSE(p.check(op_kind::launch, "k").has_value());
    EXPECT_TRUE(p.check(op_kind::launch, "k").has_value());
    EXPECT_TRUE(p.check(op_kind::launch, "k").has_value());
    EXPECT_FALSE(p.check(op_kind::launch, "k").has_value());
}

TEST(FaultSpec, NonMatchingOperationsDoNotAdvanceCounters) {
    plan p = plan::parse("alloc:usm*@1");
    EXPECT_FALSE(p.check(op_kind::alloc, "buffer").has_value());  // no match
    EXPECT_FALSE(p.check(op_kind::launch, "usm_host").has_value());  // kind
    EXPECT_TRUE(p.check(op_kind::alloc, "usm_host").has_value());
}

TEST(FaultSpec, RuleCountersAreOrderIndependent) {
    // Both rules match the same op; the first firing wins but the second
    // rule's counter still advances, so swapping rule order changes which
    // rule reports, never whether/when operations fault.
    plan a = plan::parse("alloc@1;alloc@2");
    plan b = plan::parse("alloc@2;alloc@1");
    for (int i = 0; i < 4; ++i) {
        const bool fa = a.check(op_kind::alloc, "x").has_value();
        const bool fb = b.check(op_kind::alloc, "x").has_value();
        EXPECT_EQ(fa, fb) << "operation " << i;
    }
}

TEST(FaultSpec, ProbabilisticRulesAreSeedDeterministic) {
    const char* spec = "transfer%0.5;seed=42";
    plan a = plan::parse(spec);
    plan b = plan::parse(spec);
    int fired = 0;
    for (int i = 0; i < 200; ++i) {
        const bool fa = a.check(op_kind::transfer, "t").has_value();
        const bool fb = b.check(op_kind::transfer, "t").has_value();
        EXPECT_EQ(fa, fb) << "operation " << i;
        fired += fa ? 1 : 0;
    }
    // ~50% firing rate, loosely bounded.
    EXPECT_GT(fired, 50);
    EXPECT_LT(fired, 150);

    // A different seed produces a different pattern.
    plan c = plan::parse("transfer%0.5;seed=43");
    plan d = plan::parse(spec);
    int diffs = 0;
    for (int i = 0; i < 200; ++i)
        diffs += c.check(op_kind::transfer, "t").has_value() !=
                         d.check(op_kind::transfer, "t").has_value()
                     ? 1
                     : 0;
    EXPECT_GT(diffs, 0);
}

TEST(FaultSpec, ResetRewindsCountersAndStreams) {
    plan p = plan::parse("alloc@1;transfer%0.5;seed=7");
    std::vector<bool> first;
    for (int i = 0; i < 50; ++i) {
        first.push_back(p.check(op_kind::alloc, "a").has_value());
        first.push_back(p.check(op_kind::transfer, "t").has_value());
    }
    p.reset();
    for (int i = 0, j = 0; i < 50; ++i) {
        EXPECT_EQ(p.check(op_kind::alloc, "a").has_value(), first[j++]);
        EXPECT_EQ(p.check(op_kind::transfer, "t").has_value(), first[j++]);
    }
}

TEST(FaultSpec, RetryabilityByKind) {
    EXPECT_TRUE(retryable(op_kind::alloc));
    EXPECT_TRUE(retryable(op_kind::transfer));
    EXPECT_TRUE(retryable(op_kind::device));
    EXPECT_FALSE(retryable(op_kind::launch));
    EXPECT_FALSE(retryable(op_kind::pipe));
}

}  // namespace
}  // namespace altis::fault
