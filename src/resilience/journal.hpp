// Crash-safe checkpoint journal for the sweeps: one JSONL file, a header
// line naming the sweep, then one line per completed configuration,
// appended and fsync'd as the sweep progresses. Creation is atomic (header
// written to <path>.tmp, fsync'd, renamed), so a journal either exists
// with a valid header or not at all; a SIGKILL mid-append leaves at most
// one torn final line, which the reader tolerates.
//
// Resume contract (--resume <journal>): completed configurations are
// replayed verbatim -- same status, attempts, backoff, value and captured
// log text -- so a resumed sweep's final report is byte-identical to an
// uninterrupted one. Doubles round-trip exactly (std::to_chars shortest
// form), which is what makes byte-identity possible at all.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace altis::resilience {

/// One metric series captured from a configuration's ResultDatabase (used
/// by altis_run, whose report aggregates per-trial values; the fig sweeps
/// only need `value`).
struct journal_series {
    std::string test;
    std::string atts;
    std::string unit;
    std::vector<double> values;
};

/// One completed configuration. `status` uses the fault::outcome labels
/// ("ok", "retried", "failed", "skipped") plus the supervisor's
/// "deadline" and "quarantined".
struct journal_entry {
    std::string config;
    std::string status = "ok";
    int attempts = 1;
    double backoff_ms = 0.0;
    std::string error;
    /// The configuration's scalar result (simulated ms or a speedup),
    /// absent for failed/quarantined entries.
    std::optional<double> value;
    /// Exact stdout lines the configuration printed (altis_run's progress
    /// lines), replayed verbatim on resume.
    std::string log;
    std::vector<journal_series> results;
};

/// Serialize one entry as a single JSON line (no trailing newline).
[[nodiscard]] std::string to_line(const journal_entry& e);
/// Parse one journal line; nullopt for torn/garbage lines.
[[nodiscard]] std::optional<journal_entry> parse_line(const std::string& line);

/// Append-only fsync'd writer. Throws std::runtime_error when the path
/// cannot be created/opened.
class journal_writer {
public:
    /// `append` continues an existing journal (resume); otherwise the file
    /// is created fresh via temp+rename with a header naming `sweep`.
    journal_writer(std::string path, const std::string& sweep, bool append);
    ~journal_writer();
    journal_writer(const journal_writer&) = delete;
    journal_writer& operator=(const journal_writer&) = delete;

    /// Write + flush + fsync one entry; a crash after append() returns can
    /// lose nothing, a crash during it loses only this line.
    void append(const journal_entry& e);

    [[nodiscard]] const std::string& path() const { return path_; }

private:
    void write_line(const std::string& line);

    std::string path_;
    int fd_ = -1;
};

/// Parsed journal: the sweep it belongs to plus the completed entries in
/// append order (duplicates keep the first occurrence; a torn final line
/// is dropped).
struct journal_file {
    std::string sweep;
    std::vector<journal_entry> entries;
};

/// Reads `path`. Returns nullopt when the file does not exist (resume of a
/// never-started sweep degrades to a fresh run); throws std::runtime_error
/// on an unreadable file or a header naming a different sweep than
/// `expected_sweep` (resuming fig4 from a fig2 journal is a usage error).
[[nodiscard]] std::optional<journal_file> read_journal(
    const std::string& path, const std::string& expected_sweep);

}  // namespace altis::resilience
