#include "trace/options.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>

#include "trace/chrome_export.hpp"
#include "trace/profile.hpp"

namespace altis::trace {

void add_trace_options(OptionParser& opts) {
    const char* env = std::getenv("ALTIS_TRACE");
    opts.add_option("trace", env != nullptr ? env : "",
                    "write Chrome trace-event JSON to <file> "
                    "(default: $ALTIS_TRACE)");
    opts.add_flag("profile", "print the per-kernel profile after the run");
}

options options::from(const OptionParser& opts) {
    options o;
    o.trace_path = opts.get_string("trace");
    o.profile = opts.get_flag("profile");
    return o;
}

bool finish_session(session& s, const options& opt, double end_ns,
                    std::ostream& out, std::ostream& err,
                    const altis::metrics::session* metrics) {
    while (s.open_regions() > 0) s.end_region(end_ns);

    bool ok = true;
    if (!opt.trace_path.empty()) {
        std::ofstream f(opt.trace_path);
        if (!f) {
            err << "trace: cannot open " << opt.trace_path << " for writing\n";
            ok = false;
        } else {
            write_chrome_json(s, f, metrics);
            f.flush();
            if (!f) {
                err << "trace: failed writing " << opt.trace_path << "\n";
                ok = false;
            } else {
                out << "trace: wrote " << s.spans().size() << " spans to "
                    << opt.trace_path << "\n";
            }
        }
    }
    if (opt.profile) {
        const profile_report p = build_profile(s);
        out << "\n";
        render_profile(p, out);
        if (!opt.trace_path.empty()) {
            const std::string path = opt.trace_path + ".profile.json";
            std::ofstream f(path);
            if (!f) {
                err << "trace: cannot open " << path << " for writing\n";
                ok = false;
            } else {
                write_profile_json(p, f);
                f.flush();
                if (!f) {
                    err << "trace: failed writing " << path << "\n";
                    ok = false;
                } else {
                    out << "trace: wrote profile to " << path << "\n";
                }
            }
        }
    }
    return ok;
}

}  // namespace altis::trace
