# Empty compiler generated dependencies file for fig1_fdtd2d_decomposition.
# This may be replaced when dependencies are built.
