# Empty compiler generated dependencies file for altis_core.
# This may be replaced when dependencies are built.
