#include "trace/chrome_export.hpp"

#include <cstdint>
#include <map>
#include <ostream>
#include <set>

#include "metrics/export.hpp"
#include "metrics/session.hpp"

namespace altis::trace {
namespace {

void write_escaped(std::ostream& out, const std::string& s) {
    out << '"';
    for (char c : s) {
        switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\t': out << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
                } else {
                    out << c;
                }
        }
    }
    out << '"';
}

// Track ids: region spans get tid 0 (they envelop everything), the main
// sequential lane tid 1, dataflow lanes tid 2... Perfetto sorts by tid, so
// the containment hierarchy reads top-down.
int tid_for(const span& s) {
    if (s.kind == span_kind::region) return 0;
    return s.track + 1;
}

void write_event(std::ostream& out, const span& s) {
    out << "    {\"name\": ";
    write_escaped(out, s.name.empty() ? to_string(s.kind) : s.name);
    out << ", \"cat\": ";
    write_escaped(out, to_string(s.kind));
    // ts/dur are microseconds; simulated nanoseconds survive as fractions.
    out << ", \"ph\": \"X\", \"ts\": " << s.start_ns / 1e3
        << ", \"dur\": " << s.duration_ns() / 1e3
        << ", \"pid\": 1, \"tid\": " << tid_for(s);
    // Degraded spans get a color override so injections, retries and
    // cancellations jump out of the timeline without opening the args panel.
    if (s.status == span_status::failed)
        out << ", \"cname\": \"terrible\"";
    else if (s.status == span_status::retried)
        out << ", \"cname\": \"bad\"";
    else if (s.status == span_status::cancelled)
        out << ", \"cname\": \"black\"";
    else if (s.status == span_status::quarantined)
        out << ", \"cname\": \"grey\"";
    out << ", \"args\": {\"kind\": ";
    write_escaped(out, to_string(s.kind));
    if (s.status != span_status::ok) {
        out << ", \"status\": ";
        write_escaped(out, to_string(s.status));
    }
    if (s.kind == span_kind::kernel) {
        const span_counters& c = s.counters;
        out << ", \"invocations\": " << c.invocations
            << ", \"modeled_flops\": " << c.flops
            << ", \"modeled_bytes\": " << c.bytes
            << ", \"occupancy\": " << c.occupancy
            << ", \"divergence\": " << c.divergence
            << ", \"initiation_interval\": " << c.initiation_interval;
        if (s.duration_ns() > 0.0)
            out << ", \"modeled_gbs\": " << c.bytes / s.duration_ns()
                << ", \"modeled_gflops\": " << c.flops / s.duration_ns();
    }
    out << "}}";
}

}  // namespace

void write_chrome_json(const session& s, std::ostream& out,
                       const altis::metrics::session* metrics) {
    out << "{\n  \"displayTimeUnit\": \"ns\",\n";
    out << "  \"otherData\": {\"session\": ";
    write_escaped(out, s.name());
    if (s.device() != nullptr) {
        out << ", \"device\": ";
        write_escaped(out, s.device()->name);
    }
    out << "},\n  \"traceEvents\": [\n";

    bool first = true;
    // Name the tracks so the viewer labels lanes instead of showing bare
    // tids: metadata events are zero-cost and optional for parsers.
    std::set<int> tids;
    for (const auto& sp : s.spans()) tids.insert(tid_for(sp));
    for (int tid : tids) {
        if (!first) out << ",\n";
        first = false;
        const std::string label = tid == 0   ? "regions"
                                  : tid == 1 ? "timeline"
                                             : "dataflow lane " +
                                                   std::to_string(tid - 1);
        out << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
               "\"tid\": "
            << tid << ", \"args\": {\"name\": ";
        write_escaped(out, label);
        out << "}}";
    }
    for (const auto& sp : s.spans()) {
        if (!first) out << ",\n";
        first = false;
        write_event(out, sp);
    }
    // Perfetto flow arrows between dependent graph commands (out-of-order
    // queues): one "s"/"f" pair per resolved edge, anchored at the
    // producer's end and the consumer's start.
    struct flow_anchor {
        double ts_us;
        int tid;
    };
    std::map<std::uint64_t, flow_anchor> producers;
    for (const auto& sp : s.spans())
        if (sp.cmd != 0)
            producers[sp.cmd] = {sp.end_ns / 1e3, tid_for(sp)};
    std::uint64_t flow_id = 0;
    for (const auto& sp : s.spans()) {
        for (const std::uint64_t dep : sp.deps) {
            const auto it = producers.find(dep);
            if (it == producers.end()) continue;
            ++flow_id;
            out << ",\n    {\"name\": \"dep\", \"cat\": \"graph\", \"ph\": "
                   "\"s\", \"id\": "
                << flow_id << ", \"pid\": 1, \"tid\": " << it->second.tid
                << ", \"ts\": " << it->second.ts_us << "}";
            out << ",\n    {\"name\": \"dep\", \"cat\": \"graph\", \"ph\": "
                   "\"f\", \"bp\": \"e\", \"id\": "
                << flow_id << ", \"pid\": 1, \"tid\": " << tid_for(sp)
                << ", \"ts\": " << sp.start_ns / 1e3 << "}";
        }
    }
    if (metrics != nullptr)
        altis::metrics::write_chrome_counter_events(metrics->series(), out,
                                                    first);
    out << "\n  ]\n}\n";
}

}  // namespace altis::trace
