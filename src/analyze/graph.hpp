// Command-graph model for the altis::sanitize passes. The syclite queue
// records one node per command (kernel submission, host sync, PCIe transfer,
// USM alloc/free) while a recorder is active; the hazard/pipe/perf passes
// then analyse the finished graph. The types here are deliberately
// independent of the syclite headers so the passes (and their tests) can
// build graphs by hand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perf/device.hpp"
#include "perf/kernel_stats.hpp"

namespace altis::analyze {

/// Mirror of syclite::access_mode (kept separate so the analyzer does not
/// depend on the runtime headers it inspects).
enum class access { read, write, read_write, discard_write };

[[nodiscard]] constexpr bool reads(access a) {
    return a == access::read || a == access::read_write;
}
[[nodiscard]] constexpr bool writes(access a) {
    return a != access::read;
}

[[nodiscard]] inline const char* to_string(access a) {
    switch (a) {
        case access::read: return "read";
        case access::write: return "write";
        case access::read_write: return "read_write";
        case access::discard_write: return "discard_write";
    }
    return "?";
}

enum class mem_kind { buffer, usm };

/// One declared memory range a command touches: a buffer accessor request or
/// a `uses_usm` declaration. `base` is an identity, never dereferenced.
struct mem_access {
    const void* base = nullptr;
    std::size_t bytes = 0;
    access mode = access::read_write;
    mem_kind kind = mem_kind::buffer;
    /// Allocator generation of `base` at record time (usm_alloc/usm_free
    /// nodes; 0 when unknown). The altis::mem pool recycles addresses, so
    /// the generation is what keeps two logical allocations at the same
    /// base from collapsing onto one finding fingerprint.
    std::uint64_t generation = 0;

    [[nodiscard]] bool overlaps(const mem_access& o) const {
        const auto* a = static_cast<const char*>(base);
        const auto* b = static_cast<const char*>(o.base);
        return a < b + o.bytes && b < a + bytes;
    }
};

enum class pipe_dir { read, write };

/// One declared pipe endpoint of a dataflow kernel (handler::reads_pipe /
/// writes_pipe). Volumes describe the steady state: the kernel moves
/// `items_per_round` items per round, `rounds` times. The capacity check in
/// the pipe pass is SDF-style: a feedback cycle is feasible as long as at
/// least one of its pipes buffers a whole round.
struct pipe_endpoint {
    const void* pipe = nullptr;  ///< identity of the pipe object
    std::string name;
    std::size_t capacity = 0;
    pipe_dir dir = pipe_dir::read;
    double items_per_round = 0.0;  ///< 0: unknown/unspecified
    double rounds = 1.0;

    [[nodiscard]] double total_items() const {
        return items_per_round * rounds;
    }
};

enum class node_kind {
    kernel,        ///< one command-group submission
    wait,          ///< queue::wait()
    transfer_in,   ///< host -> device copy (copy_to_device)
    transfer_out,  ///< device -> host copy (copy_from_device)
    usm_alloc,
    usm_free,
};

[[nodiscard]] inline const char* to_string(node_kind k) {
    switch (k) {
        case node_kind::kernel: return "kernel";
        case node_kind::wait: return "wait";
        case node_kind::transfer_in: return "transfer_in";
        case node_kind::transfer_out: return "transfer_out";
        case node_kind::usm_alloc: return "usm_alloc";
        case node_kind::usm_free: return "usm_free";
    }
    return "?";
}

/// One command, in program order. Transfer nodes carry the copied range in
/// `accesses[0]`; alloc/free nodes carry the allocation there.
struct node {
    node_kind kind = node_kind::kernel;
    std::uint64_t cg = 0;  ///< command-group id (kernel nodes; 0 otherwise)
    std::string kernel;    ///< kernel name (kernel nodes)
    int queue = -1;        ///< recorder-assigned queue ordinal
    int group = -1;        ///< dataflow group id; -1 for sequential commands
    std::vector<mem_access> accesses;
    std::vector<pipe_endpoint> pipes;
    perf::kernel_stats stats;
    const perf::device_spec* device = nullptr;
    /// Shadow-store actor of this kernel submission (-1: none recorded);
    /// joins the node's declared ranges to its observed accesses (ALS-D1).
    int actor = -1;
    /// Analytic descriptor recorded by simulate_region (bench path): only
    /// the perf-lint rules apply -- there is no real command order, no
    /// buffers and no pipe identities behind it.
    bool simulated = false;
    /// Submitted to an out-of-order graph queue: command order in this log
    /// does not imply execution order, so program-order passes (ALS-H2's
    /// in-flight window) must skip it -- ordering is captured as real
    /// happens-before edges in the shadow store instead.
    bool ooo = false;
    /// Wait nodes on out-of-order queues: commands pending in the graph when
    /// the join was issued. 0 means the join had no incoming edges at all --
    /// the ALS-L5 redundant-wait hint keys off this, not off program order.
    std::size_t pending = 0;
};

struct command_graph {
    std::vector<node> nodes;

    [[nodiscard]] bool empty() const { return nodes.empty(); }
};

}  // namespace altis::analyze
