#include "core/result_database.hpp"

#include <gtest/gtest.h>

#include <cfloat>
#include <sstream>

namespace altis {
namespace {

TEST(ResultDatabase, AggregatesSamplesIntoOneSeries) {
    ResultDatabase db;
    db.add_result("kernel_time", "size=1", "ms", 2.0);
    db.add_result("kernel_time", "size=1", "ms", 4.0);
    db.add_result("kernel_time", "size=2", "ms", 8.0);
    ASSERT_EQ(db.results().size(), 2u);
    const Result* r = db.find("kernel_time", "size=1");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->values.size(), 2u);
}

TEST(ResultDatabase, Statistics) {
    Result r{"t", "a", "ms", {1.0, 2.0, 3.0, 4.0}};
    EXPECT_DOUBLE_EQ(r.min(), 1.0);
    EXPECT_DOUBLE_EQ(r.max(), 4.0);
    EXPECT_DOUBLE_EQ(r.mean(), 2.5);
    EXPECT_DOUBLE_EQ(r.median(), 2.5);
    EXPECT_NEAR(r.stddev(), 1.2909944487, 1e-9);
}

TEST(ResultDatabase, MedianOddCount) {
    Result r{"t", "a", "ms", {5.0, 1.0, 3.0}};
    EXPECT_DOUBLE_EQ(r.median(), 3.0);
}

TEST(ResultDatabase, FailuresExcludedFromStatsButCounted) {
    ResultDatabase db;
    db.add_result("t", "a", "ms", 10.0);
    db.add_failure("t", "a", "ms");
    const Result* r = db.find("t", "a");
    ASSERT_NE(r, nullptr);
    EXPECT_DOUBLE_EQ(r->mean(), 10.0);
    EXPECT_DOUBLE_EQ(r->error_fraction(), 0.5);
}

TEST(ResultDatabase, AllFailedSeriesReportsSentinel) {
    Result r{"t", "a", "ms", {Result::failure_sentinel()}};
    EXPECT_GE(r.mean(), FLT_MAX);
    EXPECT_DOUBLE_EQ(r.error_fraction(), 1.0);
}

TEST(ResultDatabase, GeomeanOverSeriesMeans) {
    ResultDatabase db;
    db.add_result("speedup", "app=a", "x", 2.0);
    db.add_result("speedup", "app=b", "x", 8.0);
    db.add_result("other", "app=a", "x", 100.0);
    EXPECT_NEAR(db.geomean("speedup"), 4.0, 1e-12);
}

TEST(ResultDatabase, GeomeanSkipsNonPositiveAndFailedSeries) {
    ResultDatabase db;
    db.add_result("speedup", "app=a", "x", 4.0);
    db.add_result("speedup", "app=bad", "x", 0.0);
    db.add_failure("speedup", "app=fail", "x");
    EXPECT_NEAR(db.geomean("speedup"), 4.0, 1e-12);
}

TEST(ResultDatabase, GeomeanEmptyIsZero) {
    ResultDatabase db;
    EXPECT_DOUBLE_EQ(db.geomean("absent"), 0.0);
}

TEST(ResultDatabase, CsvDumpContainsAllTrials) {
    ResultDatabase db;
    db.add_result("t", "a", "ms", 1.5);
    db.add_result("t", "a", "ms", 2.5);
    std::ostringstream os;
    db.dump_csv(os);
    EXPECT_NE(os.str().find("t,a,ms,1.5,2.5"), std::string::npos);
}

TEST(ResultDatabase, JsonDumpIsWellFormedAndEscaped) {
    ResultDatabase db;
    db.add_result("kernel \"time\"", "size=1", "ms", 1.5);
    db.add_result("kernel \"time\"", "size=1", "ms", 2.5);
    db.add_failure("kernel \"time\"", "size=1", "ms");
    std::ostringstream os;
    db.dump_json(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"values\": [1.5, 2.5, null]"), std::string::npos) << s;
    EXPECT_NE(s.find("\\\"time\\\""), std::string::npos);  // escaped quote
    EXPECT_NE(s.find("\"mean\": 2"), std::string::npos);
    EXPECT_EQ(s.front(), '[');
    EXPECT_EQ(s[s.size() - 2], ']');
}

TEST(ResultDatabase, JsonEmptyDatabase) {
    ResultDatabase db;
    std::ostringstream os;
    db.dump_json(os);
    EXPECT_EQ(os.str(), "[\n]\n");
}

TEST(ResultDatabase, SummaryTableHasHeaderAndRows) {
    ResultDatabase db;
    db.add_result("kernel_time", "size=1", "ms", 1.0);
    std::ostringstream os;
    db.dump_summary(os);
    EXPECT_NE(os.str().find("median"), std::string::npos);
    EXPECT_NE(os.str().find("kernel_time"), std::string::npos);
}

}  // namespace
}  // namespace altis
