// Inter-kernel pipes (Intel FPGA extension analogue). A pipe is a bounded
// blocking FIFO connecting two kernels of one dataflow group; the optimized
// KMeans design (paper Fig. 3) streams every point's mapping through a pipe
// instead of bouncing it off global memory.
//
// Divergence from Intel SYCL: Intel pipes are static program-scope classes
// (pipe<id, T, capacity>::write). syclite pipes are objects captured by
// reference, which keeps them testable; capacity semantics are identical.
//
// Deadlock watchdog: blocking read/write time out (constructor argument,
// $ALTIS_PIPE_TIMEOUT_MS, or 30 s by default) and throw pipe_deadlock with
// the pipe's name, capacity and occupancy. Inside a dataflow group the queue
// converts those into one structured dataflow_error naming every blocked
// kernel. An active fault plan (`pipe:<name>@N`) can stall the Nth matching
// pipe operation to exercise exactly that path.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/inject.hpp"

namespace syclite {

class pipe_deadlock : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Deadlock-timeout applied to pipes that do not pass one explicitly:
/// $ALTIS_PIPE_TIMEOUT_MS when set (and parseable), else 30000 ms. Read per
/// construction so tests can adjust the environment between pipes.
[[nodiscard]] inline std::chrono::milliseconds default_pipe_timeout() {
    if (const char* env = std::getenv("ALTIS_PIPE_TIMEOUT_MS")) {
        char* end = nullptr;
        const long ms = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && ms > 0)
            return std::chrono::milliseconds(ms);
    }
    return std::chrono::milliseconds(30000);
}

template <typename T>
class pipe {
public:
    explicit pipe(std::size_t capacity = 64, std::string name = "pipe",
                  std::chrono::milliseconds timeout = default_pipe_timeout())
        : capacity_(capacity),
          name_(std::move(name)),
          timeout_(timeout),
          ring_(capacity) {
        if (capacity == 0) throw std::invalid_argument("pipe capacity must be > 0");
        if (timeout <= std::chrono::milliseconds::zero())
            throw std::invalid_argument("pipe timeout must be > 0");
    }

    pipe(const pipe&) = delete;
    pipe& operator=(const pipe&) = delete;

    /// Blocking write; throws pipe_deadlock if the consumer never drains
    /// (guards against kernels mistakenly run outside a dataflow group).
    void write(const T& value) {
        maybe_injected_stall("write");
        std::unique_lock lock(mutex_);
        if (!not_full_.wait_for(lock, timeout_,
                                [&] { return count_ < capacity_; }))
            throw pipe_deadlock(deadlock_message("write"));
        ring_[(head_ + count_) % capacity_] = value;
        ++count_;
        not_empty_.notify_one();
    }

    /// Blocking read; throws pipe_deadlock if no producer ever writes.
    T read() {
        maybe_injected_stall("read");
        std::unique_lock lock(mutex_);
        if (!not_empty_.wait_for(lock, timeout_,
                                 [&] { return count_ > 0; }))
            throw pipe_deadlock(deadlock_message("read"));
        T value = ring_[head_];
        head_ = (head_ + 1) % capacity_;
        --count_;
        not_full_.notify_one();
        return value;
    }

    [[nodiscard]] bool try_write(const T& value) {
        std::lock_guard lock(mutex_);
        if (count_ == capacity_) return false;
        ring_[(head_ + count_) % capacity_] = value;
        ++count_;
        not_empty_.notify_one();
        return true;
    }

    [[nodiscard]] bool try_read(T& value) {
        std::lock_guard lock(mutex_);
        if (count_ == 0) return false;
        value = ring_[head_];
        head_ = (head_ + 1) % capacity_;
        --count_;
        not_full_.notify_one();
        return true;
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::chrono::milliseconds timeout() const { return timeout_; }
    /// Elements currently buffered (racy under concurrency; for reporting).
    [[nodiscard]] std::size_t occupancy() const {
        std::lock_guard lock(mutex_);
        return count_;
    }

private:
    std::string deadlock_message(const char* op) const {
        return "pipe '" + name_ + "' " + op + " timed out after " +
               std::to_string(timeout_.count()) + " ms (capacity " +
               std::to_string(capacity_) + ", occupancy " +
               std::to_string(count_) + "/" + std::to_string(capacity_) +
               ") -- are both kernels running in a dataflow group?";
    }

    /// An injected stall behaves as if the peer kernel never made progress:
    /// this operation blocks for the full watchdog timeout, then collapses
    /// through the ordinary deadlock path.
    void maybe_injected_stall(const char* op) {
        if (!altis::fault::should_stall_pipe(name_)) return;
        std::unique_lock lock(mutex_);
        stall_cv_.wait_for(lock, timeout_, [] { return false; });
        throw pipe_deadlock("[injected stall] " + deadlock_message(op));
    }

    std::size_t capacity_;
    std::string name_;
    std::chrono::milliseconds timeout_;
    std::vector<T> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    mutable std::mutex mutex_;
    std::condition_variable not_full_, not_empty_, stall_cv_;
};

}  // namespace syclite
