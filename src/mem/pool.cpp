#include "mem/pool.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <mutex>
#include <new>

#include "mem/size_class.hpp"
#include "metrics/instruments.hpp"
#include "metrics/registry.hpp"

namespace altis::mem {

namespace {

// Block origin magics. A block's header keeps its magic for its whole
// lifetime except while parked in a cache (kMagicFreed), which is what lets
// deallocate() route frees to the path that allocated -- and lets debug
// builds catch double frees and foreign pointers instead of corrupting a
// free list.
constexpr std::uint32_t kMagicPooled = 0xA17150ACu;
constexpr std::uint32_t kMagicSystem = 0xA1715051u;
constexpr std::uint32_t kMagicFreed = 0xDEADA175u;

constexpr std::uint32_t kFlagFresh = 1u;  ///< never recycled yet
constexpr std::uint32_t kFlagLarge = 2u;  ///< cls indexes the large classes

/// 64 bytes in front of every payload, keeping the payload itself 64-byte
/// aligned. `next` links the block through magazine shelves, central free
/// lists and the reuse cache while it is parked.
struct alignas(kAlignment) block_header {
    std::uint32_t magic = 0;
    std::uint32_t cls = 0;
    std::uint32_t flags = 0;
    std::uint32_t pad = 0;
    std::uint64_t payload = 0;  ///< usable bytes behind the header
    std::uint64_t generation = 0;
    block_header* next = nullptr;
};
static_assert(sizeof(block_header) == kAlignment,
              "header must preserve payload alignment");

[[nodiscard]] void* payload_of(block_header* h) { return h + 1; }
[[nodiscard]] block_header* header_of(void* p) {
    return static_cast<block_header*>(p) - 1;
}
[[nodiscard]] const block_header* header_of(const void* p) {
    return static_cast<const block_header*>(p) - 1;
}

/// Lock-free LIFO. Push links under a CAS loop (safe: only the new head's
/// next is written); consumers take the *whole* list with one exchange, so
/// no pop ever dereferences a node another thread may concurrently pop --
/// the construction has no ABA window by design.
class free_list {
public:
    void push_chain(block_header* first, block_header* last) {
        block_header* h = head_.load(std::memory_order_relaxed);
        do {
            last->next = h;
        } while (!head_.compare_exchange_weak(h, first,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
    }
    void push(block_header* b) { push_chain(b, b); }

    [[nodiscard]] block_header* pop_all() {
        return head_.exchange(nullptr, std::memory_order_acquire);
    }

private:
    alignas(64) std::atomic<block_header*> head_{nullptr};
};

/// Per-thread magazine shelf capacity: deeper for tiny classes (the churny
/// ones), shallow for 64 KiB blocks so one idle thread cannot strand
/// megabytes.
[[nodiscard]] constexpr unsigned mag_cap(unsigned cls) {
    const std::size_t per = 32768 / class_size(cls);
    return per < 4 ? 4u : (per > 32 ? 32u : static_cast<unsigned>(per));
}

constexpr std::size_t kSlabBytes = 256 * 1024;
constexpr std::int64_t kReuseCacheCapBytes = 256ll * 1024 * 1024;

std::atomic<std::uint64_t> g_generation{0};  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

class central;
central& instance();

/// Thread-local cache: one singly-linked shelf per small class. No atomics
/// on push/pop; blocks migrate between threads only through the central
/// free lists. The destructor flushes every shelf, so short-lived threads
/// (pool workers, dataflow kernels) return their cache when they exit.
struct magazine {
    struct shelf {
        block_header* top = nullptr;
        unsigned count = 0;
    };
    shelf shelves[kSmallClasses];

    ~magazine();
};

class central {
public:
    central() {
        // Re-seed the level gauges after every registry reset: the pool's
        // caches survive across metrics sessions, so a session must start
        // from the true resident level or draining a pre-session cache
        // would drive the gauge negative.
        altis::metrics::registry::instance().add_reset_hook([this] {
            namespace mi = altis::metrics::instruments;
            mi::mem_magazine_blocks().add(
                magazine_blocks_.load(std::memory_order_relaxed));
            mi::mem_reuse_cache_bytes().add(
                reuse_cache_bytes_.load(std::memory_order_relaxed));
        });
    }

    void* alloc_small(std::size_t bytes, magazine& mag) {
        const unsigned cls = size_to_class(bytes);
        magazine::shelf& sh = mag.shelves[cls];
        block_header* h = sh.top;
        if (h != nullptr) {
            sh.top = h->next;
            --sh.count;
            note_magazine_blocks(-1);
            note_serve(h, /*from_magazine=*/true);
        } else {
            h = refill(cls, sh);
        }
        return hand_out(h);
    }

    void free_small(block_header* h, magazine& mag) {
        const unsigned cls = h->cls;
        take_back(h);
        magazine::shelf& sh = mag.shelves[cls];
        h->next = sh.top;
        sh.top = h;
        ++sh.count;
        note_magazine_blocks(+1);
        const unsigned cap = mag_cap(cls);
        if (sh.count > cap) unload_half(cls, sh);
    }

    void* alloc_large(std::size_t bytes) {
        const unsigned lc = large_class(bytes);
        const std::size_t sz = large_class_size(lc);
        block_header* h = reuse_cache_[lc].pop_all();
        if (h != nullptr) {
            if (h->next != nullptr) {
                block_header* first = h->next;
                block_header* last = first;
                while (last->next != nullptr) last = last->next;
                reuse_cache_[lc].push_chain(first, last);
            }
            reuse_cache_bytes_.fetch_sub(static_cast<std::int64_t>(sz),
                                         std::memory_order_relaxed);
            if (altis::metrics::collecting())
                altis::metrics::instruments::mem_reuse_cache_bytes().sub(
                    static_cast<std::int64_t>(sz));
            reuse_hits_.fetch_add(1, std::memory_order_relaxed);
            note_serve(h, /*from_magazine=*/false, /*count_hit=*/false);
        } else {
            h = os_alloc(sz, kFlagLarge | kFlagFresh, lc);
            note_serve(h, /*from_magazine=*/false, /*count_hit=*/false);
        }
        return hand_out(h);
    }

    void free_large(block_header* h) {
        const std::size_t sz = h->payload;
        take_back(h);
        const std::int64_t now =
            reuse_cache_bytes_.fetch_add(static_cast<std::int64_t>(sz),
                                         std::memory_order_relaxed) +
            static_cast<std::int64_t>(sz);
        if (now > kReuseCacheCapBytes) {
            reuse_cache_bytes_.fetch_sub(static_cast<std::int64_t>(sz),
                                         std::memory_order_relaxed);
            ::operator delete(h, std::align_val_t{kAlignment});
            return;
        }
        if (altis::metrics::collecting())
            altis::metrics::instruments::mem_reuse_cache_bytes().add(
                static_cast<std::int64_t>(sz));
        reuse_cache_[h->cls].push(h);
    }

    void* alloc_system(std::size_t bytes) {
        block_header* h = os_alloc(bytes, 0, 0);
        h->magic = kMagicFreed;  // hand_out flips it; os_alloc leaves freed
        void* p = hand_out(h);
        header_of(p)->magic = kMagicSystem;
        return p;
    }

    void free_system(block_header* h) {
        take_back(h);
        ::operator delete(h, std::align_val_t{kAlignment});
    }

    void flush(magazine& mag) {
        for (unsigned cls = 0; cls < kSmallClasses; ++cls) {
            magazine::shelf& sh = mag.shelves[cls];
            if (sh.top == nullptr) continue;
            block_header* last = sh.top;
            while (last->next != nullptr) last = last->next;
            depot_[cls].push_chain(sh.top, last);
            note_magazine_blocks(-static_cast<std::int64_t>(sh.count));
            sh.top = nullptr;
            sh.count = 0;
        }
    }

    void trim() {
        for (unsigned lc = 0; lc < kLargeClasses; ++lc) {
            block_header* h = reuse_cache_[lc].pop_all();
            while (h != nullptr) {
                block_header* next = h->next;
                const auto sz = static_cast<std::int64_t>(h->payload);
                reuse_cache_bytes_.fetch_sub(sz, std::memory_order_relaxed);
                if (altis::metrics::collecting())
                    altis::metrics::instruments::mem_reuse_cache_bytes().sub(
                        sz);
                ::operator delete(h, std::align_val_t{kAlignment});
                h = next;
            }
        }
    }

    [[nodiscard]] pool_stats snapshot() const {
        pool_stats s;
        s.magazine_hits = magazine_hits_.load(std::memory_order_relaxed);
        s.central_hits = central_hits_.load(std::memory_order_relaxed);
        s.reuse_hits = reuse_hits_.load(std::memory_order_relaxed);
        s.fresh_allocs = fresh_allocs_.load(std::memory_order_relaxed);
        s.recycled_bytes = recycled_bytes_.load(std::memory_order_relaxed);
        s.magazine_blocks = magazine_blocks_.load(std::memory_order_relaxed);
        s.reuse_cache_bytes =
            reuse_cache_bytes_.load(std::memory_order_relaxed);
        s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
        s.live_blocks = live_blocks_.load(std::memory_order_relaxed);
        return s;
    }

private:
    /// Stamps the block live and hands its payload out. Hit/miss accounting
    /// keys off kFlagFresh: a block that never round-tripped through a free
    /// is a miss no matter which cache it sat in.
    void* hand_out(block_header* h) {
        h->magic = kMagicPooled;
        h->generation =
            g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
        live_bytes_.fetch_add(static_cast<std::int64_t>(h->payload),
                              std::memory_order_relaxed);
        live_blocks_.fetch_add(1, std::memory_order_relaxed);
        return payload_of(h);
    }

    void take_back(block_header* h) {
        assert(h->magic == kMagicPooled || h->magic == kMagicSystem);
        h->magic = kMagicFreed;
        live_bytes_.fetch_sub(static_cast<std::int64_t>(h->payload),
                              std::memory_order_relaxed);
        live_blocks_.fetch_sub(1, std::memory_order_relaxed);
    }

    void note_serve(block_header* h, bool from_magazine,
                    bool count_hit = true) {
        const bool metered = altis::metrics::collecting();
        namespace mi = altis::metrics::instruments;
        if ((h->flags & kFlagFresh) != 0u) {
            h->flags &= ~kFlagFresh;
            fresh_allocs_.fetch_add(1, std::memory_order_relaxed);
            if (metered) mi::mem_pool_misses().add();
            return;
        }
        if (count_hit) {
            if (from_magazine)
                magazine_hits_.fetch_add(1, std::memory_order_relaxed);
            else
                central_hits_.fetch_add(1, std::memory_order_relaxed);
        }
        recycled_bytes_.fetch_add(h->payload, std::memory_order_relaxed);
        if (metered) {
            mi::mem_pool_hits().add();
            mi::mem_recycled_bytes().add(h->payload);
        }
    }

    void note_magazine_blocks(std::int64_t delta) {
        magazine_blocks_.fetch_add(delta, std::memory_order_relaxed);
        if (altis::metrics::collecting())
            altis::metrics::instruments::mem_magazine_blocks().add(delta);
    }

    /// Refills an empty shelf: adopt the central free list's whole chain
    /// (the common, lock-free case), else carve fresh blocks from a slab.
    block_header* refill(unsigned cls, magazine::shelf& sh) {
        block_header* chain = depot_[cls].pop_all();
        if (chain != nullptr) {
            block_header* take = chain;
            chain = chain->next;
            const unsigned keep = mag_cap(cls);
            while (chain != nullptr && sh.count < keep) {
                block_header* b = chain;
                chain = chain->next;
                b->next = sh.top;
                sh.top = b;
                ++sh.count;
            }
            note_magazine_blocks(static_cast<std::int64_t>(sh.count));
            if (chain != nullptr) {
                block_header* last = chain;
                while (last->next != nullptr) last = last->next;
                depot_[cls].push_chain(chain, last);
            }
            note_serve(take, /*from_magazine=*/false);
            return take;
        }
        return carve(cls, sh);
    }

    /// Carves a batch of blocks out of the slab cursor (mutex-guarded; cold
    /// path). The first block is returned, the rest stock the shelf.
    block_header* carve(unsigned cls, magazine::shelf& sh) {
        const std::size_t stride = sizeof(block_header) + class_size(cls);
        block_header* first = nullptr;
        unsigned stocked = 0;
        {
            std::lock_guard lock(slab_mutex_);
            if (slab_left_ < stride) {
                slab_cursor_ = static_cast<char*>(::operator new(
                    kSlabBytes, std::align_val_t{kAlignment}));
                slab_left_ = kSlabBytes;
            }
            unsigned batch = mag_cap(cls);
            while (batch > 0 && slab_left_ >= stride) {
                auto* h = new (slab_cursor_) block_header;
                slab_cursor_ += stride;
                slab_left_ -= stride;
                h->magic = kMagicFreed;
                h->cls = cls;
                h->flags = kFlagFresh;
                h->payload = class_size(cls);
                if (first == nullptr) {
                    first = h;
                } else {
                    h->next = sh.top;
                    sh.top = h;
                    ++sh.count;
                    ++stocked;
                }
                --batch;
            }
        }
        note_magazine_blocks(stocked);
        note_serve(first, /*from_magazine=*/false);
        return first;
    }

    void unload_half(unsigned cls, magazine::shelf& sh) {
        const unsigned move = sh.count / 2;
        block_header* first = sh.top;
        block_header* last = first;
        for (unsigned i = 1; i < move; ++i) last = last->next;
        sh.top = last->next;
        sh.count -= move;
        last->next = nullptr;
        depot_[cls].push_chain(first, last);
        note_magazine_blocks(-static_cast<std::int64_t>(move));
    }

    [[nodiscard]] static block_header* os_alloc(std::size_t payload,
                                                std::uint32_t flags,
                                                unsigned cls) {
        auto* h = new (::operator new(sizeof(block_header) + payload,
                                      std::align_val_t{kAlignment}))
            block_header;
        h->magic = kMagicFreed;
        h->cls = cls;
        h->flags = flags;
        h->payload = payload;
        return h;
    }

    free_list depot_[kSmallClasses];
    free_list reuse_cache_[kLargeClasses];

    std::mutex slab_mutex_;
    char* slab_cursor_ = nullptr;
    std::size_t slab_left_ = 0;

    std::atomic<std::uint64_t> magazine_hits_{0};
    std::atomic<std::uint64_t> central_hits_{0};
    std::atomic<std::uint64_t> reuse_hits_{0};
    std::atomic<std::uint64_t> fresh_allocs_{0};
    std::atomic<std::uint64_t> recycled_bytes_{0};
    std::atomic<std::int64_t> magazine_blocks_{0};
    std::atomic<std::int64_t> reuse_cache_bytes_{0};
    std::atomic<std::int64_t> live_bytes_{0};
    std::atomic<std::int64_t> live_blocks_{0};
};

/// Leaked singleton: thread-local magazines flush into the central lists at
/// thread exit, which may run after static destructors would have torn a
/// normal static down.
central& instance() {
    static central* c = new central;  // NOLINT(cppcoreguidelines-owning-memory)
    return *c;
}

magazine::~magazine() { instance().flush(*this); }

magazine& tl_magazine() {
    thread_local magazine mag;
    return mag;
}

[[nodiscard]] int backend_from_env() {
    const char* v = std::getenv("ALTIS_MEM_POOL");
    return (v != nullptr && v[0] == '0' && v[1] == '\0') ? 1 : 0;
}

std::atomic<int>& backend_flag() {
    static std::atomic<int> b{backend_from_env()};
    return b;
}

}  // namespace

void set_backend(backend b) {
    backend_flag().store(b == backend::system ? 1 : 0,
                         std::memory_order_relaxed);
}

backend current_backend() {
    return backend_flag().load(std::memory_order_relaxed) == 1
               ? backend::system
               : backend::pooled;
}

void* allocate(std::size_t bytes) {
    central& c = instance();
    if (current_backend() == backend::system) return c.alloc_system(bytes);
    if (bytes <= kSmallMax) return c.alloc_small(bytes, tl_magazine());
    return c.alloc_large(bytes);
}

void deallocate(void* p) noexcept {
    if (p == nullptr) return;
    block_header* h = header_of(p);
    central& c = instance();
    switch (h->magic) {
        case kMagicPooled:
            if ((h->flags & kFlagLarge) != 0u)
                c.free_large(h);
            else
                c.free_small(h, tl_magazine());
            return;
        case kMagicSystem:
            c.free_system(h);
            return;
        case kMagicFreed:
            assert(false && "altis::mem: double free");
            return;
        default:
            // Foreign pointer or trampled header: freeing through either
            // path could corrupt a cache, so release builds leak the block.
            assert(false && "altis::mem: free of a pointer the pool never "
                            "allocated (header magic mismatch)");
            return;
    }
}

std::size_t usable_size(const void* p) {
    if (p == nullptr) return 0;
    const block_header* h = header_of(p);
    assert(h->magic == kMagicPooled || h->magic == kMagicSystem);
    return h->payload;
}

std::uint64_t generation_of(const void* p) {
    if (p == nullptr) return 0;
    const block_header* h = header_of(p);
    assert(h->magic == kMagicPooled || h->magic == kMagicSystem);
    return h->generation;
}

pool_stats stats() { return instance().snapshot(); }

void trim() { instance().trim(); }

void flush_thread_magazines() { instance().flush(tl_magazine()); }

}  // namespace altis::mem
