// Host microbenchmarks of the application algorithm kernels themselves
// (google-benchmark, real wall-clock). These measure this repository's
// functional substrate -- the code every verification run executes -- as
// opposed to the modeled device times the figure benches report.
#include <benchmark/benchmark.h>

#include "apps/cfd/cfd.hpp"
#include "apps/dwt2d/dwt2d.hpp"
#include "apps/kmeans/kmeans.hpp"
#include "apps/lavamd/lavamd.hpp"
#include "apps/mandelbrot/mandelbrot.hpp"
#include "apps/nw/nw.hpp"
#include "apps/where/where.hpp"

namespace {

namespace apps = altis::apps;

void BM_MandelbrotGolden(benchmark::State& state) {
    apps::mandelbrot::params p;
    p.width = p.height = static_cast<int>(state.range(0));
    std::vector<std::uint16_t> out(p.pixels());
    for (auto _ : state) {
        apps::mandelbrot::golden(p, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(p.pixels()));
}
BENCHMARK(BM_MandelbrotGolden)->Arg(128)->Arg(256)->Arg(512);

void BM_NwGolden(benchmark::State& state) {
    apps::nw::params p;
    p.n = static_cast<std::size_t>(state.range(0));
    const auto w = apps::nw::make_workload(p);
    for (auto _ : state) {
        auto score = apps::nw::golden(p, w);
        benchmark::DoNotOptimize(score.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(p.n * p.n));
}
BENCHMARK(BM_NwGolden)->Arg(256)->Arg(1024)->Arg(2048);

void BM_KmeansIteration(benchmark::State& state) {
    apps::kmeans::params p;
    p.n = static_cast<std::size_t>(state.range(0));
    p.d = 16;
    p.k = 8;
    p.iterations = 1;
    const auto data = apps::kmeans::make_dataset(p);
    for (auto _ : state) {
        auto c = apps::kmeans::golden(p, data);
        benchmark::DoNotOptimize(c.centers.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(p.n));
}
BENCHMARK(BM_KmeansIteration)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_LavamdGolden(benchmark::State& state) {
    apps::lavamd::params p;
    p.boxes1d = static_cast<std::size_t>(state.range(0));
    const auto particles = apps::lavamd::make_particles(p);
    for (auto _ : state) {
        auto forces = apps::lavamd::golden(p, particles);
        benchmark::DoNotOptimize(forces.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(p.particles()));
}
BENCHMARK(BM_LavamdGolden)->Arg(2)->Arg(4)->Arg(6);

void BM_Dwt2dForward(benchmark::State& state) {
    apps::dwt2d::params p;
    p.width = p.height = static_cast<std::size_t>(state.range(0));
    const auto original = apps::dwt2d::make_image(p);
    for (auto _ : state) {
        auto img = original;
        apps::dwt2d::golden(p, img);
        benchmark::DoNotOptimize(img.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(p.pixels()));
}
BENCHMARK(BM_Dwt2dForward)->Arg(256)->Arg(512)->Arg(1024);

void BM_Dwt2dRoundTrip(benchmark::State& state) {
    apps::dwt2d::params p;
    p.width = p.height = static_cast<std::size_t>(state.range(0));
    const auto original = apps::dwt2d::make_image(p);
    for (auto _ : state) {
        auto img = original;
        apps::dwt2d::golden(p, img);
        apps::dwt2d::inverse(p, img);
        benchmark::DoNotOptimize(img.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(p.pixels()));
}
BENCHMARK(BM_Dwt2dRoundTrip)->Arg(256)->Arg(512);

void BM_CfdIteration(benchmark::State& state) {
    apps::cfd::params p;
    p.nx = p.ny = static_cast<std::size_t>(state.range(0));
    p.iterations = 1;
    const auto mesh = apps::cfd::make_mesh(p);
    auto vars = apps::cfd::initial_variables<float>(p);
    for (auto _ : state) {
        apps::cfd::golden(p, mesh, vars);
        benchmark::DoNotOptimize(vars.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(p.nel()));
}
BENCHMARK(BM_CfdIteration)->Arg(64)->Arg(128)->Arg(256);

void BM_WhereGolden(benchmark::State& state) {
    apps::where::params p;
    p.n = static_cast<std::size_t>(state.range(0));
    const auto table = apps::where::make_table(p);
    for (auto _ : state) {
        auto out = apps::where::golden(p, table);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(p.n));
}
BENCHMARK(BM_WhereGolden)->Range(1 << 14, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
