// SYCL-conformant asynchronous error machinery. Real SYCL queues take an
// async_handler receiving a sycl::exception_list; errors raised by device
// work surface at wait()/synchronization boundaries instead of escaping from
// worker threads. syclite mirrors that contract: without a handler the
// first error is rethrown at the boundary (the historical behaviour), with a
// handler the full list is delivered in submission order and the queue stays
// usable.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace syclite {

/// Analogue of sycl::exception_list: an iterable batch of exception_ptrs in
/// the order the failing commands were submitted.
class exception_list {
public:
    using value_type = std::exception_ptr;
    using container = std::vector<value_type>;
    using const_iterator = container::const_iterator;

    exception_list() = default;
    explicit exception_list(container errors) : errors_(std::move(errors)) {}

    [[nodiscard]] std::size_t size() const { return errors_.size(); }
    [[nodiscard]] bool empty() const { return errors_.empty(); }
    [[nodiscard]] const_iterator begin() const { return errors_.begin(); }
    [[nodiscard]] const_iterator end() const { return errors_.end(); }
    [[nodiscard]] const value_type& operator[](std::size_t i) const {
        return errors_[i];
    }

    void push_back(value_type e) { errors_.push_back(std::move(e)); }

private:
    container errors_;
};

/// Analogue of sycl::async_handler.
using async_handler = std::function<void(exception_list)>;

/// Structured report of a wedged dataflow group: the watchdog (pipe
/// deadlock-timeouts in the worker kernels) converts per-kernel
/// pipe_deadlock throws into one dataflow_error naming every kernel that was
/// blocked on a pipe when the group collapsed.
class dataflow_error : public std::runtime_error {
public:
    dataflow_error(const std::string& message,
                   std::vector<std::string> blocked_kernels)
        : std::runtime_error(message),
          blocked_kernels_(std::move(blocked_kernels)) {}

    /// Names of the kernels that were blocked on pipe operations.
    [[nodiscard]] const std::vector<std::string>& blocked_kernels() const {
        return blocked_kernels_;
    }

private:
    std::vector<std::string> blocked_kernels_;
};

}  // namespace syclite
