// Catalog and report plumbing of altis::sanitize.
#include "analyze/findings.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/mini_json.hpp"

namespace altis::analyze {
namespace {

TEST(RuleCatalog, IdsAreUniqueAndWellFormed) {
    std::set<std::string> ids;
    for (const rule_info& r : rule_catalog()) {
        EXPECT_TRUE(ids.insert(r.id).second) << r.id;
        EXPECT_EQ(std::string(r.id).rfind("ALS-", 0), 0u) << r.id;
        EXPECT_NE(std::string(r.title), "");
        EXPECT_NE(std::string(r.fix_hint), "");
        EXPECT_NE(std::string(r.paper_ref), "");
    }
    // The documented rule pack: 4 hazard, 3 pipe, 6 lint, 3 race-engine
    // rules plus the baseline bookkeeping rule.
    EXPECT_EQ(rule_catalog().size(), 17u);
}

TEST(RuleCatalog, LookupFillsFindings) {
    const finding f = make_finding("ALS-H1", "k1 & k2", "0x0+64B", "conflict");
    EXPECT_EQ(f.rule, "ALS-H1");
    EXPECT_EQ(f.sev, severity::error);
    EXPECT_EQ(f.fix_hint, std::string(rule("ALS-H1").fix_hint));
    EXPECT_EQ(f.paper_ref, std::string(rule("ALS-H1").paper_ref));
    EXPECT_THROW((void)rule("ALS-X9"), std::out_of_range);
}

TEST(RuleCatalog, SeveritiesMatchTheSpec) {
    for (const char* id : {"ALS-H1", "ALS-H2", "ALS-H3", "ALS-H4", "ALS-P1",
                           "ALS-P2", "ALS-L6", "ALS-R1", "ALS-D1"})
        EXPECT_EQ(rule(id).sev, severity::error) << id;
    for (const char* id : {"ALS-P3", "ALS-L1", "ALS-L2", "ALS-L3", "ALS-L4",
                           "ALS-L5", "ALS-R2"})
        EXPECT_EQ(rule(id).sev, severity::warning) << id;
    EXPECT_EQ(rule("ALS-B1").sev, severity::note);
}

TEST(Report, DedupsExactRepeats) {
    report r;
    r.add(make_finding("ALS-L5", "wait", "queue #0", "redundant"));
    r.add(make_finding("ALS-L5", "wait", "queue #0", "redundant"));
    r.add(make_finding("ALS-L5", "wait", "queue #1", "redundant"));
    EXPECT_EQ(r.size(), 2u);
}

TEST(Report, CountAtLeastOrdersSeverities) {
    report r;
    r.add(make_finding("ALS-L1", "k", "", "pow"));       // warning
    r.add(make_finding("ALS-H4", "k", "p", "freed"));    // error
    EXPECT_EQ(r.count_at_least(severity::note), 2u);
    EXPECT_EQ(r.count_at_least(severity::warning), 2u);
    EXPECT_EQ(r.count_at_least(severity::error), 1u);
}

TEST(Report, TextRenderingMentionsRuleAndCount) {
    report r;
    std::ostringstream empty;
    r.render_text(empty);
    EXPECT_NE(empty.str().find("no findings"), std::string::npos);

    r.add(make_finding("ALS-H2", "kern", "0x1+4B", "host read race"));
    std::ostringstream out;
    r.render_text(out);
    EXPECT_NE(out.str().find("ALS-H2"), std::string::npos);
    EXPECT_NE(out.str().find("1 finding (1 errors)"), std::string::npos);
}

TEST(Report, JsonRoundTripsThroughStrictParser) {
    report r;
    r.add(make_finding("ALS-P1", "reader", "pipe \"in\"", "no writer"));
    r.add(make_finding("ALS-L1", "pf_propagate", "", "pow(a,2)"));
    std::ostringstream out;
    r.render_json(out);

    const auto doc = mini_json::parse(out.str());
    const auto& findings = doc.at("findings").as_array();
    ASSERT_EQ(findings.size(), 2u);
    // Sorted by (rule, object, kernel): ALS-L1 before ALS-P1.
    const auto& f1 = findings[1];
    EXPECT_EQ(f1.at("rule").as_string(), "ALS-P1");
    EXPECT_EQ(f1.at("severity").as_string(), "error");
    EXPECT_EQ(f1.at("object").as_string(), "pipe \"in\"");
    for (const char* key :
         {"rule", "severity", "kernel", "object", "message", "fix_hint",
          "paper_ref", "fingerprint"})
        EXPECT_TRUE(f1.has(key)) << key;
}

TEST(Report, EmptyJsonIsAValidDocument) {
    report r;
    std::ostringstream out;
    r.render_json(out);
    const auto doc = mini_json::parse(out.str());
    EXPECT_EQ(doc.at("findings").as_array().size(), 0u);
}

TEST(Report, FingerprintsAreStableAndPointerBlind) {
    const finding a = make_finding("ALS-R1", "k1, k2", "mem#0[0..64)",
                                   "write/write overlap at 0x7f34a2000010");
    const finding b = make_finding("ALS-R1", "k1, k2", "mem#0[0..64)",
                                   "write/write overlap at 0x55d100aa0010");
    const finding c = make_finding("ALS-R1", "k1, k2", "mem#0[0..32)",
                                   "write/write overlap at 0x7f34a2000010");
    EXPECT_EQ(fingerprint(a).size(), 16u);
    // Raw addresses are canonicalized away: re-running under ASLR must not
    // change the identity of a finding...
    EXPECT_EQ(fingerprint(a), fingerprint(b));
    // ...but any real field difference must.
    EXPECT_NE(fingerprint(a), fingerprint(c));
}

TEST(Report, MergeKeepsDedupAcrossReports) {
    report a;
    a.add(make_finding("ALS-L4", "scan_onedpl", "", "library scan"));
    report b;
    b.add(make_finding("ALS-L4", "scan_onedpl", "", "library scan"));
    b.add(make_finding("ALS-L2", "fdtd_step", "", "simd mismatch"));
    a.merge(b);
    EXPECT_EQ(a.size(), 2u);
}

}  // namespace
}  // namespace altis::analyze
