// Quickstart: the smallest end-to-end tour of the library.
//  1. Write a custom kernel against the syclite API and run it on two
//     simulated devices (functional execution + modeled timing).
//  2. Run one of the Altis Level-2 applications (KMeans) through the public
//     per-app API with verification.
//
// Build & run:   ./examples/quickstart
#include <iostream>
#include <numeric>
#include <vector>

#include "apps/kmeans/kmeans.hpp"
#include "core/registry.hpp"
#include "sycl/syclite.hpp"

namespace {

// A SAXPY kernel with its structure descriptor: 2 FP ops and 12 bytes of
// global traffic per element. The descriptor is what the device models time.
altis::perf::kernel_stats saxpy_stats() {
    altis::perf::kernel_stats k;
    k.name = "saxpy";
    k.fp32_ops = 2.0;
    k.bytes_read = 8.0;
    k.bytes_written = 4.0;
    k.static_fp32_ops = 2;
    k.accessor_args = 2;
    return k;
}

void run_saxpy_on(const std::string& device_name) {
    constexpr std::size_t kN = 1 << 20;
    std::vector<float> x(kN), y(kN, 1.0f);
    std::iota(x.begin(), x.end(), 0.0f);

    sl::queue q(device_name);
    sl::buffer<float> bx(x.data(), kN);
    sl::buffer<float> by(y.data(), kN, sl::use_host_ptr);

    const sl::event e = q.submit([&](sl::handler& h) {
        auto ax = h.get_access(bx, sl::access_mode::read);
        auto ay = h.get_access(by, sl::access_mode::read_write);
        h.parallel_for(sl::nd_range<1>(sl::range<1>(kN), sl::range<1>(256)),
                       saxpy_stats(), [=](sl::nd_item<1> it) {
                           const std::size_t i = it.get_global_id(0);
                           ay[i] = 2.0f * ax[i] + ay[i];
                       });
    });
    q.wait();

    std::cout << "  " << device_name << ": simulated kernel time "
              << e.duration_ns() / 1e3 << " us\n";
}

}  // namespace

int main() {
    std::cout << "== 1. Custom SAXPY kernel on two simulated devices ==\n";
    run_saxpy_on("rtx_2080");
    run_saxpy_on("stratix_10");

    std::cout << "\n== 2. KMeans through the application API ==\n";
    altis::RunConfig cfg;
    cfg.size = 1;
    cfg.device = "stratix_10";
    cfg.variant = altis::Variant::fpga_opt;  // the Fig. 3 dataflow design
    const auto r = altis::apps::kmeans::run(cfg);
    std::cout << "  kmeans fpga_opt on stratix_10 (size 1): verified, "
              << "kernel " << r.kernel_ms << " ms, total " << r.total_ms
              << " ms (simulated)\n";

    cfg.variant = altis::Variant::fpga_base;
    const auto base = altis::apps::kmeans::run(cfg);
    std::cout << "  kmeans fpga_base                      : verified, "
              << "kernel " << base.kernel_ms << " ms -- pipes win "
              << base.total_ms / r.total_ms << "x\n";
    return 0;
}
