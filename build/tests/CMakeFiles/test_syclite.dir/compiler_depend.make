# Empty compiler generated dependencies file for test_syclite.
# This may be replaced when dependencies are built.
