// Command-group handler: collects accessor requests and exactly one kernel
// launch per submission, mirroring sycl::handler. The kernel's structure
// descriptor (perf::kernel_stats) rides along with the launch; work geometry
// is always overwritten from the launch range so descriptors cannot disagree
// with the code.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "analyze/graph.hpp"
#include "analyze/recorder.hpp"
#include "perf/kernel_stats.hpp"
#include "sycl/buffer.hpp"
#include "sycl/event.hpp"
#include "sycl/range.hpp"
#include "sycl/small_function.hpp"
#include "sycl/thread_pool.hpp"

namespace syclite {

namespace perf = altis::perf;
namespace analyze = altis::analyze;

class queue;

namespace detail {

[[nodiscard]] constexpr analyze::access to_analyze(access_mode m) {
    switch (m) {
        case access_mode::read: return analyze::access::read;
        case access_mode::write: return analyze::access::write;
        case access_mode::read_write: return analyze::access::read_write;
        case access_mode::discard_write: return analyze::access::discard_write;
    }
    return analyze::access::read_write;
}

}  // namespace detail

class handler {
public:
    /// One depends_on edge: the command id plus the scheduler that issued it
    /// (ids alone are ambiguous across queues).
    struct graph_dep {
        std::uint64_t id = 0;
        std::shared_ptr<graph::scheduler_state> state;
    };

    template <typename T>
    [[nodiscard]] accessor<T> get_access(buffer<T>& buf, access_mode mode) {
        accessor<T> acc = buf.access(mode);
        if (recorder_ != nullptr || track_ranges_) {
            accesses_.push_back({buf.host_data(), buf.byte_size(),
                                 detail::to_analyze(mode),
                                 analyze::mem_kind::buffer});
            if (recorder_ != nullptr) acc.bind_lifetime(cg_.token);
        }
        return acc;
    }

    /// Explicit scheduling edge on a previously submitted command
    /// (sycl::handler::depends_on). Events from in-order queues -- and
    /// default-constructed events -- carry no command id and are ignored:
    /// such commands are complete before the caller could hold the event.
    /// The producing scheduler's state rides along with the id: command ids
    /// are per-scheduler counters, so an event from a *different* queue's
    /// graph cannot become an edge in this queue's graph -- the submitting
    /// queue instead waits on the foreign node (see queue::finish_submit_graph).
    void depends_on(const event& e) {
        if (e.command_id() != 0)
            deps_.push_back({e.command_id(), e.graph_state()});
    }

    /// Declares a pipe endpoint for the sanitizer's topology/capacity lint
    /// (ALS-P1..P3): this kernel reads (writes) `items_per_round` items per
    /// steady-state round, `rounds` times. Declarations are free when no
    /// sanitize session is active and never affect execution or timing.
    template <typename PipeT>
    void reads_pipe(const PipeT& p, double items_per_round = 0.0,
                    double rounds = 1.0) {
        declare_pipe(&p, p.name(), p.capacity(), analyze::pipe_dir::read,
                     items_per_round, rounds);
    }
    template <typename PipeT>
    void writes_pipe(const PipeT& p, double items_per_round = 0.0,
                     double rounds = 1.0) {
        declare_pipe(&p, p.name(), p.capacity(), analyze::pipe_dir::write,
                     items_per_round, rounds);
    }

    /// Declares a USM range the kernel dereferences (the sanitizer's
    /// use-after-free lint, ALS-H4). USM pointers are raw, so the runtime
    /// cannot observe them the way it observes accessors -- kernels using
    /// USM declare their ranges here.
    void uses_usm(const void* ptr, std::size_t bytes, access_mode mode) {
        if (recorder_ == nullptr && !track_ranges_) return;
        accesses_.push_back(
            {ptr, bytes, detail::to_analyze(mode), analyze::mem_kind::usm});
    }

    /// FPGA Single-Task kernel (Sec. 5.3): f takes no arguments. Dispatched
    /// as a 1-item pool job: parallel_for(1) always runs serially on the
    /// calling thread, so execution is unchanged, but the kernel's run time
    /// lands in the pool's busy-time telemetry like every other kernel form.
    template <typename F>
    void single_task(perf::kernel_stats stats, F&& f) {
        stats.form = perf::kernel_form::single_task;
        stats.global_items = 1.0;
        stats.wg_size = 1.0;
        set_kernel(std::move(stats),
                   [fn = std::forward<F>(f)](thread_pool& pool) {
                       pool.parallel_for(1, [&](std::size_t) { fn(); });
                   });
    }

    /// Opaque library call (oneDPL/oneMKL analogue): executes `f()` on the
    /// host and charges the descriptor *unmodified* -- library internals
    /// (multi-pass structure, work geometry) are described by the stats, not
    /// by how we invoke them functionally.
    template <typename F>
    void library_call(perf::kernel_stats stats, F&& f) {
        set_kernel(std::move(stats),
                   [fn = std::forward<F>(f)](thread_pool&) { fn(); });
    }

    /// Classic ND-Range kernel: f(nd_item<Dims>). Work-groups run in
    /// parallel on the pool; items within a group run sequentially (no
    /// mid-kernel barriers -- use parallel_for_work_group for those).
    /// Iteration within a group is div-free: nested per-dimension loops
    /// carry local and global coordinates incrementally instead of
    /// delinearizing each item's linear index (one compare+increment per
    /// item; the only div/mod left is the per-*group* delinearization for
    /// 2D/3D, amortized over the group's items).
    template <int Dims, typename F>
    void parallel_for(nd_range<Dims> ndr, perf::kernel_stats stats, F&& f) {
        stats.form = perf::kernel_form::nd_range;
        stats.global_items = static_cast<double>(ndr.get_global_range().size());
        stats.wg_size = static_cast<double>(ndr.get_local_range().size());
        set_kernel(std::move(stats), [ndr, fn = std::forward<F>(f)](
                                         thread_pool& pool) {
            const range<Dims> grange = ndr.get_group_range();
            const range<Dims> lrange = ndr.get_local_range();
            const range<Dims> global = ndr.get_global_range();
            pool.parallel_for(grange.size(), [&](std::size_t group_lin) {
                if constexpr (Dims == 1) {
                    const id<1> gid(group_lin);
                    const std::size_t base = group_lin * lrange[0];
                    for (std::size_t l0 = 0; l0 < lrange[0]; ++l0)
                        fn(nd_item<1>(id<1>(base + l0), id<1>(l0), gid,
                                      global, lrange));
                } else if constexpr (Dims == 2) {
                    const id<2> gid = detail::delinearize(group_lin, grange);
                    const std::size_t b0 = gid[0] * lrange[0];
                    const std::size_t b1 = gid[1] * lrange[1];
                    for (std::size_t l0 = 0; l0 < lrange[0]; ++l0)
                        for (std::size_t l1 = 0; l1 < lrange[1]; ++l1)
                            fn(nd_item<2>(id<2>(b0 + l0, b1 + l1),
                                          id<2>(l0, l1), gid, global, lrange));
                } else {
                    const id<3> gid = detail::delinearize(group_lin, grange);
                    const std::size_t b0 = gid[0] * lrange[0];
                    const std::size_t b1 = gid[1] * lrange[1];
                    const std::size_t b2 = gid[2] * lrange[2];
                    for (std::size_t l0 = 0; l0 < lrange[0]; ++l0)
                        for (std::size_t l1 = 0; l1 < lrange[1]; ++l1)
                            for (std::size_t l2 = 0; l2 < lrange[2]; ++l2)
                                fn(nd_item<3>(id<3>(b0 + l0, b1 + l1, b2 + l2),
                                              id<3>(l0, l1, l2), gid, global,
                                              lrange));
                }
            });
        });
    }

    /// Hierarchical kernel: f(group<Dims>). Phases created with
    /// group::parallel_for_work_item are separated by implicit barriers.
    template <int Dims, typename F>
    void parallel_for_work_group(range<Dims> groups, range<Dims> local,
                                 perf::kernel_stats stats, F&& f) {
        stats.form = perf::kernel_form::nd_range;
        stats.global_items = static_cast<double>(groups.size() * local.size());
        stats.wg_size = static_cast<double>(local.size());
        set_kernel(std::move(stats), [groups, local, fn = std::forward<F>(f)](
                                         thread_pool& pool) {
            range<Dims> global;
            for (int d = 0; d < Dims; ++d) global[d] = groups[d] * local[d];
            pool.parallel_for(groups.size(), [&](std::size_t group_lin) {
                const id<Dims> gid = detail::delinearize(group_lin, groups);
                fn(group<Dims>(gid, groups, local, global));
            });
        });
    }

    [[nodiscard]] bool has_kernel() const { return has_kernel_; }
    [[nodiscard]] const perf::kernel_stats& stats() const { return stats_; }

private:
    friend class queue;

    /// Called by queue::submit before the command-group function runs when a
    /// sanitize recorder is active: opens a command group (assigning the
    /// accessor-lifetime token) so everything the group requests is captured.
    /// `track_ranges` additionally records accessor/USM byte ranges even with
    /// no recorder -- out-of-order queues need them for implied graph edges.
    void begin_capture(analyze::recorder* rec, bool track_ranges = false) {
        recorder_ = rec;
        track_ranges_ = track_ranges;
        if (recorder_ != nullptr) cg_ = recorder_->begin_command_group();
    }

    void declare_pipe(const void* pipe, std::string name, std::size_t capacity,
                      analyze::pipe_dir dir, double items_per_round,
                      double rounds) {
        if (recorder_ == nullptr) return;
        pipes_.push_back({pipe, std::move(name), capacity, dir,
                          items_per_round, rounds});
    }

    /// exec is a small_function: typical kernel thunks live in its inline
    /// buffer, so accepting a submission does not allocate.
    void set_kernel(perf::kernel_stats stats,
                    detail::small_function<void(thread_pool&)> exec) {
        if (has_kernel_)
            throw std::logic_error(
                "handler: a command group may contain only one kernel launch");
        stats_ = std::move(stats);
        exec_ = std::move(exec);
        has_kernel_ = true;
    }

    perf::kernel_stats stats_;
    detail::small_function<void(thread_pool&)> exec_;
    bool has_kernel_ = false;

    analyze::recorder* recorder_ = nullptr;
    bool track_ranges_ = false;
    analyze::recorder::cg_handle cg_;
    std::vector<analyze::mem_access> accesses_;
    std::vector<analyze::pipe_endpoint> pipes_;
    std::vector<graph_dep> deps_;
};

}  // namespace syclite
