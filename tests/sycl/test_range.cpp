#include "sycl/range.hpp"

#include <gtest/gtest.h>

namespace syclite {
namespace {

TEST(Range, SizeIsProductOfDims) {
    EXPECT_EQ(range<1>(7).size(), 7u);
    EXPECT_EQ((range<2>(3, 4).size()), 12u);
    EXPECT_EQ((range<3>(2, 3, 4).size()), 24u);
}

TEST(Range, IndexAccess) {
    range<3> r(2, 3, 4);
    EXPECT_EQ(r[0], 2u);
    EXPECT_EQ(r[1], 3u);
    EXPECT_EQ(r[2], 4u);
    r[1] = 9;
    EXPECT_EQ(r.get(1), 9u);
}

TEST(NdRange, GroupRangeDividesGlobalByLocal) {
    nd_range<2> ndr(range<2>(8, 12), range<2>(4, 3));
    EXPECT_EQ(ndr.get_group_range()[0], 2u);
    EXPECT_EQ(ndr.get_group_range()[1], 4u);
}

TEST(NdRange, NonDivisibleThrows) {
    EXPECT_THROW((nd_range<1>(range<1>(10), range<1>(3))), std::invalid_argument);
    EXPECT_THROW((nd_range<1>(range<1>(10), range<1>(0))), std::invalid_argument);
}

TEST(Linearize, RowMajorDim0Slowest) {
    range<2> r(3, 5);
    EXPECT_EQ(detail::linearize(id<2>(0, 0), r), 0u);
    EXPECT_EQ(detail::linearize(id<2>(0, 4), r), 4u);
    EXPECT_EQ(detail::linearize(id<2>(1, 0), r), 5u);
    EXPECT_EQ(detail::linearize(id<2>(2, 3), r), 13u);
}

TEST(Linearize, DelinearizeRoundTrips) {
    range<3> r(3, 4, 5);
    for (std::size_t lin = 0; lin < r.size(); ++lin) {
        const id<3> i = detail::delinearize(lin, r);
        EXPECT_EQ(detail::linearize(i, r), lin);
    }
}

TEST(NdItem, IdsAndRangesConsistent) {
    nd_item<1> it(id<1>(37), id<1>(5), id<1>(2), range<1>(64), range<1>(16));
    EXPECT_EQ(it.get_global_id(0), 37u);
    EXPECT_EQ(it.get_local_id(0), 5u);
    EXPECT_EQ(it.get_group(0), 2u);
    EXPECT_EQ(it.get_global_range(0), 64u);
    EXPECT_EQ(it.get_local_range(0), 16u);
    EXPECT_EQ(it.get_global_linear_id(), 37u);
    EXPECT_EQ(it.get_local_linear_id(), 5u);
}

TEST(NdItem, BarrierThrowsWithGuidance) {
    nd_item<1> it(id<1>(0), id<1>(0), id<1>(0), range<1>(1), range<1>(1));
    EXPECT_THROW(it.barrier(), std::logic_error);
}

TEST(Group, ParallelForWorkItemCoversGroupExactlyOnce) {
    group<2> g(id<2>(1, 2), range<2>(2, 4), range<2>(3, 2), range<2>(6, 8));
    std::vector<int> seen(6 * 8, 0);
    g.parallel_for_work_item([&](h_item<2> it) {
        seen[it.get_global_id(0) * 8 + it.get_global_id(1)]++;
    });
    int covered = 0;
    for (int v : seen) covered += v;
    EXPECT_EQ(covered, 6);  // one group's worth of items
    // Items fall in the group's tile: rows 3..5, cols 4..5.
    for (std::size_t rr = 0; rr < 6; ++rr)
        for (std::size_t cc = 0; cc < 8; ++cc) {
            const bool inside = rr >= 3 && rr < 6 && cc >= 4 && cc < 6;
            EXPECT_EQ(seen[rr * 8 + cc], inside ? 1 : 0);
        }
}

}  // namespace
}  // namespace syclite
