// Umbrella header for the syclite runtime -- the SYCL-like programming model
// this reproduction's applications are written against. See DESIGN.md Sec. 2
// for how syclite substitutes for a real oneAPI/DPC++ installation.
#pragma once

#include "sycl/buffer.hpp"         // IWYU pragma: export
#include "sycl/compute_units.hpp"     // IWYU pragma: export
#include "sycl/error.hpp"             // IWYU pragma: export
#include "sycl/group_algorithms.hpp"  // IWYU pragma: export
#include "sycl/handler.hpp"  // IWYU pragma: export
#include "sycl/pipe.hpp"     // IWYU pragma: export
#include "sycl/queue.hpp"    // IWYU pragma: export
#include "sycl/range.hpp"    // IWYU pragma: export
#include "sycl/usm.hpp"      // IWYU pragma: export

namespace sl = syclite;
