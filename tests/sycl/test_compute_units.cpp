// The replication helpers of Sec. 5.1: SubmitComputeUnits (Single-Task, from
// Intel's samples) and the custom ND-Range distribution helper the paper's
// authors wrote themselves.
#include "sycl/syclite.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace syclite {
namespace {

perf::kernel_stats st_stats(double trips) {
    perf::kernel_stats k;
    k.name = "cu";
    perf::loop_info loop;
    loop.trip_count = trips;
    k.loops.push_back(loop);
    return k;
}

TEST(ComputeUnits, EveryUnitRunsOnceWithItsIndex) {
    queue q("stratix_10");
    std::vector<std::atomic<int>> hits(6);
    const auto events = submit_compute_units(q, 6, st_stats(1000), [&](int unit) {
        hits[static_cast<std::size_t>(unit)].fetch_add(1);
    });
    EXPECT_EQ(events.size(), 6u);
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ComputeUnits, ReplicationShortensModeledTime) {
    queue q1("stratix_10"), q4("stratix_10");
    const auto e1 = submit_compute_units(q1, 1, st_stats(1e7), [](int) {});
    const auto e4 = submit_compute_units(q4, 4, st_stats(1e7), [](int) {});
    // Wall kernel time of the group: 4 units split the trips.
    EXPECT_NEAR(q1.kernel_ns() / q4.kernel_ns(), 4.0, 0.2);
    EXPECT_EQ(e4.size(), 4u);
}

TEST(ComputeUnits, RejectsNonPositiveUnits) {
    queue q("agilex");
    EXPECT_THROW(submit_compute_units(q, 0, st_stats(10), [](int) {}),
                 std::invalid_argument);
}

TEST(NdRangeUnits, CoversTheFullRangeExactlyOnce) {
    queue q("stratix_10");
    constexpr std::size_t kN = 64 * 100;
    buffer<int> out(kN);
    std::fill_n(out.host_data(), kN, 0);
    perf::kernel_stats k;
    k.name = "ndcu";
    k.int_ops = 2;
    submit_nd_range_units(
        q, 3, nd_range<1>(range<1>(kN), range<1>(64)), k,
        [acc = out.access(access_mode::read_write)](nd_item<1> it, int unit) {
            acc[it.get_global_id(0)] += 1 + unit * 1000;
        });
    // Every element written exactly once; unit partition is a contiguous
    // block partition of the group space.
    int last_unit = 0;
    for (std::size_t i = 0; i < kN; ++i) {
        const int v = out.host_data()[i];
        const int unit = (v - 1) / 1000;
        EXPECT_EQ((v - 1) % 1000, 0) << i;
        EXPECT_GE(unit, last_unit);
        last_unit = std::max(last_unit, unit);
    }
    EXPECT_EQ(last_unit, 2);
}

TEST(NdRangeUnits, MoreUnitsThanGroupsIsFine) {
    queue q("agilex");
    constexpr std::size_t kN = 64 * 2;  // two groups, four units
    buffer<int> out(kN);
    std::fill_n(out.host_data(), kN, 0);
    perf::kernel_stats k;
    k.name = "ndcu";
    submit_nd_range_units(
        q, 4, nd_range<1>(range<1>(kN), range<1>(64)), k,
        [acc = out.access(access_mode::read_write)](nd_item<1> it, int) {
            acc[it.get_global_id(0)] += 1;
        });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out.host_data()[i], 1);
}

}  // namespace
}  // namespace syclite
