file(REMOVE_RECURSE
  "CMakeFiles/altis_run.dir/altis_run.cpp.o"
  "CMakeFiles/altis_run.dir/altis_run.cpp.o.d"
  "altis_run"
  "altis_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altis_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
