// Ablation: host-side microbenchmarks of the syclite runtime itself --
// kernel dispatch cost, hierarchical work-group execution, pipe throughput
// and thread-pool scaling. These measure the *functional* substrate (real
// wall-clock), not the simulated device times.
#include <benchmark/benchmark.h>

#include "sycl/syclite.hpp"

namespace {

using namespace syclite;

perf::kernel_stats tiny_stats() {
    perf::kernel_stats k;
    k.name = "tiny";
    k.fp32_ops = 1;
    return k;
}

void BM_SubmitDispatch(benchmark::State& state) {
    queue q("xeon_6128");
    buffer<int> b(1);
    for (auto _ : state) {
        q.submit([&](handler& h) {
            auto acc = h.get_access(b, access_mode::read_write);
            h.single_task(tiny_stats(), [=]() { acc[0] += 1; });
        });
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitDispatch);

void BM_ParallelFor(benchmark::State& state) {
    queue q("xeon_6128");
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    buffer<float> b(n);
    for (auto _ : state) {
        q.submit([&](handler& h) {
            auto acc = h.get_access(b, access_mode::read_write);
            h.parallel_for(nd_range<1>(range<1>(n), range<1>(256)), tiny_stats(),
                           [=](nd_item<1> it) {
                               acc[it.get_global_id(0)] += 1.0f;
                           });
        });
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelFor)->Range(1 << 10, 1 << 18);

void BM_HierarchicalTwoPhase(benchmark::State& state) {
    queue q("xeon_6128");
    const std::size_t groups = static_cast<std::size_t>(state.range(0));
    buffer<float> b(groups * 64);
    for (auto _ : state) {
        q.submit([&](handler& h) {
            auto acc = h.get_access(b, access_mode::read_write);
            h.parallel_for_work_group(
                range<1>(groups), range<1>(64), tiny_stats(), [=](group<1> g) {
                    float tile[64];
                    g.parallel_for_work_item([&](h_item<1> it) {
                        tile[it.get_local_id(0)] =
                            acc[it.get_global_id(0)];
                    });
                    g.parallel_for_work_item([&](h_item<1> it) {
                        acc[it.get_global_id(0)] =
                            tile[63 - it.get_local_id(0)];
                    });
                });
        });
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 64);
}
BENCHMARK(BM_HierarchicalTwoPhase)->Range(16, 4096);

void BM_PipeThroughput(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        syclite::pipe<int> p(64);  // qualified: POSIX pipe() shadows the name
        queue q("stratix_10");
        const int n = static_cast<int>(state.range(0));
        state.ResumeTiming();
        q.begin_dataflow();
        q.submit([&](handler& h) {
            perf::kernel_stats k = tiny_stats();
            k.writes_pipe = true;
            h.single_task(k, [&p, n] {
                for (int i = 0; i < n; ++i) p.write(i);
            });
        });
        q.submit([&](handler& h) {
            perf::kernel_stats k = tiny_stats();
            k.reads_pipe = true;
            h.single_task(k, [&p, n] {
                long sum = 0;
                for (int i = 0; i < n; ++i) sum += p.read();
                benchmark::DoNotOptimize(sum);
            });
        });
        q.end_dataflow();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipeThroughput)->Range(1 << 10, 1 << 16);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
    thread_pool pool;
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<double> data(n, 1.0);
    for (auto _ : state) {
        pool.parallel_for(n, [&](std::size_t i) { data[i] *= 1.0000001; });
    }
    benchmark::DoNotOptimize(data.data());
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ThreadPoolParallelFor)->Range(1 << 10, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
