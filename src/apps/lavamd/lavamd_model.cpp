// Model descriptors for LavaMD: banked shared-memory inner loop, unrolled
// 30x on Stratix 10 / 16x on Agilex (Sec. 5.2 case 1, Sec. 5.5).
#include "apps/lavamd/lavamd.hpp"

#include <cmath>

namespace altis::apps::lavamd {
namespace detail {

perf::kernel_stats stats_boxes(const params& p, Variant v,
                               const perf::device_spec& dev) {
    perf::kernel_stats k;
    k.name = "lavamd_boxes";
    k.global_items = static_cast<double>(p.particles());
    k.wg_size = kParPerBox;
    // ~26 neighbour visits per interior box on average; use the exact count.
    const double n1 = static_cast<double>(p.boxes1d);
    const double neighbor_visits =
        std::pow(3.0 * n1 - 2.0, 3.0) / (n1 * n1 * n1);  // avg neighbours/box
    const double pairs = neighbor_visits * static_cast<double>(kParPerBox);
    k.fp32_ops = pairs * 16.0;
    k.sfu_ops = pairs;  // one exp per pair
    k.int_ops = pairs * 2.0;
    k.bytes_read = neighbor_visits * 16.0 / 4.0 + 16.0;  // rB loads amortized
    k.bytes_written = 16.0;
    k.barriers = neighbor_visits * 2.0;
    k.pattern = perf::local_pattern::banked;  // stride-1: banks/replicates
    k.local_arrays = 3;                       // rA, rB, acc
    k.local_mem_bytes = 3.0 * kParPerBox * 16.0;
    k.local_accesses = pairs;  // rB[j]; rA/acc live in registers
    k.dynamic_local_size = (v == Variant::sycl_base || v == Variant::fpga_base);
    k.static_fp32_ops = 16;
    k.static_int_ops = 26;
    k.static_branches = 6;
    k.accessor_args = 2;
    k.control_complexity = 2;
    if (v == Variant::fpga_opt) {
        // The 30x / 16x unroll of the neighbour-particle loop.
        k.unroll = dev.name != "stratix_10" ? 16 : 30;
        k.args_restrict = true;
    }
    return k;
}

}  // namespace detail

timed_region region(Variant v, const perf::device_spec& dev, int size) {
    const params p = params::preset(size);
    timed_region r;
    r.name = std::string("lavamd/") + to_string(v) + "/size" + std::to_string(size);
    r.include_setup = false;  // timed region excludes one-time setup (warm-up)
    r.transfer_bytes = static_cast<double>(p.particles()) * 16.0 * 2.0;
    r.transfer_calls = 2.0;
    r.syncs = 1.0;
    r.kernels.push_back({detail::stats_boxes(p, v, dev), 1.0});
    return r;
}

std::vector<perf::kernel_stats> fpga_design(const perf::device_spec& dev,
                                            int size) {
    return {detail::stats_boxes(params::preset(size), Variant::fpga_opt, dev)};
}

}  // namespace altis::apps::lavamd
