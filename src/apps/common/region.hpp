// Timed-region description and simulation. Each application variant builds a
// device-independent description of what its timed region does -- which
// kernels launch how many times, which kernels overlap in dataflow groups,
// how many bytes cross PCIe, how many host syncs occur -- from the *same*
// kernel_stats builders its functional path submits. Benches then simulate
// the region on any device/runtime, which is how figures for sizes that are
// infeasible to execute functionally in this environment are produced
// (DESIGN.md Sec. 4).
#pragma once

#include <string>
#include <vector>

#include "perf/device.hpp"
#include "perf/kernel_stats.hpp"
#include "perf/overhead.hpp"
#include "trace/session.hpp"

namespace altis::apps {

/// One sequential kernel slot: `stats` launched `count` times.
struct kernel_slot {
    perf::kernel_stats stats;
    double count = 1.0;
};

/// Kernels that run concurrently (connected by pipes / separate queues),
/// launched together `count` times.
struct dataflow_slot {
    std::vector<perf::kernel_stats> kernels;
    double count = 1.0;
};

struct timed_region {
    /// Label used for the region's top-level trace span.
    std::string name = "timed_region";
    std::vector<kernel_slot> kernels;
    std::vector<dataflow_slot> dataflow;
    double transfer_bytes = 0.0;  ///< total PCIe payload in the region
    double transfer_calls = 0.0;  ///< number of memcpy invocations
    double syncs = 1.0;           ///< host synchronizations
    bool include_setup = false;   ///< charge one-time runtime setup
    /// Library-internal non-kernel cost (temp-buffer allocations inside
    /// oneDPL calls, etc.), charged once per region.
    double extra_non_kernel_ns = 0.0;

    /// Whether the host timer around this region observes kernel completion.
    /// The original CUDA FDTD2D forgot its cudaDeviceSynchronize (paper
    /// Sec. 3.3) -- with this false, kernel time vanishes from the total.
    bool synchronized = true;

    [[nodiscard]] double total_launches() const;
    /// Every kernel in the region (for FPGA design Fmax / Table 3).
    [[nodiscard]] std::vector<perf::kernel_stats> all_kernels() const;
};

struct timing_estimate {
    double kernel_ns = 0.0;
    double non_kernel_ns = 0.0;
    [[nodiscard]] double total_ns() const { return kernel_ns + non_kernel_ns; }
    [[nodiscard]] double kernel_ms() const { return kernel_ns / 1e6; }
    [[nodiscard]] double non_kernel_ms() const { return non_kernel_ns / 1e6; }
    [[nodiscard]] double total_ms() const { return total_ns() / 1e6; }
};

/// Simulate the region on a device under a runtime. On FPGAs all kernels
/// share one bitstream: the design Fmax (min over kernels) clocks everything.
///
/// When a trace session is active (trace::session::current(), or an explicit
/// one via the overload) the simulation also emits spans: the region itself
/// as a top-level span, one aggregated kernel span per slot (`invocations` =
/// the slot's count), dataflow groups as an envelope plus per-kernel lanes,
/// and transfer/sync/setup/overhead spans for the non-kernel charges.
/// Successive simulations append after the session's last span, so one trace
/// file can hold a whole bench sweep.
[[nodiscard]] timing_estimate simulate_region(const timed_region& region,
                                              const perf::device_spec& dev,
                                              perf::runtime_kind rt);
[[nodiscard]] timing_estimate simulate_region(const timed_region& region,
                                              const perf::device_spec& dev,
                                              perf::runtime_kind rt,
                                              trace::session* trace);

}  // namespace altis::apps
