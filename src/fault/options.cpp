#include "fault/options.hpp"

#include <cmath>
#include <cstdlib>

namespace altis::fault {

void add_fault_options(OptionParser& opts) {
    opts.add_option("inject", "",
                    "fault-injection spec, e.g. 'alloc@2;pipe:map*@1;seed=7' "
                    "(default: $ALTIS_FAULT)");
    opts.add_flag("fail-fast",
                  "abort the sweep on the first unrecoverable failure");
    opts.add_option("retries", "3", "max attempts per configuration");
    opts.add_option("retry-backoff-ms", "25",
                    "base backoff before the first retry (doubles per retry)");
}

options options::from(const OptionParser& opts) {
    options o;
    o.spec = opts.get_string("inject");
    if (o.spec.empty()) {
        if (const char* env = std::getenv("ALTIS_FAULT")) o.spec = env;
    }
    o.fail_fast = opts.get_flag("fail-fast");
    // Range-check the resilience knobs up front: a negative or overflowing
    // value is a usage error (exit 2), not something to saturate or wrap
    // into undefined sweep behavior later.
    const std::int64_t retries = opts.get_int("retries");
    if (retries < 1 || retries > 1000000)
        throw OptionError("--retries must be in [1, 1000000], got: " +
                          opts.get_string("retries"));
    const double backoff = opts.get_double("retry-backoff-ms");
    if (!std::isfinite(backoff) || backoff < 0.0 || backoff > 1e9)
        throw OptionError(
            "--retry-backoff-ms must be a finite value in [0, 1e9], got: " +
            opts.get_string("retry-backoff-ms"));
    o.policy.max_attempts = static_cast<int>(retries);
    o.policy.backoff_base_ms = backoff;
    return o;
}

plan options::make_plan() const {
    return spec.empty() ? plan{} : plan::parse(spec);
}

}  // namespace altis::fault
