// Out-of-order command-graph scheduler: explicit event edges, accessor- and
// USM-implied edges, targeted event::wait() joins, deterministic simulated
// timelines, asynchronous error delivery at graph joins, and cancellation of
// queued-but-unstarted nodes. The randomized DAG stress runs the *same*
// seeded program through an in-order and an out-of-order queue (the latter
// on a real multi-worker pool) and requires byte-identical buffer contents;
// the sanitize determinism test requires byte-identical findings JSON across
// back-to-back out-of-order runs. The whole binary runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analyze/sanitize.hpp"
#include "fault/inject.hpp"
#include "metrics/instruments.hpp"
#include "metrics/session.hpp"
#include "resilience/cancel.hpp"
#include "sycl/syclite.hpp"

namespace syclite {
namespace {

perf::kernel_stats stats(const char* name) {
    perf::kernel_stats k;
    k.name = name;
    k.fp32_ops = 2.0;
    k.bytes_read = 4.0;
    k.bytes_written = 4.0;
    return k;
}

/// Overlap tests need modeled durations well above the per-submit launch
/// overhead (~15 us on the GPU models): a kernel shorter than the gap
/// between two submissions can never overlap its predecessor, because the
/// successor's submit timestamp is already past the predecessor's end.
/// ~1.3e9 modeled flops over 1<<16 items puts each kernel at O(100 us).
constexpr std::size_t kBig = std::size_t{1} << 16;

perf::kernel_stats heavy_stats(const char* name) {
    perf::kernel_stats k = stats(name);
    k.fp32_ops = 20000.0;
    return k;
}

// ---- timeline semantics ---------------------------------------------------

TEST(GraphSched, InOrderQueueEventsCarryNoGraphNode) {
    queue q("rtx_2080");  // default property: in_order
    EXPECT_TRUE(q.is_in_order());
    buffer<int> b(64);
    event e = q.submit([&](handler& h) {
        auto acc = h.get_access(b, access_mode::discard_write);
        h.parallel_for(nd_range<1>(range<1>(64), range<1>(64)), stats("k"),
                       [=](nd_item<1> it) { acc[it.get_global_id(0)] = 1; });
    });
    EXPECT_EQ(e.command_id(), 0u);
    e.wait();  // no-op, never blocks
    EXPECT_EQ(b.host_data()[0], 1);
}

TEST(GraphSched, IndependentKernelsOverlapInModeledTime) {
    queue q("rtx_2080", queue_property::out_of_order);
    EXPECT_FALSE(q.is_in_order());
    buffer<int> a(kBig), b(kBig);
    auto submit_into = [&](buffer<int>& dst, const char* name) {
        return q.submit([&](handler& h) {
            auto acc = h.get_access(dst, access_mode::discard_write);
            h.parallel_for(nd_range<1>(range<1>(kBig), range<1>(256)),
                           heavy_stats(name), [=](nd_item<1> it) {
                               acc[it.get_global_id(0)] = 2;
                           });
        });
    };
    event e1 = submit_into(a, "ka");
    event e2 = submit_into(b, "kb");
    // No conflicting accessors, no explicit edges: the scheduler places the
    // second kernel on its own lane, overlapping the first in modeled time.
    EXPECT_LT(e2.profiling_start_ns(), e1.profiling_end_ns());
    EXPECT_GT(e1.command_id(), 0u);
    EXPECT_GT(e2.command_id(), e1.command_id());
    q.wait();
    EXPECT_EQ(a.host_data()[255], 2);
    EXPECT_EQ(b.host_data()[255], 2);
}

TEST(GraphSched, AccessorConflictSerializesModeledTime) {
    queue q("rtx_2080", queue_property::out_of_order);
    buffer<int> b(128);
    auto bump = [&](const char* name) {
        return q.submit([&](handler& h) {
            auto acc = h.get_access(b, access_mode::read_write);
            h.parallel_for(nd_range<1>(range<1>(128), range<1>(64)),
                           stats(name), [=](nd_item<1> it) {
                               acc[it.get_global_id(0)] += 1;
                           });
        });
    };
    q.submit([&](handler& h) {
        auto acc = h.get_access(b, access_mode::discard_write);
        h.parallel_for(nd_range<1>(range<1>(128), range<1>(64)), stats("z"),
                       [=](nd_item<1> it) { acc[it.get_global_id(0)] = 0; });
    });
    event e1 = bump("inc1");
    event e2 = bump("inc2");
    // WAW/RAW on the same byte range: the implied edge serializes them even
    // on the out-of-order queue.
    EXPECT_GE(e2.profiling_start_ns(), e1.profiling_end_ns());
    q.wait();
    EXPECT_EQ(b.host_data()[0], 2);
}

TEST(GraphSched, DisjointUsmRangesOverlapOverlappingOnesDoNot) {
    queue q("rtx_2080", queue_property::out_of_order);
    int* p = malloc_device<int>(kBig, q);
    ASSERT_NE(p, nullptr);
    auto fill = [&](int* base, std::size_t n, const char* name) {
        return q.submit([&](handler& h) {
            h.uses_usm(base, n * sizeof(int), access_mode::write);
            h.parallel_for(nd_range<1>(range<1>(n), range<1>(256)),
                           heavy_stats(name), [=](nd_item<1> it) {
                               base[it.get_global_id(0)] = 1;
                           });
        });
    };
    event lo = fill(p, kBig / 2, "lo");
    event hi = fill(p + kBig / 2, kBig / 2, "hi");  // disjoint: overlaps lo
    event all = q.submit([&](handler& h) {  // overlaps both: after both
        h.uses_usm(p, kBig * sizeof(int), access_mode::read_write);
        h.parallel_for(nd_range<1>(range<1>(kBig), range<1>(256)),
                       heavy_stats("all"), [=](nd_item<1> it) {
                           p[it.get_global_id(0)] += 1;
                       });
    });
    EXPECT_LT(hi.profiling_start_ns(), lo.profiling_end_ns());
    EXPECT_GE(all.profiling_start_ns(), lo.profiling_end_ns());
    EXPECT_GE(all.profiling_start_ns(), hi.profiling_end_ns());
    q.wait();
    EXPECT_EQ(p[0], 2);
    EXPECT_EQ(p[kBig - 1], 2);
    usm_free(p, q);
}

TEST(GraphSched, TransfersGetTheirOwnSerialLane) {
    queue q("rtx_2080", queue_property::out_of_order);
    buffer<int> a(1024), b(1024);
    std::vector<int> ha(1024, 3), hb(1024, 4);
    event t1 = q.copy_to_device(a, ha.data());
    event t2 = q.copy_to_device(b, hb.data());
    // Independent transfers still serialize against each other (one modeled
    // PCIe lane), but both carry graph nodes.
    EXPECT_GT(t1.command_id(), 0u);
    EXPECT_GE(t2.profiling_start_ns(), t1.profiling_end_ns());
    q.wait();
    EXPECT_EQ(a.host_data()[0], 3);
    EXPECT_EQ(b.host_data()[0], 4);
}

TEST(GraphSched, KernelAccountingMatchesUnionOfOverlappingSpans) {
    queue q("rtx_2080", queue_property::out_of_order);
    buffer<int> a(kBig), b(kBig);
    auto submit_into = [&](buffer<int>& dst, const char* name) {
        return q.submit([&](handler& h) {
            auto acc = h.get_access(dst, access_mode::discard_write);
            h.parallel_for(nd_range<1>(range<1>(kBig), range<1>(256)),
                           heavy_stats(name), [=](nd_item<1> it) {
                               acc[it.get_global_id(0)] = 1;
                           });
        });
    };
    event e1 = submit_into(a, "ka");
    event e2 = submit_into(b, "kb");
    q.wait();
    // Overlapped spans fold in as their union, so total kernel time is less
    // than the serial sum, and the invariant kernel + non-kernel == total
    // still holds.
    const double serial_sum = e1.duration_ns() + e2.duration_ns();
    EXPECT_LT(q.kernel_ns(), serial_sum);
    EXPECT_GT(q.kernel_ns(), 0.0);
    EXPECT_NEAR(q.sim_now_ns(), q.kernel_ns() + q.non_kernel_ns(), 1e-6);
}

// ---- targeted joins and explicit edges ------------------------------------

TEST(GraphSched, EventWaitIsATargetedJoin) {
    queue q("rtx_2080", queue_property::out_of_order);
    buffer<int> a(64), b(64);
    std::atomic<int> b_ran{0};
    event e_a = q.submit([&](handler& h) {
        auto acc = h.get_access(a, access_mode::discard_write);
        h.parallel_for(nd_range<1>(range<1>(64), range<1>(64)), stats("ka"),
                       [=](nd_item<1> it) { acc[it.get_global_id(0)] = 7; });
    });
    q.submit([&](handler& h) {
        auto acc = h.get_access(b, access_mode::discard_write);
        h.parallel_for(nd_range<1>(range<1>(64), range<1>(64)), stats("kb"),
                       [=, &b_ran](nd_item<1> it) {
                           b_ran.store(1, std::memory_order_relaxed);
                           acc[it.get_global_id(0)] = 8;
                       });
    });
    e_a.wait();  // joins ka (and only what ka depends on -- nothing)
    EXPECT_EQ(a.host_data()[0], 7);
    EXPECT_EQ(b_ran.load(std::memory_order_relaxed), 0)
        << "event::wait() drained an unrelated command";
    q.wait();
    EXPECT_EQ(b.host_data()[0], 8);
}

TEST(GraphSched, DependsOnOrdersIndependentKernelsUnderRealConcurrency) {
    thread_pool pool(4);
    for (int round = 0; round < 20; ++round) {
        queue q("rtx_2080", queue_property::out_of_order);
        q.set_graph_pool(&pool);
        std::atomic<int> stage{0};
        bool saw_first = false;
        event e1 = q.submit([&](handler& h) {
            h.library_call(stats("first"), [&] {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                stage.store(1, std::memory_order_release);
            });
        });
        q.submit([&](handler& h) {
            h.depends_on(e1);  // no shared accessors: the only edge
            h.library_call(stats("second"), [&] {
                saw_first = stage.load(std::memory_order_acquire) == 1;
            });
        });
        q.wait();
        ASSERT_TRUE(saw_first) << "depends_on edge was not honored (round "
                               << round << ")";
    }
}

TEST(GraphSched, DependsOnAcrossQueuesJoinsForeignGraph) {
    // Regression: command ids are per-scheduler counters, so resolving a
    // foreign event's id against this queue's graph aliases an unrelated
    // node -- here producer and consumer are both node 1 of their own
    // schedulers, so the dep used to be self-filtered and the edge silently
    // vanished. Cross-queue depends_on now joins the foreign node at submit.
    thread_pool pool(4);
    for (int round = 0; round < 10; ++round) {
        queue q1("rtx_2080", queue_property::out_of_order);
        queue q2("rtx_2080", queue_property::out_of_order);
        q1.set_graph_pool(&pool);
        q2.set_graph_pool(&pool);
        std::atomic<int> stage{0};
        bool saw_first = false;
        event e1 = q1.submit([&](handler& h) {
            h.library_call(stats("producer"), [&] {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                stage.store(1, std::memory_order_release);
            });
        });
        q2.submit([&](handler& h) {
            h.depends_on(e1);  // foreign graph: must join q1's node
            h.library_call(stats("consumer"), [&] {
                saw_first = stage.load(std::memory_order_acquire) == 1;
            });
        });
        q2.wait();
        ASSERT_TRUE(saw_first) << "cross-queue depends_on ignored (round "
                               << round << ")";
        q1.wait();
    }
}

TEST(GraphSched, DependsOnForeignEventOnInOrderQueueWaits) {
    // An in-order queue executes synchronously, but a depends_on edge on an
    // out-of-order queue's event still needs a real join before the command
    // runs (previously the handler's deps were dropped on this path).
    thread_pool pool(4);
    queue ooo("rtx_2080", queue_property::out_of_order);
    ooo.set_graph_pool(&pool);
    queue inorder("rtx_2080");
    std::atomic<int> stage{0};
    event e = ooo.submit([&](handler& h) {
        h.library_call(stats("producer"), [&] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            stage.store(1, std::memory_order_release);
        });
    });
    bool saw_first = false;
    inorder.submit([&](handler& h) {
        h.depends_on(e);
        h.library_call(stats("consumer"), [&] {
            saw_first = stage.load(std::memory_order_acquire) == 1;
        });
    });
    EXPECT_TRUE(saw_first) << "in-order queue ignored a foreign graph event";
    ooo.wait();
}

TEST(GraphSched, DependencySettlingDuringSubmitWindowIsNotLost) {
    // Regression for a lost-wakeup race: a dependency that settles on a pool
    // worker while its dependent is still `held` (between enqueue() and
    // release() of the two-phase submit) must still decrement the
    // dependent's unmet count -- otherwise the node never becomes ready and
    // wait() hangs. Tiny kernels maximize the chance of settling inside the
    // submit-bookkeeping window; with the bug this test hangs within a few
    // hundred rounds.
    thread_pool pool(4);
    queue q("rtx_2080", queue_property::out_of_order);
    q.set_graph_pool(&pool);
    for (int round = 0; round < 300; ++round) {
        event e = q.submit([&](handler& h) {
            h.library_call(stats("tiny_dep"), [] {});
        });
        q.submit([&](handler& h) {
            h.depends_on(e);
            h.library_call(stats("dependent"), [] {});
        });
        q.wait();
    }
}

// ---- determinism ----------------------------------------------------------

/// One seeded program: `ops` random read-modify-write kernels over a small
/// set of buffers. Conflicting submissions are ordered by implied edges, so
/// the result must not depend on the queue's scheduling policy.
void run_seeded_dag(queue& q, std::deque<buffer<int>>& bufs,
                    std::uint32_t seed, int ops) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, bufs.size() - 1);
    std::uniform_int_distribution<int> salt(1, 97);
    for (int op = 0; op < ops; ++op) {
        const std::size_t src = pick(rng);
        const std::size_t dst = pick(rng);
        const int k = salt(rng);
        buffer<int>& bs = bufs[src];
        buffer<int>& bd = bufs[dst];
        q.submit([&](handler& h) {
            auto as = h.get_access(bs, access_mode::read);
            auto ad = h.get_access(bd, access_mode::read_write);
            h.parallel_for(nd_range<1>(range<1>(64), range<1>(64)),
                           stats("mix"), [=](nd_item<1> it) {
                               const std::size_t i = it.get_global_id(0);
                               ad[i] = ad[i] * 31 + as[i] + k;
                           });
        });
    }
    q.wait();
}

TEST(GraphSched, RandomizedDagMatchesInOrderByteForByte) {
    constexpr std::size_t kBufs = 6;
    constexpr int kOps = 48;
    thread_pool pool(4);
    for (std::uint32_t seed : {11u, 1234u, 987654u}) {
        std::vector<std::vector<int>> results;
        for (int mode = 0; mode < 2; ++mode) {
            queue q("rtx_2080", mode == 0 ? queue_property::in_order
                                          : queue_property::out_of_order);
            if (mode == 1) q.set_graph_pool(&pool);
            std::deque<buffer<int>> bufs;  // buffer is pinned (non-movable)
            for (std::size_t i = 0; i < kBufs; ++i) {
                bufs.emplace_back(64);
                for (std::size_t j = 0; j < 64; ++j)
                    bufs.back().host_data()[j] = static_cast<int>(i + j);
            }
            run_seeded_dag(q, bufs, seed, kOps);
            std::vector<int> flat;
            for (auto& b : bufs)
                flat.insert(flat.end(), b.host_data(), b.host_data() + 64);
            results.push_back(std::move(flat));
        }
        ASSERT_EQ(std::memcmp(results[0].data(), results[1].data(),
                              results[0].size() * sizeof(int)),
                  0)
            << "in-order and out-of-order runs diverged for seed " << seed;
    }
}

TEST(GraphSched, SanitizeJsonIsByteIdenticalAcrossOooRuns) {
    auto run_once = [] {
        altis::analyze::recorder rec;
        {
            altis::analyze::recorder::scope scope(rec);
            queue q("xeon_6128", queue_property::out_of_order);
            buffer<int> a(32), b(32);
            std::vector<int> init(32, 1);
            q.copy_to_device(a, init.data());
            event e = q.submit([&](handler& h) {
                auto aa = h.get_access(a, access_mode::read);
                auto ab = h.get_access(b, access_mode::discard_write);
                h.parallel_for(nd_range<1>(range<1>(32), range<1>(32)),
                               stats("scale"), [=](nd_item<1> it) {
                                   const std::size_t i = it.get_global_id(0);
                                   ab[i] = aa[i] * 2;
                               });
            });
            q.submit([&](handler& h) {
                h.depends_on(e);
                auto ab = h.get_access(b, access_mode::read_write);
                h.parallel_for(nd_range<1>(range<1>(32), range<1>(32)),
                               stats("shift"), [=](nd_item<1> it) {
                                   ab[it.get_global_id(0)] += 3;
                               });
            });
            q.wait();
            q.wait();  // deliberate: an edge-free graph join (ALS-L5)
        }
        std::ostringstream os;
        altis::analyze::run_all(rec).render_json(os);
        return os.str();
    };
    const std::string first = run_once();
    const std::string second = run_once();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("ALS-L5"), std::string::npos)
        << "expected the deliberate edge-free join to be reported:\n"
        << first;
}

// ---- errors and cancellation ----------------------------------------------

TEST(GraphSched, AsyncErrorsSurfaceAtGraphJoinInSubmitOrder) {
    altis::fault::plan p = altis::fault::plan::parse("launch:k1@1;launch:k3@1");
    altis::fault::scope s(p);
    std::vector<std::string> delivered;
    queue q("rtx_2080", perf::runtime_kind::sycl,
            [&](exception_list errors) {
                for (const auto& e : errors) {
                    try {
                        std::rethrow_exception(e);
                    } catch (const std::exception& ex) {
                        delivered.emplace_back(ex.what());
                    }
                }
            },
            queue_property::out_of_order);
    std::atomic<int> ran{0};
    auto named = [&](const char* n) {
        q.submit([&](handler& h) {
            h.library_call(stats(n),
                           [&] { ran.fetch_add(1, std::memory_order_relaxed); });
        });
    };
    named("k1");
    named("k2");
    named("k3");
    EXPECT_TRUE(delivered.empty());  // errors are asynchronous
    q.wait();
    ASSERT_EQ(delivered.size(), 2u);
    // Completion order under the scheduler is nondeterministic; delivery
    // order is not: errors drain sorted by submit index.
    EXPECT_NE(delivered[0].find("'k1'"), std::string::npos) << delivered[0];
    EXPECT_NE(delivered[1].find("'k3'"), std::string::npos) << delivered[1];
    EXPECT_EQ(ran.load(std::memory_order_relaxed), 1);  // only k2 executed

    delivered.clear();
    named("k4");  // the queue stays usable after delivery
    q.wait();
    EXPECT_TRUE(delivered.empty());
}

TEST(GraphSched, CancellationSkipsQueuedNodesAndRethrowsAtJoin) {
    namespace res = altis::resilience;
    res::current().reset();
    std::atomic<int> ran{0};
    {
        queue q("rtx_2080", queue_property::out_of_order);
        event prev;
        for (int i = 0; i < 3; ++i)
            prev = q.submit([&](handler& h) {
                h.depends_on(prev);
                h.library_call(stats("queued"), [&] {
                    ran.fetch_add(1, std::memory_order_relaxed);
                });
            });
        // Nothing has dispatched yet (joins run the graph); cancel now, then
        // drive dispatch through a targeted join: every node must hit its
        // dispatch checkpoint and be cancelled, not executed.
        res::current().cancel(res::cancel_reason::manual);
        prev.wait();
        EXPECT_EQ(ran.load(std::memory_order_relaxed), 0)
            << "a queued-but-unstarted node ran past the cancellation";
        res::current().reset();
        // The cancellation is reported at the queue's join even though the
        // token was already reset...
        EXPECT_THROW(q.wait(), res::cancelled_error);
        // ...and drains with the epoch: the queue keeps working.
        q.submit([&](handler& h) {
            h.library_call(stats("after"), [&] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        });
        q.wait();
        EXPECT_EQ(ran.load(std::memory_order_relaxed), 1);
    }
    res::current().reset();
}

TEST(GraphSched, SchedulerMetricsRecordNodesAndEdges) {
    namespace ins = altis::metrics::instruments;
    // Instruments only record under an active session (which zeroes them).
    altis::metrics::session s("sched-test", {/*sample_hz=*/0.0});
    const std::uint64_t nodes0 = ins::sched_nodes().value();
    const std::uint64_t edges0 = ins::sched_edges().value();
    queue q("rtx_2080", queue_property::out_of_order);
    buffer<int> b(64);
    event e1 = q.submit([&](handler& h) {
        auto acc = h.get_access(b, access_mode::discard_write);
        h.parallel_for(nd_range<1>(range<1>(64), range<1>(64)), stats("n1"),
                       [=](nd_item<1> it) { acc[it.get_global_id(0)] = 1; });
    });
    q.submit([&](handler& h) {
        h.depends_on(e1);
        auto acc = h.get_access(b, access_mode::read_write);
        h.parallel_for(nd_range<1>(range<1>(64), range<1>(64)), stats("n2"),
                       [=](nd_item<1> it) { acc[it.get_global_id(0)] += 1; });
    });
    q.wait();
    EXPECT_EQ(ins::sched_nodes().value() - nodes0, 2u);
    // n2 -> n1: the explicit event edge and the implied accessor edge
    // deduplicate into one recorded edge.
    EXPECT_EQ(ins::sched_edges().value() - edges0, 1u);
}

}  // namespace
}  // namespace syclite
