// Shared CLI/env wiring for the sanitizer, mirroring trace/options.hpp so
// every harness binary behaves identically:
//
//   --sanitize <off|warn|error>   capture the command graph and lint it at
//                                 exit; `error` turns any warning-or-worse
//                                 finding into exit code 1 and refuses to
//                                 launch dataflow groups with pipe errors.
//                                 Defaults to $ALTIS_SANITIZE when set.
//   --sanitize-json <file>        also write the findings as JSON.
//   --sanitize-sarif <file>       also write the findings as SARIF v2.1.0
//                                 (GitHub code scanning).
//   --sanitize-baseline <file>    demote findings fingerprinted in the
//                                 baseline to notes; flag stale entries.
//
// Requesting an output file (--sanitize-json / --sanitize-sarif) implies
// `--sanitize warn`, so a clean tree still produces a valid empty document
// instead of no file at all.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "analyze/recorder.hpp"

namespace altis {
class OptionParser;
}

namespace altis::analyze {

void add_sanitize_options(OptionParser& opts);

struct options {
    level lv = level::off;
    std::string json_path;
    std::string sarif_path;
    std::string baseline_path;

    [[nodiscard]] bool enabled() const { return lv != level::off; }
    /// Reads --sanitize/--sanitize-json/--sanitize-sarif/--sanitize-baseline,
    /// falling back to $ALTIS_SANITIZE. Throws OptionError on an unknown
    /// level name.
    [[nodiscard]] static options from(const OptionParser& opts);
};

/// Callback the harness uses to mirror findings onto another sink (e.g.
/// error-flagged trace spans) without analyze depending on the trace layer.
using span_sink = std::function<void(const finding&)>;

/// Runs the passes over `rec`, applies the baseline (when given), renders
/// the findings to `out`, writes the JSON/SARIF files when requested, and
/// hands each finding to `sink` (the harness uses it to emit error-flagged
/// trace spans) when provided. Returns the process exit code contribution:
/// 1 when level is `error` and any warning-or-worse finding exists
/// (baselined findings are notes and never gate), 2 when an output file
/// could not be written or the baseline could not be read, else 0.
[[nodiscard]] int finish(const recorder& rec, const options& opt,
                         std::ostream& out, std::ostream& err,
                         const span_sink& sink = {});

}  // namespace altis::analyze
