// Per-kernel aggregate profile derived from a trace session: invocation
// counts, total/mean simulated time, share of kernel time, modeled bandwidth
// and compute throughput, and a compute- vs bandwidth-bound classification
// against the bound device's Table-2 peaks. This is the reproduction's
// stand-in for `nsys stats` / VTune's summary view and what later perf PRs
// regress against.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/session.hpp"

namespace altis::trace {

/// What limits a kernel relative to the device's sustained peaks.
enum class bound_by {
    compute,    ///< modeled GFLOP/s closer to the compute wall
    bandwidth,  ///< modeled GB/s closer to the memory wall
    latency,    ///< far from both walls: launch/pipeline floors dominate
    unknown,    ///< no device bound to the session
};

[[nodiscard]] const char* to_string(bound_by b);

struct kernel_profile {
    std::string name;
    double invocations = 0.0;
    double total_ns = 0.0;
    double mean_ns = 0.0;        ///< total_ns / invocations
    double pct_of_kernel = 0.0;  ///< share of summed kernel-span time, 0..1
    double gbs = 0.0;            ///< modeled bytes / total span time
    double gflops = 0.0;         ///< modeled FLOPs / total span time
    double compute_utilization = 0.0;  ///< gflops vs sustained peak, 0..1+
    double memory_utilization = 0.0;   ///< gbs vs sustained peak, 0..1+
    bound_by bound = bound_by::unknown;
    bool in_dataflow = false;  ///< ran on a dataflow lane (overlapped)
};

struct profile_report {
    std::string session_name;
    std::string device;       ///< empty when no device was bound
    double peak_gflops = 0.0; ///< sustained compute wall used for bounds
    double peak_gbs = 0.0;    ///< sustained bandwidth wall used for bounds
    std::vector<kernel_profile> kernels;  ///< sorted by total_ns descending
    double kernel_ns = 0.0;      ///< as session::kernel_ns()
    double non_kernel_ns = 0.0;  ///< as session::non_kernel_ns()
    /// Sum over kernels[i].total_ns: equals kernel_ns when no dataflow
    /// groups overlap kernels, exceeds it when they do.
    double kernel_span_ns = 0.0;
};

[[nodiscard]] profile_report build_profile(const session& s);

/// Console table via altis::Table.
void render_profile(const profile_report& p, std::ostream& out);
/// Machine-readable JSON (same schema as the table, plus totals).
void write_profile_json(const profile_report& p, std::ostream& out);

}  // namespace altis::trace
