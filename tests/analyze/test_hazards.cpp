// Seeded hazard corpus: each known-bad shape must surface its exact rule id,
// and the matching clean shape must not. The functional cases drive real
// syclite queues under a recorder -- the same capture path `--sanitize` uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/sanitize.hpp"
#include "sycl/syclite.hpp"

namespace altis::analyze {
namespace {

perf::kernel_stats named(const char* n) {
    perf::kernel_stats k;
    k.name = n;
    return k;
}

std::vector<std::string> rules_of(const report& r) {
    std::vector<std::string> ids;
    for (const finding& f : r.findings()) ids.push_back(f.rule);
    return ids;
}

bool has_rule(const report& r, const std::string& id) {
    const auto ids = rules_of(r);
    return std::find(ids.begin(), ids.end(), id) != ids.end();
}

std::string render(const report& r) {
    std::ostringstream os;
    r.render_text(os);
    return os.str();
}

TEST(Hazards, H1UnpipedConflictInDataflowGroup) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> shared(64);
        syclite::dataflow_guard g(q);
        // Two concurrent kernels both declare write access to `shared` and
        // no pipe connects them: nothing sequences their rounds.
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(shared, syclite::access_mode::write);
            (void)a;
            h.single_task(named("writer_a"), [] {});
        });
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(shared, syclite::access_mode::write);
            (void)a;
            h.single_task(named("writer_b"), [] {});
        });
        (void)g.join();
    }
    const report r = run_all(rec);
    EXPECT_TRUE(has_rule(r, "ALS-H1")) << "rules: " << rules_of(r).size();
}

TEST(Hazards, H1SuppressedWhenPipeConnectsTheKernels) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> shared(64);
        syclite::pipe<int> ch(8, "ch");
        syclite::dataflow_guard g(q);
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(shared, syclite::access_mode::write);
            (void)a;
            h.writes_pipe(ch, 1.0, 1.0);
            h.single_task(named("producer"), [&] { ch.write(1); });
        });
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(shared, syclite::access_mode::read_write);
            (void)a;
            h.reads_pipe(ch, 1.0, 1.0);
            h.single_task(named("consumer"), [&] { (void)ch.read(); });
        });
        (void)g.join();
    }
    EXPECT_FALSE(has_rule(run_all(rec), "ALS-H1"));
}

TEST(Hazards, H2HostReadOfDeviceDirtyMemory) {
    recorder rec;
    std::vector<int> host(64, 0);
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> buf(64);
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(buf, syclite::access_mode::write);
            (void)a;
            h.single_task(named("dirtier"), [] {});
        });
        q.copy_from_device(buf, host.data());  // missing q.wait()
    }
    EXPECT_TRUE(has_rule(run_all(rec), "ALS-H2"));
}

TEST(Hazards, H2CleanWithInterveningWait) {
    recorder rec;
    std::vector<int> host(64, 0);
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> buf(64);
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(buf, syclite::access_mode::write);
            (void)a;
            h.single_task(named("dirtier"), [] {});
        });
        q.wait();
        q.copy_from_device(buf, host.data());
    }
    const report r = run_all(rec);
    EXPECT_FALSE(has_rule(r, "ALS-H2"));
    EXPECT_FALSE(has_rule(r, "ALS-L5"));
}

// The PR 2 particlefilter regression, reduced: an accessor created inside a
// command group dereferenced after the group completed.
TEST(Hazards, H3AccessorOutlivesItsCommandGroup) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> buf(16);
        syclite::accessor<int> leaked;
        q.submit([&](syclite::handler& h) {
            leaked = h.get_access(buf, syclite::access_mode::read_write);
            h.single_task(named("escapee"), [&] { leaked[0] = 7; });
        });
        q.wait();
        (void)leaked[0];  // stale: the group already retired
    }
    const report r = run_all(rec);
    EXPECT_TRUE(has_rule(r, "ALS-H3"));
    for (const finding& f : r.findings()) {
        if (f.rule == "ALS-H3") EXPECT_EQ(f.kernel, "escapee");
    }
}

TEST(Hazards, H3SilentWhileTheGroupIsLive) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> buf(16);
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(buf, syclite::access_mode::read_write);
            h.single_task(named("inside"), [&] { a[0] = 1; });
        });
        q.wait();
    }
    EXPECT_FALSE(has_rule(run_all(rec), "ALS-H3"));
}

TEST(Hazards, H4UseAfterFreeOfUsm) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        int* p = syclite::malloc_shared<int>(32, q);
        ASSERT_NE(p, nullptr);
        // Keep the address as an integer: the declaration below is *meant*
        // to name a freed range (never dereferenced), and going through
        // uintptr_t keeps compilers' use-after-free heuristics quiet.
        const auto addr = reinterpret_cast<std::uintptr_t>(p);
        syclite::usm_free(p, q);
        q.submit([&](syclite::handler& h) {
            h.uses_usm(reinterpret_cast<const void*>(addr), 32 * sizeof(int),
                       syclite::access_mode::read);
            h.single_task(named("stale_user"), [] {});
        });
        q.wait();
    }
    const report r = run_all(rec);
    ASSERT_TRUE(has_rule(r, "ALS-H4"));
    for (const finding& f : r.findings()) {
        if (f.rule == "ALS-H4")
            EXPECT_NE(f.message.find("already freed"), std::string::npos);
    }
}

TEST(Hazards, H4DoubleFreeOnHandBuiltGraph) {
    const void* fake = reinterpret_cast<const void*>(0x1000);
    command_graph g;
    node alloc;
    alloc.kind = node_kind::usm_alloc;
    alloc.queue = 0;
    alloc.accesses = {{fake, 128, access::read_write, mem_kind::usm}};
    node free1 = alloc;
    free1.kind = node_kind::usm_free;
    node free2 = free1;
    g.nodes = {alloc, free1, free2};

    report r;
    lint_hazards(g, r);
    ASSERT_TRUE(has_rule(r, "ALS-H4"));
    EXPECT_NE(r.findings().front().message.find("double free"),
              std::string::npos);
}

TEST(Hazards, H4GenerationsDisambiguateARecycledAddress) {
    // The altis::mem pool recycles addresses, so two logical allocations can
    // share one base. The generation tag must keep their findings apart:
    // same base, different generation -> different fingerprint.
    const void* base = reinterpret_cast<const void*>(0x2000);
    const auto double_free_graph = [&](std::uint64_t gen) {
        command_graph g;
        node alloc;
        alloc.kind = node_kind::usm_alloc;
        alloc.queue = 0;
        alloc.accesses = {{base, 128, access::read_write, mem_kind::usm, gen}};
        node free1 = alloc;
        free1.kind = node_kind::usm_free;
        node free2 = free1;
        g.nodes = {alloc, free1, free2};
        return g;
    };
    report r1;
    lint_hazards(double_free_graph(7), r1);
    report r2;
    lint_hazards(double_free_graph(8), r2);
    ASSERT_TRUE(has_rule(r1, "ALS-H4"));
    ASSERT_TRUE(has_rule(r2, "ALS-H4"));
    const finding& f1 = r1.findings().front();
    const finding& f2 = r2.findings().front();
    EXPECT_NE(f1.object.find("#g7"), std::string::npos) << f1.object;
    EXPECT_NE(fingerprint(f1), fingerprint(f2));
    // Untagged graphs (generation 0, the hand-built default) keep their
    // historical labels -- no suffix.
    report r0;
    lint_hazards(double_free_graph(0), r0);
    EXPECT_EQ(r0.findings().front().object.find("#g"), std::string::npos);
}

TEST(Hazards, H4CleanWhileAllocationIsLive) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        int* p = syclite::malloc_shared<int>(32, q);
        ASSERT_NE(p, nullptr);
        q.submit([&](syclite::handler& h) {
            h.uses_usm(p, 32 * sizeof(int), syclite::access_mode::read_write);
            h.single_task(named("live_user"), [&] { p[0] = 3; });
        });
        q.wait();
        syclite::usm_free(p, q);
    }
    EXPECT_FALSE(has_rule(run_all(rec), "ALS-H4"));
}

TEST(Hazards, L5RedundantBackToBackWait) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> buf(8);
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(buf, syclite::access_mode::write);
            (void)a;
            h.single_task(named("work"), [] {});
        });
        q.wait();
        q.wait();  // nothing happened in between
    }
    EXPECT_TRUE(has_rule(run_all(rec), "ALS-L5"));
}

TEST(Hazards, L5OooJoinWithNoPendingEdgesFiresWithEventHint) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128",
                         syclite::queue_property::out_of_order);
        syclite::buffer<int> buf(8);
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(buf, syclite::access_mode::write);
            (void)a;
            h.single_task(named("work"), [] {});
        });
        q.wait();
        q.wait();  // graph join with zero incoming edges
    }
    const report r = run_all(rec);
    ASSERT_TRUE(has_rule(r, "ALS-L5")) << render(r);
    // The graph variant of the rule names the targeted alternative.
    EXPECT_NE(render(r).find("event::wait()"), std::string::npos)
        << render(r);
}

TEST(Hazards, L5SilentForOooJoinsThatOrderedWork) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128",
                         syclite::queue_property::out_of_order);
        syclite::buffer<int> buf(8);
        for (int round = 0; round < 2; ++round) {
            q.submit([&](syclite::handler& h) {
                auto a = h.get_access(buf, syclite::access_mode::write);
                (void)a;
                h.single_task(named("work"), [] {});
            });
            q.wait();  // each join has one pending command
        }
    }
    EXPECT_FALSE(has_rule(run_all(rec), "ALS-L5"));
}

TEST(Hazards, PassiveWithoutRecorder) {
    // No recorder current: the runtime must not capture (or crash).
    syclite::queue q("xeon_6128");
    syclite::buffer<int> buf(8);
    q.submit([&](syclite::handler& h) {
        auto a = h.get_access(buf, syclite::access_mode::write);
        h.single_task(named("untracked"), [&] { a[0] = 1; });
    });
    q.wait();
    EXPECT_EQ(recorder::current(), nullptr);
}

}  // namespace
}  // namespace altis::analyze
