// Renders visual artifacts from the two image-producing applications:
//   mandelbrot.ppm  -- the escape-iteration fractal, colormapped
//   raytracing.ppm  -- the Listing-1 float8-material sphere scene
// Optionally pass an output directory (default: current directory).
//
// Build & run:   ./examples/render_scenes [outdir]
#include <iostream>
#include <vector>

#include "apps/common/image.hpp"
#include "apps/mandelbrot/mandelbrot.hpp"
#include "apps/raytracing/raytracing.hpp"

int main(int argc, char** argv) {
    namespace apps = altis::apps;
    const std::string outdir = argc > 1 ? argv[1] : ".";

    {
        apps::mandelbrot::params p;
        p.width = p.height = 640;
        std::vector<std::uint16_t> iters(p.pixels());
        apps::mandelbrot::golden(p, iters);
        std::vector<apps::rgb8> img(p.pixels());
        for (std::size_t i = 0; i < img.size(); ++i)
            img[i] = apps::escape_colormap(iters[i], p.max_iters);
        const std::string path = outdir + "/mandelbrot.ppm";
        apps::write_ppm(path, img, static_cast<std::size_t>(p.width),
                        static_cast<std::size_t>(p.height));
        std::cout << "wrote " << path << " (" << p.width << "x" << p.height
                  << ")\n";
    }
    {
        apps::raytracing::params p;
        p.width = 480;
        p.height = 360;
        p.samples = 8;
        const auto linear =
            apps::raytracing::golden(p, apps::raytracing::rng_kind::philox);
        std::vector<apps::rgb8> img(p.pixels());
        for (std::size_t i = 0; i < img.size(); ++i)
            img[i] = apps::tonemap(linear[i].x, linear[i].y, linear[i].z);
        const std::string path = outdir + "/raytracing.ppm";
        apps::write_ppm(path, img, p.width, p.height);
        std::cout << "wrote " << path << " (" << p.width << "x" << p.height
                  << ", " << p.samples << " spp, philox)\n";
    }
    return 0;
}
