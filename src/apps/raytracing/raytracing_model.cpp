// Model descriptors for Raytracing. The CUDA original pays cuRAND XORWOW's
// expensive curand_init sequence skip-ahead per sample and virtual-dispatch
// scatter through device-memory objects; the refactored SYCL keeps the whole
// float8 material in registers with a counter-based philox stream. This is
// why the paper's "speedup" reaches ~12-22x while being explicitly flagged
// as not directly comparable (Sec. 3.3).
#include "apps/raytracing/raytracing.hpp"

namespace altis::apps::raytracing {
namespace detail {

perf::kernel_stats stats_render(const params& p, Variant v,
                                const perf::device_spec& dev) {
    const trace_profile prof = probe_profile(p);
    const double spp = static_cast<double>(p.samples);
    const double rays = spp * prof.mean_bounces;
    const double tests = rays * prof.tests_per_ray;

    perf::kernel_stats k;
    k.name = "raytracing_render";
    k.global_items = static_cast<double>(p.pixels());
    k.wg_size = dev.is_fpga() ? 128 : 256;
    k.fp32_ops = tests * 27.0 + rays * 60.0;  // hit tests (sqrt) + scatter
    k.sfu_ops = rays * 4.0;                   // schlick pow, sampling
    k.int_ops = tests * 6.0 + rays * 20.0;
    k.bytes_written = 12.0;
    k.divergence = 0.55;  // depth/material divergence between rays
    k.static_fp32_ops = 90;
    k.static_int_ops = 70;
    k.static_branches = 24;
    k.accessor_args = 2;
    k.control_complexity = 4;

    switch (v) {
        case Variant::cuda:
            // curand_init's XORWOW sequence skip-ahead (~thousands of state
            // transitions per sample) plus virtual scatter calls on scene/
            // material objects resident in device memory: uncoalesced loads
            // of sphere + vtable + material per test, and register pressure
            // that halves occupancy.
            k.int_ops += spp * 2700.0;
            k.bytes_read = tests * 48.0;
            k.divergence = 0.75;
            k.occupancy = 0.5;
            break;
        case Variant::sycl_base:
            // float8 materials already flat, philox already cheap; the first
            // migrated version still reads the scene from global memory.
            k.bytes_read = tests * 12.0;
            break;
        default:
            // Optimized: scene cached on chip (constant cache / M20K).
            k.bytes_read = tests * 2.0;
            break;
    }

    if (v == Variant::fpga_base || v == Variant::fpga_opt) {
        k.pattern = perf::local_pattern::banked;
        k.local_arrays = 1;  // on-chip scene copy
        k.local_mem_bytes = 23.0 * sizeof(sphere);
        k.local_accesses = tests;
        k.dynamic_local_size = (v == Variant::fpga_base);
        // The serial sphere-test loop (II ~3: nearest-hit compare chain)
        // runs per bounce; unrolling it 30x (S10) / 16x (Agilex) is the
        // paper's optimization (Sec. 5.5) -- the unrolled loop lets
        // independent rays fill the pipeline.
        const double test_chain = rays * prof.tests_per_ray * 3.0;
        if (v == Variant::fpga_opt) {
            k.unroll = dev.name != "stratix_10" ? 16 : 30;
            k.args_restrict = true;
            k.dep_chain_cycles = test_chain / (2.0 * k.unroll);
        } else {
            k.dep_chain_cycles = test_chain;
        }
    }
    return k;
}

}  // namespace detail

timed_region region(Variant v, const perf::device_spec& dev, int size) {
    const params p = params::preset(size);
    timed_region r;
    r.name = std::string("raytracing/") + to_string(v) + "/size" + std::to_string(size);
    r.include_setup = false;  // timed region excludes one-time setup (warm-up)
    r.transfer_bytes = 23.0 * sizeof(sphere) +
                       static_cast<double>(p.pixels()) * sizeof(vec3);
    r.transfer_calls = 2.0;
    r.syncs = 1.0;
    r.kernels.push_back({detail::stats_render(p, v, dev), 1.0});
    return r;
}

std::vector<perf::kernel_stats> fpga_design(const perf::device_spec& dev,
                                            int size) {
    return {detail::stats_render(params::preset(size), Variant::fpga_opt, dev)};
}

}  // namespace altis::apps::raytracing
