#include "fault/retry.hpp"

#include <cmath>

#include "core/result_database.hpp"
#include "fault/inject.hpp"
#include "metrics/instruments.hpp"

namespace altis::fault {

double retry_policy::backoff_ms(int retry) const {
    return backoff_base_ms * std::pow(backoff_multiplier, retry);
}

const char* outcome::label() const {
    switch (st) {
        case status::ok: return attempts > 1 ? "retried" : "ok";
        case status::failed: return "failed";
        case status::skipped: return "skipped";
    }
    return "?";
}

outcome run_guarded(const std::function<void()>& fn, const retry_policy& policy,
                    bool fail_fast, const retry_listener& on_retry) {
    outcome oc;
    const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
    for (int attempt = 1;; ++attempt) {
        oc.attempts = attempt;
        try {
            fn();
            return oc;
        } catch (const injected_fault& f) {
            oc.error = f.what();
            if (!f.retryable() || attempt >= max_attempts) {
                if (metrics::collecting())
                    metrics::instruments::fault_failures().add();
                if (fail_fast) throw;
                oc.st = outcome::status::failed;
                return oc;
            }
            const double backoff = policy.backoff_ms(attempt - 1);
            oc.backoff_ms += backoff;
            if (metrics::collecting()) {
                metrics::instruments::fault_retries().add();
                metrics::instruments::fault_backoff_ns().add(
                    static_cast<std::uint64_t>(backoff * 1e6));
            }
            if (on_retry) on_retry(attempt, oc.error, backoff);
        } catch (const std::exception& e) {
            // Anything that is not an injected fault is a real defect of the
            // configuration -- retrying cannot help.
            if (metrics::collecting())
                metrics::instruments::fault_failures().add();
            if (fail_fast) throw;
            oc.st = outcome::status::failed;
            oc.error = e.what();
            return oc;
        }
    }
}

void record_outcome(ResultDatabase& db, const std::string& config,
                    const outcome& oc) {
    db.add_outcome({config, oc.label(), oc.attempts, oc.error});
}

}  // namespace altis::fault
