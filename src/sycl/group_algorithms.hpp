// Group collective algorithms for hierarchical kernels, mirroring the SYCL
// 2020 group functions the migrated Altis reductions lean on. Each runs as a
// sequence of parallel_for_work_item phases (implicit barriers between
// phases), so results are deterministic and independent of scheduling.
#pragma once

#include <functional>

#include "sycl/range.hpp"

namespace syclite {

/// Reduction over a 1-D work-group. `values` must hold one element per
/// work-item (work-group local array); returns the combined value and leaves
/// `values` clobbered (tree reduction in place, like the device versions).
template <typename T, typename BinaryOp>
T reduce_over_group(const group<1>& g, T* values, BinaryOp op) {
    const std::size_t n = g.get_local_range(0);
    for (std::size_t stride = 1; stride < n; stride *= 2) {
        g.parallel_for_work_item([&](h_item<1> it) {
            const std::size_t lid = it.get_local_id(0);
            if (lid % (2 * stride) == 0 && lid + stride < n)
                values[lid] = op(values[lid], values[lid + stride]);
        });
    }
    return values[0];
}

/// Exclusive scan over a 1-D work-group's local array, in place
/// (Blelloch up-/down-sweep across barrier phases). Requires a power-of-two
/// group size. Returns the total.
template <typename T, typename BinaryOp>
T exclusive_scan_over_group(const group<1>& g, T* values, T identity,
                            BinaryOp op) {
    const std::size_t n = g.get_local_range(0);
    if ((n & (n - 1)) != 0)
        throw std::invalid_argument(
            "exclusive_scan_over_group: group size must be a power of two");
    // Up-sweep.
    for (std::size_t stride = 1; stride < n; stride *= 2) {
        g.parallel_for_work_item([&](h_item<1> it) {
            const std::size_t lid = it.get_local_id(0);
            const std::size_t idx = (lid + 1) * 2 * stride - 1;
            if (idx < n) values[idx] = op(values[idx], values[idx - stride]);
        });
    }
    const T total = values[n - 1];
    // Down-sweep.
    g.parallel_for_work_item([&](h_item<1> it) {
        if (it.get_local_id(0) == 0) values[n - 1] = identity;
    });
    for (std::size_t stride = n / 2; stride >= 1; stride /= 2) {
        g.parallel_for_work_item([&](h_item<1> it) {
            const std::size_t lid = it.get_local_id(0);
            const std::size_t idx = (lid + 1) * 2 * stride - 1;
            if (idx < n) {
                const T left = values[idx - stride];
                values[idx - stride] = values[idx];
                values[idx] = op(values[idx], left);
            }
        });
        if (stride == 1) break;
    }
    return total;
}

/// Broadcast the value held by `source` work-item to all items' slots.
template <typename T>
void broadcast_over_group(const group<1>& g, T* values, std::size_t source) {
    const T v = values[source];
    g.parallel_for_work_item(
        [&](h_item<1> it) { values[it.get_local_id(0)] = v; });
}

}  // namespace syclite
