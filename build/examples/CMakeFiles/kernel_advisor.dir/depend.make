# Empty dependencies file for kernel_advisor.
# This may be replaced when dependencies are built.
