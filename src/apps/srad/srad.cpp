#include "apps/srad/srad.hpp"

#include <cmath>

#include "apps/common/verify.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps::srad {

params params::preset(int size) {
    switch (size) {
        case 1: return {256, 256, 50, 0.5f};
        case 2: return {1024, 1024, 200, 0.5f};
        case 3: return {2048, 2048, 500, 0.5f};
        default: throw std::invalid_argument("srad: size must be 1..3");
    }
}

std::vector<float> make_image(const params& p) {
    std::vector<float> img(p.cells());
    for (std::size_t i = 0; i < p.rows; ++i)
        for (std::size_t j = 0; j < p.cols; ++j) {
            // Smooth gradient with deterministic multiplicative speckle.
            const float base =
                0.3f + 0.4f * static_cast<float>(i + j) /
                           static_cast<float>(p.rows + p.cols);
            const float speckle =
                0.8f + 0.4f * static_cast<float>((i * 7919 + j * 104729) % 1000) /
                           1000.0f;
            img[i * p.cols + j] = base * speckle;
        }
    return img;
}

namespace {

struct stats2 {
    float mean, var;
};

/// Image statistics in chunked order (matches the device reduction exactly).
stats2 image_stats_chunked(const float* img, std::size_t n, std::size_t chunk) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t c0 = 0; c0 < n; c0 += chunk) {
        float s = 0.0f, s2 = 0.0f;  // per-chunk float accumulation
        const std::size_t c1 = std::min(c0 + chunk, n);
        for (std::size_t i = c0; i < c1; ++i) {
            s += img[i];
            s2 += img[i] * img[i];
        }
        sum += s;
        sum2 += s2;
    }
    const float mean = static_cast<float>(sum / static_cast<double>(n));
    const float var =
        static_cast<float>(sum2 / static_cast<double>(n)) - mean * mean;
    return {mean, var};
}

constexpr std::size_t kChunk = 1024;

/// One diffusion step; `c` and the four derivative arrays are scratch.
/// Shared verbatim between golden (serial loops) and the device kernels.
void diffusion_coefficients(std::size_t rows, std::size_t cols, float q0sqr,
                            const float* J, float* c, float* dN, float* dS,
                            float* dW, float* dE, std::size_t i, std::size_t j) {
    const std::size_t idx = i * cols + j;
    const std::size_t in = i == 0 ? idx : idx - cols;
    const std::size_t is = i == rows - 1 ? idx : idx + cols;
    const std::size_t jw = j == 0 ? idx : idx - 1;
    const std::size_t je = j == cols - 1 ? idx : idx + 1;
    const float Jc = J[idx];
    dN[idx] = J[in] - Jc;
    dS[idx] = J[is] - Jc;
    dW[idx] = J[jw] - Jc;
    dE[idx] = J[je] - Jc;
    const float g2 = (dN[idx] * dN[idx] + dS[idx] * dS[idx] +
                      dW[idx] * dW[idx] + dE[idx] * dE[idx]) /
                     (Jc * Jc);
    const float l = (dN[idx] + dS[idx] + dW[idx] + dE[idx]) / Jc;
    const float num = (0.5f * g2) - ((1.0f / 16.0f) * (l * l));
    const float den1 = 1.0f + 0.25f * l;
    const float qsqr = num / (den1 * den1);
    const float den2 = (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr));
    float cv = 1.0f / (1.0f + den2);
    if (cv < 0.0f) cv = 0.0f;
    if (cv > 1.0f) cv = 1.0f;
    c[idx] = cv;
}

void diffusion_update(std::size_t rows, std::size_t cols, float lambda,
                      float* J, const float* c, const float* dN,
                      const float* dS, const float* dW, const float* dE,
                      std::size_t i, std::size_t j) {
    const std::size_t idx = i * cols + j;
    const float cN = c[idx];
    const float cS = i == rows - 1 ? c[idx] : c[idx + cols];
    const float cW = c[idx];
    const float cE = j == cols - 1 ? c[idx] : c[idx + 1];
    const float d =
        cN * dN[idx] + cS * dS[idx] + cW * dW[idx] + cE * dE[idx];
    J[idx] += 0.25f * lambda * d;
}

}  // namespace

void golden(const params& p, std::vector<float>& image) {
    std::vector<float> c(p.cells()), dN(p.cells()), dS(p.cells()),
        dW(p.cells()), dE(p.cells());
    for (int iter = 0; iter < p.iterations; ++iter) {
        const stats2 st = image_stats_chunked(image.data(), p.cells(), kChunk);
        const float q0sqr = st.var / (st.mean * st.mean);
        for (std::size_t i = 0; i < p.rows; ++i)
            for (std::size_t j = 0; j < p.cols; ++j)
                diffusion_coefficients(p.rows, p.cols, q0sqr, image.data(),
                                       c.data(), dN.data(), dS.data(),
                                       dW.data(), dE.data(), i, j);
        for (std::size_t i = 0; i < p.rows; ++i)
            for (std::size_t j = 0; j < p.cols; ++j)
                diffusion_update(p.rows, p.cols, p.lambda, image.data(),
                                 c.data(), dN.data(), dS.data(), dW.data(),
                                 dE.data(), i, j);
    }
}

namespace detail {

perf::kernel_stats stats_reduce(const params& p);
perf::kernel_stats stats_srad1(const params& p, Variant v,
                               const perf::device_spec& dev);
perf::kernel_stats stats_srad2(const params& p, Variant v,
                               const perf::device_spec& dev);
perf::kernel_stats stats_srad_st(const params& p, const perf::device_spec& dev);

}  // namespace detail

AppResult run(const RunConfig& cfg) {
    const perf::device_spec& dev = resolve_device(cfg);
    const params p = params::preset(cfg.size);

    std::vector<float> expected = make_image(p);
    golden(p, expected);

    sl::queue q(dev, runtime_for(cfg.variant));
    if (dev.is_fpga()) q.set_design(region(cfg.variant, dev, cfg.size).all_kernels());
    // One-time context/JIT setup is excluded from the timed region (warmed up).

    const std::vector<float> init = make_image(p);
    sl::buffer<float> J(p.cells());
    q.copy_to_device(J, init.data());
    sl::buffer<float> c(p.cells()), dN(p.cells()), dS(p.cells()),
        dW(p.cells()), dE(p.cells());
    const std::size_t nchunks = (p.cells() + kChunk - 1) / kChunk;
    sl::buffer<float> partials(nchunks * 2);

    const std::size_t rows = p.rows, cols = p.cols;
    const float lambda = p.lambda;

    const bool single_task = cfg.variant == Variant::fpga_opt;
    for (int iter = 0; iter < p.iterations; ++iter) {
        // Statistics reduction (per-chunk partials; finalized on host, as in
        // the original which reduces then reads back the two scalars).
        q.submit([&](sl::handler& h) {
            auto img = h.get_access(J, sl::access_mode::read);
            auto part = h.get_access(partials, sl::access_mode::discard_write);
            const std::size_t n = p.cells();
            h.parallel_for_work_group(
                sl::range<1>(nchunks), sl::range<1>(1), detail::stats_reduce(p),
                [=](sl::group<1> g) {
                    g.parallel_for_work_item([&](sl::h_item<1>) {
                        const std::size_t c0 = g.get_group_id(0) * kChunk;
                        const std::size_t c1 = std::min(c0 + kChunk, n);
                        float s = 0.0f, s2 = 0.0f;
                        for (std::size_t x = c0; x < c1; ++x) {
                            s += img[x];
                            s2 += img[x] * img[x];
                        }
                        part[g.get_group_id(0) * 2] = s;
                        part[g.get_group_id(0) * 2 + 1] = s2;
                    });
                });
        });
        double sum = 0.0, sum2 = 0.0;
        for (std::size_t g = 0; g < nchunks; ++g) {
            sum += partials.host_data()[g * 2];
            sum2 += partials.host_data()[g * 2 + 1];
        }
        const float mean =
            static_cast<float>(sum / static_cast<double>(p.cells()));
        const float var =
            static_cast<float>(sum2 / static_cast<double>(p.cells())) -
            mean * mean;
        const float q0sqr = var / (mean * mean);
        q.annotate_transfer(8.0);  // two scalars D2H

        if (single_task) {
            // Table 3: SRAD's FPGA implementation is Single-Task -- one
            // pipelined pass per kernel with line-buffered neighbours.
            q.submit([&](sl::handler& h) {
                auto img = h.get_access(J, sl::access_mode::read);
                auto ac = h.get_access(c, sl::access_mode::discard_write);
                auto an = h.get_access(dN, sl::access_mode::discard_write);
                auto as = h.get_access(dS, sl::access_mode::discard_write);
                auto aw = h.get_access(dW, sl::access_mode::discard_write);
                auto ae = h.get_access(dE, sl::access_mode::discard_write);
                h.single_task(detail::stats_srad_st(p, dev), [=]() {
                    for (std::size_t i = 0; i < rows; ++i)
                        for (std::size_t j = 0; j < cols; ++j)
                            diffusion_coefficients(
                                rows, cols, q0sqr, img.get_pointer(),
                                ac.get_pointer(), an.get_pointer(),
                                as.get_pointer(), aw.get_pointer(),
                                ae.get_pointer(), i, j);
                });
            });
            q.submit([&](sl::handler& h) {
                auto img = h.get_access(J, sl::access_mode::read_write);
                auto ac = h.get_access(c, sl::access_mode::read);
                auto an = h.get_access(dN, sl::access_mode::read);
                auto as = h.get_access(dS, sl::access_mode::read);
                auto aw = h.get_access(dW, sl::access_mode::read);
                auto ae = h.get_access(dE, sl::access_mode::read);
                h.single_task(detail::stats_srad_st(p, dev), [=]() {
                    for (std::size_t i = 0; i < rows; ++i)
                        for (std::size_t j = 0; j < cols; ++j)
                            diffusion_update(rows, cols, lambda,
                                             img.get_pointer(),
                                             ac.get_pointer(), an.get_pointer(),
                                             as.get_pointer(), aw.get_pointer(),
                                             ae.get_pointer(), i, j);
                });
            });
        } else {
            const std::size_t wg = dev.is_fpga() ? 64 : 256;
            q.submit([&](sl::handler& h) {
                auto img = h.get_access(J, sl::access_mode::read);
                auto ac = h.get_access(c, sl::access_mode::discard_write);
                auto an = h.get_access(dN, sl::access_mode::discard_write);
                auto as = h.get_access(dS, sl::access_mode::discard_write);
                auto aw = h.get_access(dW, sl::access_mode::discard_write);
                auto ae = h.get_access(dE, sl::access_mode::discard_write);
                h.parallel_for(
                    sl::nd_range<1>(sl::range<1>(p.cells()), sl::range<1>(wg)),
                    detail::stats_srad1(p, cfg.variant, dev),
                    [=](sl::nd_item<1> it) {
                        const std::size_t idx = it.get_global_id(0);
                        diffusion_coefficients(
                            rows, cols, q0sqr, img.get_pointer(),
                            ac.get_pointer(), an.get_pointer(),
                            as.get_pointer(), aw.get_pointer(),
                            ae.get_pointer(), idx / cols, idx % cols);
                    });
            });
            q.submit([&](sl::handler& h) {
                auto img = h.get_access(J, sl::access_mode::read_write);
                auto ac = h.get_access(c, sl::access_mode::read);
                auto an = h.get_access(dN, sl::access_mode::read);
                auto as = h.get_access(dS, sl::access_mode::read);
                auto aw = h.get_access(dW, sl::access_mode::read);
                auto ae = h.get_access(dE, sl::access_mode::read);
                h.parallel_for(
                    sl::nd_range<1>(sl::range<1>(p.cells()), sl::range<1>(wg)),
                    detail::stats_srad2(p, cfg.variant, dev),
                    [=](sl::nd_item<1> it) {
                        const std::size_t idx = it.get_global_id(0);
                        diffusion_update(rows, cols, lambda, img.get_pointer(),
                                         ac.get_pointer(), an.get_pointer(),
                                         as.get_pointer(), aw.get_pointer(),
                                         ae.get_pointer(), idx / cols,
                                         idx % cols);
                    });
            });
        }
    }
    q.wait();

    std::vector<float> got(p.cells());
    q.copy_from_device(J, got.data());
    const double err = max_rel_error<float>(expected, got);
    require_close(err, 1e-3, "srad");

    AppResult r;
    r.kernel_ms = q.kernel_ns() / 1e6;
    r.non_kernel_ms = q.non_kernel_ns() / 1e6;
    r.total_ms = q.sim_now_ns() / 1e6;
    r.error = err;
    return r;
}

void register_app() {
    register_standard_app(
        "srad", "Speckle-reducing anisotropic diffusion (PDE denoising)",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run);
}

}  // namespace altis::apps::srad
