
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/test_access_counting.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_access_counting.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_access_counting.cpp.o.d"
  "/root/repo/tests/apps/test_cfd.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_cfd.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_cfd.cpp.o.d"
  "/root/repo/tests/apps/test_dwt2d.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_dwt2d.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_dwt2d.cpp.o.d"
  "/root/repo/tests/apps/test_fdtd2d.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_fdtd2d.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_fdtd2d.cpp.o.d"
  "/root/repo/tests/apps/test_golden_properties.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_golden_properties.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_golden_properties.cpp.o.d"
  "/root/repo/tests/apps/test_image.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_image.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_image.cpp.o.d"
  "/root/repo/tests/apps/test_kmeans.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_kmeans.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_kmeans.cpp.o.d"
  "/root/repo/tests/apps/test_lavamd.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_lavamd.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_lavamd.cpp.o.d"
  "/root/repo/tests/apps/test_mandelbrot.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_mandelbrot.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_mandelbrot.cpp.o.d"
  "/root/repo/tests/apps/test_nw.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_nw.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_nw.cpp.o.d"
  "/root/repo/tests/apps/test_particlefilter.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_particlefilter.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_particlefilter.cpp.o.d"
  "/root/repo/tests/apps/test_raytracing.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_raytracing.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_raytracing.cpp.o.d"
  "/root/repo/tests/apps/test_region.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_region.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_region.cpp.o.d"
  "/root/repo/tests/apps/test_srad.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_srad.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_srad.cpp.o.d"
  "/root/repo/tests/apps/test_suite_properties.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_suite_properties.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_suite_properties.cpp.o.d"
  "/root/repo/tests/apps/test_verify.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_verify.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_verify.cpp.o.d"
  "/root/repo/tests/apps/test_where.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_where.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_where.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/altis_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/altis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/altis_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sycl/CMakeFiles/altis_syclite.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/altis_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/altis_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/dpct/CMakeFiles/altis_dpct.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
