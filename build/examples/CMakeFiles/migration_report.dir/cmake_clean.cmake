file(REMOVE_RECURSE
  "CMakeFiles/migration_report.dir/migration_report.cpp.o"
  "CMakeFiles/migration_report.dir/migration_report.cpp.o.d"
  "migration_report"
  "migration_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
