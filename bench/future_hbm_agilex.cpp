// The paper's future work (Sec. 6): "we plan to investigate the performance
// of Altis-SYCL on HBM-enabled Agilex FPGAs", motivated by several designs
// being limited by platform memory bandwidth. This bench projects exactly
// that study: every fpga_opt design on the DE10 Agilex (DDR4, 85.3 GB/s) vs
// a modeled Agilex 7 M-series (HBM2e, ~820 GB/s), per input size, plus the
// resulting relative-to-CPU view at size 3 (where Fig. 5 showed the DDR
// boards collapsing).
#include <iostream>

#include "apps/common/suite.hpp"
#include "core/report.hpp"
#include "core/result_database.hpp"

int main() {
    using altis::Table;
    using altis::Variant;
    namespace bench = altis::bench;

    std::cout << "Future work (Sec. 6): DE10 Agilex (DDR4) vs projected "
                 "Agilex 7 M-series (HBM2e)\n\n";

    altis::ResultDatabase db;
    Table t({"Application", "HBM gain s1", "HBM gain s2", "HBM gain s3"});
    for (const auto& e : bench::suite()) {
        if (!e.in_fig45) continue;
        std::vector<std::string> row{e.label};
        for (int size : {1, 2, 3}) {
            const auto ddr = bench::total_ms(e, Variant::fpga_opt, "agilex", size);
            const auto hbm =
                bench::total_ms(e, Variant::fpga_opt, "agilex_hbm", size);
            if (!ddr || !hbm) {
                row.push_back("crash/ddr");  // Where size 3 crashed on DDR
                if (hbm)
                    db.add_result("hbm_only_ms_size" + std::to_string(size),
                                  e.label, "ms", *hbm);
                continue;
            }
            const double gain = *ddr / *hbm;
            db.add_result("gain_size" + std::to_string(size), e.label, "x", gain);
            row.push_back(Table::num(gain, 2));
        }
        t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "geomean HBM gain: size1 "
              << Table::num(db.geomean("gain_size1"), 2) << ", size2 "
              << Table::num(db.geomean("gain_size2"), 2) << ", size3 "
              << Table::num(db.geomean("gain_size3"), 2) << '\n';

    // Bandwidth relief alone is modest because many DDR-tuned designs are
    // pipeline-bound at the Agilex's high Fmax; the interesting question is
    // what happens when the freed bandwidth headroom is reinvested into
    // wider datapaths (the retuning loop of Sec. 5.5). Model that by
    // doubling each design's SIMD width on the HBM part.
    std::cout << "\nWith designs retuned for HBM (SIMD width x2):\n";
    Table rt({"Application", "retuned HBM gain s1", "s2", "s3"});
    namespace apps = altis::apps;
    const auto& hbm_dev = altis::perf::device_by_name("agilex_hbm");
    for (const auto& e : bench::suite()) {
        if (!e.in_fig45) continue;
        std::vector<std::string> row{e.label};
        for (int size : {1, 2, 3}) {
            const auto ddr = bench::total_ms(e, Variant::fpga_opt, "agilex", size);
            if (!ddr) {
                row.push_back("crash/ddr");
                continue;
            }
            apps::timed_region region = e.region(Variant::fpga_opt, hbm_dev, size);
            for (auto& slot : region.kernels) slot.stats.simd *= 2;
            for (auto& group : region.dataflow)
                for (auto& k : group.kernels) k.simd *= 2;
            const double hbm_ms =
                apps::simulate_region(region, hbm_dev,
                                      altis::perf::runtime_kind::sycl)
                    .total_ms();
            row.push_back(Table::num(*ddr / hbm_ms, 2));
        }
        rt.add_row(std::move(row));
    }
    rt.print(std::cout);

    // The size-3 relative-to-CPU view with HBM in place.
    std::cout << "\nRelative speedup over the Xeon CPU at size 3 "
                 "(the Fig. 5 bottom panel, FPGAs only):\n";
    Table r({"Application", "Agilex DDR4", "Agilex HBM2e (projected)"});
    for (const auto& e : bench::suite()) {
        if (!e.in_fig45) continue;
        const double cpu = *bench::total_ms(e, Variant::sycl_opt, "xeon_6128", 3);
        const auto ddr = bench::total_ms(e, Variant::fpga_opt, "agilex", 3);
        const auto hbm = bench::total_ms(e, Variant::fpga_opt, "agilex_hbm", 3);
        r.add_row({e.label, ddr ? Table::num(cpu / *ddr, 2) : "crash",
                   hbm ? Table::num(cpu / *hbm, 2) : "n/a"});
    }
    r.print(std::cout);
    std::cout << "\nInterpretation: applications the paper identified as "
                 "bandwidth-limited (CFD, FDTD2D, Where at large sizes) gain "
                 "the most; pipeline-bound designs (Mandelbrot, PF) are "
                 "unchanged, confirming the Sec. 6 hypothesis.\n";
    return 0;
}
