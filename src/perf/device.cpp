#include "perf/device.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace altis::perf {

const char* to_string(device_kind k) {
    switch (k) {
        case device_kind::cpu: return "cpu";
        case device_kind::gpu: return "gpu";
        case device_kind::fpga: return "fpga";
    }
    return "unknown";
}

double device_spec::fpga_peak_fp32_tflops(double freq_mhz) const {
    // Paper Sec. 3.1: Peak FP32 = N_dsp x 2 (FMA) x F_kernel.
    return static_cast<double>(user_dsps) * 2.0 * freq_mhz * 1e6 / 1e12;
}

namespace {

std::array<device_spec, 6> make_catalog() {
    std::array<device_spec, 6> d{};

    // Xeon Gold 6128 (Table 2). FP64 at half the FP32 vector rate.
    d[0].name = "xeon_6128";
    d[0].display = "Xeon Gold 6128 CPU";
    d[0].kind = device_kind::cpu;
    d[0].process_nm = 14;
    d[0].compute_units = 6;
    d[0].peak_fp32_tflops = 1.1;
    d[0].peak_fp64_tflops = 0.55;
    d[0].peak_sfu_tops = 0.025;  // libm exp/pow/log, not vectorized
    d[0].mem_bw_gbs = 128.0;
    d[0].pcie_bw_gbs = 0.0;  // host device: no transfer link
    // Sustained fractions reflect the oneAPI CPU runtime executing migrated
    // SIMT kernels: per-work-item loops with divergence defeat
    // auto-vectorization, so the sustained rate is a small fraction of the
    // AVX-512 peak -- matching the paper's baseline, where GPUs reach
    // 10-45x and FPGAs 1-28x over this CPU (Fig. 5).
    d[0].compute_efficiency = 0.12;
    d[0].mem_efficiency = 0.40;

    // RTX 2080 (Turing): FP64 throughput is 1/32 of FP32 -- this penalty is
    // what Fig. 5's CFD FP64 column shows relative to A100/Max 1100.
    d[1].name = "rtx_2080";
    d[1].display = "RTX 2080 GPU";
    d[1].kind = device_kind::gpu;
    d[1].process_nm = 12;
    d[1].compute_units = 46;
    d[1].peak_fp32_tflops = 10.1;
    d[1].peak_fp64_tflops = 10.1 / 32.0;
    d[1].peak_sfu_tops = 10.1 / 8.0;
    d[1].mem_bw_gbs = 448.0;
    d[1].pcie_bw_gbs = 12.0;

    // A100: strong FP64 (1:2) and the highest memory bandwidth in the set.
    d[2].name = "a100";
    d[2].display = "A100 GPU";
    d[2].kind = device_kind::gpu;
    d[2].process_nm = 7;
    d[2].compute_units = 108;
    d[2].peak_fp32_tflops = 19.5;
    d[2].peak_fp64_tflops = 9.7;
    d[2].peak_sfu_tops = 19.5 / 8.0;
    d[2].mem_bw_gbs = 1555.0;
    d[2].pcie_bw_gbs = 24.0;

    // Max 1100 "Ponte Vecchio": FP64 at FP32 rate.
    d[3].name = "max_1100";
    d[3].display = "Max 1100 GPU (Ponte Vecchio)";
    d[3].kind = device_kind::gpu;
    d[3].process_nm = 10;
    d[3].compute_units = 56;
    d[3].peak_fp32_tflops = 22.2;
    d[3].peak_fp64_tflops = 22.2;
    d[3].peak_sfu_tops = 22.2 / 8.0;
    d[3].mem_bw_gbs = 1229.0;
    d[3].pcie_bw_gbs = 24.0;

    // BittWare 520N, Stratix 10 GX 2800. Totals from Table 3 ("T:" row);
    // user-logic DSPs and frequency range from Table 2. USM unsupported.
    d[4].name = "stratix_10";
    d[4].display = "Stratix 10 FPGA (BittWare 520N)";
    d[4].kind = device_kind::fpga;
    d[4].process_nm = 14;
    d[4].compute_units = 4713;
    d[4].user_dsps = 4713;
    d[4].total_alms = 933120;
    d[4].total_brams = 11721;
    d[4].total_dsps = 5760;
    d[4].fmin_mhz = 250.0;
    d[4].fmax_mhz = 450.0;
    d[4].peak_fp32_tflops = 0.0;  // use fpga_peak_fp32_tflops(freq)
    d[4].peak_fp64_tflops = 0.0;
    d[4].mem_bw_gbs = 76.8;
    d[4].pcie_bw_gbs = 12.0;
    d[4].usm_supported = false;

    // Terasic DE10-Agilex, Agilex AGF 014. Fewer resources than the
    // Stratix 10 GX 2800 (Sec. 5.5: S10 has +47.7% ALMs, +39.3% BRAMs,
    // +21.7% DSPs) but higher achievable frequency.
    d[5].name = "agilex";
    d[5].display = "Agilex FPGA (DE10 Agilex)";
    d[5].kind = device_kind::fpga;
    d[5].process_nm = 10;
    d[5].compute_units = 4510;
    d[5].user_dsps = 4510;
    d[5].total_alms = 487200;
    d[5].total_brams = 7110;
    d[5].total_dsps = 4510;
    d[5].fmin_mhz = 250.0;
    d[5].fmax_mhz = 550.0;
    d[5].mem_bw_gbs = 85.3;
    d[5].pcie_bw_gbs = 12.0;
    d[5].usm_supported = false;

    return d;
}

// The paper's future work (Sec. 6): an HBM-enabled Agilex 7 M-series. Same
// fabric personality as the DE10 Agilex model but with HBM2e in place of
// DDR4 -- used by bench/future_hbm_agilex to test whether the bandwidth
// ceiling behind the size-3 FPGA results lifts.
device_spec make_agilex_hbm(const device_spec& agilex) {
    device_spec d = agilex;
    d.name = "agilex_hbm";
    d.display = "Agilex 7 M-series FPGA (HBM2e, projected)";
    d.total_alms = 912800;  // AGM039 fabric
    d.total_brams = 13272;
    d.total_dsps = 8528;
    d.user_dsps = 8055;
    d.mem_bw_gbs = 820.0;  // HBM2e, attainable
    return d;
}

const std::array<device_spec, 7>& catalog_storage() {
    static const std::array<device_spec, 7> catalog = [] {
        const std::array<device_spec, 6> base = make_catalog();
        std::array<device_spec, 7> all{};
        std::copy(base.begin(), base.end(), all.begin());
        all[6] = make_agilex_hbm(base[5]);
        return all;
    }();
    return catalog;
}

}  // namespace

std::span<const device_spec> device_catalog() { return catalog_storage(); }

const device_spec& device_by_name(const std::string& name) {
    for (const auto& d : catalog_storage())
        if (d.name == name) return d;
    throw std::out_of_range("unknown device: " + name);
}

}  // namespace altis::perf
