# Empty compiler generated dependencies file for ablation_rng.
# This may be replaced when dependencies are built.
