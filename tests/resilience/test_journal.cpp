#include "resilience/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace altis::resilience {
namespace {

std::string tmp_path(const std::string& name) {
    return ::testing::TempDir() + "altis_journal_" + name;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

journal_entry sample_entry() {
    journal_entry e;
    e.config = "KMeans/fpga_opt/stratix_10/size2";
    e.status = "retried";
    e.attempts = 3;
    e.backoff_ms = 75.5;
    e.error = "";
    e.value = 12.625;
    e.log = "KMeans: attempt 1 failed (injected), retrying after 25 ms\n"
            "KMeans: ok (2 passes, verified, 3 attempts, 75.5 ms backoff)\n";
    journal_series s;
    s.test = "kernel_time";
    s.atts = "size=2,device=stratix_10";
    s.unit = "ms";
    s.values = {1.5, 0.1, 1e300, -0.0};
    e.results.push_back(s);
    return e;
}

TEST(Journal, LineRoundTripIsExact) {
    const journal_entry e = sample_entry();
    const std::string line = to_line(e);
    const auto back = parse_line(line);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->config, e.config);
    EXPECT_EQ(back->status, e.status);
    EXPECT_EQ(back->attempts, e.attempts);
    EXPECT_EQ(back->backoff_ms, e.backoff_ms);
    EXPECT_EQ(back->error, e.error);
    ASSERT_TRUE(back->value.has_value());
    EXPECT_EQ(*back->value, *e.value);
    EXPECT_EQ(back->log, e.log);
    ASSERT_EQ(back->results.size(), 1u);
    EXPECT_EQ(back->results[0].test, e.results[0].test);
    EXPECT_EQ(back->results[0].atts, e.results[0].atts);
    EXPECT_EQ(back->results[0].unit, e.results[0].unit);
    EXPECT_EQ(back->results[0].values, e.results[0].values);
    // Byte-identity on resume depends on serialization being a fixed point.
    EXPECT_EQ(to_line(*back), line);
}

TEST(Journal, EscapesAndAbsentValueSurvive) {
    journal_entry e;
    e.config = "weird \"config\"\\with\nnewline\tand\x01control";
    e.status = "failed";
    e.error = "injected fault: alloc@1 on \"usm_host\"";
    e.value.reset();
    const auto back = parse_line(to_line(e));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->config, e.config);
    EXPECT_EQ(back->error, e.error);
    EXPECT_FALSE(back->value.has_value());
}

TEST(Journal, TornOrGarbageLinesParseToNothing) {
    EXPECT_FALSE(parse_line("").has_value());
    EXPECT_FALSE(parse_line("not json").has_value());
    const std::string line = to_line(sample_entry());
    EXPECT_FALSE(parse_line(line.substr(0, line.size() / 2)).has_value());
}

TEST(Journal, WriterCreatesHeaderAtomicallyAndReaderRoundTrips) {
    const std::string path = tmp_path("fresh.jsonl");
    std::remove(path.c_str());
    {
        journal_writer w(path, "fig4_fpga_opt", /*append=*/false);
        EXPECT_EQ(w.path(), path);
        w.append(sample_entry());
        // No leftover temp file once construction finished.
        std::ifstream tmp(path + ".tmp");
        EXPECT_FALSE(tmp.good());
    }
    const auto jf = read_journal(path, "fig4_fpga_opt");
    ASSERT_TRUE(jf.has_value());
    EXPECT_EQ(jf->sweep, "fig4_fpga_opt");
    ASSERT_EQ(jf->entries.size(), 1u);
    EXPECT_EQ(jf->entries[0].config, sample_entry().config);
}

TEST(Journal, AppendModeContinuesAnExistingJournal) {
    const std::string path = tmp_path("append.jsonl");
    std::remove(path.c_str());
    {
        journal_writer w(path, "sweep", false);
        journal_entry e = sample_entry();
        e.config = "first";
        w.append(e);
    }
    {
        journal_writer w(path, "sweep", /*append=*/true);
        journal_entry e = sample_entry();
        e.config = "second";
        w.append(e);
    }
    const auto jf = read_journal(path, "sweep");
    ASSERT_TRUE(jf.has_value());
    ASSERT_EQ(jf->entries.size(), 2u);
    EXPECT_EQ(jf->entries[0].config, "first");
    EXPECT_EQ(jf->entries[1].config, "second");
}

TEST(Journal, ReaderToleratesATornFinalLine) {
    const std::string path = tmp_path("torn.jsonl");
    std::remove(path.c_str());
    {
        journal_writer w(path, "sweep", false);
        w.append(sample_entry());
    }
    // Simulate a SIGKILL mid-append: half a line, no trailing newline.
    const std::string line = to_line(sample_entry());
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << line.substr(0, line.size() / 3);
    }
    const auto jf = read_journal(path, "sweep");
    ASSERT_TRUE(jf.has_value());
    EXPECT_EQ(jf->entries.size(), 1u) << "torn tail must be dropped";
}

TEST(Journal, DuplicateConfigsKeepTheFirstOccurrence) {
    const std::string path = tmp_path("dup.jsonl");
    std::remove(path.c_str());
    {
        journal_writer w(path, "sweep", false);
        journal_entry e = sample_entry();
        e.status = "failed";
        w.append(e);
        e.status = "ok";
        w.append(e);
    }
    const auto jf = read_journal(path, "sweep");
    ASSERT_TRUE(jf.has_value());
    ASSERT_EQ(jf->entries.size(), 1u);
    EXPECT_EQ(jf->entries[0].status, "failed");
}

TEST(Journal, MissingFileIsAFreshRunNotAnError) {
    EXPECT_FALSE(
        read_journal(tmp_path("never_written.jsonl"), "sweep").has_value());
}

TEST(Journal, SweepMismatchThrows) {
    const std::string path = tmp_path("mismatch.jsonl");
    std::remove(path.c_str());
    { journal_writer w(path, "fig2_gpu_speedup", false); }
    EXPECT_THROW((void)read_journal(path, "fig4_fpga_opt"),
                 std::runtime_error);
}

TEST(Journal, UnwritablePathThrows) {
    EXPECT_THROW(journal_writer("/nonexistent_dir_zz/j.jsonl", "s", false),
                 std::runtime_error);
}

}  // namespace
}  // namespace altis::resilience
