# Empty compiler generated dependencies file for altis_scan.
# This may be replaced when dependencies are built.
