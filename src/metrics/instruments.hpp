// Catalog of the runtime's wall-clock instruments. Every metric the
// functional substrate emits is declared here, in one place, so the name,
// help text and type that reach the Prometheus/JSON exports (and the table
// in docs/OBSERVABILITY.md) cannot drift from the instrumentation sites.
//
// Each accessor registers on first use (mutex-guarded, cold) and afterwards
// returns the cached reference. Call sites must gate on
// metrics::collecting() first -- the accessors themselves are cheap but not
// free (a static-init guard check), and the clock reads that usually feed
// them are not either.
#pragma once

#include "metrics/registry.hpp"

namespace altis::metrics::instruments {

// ---- syclite::queue -------------------------------------------------------

inline counter& queue_submissions() {
    static counter& c = registry::instance().get_counter(
        "syclite_queue_submissions_total",
        "Kernel submissions accepted by syclite::queue (sequential and "
        "dataflow)");
    return c;
}

inline histogram& queue_submit_latency_ns() {
    static histogram& h = registry::instance().get_histogram(
        "syclite_queue_submit_latency_ns",
        "Wall-clock ns from submit() entry to functional completion of the "
        "command group");
    return h;
}

inline gauge& queue_inflight_kernels() {
    static gauge& g = registry::instance().get_gauge(
        "syclite_queue_inflight_kernels",
        "Kernels currently executing on the functional substrate");
    return g;
}

inline counter& queue_waits() {
    static counter& c = registry::instance().get_counter(
        "syclite_queue_waits_total", "queue::wait() synchronizations");
    return c;
}

inline counter& queue_async_errors() {
    static counter& c = registry::instance().get_counter(
        "syclite_queue_async_errors_total",
        "Errors captured for asynchronous delivery (handler installed) or "
        "raised from kernel execution");
    return c;
}

inline counter& queue_dataflow_groups() {
    static counter& c = registry::instance().get_counter(
        "syclite_queue_dataflow_groups_total",
        "Dataflow groups launched via end_dataflow()");
    return c;
}

// ---- syclite::thread_pool -------------------------------------------------

inline counter& pool_worker_busy_ns() {
    static counter& c = registry::instance().get_counter(
        "syclite_pool_worker_busy_ns",
        "Wall-clock ns pool workers spent executing job chunks");
    return c;
}

inline counter& pool_worker_idle_ns() {
    static counter& c = registry::instance().get_counter(
        "syclite_pool_worker_idle_ns",
        "Wall-clock ns pool workers spent parked waiting for work");
    return c;
}

inline counter& pool_jobs() {
    static counter& c = registry::instance().get_counter(
        "syclite_pool_jobs_total", "parallel_for jobs published to the pool");
    return c;
}

inline counter& pool_chunks() {
    static counter& c = registry::instance().get_counter(
        "syclite_pool_chunks_total",
        "Work chunks self-scheduled by job participants (submitter and "
        "workers)");
    return c;
}

inline gauge& pool_active_workers() {
    static gauge& g = registry::instance().get_gauge(
        "syclite_pool_active_workers",
        "Pool workers currently executing a job (excludes the submitting "
        "thread)");
    return g;
}

// ---- syclite::pipe --------------------------------------------------------

inline watermark& pipe_occupancy_hwm() {
    static watermark& w = registry::instance().get_watermark(
        "syclite_pipe_occupancy_hwm",
        "High-water mark of buffered elements across all pipes");
    return w;
}

inline counter& pipe_items() {
    static counter& c = registry::instance().get_counter(
        "syclite_pipe_items_total",
        "Elements moved through pipes (writes; element and burst APIs)");
    return c;
}

inline histogram& pipe_burst_items() {
    static histogram& h = registry::instance().get_histogram(
        "syclite_pipe_burst_items",
        "Span length per write_burst/read_burst call");
    return h;
}

inline counter& pipe_blocked_write_ns() {
    static counter& c = registry::instance().get_counter(
        "syclite_pipe_blocked_write_ns",
        "Wall-clock ns producers spent waiting for ring space");
    return c;
}

inline counter& pipe_blocked_read_ns() {
    static counter& c = registry::instance().get_counter(
        "syclite_pipe_blocked_read_ns",
        "Wall-clock ns consumers spent waiting for ring data");
    return c;
}

inline counter& pipe_parks() {
    static counter& c = registry::instance().get_counter(
        "syclite_pipe_parks_total",
        "Times a pipe endpoint exhausted its spin/yield budget and parked on "
        "the condvar");
    return c;
}

inline counter& pipe_wakes() {
    static counter& c = registry::instance().get_counter(
        "syclite_pipe_wakes_total",
        "Dekker-handshake notifications sent to a parked peer");
    return c;
}

// ---- allocators (USM + buffers) ------------------------------------------

inline gauge& usm_live_bytes() {
    static gauge& g = registry::instance().get_gauge(
        "syclite_usm_live_bytes", "Bytes currently allocated through USM");
    return g;
}

inline watermark& usm_peak_bytes() {
    static watermark& w = registry::instance().get_watermark(
        "syclite_usm_peak_bytes", "Peak USM bytes live at once");
    return w;
}

inline counter& usm_allocs() {
    static counter& c = registry::instance().get_counter(
        "syclite_usm_allocs_total", "USM allocations (malloc_host/device/shared)");
    return c;
}

inline counter& usm_frees() {
    static counter& c = registry::instance().get_counter(
        "syclite_usm_frees_total", "USM frees");
    return c;
}

inline gauge& buffer_live_bytes() {
    static gauge& g = registry::instance().get_gauge(
        "syclite_buffer_live_bytes",
        "Bytes currently held by live syclite::buffer objects");
    return g;
}

inline watermark& buffer_peak_bytes() {
    static watermark& w = registry::instance().get_watermark(
        "syclite_buffer_peak_bytes", "Peak buffer bytes live at once");
    return w;
}

inline counter& buffer_allocs() {
    static counter& c = registry::instance().get_counter(
        "syclite_buffer_allocs_total", "syclite::buffer constructions");
    return c;
}

// ---- altis::mem -----------------------------------------------------------

inline counter& mem_pool_hits() {
    static counter& c = registry::instance().get_counter(
        "altis_mem_pool_hits_total",
        "Allocations served from a pool cache (thread magazine, central free "
        "list or large-object reuse cache)");
    return c;
}

inline counter& mem_pool_misses() {
    static counter& c = registry::instance().get_counter(
        "altis_mem_pool_misses_total",
        "Allocations that needed fresh OS memory (slab carve or large "
        "object)");
    return c;
}

inline counter& mem_recycled_bytes() {
    static counter& c = registry::instance().get_counter(
        "altis_mem_recycled_bytes_total",
        "Payload bytes served from pool caches instead of the OS");
    return c;
}

inline gauge& mem_magazine_blocks() {
    static gauge& g = registry::instance().get_gauge(
        "altis_mem_magazine_blocks",
        "Blocks currently cached in per-thread magazines (re-seeded from "
        "the pool at session start)");
    return g;
}

inline gauge& mem_reuse_cache_bytes() {
    static gauge& g = registry::instance().get_gauge(
        "altis_mem_reuse_cache_bytes",
        "Bytes currently parked in the large-object reuse cache");
    return g;
}

inline counter& mem_parallel_copies() {
    static counter& c = registry::instance().get_counter(
        "altis_mem_parallel_copies_total",
        "Transfers that took the chunked parallel-memcpy fast path");
    return c;
}

inline counter& mem_parallel_copy_bytes() {
    static counter& c = registry::instance().get_counter(
        "altis_mem_parallel_copy_bytes_total",
        "Bytes moved by the parallel-memcpy fast path");
    return c;
}

// ---- syclite::graph (out-of-order DAG scheduler) --------------------------

inline counter& sched_nodes() {
    static counter& c = registry::instance().get_counter(
        "altis_sched_nodes_total",
        "Command nodes (kernels and transfers) enqueued on out-of-order "
        "graph schedulers");
    return c;
}

inline counter& sched_edges() {
    static counter& c = registry::instance().get_counter(
        "altis_sched_edges_total",
        "Dependency edges resolved at enqueue (explicit depends_on plus "
        "accessor/USM-implied RAW/WAR/WAW conflicts)");
    return c;
}

inline watermark& sched_ready_depth() {
    static watermark& w = registry::instance().get_watermark(
        "altis_sched_ready_depth",
        "High-water mark of dependency-free nodes waiting for a dispatch "
        "slot");
    return w;
}

inline histogram& sched_dispatch_latency_ns() {
    static histogram& h = registry::instance().get_histogram(
        "altis_sched_dispatch_latency_ns",
        "Wall-clock ns from a node becoming ready to a worker (or joining "
        "host) starting it");
    return h;
}

inline histogram& sched_overlap_pct() {
    static histogram& h = registry::instance().get_histogram(
        "altis_sched_overlap_pct",
        "Per-join overlap ratio: summed modeled node time over the graph "
        "region's makespan, in percent (100 = fully serial, higher = "
        "overlapped)");
    return h;
}

inline counter& sched_cancelled_nodes() {
    static counter& c = registry::instance().get_counter(
        "altis_sched_cancelled_nodes_total",
        "Graph nodes cancelled at their dispatch checkpoint (deadline or "
        "explicit cancellation) before running");
    return c;
}

// ---- altis::sanitize ------------------------------------------------------

inline counter& sanitize_shadow_intervals() {
    static counter& c = registry::instance().get_counter(
        "altis_sanitize_shadow_intervals_total",
        "Observed-access intervals flushed into the sanitize shadow store");
    return c;
}

inline counter& sanitize_race_checks() {
    static counter& c = registry::instance().get_counter(
        "altis_sanitize_race_checks_total",
        "Happens-before queries evaluated by the ALS-R1 race pass");
    return c;
}

// ---- altis::fault ---------------------------------------------------------

inline counter& fault_retries() {
    static counter& c = registry::instance().get_counter(
        "altis_fault_retries_total",
        "Retries performed by fault::run_guarded after retryable faults");
    return c;
}

inline counter& fault_backoff_ns() {
    static counter& c = registry::instance().get_counter(
        "altis_fault_backoff_ns_total",
        "Accounted (simulated) exponential-backoff ns across retries");
    return c;
}

inline counter& fault_failures() {
    static counter& c = registry::instance().get_counter(
        "altis_fault_failures_total",
        "run_guarded outcomes that exhausted retries or hit non-retryable "
        "errors");
    return c;
}

// ---- altis::resilience ----------------------------------------------------

inline counter& resilience_deadline_misses() {
    static counter& c = registry::instance().get_counter(
        "resilience_deadline_misses_total",
        "Configurations cancelled because they overran --deadline-ms");
    return c;
}

inline counter& resilience_quarantined() {
    static counter& c = registry::instance().get_counter(
        "resilience_quarantined_total",
        "Configurations skipped by an open circuit breaker");
    return c;
}

inline counter& resilience_replays() {
    static counter& c = registry::instance().get_counter(
        "resilience_replayed_total",
        "Configurations replayed from a --resume journal instead of re-run");
    return c;
}

inline histogram& resilience_cancel_latency_ns() {
    static histogram& h = registry::instance().get_histogram(
        "resilience_cancel_latency_ns",
        "Wall-clock ns from the cancellation being due (deadline expiry or "
        "cancel()) to a checkpoint raising it");
    return h;
}

}  // namespace altis::metrics::instruments
