// Ablation sweeps over the FPGA optimization knobs DESIGN.md calls out,
// using the device models directly: unrolling (LavaMD, Sec. 5.2 case 1),
// speculated iterations (Mandelbrot, Sec. 5.3), compute-unit replication
// (Where, Sec. 5.1), SIMD vectorization (CFD FP32, Sec. 5.2), the SRAD
// work-group/SIMD grid (Sec. 5.2 case 2), and pow(a,2) vs a*a on the GPU
// side (PF Float, Sec. 3.3).
#include <iostream>

#include "apps/cfd/cfd.hpp"
#include "apps/lavamd/lavamd.hpp"
#include "apps/mandelbrot/mandelbrot.hpp"
#include "apps/particlefilter/particlefilter.hpp"
#include "apps/where/where.hpp"
#include "core/report.hpp"
#include "perf/model.hpp"
#include "perf/resource_model.hpp"

namespace {

using altis::Table;
using altis::Variant;
namespace apps = altis::apps;
namespace perf = altis::perf;

void unroll_sweep() {
    const auto& s10 = perf::device_by_name("stratix_10");
    auto k = apps::lavamd::fpga_design(s10, 2)[0];
    std::cout << "== LavaMD shared-memory loop unrolling (Stratix 10, size 2) "
                 "==\n";
    Table t({"unroll", "time [ms]", "speedup vs 1x", "Fmax [MHz]",
             "timing clean"});
    k.unroll = 1;
    const double base = perf::kernel_time_ns(k, s10);
    for (int u : {1, 2, 4, 8, 16, 30, 40}) {
        k.unroll = u;
        const auto res = perf::estimate_kernel_resources(k, s10);
        t.add_row({std::to_string(u),
                   Table::num(perf::kernel_time_ns(k, s10) / 1e6, 2),
                   Table::num(base / perf::kernel_time_ns(k, s10), 1),
                   Table::num(res.fmax_mhz, 0),
                   res.timing_clean ? "yes" : "NO (violation)"});
    }
    t.print(std::cout);
    std::cout << "paper: almost-linear to 30x; beyond that, timing "
                 "violations.\n\n";
}

void speculation_sweep() {
    const auto& s10 = perf::device_by_name("stratix_10");
    auto k = apps::mandelbrot::fpga_design(s10, 3)[0];
    std::cout << "== Mandelbrot speculated iterations (Stratix 10, size 3) "
                 "==\n";
    Table t({"speculated_iterations", "time [ms]", "wasted cycles [M]"});
    const double entries = k.loops[0].entries;
    for (int s : {0, 1, 2, 4, 8}) {
        k.loops[0].speculated_iterations = s;
        t.add_row({std::to_string(s),
                   Table::num(perf::kernel_time_ns(k, s10) / 1e6, 2),
                   Table::num(entries * s / 1e6, 1)});
    }
    t.print(std::cout);
    std::cout << "paper: compiler default 4 wastes up to 8192*8192*4 cycles "
                 "of the nested loops.\n\n";
}

void replication_sweep() {
    const auto& s10 = perf::device_by_name("stratix_10");
    auto design = apps::where::fpga_design(s10, 2);
    std::cout << "== Where mark-kernel compute-unit replication (Stratix 10, "
                 "size 2) ==\n";
    Table t({"compute units", "mark time [ms]", "design fits"});
    for (int r : {1, 2, 4, 10, 20, 30, 50}) {
        design[0].replication = r;
        const auto res = perf::estimate_design_resources(design, s10);
        t.add_row({std::to_string(r),
                   Table::num(perf::fpga_kernel_time_ns(design[0], s10,
                                                        res.fmax_mhz) /
                                  1e6,
                              3),
                   res.fits ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "paper tuning: 20x on Stratix 10, 25x on Agilex; gains "
                 "saturate at the memory wall.\n\n";
}

void simd_sweep() {
    const auto& s10 = perf::device_by_name("stratix_10");
    auto flux = apps::cfd::fpga_design(false, s10, 3)[2];
    flux.replication = 1;
    std::cout << "== CFD FP32 flux-kernel SIMD vectorization (one CU, "
                 "Stratix 10, size 3) ==\n";
    Table t({"SIMD", "time [ms]", "DSP %"});
    for (int v : {1, 2, 4, 8}) {
        flux.simd = v;
        const auto res = perf::estimate_kernel_resources(flux, s10);
        t.add_row({std::to_string(v),
                   Table::num(perf::fpga_kernel_time_ns(flux, s10, 300.0) / 1e6,
                              2),
                   Table::percent(res.dsp_frac)});
    }
    t.print(std::cout);
    std::cout << "paper: resources scale ~linearly with V, performance only "
                 "to V = 2 (memory bandwidth).\n\n";
}

void srad_grid() {
    const auto& s10 = perf::device_by_name("stratix_10");
    std::cout << "== SRAD work-group size vs SIMD (Stratix 10) ==\n";
    Table t({"work-group", "SIMD", "time [ms]", "Fmax [MHz]"});
    for (const auto& [wg, simd] : {std::pair{16 * 16, 8}, {32 * 32, 4},
                                   {64 * 64, 2}}) {
        perf::kernel_stats k;
        k.name = "srad_grid_point";
        k.form = perf::kernel_form::nd_range;
        k.global_items = 1 << 20;
        k.wg_size = wg;
        k.simd = simd;
        k.fp32_ops = 30;
        k.static_fp32_ops = 30;
        k.pattern = perf::local_pattern::banked;
        k.local_arrays = 11;
        k.local_mem_bytes = 11.0 * wg * 4.0;
        k.local_accesses = 8;
        k.bytes_read = 8;
        k.bytes_written = 4;
        const auto res = perf::estimate_kernel_resources(k, s10);
        t.add_row({std::to_string(wg), std::to_string(simd),
                   Table::num(perf::kernel_time_ns(k, s10) / 1e6, 2),
                   Table::num(res.fmax_mhz, 0)});
    }
    t.print(std::cout);
    std::cout << "paper: 64x64 @ SIMD 2 is ~4x faster than 16x16 @ SIMD 8.\n\n";
}

void pow_vs_mul() {
    const auto& rtx = perf::device_by_name("rtx_2080");
    std::cout << "== PF Float: pow(a,2) vs a*a on the RTX 2080 (size 2) ==\n";
    Table t({"form", "total [ms]"});
    const auto cuda_pow = apps::simulate_region(
        apps::particlefilter::region(apps::particlefilter::flavor::floatopt,
                                     Variant::cuda, rtx, 2),
        rtx, perf::runtime_kind::cuda);
    const auto sycl_mul = apps::simulate_region(
        apps::particlefilter::region(apps::particlefilter::flavor::floatopt,
                                     Variant::sycl_opt, rtx, 2),
        rtx, perf::runtime_kind::sycl);
    t.add_row({"CUDA original, pow(a,2)", Table::num(cuda_pow.total_ms(), 2)});
    t.add_row({"DPCT-migrated, a*a", Table::num(sycl_mul.total_ms(), 2)});
    t.print(std::cout);
    std::cout << "ratio: "
              << Table::num(cuda_pow.total_ms() / sycl_mul.total_ms(), 1)
              << "x (paper: up to 6x)\n";
}

}  // namespace

int main() {
    unroll_sweep();
    speculation_sweep();
    replication_sweep();
    simd_sweep();
    srad_grid();
    pow_vs_mul();
    return 0;
}
