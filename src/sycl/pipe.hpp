// Inter-kernel pipes (Intel FPGA extension analogue). A pipe is a bounded
// blocking FIFO connecting two kernels of one dataflow group; the optimized
// KMeans design (paper Fig. 3) streams every point's mapping through a pipe
// instead of bouncing it off global memory.
//
// Divergence from Intel SYCL: Intel pipes are static program-scope classes
// (pipe<id, T, capacity>::write). syclite pipes are objects captured by
// reference, which keeps them testable; capacity semantics are identical.
//
// Execution engine: the ring is a lock-free single-producer/single-consumer
// queue -- monotonic head/tail counters on separate cache lines, published
// with release stores and observed with acquire loads, so the per-element
// fast path takes no lock and signals no condvar. Exactly one thread may
// write (the producer kernel) and exactly one may read (the consumer
// kernel), which is what every dataflow group in the suite is; see
// docs/PERFORMANCE.md. When the ring is empty/full the waiter spins briefly,
// yields, and only then parks on a condvar; the peer wakes it through a
// Dekker-style handshake (seq_cst fence between publishing the counter and
// checking the waiter flag). write_burst/read_burst move whole spans per
// counter publication for streaming kernels.
//
// Deadlock watchdog: blocking read/write time out (constructor argument,
// $ALTIS_PIPE_TIMEOUT_MS, or 30 s by default) and throw pipe_deadlock with
// the pipe's name, capacity and occupancy. Inside a dataflow group the queue
// converts those into one structured dataflow_error naming every blocked
// kernel. An active fault plan (`pipe:<name>@N`) can stall the Nth matching
// pipe operation to exercise exactly that path; try_write/try_read consume
// the same plan rules but realize the stall as a non-blocking refusal.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analyze/shadow.hpp"
#include "fault/inject.hpp"
#include "metrics/instruments.hpp"
#include "resilience/cancel.hpp"

namespace syclite {

class pipe_deadlock : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Deadlock-timeout applied to pipes that do not pass one explicitly:
/// $ALTIS_PIPE_TIMEOUT_MS when set (and parseable), else 30000 ms. Read per
/// construction so tests can adjust the environment between pipes.
[[nodiscard]] inline std::chrono::milliseconds default_pipe_timeout() {
    if (const char* env = std::getenv("ALTIS_PIPE_TIMEOUT_MS")) {
        char* end = nullptr;
        const long ms = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && ms > 0)
            return std::chrono::milliseconds(ms);
    }
    return std::chrono::milliseconds(30000);
}

template <typename T>
class pipe {
public:
    explicit pipe(std::size_t capacity = 64, std::string name = "pipe",
                  std::chrono::milliseconds timeout = default_pipe_timeout())
        : capacity_(capacity),
          name_(std::move(name)),
          timeout_(timeout),
          ring_(capacity) {
        if (capacity == 0) throw std::invalid_argument("pipe capacity must be > 0");
        if (timeout <= std::chrono::milliseconds::zero())
            throw std::invalid_argument("pipe timeout must be > 0");
    }

    pipe(const pipe&) = delete;
    pipe& operator=(const pipe&) = delete;

    /// Blocking write; throws pipe_deadlock if the consumer never drains
    /// (guards against kernels mistakenly run outside a dataflow group).
    void write(const T& value) {
        maybe_injected_stall("write");
        if (!space_available()) wait_for_space("write");
        ring_[wrap(tail_pos_)] = value;
        publish_tail(tail_pos_ + 1);
    }

    /// Blocking read; throws pipe_deadlock if no producer ever writes.
    T read() {
        maybe_injected_stall("read");
        if (!data_available()) wait_for_data("read");
        T value = std::move(ring_[wrap(head_pos_)]);
        publish_head(head_pos_ + 1);
        return value;
    }

    /// Writes `n` elements from `src`, blocking as needed; moves whole spans
    /// per counter publication, so streaming kernels pay the synchronization
    /// once per burst instead of once per element. The watchdog applies to
    /// every stretch without progress, like a sequence of write() calls.
    void write_burst(const T* src, std::size_t n) {
        maybe_injected_stall("write_burst");
        if (altis::metrics::collecting())
            altis::metrics::instruments::pipe_burst_items().record(n);
        std::size_t done = 0;
        while (done < n) {
            if (!space_available()) wait_for_space("write_burst");
            const std::size_t space =
                capacity_ - static_cast<std::size_t>(tail_pos_ - head_cache_);
            std::size_t chunk = n - done;
            if (chunk > space) chunk = space;
            for (std::size_t i = 0; i < chunk; ++i)
                ring_[wrap(tail_pos_ + i)] = src[done + i];
            publish_tail(tail_pos_ + chunk);
            done += chunk;
        }
    }

    /// Reads `n` elements into `dst`, blocking as needed; the dual of
    /// write_burst.
    void read_burst(T* dst, std::size_t n) {
        maybe_injected_stall("read_burst");
        if (altis::metrics::collecting())
            altis::metrics::instruments::pipe_burst_items().record(n);
        std::size_t done = 0;
        while (done < n) {
            if (!data_available()) wait_for_data("read_burst");
            const std::size_t avail =
                static_cast<std::size_t>(tail_cache_ - head_pos_);
            std::size_t chunk = n - done;
            if (chunk > avail) chunk = avail;
            for (std::size_t i = 0; i < chunk; ++i)
                dst[done + i] = std::move(ring_[wrap(head_pos_ + i)]);
            publish_head(head_pos_ + chunk);
            done += chunk;
        }
    }

    /// Non-blocking write. An injected stall for this pipe is realized as a
    /// refusal -- the operation behaves as if the ring were full, the same
    /// "peer made no progress" semantics the blocking API turns into a
    /// watchdog timeout.
    [[nodiscard]] bool try_write(const T& value) {
        if (altis::fault::should_stall_pipe(name_)) return false;
        if (!space_available()) return false;
        ring_[wrap(tail_pos_)] = value;
        publish_tail(tail_pos_ + 1);
        return true;
    }

    /// Non-blocking read; injected stalls refuse, as in try_write.
    [[nodiscard]] bool try_read(T& value) {
        if (altis::fault::should_stall_pipe(name_)) return false;
        if (!data_available()) return false;
        value = std::move(ring_[wrap(head_pos_)]);
        publish_head(head_pos_ + 1);
        return true;
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::chrono::milliseconds timeout() const { return timeout_; }
    /// Elements currently buffered (racy under concurrency; for reporting).
    [[nodiscard]] std::size_t occupancy() const {
        // Head first: head only grows toward tail, so a tail loaded *after*
        // head can never be smaller and the difference cannot underflow.
        // The two counters are still published independently (and bursts
        // advance them by whole spans), so between the loads the consumer
        // may drain and the producer refill: the raw difference can exceed
        // capacity mid-burst. Clamp the snapshot into [0, capacity] so the
        // watchdog's capacity+occupancy message and the occupancy gauge can
        // never report an impossible level.
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        const std::uint64_t t = tail_.load(std::memory_order_acquire);
        const std::uint64_t d = t >= h ? t - h : 0;
        return std::min(static_cast<std::size_t>(d), capacity_);
    }

private:
    [[nodiscard]] std::size_t wrap(std::uint64_t pos) const {
        // Conditional wrap instead of %: positions advance monotonically and
        // the producer/consumer each derive their slot from their own
        // counter, so slot == pos - k*capacity with k growing by at most one
        // capacity per call; a subtract loop would also work but the single
        // modulo here is only reached through the cached fast checks below.
        return static_cast<std::size_t>(pos % capacity_);
    }

    /// Producer-side fast check: true when at least one slot is free,
    /// refreshing the cached consumer position only on apparent full.
    [[nodiscard]] bool space_available() {
        if (tail_pos_ - head_cache_ < capacity_) return true;
        head_cache_ = head_.load(std::memory_order_acquire);
        return tail_pos_ - head_cache_ < capacity_;
    }

    /// Consumer-side fast check, dual of space_available().
    [[nodiscard]] bool data_available() {
        if (tail_cache_ - head_pos_ > 0) return true;
        tail_cache_ = tail_.load(std::memory_order_acquire);
        return tail_cache_ - head_pos_ > 0;
    }

    void publish_tail(std::uint64_t pos) {
        // HB edge for the race engine: snapshot the producer's clock over
        // items [tail_pos_, pos) *before* the release store makes them
        // visible, so a consumer that observes the counter always finds a
        // covering publication. Gated like the metrics below.
        if (altis::analyze::shadow::tracking())
            altis::analyze::shadow::on_pipe_publish(this, name_.c_str(),
                                                    tail_pos_, pos);
        if (altis::metrics::collecting()) {
            namespace mi = altis::metrics::instruments;
            mi::pipe_items().add(pos - tail_pos_);
            // Occupancy from the producer's view: newly published tail minus
            // the consumer's live position, clamped like occupancy() since
            // head can lag the slots we just verified free via head_cache_.
            const std::uint64_t h = head_.load(std::memory_order_relaxed);
            const std::uint64_t d = pos >= h ? pos - h : 0;
            mi::pipe_occupancy_hwm().record(
                std::min<std::uint64_t>(d, capacity_));
        }
        tail_pos_ = pos;
        tail_.store(pos, std::memory_order_release);
        // Dekker handshake with a parked consumer: the fence orders the
        // counter store before the flag load, pairing with the fence in
        // park(); either we see the flag and notify, or the waiter's
        // re-check sees the counter.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (consumer_waiting_.load(std::memory_order_relaxed)) {
            if (altis::metrics::collecting())
                altis::metrics::instruments::pipe_wakes().add();
            std::lock_guard lock(mutex_);
            not_empty_.notify_one();
        }
    }

    void publish_head(std::uint64_t pos) {
        // Consumer-side HB edge: join the covering publication's snapshot
        // for items [head_pos_, pos) into the consumer's clock.
        if (altis::analyze::shadow::tracking())
            altis::analyze::shadow::on_pipe_consume(this, name_.c_str(),
                                                    head_pos_, pos);
        head_pos_ = pos;
        head_.store(pos, std::memory_order_release);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (producer_waiting_.load(std::memory_order_relaxed)) {
            if (altis::metrics::collecting())
                altis::metrics::instruments::pipe_wakes().add();
            std::lock_guard lock(mutex_);
            not_full_.notify_one();
        }
    }

    void wait_for_space(const char* op) {
        wait_until(op, producer_waiting_, not_full_,
                   [&] { return space_available(); },
                   &altis::metrics::instruments::pipe_blocked_write_ns);
    }

    void wait_for_data(const char* op) {
        wait_until(op, consumer_waiting_, not_empty_,
                   [&] { return data_available(); },
                   &altis::metrics::instruments::pipe_blocked_read_ns);
    }

    /// Slow path shared by both sides: spin briefly (the peer usually
    /// publishes within a few hundred cycles when running), yield the
    /// timeslice a few times (essential when producer and consumer share a
    /// core), then park on the condvar in bounded slices until the watchdog
    /// deadline. The slices also bound the cost of the one benign race the
    /// handshake leaves: a notification skipped because the flag store and
    /// the counter load crossed costs at most one slice, never a hang.
    template <typename Ready>
    void wait_until(const char* op, std::atomic<bool>& waiting_flag,
                    std::condition_variable& cv, Ready&& ready,
                    altis::metrics::counter& (*blocked_ns)()) {
        for (int spin = 0; spin < 64; ++spin) {
            if (ready()) return;
        }
        // Past the free spins the caller is measurably blocked on its peer;
        // meter everything from here (yields included) as blocked time.
        const bool metered = altis::metrics::collecting();
        const auto blocked_from = metered
                                      ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point{};
        const auto meter_blocked = [&] {
            if (!metered) return;
            blocked_ns().add(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - blocked_from)
                    .count()));
        };
        for (int yields = 0; yields < 16; ++yields) {
            std::this_thread::yield();
            if (ready()) {
                meter_blocked();
                return;
            }
        }
        if (metered) altis::metrics::instruments::pipe_parks().add();
        const auto deadline = std::chrono::steady_clock::now() + timeout_;
        constexpr auto kSlice = std::chrono::milliseconds(1);
        std::unique_lock lock(mutex_);
        waiting_flag.store(true, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        for (;;) {
            if (ready()) break;
            // A parked endpoint must stay cancellable: the bounded slices
            // double as cancellation checkpoints, so a blocked pipe op wakes
            // within ~kSlice of a deadline/SIGINT instead of riding out the
            // full watchdog timeout.
            if (altis::resilience::cancellation_requested()) {
                waiting_flag.store(false, std::memory_order_relaxed);
                meter_blocked();
                altis::resilience::checkpoint();  // raises cancelled_error
            }
            const auto now = std::chrono::steady_clock::now();
            if (now >= deadline) {
                waiting_flag.store(false, std::memory_order_relaxed);
                meter_blocked();
                throw pipe_deadlock(deadlock_message(op));
            }
            cv.wait_for(lock, std::min<std::chrono::steady_clock::duration>(
                                  kSlice, deadline - now));
        }
        waiting_flag.store(false, std::memory_order_relaxed);
        meter_blocked();
    }

    std::string deadlock_message(const char* op) const {
        return "pipe '" + name_ + "' " + op + " timed out after " +
               std::to_string(timeout_.count()) + " ms (capacity " +
               std::to_string(capacity_) + ", occupancy " +
               std::to_string(occupancy()) + "/" + std::to_string(capacity_) +
               ") -- are both kernels running in a dataflow group?";
    }

    /// An injected stall behaves as if the peer kernel never made progress:
    /// this operation blocks for the full watchdog timeout, then collapses
    /// through the ordinary deadlock path.
    void maybe_injected_stall(const char* op) {
        if (!altis::fault::should_stall_pipe(name_)) return;
        const auto deadline = std::chrono::steady_clock::now() + timeout_;
        constexpr auto kSlice = std::chrono::milliseconds(1);
        std::unique_lock lock(mutex_);
        // Sliced like wait_until so an injected hang is still cancellable
        // by the deadline supervisor (the hang-injection tests depend on a
        // small --deadline-ms cutting a huge pipe timeout short).
        for (;;) {
            altis::resilience::checkpoint();
            const auto now = std::chrono::steady_clock::now();
            if (now >= deadline) break;
            stall_cv_.wait_for(lock,
                               std::min<std::chrono::steady_clock::duration>(
                                   kSlice, deadline - now),
                               [] { return false; });
        }
        throw pipe_deadlock("[injected stall] " + deadlock_message(op));
    }

    std::size_t capacity_;
    std::string name_;
    std::chrono::milliseconds timeout_;
    std::vector<T> ring_;

    /// Consumer-published position; on its own cache line so producer
    /// polling does not bounce the consumer's working set.
    alignas(64) std::atomic<std::uint64_t> head_{0};
    /// Producer-published position.
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    /// Producer-owned mirror of tail_ plus its cached view of head_ (only
    /// refreshed when the ring looks full) -- the fast path reads no line
    /// the consumer writes.
    alignas(64) std::uint64_t tail_pos_ = 0;
    std::uint64_t head_cache_ = 0;
    std::atomic<bool> producer_waiting_{false};
    /// Consumer-owned mirrors, dual of the producer's.
    alignas(64) std::uint64_t head_pos_ = 0;
    std::uint64_t tail_cache_ = 0;
    std::atomic<bool> consumer_waiting_{false};

    /// Parking lot: touched only after the spin/yield budget is exhausted
    /// (empty/full ring or injected stall), never on the per-element path.
    alignas(64) mutable std::mutex mutex_;
    std::condition_variable not_full_, not_empty_, stall_cv_;
};

}  // namespace syclite
