#include "resilience/supervisor.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "resilience/cancel.hpp"

namespace altis::resilience {
namespace {

std::string tmp_path(const std::string& name) {
    return ::testing::TempDir() + "altis_supervisor_" + name;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

journal_entry entry_for(const std::string& config, const std::string& status,
                        double value) {
    journal_entry e;
    e.config = config;
    e.status = status;
    if (status == "ok" || status == "retried") e.value = value;
    if (status == "failed") e.error = "injected fault";
    e.log = config + ": " + status + "\n";
    return e;
}

class Supervisor : public ::testing::Test {
protected:
    void SetUp() override { current().reset(); }
    void TearDown() override { current().reset(); }
};

TEST_F(Supervisor, FreshJournalRecordsEveryCompletedConfig) {
    const std::string path = tmp_path("fresh.jsonl");
    std::remove(path.c_str());
    options o;
    o.journal_path = path;
    supervisor sup(o, "sweep");
    EXPECT_EQ(sup.journal_path(), path);
    EXPECT_EQ(sup.replayable(), 0u);

    auto r1 = sup.run("a", "key", [] { return entry_for("a", "ok", 1.0); });
    EXPECT_FALSE(r1.replayed);
    auto r2 = sup.run("b", "key", [] { return entry_for("b", "failed", 0); });
    EXPECT_EQ(r2.entry.status, "failed");

    const auto jf = read_journal(path, "sweep");
    ASSERT_TRUE(jf.has_value());
    ASSERT_EQ(jf->entries.size(), 2u);
    EXPECT_EQ(jf->entries[0].config, "a");
    EXPECT_EQ(jf->entries[1].status, "failed");
}

TEST_F(Supervisor, ResumeReplaysVerbatimWithoutRunningTheBody) {
    const std::string path = tmp_path("resume.jsonl");
    std::remove(path.c_str());
    {
        options o;
        o.journal_path = path;
        supervisor sup(o, "sweep");
        sup.run("a", "k", [] { return entry_for("a", "retried", 2.5); });
    }
    const std::string after_first = slurp(path);

    options o;
    o.resume_path = path;
    supervisor sup(o, "sweep");
    EXPECT_EQ(sup.replayable(), 1u);
    int body_calls = 0;
    auto r = sup.run("a", "k", [&] {
        ++body_calls;
        return entry_for("a", "ok", 9.9);
    });
    EXPECT_TRUE(r.replayed);
    EXPECT_EQ(body_calls, 0) << "replayed configs must not re-run";
    EXPECT_EQ(r.entry.status, "retried");
    ASSERT_TRUE(r.entry.value.has_value());
    EXPECT_EQ(*r.entry.value, 2.5);
    EXPECT_EQ(r.entry.log, "a: retried\n");

    // Replay appends nothing; a new config extends the same file.
    EXPECT_EQ(slurp(path), after_first);
    auto r2 = sup.run("b", "k", [] { return entry_for("b", "ok", 1.0); });
    EXPECT_FALSE(r2.replayed);
    const auto jf = read_journal(path, "sweep");
    ASSERT_TRUE(jf.has_value());
    EXPECT_EQ(jf->entries.size(), 2u);
}

TEST_F(Supervisor, ResumeWithFreshJournalCompacts) {
    const std::string old_path = tmp_path("old.jsonl");
    const std::string new_path = tmp_path("new.jsonl");
    std::remove(old_path.c_str());
    std::remove(new_path.c_str());
    {
        options o;
        o.journal_path = old_path;
        supervisor sup(o, "sweep");
        sup.run("a", "k", [] { return entry_for("a", "ok", 1.0); });
    }
    // Resume from the old journal but write a fresh one: replays are
    // re-recorded so the new journal is complete on its own.
    options o;
    o.resume_path = old_path;
    o.journal_path = new_path;
    supervisor sup(o, "sweep");
    auto r = sup.run("a", "k", [] { return entry_for("a", "ok", 7.0); });
    EXPECT_TRUE(r.replayed);
    const auto jf = read_journal(new_path, "sweep");
    ASSERT_TRUE(jf.has_value());
    ASSERT_EQ(jf->entries.size(), 1u);
    ASSERT_TRUE(jf->entries[0].value.has_value());
    EXPECT_EQ(*jf->entries[0].value, 1.0) << "replay value, not the re-run";
}

TEST_F(Supervisor, ResumingADifferentSweepThrows) {
    const std::string path = tmp_path("wrong_sweep.jsonl");
    std::remove(path.c_str());
    {
        options o;
        o.journal_path = path;
        supervisor sup(o, "fig2_gpu_speedup");
    }
    options o;
    o.resume_path = path;
    EXPECT_THROW(supervisor(o, "fig4_fpga_opt"), std::runtime_error);
}

TEST_F(Supervisor, BreakerQuarantinesAfterThresholdAndProbesAfterCooldown) {
    options o;
    o.breaker.threshold = 2;
    o.breaker.cooldown = 1;
    supervisor sup(o, "sweep");
    const std::string key = "app/fpga_opt/stratix_10";

    int body_calls = 0;
    auto fail_body = [&] {
        ++body_calls;
        return entry_for("c" + std::to_string(body_calls), "failed", 0);
    };
    (void)sup.run("c1", key, fail_body);
    (void)sup.run("c2", key, fail_body);
    EXPECT_EQ(body_calls, 2);

    // Third encounter: breaker open, quarantined without running.
    auto q = sup.run("c3", key, fail_body);
    EXPECT_EQ(body_calls, 2);
    EXPECT_FALSE(q.replayed);
    EXPECT_EQ(q.entry.status, "quarantined");
    EXPECT_EQ(q.entry.attempts, 0);
    EXPECT_NE(q.entry.error.find("circuit open"), std::string::npos);
    EXPECT_NE(q.entry.error.find(key), std::string::npos);

    // Cooldown of 1 served; the next encounter is the half-open probe.
    auto probe = sup.run("c4", key, [&] {
        ++body_calls;
        return entry_for("c4", "ok", 1.0);
    });
    EXPECT_EQ(body_calls, 3);
    EXPECT_EQ(probe.entry.status, "ok");
    EXPECT_EQ(sup.circuit().state_of(key), breaker::state::closed);
}

TEST_F(Supervisor, ReplayFeedsTheBreakerAcrossTheResumeBoundary) {
    const std::string path = tmp_path("breaker_resume.jsonl");
    std::remove(path.c_str());
    const std::string key = "app/fpga_opt/stratix_10";
    options o;
    o.breaker.threshold = 2;
    o.breaker.cooldown = 5;
    o.journal_path = path;
    {
        supervisor sup(o, "sweep");
        sup.run("c1", key, [] { return entry_for("c1", "failed", 0); });
    }
    // Resume: the replayed failure still counts, so one more live failure
    // trips the breaker exactly as an uninterrupted run would.
    options r;
    r.breaker = o.breaker;
    r.resume_path = path;
    supervisor sup(r, "sweep");
    auto c1 = sup.run("c1", key, [] { return entry_for("c1", "ok", 1.0); });
    EXPECT_TRUE(c1.replayed);
    EXPECT_EQ(sup.circuit().consecutive_failures(key), 1);
    (void)sup.run("c2", key, [] { return entry_for("c2", "failed", 0); });
    auto c3 = sup.run("c3", key, [] { return entry_for("c3", "ok", 1.0); });
    EXPECT_EQ(c3.entry.status, "quarantined");
}

TEST_F(Supervisor, DeadlineStatusCountsAsHardFailure) {
    EXPECT_TRUE(supervisor::hard_failure("failed"));
    EXPECT_TRUE(supervisor::hard_failure("deadline"));
    EXPECT_FALSE(supervisor::hard_failure("ok"));
    EXPECT_FALSE(supervisor::hard_failure("retried"));
    EXPECT_FALSE(supervisor::hard_failure("skipped"));
    EXPECT_FALSE(supervisor::hard_failure("quarantined"));
    EXPECT_FALSE(supervisor::hard_failure("cancelled"));
}

TEST_F(Supervisor, CancelledEntriesAreNotJournaled) {
    const std::string path = tmp_path("cancelled.jsonl");
    std::remove(path.c_str());
    {
        options o;
        o.journal_path = path;
        supervisor sup(o, "sweep");
        sup.run("a", "k", [] { return entry_for("a", "ok", 1.0); });
        sup.run("b", "k", [] { return entry_for("b", "cancelled", 0); });
    }
    const auto jf = read_journal(path, "sweep");
    ASSERT_TRUE(jf.has_value());
    ASSERT_EQ(jf->entries.size(), 1u) << "cancelled config must re-run later";
    EXPECT_EQ(jf->entries[0].config, "a");

    // And on resume it does re-run.
    options o;
    o.resume_path = path;
    supervisor sup(o, "sweep");
    int calls = 0;
    auto r = sup.run("b", "k", [&] {
        ++calls;
        return entry_for("b", "ok", 2.0);
    });
    EXPECT_FALSE(r.replayed);
    EXPECT_EQ(calls, 1);
}

TEST_F(Supervisor, BodyRunsUnderTheConfiguredDeadlineScope) {
    options o;
    o.deadline_ms = 1e6;  // far away: must arm, never fire
    supervisor sup(o, "sweep");
    bool armed = false;
    sup.run("a", "k", [&] {
        armed = current().budget_ms() > 0.0;
        return entry_for("a", "ok", 1.0);
    });
    EXPECT_TRUE(armed);
    // Scope left: disabled fast path again.
    EXPECT_FALSE(cancellation_requested());
    EXPECT_EQ(current().budget_ms(), 0.0);
}

}  // namespace
}  // namespace altis::resilience
