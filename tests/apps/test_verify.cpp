#include "apps/common/verify.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace altis::apps {
namespace {

TEST(Verify, MaxRelErrorZeroForIdentical) {
    const std::vector<float> a{1.0f, -2.0f, 3.5f};
    EXPECT_DOUBLE_EQ(max_rel_error<float>(a, a), 0.0);
}

TEST(Verify, MaxRelErrorRelativeForLargeValues) {
    const std::vector<float> e{100.0f};
    const std::vector<float> a{101.0f};
    EXPECT_NEAR(max_rel_error<float>(e, a), 0.01, 1e-6);
}

TEST(Verify, MaxRelErrorAbsoluteNearZero) {
    // Denominator floors at 1: tiny expected values don't explode the error.
    const std::vector<float> e{1e-6f};
    const std::vector<float> a{2e-6f};
    EXPECT_LT(max_rel_error<float>(e, a), 1e-5);
}

TEST(Verify, MaxRelErrorPicksWorstElement) {
    const std::vector<double> e{10.0, 20.0, 30.0};
    const std::vector<double> a{10.0, 22.0, 30.0};
    EXPECT_NEAR(max_rel_error<double>(e, a), 0.1, 1e-12);
}

TEST(Verify, SizeMismatchThrows) {
    const std::vector<int> e{1, 2};
    const std::vector<int> a{1};
    EXPECT_THROW(mismatch_count<int>(e, a), std::invalid_argument);
    const std::vector<float> ef{1.0f};
    const std::vector<float> af{1.0f, 2.0f};
    EXPECT_THROW(max_rel_error<float>(ef, af), std::invalid_argument);
}

TEST(Verify, MismatchCount) {
    const std::vector<int> e{1, 2, 3, 4};
    const std::vector<int> a{1, 9, 3, 8};
    EXPECT_EQ(mismatch_count<int>(e, a), 2u);
}

TEST(Verify, RequireCloseThrowsAboveTolerance) {
    EXPECT_NO_THROW(require_close(0.001, 0.01, "x"));
    EXPECT_NO_THROW(require_close(0.01, 0.01, "x"));
    EXPECT_THROW(require_close(0.02, 0.01, "x"), verification_error);
    // NaN error must fail, not pass, the check.
    EXPECT_THROW(require_close(std::nan(""), 0.01, "x"), verification_error);
}

}  // namespace
}  // namespace altis::apps
