// Findings: what the sanitize passes produce. Every finding cites a rule
// from the fixed catalog below; the catalog carries the severity, the paper
// reference and the generic fix-hint so individual passes only supply the
// provenance (kernel, object) and the specific message.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace altis::analyze {

enum class severity { note, warning, error };

[[nodiscard]] const char* to_string(severity s);

/// Rule identifiers (ALS = "Altis Sanitize"). H = hazard, P = pipe topology,
/// L = lint. docs/SANITIZER.md is the human-readable catalog.
struct rule_info {
    const char* id;
    const char* title;
    severity sev;
    const char* paper_ref;  ///< paper section/figure motivating the rule
    const char* fix_hint;
};

/// The full rule catalog, in id order.
[[nodiscard]] const std::vector<rule_info>& rule_catalog();
/// Lookup by id; throws std::out_of_range for unknown ids.
[[nodiscard]] const rule_info& rule(const std::string& id);

struct finding {
    std::string rule;     ///< catalog id, e.g. "ALS-H1"
    severity sev = severity::warning;
    std::string kernel;   ///< kernel(s) or operation the finding points at
    std::string object;   ///< buffer range, pipe name, USM region, ...
    std::string message;
    std::string fix_hint;
    std::string paper_ref;
};

/// Builds a finding from the catalog entry for `id` (severity, hint and
/// paper reference filled in) plus the caller's provenance and message.
[[nodiscard]] finding make_finding(const std::string& id, std::string kernel,
                                   std::string object, std::string message);

/// Stable 64-bit fingerprint (16 lowercase hex chars) over the finding's
/// identity (rule, kernel, object, message). Hex pointer runs ("0x7f...")
/// are canonicalized away first, so the fingerprint survives ASLR -- the
/// SARIF partialFingerprints / baseline contract.
[[nodiscard]] std::string fingerprint(const finding& f);

/// Ordered, deduplicated collection of findings. Apps run `--passes` times,
/// so the same hazard recurs identically; add() drops exact repeats.
class report {
public:
    void add(finding f);
    void merge(const report& other);

    [[nodiscard]] const std::vector<finding>& findings() const {
        return findings_;
    }
    /// Findings sorted by (rule, object, kernel) -- the render order of every
    /// exporter, byte-stable across runs regardless of discovery order.
    [[nodiscard]] std::vector<finding> sorted_findings() const;
    [[nodiscard]] bool empty() const { return findings_.empty(); }
    [[nodiscard]] std::size_t size() const { return findings_.size(); }
    /// Number of findings at `s` or above.
    [[nodiscard]] std::size_t count_at_least(severity s) const;

    /// Fixed-width console table (header + one row per finding + hint lines).
    /// Prints "sanitize: no findings" when empty.
    void render_text(std::ostream& out) const;
    /// JSON object {"findings": [...]} (schema in docs/SANITIZER.md); a clean
    /// report renders as a valid empty document, never an empty file.
    void render_json(std::ostream& out) const;

private:
    std::vector<finding> findings_;
};

}  // namespace altis::analyze
