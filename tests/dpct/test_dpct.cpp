#include "dpct/dpct.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace altis::dpct {
namespace {

cuda_source_manifest tiny() {
    cuda_source_manifest m;
    m.app = "tiny";
    m.lines_of_code = 1000;
    m.kernels = 2;
    m.cuda_event_timer_pairs = 3;
    m.mem_advise_calls = 4;
    m.barriers = 10;
    m.barriers_detectable_local = 6;
    m.error_code_checks = 7;
    m.default_wg_size_kernels = 2;
    return m;
}

TEST(Dpct, TimerPairsEmitTwoWarningsEach) {
    const auto r = migrate(tiny());
    for (const auto& d : r.diagnostics)
        if (d.id == diagnostic_id::DPCT1012) EXPECT_EQ(d.count, 6);
}

TEST(Dpct, OnlyUnprovableBarriersAreAnnotated) {
    const auto r = migrate(tiny());
    int barrier_warnings = -1;
    for (const auto& d : r.diagnostics)
        if (d.id == diagnostic_id::DPCT1065) barrier_warnings = d.count;
    EXPECT_EQ(barrier_warnings, 4);  // 10 total - 6 provably local
}

TEST(Dpct, WarningCountSumsAllDiagnostics) {
    const auto r = migrate(tiny());
    // 6 timers + 4 advise + 4 barriers + 7 errors + 2 wg = 23.
    EXPECT_EQ(r.warning_count(), 23);
}

TEST(Dpct, CleanManifestRunsAfterWarningFixes) {
    const auto r = migrate(tiny());
    EXPECT_TRUE(r.runs_after_warning_fixes);
    EXPECT_TRUE(r.silent_issues.empty());
}

TEST(Dpct, DeviceNewDeleteIsASilentIssue) {
    auto m = tiny();
    m.device_new_delete = 2;
    const auto r = migrate(m);
    EXPECT_FALSE(r.runs_after_warning_fixes);
    ASSERT_EQ(r.silent_issues.size(), 1u);
    EXPECT_NE(r.silent_issues[0].find("new/delete"), std::string::npos);
}

TEST(Dpct, VirtualFunctionsAreASilentIssue) {
    auto m = tiny();
    m.virtual_functions = 5;  // the Raytracing situation
    const auto r = migrate(m);
    EXPECT_FALSE(r.runs_after_warning_fixes);
    EXPECT_NE(r.silent_issues[0].find("virtual"), std::string::npos);
}

TEST(Dpct, ConstantMemoryWrapperInitOrderIsASilentIssue) {
    auto m = tiny();
    m.constant_memory_objects = 5;
    const auto r = migrate(m);
    EXPECT_FALSE(r.runs_after_warning_fixes);
}

TEST(Dpct, AutoMigratedFractionInDpctClaimRange) {
    // Sec. 2.1: DPCT migrates ~90-95% automatically.
    const auto report = migrate_suite(altis_manifests());
    EXPECT_GE(report.auto_migrated_fraction, 0.90);
    EXPECT_LE(report.auto_migrated_fraction, 0.96);
}

// Sec. 3.2.1: "Altis has roughly 40k lines of code and DPCT inserted 2,535
// warnings. After addressing them, ~70% of the migrated applications execute
// without errors."
TEST(Dpct, SuiteTotalsMatchPaper) {
    const auto report = migrate_suite(altis_manifests());
    EXPECT_EQ(report.total_warnings, 2535);
    EXPECT_NEAR(static_cast<double>(report.total_loc), 40000.0, 1500.0);
    EXPECT_NEAR(report.runs_without_errors_fraction, 0.70, 0.08);
}

TEST(Dpct, FailingAppsAreTheSec322Cases) {
    const auto report = migrate_suite(altis_manifests());
    std::vector<std::string> failing;
    for (const auto& r : report.apps)
        if (!r.runs_after_warning_fixes) failing.push_back(r.app);
    // Raytracing (virtual functions), LavaMD (device new/delete), SRAD
    // (constant-memory wrapper order).
    EXPECT_EQ(failing.size(), 3u);
    EXPECT_NE(std::find(failing.begin(), failing.end(), "raytracing"),
              failing.end());
    EXPECT_NE(std::find(failing.begin(), failing.end(), "lavamd"),
              failing.end());
    EXPECT_NE(std::find(failing.begin(), failing.end(), "srad"),
              failing.end());
}

TEST(Dpct, MigrationIsDeterministic) {
    const auto a = migrate_suite(altis_manifests());
    const auto b = migrate_suite(altis_manifests());
    EXPECT_EQ(a.total_warnings, b.total_warnings);
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (std::size_t i = 0; i < a.apps.size(); ++i)
        EXPECT_EQ(a.apps[i].warning_count(), b.apps[i].warning_count());
}

TEST(Dpct, RenderContainsTotalsAndDiagnosticIds) {
    const auto report = migrate_suite(altis_manifests());
    std::ostringstream os;
    render(report, os);
    const std::string s = os.str();
    EXPECT_NE(s.find("2535"), std::string::npos);
    EXPECT_NE(s.find("DPCT1065"), std::string::npos);
    EXPECT_NE(s.find("DPCT1012"), std::string::npos);
}

TEST(Dpct, DiagnosticNamesRoundTrip) {
    EXPECT_STREQ(to_string(diagnostic_id::DPCT1003), "DPCT1003");
    EXPECT_STREQ(to_string(diagnostic_id::DPCT1084), "DPCT1084");
    EXPECT_NE(std::string(description(diagnostic_id::DPCT1063)).find("advice"),
              std::string::npos);
}

TEST(Dpct, EmptyManifestIsTrivially100Percent) {
    cuda_source_manifest m;
    m.app = "empty";
    m.lines_of_code = 100;
    const auto r = migrate(m);
    EXPECT_EQ(r.warning_count(), 0);
    EXPECT_DOUBLE_EQ(r.auto_migrated_fraction(), 1.0);
    EXPECT_TRUE(r.runs_after_warning_fixes);
}

}  // namespace
}  // namespace altis::dpct
