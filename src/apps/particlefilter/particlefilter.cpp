#include "apps/particlefilter/particlefilter.hpp"

#include <algorithm>
#include <cmath>

#include "apps/common/verify.hpp"
#include "rng/philox.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps::particlefilter {

params params::preset(int size, flavor f) {
    params p;
    if (f == flavor::naive) {
        switch (size) {
            case 1: p.particles = 1024; p.frames = 8; break;
            case 2: p.particles = 16384; p.frames = 16; break;
            case 3: p.particles = 65536; p.frames = 24; break;
            default: throw std::invalid_argument("pf: size must be 1..3");
        }
    } else {
        switch (size) {
            case 1: p.particles = 131072; p.frames = 8; break;
            case 2: p.particles = 262144; p.frames = 16; break;
            case 3: p.particles = 524288; p.frames = 24; break;
            default: throw std::invalid_argument("pf: size must be 1..3");
        }
    }
    return p;
}

namespace {

constexpr int kDiskRadius = 4;  // 49-pixel likelihood neighbourhood
constexpr float kBackground = 100.0f;
constexpr float kObject = 228.0f;

/// Counter-based uniform draw: identical in golden and kernels, independent
/// of execution order (the reason the SYCL migration swapped XORWOW for a
/// counter-based philox stream).
float uniform(std::uint64_t seed, std::uint32_t particle, std::uint32_t frame,
              std::uint32_t purpose) {
    const auto block = rng::philox4x32::block(
        {particle, frame, purpose, 0u},
        {static_cast<std::uint32_t>(seed),
         static_cast<std::uint32_t>(seed >> 32)});
    return static_cast<float>(block[0] >> 8) * (1.0f / 16777216.0f);
}

/// Box-Muller normal draw from two counter-based uniforms.
float gaussian(std::uint64_t seed, std::uint32_t particle, std::uint32_t frame,
               std::uint32_t purpose) {
    const float u1 = std::max(uniform(seed, particle, frame, purpose), 1e-7f);
    const float u2 = uniform(seed, particle, frame, purpose + 1000u);
    return std::sqrt(-2.0f * std::log(u1)) *
           std::cos(2.0f * 3.14159265358979f * u2);
}

std::uint8_t video_at(std::span<const std::uint8_t> video, const params& p,
                      int frame, long x, long y) {
    const long g = static_cast<long>(p.grid);
    x = std::clamp(x, 0L, g - 1);
    y = std::clamp(y, 0L, g - 1);
    return video[static_cast<std::size_t>(frame) * p.grid * p.grid +
                 static_cast<std::size_t>(x) * p.grid +
                 static_cast<std::size_t>(y)];
}

/// Likelihood of a particle position given the frame. `use_pow` selects the
/// original CUDA pow(a,2) form; the migrated code uses a*a (identical value,
/// very different cost -- Sec. 3.3).
float likelihood(std::span<const std::uint8_t> video, const params& p,
                 int frame, float px, float py, bool use_pow) {
    float acc = 0.0f;
    int npoints = 0;
    for (int dx = -kDiskRadius; dx <= kDiskRadius; ++dx)
        for (int dy = -kDiskRadius; dy <= kDiskRadius; ++dy) {
            if (dx * dx + dy * dy > kDiskRadius * kDiskRadius) continue;
            const float I = static_cast<float>(
                video_at(video, p, frame, static_cast<long>(px) + dx,
                         static_cast<long>(py) + dy));
            const float a = I - kObject;
            const float b = I - kBackground;
            const float a2 = use_pow ? std::pow(a, 2.0f) : a * a;
            const float b2 = use_pow ? std::pow(b, 2.0f) : b * b;
            acc += (b2 - a2) / 50.0f;
            ++npoints;
        }
    return acc / static_cast<float>(npoints);
}

constexpr std::size_t kChunk = 256;

/// Chunk-ordered sum: the deterministic accumulation order shared by the
/// golden reference and the device reduction kernels.
float chunked_sum(const float* v, std::size_t n) {
    double total = 0.0;
    for (std::size_t c0 = 0; c0 < n; c0 += kChunk) {
        float s = 0.0f;
        const std::size_t c1 = std::min(c0 + kChunk, n);
        for (std::size_t i = c0; i < c1; ++i) s += v[i];
        total += s;
    }
    return static_cast<float>(total);
}

struct filter_state {
    std::vector<float> x, y, w;
};

filter_state initial_state(const params& p) {
    filter_state s;
    const float start =
        static_cast<float>(p.grid) / 4.0f;  // object starts at (g/4, g/4)
    s.x.assign(p.particles, start);
    s.y.assign(p.particles, start);
    s.w.assign(p.particles, 1.0f / static_cast<float>(p.particles));
    return s;
}

}  // namespace

std::vector<std::uint8_t> make_video(const params& p) {
    std::vector<std::uint8_t> video(static_cast<std::size_t>(p.frames) *
                                    p.grid * p.grid);
    for (int t = 0; t < p.frames; ++t) {
        const long cx = static_cast<long>(p.grid) / 4 + t;
        const long cy = static_cast<long>(p.grid) / 4 + t;
        for (std::size_t i = 0; i < p.grid; ++i)
            for (std::size_t j = 0; j < p.grid; ++j) {
                const long dx = static_cast<long>(i) - cx;
                const long dy = static_cast<long>(j) - cy;
                const bool object = dx * dx + dy * dy <=
                                    kDiskRadius * kDiskRadius * 4;
                const float noise =
                    10.0f * uniform(p.seed ^ 0xF00DULL,
                                    static_cast<std::uint32_t>(i * p.grid + j),
                                    static_cast<std::uint32_t>(t), 77u) -
                    5.0f;
                const float value =
                    (object ? kObject : kBackground) + noise;
                video[static_cast<std::size_t>(t) * p.grid * p.grid +
                      i * p.grid + j] =
                    static_cast<std::uint8_t>(std::clamp(value, 0.0f, 255.0f));
            }
    }
    return video;
}

namespace {

/// One full SIR update for frame t, in the canonical order. Used verbatim by
/// golden; the device path reproduces each stage as a kernel with the same
/// arithmetic and the same chunked reductions.
void sir_frame(const params& p, flavor f, std::span<const std::uint8_t> video,
               int t, filter_state& s, float& xe, float& ye) {
    const std::size_t n = p.particles;
    const bool use_pow = false;  // golden mirrors the migrated a*a form
    (void)f;

    std::vector<float> lik(n), wx(n), wy(n);
    for (std::size_t i = 0; i < n; ++i) {
        s.x[i] += 1.0f + gaussian(p.seed, static_cast<std::uint32_t>(i),
                                  static_cast<std::uint32_t>(t), 1u);
        s.y[i] += 1.0f + gaussian(p.seed, static_cast<std::uint32_t>(i),
                                  static_cast<std::uint32_t>(t), 3u);
        lik[i] = likelihood(video, p, t, s.x[i], s.y[i], use_pow);
        s.w[i] = s.w[i] * std::exp(lik[i] / 40.0f);
    }
    const float wsum = chunked_sum(s.w.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        s.w[i] /= wsum;
        wx[i] = s.w[i] * s.x[i];
        wy[i] = s.w[i] * s.y[i];
    }
    xe = chunked_sum(wx.data(), n);
    ye = chunked_sum(wy.data(), n);

    // CDF + systematic resampling.
    std::vector<float> cdf(n);
    float acc = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        acc += s.w[i];
        cdf[i] = acc;
    }
    const float u1 =
        uniform(p.seed, 0u, static_cast<std::uint32_t>(t), 5u) /
        static_cast<float>(n);
    std::vector<float> nx(n), ny(n);
    for (std::size_t j = 0; j < n; ++j) {
        const float uj =
            u1 + static_cast<float>(j) / static_cast<float>(n);
        // First index with cdf >= uj. The naive device kernel scans
        // linearly, the float one bisects; both produce exactly this index,
        // so the host reference uses the O(log N) form for feasibility.
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), uj);
        const std::size_t idx =
            it == cdf.end() ? n - 1
                            : static_cast<std::size_t>(it - cdf.begin());
        nx[j] = s.x[idx];
        ny[j] = s.y[idx];
    }
    s.x = std::move(nx);
    s.y = std::move(ny);
    std::fill(s.w.begin(), s.w.end(), 1.0f / static_cast<float>(n));
}

}  // namespace

estimate golden(const params& p, flavor f,
                std::span<const std::uint8_t> video) {
    filter_state s = initial_state(p);
    estimate e;
    e.xe.resize(static_cast<std::size_t>(p.frames));
    e.ye.resize(static_cast<std::size_t>(p.frames));
    for (int t = 0; t < p.frames; ++t)
        sir_frame(p, f, video, t, s, e.xe[static_cast<std::size_t>(t)],
                  e.ye[static_cast<std::size_t>(t)]);
    return e;
}

namespace detail {

perf::kernel_stats stats_propagate(const params& p, flavor f, Variant v,
                                   const perf::device_spec& dev,
                                   bool cuda_pow_fixed = false);
perf::kernel_stats stats_reduce(const params& p);
perf::kernel_stats stats_normalize(const params& p);
perf::kernel_stats stats_cdf(const params& p);
perf::kernel_stats stats_resample(const params& p, flavor f, Variant v,
                                  const perf::device_spec& dev);
perf::kernel_stats stats_frame_st(const params& p, flavor f,
                                  const perf::device_spec& dev);

}  // namespace detail

AppResult run_flavor(const RunConfig& cfg, flavor f) {
    const perf::device_spec& dev = resolve_device(cfg);
    const params p = params::preset(cfg.size, f);
    const std::vector<std::uint8_t> video = make_video(p);
    const estimate expected = golden(p, f, video);

    sl::queue q(dev, runtime_for(cfg.variant));
    if (dev.is_fpga())
        q.set_design(region(f, cfg.variant, dev, cfg.size).all_kernels());
    // One-time context/JIT setup is excluded from the timed region (warmed up).

    sl::buffer<std::uint8_t> vid(video.size());
    q.copy_to_device(vid, video.data());

    // Device state lives host-side in the state struct; kernels mutate it
    // through buffers per stage. For brevity each SIR stage is submitted as
    // a kernel whose body delegates to the same stage arithmetic.
    filter_state s = initial_state(p);
    estimate got;
    got.xe.resize(static_cast<std::size_t>(p.frames));
    got.ye.resize(static_cast<std::size_t>(p.frames));

    const bool st = cfg.variant == Variant::fpga_opt;
    for (int t = 0; t < p.frames; ++t) {
        if (st) {
            // Single-Task FPGA design: the whole SIR frame in one kernel.
            q.submit([&](sl::handler& h) {
                auto v8 = h.get_access(vid, sl::access_mode::read);
                // v8 by value: the command-group scope is gone when the
                // kernel body runs.
                h.single_task(detail::stats_frame_st(p, f, dev), [&, v8, t]() {
                    std::span<const std::uint8_t> vspan(v8.get_pointer(),
                                                        video.size());
                    sir_frame(p, f, vspan, t, s,
                              got.xe[static_cast<std::size_t>(t)],
                              got.ye[static_cast<std::size_t>(t)]);
                });
            });
        } else {
            // ND-Range path: stage kernels (propagate+likelihood+weight,
            // reduce, normalize+estimate, cdf, resample). The functional
            // arithmetic is the shared sir_frame; the launch/timing
            // structure is modeled per stage.
            q.submit([&](sl::handler& h) {
                auto v8 = h.get_access(vid, sl::access_mode::read);
                h.library_call(detail::stats_propagate(p, f, cfg.variant, dev),
                               [&, v8, t]() {
                                   std::span<const std::uint8_t> vspan(
                                       v8.get_pointer(), video.size());
                                   sir_frame(p, f, vspan, t, s,
                                             got.xe[static_cast<std::size_t>(t)],
                                             got.ye[static_cast<std::size_t>(t)]);
                               });
            });
            q.submit([&](sl::handler& h) {
                h.library_call(detail::stats_reduce(p), [] {});
            });
            q.submit([&](sl::handler& h) {
                h.library_call(detail::stats_normalize(p), [] {});
            });
            q.submit([&](sl::handler& h) {
                h.library_call(detail::stats_cdf(p), [] {});
            });
            q.submit([&](sl::handler& h) {
                h.library_call(detail::stats_resample(p, f, cfg.variant, dev),
                               [] {});
            });
        }
    }
    q.wait();

    double err = 0.0;
    for (int t = 0; t < p.frames; ++t) {
        err = std::max(err, static_cast<double>(std::abs(
                                got.xe[static_cast<std::size_t>(t)] -
                                expected.xe[static_cast<std::size_t>(t)])));
        err = std::max(err, static_cast<double>(std::abs(
                                got.ye[static_cast<std::size_t>(t)] -
                                expected.ye[static_cast<std::size_t>(t)])));
    }
    require_close(err, 1e-3, "particlefilter estimates");

    AppResult r;
    r.kernel_ms = q.kernel_ns() / 1e6;
    r.non_kernel_ms = q.non_kernel_ns() / 1e6;
    r.total_ms = q.sim_now_ns() / 1e6;
    r.error = err;
    return r;
}

AppResult run_naive(const RunConfig& cfg) { return run_flavor(cfg, flavor::naive); }
AppResult run_float(const RunConfig& cfg) { return run_flavor(cfg, flavor::floatopt); }

void register_apps() {
    register_standard_app(
        "pf_naive", "Particle filter, naive O(N^2) resampling",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run_naive);
    register_standard_app(
        "pf_float", "Particle filter, float-optimized (pow(a,2) story)",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run_float);
}

}  // namespace altis::apps::particlefilter
