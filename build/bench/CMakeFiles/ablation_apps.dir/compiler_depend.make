# Empty compiler generated dependencies file for ablation_apps.
# This may be replaced when dependencies are built.
