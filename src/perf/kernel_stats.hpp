// Kernel structure descriptor: everything the device models need to know
// about one kernel submission. Applications build one descriptor per kernel
// per implementation variant; the descriptor is where the paper's code
// differences (accessor objects vs pointers, SIMD/unroll/replication
// attributes, pipe usage, speculated iterations, ...) become model inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace altis::perf {

enum class kernel_form {
    nd_range,     ///< SIMT-style kernel (all DPCT-migrated Altis kernels)
    single_task,  ///< FPGA single-threaded pipelined kernel (Sec. 5.3)
};

/// How the kernel's local (shared) memory is accessed; decides whether the
/// FPGA compiler can bank/replicate it or must insert stall-capable arbiters
/// (paper Sec. 5.2, cases 1-3).
enum class local_pattern {
    none,       ///< kernel uses no local memory
    scalar,     ///< a single shared scalar (e.g. PF Float's one double)
    banked,     ///< stride-friendly: banking/replication succeed (LavaMD)
    congested,  ///< irregular: arbiters serialize access (NW, DWT2D)
};

/// One pipelined loop of a Single-Task kernel.
struct loop_info {
    std::string name;
    /// Total iterations executed across the whole kernel invocation
    /// (dynamic count; for data-dependent loops apps estimate it).
    double trip_count = 0.0;
    /// How many times the loop is entered; each exit discards
    /// `speculated_iterations` in-flight iterations (Sec. 5.3, Mandelbrot).
    double entries = 1.0;
    int initiation_interval = 1;  ///< achieved II after directives
    int speculated_iterations = 4;  ///< compiler default is 4
    int unroll = 1;
};

/// Per-work-item dynamic costs plus static code structure of one kernel.
struct kernel_stats {
    std::string name;
    kernel_form form = kernel_form::nd_range;

    // ---- work geometry ----
    double global_items = 1.0;  ///< total work-items (1 for single-task)
    double wg_size = 1.0;

    // ---- dynamic per-work-item costs ----
    double fp32_ops = 0.0;       ///< FP32 arithmetic ops per item
    double fp64_ops = 0.0;
    double int_ops = 0.0;        ///< integer/address arithmetic per item
    double sfu_ops = 0.0;        ///< pow/exp/sqrt/sin per item
    double bytes_read = 0.0;     ///< global-memory bytes read per item
    double bytes_written = 0.0;  ///< global-memory bytes written per item
    double local_accesses = 0.0; ///< local-memory accesses per item
    double barriers = 0.0;       ///< barrier phases per work-item

    /// Fraction of work-items diverging from their SIMD group, 0..1.
    double divergence = 0.0;

    /// GPU SM occupancy fraction (1.0 = full). Un-inlined call trees and
    /// register spills halve it -- the mechanism behind the paper's
    /// -finlining-threshold fix recovering up to 2x for NW (Sec. 3.3).
    double occupancy = 1.0;

    /// Serial cycles per work-item imposed by a loop-carried dependency
    /// chain (e.g. Mandelbrot's z = z^2 + c at FP latency). GPUs hide this
    /// latency across warps; an FPGA ND-Range datapath cannot, which is why
    /// such kernels get rewritten as Single-Task with interleaved chains
    /// (Sec. 5.3).
    double dep_chain_cycles = 0.0;

    // ---- static code structure (resource model inputs) ----
    double static_fp32_ops = 0.0;  ///< FP ops in the kernel body (pre-unroll)
    double static_fp64_ops = 0.0;
    double static_int_ops = 8.0;   ///< incl. address arithmetic
    double static_branches = 1.0;
    /// 0..10: control-flow complexity on the critical path (loop exits,
    /// deep nesting). Drives Fmax degradation; ParticleFilter ~8-9.
    int control_complexity = 2;

    // ---- local memory ----
    local_pattern pattern = local_pattern::none;
    double local_mem_bytes = 0.0;  ///< footprint per work-group / kernel
    int local_arrays = 0;          ///< distinct shared arrays (SRAD has 11)
    /// true when sized via dynamically-sized DPCT accessors: the FPGA
    /// compiler reserves 16 KiB per array (Sec. 4); false when sized exactly
    /// via group_local_memory_for_overwrite (Sec. 5.2).
    bool dynamic_local_size = false;

    // ---- kernel arguments ----
    int accessor_args = 0;  ///< buffer arguments
    /// true when accessor *objects* are passed (member functions get
    /// synthesized, Sec. 4); false when local/device pointers are passed.
    bool pass_accessor_objects = false;
    bool args_restrict = false;  ///< [[intel::kernel_args_restrict]]

    // ---- optimization attributes ----
    int simd = 1;         ///< [[intel::num_simd_work_items]] (ND-Range)
    int replication = 1;  ///< compute units (Sec. 5.1)
    int unroll = 1;       ///< #pragma unroll on the hot loop (ND-Range)

    // ---- single-task structure ----
    std::vector<loop_info> loops;

    // ---- dataflow ----
    bool reads_pipe = false;
    bool writes_pipe = false;

    // ---- code-pattern annotations ----
    // Consumed by the altis::analyze linter only; inert to the perf models
    // (their cost, if any, is already folded into the op counts above).
    /// pow()/powf() calls with a small constant integer exponent, per
    /// work-item: PF Float's pow(a,2) pattern (Sec. 3.3, 2x GPU / 6x FPGA).
    double pow_const_exp_ops = 0.0;
    /// Kernel is an opaque library call (oneDPL/oneMKL), not app code; the
    /// linter flags GPU-shaped library scans scheduled on FPGAs (Sec. 5.1).
    bool library = false;

    // ---- derived totals ----
    [[nodiscard]] double total_fp32() const { return fp32_ops * global_items; }
    [[nodiscard]] double total_fp64() const { return fp64_ops * global_items; }
    [[nodiscard]] double total_int() const { return int_ops * global_items; }
    [[nodiscard]] double total_sfu() const { return sfu_ops * global_items; }
    [[nodiscard]] double total_bytes() const {
        return (bytes_read + bytes_written) * global_items;
    }
    [[nodiscard]] double num_groups() const {
        return wg_size > 0 ? global_items / wg_size : 0.0;
    }
    [[nodiscard]] bool uses_pipes() const { return reads_pipe || writes_pipe; }
};

}  // namespace altis::perf
