// Descriptor-level performance linter: the paper's Sec. 3.3 / Sec. 5
// micro-findings, re-applied as rules over perf::kernel_stats so the traps
// the authors hit by measurement are flagged before anyone re-introduces
// them. Applies to every kernel node that carries a descriptor -- both real
// submissions and the analytic descriptors simulate_region records, so
// `bench_fig* --sanitize` lints whole sweeps.
//
//   ALS-L1  pow() with a small constant integer exponent (PF Float's
//           pow(a,2): 2x on GPUs, 6x on FPGAs -- Sec. 3.3).
//   ALS-L2  FPGA kernel with num_simd_work_items not dividing the
//           work-group size: the attribute is silently dropped (Sec. 5.2).
//   ALS-L3  unroll factor that cannot help: larger than the loop's trip
//           count, or multiplying congested local-memory arbitration on a
//           design that already misses timing closure (Sec. 5.2, case 3).
//   ALS-L4  library scan on an FPGA: oneDPL's GPU-shaped scan is the
//           paper's motivation for the custom Single-Task scan (Sec. 5.1).
//   ALS-L6  kernel fails perf::resource_model fitting on its FPGA
//           (Sec. 4's 16 KiB-per-dynamic-accessor trap).
#pragma once

#include "analyze/findings.hpp"
#include "analyze/graph.hpp"

namespace altis::analyze {

void lint_descriptors(const command_graph& g, report& out);

}  // namespace altis::analyze
