// Model descriptors for FDTD2D. The region is dominated by launch count
// (3 kernels x steps), which is exactly what Figure 1 decomposes.
#include "apps/fdtd2d/fdtd2d.hpp"

namespace altis::apps::fdtd2d {
namespace detail {

perf::kernel_stats stats_step(const params& p, const char* name, Variant v,
                              const perf::device_spec& dev) {
    perf::kernel_stats k;
    k.name = name;
    k.global_items = static_cast<double>(p.cells());
    k.wg_size = dev.is_fpga() ? 128 : 256;
    k.fp32_ops = 5.0;
    k.int_ops = 8.0;
    // Compulsory traffic per cell: one field updated in place plus one or
    // two neighbour arrays (stencil reuse hits cache / on-chip buffers).
    k.bytes_read = 8.0;
    k.bytes_written = 4.0;
    k.static_fp32_ops = 5;
    k.static_int_ops = 12;
    k.static_branches = 2;
    k.accessor_args = 2;
    k.control_complexity = 1;
    if (v == Variant::fpga_opt) {
        // Sec. 5.2: vectorize via [[intel::num_simd_work_items]], denote
        // non-aliasing pointers, unroll the small update expression.
        k.simd = 4;
        k.unroll = 2;
        k.args_restrict = true;
    }
    return k;
}

}  // namespace detail

namespace {

timed_region make_region(Variant v, const perf::device_spec& dev, int size,
                         bool synchronized) {
    const params p = params::preset(size);
    timed_region r;
    r.name = std::string("fdtd2d/") + to_string(v) + "/size" + std::to_string(size);
    r.include_setup = false;  // timed region excludes one-time setup (warm-up)
    r.transfer_bytes = static_cast<double>(p.cells()) * 4.0 * 4.0;  // 3 H2D + 1 D2H
    r.transfer_calls = 4.0;
    r.syncs = synchronized ? 1.0 : 0.0;
    r.synchronized = synchronized;
    const double steps = static_cast<double>(p.steps);
    r.kernels.push_back({detail::stats_step(p, "fdtd_ey", v, dev), steps});
    r.kernels.push_back({detail::stats_step(p, "fdtd_ex", v, dev), steps});
    r.kernels.push_back({detail::stats_step(p, "fdtd_hz", v, dev), steps});
    return r;
}

}  // namespace

timed_region region(Variant v, const perf::device_spec& dev, int size) {
    return make_region(v, dev, size, /*synchronized=*/true);
}

timed_region region_cuda_mistimed(const perf::device_spec& dev, int size) {
    return make_region(Variant::cuda, dev, size, /*synchronized=*/false);
}

std::vector<perf::kernel_stats> fpga_design(const perf::device_spec& dev,
                                            int size) {
    const params p = params::preset(size);
    return {detail::stats_step(p, "fdtd_ey", Variant::fpga_opt, dev),
            detail::stats_step(p, "fdtd_ex", Variant::fpga_opt, dev),
            detail::stats_step(p, "fdtd_hz", Variant::fpga_opt, dev)};
}

}  // namespace altis::apps::fdtd2d
