file(REMOVE_RECURSE
  "libaltis_scan.a"
)
