#include "perf/model.hpp"

#include <gtest/gtest.h>

#include "perf/resource_model.hpp"

namespace altis::perf {
namespace {

kernel_stats compute_bound_kernel(double items) {
    kernel_stats k;
    k.name = "compute";
    k.global_items = items;
    k.wg_size = 256;
    k.fp32_ops = 4000.0;
    k.bytes_read = 8.0;
    k.bytes_written = 4.0;
    k.static_fp32_ops = 40;
    return k;
}

kernel_stats memory_bound_kernel(double items) {
    kernel_stats k;
    k.name = "memory";
    k.global_items = items;
    k.wg_size = 256;
    k.fp32_ops = 2.0;
    k.bytes_read = 64.0;
    k.bytes_written = 32.0;
    k.static_fp32_ops = 2;
    return k;
}

TEST(GpuModel, TimeScalesWithWork) {
    const auto& dev = device_by_name("rtx_2080");
    const double t1 = kernel_time_ns(compute_bound_kernel(1 << 16), dev);
    const double t2 = kernel_time_ns(compute_bound_kernel(1 << 20), dev);
    EXPECT_GT(t2, t1 * 8.0);  // 16x the work, allow floor effects
}

TEST(GpuModel, FasterDeviceWinsOnComputeBound) {
    const double rtx =
        kernel_time_ns(compute_bound_kernel(1 << 20), device_by_name("rtx_2080"));
    const double a100 =
        kernel_time_ns(compute_bound_kernel(1 << 20), device_by_name("a100"));
    EXPECT_LT(a100, rtx);
}

TEST(GpuModel, BandwidthDecidesMemoryBound) {
    const double rtx =
        kernel_time_ns(memory_bound_kernel(1 << 22), device_by_name("rtx_2080"));
    const double a100 =
        kernel_time_ns(memory_bound_kernel(1 << 22), device_by_name("a100"));
    // A100 has ~3.5x the bandwidth of the RTX 2080.
    EXPECT_NEAR(rtx / a100, 1555.0 / 448.0, 0.8);
}

TEST(GpuModel, Fp64PenaltyOnTuring) {
    kernel_stats f32 = compute_bound_kernel(1 << 20);
    kernel_stats f64 = f32;
    f64.fp64_ops = f64.fp32_ops;
    f64.fp32_ops = 0.0;
    const auto& rtx = device_by_name("rtx_2080");
    const auto& pvc = device_by_name("max_1100");
    // 1:32 on Turing, 1:1 on Ponte Vecchio.
    EXPECT_GT(kernel_time_ns(f64, rtx) / kernel_time_ns(f32, rtx), 16.0);
    EXPECT_NEAR(kernel_time_ns(f64, pvc) / kernel_time_ns(f32, pvc), 1.0, 0.2);
}

TEST(GpuModel, DivergenceSlowsComputeBoundKernels) {
    const auto& dev = device_by_name("a100");
    kernel_stats base = compute_bound_kernel(1 << 20);
    kernel_stats divergent = base;
    divergent.divergence = 0.8;
    EXPECT_GT(kernel_time_ns(divergent, dev), kernel_time_ns(base, dev) * 1.2);
}

TEST(GpuModel, SfuOpsAreExpensive) {
    const auto& dev = device_by_name("rtx_2080");
    kernel_stats pow_version = compute_bound_kernel(1 << 18);
    pow_version.fp32_ops = 100.0;
    pow_version.sfu_ops = 200.0;  // pow(a,2) per element
    kernel_stats mul_version = pow_version;
    mul_version.sfu_ops = 0.0;
    mul_version.fp32_ops = 300.0;  // a*a instead
    // The paper saw up to 6x from this transformation (Sec. 3.3).
    EXPECT_GT(kernel_time_ns(pow_version, dev) / kernel_time_ns(mul_version, dev),
              2.0);
}

TEST(CpuModel, LaunchFloorApplies) {
    const auto& cpu = device_by_name("xeon_6128");
    kernel_stats tiny = compute_bound_kernel(64);
    tiny.fp32_ops = 1.0;
    EXPECT_GE(kernel_time_ns(tiny, cpu), 5000.0);
}

TEST(FpgaModel, SingleTaskIiAndUnrollShapeCycleCount) {
    const auto& dev = device_by_name("stratix_10");
    kernel_stats k;
    k.name = "st";
    k.form = kernel_form::single_task;
    loop_info loop;
    loop.trip_count = 1e7;
    loop.initiation_interval = 1;
    loop.unroll = 1;
    k.loops.push_back(loop);

    const double base = fpga_kernel_time_ns(k, dev, 300.0);
    k.loops[0].initiation_interval = 4;
    const double ii4 = fpga_kernel_time_ns(k, dev, 300.0);
    EXPECT_NEAR(ii4 / base, 4.0, 0.1);

    k.loops[0].initiation_interval = 1;
    k.loops[0].unroll = 8;
    const double u8 = fpga_kernel_time_ns(k, dev, 300.0);
    EXPECT_NEAR(base / u8, 8.0, 0.2);
}

TEST(FpgaModel, SpeculatedIterationWasteMatchesMandelbrotStory) {
    // Sec. 5.3: inner loop entered once per outer iteration; each entry
    // discards S speculated iterations.
    const auto& dev = device_by_name("stratix_10");
    kernel_stats k;
    k.form = kernel_form::single_task;
    loop_info inner;
    inner.trip_count = 8192.0 * 20.0;  // mean 20 iterations per entry
    inner.entries = 8192.0;
    inner.speculated_iterations = 4;
    k.loops.push_back(inner);
    const double spec4 = fpga_kernel_time_ns(k, dev, 300.0);
    k.loops[0].speculated_iterations = 0;
    const double spec0 = fpga_kernel_time_ns(k, dev, 300.0);
    EXPECT_GT(spec4, spec0);
    // Waste is entries * 4 cycles.
    EXPECT_NEAR((spec4 - spec0) * 300e6 / 1e9, 8192.0 * 4.0, 1.0);
}

TEST(FpgaModel, ReplicationDividesTime) {
    const auto& dev = device_by_name("agilex");
    kernel_stats k;
    k.form = kernel_form::single_task;
    loop_info loop;
    loop.trip_count = 1e8;
    k.loops.push_back(loop);
    const double one = fpga_kernel_time_ns(k, dev, 400.0);
    k.replication = 4;
    const double four = fpga_kernel_time_ns(k, dev, 400.0);
    EXPECT_NEAR(one / four, 4.0, 0.1);
}

TEST(FpgaModel, MemoryBandwidthCapsVectorization) {
    // Sec. 5.2: CFD FP32 only scales to SIMD = 2 because bandwidth runs out.
    const auto& dev = device_by_name("stratix_10");
    kernel_stats k = memory_bound_kernel(1 << 22);
    k.static_fp32_ops = 2;
    const double v1 = fpga_kernel_time_ns(k, dev, 300.0);
    k.simd = 2;
    const double v2 = fpga_kernel_time_ns(k, dev, 300.0);
    k.simd = 8;
    const double v8 = fpga_kernel_time_ns(k, dev, 300.0);
    EXPECT_LT(v2, v1);            // some gain early
    EXPECT_NEAR(v8 / v2, 1.0, 0.15);  // then the memory wall
}

TEST(FpgaModel, CongestedLocalMemoryStalls) {
    const auto& dev = device_by_name("stratix_10");
    kernel_stats banked;
    banked.form = kernel_form::nd_range;
    banked.global_items = 1 << 20;
    banked.wg_size = 64;
    banked.local_accesses = 16.0;
    banked.local_arrays = 1;
    banked.local_mem_bytes = 4096;
    banked.pattern = local_pattern::banked;
    banked.unroll = 16;
    kernel_stats congested = banked;
    congested.pattern = local_pattern::congested;
    congested.unroll = 1;  // unrolling a congested loop violates timing
    EXPECT_GT(fpga_kernel_time_ns(congested, dev, 300.0),
              fpga_kernel_time_ns(banked, dev, 300.0) * 2.0);
}

TEST(FpgaModel, UnrollSpeedsUpBankedSharedMemoryAlmostLinearly) {
    // Sec. 5.2 case 1: LavaMD improves almost linearly with unrolling.
    const auto& dev = device_by_name("stratix_10");
    kernel_stats k;
    k.form = kernel_form::nd_range;
    k.global_items = 1 << 18;
    k.wg_size = 128;
    k.local_accesses = 120.0;
    k.local_arrays = 2;
    k.local_mem_bytes = 8192;
    k.pattern = local_pattern::banked;
    k.unroll = 1;
    const double u1 = fpga_kernel_time_ns(k, dev, 300.0);
    k.unroll = 30;
    const double u30 = fpga_kernel_time_ns(k, dev, 300.0);
    EXPECT_GT(u1 / u30, 20.0);
    EXPECT_LT(u1 / u30, 31.0);
}

TEST(FpgaModel, RejectsNonFpgaDevice) {
    kernel_stats k;
    EXPECT_THROW(fpga_kernel_time_ns(k, device_by_name("a100"), 300.0),
                 std::invalid_argument);
}

TEST(DataflowModel, GroupTimeIsMaxOfMembers) {
    const auto& dev = device_by_name("stratix_10");
    kernel_stats heavy;
    heavy.form = kernel_form::single_task;
    loop_info big;
    big.trip_count = 1e8;
    heavy.loops.push_back(big);
    kernel_stats light = heavy;
    light.loops[0].trip_count = 1e4;

    const std::vector<kernel_stats> group{heavy, light};
    const double t = dataflow_time_ns(group, dev);
    const resource_usage design = estimate_design_resources(group, dev);
    const double heavy_alone = fpga_kernel_time_ns(heavy, dev, design.fmax_mhz);
    EXPECT_DOUBLE_EQ(t, heavy_alone);
}

TEST(DataflowModel, WorksOnGpuToo) {
    const auto& dev = device_by_name("a100");
    const std::vector<kernel_stats> group{compute_bound_kernel(1 << 20),
                                          memory_bound_kernel(1 << 10)};
    EXPECT_DOUBLE_EQ(dataflow_time_ns(group, dev),
                     std::max(kernel_time_ns(group[0], dev),
                              kernel_time_ns(group[1], dev)));
}

}  // namespace
}  // namespace altis::perf
