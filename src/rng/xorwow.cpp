#include "rng/xorwow.hpp"

namespace altis::rng {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

void xorwow::seed_state(std::uint64_t seed) {
    std::uint64_t s = seed;
    s_.x = static_cast<std::uint32_t>(splitmix64(s));
    s_.y = static_cast<std::uint32_t>(splitmix64(s));
    s_.z = static_cast<std::uint32_t>(splitmix64(s));
    s_.w = static_cast<std::uint32_t>(splitmix64(s));
    s_.v = static_cast<std::uint32_t>(splitmix64(s));
    s_.d = static_cast<std::uint32_t>(splitmix64(s));
    // The xorwow recurrence has a fixed point at v == 0 only when the whole
    // x..v state is zero; splitmix cannot produce that for any seed, but be
    // explicit for safety.
    if ((s_.x | s_.y | s_.z | s_.w | s_.v) == 0u) s_.v = 1u;
}

}  // namespace altis::rng
