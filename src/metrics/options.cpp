#include "metrics/options.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>

#include "metrics/export.hpp"

namespace altis::metrics {

void add_metrics_options(OptionParser& opts) {
    opts.add_flag("metrics",
                  "collect wall-clock runtime telemetry (default: on when "
                  "$ALTIS_METRICS is set)");
    opts.add_option("metrics-prom", "",
                    "write Prometheus text exposition to <file> (implies "
                    "--metrics)");
    opts.add_option("metrics-json", "",
                    "write metrics snapshot + series JSON to <file> (implies "
                    "--metrics)");
}

options options::from(const OptionParser& opts) {
    options o;
    o.metrics = opts.get_flag("metrics");
    if (const char* env = std::getenv("ALTIS_METRICS"))
        if (*env != '\0' && std::string(env) != "0") o.metrics = true;
    o.prom_path = opts.get_string("metrics-prom");
    o.json_path = opts.get_string("metrics-json");
    return o;
}

bool finish_metrics(session& s, const options& opt, std::ostream& out,
                    std::ostream& err) {
    s.stop();
    const snapshot snap = s.take_snapshot();

    bool ok = true;
    if (!opt.prom_path.empty()) {
        std::ofstream f(opt.prom_path);
        if (!f) {
            err << "metrics: cannot open " << opt.prom_path
                << " for writing\n";
            ok = false;
        } else {
            write_prometheus(snap, f);
            f.flush();
            if (!f) {
                err << "metrics: failed writing " << opt.prom_path << "\n";
                ok = false;
            } else {
                out << "metrics: wrote " << snap.metrics.size()
                    << " metric families to " << opt.prom_path << "\n";
            }
        }
    }
    if (!opt.json_path.empty()) {
        std::ofstream f(opt.json_path);
        if (!f) {
            err << "metrics: cannot open " << opt.json_path
                << " for writing\n";
            ok = false;
        } else {
            write_json(snap, s.series(), f);
            f.flush();
            if (!f) {
                err << "metrics: failed writing " << opt.json_path << "\n";
                ok = false;
            } else {
                out << "metrics: wrote snapshot to " << opt.json_path << "\n";
            }
        }
    }
    if (opt.prom_path.empty() && opt.json_path.empty()) {
        // Bare --metrics: a compact console summary of what actually moved.
        out << "\nwall-clock metrics (" << snap.duration_ns / 1e6 << " ms):\n";
        for (const metric_value& m : snap.metrics) {
            if (m.info.kind == instrument_kind::histogram) {
                if (m.hist.count == 0) continue;
                out << "  " << m.info.name << ": count " << m.hist.count
                    << ", sum " << m.hist.sum << ", mean "
                    << static_cast<double>(m.hist.sum) /
                           static_cast<double>(m.hist.count)
                    << "\n";
            } else {
                if (m.value == 0) continue;
                out << "  " << m.info.name << ": " << m.value << "\n";
            }
        }
    }
    return ok;
}

}  // namespace altis::metrics
