// Vector clocks over syclite ordering events -- the happens-before algebra
// behind the ALS-R* race rules (docs/SANITIZER.md, "The happens-before
// model"). One component per actor (host, each kernel submission); clocks
// grow on demand, and a component an actor has never ticked reads as 0.
//
// The usual FastTrack-style query: an access by actor A at A-local time t
// happens-before an access stamped with clock C iff C[A] >= t -- i.e. the
// second access's actor had already synchronized with A's t-th step through
// some chain of submit/wait/pipe edges.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace altis::analyze {

class vector_clock {
public:
    /// Component for `actor`; 0 when the clock has never seen it.
    [[nodiscard]] std::uint64_t get(std::size_t actor) const {
        return actor < c_.size() ? c_[actor] : 0;
    }

    void set(std::size_t actor, std::uint64_t value) {
        grow(actor);
        c_[actor] = value;
    }

    /// Advances `actor`'s own component (one local step).
    void tick(std::size_t actor) {
        grow(actor);
        ++c_[actor];
    }

    /// Pointwise maximum: after join(o) this clock has seen everything both
    /// clocks had seen.
    void join(const vector_clock& o) {
        if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0);
        for (std::size_t i = 0; i < o.c_.size(); ++i)
            c_[i] = std::max(c_[i], o.c_[i]);
    }

    /// True when every component of *this is <= the matching one in `o`
    /// (the classical partial order; the race passes use the cheaper
    /// single-component get() query instead).
    [[nodiscard]] bool leq(const vector_clock& o) const {
        for (std::size_t i = 0; i < c_.size(); ++i)
            if (c_[i] > o.get(i)) return false;
        return true;
    }

    [[nodiscard]] std::size_t size() const { return c_.size(); }

private:
    void grow(std::size_t actor) {
        if (actor >= c_.size()) c_.resize(actor + 1, 0);
    }

    std::vector<std::uint64_t> c_;
};

}  // namespace altis::analyze
