// The sweep supervisor: one object per harness run that wraps every
// configuration with (in order) journal replay, circuit-breaker admission,
// a per-configuration deadline scope, and crash-safe journaling of the
// result. The body callback runs the configuration (typically through
// fault::run_guarded) and reports it as a journal_entry; the supervisor
// never interprets the entry beyond its status string, so altis_run and
// the fig sweeps share it unchanged.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "resilience/breaker.hpp"
#include "resilience/cancel.hpp"
#include "resilience/journal.hpp"
#include "resilience/options.hpp"

namespace altis::resilience {

class supervisor {
public:
    /// Opens/reads the journal per `opts`. Throws std::runtime_error when
    /// the resume journal is unreadable or belongs to a different sweep
    /// (callers turn that into exit code 2).
    supervisor(const options& opts, const std::string& sweep);

    struct result {
        journal_entry entry;
        bool replayed = false;  ///< came from the resume journal, body not run
    };

    /// Runs one configuration:
    ///  1. a completed `config` in the resume journal is replayed verbatim
    ///     (feeding the breaker exactly as the original run did, so
    ///     breaker decisions evolve identically);
    ///  2. an open breaker for `breaker_key` quarantines the config
    ///     without running it (status "quarantined");
    ///  3. otherwise `body` runs under the configured deadline scope and
    ///     its entry is journaled (fsync'd) before this returns.
    /// Cancelled entries (status "cancelled": Ctrl-C, not a deadline) are
    /// not journaled -- an interrupted config re-runs on resume.
    result run(const std::string& config, const std::string& breaker_key,
               const std::function<journal_entry()>& body);

    /// Terminal statuses that count against the breaker.
    [[nodiscard]] static bool hard_failure(const std::string& status) {
        return status == "failed" || status == "deadline";
    }

    [[nodiscard]] const options& opts() const { return opts_; }
    [[nodiscard]] breaker& circuit() { return breaker_; }
    /// Path entries are being appended to (empty when not journaling).
    [[nodiscard]] std::string journal_path() const {
        return writer_ ? writer_->path() : std::string();
    }
    [[nodiscard]] std::size_t replayable() const { return replay_.size(); }

private:
    options opts_;
    breaker breaker_;
    std::optional<journal_writer> writer_;
    bool writer_appends_ = false;  ///< writer continues the resume journal
    std::map<std::string, journal_entry> replay_;
};

}  // namespace altis::resilience
