// Out-of-order command graph for syclite (DESIGN.md "Command graph &
// scheduling"). A queue constructed with queue_property::out_of_order hands
// every kernel/transfer submission to a scheduler as a *node*; edges come
// from
//   (a) explicit event dependencies (handler::depends_on),
//   (b) accessor/USM-implied RAW/WAR/WAW conflicts over the declared byte
//       ranges (interval carving over a per-epoch segment map),
//   (c) nothing else -- submission order alone creates no edge.
// Dependency-free nodes dispatch asynchronously onto a thread_pool as posted
// tasks; joining threads (queue::wait, event::wait, buffer write-back) steal
// and run ready nodes themselves, so the graph drains even on a pool with
// zero workers (single-core hosts).
//
// Two-phase submit: enqueue() registers the node *held* and returns a ticket
// with the resolved edges and deterministic simulated start/end (computed on
// the host thread in submission order -- the modeled timeline is identical
// no matter how wall-clock execution interleaves); the queue finishes its
// bookkeeping (recorder, trace, events log) and then release()s the node for
// dispatch. Nothing can run before its shadow-clock edges exist.
//
// fault/resilience integration: every node passes a resilience checkpoint
// and the fault injection point (launch/transfer) at *dispatch*, so a
// deadline cancels queued-but-unstarted nodes and injected faults surface as
// an async exception_list at the next graph join.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "sycl/small_function.hpp"

namespace altis::analyze {
class recorder;
}  // namespace altis::analyze

namespace syclite {

class thread_pool;

namespace graph {

class scheduler_state;

/// One command handed to the scheduler.
struct submission {
    std::string name;  ///< kernel name; "transfer" for copies
    /// Functional payload; runs once, on a worker or a joining thread.
    detail::small_function<void(thread_pool&)> exec;
    /// Transfers serialize on the modeled PCIe lane (track 1) and inject
    /// op_kind::transfer instead of op_kind::launch.
    bool transfer = false;

    struct byte_range {
        const void* base = nullptr;
        std::size_t bytes = 0;
        bool write = false;
    };
    /// Declared ranges; implied edges are carved from these.
    std::vector<byte_range> ranges;
    /// Explicit dependencies (event::command_id values) -- ids issued by
    /// *this* scheduler only; ids are per-scheduler counters, so the caller
    /// must resolve foreign-graph events itself (queue::finish_submit_graph
    /// waits on them). Unknown or already retired ids are ignored -- they
    /// are complete by construction.
    std::vector<std::uint64_t> after;

    double submit_ns = 0.0;    ///< simulated time the host issued the node
    double duration_ns = 0.0;  ///< modeled device time of the node

    std::uint64_t cg = 0;  ///< recorder command-group id (0: none)
    int actor = -1;        ///< shadow actor bound around execution
    altis::analyze::recorder* recorder = nullptr;  ///< for cg retirement
};

/// Resolved placement of an enqueued node.
struct ticket {
    std::uint64_t id = 0;
    double start_ns = 0.0;  ///< max(submit, dep ends, lane availability)
    double end_ns = 0.0;
    int lane = 1;  ///< trace track: 1 = transfer lane, >= 2 = kernel lanes
    std::vector<std::uint64_t> deps;  ///< resolved edges (explicit + implied)
    std::vector<int> dep_actors;      ///< shadow actors of those deps
};

/// One settled node, in submission order.
struct completion {
    std::uint64_t index = 0;
    std::string name;
    std::exception_ptr error;  ///< null when the node ran clean
    bool cancelled = false;    ///< cooperative cancellation, not a fault
};

class scheduler {
public:
    /// `pool` receives ready-node dispatch tasks; it must outlive the
    /// scheduler (or be swapped out with set_pool before dying). With zero
    /// workers nothing is posted and joins run everything inline.
    explicit scheduler(thread_pool* pool);
    ~scheduler();

    scheduler(const scheduler&) = delete;
    scheduler& operator=(const scheduler&) = delete;

    [[nodiscard]] ticket enqueue(submission s);
    /// Makes a held node dispatchable. Must be called exactly once per
    /// enqueue, after the caller finished its submit-side bookkeeping.
    /// `actor >= 0` backfills the node's shadow actor -- transfer nodes only
    /// learn theirs from the recorder after enqueue resolved their edges.
    void release(std::uint64_t id, int actor = -1);

    /// Joins the whole graph: the calling thread runs ready nodes until
    /// every node of the current epoch settled.
    void wait_all();

    /// Commands enqueued since the last reset_epoch (the L5 "pending" count
    /// a wait node records).
    [[nodiscard]] std::size_t pending_count() const;
    /// Latest simulated end across the current epoch's nodes.
    [[nodiscard]] double horizon_ns() const;
    /// Summed modeled duration across the current epoch's nodes (overlap
    /// ratio numerator).
    [[nodiscard]] double busy_ns() const;
    /// Per-lane kernel intervals of the epoch, for the queue's kernel-time
    /// union fold: (start, end) pairs of kernel (non-transfer) nodes.
    [[nodiscard]] std::vector<std::pair<double, double>> kernel_spans() const;

    /// Settled nodes that failed or were cancelled, in submission order;
    /// removes them from the log (each error is delivered once).
    [[nodiscard]] std::vector<completion> drain_errors();

    /// Forgets the epoch (nodes, segment map, lanes). Requires every node
    /// settled -- call after wait_all(). Ids keep growing monotonically, so
    /// events from earlier epochs remain valid (and report complete).
    void reset_epoch();

    void set_pool(thread_pool* pool);

    /// Shared state handle for events (event::wait joins through it).
    [[nodiscard]] const std::shared_ptr<scheduler_state>& state() const {
        return state_;
    }

private:
    std::shared_ptr<scheduler_state> state_;
};

/// Targeted join: runs/awaits node `id` and (transitively through its edges)
/// everything it depends on. Ids from reset epochs are already complete.
/// Records the host-side shadow join for the node's actor when a recorder
/// captured it. Safe from any thread.
void wait_node(const std::shared_ptr<scheduler_state>& st, std::uint64_t id);

}  // namespace graph
}  // namespace syclite
