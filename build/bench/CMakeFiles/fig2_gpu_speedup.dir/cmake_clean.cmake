file(REMOVE_RECURSE
  "CMakeFiles/fig2_gpu_speedup.dir/fig2_gpu_speedup.cpp.o"
  "CMakeFiles/fig2_gpu_speedup.dir/fig2_gpu_speedup.cpp.o.d"
  "fig2_gpu_speedup"
  "fig2_gpu_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_gpu_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
