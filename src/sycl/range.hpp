// Index-space types of the syclite runtime: range, id, nd_range, nd_item,
// and the hierarchical work-group handles (group / h_item). Linearization
// follows SYCL 2020: dimension 0 is slowest-varying.
#pragma once

#include <cstddef>
#include <stdexcept>

namespace syclite {

template <int Dims>
class range {
    static_assert(Dims >= 1 && Dims <= 3, "syclite supports 1-3 dimensions");

public:
    constexpr range() : v_{} {}
    constexpr explicit range(std::size_t d0)
        requires(Dims == 1)
        : v_{d0} {}
    constexpr range(std::size_t d0, std::size_t d1)
        requires(Dims == 2)
        : v_{d0, d1} {}
    constexpr range(std::size_t d0, std::size_t d1, std::size_t d2)
        requires(Dims == 3)
        : v_{d0, d1, d2} {}

    [[nodiscard]] constexpr std::size_t get(int dim) const { return v_[dim]; }
    constexpr std::size_t& operator[](int dim) { return v_[dim]; }
    constexpr std::size_t operator[](int dim) const { return v_[dim]; }

    [[nodiscard]] constexpr std::size_t size() const {
        std::size_t s = 1;
        for (int d = 0; d < Dims; ++d) s *= v_[d];
        return s;
    }

    friend constexpr bool operator==(const range& a, const range& b) {
        for (int d = 0; d < Dims; ++d)
            if (a.v_[d] != b.v_[d]) return false;
        return true;
    }

private:
    std::size_t v_[Dims];
};

template <int Dims>
class id {
    static_assert(Dims >= 1 && Dims <= 3);

public:
    constexpr id() : v_{} {}
    constexpr explicit id(std::size_t d0)
        requires(Dims == 1)
        : v_{d0} {}
    constexpr id(std::size_t d0, std::size_t d1)
        requires(Dims == 2)
        : v_{d0, d1} {}
    constexpr id(std::size_t d0, std::size_t d1, std::size_t d2)
        requires(Dims == 3)
        : v_{d0, d1, d2} {}

    [[nodiscard]] constexpr std::size_t get(int dim) const { return v_[dim]; }
    constexpr std::size_t& operator[](int dim) { return v_[dim]; }
    constexpr std::size_t operator[](int dim) const { return v_[dim]; }

    friend constexpr bool operator==(const id& a, const id& b) {
        for (int d = 0; d < Dims; ++d)
            if (a.v_[d] != b.v_[d]) return false;
        return true;
    }

private:
    std::size_t v_[Dims];
};

namespace detail {

template <int Dims>
constexpr std::size_t linearize(const id<Dims>& i, const range<Dims>& r) {
    std::size_t lin = i[0];
    for (int d = 1; d < Dims; ++d) lin = lin * r[d] + i[d];
    return lin;
}

template <int Dims>
constexpr id<Dims> delinearize(std::size_t lin, const range<Dims>& r) {
    id<Dims> out;
    for (int d = Dims - 1; d >= 0; --d) {
        out[d] = lin % r[d];
        lin /= r[d];
    }
    return out;
}

}  // namespace detail

template <int Dims>
class nd_range {
public:
    constexpr nd_range(range<Dims> global, range<Dims> local)
        : global_(global), local_(local) {
        for (int d = 0; d < Dims; ++d)
            if (local[d] == 0 || global[d] % local[d] != 0)
                throw std::invalid_argument(
                    "nd_range: global size must be a multiple of local size");
    }

    [[nodiscard]] constexpr range<Dims> get_global_range() const { return global_; }
    [[nodiscard]] constexpr range<Dims> get_local_range() const { return local_; }
    [[nodiscard]] constexpr range<Dims> get_group_range() const {
        range<Dims> g;
        for (int d = 0; d < Dims; ++d) g[d] = global_[d] / local_[d];
        return g;
    }

private:
    range<Dims> global_;
    range<Dims> local_;
};

/// Work-item handle for classic ND-Range kernels. syclite executes the items
/// of a work-group sequentially, so mid-kernel barriers are not available
/// here -- kernels that need them use the hierarchical API (group/h_item),
/// where barriers fall between parallel_for_work_item phases (DESIGN.md
/// Sec. 4).
template <int Dims>
class nd_item {
public:
    nd_item(id<Dims> global, id<Dims> local, id<Dims> group, range<Dims> grange,
            range<Dims> lrange)
        : global_(global), local_(local), group_(group), grange_(grange),
          lrange_(lrange) {}

    [[nodiscard]] std::size_t get_global_id(int dim) const { return global_[dim]; }
    [[nodiscard]] id<Dims> get_global_id() const { return global_; }
    [[nodiscard]] std::size_t get_local_id(int dim) const { return local_[dim]; }
    [[nodiscard]] std::size_t get_group(int dim) const { return group_[dim]; }
    [[nodiscard]] std::size_t get_global_range(int dim) const { return grange_[dim]; }
    [[nodiscard]] std::size_t get_local_range(int dim) const { return lrange_[dim]; }
    [[nodiscard]] std::size_t get_global_linear_id() const {
        return detail::linearize(global_, grange_);
    }
    [[nodiscard]] std::size_t get_local_linear_id() const {
        return detail::linearize(local_, lrange_);
    }

    /// Barriers require concurrent work-items; see class comment.
    [[noreturn]] void barrier() const {
        throw std::logic_error(
            "syclite: nd_item::barrier() is not executable -- rewrite the "
            "kernel with the hierarchical parallel_for_work_group API");
    }

private:
    id<Dims> global_, local_, group_;
    range<Dims> grange_, lrange_;
};

/// Work-item handle inside a hierarchical phase.
template <int Dims>
class h_item {
public:
    h_item(id<Dims> global, id<Dims> local, range<Dims> grange, range<Dims> lrange)
        : global_(global), local_(local), grange_(grange), lrange_(lrange) {}

    [[nodiscard]] std::size_t get_global_id(int dim) const { return global_[dim]; }
    [[nodiscard]] std::size_t get_local_id(int dim) const { return local_[dim]; }
    [[nodiscard]] std::size_t get_local_linear_id() const {
        return detail::linearize(local_, lrange_);
    }
    [[nodiscard]] std::size_t get_global_range(int dim) const { return grange_[dim]; }
    [[nodiscard]] std::size_t get_local_range(int dim) const { return lrange_[dim]; }

private:
    id<Dims> global_, local_;
    range<Dims> grange_, lrange_;
};

/// Work-group handle for hierarchical kernels. Each call to
/// parallel_for_work_item runs one phase over all work-items of the group;
/// consecutive phases are separated by an implicit group barrier, exactly as
/// in SYCL's hierarchical parallelism.
template <int Dims>
class group {
public:
    group(id<Dims> group_id, range<Dims> group_range, range<Dims> local_range,
          range<Dims> global_range)
        : gid_(group_id), group_range_(group_range), local_range_(local_range),
          global_range_(global_range) {}

    [[nodiscard]] std::size_t get_group_id(int dim) const { return gid_[dim]; }
    [[nodiscard]] std::size_t get_group_linear_id() const {
        return detail::linearize(gid_, group_range_);
    }
    [[nodiscard]] std::size_t get_group_range(int dim) const {
        return group_range_[dim];
    }
    [[nodiscard]] std::size_t get_local_range(int dim) const {
        return local_range_[dim];
    }

    /// Iterates the phase div-free: nested per-dimension loops carry the
    /// local and global coordinates incrementally instead of delinearizing
    /// each item's linear index (see handler::parallel_for).
    template <typename F>
    void parallel_for_work_item(F&& f) const {
        if constexpr (Dims == 1) {
            const std::size_t b0 = gid_[0] * local_range_[0];
            for (std::size_t l0 = 0; l0 < local_range_[0]; ++l0)
                f(h_item<1>(id<1>(b0 + l0), id<1>(l0), global_range_,
                            local_range_));
        } else if constexpr (Dims == 2) {
            const std::size_t b0 = gid_[0] * local_range_[0];
            const std::size_t b1 = gid_[1] * local_range_[1];
            for (std::size_t l0 = 0; l0 < local_range_[0]; ++l0)
                for (std::size_t l1 = 0; l1 < local_range_[1]; ++l1)
                    f(h_item<2>(id<2>(b0 + l0, b1 + l1), id<2>(l0, l1),
                                global_range_, local_range_));
        } else {
            const std::size_t b0 = gid_[0] * local_range_[0];
            const std::size_t b1 = gid_[1] * local_range_[1];
            const std::size_t b2 = gid_[2] * local_range_[2];
            for (std::size_t l0 = 0; l0 < local_range_[0]; ++l0)
                for (std::size_t l1 = 0; l1 < local_range_[1]; ++l1)
                    for (std::size_t l2 = 0; l2 < local_range_[2]; ++l2)
                        f(h_item<3>(id<3>(b0 + l0, b1 + l1, b2 + l2),
                                    id<3>(l0, l1, l2), global_range_,
                                    local_range_));
        }
        // Implicit work-group barrier here: the next phase only starts after
        // every work-item finished this one.
    }

private:
    id<Dims> gid_;
    range<Dims> group_range_, local_range_, global_range_;
};

}  // namespace syclite
