file(REMOVE_RECURSE
  "CMakeFiles/test_dpct.dir/dpct/test_dpct.cpp.o"
  "CMakeFiles/test_dpct.dir/dpct/test_dpct.cpp.o.d"
  "test_dpct"
  "test_dpct.pdb"
  "test_dpct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
