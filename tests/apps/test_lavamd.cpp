#include "apps/lavamd/lavamd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perf/resource_model.hpp"

namespace altis::apps::lavamd {
namespace {

TEST(Lavamd, GoldenForcesAreFiniteAndNonTrivial) {
    params p;
    p.boxes1d = 2;
    const auto particles = make_particles(p);
    const auto forces = golden(p, particles);
    ASSERT_EQ(forces.size(), p.particles());
    double energy = 0.0;
    for (const auto& f : forces) {
        EXPECT_TRUE(std::isfinite(f.fx));
        EXPECT_TRUE(std::isfinite(f.energy));
        energy += f.energy;
    }
    EXPECT_GT(energy, 0.0);  // exp(-u2)*q > 0 for every pair
}

TEST(Lavamd, InteriorParticlesSeeMoreNeighbors) {
    // An interior box (27 neighbours) accumulates more energy than a corner
    // box (8 neighbours), everything else being statistically equal.
    params p;
    p.boxes1d = 4;
    const auto particles = make_particles(p);
    const auto forces = golden(p, particles);
    auto box_energy = [&](std::size_t box) {
        double e = 0.0;
        for (std::size_t i = 0; i < kParPerBox; ++i)
            e += forces[box * kParPerBox + i].energy;
        return e;
    };
    const std::size_t corner = 0;
    const std::size_t interior = (1 * p.boxes1d + 1) * p.boxes1d + 1;
    EXPECT_GT(box_energy(interior), box_energy(corner) * 1.5);
}

struct Case {
    const char* device;
    Variant variant;
};

class LavamdVariants : public ::testing::TestWithParam<Case> {};

TEST_P(LavamdVariants, FunctionalRunVerifies) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = GetParam().device;
    cfg.variant = GetParam().variant;
    const AppResult r = run(cfg);
    EXPECT_GT(r.kernel_ms, 0.0);
    EXPECT_LE(r.error, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndVariants, LavamdVariants,
    ::testing::Values(Case{"rtx_2080", Variant::cuda},
                      Case{"max_1100", Variant::sycl_opt},
                      Case{"xeon_6128", Variant::sycl_base},
                      Case{"stratix_10", Variant::fpga_base},
                      Case{"stratix_10", Variant::fpga_opt},
                      Case{"agilex", Variant::fpga_opt}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.device) + "_" +
               to_string(info.param.variant);
    });

// Sec. 5.2 case 1: performance improves almost linearly with the unroll
// factor on the banked shared-memory loop.
TEST(Lavamd, UnrollingDeliversNearLinearFpgaSpeedup) {
    const auto& s10 = perf::device_by_name("stratix_10");
    const auto base = simulate_region(region(Variant::fpga_base, s10, 2), s10,
                                      perf::runtime_kind::sycl);
    const auto opt = simulate_region(region(Variant::fpga_opt, s10, 2), s10,
                                     perf::runtime_kind::sycl);
    const double speedup = base.kernel_ms() / opt.kernel_ms();
    EXPECT_GT(speedup, 15.0);  // paper: 23.1x at size 2
    EXPECT_LT(speedup, 45.0);
}

TEST(Lavamd, UnrollRetunedThirtyToSixteen) {
    EXPECT_EQ(fpga_design(perf::device_by_name("stratix_10"), 1)[0].unroll, 30);
    EXPECT_EQ(fpga_design(perf::device_by_name("agilex"), 1)[0].unroll, 16);
}

TEST(Lavamd, UnrollingPastBankingLimitViolatesTiming) {
    const auto& s10 = perf::device_by_name("stratix_10");
    auto k = fpga_design(s10, 1)[0];
    EXPECT_TRUE(perf::estimate_kernel_resources(k, s10).timing_clean);
    k.unroll = 40;  // "further unrolling ... leads to timing violations"
    EXPECT_FALSE(perf::estimate_kernel_resources(k, s10).timing_clean);
}

TEST(Lavamd, RunMatchesRegionSimulation) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "stratix_10";
    cfg.variant = Variant::fpga_opt;
    const AppResult r = run(cfg);
    const auto& dev = perf::device_by_name(cfg.device);
    const auto est = simulate_region(region(cfg.variant, dev, cfg.size), dev,
                                     perf::runtime_kind::sycl);
    EXPECT_NEAR(r.kernel_ms, est.kernel_ms(), r.kernel_ms * 0.02);
}

}  // namespace
}  // namespace altis::apps::lavamd
