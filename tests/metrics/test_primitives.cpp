// Lock-free telemetry primitives: exactness of the sharded counters,
// gauges, watermarks and log-bucketed histograms, single-threaded and under
// a concurrent hammer (the latter is the TSan target: every update is a
// relaxed atomic on a padded shard cell, so the test must be race-free by
// construction, not by luck).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"

namespace altis::metrics {
namespace {

TEST(Counter, AddAndValue) {
    counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SignedLevel) {
    gauge g;
    g.add(100);
    g.sub(30);
    EXPECT_EQ(g.value(), 70);
    g.sub(100);
    EXPECT_EQ(g.value(), -30);  // transiently-negative levels stay visible
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(Watermark, OnlyRises) {
    watermark w;
    w.record(10);
    w.record(7);
    EXPECT_EQ(w.value(), 10u);
    w.record(11);
    EXPECT_EQ(w.value(), 11u);
    w.reset();
    EXPECT_EQ(w.value(), 0u);
}

TEST(Histogram, BucketMapping) {
    // Bucket i holds values of bit width i: 0 -> 0, 1 -> 1, [2,3] -> 2, ...
    EXPECT_EQ(histogram::bucket_of(0), 0);
    EXPECT_EQ(histogram::bucket_of(1), 1);
    EXPECT_EQ(histogram::bucket_of(2), 2);
    EXPECT_EQ(histogram::bucket_of(3), 2);
    EXPECT_EQ(histogram::bucket_of(4), 3);
    EXPECT_EQ(histogram::bucket_of(~std::uint64_t{0}), 64);

    // bucket_bound(i) is the inclusive upper edge 2^i - 1.
    EXPECT_EQ(histogram::bucket_bound(0), 0u);
    EXPECT_EQ(histogram::bucket_bound(1), 1u);
    EXPECT_EQ(histogram::bucket_bound(2), 3u);
    EXPECT_EQ(histogram::bucket_bound(10), 1023u);
    EXPECT_EQ(histogram::bucket_bound(64), ~std::uint64_t{0});

    // Every value falls inside its bucket's range.
    for (std::uint64_t v : {0u, 1u, 2u, 3u, 255u, 256u, 1000000u}) {
        const int b = histogram::bucket_of(v);
        EXPECT_LE(v, histogram::bucket_bound(b));
        if (b > 0) {
            EXPECT_GT(v, histogram::bucket_bound(b - 1));
        }
    }
}

TEST(Histogram, AggregateIsExact) {
    histogram h;
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(1024);
    const histogram::snapshot s = h.aggregate();
    EXPECT_EQ(s.count, 5u);
    EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 1024);
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[2], 2u);
    EXPECT_EQ(s.buckets[11], 1u);  // 1024 has bit width 11
}

// The hammer: N writers pound one counter, one gauge and one histogram.
// After joining, every identity must hold exactly -- sharding may only
// distribute the updates, never lose or double-count them.
TEST(Primitives, ConcurrentHammerTotalsAreExact) {
    constexpr int kThreads = 8;
    constexpr std::uint64_t kIters = 20000;

    counter c;
    gauge g;
    histogram h;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::uint64_t i = 0; i < kIters; ++i) {
                c.add();
                c.add(2);
                g.add(static_cast<std::int64_t>(i));
                g.sub(static_cast<std::int64_t>(i));
                h.record(i);
            }
        });
    }
    for (auto& t : threads) t.join();

    EXPECT_EQ(c.value(), kThreads * kIters * 3);
    EXPECT_EQ(g.value(), 0);

    const histogram::snapshot s = h.aggregate();
    EXPECT_EQ(s.count, kThreads * kIters);
    // sum = kThreads * (0 + 1 + ... + kIters-1)
    EXPECT_EQ(s.sum, kThreads * (kIters * (kIters - 1) / 2));
    // Bucket counts must add back up to the total, and each bucket must hold
    // exactly kThreads times its single-thread population.
    std::uint64_t from_buckets = 0;
    for (int b = 0; b < histogram::kBuckets; ++b)
        from_buckets += s.buckets[static_cast<std::size_t>(b)];
    EXPECT_EQ(from_buckets, s.count);
    EXPECT_EQ(s.buckets[0], static_cast<std::uint64_t>(kThreads));  // value 0
    EXPECT_EQ(s.buckets[1], static_cast<std::uint64_t>(kThreads));  // value 1
    EXPECT_EQ(s.buckets[2], 2u * kThreads);                         // 2..3
}

TEST(Primitives, ConcurrentWatermarkConvergesToMax) {
    constexpr int kThreads = 8;
    watermark w;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < 10000; ++i)
                w.record(i * static_cast<std::uint64_t>(t + 1));
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(w.value(), 9999u * kThreads);
}

TEST(Collecting, DefaultsOff) {
    // No session in this binary's tests at this point: the process-wide
    // switch must read false so instrumentation sites skip their work.
    EXPECT_FALSE(collecting());
}

}  // namespace
}  // namespace altis::metrics
