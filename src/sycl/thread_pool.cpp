#include "sycl/thread_pool.hpp"

#include <algorithm>

namespace syclite {

thread_pool::thread_pool(unsigned threads) {
    unsigned n = threads;
    if (n == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n = hw > 1 ? hw - 1 : 0;
    }
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& t : workers_) t.join();
}

void thread_pool::run_job(job& j) {
    // Chunked self-scheduling: amortizes the atomic across iterations while
    // staying balanced for irregular per-index costs.
    const std::size_t chunk =
        std::max<std::size_t>(1, j.n / ((workers_.size() + 1) * 8));
    for (;;) {
        const std::size_t begin = j.next.fetch_add(chunk);
        if (begin >= j.n) break;
        const std::size_t end = std::min(begin + chunk, j.n);
        for (std::size_t i = begin; i < end; ++i) (*j.fn)(i);
    }
}

void thread_pool::worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
        job* j = nullptr;
        {
            std::unique_lock lock(mutex_);
            wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) return;
            seen = generation_;
            j = current_;
            if (j == nullptr) continue;
            j->active_workers.fetch_add(1);
        }
        run_job(*j);
        if (j->active_workers.fetch_sub(1) == 1) {
            // Lock before notifying so the waiter cannot check the predicate
            // and go to sleep between our decrement and the notification.
            std::lock_guard lock(mutex_);
            done_.notify_all();
        }
    }
}

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    std::lock_guard submit_lock(submit_mutex_);
    job j;
    j.fn = &fn;
    j.n = n;
    {
        std::lock_guard lock(mutex_);
        current_ = &j;
        ++generation_;
    }
    wake_.notify_all();
    run_job(j);
    {
        // Wait for workers that picked up the job to drain before j dies.
        std::unique_lock lock(mutex_);
        current_ = nullptr;
        done_.wait(lock, [&] { return j.active_workers.load() == 0; });
    }
}

thread_pool& thread_pool::global() {
    static thread_pool pool;
    return pool;
}

}  // namespace syclite
