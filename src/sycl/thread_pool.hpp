// Minimal work-sharing thread pool used to execute work-groups in parallel.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace syclite {

class thread_pool {
public:
    /// `threads` counts the workers in addition to the calling thread;
    /// 0 requests std::thread::hardware_concurrency() - 1.
    explicit thread_pool(unsigned threads = 0);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Runs fn(i) for i in [0, n); blocks until complete. The calling thread
    /// participates. fn must be safe to call concurrently for distinct i.
    /// Safe to call from multiple threads (calls are serialized), which
    /// dataflow groups with ND-Range members rely on.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    [[nodiscard]] unsigned worker_count() const {
        return static_cast<unsigned>(workers_.size());
    }

    /// Process-wide pool shared by all queues.
    static thread_pool& global();

private:
    void worker_loop();

    struct job {
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> active_workers{0};
    };

    void run_job(job& j);

    std::vector<std::thread> workers_;
    std::mutex submit_mutex_;  ///< serializes concurrent parallel_for calls
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    job* current_ = nullptr;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

}  // namespace syclite
