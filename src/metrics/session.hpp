// Metrics session: the RAII scope that turns collection on, mirroring
// trace::session / analyze::recorder / fault::scope. While a session is
// alive, metrics::collecting() is true and every instrumentation site in the
// runtime feeds the process-wide registry; the session also owns the
// background sampler thread that snapshots gauges and watermarks into time
// series (Perfetto counter tracks, JSON "series" section).
//
// Exactly one session may be active at a time (construction throws
// otherwise). stop() freezes the measurement interval -- collection off,
// sampler joined, final sample taken -- after which take_snapshot()/series()
// describe the finished run; the destructor stops implicitly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/registry.hpp"

namespace altis::metrics {

/// One instrument's aggregated value at snapshot time. `value` carries
/// counters (cast from unsigned), gauges (signed) and watermarks; `hist` is
/// populated for histograms only.
struct metric_value {
    instrument_info info;
    std::int64_t value = 0;
    histogram::snapshot hist;
};

struct snapshot {
    std::string session_name;
    double duration_ns = 0.0;  ///< wall-clock span of the session so far
    std::vector<metric_value> metrics;
};

/// Time series of one sampled instrument: (t_ns since session start, value).
struct sampled_series {
    instrument_info info;
    std::vector<std::pair<double, double>> samples;
};

class session {
public:
    struct config {
        /// Sampler frequency; <= 0 disables the sampler thread (snapshots
        /// still work). $ALTIS_METRICS_HZ overrides via from_env().
        double sample_hz = 100.0;

        [[nodiscard]] static config from_env();
    };

    explicit session(std::string name = "altis",
                     config cfg = config::from_env());
    ~session();

    session(const session&) = delete;
    session& operator=(const session&) = delete;

    /// Ends the measurement interval: turns collection off, joins the
    /// sampler (taking one final sample) and freezes duration_ns.
    /// Idempotent.
    void stop();

    /// Aggregates every registered instrument. Callable while running (the
    /// totals are monotone) or after stop().
    [[nodiscard]] snapshot take_snapshot() const;

    /// Sampled gauge/watermark series; stable only after stop().
    [[nodiscard]] const std::vector<sampled_series>& series() const {
        return series_;
    }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] double sample_hz() const { return cfg_.sample_hz; }

    [[nodiscard]] static session* current();

private:
    void sampler_loop();
    void take_sample();
    [[nodiscard]] double now_ns() const;

    std::string name_;
    config cfg_;
    std::chrono::steady_clock::time_point start_;
    double stopped_duration_ns_ = 0.0;
    bool stopped_ = false;

    std::thread sampler_;
    std::mutex sampler_mutex_;
    std::condition_variable sampler_cv_;
    bool sampler_stop_ = false;

    std::vector<sampled_series> series_;
};

}  // namespace altis::metrics
