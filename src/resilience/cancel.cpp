#include "resilience/cancel.hpp"

#include <csignal>

#include "metrics/instruments.hpp"

namespace altis::resilience {

namespace detail {
cancel_token g_token;
}  // namespace detail

const char* to_string(cancel_reason r) {
    switch (r) {
        case cancel_reason::none: return "none";
        case cancel_reason::manual: return "manual";
        case cancel_reason::deadline: return "deadline";
        case cancel_reason::interrupt: return "interrupt";
    }
    return "?";
}

bool cancel_token::deadline_expired() noexcept {
    const std::uint64_t dl = deadline_ns_.load(std::memory_order_relaxed);
    if (dl == 0) return false;
    const std::uint64_t now = clock_ns();
    if (now < dl) return false;
    latch(cancel_reason::deadline, now);
    return true;
}

void cancel_token::latch(cancel_reason r, std::uint64_t now) noexcept {
    // Earliest observation wins on both fields, so concurrent workers
    // hitting the deadline together agree on one origin and one reason.
    std::uint64_t expected_ns = 0;
    cancel_ns_.compare_exchange_strong(expected_ns, now,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed);
    std::uint32_t expected_r = 0;
    reason_.compare_exchange_strong(expected_r, static_cast<std::uint32_t>(r),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed);
    state_.fetch_or(1U, std::memory_order_release);
}

void cancel_token::raise_if_cancelled() {
    if (!should_stop()) return;
    const cancel_reason r = reason();
    if (metrics::collecting()) {
        // Latency from the moment cancellation was due (the armed deadline
        // for deadline misses, the cancel() call otherwise) to this raise:
        // how long the hung path took to actually let go.
        const std::uint64_t now = clock_ns();
        std::uint64_t origin = 0;
        if (r == cancel_reason::deadline)
            origin = deadline_ns_.load(std::memory_order_relaxed);
        if (origin == 0) origin = cancel_ns_.load(std::memory_order_relaxed);
        if (origin != 0 && now > origin)
            metrics::instruments::resilience_cancel_latency_ns().record(
                now - origin);
    }
    std::string msg;
    switch (r) {
        case cancel_reason::deadline: {
            msg = "cancelled: deadline of " + std::to_string(budget_ms()) +
                  " ms exceeded";
            break;
        }
        case cancel_reason::interrupt:
            msg = "cancelled: interrupted (SIGINT/SIGTERM)";
            break;
        default: msg = "cancelled"; break;
    }
    throw cancelled_error(r, msg);
}

void cancel_token::arm(double ms) noexcept {
    if (ms > 0.0) {
        budget_us_.store(static_cast<std::uint64_t>(ms * 1e3),
                         std::memory_order_relaxed);
        deadline_ns_.store(clock_ns() + static_cast<std::uint64_t>(ms * 1e6),
                           std::memory_order_relaxed);
    }
    state_.fetch_add(2U, std::memory_order_release);
}

void cancel_token::disarm() noexcept {
    deadline_ns_.store(0, std::memory_order_relaxed);
    budget_us_.store(0, std::memory_order_relaxed);
    if (reason() == cancel_reason::deadline) {
        // A deadline miss is scoped to the configuration that overran; the
        // next one starts with a clean token. By disarm time the config's
        // workers have unwound, so nobody is concurrently observing.
        reason_.store(0, std::memory_order_relaxed);
        cancel_ns_.store(0, std::memory_order_relaxed);
        state_.fetch_and(~1U, std::memory_order_release);
    }
    state_.fetch_sub(2U, std::memory_order_release);
}

void cancel_token::reset() noexcept {
    deadline_ns_.store(0, std::memory_order_relaxed);
    budget_us_.store(0, std::memory_order_relaxed);
    reason_.store(0, std::memory_order_relaxed);
    cancel_ns_.store(0, std::memory_order_relaxed);
    state_.store(0, std::memory_order_release);
}

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) noexcept {
    // Async-signal-safe: two lock-free atomic stores. Everything else (the
    // journal flush, the partial report) happens on the sweep thread once
    // it observes the token between configurations.
    g_signal.store(sig, std::memory_order_relaxed);
    detail::g_token.cancel(cancel_reason::interrupt);
}

}  // namespace

void install_signal_cancellation() {
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
}

bool interrupted() noexcept {
    return g_signal.load(std::memory_order_relaxed) != 0;
}

int interrupt_signal() noexcept {
    return g_signal.load(std::memory_order_relaxed);
}

}  // namespace altis::resilience
