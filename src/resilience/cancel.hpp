// Cooperative cancellation for the sweep supervisor. One process-wide
// cancel_token is observed at the runtime's natural preemption points
// (thread-pool chunk claims, pipe waits, queue submissions) and raised as a
// structured cancelled_error; a deadline_scope arms a wall-clock budget
// around one configuration so a hung config dies cleanly instead of
// wedging the whole sweep (paper Sec. 5: multi-hour FPGA campaigns).
//
// Design constraints the layout serves:
//  - the disabled path (no deadline armed, nothing cancelled) costs one
//    relaxed atomic load -- the fig sweeps and the golden gates run through
//    the same checkpoints with zero behavioral change;
//  - cancel() is async-signal-safe (lock-free atomic stores only), so the
//    SIGINT/SIGTERM handler can cancel the current configuration directly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace altis::resilience {

/// Why the token fired. `deadline` is latched by the token itself when the
/// armed budget expires; `interrupt` comes from the signal handler.
enum class cancel_reason : std::uint32_t {
    none = 0,
    manual = 1,
    deadline = 2,
    interrupt = 3,
};

[[nodiscard]] const char* to_string(cancel_reason r);

/// Raised from a checkpoint once the token is cancelled. Distinct from
/// fault::injected_fault on purpose: fault::run_guarded classifies it as a
/// non-retryable `deadline`/`cancelled` outcome instead of burning retries.
class cancelled_error : public std::runtime_error {
public:
    cancelled_error(cancel_reason r, const std::string& msg)
        : std::runtime_error(msg), reason_(r) {}
    [[nodiscard]] cancel_reason reason() const noexcept { return reason_; }

private:
    cancel_reason reason_;
};

class cancel_token {
public:
    /// One relaxed load on the disabled path; checks the armed deadline
    /// (and latches expiry) otherwise. Safe to call from any thread.
    [[nodiscard]] bool should_stop() noexcept {
        const std::uint32_t s = state_.load(std::memory_order_acquire);
        if (s == 0) return false;  // not armed, nothing cancelled
        if ((s & 1U) != 0U) return true;
        return deadline_expired();
    }

    /// Latch a cancellation. Async-signal-safe: lock-free atomic ops only.
    void cancel(cancel_reason r = cancel_reason::manual) noexcept {
        latch(r, clock_ns());
    }

    [[nodiscard]] cancel_reason reason() const noexcept {
        return static_cast<cancel_reason>(
            reason_.load(std::memory_order_acquire));
    }

    /// Throws cancelled_error when cancelled (records the cancellation
    /// latency histogram while metrics collect); returns otherwise.
    void raise_if_cancelled();

    /// Arm a wall-clock budget of `ms` from now (ms <= 0 arms no deadline
    /// but still marks the token active). Paired with disarm().
    void arm(double ms) noexcept;
    /// Ends the armed stretch. A latched *deadline* cancellation is cleared
    /// so the next configuration starts fresh; manual/interrupt
    /// cancellations persist (the whole sweep is being torn down).
    void disarm() noexcept;

    /// The armed budget in ms (0 when none); for messages.
    [[nodiscard]] double budget_ms() const noexcept {
        return static_cast<double>(budget_us_.load(std::memory_order_relaxed)) /
               1e3;
    }

    /// Test support: clear every latch, including manual/interrupt.
    void reset() noexcept;

private:
    [[nodiscard]] static std::uint64_t clock_ns() noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    bool deadline_expired() noexcept;
    void latch(cancel_reason r, std::uint64_t now) noexcept;

    /// bit 0: cancelled; bits 1..: armed-scope count (in steps of 2).
    std::atomic<std::uint32_t> state_{0};
    std::atomic<std::uint32_t> reason_{0};
    /// steady_clock ns of the first cancel observation (0 = unset; CAS from
    /// 0 keeps the earliest, so latency is measured from the true origin).
    std::atomic<std::uint64_t> cancel_ns_{0};
    /// steady_clock deadline (0 = none armed).
    std::atomic<std::uint64_t> deadline_ns_{0};
    std::atomic<std::uint64_t> budget_us_{0};
};

namespace detail {
/// The process-wide token. Constant-initialized (atomics only) so the
/// signal handler can reach it without static-init-order hazards.
extern cancel_token g_token;
}  // namespace detail

[[nodiscard]] inline cancel_token& current() noexcept {
    return detail::g_token;
}

/// Non-throwing fast gate for worker loops that must unwind by returning
/// (pool workers break out of their chunk loop; the submitting thread then
/// raises from checkpoint()).
[[nodiscard]] inline bool cancellation_requested() noexcept {
    return detail::g_token.should_stop();
}

/// Throwing checkpoint for host-side control flow: raises cancelled_error
/// when the process token is cancelled, else a single relaxed load.
inline void checkpoint() {
    if (cancellation_requested()) detail::g_token.raise_if_cancelled();
}

/// RAII per-configuration deadline on the process token. deadline_ms <= 0
/// is a no-op scope (checkpoints stay on their one-load fast path).
class deadline_scope {
public:
    explicit deadline_scope(double deadline_ms) : armed_(deadline_ms > 0.0) {
        if (armed_) current().arm(deadline_ms);
    }
    ~deadline_scope() {
        if (armed_) current().disarm();
    }
    deadline_scope(const deadline_scope&) = delete;
    deadline_scope& operator=(const deadline_scope&) = delete;

private:
    bool armed_;
};

/// Install SIGINT/SIGTERM handlers that cancel the process token (reason
/// `interrupt`) and record the signal; the sweep loops observe
/// interrupted() between configurations, flush their journal/report and
/// exit 128+signal instead of corrupting a resumable run.
void install_signal_cancellation();
/// True once a handled signal arrived.
[[nodiscard]] bool interrupted() noexcept;
/// The signal number (0 when none); exit code is 128 + this.
[[nodiscard]] int interrupt_signal() noexcept;

}  // namespace altis::resilience
