// altis::mem pool contract: size-class geometry, alignment, zero-size
// uniqueness, generation tagging across recycling, exact live-byte
// accounting (single-threaded and under a cross-thread free hammer),
// magazine overflow/underflow, the reuse cache, the system A/B backend, and
// debug-build header integrity checks.
#include "mem/pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "mem/size_class.hpp"

namespace altis::mem {
namespace {

[[nodiscard]] bool aligned64(const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % kAlignment == 0;
}

/// Restores the pooled backend even if a test body throws.
struct backend_guard {
    backend prev = current_backend();
    ~backend_guard() { set_backend(prev); }
};

TEST(SizeClass, GeometryIsMonotoneAndCovering) {
    static_assert(class_size(0) == kAlignment);
    static_assert(class_size(kSmallClasses - 1) == kSmallMax);
    for (unsigned c = 1; c < kSmallClasses; ++c)
        EXPECT_GT(class_size(c), class_size(c - 1)) << c;
    // Every request up to kSmallMax maps to a class at least as big, and to
    // the smallest such class.
    EXPECT_EQ(size_to_class(0), 0u);
    for (std::size_t n = 1; n <= kSmallMax; n += 37) {
        const unsigned c = size_to_class(n);
        EXPECT_GE(class_size(c), n) << n;
        if (c > 0) {
            EXPECT_LT(class_size(c - 1), n) << n;
        }
    }
    EXPECT_EQ(size_to_class(kSmallMax), kSmallClasses - 1);
}

TEST(SizeClass, LargeClassesArePowersOfTwo) {
    for (std::size_t n : {std::size_t{64} * 1024 + 1, std::size_t{1} << 20,
                          (std::size_t{1} << 20) + 1, std::size_t{64} << 20}) {
        const unsigned lc = large_class(n);
        const std::size_t sz = large_class_size(lc);
        EXPECT_GE(sz, n) << n;
        EXPECT_EQ(sz & (sz - 1), 0u) << "not a power of two: " << sz;
        EXPECT_LT(sz / 2, n) << "class overshoots: " << n;
    }
}

TEST(Pool, AlignmentAndUsableSize) {
    for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                          std::size_t{4096}, kSmallMax, kSmallMax + 1,
                          std::size_t{3} << 20}) {
        void* p = allocate(n);
        ASSERT_NE(p, nullptr) << n;
        EXPECT_TRUE(aligned64(p)) << n;
        EXPECT_GE(usable_size(p), n) << n;
        // The block is fully usable, not just nominally sized.
        std::memset(p, 0xAB, usable_size(p));
        deallocate(p);
    }
}

TEST(Pool, ZeroSizeAllocationsAreUniqueAndFreeable) {
    void* a = allocate(0);
    void* b = allocate(0);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);  // distinct identities, like operator new
    EXPECT_TRUE(aligned64(a));
    deallocate(a);
    deallocate(b);
}

TEST(Pool, GenerationDisambiguatesARecycledAddress) {
    void* p1 = allocate(256);
    const std::uint64_t g1 = generation_of(p1);
    EXPECT_GT(g1, 0u);
    deallocate(p1);
    // Magazine LIFO: the same thread asking for the same class gets the
    // identical block back -- which is exactly why the generation exists.
    void* p2 = allocate(256);
    EXPECT_EQ(p2, p1);
    EXPECT_GT(generation_of(p2), g1);
    deallocate(p2);
}

TEST(Pool, LiveByteAccountingIsExactSingleThread) {
    const pool_stats before = stats();
    std::vector<void*> ptrs;
    std::int64_t expect_bytes = 0;
    for (std::size_t n : {std::size_t{8}, std::size_t{100}, std::size_t{2048},
                          std::size_t{1} << 20}) {
        void* p = allocate(n);
        expect_bytes += static_cast<std::int64_t>(usable_size(p));
        ptrs.push_back(p);
    }
    const pool_stats mid = stats();
    EXPECT_EQ(mid.live_bytes - before.live_bytes, expect_bytes);
    EXPECT_EQ(mid.live_blocks - before.live_blocks, 4);
    for (void* p : ptrs) deallocate(p);
    const pool_stats after = stats();
    EXPECT_EQ(after.live_bytes, before.live_bytes);
    EXPECT_EQ(after.live_blocks, before.live_blocks);
}

TEST(Pool, RefreeingAClassServesFromCachesNotTheOs) {
    // Warm: 100 blocks of one class (768 B -- a class no other test in this
    // binary touches), freed again, park in the magazine and (past the
    // shelf cap) the central depot. Re-allocation must be served from those
    // parked blocks. Carve batches stock the shelf with never-handed-out
    // spares that stay flagged fresh (they count as misses by design), so
    // the bound is one carve batch, not zero.
    constexpr int kBlocks = 100;
    constexpr std::size_t kBytes = 768;
    std::vector<void*> ptrs;
    for (int i = 0; i < kBlocks; ++i) ptrs.push_back(allocate(kBytes));
    for (void* p : ptrs) deallocate(p);
    ptrs.clear();
    const pool_stats warm = stats();
    for (int i = 0; i < kBlocks; ++i) ptrs.push_back(allocate(kBytes));
    const pool_stats after = stats();
    const std::uint64_t fresh = after.fresh_allocs - warm.fresh_allocs;
    const std::uint64_t hits = (after.magazine_hits + after.central_hits) -
                               (warm.magazine_hits + warm.central_hits);
    EXPECT_LE(fresh, 31u) << "at most the final carve batch's spares";
    EXPECT_EQ(hits + fresh, static_cast<std::uint64_t>(kBlocks));
    EXPECT_EQ(after.recycled_bytes - warm.recycled_bytes,
              hits * class_size(size_to_class(kBytes)));
    for (void* p : ptrs) deallocate(p);
}

TEST(Pool, MagazineOverflowUnloadsToTheDepotWithoutLosingBlocks) {
    // 64-byte class caps its shelf at 32 blocks; freeing 100 forces several
    // unload_half trips. Conservation is what matters: nothing leaks, and
    // the resident counter ends where it started once we drain again.
    const pool_stats before = stats();
    std::vector<void*> ptrs;
    for (int i = 0; i < 100; ++i) ptrs.push_back(allocate(64));
    for (void* p : ptrs) deallocate(p);
    EXPECT_EQ(stats().live_blocks, before.live_blocks);
    // Shelf stayed within its cap: the 64 B class never keeps > 32 around.
    ptrs.clear();
    flush_thread_magazines();
    EXPECT_EQ(stats().magazine_blocks, 0);
}

TEST(Pool, LargeBlocksRecycleThroughTheReuseCacheAndTrimEmptiesIt) {
    trim();
    const pool_stats base = stats();
    constexpr std::size_t kBig = std::size_t{8} << 20;
    void* p = allocate(kBig);
    const std::uint64_t g1 = generation_of(p);
    deallocate(p);
    const pool_stats parked = stats();
    EXPECT_GE(parked.reuse_cache_bytes - base.reuse_cache_bytes,
              static_cast<std::int64_t>(kBig));
    void* p2 = allocate(kBig);
    EXPECT_EQ(p2, p) << "back-to-back large request must hit the cache";
    EXPECT_GT(generation_of(p2), g1);
    EXPECT_EQ(stats().reuse_hits, base.reuse_hits + 1);
    deallocate(p2);
    trim();
    EXPECT_LE(stats().reuse_cache_bytes, base.reuse_cache_bytes);
}

TEST(Pool, SystemBackendRoutesFreesByHeader) {
    backend_guard restore;
    set_backend(backend::system);
    void* p = allocate(1000);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(aligned64(p));
    EXPECT_EQ(usable_size(p), 1000u);
    EXPECT_GT(generation_of(p), 0u);
    // Free after switching back: the header, not the mode flag, must route
    // the release to ::operator delete.
    set_backend(backend::pooled);
    const pool_stats before = stats();
    deallocate(p);
    EXPECT_EQ(stats().live_blocks, before.live_blocks - 1);
}

TEST(Pool, ZeroSizeWorksOnTheSystemBackendToo) {
    backend_guard restore;
    set_backend(backend::system);
    void* a = allocate(0);
    void* b = allocate(0);
    ASSERT_NE(a, nullptr);
    EXPECT_NE(a, b);
    deallocate(a);
    deallocate(b);
}

// Cross-thread free hammer: allocations migrate between threads through a
// shared pile, so frees constantly land on a different magazine than the one
// that allocated. Exact conservation must survive. (TSan CI runs this suite;
// the test also guards the lock-free depot push/pop pairing.)
TEST(Pool, ConcurrentHammerConservesEveryByte) {
    const pool_stats before = stats();
    constexpr int kThreads = 4;
    constexpr int kIters = 4000;
    std::mutex mu;
    std::vector<void*> pile;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            std::uint32_t rng = 0x9E3779B9u * static_cast<std::uint32_t>(t + 1);
            const auto next = [&rng] {
                rng ^= rng << 13;
                rng ^= rng >> 17;
                rng ^= rng << 5;
                return rng;
            };
            for (int i = 0; i < kIters; ++i) {
                const std::size_t bytes = next() % (128 * 1024);  // both tiers
                void* p = allocate(bytes);
                std::memset(p, t, bytes < 64 ? bytes : 64);
                void* victim = nullptr;
                {
                    std::lock_guard lock(mu);
                    pile.push_back(p);
                    if (pile.size() > 64 || (next() & 1u) != 0u) {
                        const std::size_t at = next() % pile.size();
                        victim = pile[at];
                        pile[at] = pile.back();
                        pile.pop_back();
                    }
                }
                if (victim != nullptr) deallocate(victim);
            }
            // Worker magazines flush at thread exit via the TLS destructor.
        });
    for (auto& th : threads) th.join();
    for (void* p : pile) deallocate(p);
    const pool_stats after = stats();
    EXPECT_EQ(after.live_bytes, before.live_bytes);
    EXPECT_EQ(after.live_blocks, before.live_blocks);
}

#ifndef NDEBUG
TEST(PoolDeathTest, DoubleFreeAssertsInDebug) {
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    void* p = allocate(128);
    deallocate(p);
    EXPECT_DEATH(deallocate(p), "double free");
    // The block is already parked; do not touch it again.
}

TEST(PoolDeathTest, ForeignPointerAssertsInDebug) {
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    alignas(64) static char fake[256] = {};
    EXPECT_DEATH(deallocate(fake + 64), "never +allocated|magic mismatch");
}
#endif

}  // namespace
}  // namespace altis::mem
