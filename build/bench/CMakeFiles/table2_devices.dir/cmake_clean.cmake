file(REMOVE_RECURSE
  "CMakeFiles/table2_devices.dir/table2_devices.cpp.o"
  "CMakeFiles/table2_devices.dir/table2_devices.cpp.o.d"
  "table2_devices"
  "table2_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
