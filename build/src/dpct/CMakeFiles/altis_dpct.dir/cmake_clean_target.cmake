file(REMOVE_RECURSE
  "libaltis_dpct.a"
)
