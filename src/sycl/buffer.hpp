// Buffers and accessors. Buffers own host-side storage (this reproduction
// executes functionally on the host; device residency is simulated by the
// perf models). Accessors optionally count element accesses so property
// tests can validate the byte counts declared in kernel_stats descriptors
// against the real access stream (DESIGN.md Sec. 4).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <type_traits>

#include "analyze/probe.hpp"
#include "analyze/shadow.hpp"
#include "fault/inject.hpp"
#include "mem/pool.hpp"
#include "mem/transfer.hpp"
#include "metrics/instruments.hpp"

namespace syclite {

enum class access_mode { read, write, read_write, discard_write };

/// Property tag mirroring sycl::no_init: the buffer's storage is left
/// uninitialized because the first kernel touching it writes every element
/// (discard_write). Only meaningful for trivial element types; non-trivial
/// types are always constructed.
struct no_init_t {};
inline constexpr no_init_t no_init{};

namespace detail {

/// Global switch for access counting; off by default (hot-path cost is one
/// predictable branch). Enable via scoped_access_counting in tests.
inline std::atomic<bool> counting_enabled{false};
/// Nesting depth of scoped_access_counting enablers: counting stays on until
/// the outermost scope closes, so nested helpers cannot switch a caller's
/// counting off behind its back.
inline std::atomic<int> counting_depth{0};

struct access_counter {
    std::atomic<std::uint64_t> accesses{0};
};

}  // namespace detail

/// RAII enabler for accessor access-counting. Scopes may nest (and may sit
/// on different threads); counting is on while at least one scope is alive.
class scoped_access_counting {
public:
    scoped_access_counting() {
        if (detail::counting_depth.fetch_add(1) == 0)
            detail::counting_enabled.store(true);
    }
    ~scoped_access_counting() {
        if (detail::counting_depth.fetch_sub(1) == 1)
            detail::counting_enabled.store(false);
    }
    scoped_access_counting(const scoped_access_counting&) = delete;
    scoped_access_counting& operator=(const scoped_access_counting&) = delete;
};

struct use_host_ptr_t {};
inline constexpr use_host_ptr_t use_host_ptr{};

template <typename T>
class buffer;
class handler;

/// Lightweight view into a buffer, handed out by handler::get_access.
/// Copyable into kernels by value, like a SYCL accessor. Under an active
/// sanitize session the handler binds the command group's lifetime token,
/// and every element access probes it (rule ALS-H3: an accessor must not
/// outlive its command group); without a session the token is null and the
/// probe is a single never-taken branch.
template <typename T>
class accessor {
public:
    accessor() = default;

    T& operator[](std::size_t i) const {
        if (detail::counting_enabled.load(std::memory_order_relaxed) &&
            counter_ != nullptr)
            counter_->accesses.fetch_add(1, std::memory_order_relaxed);
        if (token_ != nullptr) {
            // Both probes live behind the token: it is only bound while a
            // sanitize session is active, so the untracked hot path stays
            // one never-taken branch. operator[] cannot see whether the
            // caller loads or stores, so the access-mode decides: any
            // writable mode records a write.
            altis::analyze::probe::accessor_use(token_, ptr_);
            altis::analyze::shadow::on_accessor_access(
                ptr_, i * sizeof(T), sizeof(T),
                mode_ != access_mode::read);
        }
        return ptr_[i];
    }

    [[nodiscard]] T* get_pointer() const { return ptr_; }
    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] access_mode mode() const { return mode_; }

private:
    friend class buffer<T>;
    friend class handler;
    accessor(T* ptr, std::size_t count, access_mode mode,
             detail::access_counter* counter)
        : ptr_(ptr), count_(count), mode_(mode), counter_(counter) {}

    void bind_lifetime(const altis::analyze::probe::cg_token* token) {
        token_ = token;
    }

    T* ptr_ = nullptr;
    std::size_t count_ = 0;
    access_mode mode_ = access_mode::read_write;
    detail::access_counter* counter_ = nullptr;
    const altis::analyze::probe::cg_token* token_ = nullptr;
};

namespace detail {

/// Injection point shared by every buffer constructor: `alloc:buffer@N`
/// fails the Nth buffer allocation with a retryable alloc_fault.
inline std::size_t checked_buffer_count(std::size_t count, std::size_t elem) {
    altis::fault::maybe_inject(altis::fault::op_kind::alloc, "buffer",
                               std::to_string(count * elem) + " bytes");
    return count;
}

/// Whether freshly allocated storage is value-initialized or left raw.
enum class fill { value, none };

}  // namespace detail

/// Buffer storage is an owned 64-byte-aligned span from the altis::mem pool
/// (docs/PERFORMANCE.md "Memory subsystem") rather than a std::vector<T>:
/// sweep re-runs recycle the identical block instead of round-tripping the
/// OS, and discard_write workloads can skip the value-initialization pass a
/// vector would force with the `no_init` tag. The default constructors keep
/// the vector's observable zero/value-init semantics.
template <typename T>
class buffer {
public:
    /// Device-only buffer; elements are value-initialized (all-zero for
    /// trivial T), matching the std::vector storage this replaced.
    explicit buffer(std::size_t count) : buffer(count, detail::fill::value) {}

    /// Device-only buffer with uninitialized storage: the discard_write /
    /// no-init fast path. Trivial element types skip the zero-fill pass
    /// entirely; non-trivial types are default-constructed regardless.
    buffer(std::size_t count, no_init_t) : buffer(count, detail::fill::none) {}

    /// Copy-in from host data; no write-back.
    buffer(const T* src, std::size_t count) : buffer(count, detail::fill::none) {
        copy_in(src);
    }

    /// Copy-in from host data; contents are written back to `src` when the
    /// buffer is destroyed (SYCL host-pointer semantics).
    buffer(T* src, std::size_t count, use_host_ptr_t)
        : buffer(count, detail::fill::none) {
        copy_in(src);
        writeback_ = src;
    }

    ~buffer() {
        if (writeback_ != nullptr && count_ > 0) {
            if constexpr (std::is_trivially_copyable_v<T>)
                altis::mem::copy_bytes(writeback_, data_, count_ * sizeof(T));
            else
                std::copy(data_, data_ + count_, writeback_);
        }
        if constexpr (!std::is_trivially_destructible_v<T>)
            std::destroy(data_, data_ + count_);
        // Reverse the live-bytes charge only against the session that made
        // it: a buffer outliving its session (or straddling two) must not
        // drag the next session's gauge negative.
        if (metered_bytes_ != 0 && altis::metrics::collecting() &&
            altis::metrics::collection_epoch() == metered_epoch_)
            altis::metrics::instruments::buffer_live_bytes().sub(
                static_cast<std::int64_t>(metered_bytes_));
        altis::mem::deallocate(data_);
    }

    buffer(const buffer&) = delete;
    buffer& operator=(const buffer&) = delete;
    buffer(buffer&&) = delete;
    buffer& operator=(buffer&&) = delete;

    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] std::size_t byte_size() const { return count_ * sizeof(T); }

    /// Host-side view (valid because storage is host memory). Non-null even
    /// for zero-size buffers (the pool hands out a unique block).
    [[nodiscard]] T* host_data() { return data_; }
    [[nodiscard]] const T* host_data() const { return data_; }

    [[nodiscard]] accessor<T> access(access_mode mode) {
        return accessor<T>(data_, count_, mode, &counter_);
    }

    [[nodiscard]] std::uint64_t access_count() const {
        return counter_.accesses.load();
    }
    void reset_access_count() { counter_.accesses.store(0); }

private:
    buffer(std::size_t count, detail::fill f)
        : count_(detail::checked_buffer_count(count, sizeof(T))),
          data_(static_cast<T*>(altis::mem::allocate(count_ * sizeof(T)))) {
        if constexpr (std::is_trivially_default_constructible_v<T> &&
                      std::is_trivially_copyable_v<T>) {
            if (f == detail::fill::value && count_ > 0)
                std::memset(static_cast<void*>(data_), 0, count_ * sizeof(T));
        } else {
            // Non-trivial T: uninitialized storage is never handed out.
            std::uninitialized_value_construct(data_, data_ + count_);
        }
        meter_alloc();
    }

    /// Copy-in fast path: trivially copyable elements move as raw bytes
    /// through mem::copy_bytes, which fans large spans out across the
    /// thread pool as chunked parallel memcpy jobs.
    void copy_in(const T* src) {
        if (count_ == 0) return;
        if constexpr (std::is_trivially_copyable_v<T>)
            altis::mem::copy_bytes(data_, src, count_ * sizeof(T));
        else
            std::copy(src, src + count_, data_);
    }

    void meter_alloc() {
        if (!altis::metrics::collecting()) return;
        namespace mi = altis::metrics::instruments;
        metered_bytes_ = byte_size();
        metered_epoch_ = altis::metrics::collection_epoch();
        mi::buffer_allocs().add();
        mi::buffer_live_bytes().add(static_cast<std::int64_t>(metered_bytes_));
        const std::int64_t live = mi::buffer_live_bytes().value();
        if (live > 0)
            mi::buffer_peak_bytes().record(static_cast<std::uint64_t>(live));
    }

    std::size_t count_ = 0;
    T* data_ = nullptr;
    T* writeback_ = nullptr;
    detail::access_counter counter_;
    /// Bytes charged to the live-bytes gauge at construction (0 when metrics
    /// were off), and the session epoch the charge belongs to.
    std::uint64_t metered_bytes_ = 0;
    std::uint64_t metered_epoch_ = 0;
};

}  // namespace syclite
