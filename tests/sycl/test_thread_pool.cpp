#include "sycl/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

namespace syclite {
namespace {

TEST(ThreadPool, CoversAllIndicesExactlyOnce) {
    thread_pool pool(3);
    constexpr std::size_t kN = 100000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
    thread_pool pool(2);
    bool called = false;
    pool.parallel_for(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, WorksWithZeroWorkers) {
    thread_pool pool(0);  // may degenerate to caller-only on 1-core hosts
    std::size_t sum = 0;
    pool.parallel_for(100, [&](std::size_t i) { sum += i; });
    // Caller-only execution is sequential, so plain += is safe there; with
    // workers this test still passes because we only check reachability.
    EXPECT_GT(sum, 0u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
    thread_pool pool(2);
    std::atomic<long> total{0};
    for (int round = 0; round < 50; ++round)
        pool.parallel_for(1000, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 50000);
}

TEST(ThreadPool, GlobalPoolSingleton) {
    EXPECT_EQ(&thread_pool::global(), &thread_pool::global());
}

/// The dataflow shape: several worker threads issue parallel_for jobs to one
/// shared pool *concurrently*. Every job must cover exactly its own index
/// space even while the pool's workers drift between jobs.
TEST(ThreadPool, ConcurrentJobsFromManySubmitters) {
    thread_pool pool(4);
    constexpr int kSubmitters = 6;
    constexpr std::size_t kN = 20000;
    constexpr int kRounds = 10;
    std::vector<std::vector<std::atomic<int>>> hits(kSubmitters);
    for (auto& h : hits) h = std::vector<std::atomic<int>>(kN);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int t = 0; t < kSubmitters; ++t)
        submitters.emplace_back([&pool, &hits, t] {
            for (int round = 0; round < kRounds; ++round)
                pool.parallel_for(kN, [&hits, t](std::size_t i) {
                    hits[static_cast<std::size_t>(t)][i].fetch_add(
                        1, std::memory_order_relaxed);
                });
        });
    for (auto& s : submitters) s.join();
    for (int t = 0; t < kSubmitters; ++t)
        for (std::size_t i = 0; i < kN; ++i)
            ASSERT_EQ(hits[static_cast<std::size_t>(t)][i].load(), kRounds)
                << "submitter " << t << " index " << i;
}

/// Jobs of very different sizes must not starve each other: a long job and
/// many short jobs run together and all complete.
TEST(ThreadPool, MixedSizeConcurrentJobsAllComplete) {
    thread_pool pool(3);
    std::atomic<long> long_sum{0};
    std::atomic<int> short_jobs_done{0};
    std::thread long_submitter([&] {
        pool.parallel_for(1 << 18, [&](std::size_t) {
            long_sum.fetch_add(1, std::memory_order_relaxed);
        });
    });
    std::thread short_submitter([&] {
        for (int j = 0; j < 200; ++j) {
            std::atomic<int> count{0};
            pool.parallel_for(16, [&](std::size_t) {
                count.fetch_add(1, std::memory_order_relaxed);
            });
            ASSERT_EQ(count.load(), 16);
            short_jobs_done.fetch_add(1);
        }
    });
    long_submitter.join();
    short_submitter.join();
    EXPECT_EQ(long_sum.load(), 1 << 18);
    EXPECT_EQ(short_jobs_done.load(), 200);
}

}  // namespace
}  // namespace syclite
