file(REMOVE_RECURSE
  "CMakeFiles/altis_core.dir/option_parser.cpp.o"
  "CMakeFiles/altis_core.dir/option_parser.cpp.o.d"
  "CMakeFiles/altis_core.dir/registry.cpp.o"
  "CMakeFiles/altis_core.dir/registry.cpp.o.d"
  "CMakeFiles/altis_core.dir/report.cpp.o"
  "CMakeFiles/altis_core.dir/report.cpp.o.d"
  "CMakeFiles/altis_core.dir/result_database.cpp.o"
  "CMakeFiles/altis_core.dir/result_database.cpp.o.d"
  "libaltis_core.a"
  "libaltis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
