#include "perf/device.hpp"

#include <gtest/gtest.h>

namespace altis::perf {
namespace {

TEST(DeviceCatalog, ContainsAllSixTable2DevicesPlusHbmProjection) {
    const auto devs = device_catalog();
    ASSERT_EQ(devs.size(), 7u);  // Table 2's six + the Sec. 6 HBM projection
    EXPECT_NO_THROW(device_by_name("xeon_6128"));
    EXPECT_NO_THROW(device_by_name("rtx_2080"));
    EXPECT_NO_THROW(device_by_name("a100"));
    EXPECT_NO_THROW(device_by_name("max_1100"));
    EXPECT_NO_THROW(device_by_name("stratix_10"));
    EXPECT_NO_THROW(device_by_name("agilex"));
    EXPECT_NO_THROW(device_by_name("agilex_hbm"));
}

// Sec. 6 future work: the HBM-enabled Agilex differs from the DE10 board
// only in memory system and fabric size.
TEST(DeviceCatalog, HbmAgilexProjection) {
    const auto& agx = device_by_name("agilex");
    const auto& hbm = device_by_name("agilex_hbm");
    EXPECT_GT(hbm.mem_bw_gbs, agx.mem_bw_gbs * 8.0);
    EXPECT_EQ(hbm.fmax_mhz, agx.fmax_mhz);
    EXPECT_FALSE(hbm.usm_supported);
    EXPECT_TRUE(hbm.is_fpga());
}

TEST(DeviceCatalog, UnknownNameThrows) {
    EXPECT_THROW(device_by_name("voodoo2"), std::out_of_range);
}

TEST(DeviceCatalog, Table2HeadlineNumbers) {
    EXPECT_DOUBLE_EQ(device_by_name("rtx_2080").peak_fp32_tflops, 10.1);
    EXPECT_DOUBLE_EQ(device_by_name("a100").mem_bw_gbs, 1555.0);
    EXPECT_DOUBLE_EQ(device_by_name("max_1100").peak_fp32_tflops, 22.2);
    EXPECT_EQ(device_by_name("xeon_6128").compute_units, 6);
    EXPECT_DOUBLE_EQ(device_by_name("stratix_10").mem_bw_gbs, 76.8);
    EXPECT_DOUBLE_EQ(device_by_name("agilex").mem_bw_gbs, 85.3);
}

// Sec. 3.1: Peak FP32 = N_dsp x 2 x F. Table 2 quotes 2.4-4.2 TFLOP/s for
// Stratix 10 (250-450 MHz) and 2.3-5.0 for Agilex (250-550 MHz).
TEST(DeviceCatalog, FpgaPeakAttainableFormula) {
    const auto& s10 = device_by_name("stratix_10");
    EXPECT_NEAR(s10.fpga_peak_fp32_tflops(250.0), 2.4, 0.05);
    EXPECT_NEAR(s10.fpga_peak_fp32_tflops(450.0), 4.2, 0.05);
    const auto& agx = device_by_name("agilex");
    EXPECT_NEAR(agx.fpga_peak_fp32_tflops(250.0), 2.3, 0.05);
    EXPECT_NEAR(agx.fpga_peak_fp32_tflops(550.0), 5.0, 0.05);
}

// Sec. 5.5: the Stratix 10 GX 2800 has +47.7% ALMs, +39.3% BRAMs and +21.7%
// DSPs relative to the Agilex AGF 014.
TEST(DeviceCatalog, StratixVsAgilexResourceRatios) {
    const auto& s10 = device_by_name("stratix_10");
    const auto& agx = device_by_name("agilex");
    EXPECT_GT(static_cast<double>(s10.total_alms) / agx.total_alms, 1.4);
    EXPECT_NEAR(static_cast<double>(s10.total_brams) / agx.total_brams, 1.65, 0.1);
    EXPECT_NEAR(static_cast<double>(s10.total_dsps) / agx.total_dsps, 1.28, 0.1);
}

TEST(DeviceCatalog, FpgaBoardsLackUsm) {
    EXPECT_FALSE(device_by_name("stratix_10").usm_supported);
    EXPECT_FALSE(device_by_name("agilex").usm_supported);
    EXPECT_TRUE(device_by_name("a100").usm_supported);
}

TEST(DeviceCatalog, Fp64Ratios) {
    // Turing's 1:32 FP64, A100's 1:2, PVC's 1:1 -- the Fig. 5 CFD FP64 story.
    const auto& rtx = device_by_name("rtx_2080");
    EXPECT_NEAR(rtx.peak_fp32_tflops / rtx.peak_fp64_tflops, 32.0, 0.5);
    const auto& a100 = device_by_name("a100");
    EXPECT_NEAR(a100.peak_fp32_tflops / a100.peak_fp64_tflops, 2.0, 0.1);
    const auto& pvc = device_by_name("max_1100");
    EXPECT_NEAR(pvc.peak_fp32_tflops / pvc.peak_fp64_tflops, 1.0, 0.01);
}

TEST(DeviceCatalog, KindStrings) {
    EXPECT_STREQ(to_string(device_kind::cpu), "cpu");
    EXPECT_STREQ(to_string(device_kind::gpu), "gpu");
    EXPECT_STREQ(to_string(device_kind::fpga), "fpga");
}

}  // namespace
}  // namespace altis::perf
