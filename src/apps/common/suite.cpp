#include "apps/common/suite.hpp"

#include "apps/cfd/cfd.hpp"
#include "apps/common/app.hpp"
#include "apps/dwt2d/dwt2d.hpp"
#include "apps/fdtd2d/fdtd2d.hpp"
#include "apps/kmeans/kmeans.hpp"
#include "apps/lavamd/lavamd.hpp"
#include "apps/mandelbrot/mandelbrot.hpp"
#include "apps/nw/nw.hpp"
#include "apps/particlefilter/particlefilter.hpp"
#include "apps/raytracing/raytracing.hpp"
#include "apps/srad/srad.hpp"
#include "apps/where/where.hpp"

namespace altis::bench {

namespace {

namespace apps = altis::apps;

std::vector<SuiteEntry> make_suite() {
    std::vector<SuiteEntry> s;

    {  // CFD FP32
        SuiteEntry e;
        e.label = "CFD FP32";
        e.fpga_impl = apps::cfd::kFpgaImplLabelFp32;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::cfd::region(false, v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::cfd::fpga_design(false, d, size);
        };
        e.paper_fig2_baseline = {0.30, 0.31, 0.26};
        e.paper_fig2_optimized = {1.00, 0.90, 0.90};
        e.paper_fig4 = {4.1, 4.2, 4.7};
        e.paper_fig5 = {{{11.24, 10.20, 16.51},
                         {16.40, 20.47, 48.26},
                         {35.75, 45.97, 34.11},
                         {0.63, 0.55, 0.81},
                         {1.09, 1.00, 1.59}}};
        s.push_back(std::move(e));
    }
    {  // CFD FP64
        SuiteEntry e;
        e.label = "CFD FP64";
        e.fpga_impl = apps::cfd::kFpgaImplLabelFp64;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::cfd::region(true, v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::cfd::fpga_design(true, d, size);
        };
        e.paper_fig2_baseline = {1.50, 1.50, 1.49};
        e.paper_fig2_optimized = {1.50, 1.50, 1.50};
        e.paper_fig4 = {2.1, 2.2, 2.2};
        e.paper_fig5 = {{{1.64, 2.33, 3.02},
                         {18.11, 24.71, 34.51},
                         {9.67, 15.96, 17.72},
                         {0.34, 0.47, 0.62},
                         {0.37, 0.53, 0.68}}};
        s.push_back(std::move(e));
    }
    {  // DWT2D (Fig. 2 only)
        SuiteEntry e;
        e.label = "DWT2D";
        e.in_fig45 = false;
        e.fpga_impl = apps::dwt2d::kFpgaImplLabel;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::dwt2d::region(v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::dwt2d::fpga_design(d, size);
        };
        e.paper_fig2_baseline = {0.70, 0.59, 0.89};
        e.paper_fig2_optimized = {0.90, 1.00, 1.10};
        s.push_back(std::move(e));
    }
    {  // FDTD2D
        SuiteEntry e;
        e.label = "FDTD2D";
        e.fpga_impl = apps::fdtd2d::kFpgaImplLabel;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::fdtd2d::region(v, d, size);
        };
        e.cuda_mistimed = [](const perf::device_spec& d, int size) {
            return apps::fdtd2d::region_cuda_mistimed(d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::fdtd2d::fpga_design(d, size);
        };
        e.paper_fig2_baseline = {0.10, 0.03, 0.01};
        e.paper_fig2_optimized = {0.30, 0.90, 1.00};
        e.paper_fig4 = {5.9, 5.5, 5.4};
        e.paper_fig5 = {{{26.84, 11.26, 14.31},
                         {14.58, 26.92, 40.61},
                         {16.29, 23.35, 42.92},
                         {6.69, 1.31, 1.61},
                         {9.32, 1.42, 1.55}}};
        s.push_back(std::move(e));
    }
    {  // KMeans
        SuiteEntry e;
        e.label = "KMeans";
        e.fpga_impl = apps::kmeans::kFpgaImplLabel;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::kmeans::region(v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::kmeans::fpga_design(d, size);
        };
        e.paper_fig2_baseline = {0.30, 0.38, 0.69};
        e.paper_fig2_optimized = {0.40, 0.70, 1.00};
        e.paper_fig4 = {489.4, 500.5, 510.3};
        e.paper_fig5 = {{{11.22, 45.14, 99.71},
                         {7.21, 23.66, 69.81},
                         {10.64, 21.77, 29.89},
                         {28.34, 26.04, 25.63},
                         {28.71, 26.49, 26.16}}};
        s.push_back(std::move(e));
    }
    {  // LavaMD
        SuiteEntry e;
        e.label = "LavaMD";
        e.fpga_impl = apps::lavamd::kFpgaImplLabel;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::lavamd::region(v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::lavamd::fpga_design(d, size);
        };
        e.paper_fig2_baseline = {0.80, 1.03, 1.05};
        e.paper_fig2_optimized = {0.80, 1.00, 1.10};
        e.paper_fig4 = {3.6, 23.1, 25.2};
        e.paper_fig5 = {{{0.55, 1.28, 1.23},
                         {1.70, 3.13, 5.66},
                         {3.23, 23.99, 41.72},
                         {3.82, 2.72, 2.25},
                         {5.33, 2.89, 2.34}}};
        s.push_back(std::move(e));
    }
    {  // Mandelbrot
        SuiteEntry e;
        e.label = "Mandelbrot";
        e.fpga_impl = apps::mandelbrot::kFpgaImplLabel;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::mandelbrot::region(v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::mandelbrot::fpga_design(d, size);
        };
        e.paper_fig2_baseline = {1.10, 0.99, 1.10};
        e.paper_fig2_optimized = {1.20, 1.10, 1.00};
        e.paper_fig4 = {240.0, 469.9, 476.2};
        e.paper_fig5 = {{{17.78, 11.96, 11.30},
                         {21.46, 14.54, 24.56},
                         {24.18, 19.92, 18.78},
                         {2.97, 3.25, 2.72},
                         {3.57, 2.87, 1.97}}};
        s.push_back(std::move(e));
    }
    {  // NW
        SuiteEntry e;
        e.label = "NW";
        e.fpga_impl = apps::nw::kFpgaImplLabel;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::nw::region(v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::nw::fpga_design(d, size);
        };
        e.paper_fig2_baseline = {0.70, 0.57, 0.57};
        e.paper_fig2_optimized = {1.00, 1.00, 1.20};
        e.paper_fig4 = {5.6, 18.1, 17.6};
        e.paper_fig5 = {{{3.80, 4.37, 5.26},
                         {1.66, 1.99, 2.89},
                         {2.77, 3.71, 5.41},
                         {1.37, 0.70, 0.50},
                         {2.79, 1.16, 0.78}}};
        s.push_back(std::move(e));
    }
    {  // PF Naive
        SuiteEntry e;
        e.label = "PF Naive";
        e.fpga_impl = apps::particlefilter::kFpgaImplLabel;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::particlefilter::region(apps::particlefilter::flavor::naive,
                                                v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::particlefilter::fpga_design(
                apps::particlefilter::flavor::naive, d, size);
        };
        e.paper_fig2_baseline = {1.10, 0.91, 1.05};
        e.paper_fig2_optimized = {1.10, 0.90, 1.00};
        e.paper_fig4 = {0.9, 14.6, 272.6};
        e.paper_fig5 = {{{0.47, 2.57, 2.37},
                         {0.18, 1.56, 13.90},
                         {0.42, 2.16, 5.70},
                         {0.15, 3.23, 0.69},
                         {0.08, 1.54, 0.41}}};
        s.push_back(std::move(e));
    }
    {  // PF Float
        SuiteEntry e;
        e.label = "PF Float";
        e.fpga_impl = apps::particlefilter::kFpgaImplLabel;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::particlefilter::region(
                apps::particlefilter::flavor::floatopt, v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::particlefilter::fpga_design(
                apps::particlefilter::flavor::floatopt, d, size);
        };
        e.cuda_fixed = [](const perf::device_spec& d, int size) {
            return apps::particlefilter::region_cuda_pow_fixed(
                apps::particlefilter::flavor::floatopt, d, size);
        };
        e.paper_fig2_baseline = {4.70, 6.81, 1.00};
        e.paper_fig2_optimized = {0.90, 1.10, 1.00};
        e.paper_fig4 = {4.1, 11.5, 368.0};
        e.paper_fig5 = {{{3.60, 1.72, 4.64},
                         {2.17, 1.86, 32.30},
                         {1.27, 2.08, 18.00},
                         {3.39, 3.14, 1.48},
                         {1.89, 1.39, 0.80}}};
        s.push_back(std::move(e));
    }
    {  // Raytracing
        SuiteEntry e;
        e.label = "Raytracing";
        e.fpga_impl = apps::raytracing::kFpgaImplLabel;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::raytracing::region(v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::raytracing::fpga_design(d, size);
        };
        e.paper_fig2_baseline = {11.60, 18.59, 21.71};
        e.paper_fig2_optimized = {11.60, 18.60, 21.70};
        e.paper_fig4 = {27.1, 34.7, 39.5};
        e.paper_fig5 = {{{8.30, 16.24, 18.18},
                         {7.29, 21.81, 30.25},
                         {5.12, 21.11, 32.56},
                         {1.57, 2.02, 2.27},
                         {1.77, 2.15, 2.34}}};
        s.push_back(std::move(e));
    }
    {  // SRAD
        SuiteEntry e;
        e.label = "SRAD";
        e.fpga_impl = apps::srad::kFpgaImplLabel;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::srad::region(v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::srad::fpga_design(d, size);
        };
        e.paper_fig2_baseline = {1.10, 1.04, 1.01};
        e.paper_fig2_optimized = {1.10, 1.00, 1.00};
        e.paper_fig4 = {2.1, 2.6, 5.4};
        e.paper_fig5 = {{{18.65, 42.76, 17.26},
                         {9.48, 66.27, 36.84},
                         {24.95, 94.25, 34.61},
                         {2.37, 2.69, 0.76},
                         {3.64, 2.10, 0.62}}};
        s.push_back(std::move(e));
    }
    {  // Where
        SuiteEntry e;
        e.label = "Where";
        e.fpga_impl = apps::where::kFpgaImplLabel;
        e.region = [](Variant v, const perf::device_spec& d, int size) {
            return apps::where::region(v, d, size);
        };
        e.fpga_design = [](const perf::device_spec& d, int size) {
            return apps::where::fpga_design(d, size);
        };
        e.crashes = [](const perf::device_spec& d, Variant v, int size) {
            return apps::where::crashes_on(d, v, size);
        };
        e.paper_fig2_baseline = {0.20, 0.25, 0.46};
        e.paper_fig2_optimized = {0.30, 0.30, 0.50};
        e.paper_fig4 = {90.8, 84.3, 33.5};
        e.paper_fig5 = {{{5.27, 5.51, 9.24},
                         {3.76, 3.91, 24.82},
                         {2.22, 2.32, 20.55},
                         {8.67, 7.00, 0.73},
                         {13.12, 9.38, 0.0}}};  // Agilex size-3 crash
        s.push_back(std::move(e));
    }
    return s;
}

const std::vector<std::string> kFig5Devices{"rtx_2080", "a100", "max_1100",
                                            "stratix_10", "agilex"};

}  // namespace

const std::vector<SuiteEntry>& suite() {
    static const std::vector<SuiteEntry> s = make_suite();
    return s;
}

std::span<const std::string> fig5_devices() { return kFig5Devices; }

std::optional<double> total_ms(const SuiteEntry& e, Variant v,
                               const std::string& device, int size) {
    const perf::device_spec& dev = perf::device_by_name(device);
    if (!apps::variant_allowed(v, dev)) return std::nullopt;
    if (e.crashes && e.crashes(dev, v, size)) return std::nullopt;
    apps::timed_region region;
    try {
        region = e.region(v, dev, size);
    } catch (const std::invalid_argument&) {
        return std::nullopt;  // e.g. DWT2D fpga_opt
    }
    const auto t = apps::simulate_region(region, dev, apps::runtime_for(v));
    return t.total_ms();
}

std::string config_label(const SuiteEntry& e, Variant v,
                         const std::string& device, int size) {
    return e.label + "/" + to_string(v) + "/" + device + "/size" +
           std::to_string(size);
}

ConfigOutcome run_config(const SuiteEntry& e, Variant v,
                         const std::string& device, int size,
                         const fault::retry_policy& policy, bool fail_fast) {
    ConfigOutcome co;
    auto skip = [&co](std::string reason) {
        co.skipped = true;
        co.skip_reason = reason;
        co.oc.st = fault::outcome::status::skipped;
        co.oc.error = std::move(reason);
        return co;
    };

    const perf::device_spec& dev = perf::device_by_name(device);
    if (!apps::variant_allowed(v, dev))
        return skip(std::string(to_string(v)) + " cannot target " + device);
    if (e.crashes && e.crashes(dev, v, size))
        return skip("known crash on this configuration (paper Sec. 5.4)");
    // Build the region outside the guard: an invalid_argument here means the
    // configuration does not exist (DWT2D fpga_opt), not that it failed.
    apps::timed_region region;
    try {
        region = e.region(v, dev, size);
    } catch (const std::invalid_argument& ex) {
        return skip(ex.what());
    }

    const std::string label = config_label(e, v, device, size);
    auto on_retry = [&label](int attempt, const std::string& error,
                             double backoff_ms) {
        trace::session* s = trace::session::current();
        if (s == nullptr) return;
        const double cursor = s->last_end_ns();
        trace::span sp{trace::span_kind::overhead,
                       "retry " + std::to_string(attempt) + ": " + label +
                           " (backoff " + std::to_string(backoff_ms) +
                           " ms): " + error,
                       cursor, cursor};
        sp.status = trace::span_status::retried;
        s->record(std::move(sp));
    };

    co.oc = fault::run_guarded(
        [&] {
            const auto t =
                apps::simulate_region(region, dev, apps::runtime_for(v));
            co.ms = t.total_ms();
        },
        policy, fail_fast, on_retry);
    if (!co.oc.succeeded()) co.ms.reset();
    return co;
}

std::string breaker_key(const SuiteEntry& e, Variant v,
                        const std::string& device) {
    return e.label + "/" + to_string(v) + "/" + device;
}

resilience::journal_entry outcome_to_entry(const std::string& label,
                                           const ConfigOutcome& co) {
    resilience::journal_entry entry;
    entry.config = label;
    entry.status = co.oc.label();
    entry.attempts = co.oc.attempts;
    entry.backoff_ms = co.oc.backoff_ms;
    entry.error = co.oc.error;
    entry.value = co.ms;
    return entry;
}

ConfigOutcome entry_to_outcome(const resilience::journal_entry& entry) {
    ConfigOutcome co;
    co.ms = entry.value;
    co.oc.st = fault::status_from_label(entry.status);
    co.oc.attempts = entry.attempts;
    co.oc.backoff_ms = entry.backoff_ms;
    co.oc.error = entry.error;
    if (entry.status == "skipped") {
        co.skipped = true;
        co.skip_reason = entry.error;
    }
    return co;
}

void emit_degraded_span(const std::string& label, const fault::outcome& oc) {
    trace::session* s = trace::session::current();
    if (s == nullptr) return;
    trace::span_status st;
    switch (oc.st) {
        case fault::outcome::status::deadline:
        case fault::outcome::status::cancelled:
            st = trace::span_status::cancelled;
            break;
        case fault::outcome::status::quarantined:
            st = trace::span_status::quarantined;
            break;
        default:
            return;
    }
    const double cursor = s->last_end_ns();
    trace::span sp{trace::span_kind::overhead,
                   std::string(oc.label()) + ": " + label +
                       (oc.error.empty() ? "" : ": " + oc.error),
                   cursor, cursor};
    sp.status = st;
    s->record(std::move(sp));
}

ConfigOutcome run_config(const SuiteEntry& e, Variant v,
                         const std::string& device, int size,
                         const fault::retry_policy& policy, bool fail_fast,
                         resilience::supervisor* sup) {
    if (sup == nullptr) return run_config(e, v, device, size, policy, fail_fast);
    const std::string label = config_label(e, v, device, size);
    // Probe the deterministic skip checks first (cheap: region construction
    // only happens in the plain overload's body below); a nonexistent
    // configuration must not consume breaker or journal state.
    {
        const perf::device_spec& dev = perf::device_by_name(device);
        const bool exists = apps::variant_allowed(v, dev) &&
                            !(e.crashes && e.crashes(dev, v, size)) && [&] {
                                try {
                                    (void)e.region(v, dev, size);
                                    return true;
                                } catch (const std::invalid_argument&) {
                                    return false;
                                }
                            }();
        if (!exists) return run_config(e, v, device, size, policy, fail_fast);
    }
    ConfigOutcome co;
    const auto res = sup->run(label, breaker_key(e, v, device), [&] {
        co = run_config(e, v, device, size, policy, fail_fast);
        return outcome_to_entry(label, co);
    });
    if (res.replayed || res.entry.status == "quarantined")
        co = entry_to_outcome(res.entry);
    if (!res.replayed) emit_degraded_span(label, co.oc);
    return co;
}

void record_config_outcome(ResultDatabase& db, const std::string& label,
                           const ConfigOutcome& co, bool injection_enabled) {
    if (!injection_enabled && (co.oc.succeeded() || co.skipped) &&
        !co.oc.retried())
        return;
    fault::record_outcome(db, label, co.oc);
}

}  // namespace altis::bench
