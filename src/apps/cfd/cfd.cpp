#include "apps/cfd/cfd.hpp"

#include <cmath>

#include "apps/common/verify.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps::cfd {

params params::preset(int size) {
    switch (size) {
        case 1: return {192, 192, 60};
        case 2: return {384, 384, 300};
        case 3: return {512, 512, 1500};
        default: throw std::invalid_argument("cfd: size must be 1..3");
    }
}

mesh make_mesh(const params& p) {
    mesh m;
    const std::size_t nel = p.nel();
    m.neighbors.resize(nel * kNeighbors);
    m.normals_x.resize(nel * kNeighbors);
    m.normals_y.resize(nel * kNeighbors);
    for (std::size_t i = 0; i < p.ny; ++i)
        for (std::size_t j = 0; j < p.nx; ++j) {
            const std::size_t e = i * p.nx + j;
            const long west = j == 0 ? -1 : static_cast<long>(e - 1);
            const long east = j == p.nx - 1 ? -1 : static_cast<long>(e + 1);
            const long north = i == 0 ? -1 : static_cast<long>(e - p.nx);
            const long south =
                i == p.ny - 1 ? -1 : static_cast<long>(e + p.nx);
            const long nbs[kNeighbors] = {west, east, north, south};
            const float nxs[kNeighbors] = {-1.0f, 1.0f, 0.0f, 0.0f};
            const float nys[kNeighbors] = {0.0f, 0.0f, -1.0f, 1.0f};
            for (int f = 0; f < kNeighbors; ++f) {
                m.neighbors[e * kNeighbors + static_cast<std::size_t>(f)] =
                    static_cast<int>(nbs[f]);
                m.normals_x[e * kNeighbors + static_cast<std::size_t>(f)] = nxs[f];
                m.normals_y[e * kNeighbors + static_cast<std::size_t>(f)] = nys[f];
            }
        }
    return m;
}

namespace {

constexpr double kGamma = 1.4;
constexpr double kCfl = 0.4;

template <typename Real>
struct state {
    Real rho, mx, my, mz, e;
};

template <typename Real>
state<Real> load(const std::vector<Real>& v, std::size_t nel, std::size_t e) {
    return {v[e], v[nel + e], v[2 * nel + e], v[3 * nel + e], v[4 * nel + e]};
}

template <typename Real>
state<Real> load(const Real* v, std::size_t nel, std::size_t e) {
    return {v[e], v[nel + e], v[2 * nel + e], v[3 * nel + e], v[4 * nel + e]};
}

template <typename Real>
Real pressure(const state<Real>& s) {
    const Real ke = (s.mx * s.mx + s.my * s.my + s.mz * s.mz) /
                    (Real(2) * s.rho);
    return (Real(kGamma) - Real(1)) * (s.e - ke);
}

template <typename Real>
Real sound_speed(const state<Real>& s) {
    using std::sqrt;
    return sqrt(Real(kGamma) * pressure(s) / s.rho);
}

/// Free-stream state used for initialization and far-field boundaries.
template <typename Real>
state<Real> free_stream() {
    state<Real> s;
    s.rho = Real(1.4);
    s.mx = Real(1.4) * Real(0.8);  // Mach-0.8 flow in +x
    s.my = Real(0);
    s.mz = Real(0);
    s.e = Real(1.0) / (Real(kGamma) - Real(1)) +
          Real(0.5) * s.mx * s.mx / s.rho;
    return s;
}

/// Rusanov flux through one face; ~60 FP ops including two sqrt.
template <typename Real>
void face_flux(const state<Real>& a, const state<Real>& b, Real nx, Real ny,
               Real flux[kVars]) {
    using std::abs;
    using std::max;
    const Real pa = pressure(a), pb = pressure(b);
    const Real vna = (a.mx * nx + a.my * ny) / a.rho;
    const Real vnb = (b.mx * nx + b.my * ny) / b.rho;
    const Real smax =
        max(abs(vna) + sound_speed(a), abs(vnb) + sound_speed(b));
    const Real fa[kVars] = {a.rho * vna, a.mx * vna + pa * nx,
                            a.my * vna + pa * ny, a.mz * vna,
                            (a.e + pa) * vna};
    const Real fb[kVars] = {b.rho * vnb, b.mx * vnb + pb * nx,
                            b.my * vnb + pb * ny, b.mz * vnb,
                            (b.e + pb) * vnb};
    const Real ua[kVars] = {a.rho, a.mx, a.my, a.mz, a.e};
    const Real ub[kVars] = {b.rho, b.mx, b.my, b.mz, b.e};
    for (int k = 0; k < kVars; ++k)
        flux[k] = Real(0.5) * (fa[k] + fb[k]) - Real(0.5) * smax * (ub[k] - ua[k]);
}

/// Per-element step factor (CFL / spectral radius).
template <typename Real>
Real step_factor(const state<Real>& s) {
    using std::abs;
    const Real vmag = abs(s.mx / s.rho) + abs(s.my / s.rho);
    return Real(kCfl) / (vmag + sound_speed(s));
}

/// Accumulated flux divergence for one element.
template <typename Real>
void element_flux(const mesh& m, const Real* vars, std::size_t nel,
                  std::size_t e, Real out[kVars]) {
    const state<Real> se = load(vars, nel, e);
    for (int k = 0; k < kVars; ++k) out[k] = Real(0);
    for (int f = 0; f < kNeighbors; ++f) {
        const int nb = m.neighbors[e * kNeighbors + static_cast<std::size_t>(f)];
        const Real nx =
            Real(m.normals_x[e * kNeighbors + static_cast<std::size_t>(f)]);
        const Real ny =
            Real(m.normals_y[e * kNeighbors + static_cast<std::size_t>(f)]);
        const state<Real> sn =
            nb >= 0 ? load(vars, nel, static_cast<std::size_t>(nb))
                    : free_stream<Real>();
        Real flux[kVars];
        face_flux(se, sn, nx, ny, flux);
        for (int k = 0; k < kVars; ++k) out[k] -= flux[k];
    }
}

}  // namespace

template <typename Real>
std::vector<Real> initial_variables(const params& p) {
    const std::size_t nel = p.nel();
    std::vector<Real> v(nel * kVars);
    const state<Real> fs = free_stream<Real>();
    for (std::size_t e = 0; e < nel; ++e) {
        // Small deterministic perturbation so the flow actually evolves.
        const Real bump = Real(1) + Real(0.01) * Real((e * 2654435761u % 97)) /
                                        Real(97);
        v[e] = fs.rho * bump;
        v[nel + e] = fs.mx;
        v[2 * nel + e] = fs.my;
        v[3 * nel + e] = fs.mz;
        v[4 * nel + e] = fs.e * bump;
    }
    return v;
}

template <typename Real>
void golden(const params& p, const mesh& m, std::vector<Real>& variables) {
    const std::size_t nel = p.nel();
    std::vector<Real> old_vars(nel * kVars), fluxes(nel * kVars),
        sf(nel);
    for (int iter = 0; iter < p.iterations; ++iter) {
        old_vars = variables;
        for (std::size_t e = 0; e < nel; ++e)
            sf[e] = step_factor(load(variables, nel, e));
        for (int rk = 0; rk < kRkSteps; ++rk) {
            for (std::size_t e = 0; e < nel; ++e)
                element_flux(m, variables.data(), nel, e,
                             &fluxes[0] + e * kVars);
            const Real factor = Real(1) / Real(kRkSteps - rk);
            for (std::size_t e = 0; e < nel; ++e)
                for (int k = 0; k < kVars; ++k)
                    variables[static_cast<std::size_t>(k) * nel + e] =
                        old_vars[static_cast<std::size_t>(k) * nel + e] +
                        factor * sf[e] * fluxes[e * kVars + static_cast<std::size_t>(k)];
        }
    }
}

template std::vector<float> initial_variables<float>(const params&);
template std::vector<double> initial_variables<double>(const params&);
template void golden<float>(const params&, const mesh&, std::vector<float>&);
template void golden<double>(const params&, const mesh&, std::vector<double>&);

namespace detail {

perf::kernel_stats stats_step_factor(const params& p, bool fp64, Variant v,
                                     const perf::device_spec& dev);
perf::kernel_stats stats_flux(const params& p, bool fp64, Variant v,
                              const perf::device_spec& dev);
perf::kernel_stats stats_time_step(const params& p, bool fp64, Variant v,
                                   const perf::device_spec& dev);
perf::kernel_stats stats_copy(const params& p, bool fp64);

}  // namespace detail

namespace {

template <typename Real>
AppResult run_impl(const RunConfig& cfg) {
    constexpr bool kFp64 = std::is_same_v<Real, double>;
    const perf::device_spec& dev = apps::resolve_device(cfg);
    const params p = params::preset(cfg.size);
    const mesh m = make_mesh(p);

    std::vector<Real> expected = initial_variables<Real>(p);
    golden(p, m, expected);

    // ALTIS_OOO=1 opts into the out-of-order graph scheduler: the copy-old,
    // step-factor and (first) flux kernels of an iteration are mutually
    // independent and overlap; explicit depends_on edges carry the real
    // ordering. Default in-order execution is unchanged.
    sl::queue q(dev, runtime_for(cfg.variant), {},
                ooo_enabled() ? sl::queue_property::out_of_order
                              : sl::queue_property::in_order);
    if (dev.is_fpga())
        q.set_design(region(kFp64, cfg.variant, dev, cfg.size).all_kernels());
    // One-time context/JIT setup is excluded from the timed region (warmed up).

    const std::size_t nel = p.nel();
    const std::vector<Real> init = initial_variables<Real>(p);
    sl::buffer<Real> vars(nel * kVars), old_vars(nel * kVars),
        fluxes(nel * kVars), sf(nel);
    q.copy_to_device(vars, init.data());
    const std::size_t wg = dev.is_fpga() ? 128 : 192;
    // Pad to a work-group multiple; tail items are masked in the kernels.
    const std::size_t padded = (nel + wg - 1) / wg * wg;

    sl::event e_ts;  // last time-step (the writer of vars)
    for (int iter = 0; iter < p.iterations; ++iter) {
        sl::event e_copy = q.submit([&](sl::handler& h) {  // copy old variables
            h.depends_on(e_ts);
            auto src = h.get_access(vars, sl::access_mode::read);
            auto dst = h.get_access(old_vars, sl::access_mode::discard_write);
            h.parallel_for(
                sl::nd_range<1>(sl::range<1>(padded * kVars), sl::range<1>(wg)),
                detail::stats_copy(p, kFp64), [=](sl::nd_item<1> it) {
                    const std::size_t i = it.get_global_id(0);
                    if (i < nel * kVars) dst[i] = src[i];
                });
        });
        sl::event e_sf = q.submit([&](sl::handler& h) {  // step factor
            h.depends_on(e_ts);
            auto v = h.get_access(vars, sl::access_mode::read);
            auto s = h.get_access(sf, sl::access_mode::discard_write);
            h.parallel_for(
                sl::nd_range<1>(sl::range<1>(padded), sl::range<1>(wg)),
                detail::stats_step_factor(p, kFp64, cfg.variant, dev),
                [=](sl::nd_item<1> it) {
                    const std::size_t e = it.get_global_id(0);
                    if (e < nel) s[e] = step_factor(load(&v[0], nel, e));
                });
        });
        for (int rk = 0; rk < kRkSteps; ++rk) {
            sl::event e_flux = q.submit([&](sl::handler& h) {  // compute flux
                h.depends_on(e_ts);
                auto v = h.get_access(vars, sl::access_mode::read);
                auto fl = h.get_access(fluxes, sl::access_mode::discard_write);
                const mesh* mp = &m;
                h.parallel_for(
                    sl::nd_range<1>(sl::range<1>(padded), sl::range<1>(wg)),
                    detail::stats_flux(p, kFp64, cfg.variant, dev),
                    [=](sl::nd_item<1> it) {
                        const std::size_t e = it.get_global_id(0);
                        if (e < nel)
                            element_flux(*mp, &v[0], nel, e, &fl[e * kVars]);
                    });
            });
            e_ts = q.submit([&](sl::handler& h) {  // time step
                h.depends_on(e_copy);
                h.depends_on(e_sf);
                h.depends_on(e_flux);
                auto v = h.get_access(vars, sl::access_mode::read_write);
                auto ov = h.get_access(old_vars, sl::access_mode::read);
                auto fl = h.get_access(fluxes, sl::access_mode::read);
                auto s = h.get_access(sf, sl::access_mode::read);
                const Real factor = Real(1) / Real(kRkSteps - rk);
                h.parallel_for(
                    sl::nd_range<1>(sl::range<1>(padded), sl::range<1>(wg)),
                    detail::stats_time_step(p, kFp64, cfg.variant, dev),
                    [=](sl::nd_item<1> it) {
                        const std::size_t e = it.get_global_id(0);
                        if (e >= nel) return;
                        for (int k = 0; k < kVars; ++k)
                            v[static_cast<std::size_t>(k) * nel + e] =
                                ov[static_cast<std::size_t>(k) * nel + e] +
                                factor * s[e] *
                                    fl[e * kVars + static_cast<std::size_t>(k)];
                    });
            });
        }
    }
    q.wait();

    std::vector<Real> got(nel * kVars);
    q.copy_from_device(vars, got.data());
    const double err = max_rel_error<Real>(expected, got);
    require_close(err, kFp64 ? 1e-12 : 1e-4, "cfd variables");

    AppResult r;
    r.kernel_ms = q.kernel_ns() / 1e6;
    r.non_kernel_ms = q.non_kernel_ns() / 1e6;
    r.total_ms = q.sim_now_ns() / 1e6;
    r.error = err;
    return r;
}

}  // namespace

AppResult run_fp32(const RunConfig& cfg) { return run_impl<float>(cfg); }
AppResult run_fp64(const RunConfig& cfg) { return run_impl<double>(cfg); }

void register_apps() {
    register_standard_app(
        "cfd", "3D Euler solver for compressible flow, FP32",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run_fp32);
    register_standard_app(
        "cfd_fp64", "3D Euler solver for compressible flow, FP64",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run_fp64);
}

}  // namespace altis::apps::cfd
