#include "apps/common/region.hpp"

#include <algorithm>

#include "perf/model.hpp"
#include "perf/resource_model.hpp"

namespace altis::apps {

double timed_region::total_launches() const {
    double n = 0.0;
    for (const auto& k : kernels) n += k.count;
    for (const auto& g : dataflow)
        n += g.count * static_cast<double>(g.kernels.size());
    return n;
}

std::vector<perf::kernel_stats> timed_region::all_kernels() const {
    std::vector<perf::kernel_stats> all;
    for (const auto& k : kernels) all.push_back(k.stats);
    for (const auto& g : dataflow)
        all.insert(all.end(), g.kernels.begin(), g.kernels.end());
    return all;
}

timing_estimate simulate_region(const timed_region& region,
                                const perf::device_spec& dev,
                                perf::runtime_kind rt) {
    timing_estimate t;

    double design_fmax = 0.0;
    if (dev.is_fpga()) {
        const auto design =
            perf::estimate_design_resources(region.all_kernels(), dev);
        design_fmax = design.fmax_mhz;
    }
    auto one_kernel_ns = [&](const perf::kernel_stats& k) {
        return dev.is_fpga() ? perf::fpga_kernel_time_ns(k, dev, design_fmax)
                             : perf::kernel_time_ns(k, dev);
    };

    const double launch = perf::launch_overhead_ns(rt, dev);

    for (const auto& slot : region.kernels) {
        t.kernel_ns += one_kernel_ns(slot.stats) * slot.count;
        t.non_kernel_ns += launch * slot.count;
    }
    for (const auto& group : region.dataflow) {
        double worst = 0.0;
        for (const auto& k : group.kernels)
            worst = std::max(worst, one_kernel_ns(k));
        t.kernel_ns += worst * group.count;
        t.non_kernel_ns +=
            launch * group.count * static_cast<double>(group.kernels.size());
    }

    if (region.transfer_calls > 0.0) {
        // Amortize the payload across the calls; transfer_ns adds the fixed
        // per-call cost itself.
        const double per_call = region.transfer_bytes / region.transfer_calls;
        t.non_kernel_ns +=
            perf::transfer_ns(rt, dev, per_call) * region.transfer_calls;
    }
    t.non_kernel_ns += perf::sync_overhead_ns(rt, dev) * region.syncs;
    t.non_kernel_ns += region.extra_non_kernel_ns;
    if (region.include_setup) t.non_kernel_ns += perf::setup_overhead_ns(rt, dev);

    // An unsynchronized timed region only observes submission cost: the
    // kernels are still in flight when the timer stops (FDTD2D's original
    // CUDA mismeasurement, Sec. 3.3).
    if (!region.synchronized) t.kernel_ns = 0.0;

    return t;
}

}  // namespace altis::apps
