# Empty dependencies file for altis_perf.
# This may be replaced when dependencies are built.
