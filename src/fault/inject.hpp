// Injection entry points the runtime layers probe. A fault::plan becomes the
// process-wide active plan (mirroring trace::session::current()); the
// syclite queue, USM/buffer allocators, pipes and the region simulator call
// maybe_inject()/should_stall_pipe() at their operation sites. With no
// active plan the probes are a single relaxed atomic load -- the hot paths
// pay nothing in normal runs.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "fault/spec.hpp"

namespace altis::fault {

/// Base class of every injected failure. `retryable()` tells the resilient
/// harness whether a bounded retry is worth attempting.
class injected_fault : public std::runtime_error {
public:
    injected_fault(const hit& h, const std::string& site_detail);

    [[nodiscard]] op_kind kind() const { return kind_; }
    /// Operation name the rule matched (kernel name, device name, ...).
    [[nodiscard]] const std::string& op() const { return op_; }
    [[nodiscard]] const std::string& rule_text() const { return rule_text_; }
    [[nodiscard]] bool retryable() const { return fault::retryable(kind_); }

private:
    op_kind kind_;
    std::string op_;
    std::string rule_text_;
};

class alloc_fault final : public injected_fault {
public:
    using injected_fault::injected_fault;
};
class launch_fault final : public injected_fault {
public:
    using injected_fault::injected_fault;
};
class transfer_fault final : public injected_fault {
public:
    using injected_fault::injected_fault;
};
class device_fault final : public injected_fault {
public:
    using injected_fault::injected_fault;
};

// ---- process-wide active plan ----

[[nodiscard]] plan* active();
void set_active(plan* p);

/// RAII activation; restores the previous plan on destruction.
class scope {
public:
    explicit scope(plan& p) : prev_(active()) { set_active(&p); }
    ~scope() { set_active(prev_); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

private:
    plan* prev_;
};

/// Probes the active plan for (kind, name); throws the kind-specific fault
/// when a rule fires. `pipe` rules are never thrown here -- the pipe layer
/// turns them into stalls via should_stall_pipe().
void maybe_inject(op_kind kind, std::string_view name,
                  const std::string& site_detail = {});

/// True when an injected stall fires for this pipe operation: the caller
/// should behave as if the peer kernel never made progress.
[[nodiscard]] bool should_stall_pipe(std::string_view name);

}  // namespace altis::fault
