// copy_bytes contract: small copies stay one memcpy, large copies fan out
// through the installed runner in 2 MiB chunks with exact byte coverage
// (including ragged tails), and the fast path degrades to memcpy when no
// runner is installed.
#include "mem/transfer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "metrics/instruments.hpp"
#include "metrics/session.hpp"

namespace altis::mem {
namespace {

std::atomic<std::size_t> g_runner_calls{0};
std::atomic<std::size_t> g_runner_chunks{0};

/// Serial stand-in for the thread pool: runs every chunk inline, counting
/// invocations so tests can observe which path copy_bytes took.
void counting_runner(std::size_t n, void (*fn)(void*, std::size_t),
                     void* ctx) {
    g_runner_calls.fetch_add(1);
    g_runner_chunks.fetch_add(n);
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
}

/// Installs the counting runner for one test, restoring whatever was there.
struct runner_guard {
    parallel_runner prev = parallel_runner_installed();
    runner_guard() {
        g_runner_calls.store(0);
        g_runner_chunks.store(0);
        set_parallel_runner(&counting_runner);
    }
    ~runner_guard() { set_parallel_runner(prev); }
};

[[nodiscard]] std::vector<unsigned char> pattern(std::size_t n) {
    std::vector<unsigned char> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<unsigned char>(i * 131 + (i >> 9));
    return v;
}

TEST(Transfer, ThresholdDefaultsToFourMiB) {
    EXPECT_EQ(parallel_copy_threshold(), std::size_t{4} * 1024 * 1024);
}

TEST(Transfer, SmallCopyNeverDispatchesToTheRunner) {
    runner_guard guard;
    const auto src = pattern(64 * 1024);
    std::vector<unsigned char> dst(src.size());
    copy_bytes(dst.data(), src.data(), src.size());
    EXPECT_EQ(dst, src);
    EXPECT_EQ(g_runner_calls.load(), 0u);
}

TEST(Transfer, LargeCopyFansOutInChunksAndIsByteExact) {
    runner_guard guard;
    // 5 MiB + 7: above the threshold with a ragged tail chunk.
    const std::size_t bytes = (std::size_t{5} << 20) + 7;
    const auto src = pattern(bytes);
    std::vector<unsigned char> dst(bytes, 0);
    copy_bytes(dst.data(), src.data(), bytes);
    EXPECT_EQ(dst, src);
    EXPECT_EQ(g_runner_calls.load(), 1u);
    // ceil((5 MiB + 7) / 2 MiB) = 3 chunks.
    EXPECT_EQ(g_runner_chunks.load(), 3u);
}

TEST(Transfer, ExactThresholdTakesTheParallelPath) {
    runner_guard guard;
    const std::size_t bytes = parallel_copy_threshold();
    const auto src = pattern(bytes);
    std::vector<unsigned char> dst(bytes, 0);
    copy_bytes(dst.data(), src.data(), bytes);
    EXPECT_EQ(dst, src);
    EXPECT_EQ(g_runner_calls.load(), 1u);
    // One byte less stays serial.
    copy_bytes(dst.data(), src.data(), bytes - 1);
    EXPECT_EQ(g_runner_calls.load(), 1u);
}

TEST(Transfer, NoRunnerFallsBackToPlainMemcpy) {
    const parallel_runner prev = parallel_runner_installed();
    set_parallel_runner(nullptr);
    const std::size_t bytes = std::size_t{6} << 20;
    const auto src = pattern(bytes);
    std::vector<unsigned char> dst(bytes, 0);
    copy_bytes(dst.data(), src.data(), bytes);
    EXPECT_EQ(dst, src);
    set_parallel_runner(prev);
}

TEST(Transfer, ZeroBytesIsANoOp) {
    runner_guard guard;
    copy_bytes(nullptr, nullptr, 0);  // must not dereference anything
    EXPECT_EQ(g_runner_calls.load(), 0u);
}

TEST(Transfer, ParallelCopiesAreMeteredUnderASession) {
    runner_guard guard;
    namespace mi = altis::metrics::instruments;
    const std::size_t bytes = std::size_t{4} << 20;
    const auto src = pattern(bytes);
    std::vector<unsigned char> dst(bytes, 0);
    altis::metrics::session s("transfer-test", {/*sample_hz=*/0.0});
    copy_bytes(dst.data(), src.data(), bytes);
    EXPECT_EQ(mi::mem_parallel_copies().value(), 1u);
    EXPECT_EQ(mi::mem_parallel_copy_bytes().value(), bytes);
    // Below-threshold traffic is not counted as a parallel copy.
    copy_bytes(dst.data(), src.data(), 1024);
    EXPECT_EQ(mi::mem_parallel_copies().value(), 1u);
}

std::atomic<bool> g_slow_started{false};
std::atomic<bool> g_slow_release{false};

/// Runner that parks mid-copy until the test releases it, modeling an async
/// graph transfer node still executing while another thread tears the pool
/// down.
void parking_runner(std::size_t n, void (*fn)(void*, std::size_t),
                    void* ctx) {
    g_slow_started.store(true, std::memory_order_release);
    while (!g_slow_release.load(std::memory_order_acquire))
        std::this_thread::yield();
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
}

// Regression: set_parallel_runner used to return immediately, so a pool
// being destroyed could yank the runner out from under a copy_bytes call
// that an out-of-order queue's scheduler had dispatched asynchronously.
// Disarming must drain in-flight copies first.
TEST(Transfer, DisarmingTheRunnerDrainsInFlightCopies) {
    const parallel_runner prev = parallel_runner_installed();
    g_slow_started.store(false);
    g_slow_release.store(false);
    set_parallel_runner(&parking_runner);

    const std::size_t bytes = std::size_t{4} << 20;
    const auto src = pattern(bytes);
    std::vector<unsigned char> dst(bytes, 0);
    std::atomic<bool> copied{false};
    std::thread copier([&] {
        copy_bytes(dst.data(), src.data(), bytes);
        copied.store(true, std::memory_order_release);
    });
    while (!g_slow_started.load(std::memory_order_acquire))
        std::this_thread::yield();

    std::atomic<bool> disarmed{false};
    std::thread disarmer([&] {
        set_parallel_runner(prev);  // must block until the copy finishes
        disarmed.store(true, std::memory_order_release);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(disarmed.load(std::memory_order_acquire))
        << "set_parallel_runner returned with a copy still in flight";

    g_slow_release.store(true, std::memory_order_release);
    copier.join();
    disarmer.join();
    EXPECT_TRUE(copied.load(std::memory_order_acquire));
    EXPECT_TRUE(disarmed.load(std::memory_order_acquire));
    EXPECT_EQ(dst, src);
}

}  // namespace
}  // namespace altis::mem
