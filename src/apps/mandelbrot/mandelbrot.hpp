// Mandelbrot: escape-iteration fractal over a fixed complex-plane window.
// Paper roles: the Single-Task rewrite's speculated-iterations story
// (Sec. 5.3 -- two nested 8192-iteration loops, default 4 speculated
// iterations waste up to 8192*8192*4 cycles), per-input-size FPGA bitstreams
// (Table 3), and a 476x FPGA optimized-vs-baseline speedup (Fig. 4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/common/app.hpp"
#include "apps/common/region.hpp"
#include "core/registry.hpp"
#include "core/result_database.hpp"

namespace altis::apps::mandelbrot {

struct params {
    int width = 512;
    int height = 512;
    int max_iters = 1024;
    // Complex-plane window (same region at every size: mean escape count is
    // then resolution-independent, which the model probe exploits).
    float x0 = -2.5f, y0 = -2.0f, x1 = 1.5f, y1 = 2.0f;

    [[nodiscard]] static params preset(int size);
    [[nodiscard]] std::size_t pixels() const {
        return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
    }
};

/// Host reference: iteration count per pixel, row-major.
void golden(const params& p, std::span<std::uint16_t> iters);

/// Mean escape iterations per pixel, estimated on a 128x128 probe of the
/// same window (deterministic; feeds the dynamic trip counts of the model).
[[nodiscard]] double mean_iterations(const params& p);

/// Functional run of the configured variant on syclite; verifies against
/// golden() exactly and reports simulated timings.
AppResult run(const RunConfig& cfg);

/// Device-independent description of the timed region for simulation.
[[nodiscard]] timed_region region(Variant v, const perf::device_spec& dev,
                                  int size);

/// Kernels synthesized into the fpga_opt bitstream for this size
/// (per-size bitstreams, Table 3).
[[nodiscard]] std::vector<perf::kernel_stats> fpga_design(
    const perf::device_spec& dev, int size);

inline constexpr const char* kFpgaImplLabel = "Single-Task";

void register_app();

}  // namespace altis::apps::mandelbrot
