#include "analyze/findings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/report.hpp"

namespace altis::analyze {

const char* to_string(severity s) {
    switch (s) {
        case severity::note: return "note";
        case severity::warning: return "warning";
        case severity::error: return "error";
    }
    return "?";
}

const std::vector<rule_info>& rule_catalog() {
    static const std::vector<rule_info> catalog = {
        {"ALS-H1", "conflicting concurrent access in dataflow group",
         severity::error, "Fig. 3",
         "synchronize the kernels through a pipe or split the group"},
        {"ALS-H2", "host transfer overlaps un-waited kernel access",
         severity::error, "Sec. 3.2",
         "call queue::wait() before copying the buffer"},
        {"ALS-H3", "accessor used after its command group completed",
         severity::error, "Sec. 5.3",
         "create the accessor inside the command group that uses it"},
        {"ALS-H4", "USM use-after-free / invalid free", severity::error,
         "Sec. 3.2.1",
         "keep the allocation alive until the last kernel using it completed"},
        {"ALS-P1", "pipe endpoint without a peer in its dataflow group",
         severity::error, "Fig. 3",
         "submit the matching reader/writer kernel before end_dataflow()"},
        {"ALS-P2", "pipe feedback cycle with insufficient capacity",
         severity::error, "Fig. 3",
         "raise one pipe's capacity above its per-round volume or break the "
         "cycle"},
        {"ALS-P3", "pipe volume mismatch between producer and consumer",
         severity::warning, "Fig. 3",
         "make the total items written equal the total items read"},
        {"ALS-L1", "pow() with a small constant integer exponent",
         severity::warning, "Sec. 3.3",
         "replace pow(x, n) with explicit multiplications (x * x)"},
        {"ALS-L2", "work-group size not divisible by SIMD width",
         severity::warning, "Sec. 5.2",
         "pick a work-group size that is a multiple of num_simd_work_items"},
        {"ALS-L3", "unroll factor unlikely to help", severity::warning,
         "Sec. 5.2-5.3",
         "drop the unroll or restructure the local-memory accesses first"},
        {"ALS-L4", "library scan offloaded to an FPGA", severity::warning,
         "Sec. 5.1",
         "replace the oneDPL call with a custom Single-Task scan"},
        {"ALS-L5", "redundant queue::wait() with no preceding work",
         severity::warning, "Sec. 3.3",
         "remove the extra synchronization"},
        {"ALS-L6", "kernel does not fit the target device", severity::error,
         "Sec. 4",
         "reduce local arrays/unrolling or size local memory exactly"},
        {"ALS-R1", "unordered conflicting access (happens-before race)",
         severity::error, "Fig. 3",
         "order the accesses through a pipe, queue::wait() or the dataflow "
         "group join"},
        {"ALS-R2", "pipe receive straddles a round boundary",
         severity::warning, "Fig. 3",
         "align burst sizes with items_per_round so one read never mixes "
         "two rounds"},
        {"ALS-D1", "observed access outside every declared range",
         severity::error, "Sec. 3.2",
         "declare the touched range with an accessor or uses_usm()"},
        {"ALS-B1", "stale baseline entry", severity::note, "Sec. 6",
         "remove the entry from the baseline file"},
    };
    return catalog;
}

const rule_info& rule(const std::string& id) {
    for (const rule_info& r : rule_catalog())
        if (id == r.id) return r;
    throw std::out_of_range("analyze: unknown rule id " + id);
}

finding make_finding(const std::string& id, std::string kernel,
                     std::string object, std::string message) {
    const rule_info& r = rule(id);
    finding f;
    f.rule = r.id;
    f.sev = r.sev;
    f.kernel = std::move(kernel);
    f.object = std::move(object);
    f.message = std::move(message);
    f.fix_hint = r.fix_hint;
    f.paper_ref = r.paper_ref;
    return f;
}

namespace {

/// Replaces every "0x<hex>" run with "0x?" so fingerprints are identical
/// across address-space layouts.
std::string canonicalize_pointers(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size();) {
        if (s[i] == '0' && i + 2 < s.size() && s[i + 1] == 'x' &&
            (std::isxdigit(static_cast<unsigned char>(s[i + 2])) != 0)) {
            out += "0x?";
            i += 2;
            while (i < s.size() &&
                   std::isxdigit(static_cast<unsigned char>(s[i])) != 0)
                ++i;
            continue;
        }
        out += s[i++];
    }
    return out;
}

}  // namespace

std::string fingerprint(const finding& f) {
    // FNV-1a 64 over the pointer-canonicalized identity fields.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](const std::string& s) {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ULL;
        }
        h ^= 0x1f;  // field separator
        h *= 0x100000001b3ULL;
    };
    mix(f.rule);
    mix(f.kernel);
    mix(canonicalize_pointers(f.object));
    mix(canonicalize_pointers(f.message));
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[h & 0xF];
        h >>= 4;
    }
    return out;
}

void report::add(finding f) {
    for (const finding& g : findings_)
        if (g.rule == f.rule && g.kernel == f.kernel && g.object == f.object &&
            g.message == f.message)
            return;
    findings_.push_back(std::move(f));
}

void report::merge(const report& other) {
    for (const finding& f : other.findings_) add(f);
}

std::vector<finding> report::sorted_findings() const {
    std::vector<finding> out = findings_;
    std::sort(out.begin(), out.end(), [](const finding& a, const finding& b) {
        if (a.rule != b.rule) return a.rule < b.rule;
        if (a.object != b.object) return a.object < b.object;
        if (a.kernel != b.kernel) return a.kernel < b.kernel;
        return a.message < b.message;
    });
    return out;
}

std::size_t report::count_at_least(severity s) const {
    std::size_t n = 0;
    for (const finding& f : findings_)
        if (f.sev >= s) ++n;
    return n;
}

void report::render_text(std::ostream& out) const {
    if (findings_.empty()) {
        out << "sanitize: no findings\n";
        return;
    }
    out << "sanitize: " << findings_.size() << " finding"
        << (findings_.size() == 1 ? "" : "s") << " ("
        << count_at_least(severity::error) << " errors)\n";
    const std::vector<finding> sorted = sorted_findings();
    Table t({"rule", "severity", "kernel", "object", "message", "paper"});
    for (const finding& f : sorted)
        t.add_row({f.rule, to_string(f.sev), f.kernel, f.object, f.message,
                   f.paper_ref});
    t.print(out);
    for (const finding& f : sorted)
        out << "  hint [" << f.rule << " " << f.kernel
            << "]: " << f.fix_hint << "\n";
}

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

}  // namespace

void report::render_json(std::ostream& out) const {
    const std::vector<finding> sorted = sorted_findings();
    out << "{\"findings\": [";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const finding& f = sorted[i];
        out << (i == 0 ? "" : ",") << "\n  {"
            << "\"rule\": \"" << json_escape(f.rule) << "\", "
            << "\"severity\": \"" << to_string(f.sev) << "\", "
            << "\"kernel\": \"" << json_escape(f.kernel) << "\", "
            << "\"object\": \"" << json_escape(f.object) << "\", "
            << "\"message\": \"" << json_escape(f.message) << "\", "
            << "\"fix_hint\": \"" << json_escape(f.fix_hint) << "\", "
            << "\"paper_ref\": \"" << json_escape(f.paper_ref) << "\", "
            << "\"fingerprint\": \"" << fingerprint(f) << "\"}";
    }
    out << "\n]}\n";
}

}  // namespace altis::analyze
