// LavaMD: N-body particle interactions within a cutoff radius, organized as
// a 3D grid of boxes; every box interacts with its (up to) 27 neighbours
// (Altis Level-2, from Rodinia). Paper roles: the banking success story of
// Sec. 5.2 case 1 -- the bottleneck loop over neighbour particles in shared
// memory unrolls 30x on Stratix 10 with near-linear speedup (beyond that:
// timing violations), retuned to 16x on Agilex (Sec. 5.5).
#pragma once

#include <vector>

#include "apps/common/app.hpp"
#include "apps/common/region.hpp"

namespace altis::apps::lavamd {

inline constexpr std::size_t kParPerBox = 64;
inline constexpr float kAlpha = 0.5f;  ///< a2 = 2*alpha^2 in the potential

struct params {
    std::size_t boxes1d = 4;
    std::uint64_t seed = 0x1a7aULL;

    [[nodiscard]] static params preset(int size);
    [[nodiscard]] std::size_t boxes() const { return boxes1d * boxes1d * boxes1d; }
    [[nodiscard]] std::size_t particles() const { return boxes() * kParPerBox; }
};

struct particle {
    float x, y, z, q;
};

struct force {
    float fx, fy, fz, energy;
    friend bool operator==(const force&, const force&) = default;
};

[[nodiscard]] std::vector<particle> make_particles(const params& p);

/// Host reference: forces on every particle (box-major order).
[[nodiscard]] std::vector<force> golden(const params& p,
                                        std::span<const particle> particles);

AppResult run(const RunConfig& cfg);

[[nodiscard]] timed_region region(Variant v, const perf::device_spec& dev,
                                  int size);
[[nodiscard]] std::vector<perf::kernel_stats> fpga_design(
    const perf::device_spec& dev, int size);

inline constexpr const char* kFpgaImplLabel = "ND-Range";

void register_app();

}  // namespace altis::apps::lavamd
