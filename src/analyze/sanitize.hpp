// Umbrella for altis::sanitize: run every pass over a recorded command
// graph. See docs/SANITIZER.md for the rule catalog.
#pragma once

#include <stdexcept>
#include <string>

#include "analyze/findings.hpp"
#include "analyze/graph.hpp"
#include "analyze/hazard.hpp"
#include "analyze/perf_lint.hpp"
#include "analyze/pipes.hpp"
#include "analyze/race.hpp"
#include "analyze/recorder.hpp"

namespace altis::analyze {

/// Thrown when --sanitize=error refuses to launch a doomed dataflow group
/// (pre-launch pipe gate in syclite::queue::end_dataflow).
class sanitize_error : public std::runtime_error {
public:
    explicit sanitize_error(const std::string& what)
        : std::runtime_error(what) {}
};

/// Runs hazard, pipe and descriptor lints over the graph.
[[nodiscard]] inline report run_all(const command_graph& g) {
    report r;
    lint_hazards(g, r);
    lint_pipes(g, r);
    lint_descriptors(g, r);
    return r;
}

/// Static passes plus the HB-precise race passes over the observed-access
/// shadow store, plus the findings captured at runtime (ALS-H3 probe hits,
/// pre-launch gate reports).
[[nodiscard]] inline report run_all(const recorder& rec) {
    report r = run_all(rec.graph());
    rec.shadow().finalize();
    lint_races(rec.shadow(), rec.graph(), r);
    r.merge(rec.runtime_findings());
    return r;
}

}  // namespace altis::analyze
