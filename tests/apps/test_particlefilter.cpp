#include "apps/particlefilter/particlefilter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perf/resource_model.hpp"

namespace altis::apps::particlefilter {
namespace {

TEST(ParticleFilter, GoldenTracksTheMovingObject) {
    const params p = params::preset(1);
    const auto video = make_video(p);
    const estimate e = golden(p, flavor::floatopt, video);
    // Object starts at grid/4 and moves +1/+1 per frame; the filter should
    // stay within a few pixels of it by the final frame.
    const double target =
        static_cast<double>(p.grid) / 4.0 + static_cast<double>(p.frames - 1);
    EXPECT_NEAR(e.xe.back(), target, 6.0);
    EXPECT_NEAR(e.ye.back(), target, 6.0);
}

TEST(ParticleFilter, GoldenDeterministic) {
    const params p = params::preset(1);
    const auto video = make_video(p);
    const estimate a = golden(p, flavor::naive, video);
    const estimate b = golden(p, flavor::naive, video);
    EXPECT_EQ(a.xe, b.xe);
    EXPECT_EQ(a.ye, b.ye);
}

struct Case {
    const char* device;
    Variant variant;
    flavor f;
};

class PfVariants : public ::testing::TestWithParam<Case> {};

TEST_P(PfVariants, FunctionalRunVerifies) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = GetParam().device;
    cfg.variant = GetParam().variant;
    const AppResult r = run_flavor(cfg, GetParam().f);
    EXPECT_GT(r.kernel_ms, 0.0);
    EXPECT_LE(r.error, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndVariants, PfVariants,
    ::testing::Values(Case{"rtx_2080", Variant::cuda, flavor::naive},
                      Case{"rtx_2080", Variant::cuda, flavor::floatopt},
                      Case{"a100", Variant::sycl_opt, flavor::naive},
                      Case{"xeon_6128", Variant::sycl_opt, flavor::floatopt},
                      Case{"stratix_10", Variant::fpga_opt, flavor::naive},
                      Case{"agilex", Variant::fpga_opt, flavor::floatopt}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.device) + "_" +
               to_string(info.param.variant) + "_" +
               (info.param.f == flavor::naive ? "naive" : "float");
    });

// Sec. 3.3: DPCT's pow(a,2) -> a*a substitution made SYCL PF Float up to 6x
// faster than the original CUDA.
TEST(ParticleFilter, PowSubstitutionSpeedsUpFloatVariant) {
    const auto& rtx = perf::device_by_name("rtx_2080");
    const auto cuda = simulate_region(region(flavor::floatopt, Variant::cuda,
                                             rtx, 2),
                                      rtx, perf::runtime_kind::cuda);
    const auto sycl = simulate_region(region(flavor::floatopt,
                                             Variant::sycl_opt, rtx, 2),
                                      rtx, perf::runtime_kind::sycl);
    const double speedup = cuda.total_ms() / sycl.total_ms();
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 8.0);
}

// The naive flavour's O(N^2) linear search dominates at larger sizes.
TEST(ParticleFilter, NaiveResamplingScalesQuadratically) {
    const auto& rtx = perf::device_by_name("rtx_2080");
    const auto naive = simulate_region(region(flavor::naive, Variant::sycl_opt,
                                              rtx, 3),
                                       rtx, perf::runtime_kind::sycl);
    const auto fl = simulate_region(region(flavor::floatopt, Variant::sycl_opt,
                                           rtx, 3),
                                    rtx, perf::runtime_kind::sycl);
    EXPECT_GT(naive.kernel_ms(), fl.kernel_ms() * 5.0);
}

// Table 3: the branch-heavy Single-Task designs close timing around 105 MHz.
TEST(ParticleFilter, FpgaDesignsClockNear105MHz) {
    const auto& s10 = perf::device_by_name("stratix_10");
    const auto design = fpga_design(flavor::naive, s10, 1);
    const auto usage = perf::estimate_design_resources(design, s10);
    EXPECT_GT(usage.fmax_mhz, 80.0);
    EXPECT_LT(usage.fmax_mhz, 140.0);
}

TEST(ParticleFilter, ReplicationRetunedBetweenBoards) {
    // Sec. 5.5: 10x -> 4x and 50x -> 24x.
    const auto s10 = fpga_design(flavor::floatopt,
                                 perf::device_by_name("stratix_10"), 1);
    const auto agx =
        fpga_design(flavor::floatopt, perf::device_by_name("agilex"), 1);
    ASSERT_EQ(s10[0].loops.size(), 2u);
    EXPECT_EQ(s10[0].loops[0].unroll, 10);
    EXPECT_EQ(agx[0].loops[0].unroll, 4);
    EXPECT_EQ(s10[0].loops[1].unroll, 50);
    EXPECT_EQ(agx[0].loops[1].unroll, 24);
}

TEST(ParticleFilter, RunMatchesRegionSimulation) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "rtx_2080";
    cfg.variant = Variant::sycl_opt;
    const AppResult r = run_naive(cfg);
    const auto& dev = perf::device_by_name(cfg.device);
    const auto est =
        simulate_region(region(flavor::naive, cfg.variant, dev, cfg.size), dev,
                        perf::runtime_kind::sycl);
    EXPECT_NEAR(r.kernel_ms, est.kernel_ms(), r.kernel_ms * 0.02);
}

}  // namespace
}  // namespace altis::apps::particlefilter
