#include "analyze/recorder.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <sstream>

namespace altis::analyze {

const char* to_string(level lv) {
    switch (lv) {
        case level::off: return "off";
        case level::warn: return "warn";
        case level::error: return "error";
    }
    return "?";
}

namespace {

std::string hex_ptr(const void* p) {
    std::ostringstream os;
    os << p;
    return os.str();
}

/// Atomic because the probe reads it from pool/dataflow worker threads (the
/// TSan job covers this path).
std::atomic<recorder*> g_current{nullptr};

}  // namespace

recorder* recorder::current() { return g_current.load(std::memory_order_acquire); }
void recorder::set_current(recorder* r) {
    recorder* prev = g_current.exchange(r, std::memory_order_acq_rel);
    // Publish the new session's shadow store (the hook-side gate), then
    // settle the outgoing session: finalize flushes every thread's open
    // run tables so its intervals are complete before any analysis.
    shadow::detail::set_current_store(r != nullptr ? r->shadow_.get()
                                                   : nullptr);
    if (prev != nullptr && prev != r) prev->shadow_->finalize();
}

int recorder::register_queue(const perf::device_spec& /*dev*/) {
    std::lock_guard lock(mu_);
    return next_queue_++;
}

recorder::cg_handle recorder::begin_command_group() {
    std::lock_guard lock(mu_);
    cg_handle h;
    h.id = next_cg_++;
    h.token = probe::new_token(h.id);
    h.actor = shadow_->new_actor();
    live_tokens_.emplace(h.id, h.token);
    cg_actor_.emplace(h.id, h.actor);
    return h;
}

void recorder::retire(std::uint64_t cg) {
    std::lock_guard lock(mu_);
    const auto it = live_tokens_.find(cg);
    if (it == live_tokens_.end()) return;
    it->second->retired.store(true, std::memory_order_relaxed);
    live_tokens_.erase(it);
}

int recorder::begin_group() {
    std::lock_guard lock(mu_);
    return next_group_++;
}

void recorder::end_group(int group, int queue) {
    std::lock_guard lock(mu_);
    const auto it = group_members_.find(group);
    shadow_->on_group_end(queue, it != group_members_.end()
                                     ? it->second
                                     : std::vector<int>{});
}

void recorder::add_node(node n) {
    std::lock_guard lock(mu_);
    if (n.kind == node_kind::kernel && n.cg != 0)
        cg_kernel_[n.cg] = n.kernel;
    if (!n.simulated) {
        // Declared ranges anchor the stable "mem#N" labels findings use.
        for (const mem_access& a : n.accesses)
            shadow_->register_region(a.base, a.bytes);
        if (n.kind == node_kind::kernel && n.cg != 0) {
            const auto it = cg_actor_.find(n.cg);
            if (it != cg_actor_.end()) {
                n.actor = it->second;
                shadow_->name_actor(n.actor, n.kernel);
                shadow_->on_submit(n.actor, n.queue, n.group >= 0);
                if (n.group >= 0) group_members_[n.group].push_back(n.actor);
            }
        }
    }
    graph_.nodes.push_back(std::move(n));
}

void recorder::add_node_graph(node n, const std::vector<int>& dep_actors) {
    n.ooo = true;
    {
        std::lock_guard lock(mu_);
        if (n.kind == node_kind::kernel && n.cg != 0) {
            cg_kernel_[n.cg] = n.kernel;
            const auto it = cg_actor_.find(n.cg);
            if (it != cg_actor_.end()) n.actor = it->second;
        }
        for (const mem_access& a : n.accesses)
            shadow_->register_region(a.base, a.bytes);
        if (n.actor > 0) ooo_members_[n.queue].push_back(n.actor);
    }
    if (n.actor > 0) {
        shadow_->name_actor(n.actor, n.kernel);
        shadow_->on_submit_graph(n.actor, dep_actors);
    }
    std::lock_guard lock(mu_);
    graph_.nodes.push_back(std::move(n));
}

int recorder::record_transfer_graph(int queue, node_kind kind,
                                    const void* base, std::size_t bytes,
                                    const std::vector<int>& dep_actors) {
    const int actor = shadow_->new_actor();
    shadow_->name_actor(actor, kind == node_kind::transfer_in
                                   ? "transfer_in"
                                   : "transfer_out");
    shadow_->on_transfer_graph(actor, dep_actors, base, bytes,
                               kind == node_kind::transfer_in);
    shadow_->register_region(base, bytes);
    node n;
    n.kind = kind;
    n.queue = queue;
    n.ooo = true;
    n.actor = actor;
    n.accesses.push_back({base, bytes,
                          kind == node_kind::transfer_in ? access::write
                                                         : access::read,
                          mem_kind::buffer});
    std::lock_guard lock(mu_);
    ooo_members_[queue].push_back(actor);
    graph_.nodes.push_back(std::move(n));
    return actor;
}

void recorder::record_graph_join(int queue) {
    std::vector<int> members;
    {
        std::lock_guard lock(mu_);
        const auto it = ooo_members_.find(queue);
        if (it != ooo_members_.end()) members = std::move(it->second);
        ooo_members_.erase(queue);
    }
    shadow_->on_host_join(members);
}

void recorder::record_graph_wait_node(int queue, std::size_t pending) {
    node n;
    n.kind = node_kind::wait;
    n.queue = queue;
    n.ooo = true;
    n.pending = pending;
    std::lock_guard lock(mu_);
    graph_.nodes.push_back(std::move(n));
}

void recorder::record_host_join_actor(int actor) {
    if (actor > 0) shadow_->on_host_join({actor});
}

void recorder::record_wait(int queue) {
    shadow_->on_wait(queue);
    node n;
    n.kind = node_kind::wait;
    n.queue = queue;
    add_node(std::move(n));
}

void recorder::record_transfer(int queue, node_kind kind, const void* base,
                               std::size_t bytes) {
    shadow_->on_transfer(base, bytes, kind == node_kind::transfer_in);
    node n;
    n.kind = kind;
    n.queue = queue;
    n.accesses.push_back({base, bytes,
                          kind == node_kind::transfer_in ? access::write
                                                         : access::read,
                          mem_kind::buffer});
    add_node(std::move(n));
}

void recorder::record_usm_alloc(const void* base, std::size_t bytes,
                                std::uint64_t generation) {
    node n;
    n.kind = node_kind::usm_alloc;
    n.accesses.push_back(
        {base, bytes, access::write, mem_kind::usm, generation});
    add_node(std::move(n));
}

void recorder::record_usm_free(const void* base, std::uint64_t generation) {
    node n;
    n.kind = node_kind::usm_free;
    n.accesses.push_back({base, 0, access::write, mem_kind::usm, generation});
    add_node(std::move(n));
}

void recorder::record_simulated_kernel(const perf::kernel_stats& stats,
                                       const perf::device_spec& dev) {
    node n;
    n.kind = node_kind::kernel;
    n.kernel = stats.name;
    n.stats = stats;
    n.device = &dev;
    n.simulated = true;
    add_node(std::move(n));
}

void recorder::add_finding(finding f) {
    std::lock_guard lock(mu_);
    runtime_.add(std::move(f));
}

void recorder::stale_accessor_use(std::uint64_t cg, const void* base) {
    std::lock_guard lock(mu_);
    const auto key = std::make_pair(cg, base);
    if (std::find(stale_reported_.begin(), stale_reported_.end(), key) !=
        stale_reported_.end())
        return;
    stale_reported_.push_back(key);
    const auto it = cg_kernel_.find(cg);
    const std::string kernel =
        it != cg_kernel_.end() ? it->second : "command group #" + std::to_string(cg);
    runtime_.add(make_finding(
        "ALS-H3", kernel, hex_ptr(base),
        "accessor created in command group #" + std::to_string(cg) +
            " dereferenced after the group completed"));
}

std::vector<node> recorder::group_nodes(int group) const {
    std::lock_guard lock(mu_);
    std::vector<node> out;
    for (const node& n : graph_.nodes)
        if (n.kind == node_kind::kernel && n.group == group) out.push_back(n);
    return out;
}

namespace probe {

namespace {

/// Process-lifetime token arena: tokens must outlive any accessor that holds
/// one, and accessors routinely outlive the recorder scope in tests, so
/// tokens are never reclaimed. One submission costs ~16 bytes here, only
/// while a sanitize session is active.
std::mutex g_arena_mu;
std::deque<cg_token> g_arena;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

}  // namespace

cg_token* new_token(std::uint64_t id) {
    std::lock_guard lock(g_arena_mu);
    g_arena.emplace_back();
    g_arena.back().id = id;
    return &g_arena.back();
}

void on_stale_use(const cg_token* token, const void* base) {
    recorder* r = recorder::current();
    if (r == nullptr) return;
    r->stale_accessor_use(token->id, base);
}

}  // namespace probe

}  // namespace altis::analyze
