// Regenerates Figure 1: execution-time decomposition (kernel vs non-kernel)
// of FDTD2D on the RTX 2080, CUDA vs SYCL, input sizes 1 and 3. The SYCL
// runtime's extra context/event management APIs inflate the non-kernel
// region by roughly an order of magnitude per launch (Sec. 3.3).
#include <iostream>

#include "apps/common/app.hpp"
#include "apps/fdtd2d/fdtd2d.hpp"
#include "core/report.hpp"
#include "trace/harness.hpp"

int main(int argc, char** argv) {
    altis::trace::cli_harness trace_harness("fig1_fdtd2d_decomposition");
    if (const int rc = trace_harness.parse(argc, argv); rc >= 0) return rc;

    using altis::Table;
    using namespace altis;
    namespace perf = altis::perf;

    const perf::device_spec& rtx = perf::device_by_name("rtx_2080");

    std::cout << "Figure 1: Execution-Time [ms] Decomposition of FDTD2D on "
                 "the RTX 2080: CUDA vs SYCL\n\n";

    Table t({"Input Size", "Runtime", "Non-Kernel [ms]", "Kernel [ms]",
             "Total [ms]", "Paper Non-Kernel", "Paper Kernel"});
    struct Ref {
        double nk, k;
    };
    const Ref paper[2][2] = {{{0.4, 1.1}, {2.7, 1.8}},
                             {{10.0, 523.7}, {145.7, 393.4}}};
    int row = 0;
    for (int size : {1, 3}) {
        int col = 0;
        for (perf::runtime_kind rt :
             {perf::runtime_kind::cuda, perf::runtime_kind::sycl}) {
            const Variant v = rt == perf::runtime_kind::cuda ? Variant::cuda
                                                             : Variant::sycl_opt;
            const auto est =
                apps::simulate_region(apps::fdtd2d::region(v, rtx, size), rtx, rt);
            t.add_row({std::to_string(size), to_string(rt),
                       Table::num(est.non_kernel_ms(), 1),
                       Table::num(est.kernel_ms(), 1),
                       Table::num(est.total_ms(), 1),
                       Table::num(paper[row][col].nk, 1),
                       Table::num(paper[row][col].k, 1)});
            ++col;
        }
        ++row;
    }
    t.print(std::cout);

    // The two ratios the paper calls out explicitly.
    const auto sycl1 = apps::simulate_region(
        apps::fdtd2d::region(Variant::sycl_opt, rtx, 1), rtx,
        perf::runtime_kind::sycl);
    const auto cuda1 = apps::simulate_region(
        apps::fdtd2d::region(Variant::cuda, rtx, 1), rtx,
        perf::runtime_kind::cuda);
    const auto sycl3 = apps::simulate_region(
        apps::fdtd2d::region(Variant::sycl_opt, rtx, 3), rtx,
        perf::runtime_kind::sycl);
    std::cout << "\nSize 1: SYCL non-kernel / SYCL kernel       = "
              << Table::num(sycl1.non_kernel_ms() / sycl1.kernel_ms(), 2)
              << "  (paper: ~1.5)\n";
    std::cout << "Size 1: SYCL non-kernel / CUDA non-kernel   = "
              << Table::num(sycl1.non_kernel_ms() / cuda1.non_kernel_ms(), 2)
              << "  (paper: ~6.7)\n";
    std::cout << "Size 3: SYCL kernel / SYCL non-kernel       = "
              << Table::num(sycl3.kernel_ms() / sycl3.non_kernel_ms(), 2)
              << "  (paper: ~2.7)\n";
    return trace_harness.finish();
}
