#include "trace/session.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace altis::trace {

namespace {
session* g_current = nullptr;
}  // namespace

const char* to_string(span_kind k) {
    switch (k) {
        case span_kind::kernel: return "kernel";
        case span_kind::transfer: return "transfer";
        case span_kind::overhead: return "overhead";
        case span_kind::setup: return "setup";
        case span_kind::sync: return "sync";
        case span_kind::dataflow_group: return "dataflow_group";
        case span_kind::region: return "region";
    }
    return "?";
}

const char* to_string(span_status s) {
    switch (s) {
        case span_status::ok: return "ok";
        case span_status::failed: return "failed";
        case span_status::retried: return "retried";
        case span_status::cancelled: return "cancelled";
        case span_status::quarantined: return "quarantined";
    }
    return "?";
}

session::session(std::string name) : name_(std::move(name)) {}

void session::record(span s) { spans_.push_back(std::move(s)); }

void session::record_kernel(const perf::kernel_stats& k, double start_ns,
                            double end_ns, int track, double invocations,
                            std::uint64_t cmd,
                            std::vector<std::uint64_t> deps) {
    span s;
    s.kind = span_kind::kernel;
    s.name = k.name.empty() ? "<unnamed kernel>" : k.name;
    s.start_ns = start_ns;
    s.end_ns = end_ns;
    s.track = track;
    s.cmd = cmd;
    s.deps = std::move(deps);
    s.counters.flops = (k.total_fp32() + k.total_fp64() + k.total_sfu()) *
                       invocations;
    s.counters.bytes = k.total_bytes() * invocations;
    s.counters.occupancy = k.occupancy;
    s.counters.divergence = k.divergence;
    for (const auto& loop : k.loops)
        s.counters.initiation_interval =
            std::max(s.counters.initiation_interval, loop.initiation_interval);
    s.counters.invocations = invocations;
    spans_.push_back(std::move(s));
}

void session::begin_region(std::string name, double start_ns) {
    region_stack_.push_back({std::move(name), start_ns});
}

void session::end_region(double end_ns) {
    if (region_stack_.empty())
        throw std::logic_error("trace::session: end_region without a "
                               "matching begin_region");
    open_region r = std::move(region_stack_.back());
    region_stack_.pop_back();
    span s;
    s.kind = span_kind::region;
    s.name = std::move(r.name);
    s.start_ns = r.start_ns;
    s.end_ns = end_ns;
    spans_.push_back(std::move(s));
}

double session::kernel_ns() const {
    double total = 0.0;
    for (const auto& s : spans_) {
        if (s.kind == span_kind::kernel && s.track == 0)
            total += s.duration_ns();
        else if (s.kind == span_kind::dataflow_group)
            total += s.duration_ns();
    }
    return total;
}

double session::non_kernel_ns() const {
    double total = 0.0;
    for (const auto& s : spans_)
        if (s.kind == span_kind::transfer || s.kind == span_kind::overhead ||
            s.kind == span_kind::setup || s.kind == span_kind::sync)
            total += s.duration_ns();
    return total;
}

double session::last_end_ns() const {
    double last = 0.0;
    for (const auto& s : spans_) last = std::max(last, s.end_ns);
    return last;
}

session* session::current() { return g_current; }

void session::set_current(session* s) { g_current = s; }

}  // namespace altis::trace
