#include "perf/overhead.hpp"

namespace altis::perf {

const char* to_string(runtime_kind k) {
    switch (k) {
        case runtime_kind::cuda: return "cuda";
        case runtime_kind::sycl: return "sycl";
    }
    return "unknown";
}

namespace {
constexpr double kUs = 1000.0;  // ns per microsecond

// Calibrated so that FDTD2D reproduces Figure 1: with O(10^2) launches at
// size 1 and O(10^4) at size 3, CUDA's non-kernel region stays in the 0.4 ms
// / 10 ms range while SYCL's grows to 2.7 ms / 146 ms.
constexpr double kCudaLaunchUs = 1.2;
constexpr double kSyclGpuLaunchUs = 15.0;   // extra context/event API calls
constexpr double kSyclCpuLaunchUs = 100.0;  // OpenCL-CPU/TBB dispatch per range
constexpr double kSyclFpgaLaunchUs = 25.0;  // OpenCL BSP invocation path
}  // namespace

double launch_overhead_ns(runtime_kind rt, const device_spec& dev) {
    if (rt == runtime_kind::cuda) return kCudaLaunchUs * kUs;
    switch (dev.kind) {
        case device_kind::cpu: return kSyclCpuLaunchUs * kUs;
        case device_kind::gpu: return kSyclGpuLaunchUs * kUs;
        case device_kind::fpga: return kSyclFpgaLaunchUs * kUs;
    }
    return kSyclGpuLaunchUs * kUs;
}

double sync_overhead_ns(runtime_kind rt, const device_spec& dev) {
    const double base = (rt == runtime_kind::cuda) ? 3.0 : 8.0;
    return base * kUs * (dev.kind == device_kind::cpu ? 0.5 : 1.0);
}

double transfer_ns(runtime_kind rt, const device_spec& dev, double bytes) {
    const double fixed = (rt == runtime_kind::cuda ? 6.0 : 12.0) * kUs;
    if (dev.kind == device_kind::cpu || dev.pcie_bw_gbs <= 0.0) return fixed;
    return fixed + bytes / (dev.pcie_bw_gbs * 1e9) * 1e9;
}

double setup_overhead_ns(runtime_kind rt, const device_spec& dev) {
    if (dev.kind == device_kind::cpu) return 20.0 * kUs;
    // SYCL pays just-in-time compilation plus lazy context creation on first
    // use; CUDA contexts are cheaper and kernels are compiled ahead of time.
    if (rt == runtime_kind::cuda) return 60.0 * kUs;
    return dev.kind == device_kind::fpga ? 120.0 * kUs : 200.0 * kUs;
}

}  // namespace altis::perf
