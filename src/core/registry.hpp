// Registry of suite applications. Benchmark harnesses iterate the registry to
// run every Level-2 app across devices, sizes and implementation variants.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace altis {

class ResultDatabase;

/// Which implementation of an application to run; mirrors the paper's
/// progression: original CUDA -> DPCT-migrated SYCL -> GPU-optimized SYCL ->
/// FPGA-refactored baseline -> FPGA-optimized.
enum class Variant {
    cuda,        ///< original Altis (golden reference, CUDA runtime model)
    sycl_base,   ///< functionally-correct DPCT migration output (Sec. 3.2)
    sycl_opt,    ///< GPU-optimized SYCL (Sec. 3.3)
    fpga_base,   ///< refactored to synthesize on FPGA (Sec. 4)
    fpga_opt,    ///< FPGA-optimized (Sec. 5)
};

[[nodiscard]] const char* to_string(Variant v);

/// Run parameters shared by every application entry point.
struct RunConfig {
    int size = 1;                      ///< Altis size preset 1..3
    std::string device = "xeon_6128";  ///< device name in perf::device_catalog
    Variant variant = Variant::sycl_opt;
    int passes = 1;
    bool verbose = false;
};

/// One registered application. `run` executes the configured variant, checks
/// its output against the golden reference (throws on mismatch) and reports
/// metrics (at minimum "kernel_time" and "total_time" in ms) into the db.
struct AppInfo {
    std::string name;  ///< e.g. "kmeans"
    std::string description;
    std::vector<Variant> variants;  ///< variants this app implements
    std::function<void(const RunConfig&, ResultDatabase&)> run;
};

/// Global application registry (populated by register_all_apps()).
class Registry {
public:
    static Registry& instance();

    void add(AppInfo info);
    [[nodiscard]] const AppInfo* find(const std::string& name) const;
    [[nodiscard]] const std::vector<AppInfo>& apps() const { return apps_; }

private:
    std::vector<AppInfo> apps_;
};

}  // namespace altis
