#include "sycl/group_algorithms.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sycl/syclite.hpp"

namespace syclite {
namespace {

perf::kernel_stats stats() {
    perf::kernel_stats k;
    k.name = "group_alg";
    return k;
}

TEST(GroupAlgorithms, ReduceSumsTheGroup) {
    queue q("a100");
    constexpr std::size_t kGroups = 4, kLocal = 64;
    buffer<int> out(kGroups);
    q.submit([&](handler& h) {
        auto dst = h.get_access(out, access_mode::discard_write);
        h.parallel_for_work_group(
            range<1>(kGroups), range<1>(kLocal), stats(), [=](group<1> g) {
                int vals[kLocal];
                g.parallel_for_work_item([&](h_item<1> it) {
                    vals[it.get_local_id(0)] =
                        static_cast<int>(it.get_global_id(0));
                });
                const int sum =
                    reduce_over_group(g, vals, [](int a, int b) { return a + b; });
                g.parallel_for_work_item([&](h_item<1> it) {
                    if (it.get_local_id(0) == 0)
                        dst[g.get_group_linear_id()] = sum;
                });
            });
    });
    for (std::size_t grp = 0; grp < kGroups; ++grp) {
        const int first = static_cast<int>(grp * kLocal);
        const int expected = (first + first + kLocal - 1) * kLocal / 2;
        EXPECT_EQ(out.host_data()[grp], expected);
    }
}

TEST(GroupAlgorithms, ReduceWithMax) {
    queue q("xeon_6128");
    buffer<int> out(1);
    q.submit([&](handler& h) {
        auto dst = h.get_access(out, access_mode::discard_write);
        h.parallel_for_work_group(
            range<1>(1), range<1>(32), stats(), [=](group<1> g) {
                int vals[32];
                g.parallel_for_work_item([&](h_item<1> it) {
                    const int lid = static_cast<int>(it.get_local_id(0));
                    vals[lid] = (lid * 37) % 29;  // scrambled
                });
                dst[0] = reduce_over_group(
                    g, vals, [](int a, int b) { return std::max(a, b); });
            });
    });
    EXPECT_EQ(out.host_data()[0], 28);  // max of (lid*37)%29 over 32 lids
}

TEST(GroupAlgorithms, ExclusiveScanMatchesSerial) {
    queue q("rtx_2080");
    constexpr std::size_t kLocal = 128;
    buffer<int> out(kLocal);
    buffer<int> total(1);
    q.submit([&](handler& h) {
        auto dst = h.get_access(out, access_mode::discard_write);
        auto tot = h.get_access(total, access_mode::discard_write);
        h.parallel_for_work_group(
            range<1>(1), range<1>(kLocal), stats(), [=](group<1> g) {
                int vals[kLocal];
                g.parallel_for_work_item([&](h_item<1> it) {
                    vals[it.get_local_id(0)] =
                        static_cast<int>(it.get_local_id(0) % 7) + 1;
                });
                tot[0] = exclusive_scan_over_group(g, vals, 0,
                                                   [](int a, int b) { return a + b; });
                g.parallel_for_work_item([&](h_item<1> it) {
                    dst[it.get_local_id(0)] = vals[it.get_local_id(0)];
                });
            });
    });
    int acc = 0;
    for (std::size_t i = 0; i < kLocal; ++i) {
        EXPECT_EQ(out.host_data()[i], acc) << i;
        acc += static_cast<int>(i % 7) + 1;
    }
    EXPECT_EQ(total.host_data()[0], acc);
}

TEST(GroupAlgorithms, ScanRequiresPowerOfTwo) {
    group<1> g(id<1>(0), range<1>(1), range<1>(48), range<1>(48));
    int vals[48] = {};
    EXPECT_THROW(
        exclusive_scan_over_group(g, vals, 0, [](int a, int b) { return a + b; }),
        std::invalid_argument);
}

TEST(GroupAlgorithms, BroadcastFillsEverySlot) {
    group<1> g(id<1>(0), range<1>(1), range<1>(16), range<1>(16));
    int vals[16];
    std::iota(vals, vals + 16, 100);
    broadcast_over_group(g, vals, 7);
    for (int v : vals) EXPECT_EQ(v, 107);
}

}  // namespace
}  // namespace syclite
