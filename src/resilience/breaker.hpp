// Per-configuration circuit breaker for the resilient sweeps: a key (the
// configuration sans size, e.g. "KMeans/fpga_opt/stratix_10") that fails
// hard `threshold` times in a row trips open, and further encounters are
// quarantined -- skipped with a `quarantined` outcome -- instead of
// re-burning the full retry budget on a deterministic failure. After
// `cooldown` quarantined encounters the breaker goes half-open and admits
// one probe: success closes it, another hard failure re-opens it.
//
// Deliberately not thread-safe: the sweeps are single-threaded config
// loops, and the supervisor owns one breaker per run.
#pragma once

#include <map>
#include <string>

namespace altis::resilience {

struct breaker_policy {
    /// Consecutive hard failures before the key trips open; 0 disables the
    /// breaker entirely.
    int threshold = 3;
    /// Quarantined encounters before a half-open probe is admitted.
    int cooldown = 2;

    [[nodiscard]] bool enabled() const { return threshold > 0; }
};

class breaker {
public:
    enum class state { closed, open, half_open };

    explicit breaker(breaker_policy policy = {}) : policy_(policy) {}

    /// Called before running `key`. False means quarantine this encounter.
    [[nodiscard]] bool admit(const std::string& key);

    /// Report an admitted run: `hard_failure` is a terminal outcome
    /// (failed / deadline), success or a skip is not.
    void report(const std::string& key, bool hard_failure);

    [[nodiscard]] state state_of(const std::string& key) const;
    /// Consecutive hard failures currently accumulated for `key`.
    [[nodiscard]] int consecutive_failures(const std::string& key) const;
    [[nodiscard]] const breaker_policy& policy() const { return policy_; }

private:
    struct entry {
        state st = state::closed;
        int consecutive = 0;     ///< hard failures in a row
        int skipped_since = 0;   ///< quarantined encounters while open
    };

    breaker_policy policy_;
    std::map<std::string, entry> keys_;
};

}  // namespace altis::resilience
