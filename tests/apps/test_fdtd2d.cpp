#include "apps/fdtd2d/fdtd2d.hpp"

#include <gtest/gtest.h>

namespace altis::apps::fdtd2d {
namespace {

TEST(Fdtd2d, GoldenEvolvesFields) {
    params p{32, 32, 5};
    fields f = initial_fields(p);
    const fields before = f;
    golden(p, f);
    std::size_t changed = 0;
    for (std::size_t i = 0; i < f.hz.size(); ++i)
        if (f.hz[i] != before.hz[i]) ++changed;
    EXPECT_GT(changed, f.hz.size() / 2);
}

TEST(Fdtd2d, SourceRowIsDriven) {
    params p{16, 16, 3};
    fields f = initial_fields(p);
    golden(p, f);
    // ey row 0 carries the source of the last step.
    for (std::size_t j = 0; j < p.ny; ++j) EXPECT_FLOAT_EQ(f.ey[j], 2.0f);
}

struct Case {
    const char* device;
    Variant variant;
};

class Fdtd2dVariants : public ::testing::TestWithParam<Case> {};

TEST_P(Fdtd2dVariants, FunctionalRunVerifies) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = GetParam().device;
    cfg.variant = GetParam().variant;
    const AppResult r = run(cfg);
    EXPECT_GT(r.kernel_ms, 0.0);
    EXPECT_LE(r.error, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndVariants, Fdtd2dVariants,
    ::testing::Values(Case{"rtx_2080", Variant::cuda},
                      Case{"rtx_2080", Variant::sycl_base},
                      Case{"rtx_2080", Variant::sycl_opt},
                      Case{"xeon_6128", Variant::sycl_opt},
                      Case{"stratix_10", Variant::fpga_base},
                      Case{"agilex", Variant::fpga_opt}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.device) + "_" +
               to_string(info.param.variant);
    });

// Figure 1's structure: SYCL's non-kernel region dwarfs CUDA's because of
// per-launch overhead across 3 x steps launches.
TEST(Fdtd2d, NonKernelRegionGrowsUnderSycl) {
    const auto& rtx = perf::device_by_name("rtx_2080");
    const auto cuda = simulate_region(region(Variant::cuda, rtx, 1), rtx,
                                      perf::runtime_kind::cuda);
    const auto sycl = simulate_region(region(Variant::sycl_opt, rtx, 1), rtx,
                                      perf::runtime_kind::sycl);
    EXPECT_GT(sycl.non_kernel_ms() / cuda.non_kernel_ms(), 3.0);
}

TEST(Fdtd2d, Fig1ShapeAtBothSizes) {
    const auto& rtx = perf::device_by_name("rtx_2080");
    // Size 1: SYCL's non-kernel region exceeds its kernel region.
    const auto sycl1 = simulate_region(region(Variant::sycl_opt, rtx, 1), rtx,
                                       perf::runtime_kind::sycl);
    EXPECT_GT(sycl1.non_kernel_ms(), sycl1.kernel_ms());
    // Size 3: the kernel region dominates the non-kernel one.
    const auto sycl3 = simulate_region(region(Variant::sycl_opt, rtx, 3), rtx,
                                       perf::runtime_kind::sycl);
    EXPECT_GT(sycl3.kernel_ms(), sycl3.non_kernel_ms());
}

// Sec. 3.3: the original CUDA missed a cudaDeviceSynchronize, so its timer
// saw almost nothing -- the Fig. 2 "baseline" rows compare against that.
TEST(Fdtd2d, MistimedCudaReportsOnlySubmissionCost) {
    const auto& rtx = perf::device_by_name("rtx_2080");
    const auto bad = simulate_region(region_cuda_mistimed(rtx, 1), rtx,
                                     perf::runtime_kind::cuda);
    const auto good = simulate_region(region(Variant::cuda, rtx, 1), rtx,
                                      perf::runtime_kind::cuda);
    EXPECT_DOUBLE_EQ(bad.kernel_ms(), 0.0);
    EXPECT_LT(bad.total_ms(), good.total_ms());
}

TEST(Fdtd2d, RunMatchesRegionSimulation) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "rtx_2080";
    cfg.variant = Variant::sycl_opt;
    const AppResult r = run(cfg);
    const auto& dev = perf::device_by_name(cfg.device);
    const auto est = simulate_region(region(cfg.variant, dev, cfg.size), dev,
                                     perf::runtime_kind::sycl);
    EXPECT_NEAR(r.kernel_ms, est.kernel_ms(), r.kernel_ms * 0.01);
}

}  // namespace
}  // namespace altis::apps::fdtd2d
