#include "fault/options.hpp"

#include <cstdlib>

namespace altis::fault {

void add_fault_options(OptionParser& opts) {
    opts.add_option("inject", "",
                    "fault-injection spec, e.g. 'alloc@2;pipe:map*@1;seed=7' "
                    "(default: $ALTIS_FAULT)");
    opts.add_flag("fail-fast",
                  "abort the sweep on the first unrecoverable failure");
    opts.add_option("retries", "3", "max attempts per configuration");
    opts.add_option("retry-backoff-ms", "25",
                    "base backoff before the first retry (doubles per retry)");
}

options options::from(const OptionParser& opts) {
    options o;
    o.spec = opts.get_string("inject");
    if (o.spec.empty()) {
        if (const char* env = std::getenv("ALTIS_FAULT")) o.spec = env;
    }
    o.fail_fast = opts.get_flag("fail-fast");
    o.policy.max_attempts = static_cast<int>(opts.get_int("retries"));
    o.policy.backoff_base_ms = opts.get_double("retry-backoff-ms");
    return o;
}

plan options::make_plan() const {
    return spec.empty() ? plan{} : plan::parse(spec);
}

}  // namespace altis::fault
