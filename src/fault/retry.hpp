// Resilient execution: bounded retry with exponential backoff for retryable
// injected faults, and the per-configuration outcome record the sweep
// harnesses feed into ResultDatabase. Backoff is accounted, not slept: the
// suite runs on a simulated clock, and a deterministic backoff total keeps
// "same seed, same report" byte-for-byte true.
#pragma once

#include <functional>
#include <string>

namespace altis {
class ResultDatabase;
}

namespace altis::fault {

struct retry_policy {
    int max_attempts = 3;           ///< total attempts including the first
    double backoff_base_ms = 25.0;  ///< backoff before the first retry
    double backoff_multiplier = 2.0;

    /// Backoff charged before retry number `retry` (0-based).
    [[nodiscard]] double backoff_ms(int retry) const;
};

struct outcome {
    enum class status {
        ok,
        failed,
        skipped,
        /// Cancelled because the configuration overran its --deadline-ms
        /// budget; non-retryable (the token stays cancelled for the rest
        /// of the configuration's scope, so another attempt cannot help).
        deadline,
        /// Cancelled from outside the configuration (SIGINT/SIGTERM or a
        /// manual cancel); the sweep is being torn down.
        cancelled,
        /// Skipped by an open circuit breaker (supervisor-level; see
        /// resilience::supervisor) instead of re-burning the retry budget.
        quarantined,
    };

    status st = status::ok;
    int attempts = 1;
    double backoff_ms = 0.0;  ///< total backoff accounted across retries
    std::string error;        ///< what() of the last failure; empty when ok

    [[nodiscard]] bool succeeded() const { return st == status::ok; }
    [[nodiscard]] bool retried() const { return succeeded() && attempts > 1; }
    /// "ok" | "retried" | "failed" | "skipped" | "deadline" | "cancelled" |
    /// "quarantined" -- the status string recorded into ResultDatabase
    /// outcomes (and the checkpoint journal).
    [[nodiscard]] const char* label() const;
};

/// Inverse of outcome::label(), for journal replay ("retried" maps to ok;
/// pair it with the recorded attempts). Unknown labels map to failed.
[[nodiscard]] outcome::status status_from_label(const std::string& label);

/// Notification before each retry: attempt just failed (1-based), its error
/// text, and the backoff charged before the next attempt.
using retry_listener =
    std::function<void(int attempt, const std::string& error, double backoff_ms)>;

/// Runs `fn`, retrying retryable injected faults up to policy.max_attempts
/// with exponential backoff. Non-retryable faults and ordinary exceptions
/// fail immediately. With `fail_fast` the first unrecoverable failure is
/// rethrown instead of being folded into the outcome.
[[nodiscard]] outcome run_guarded(const std::function<void()>& fn,
                                  const retry_policy& policy,
                                  bool fail_fast = false,
                                  const retry_listener& on_retry = {});

/// Records the outcome under `config` into the database's outcome log.
void record_outcome(ResultDatabase& db, const std::string& config,
                    const outcome& oc);

}  // namespace altis::fault
