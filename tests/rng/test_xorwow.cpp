#include "rng/xorwow.hpp"

#include <gtest/gtest.h>

#include <set>

namespace altis::rng {
namespace {

// Hand-computed Marsaglia xorwow steps from a directly-set state (the same
// recurrence cuRAND documents): verifies the shift/xor wiring exactly.
TEST(Xorwow, RecurrenceKnownAnswer) {
    xorwow::state s{1u, 2u, 3u, 4u, 5u, 0u};
    xorwow g(s);
    // t = 1 ^ (1>>2) = 1; v' = (5 ^ (5<<4)) ^ (1 ^ (1<<1)) = 85 ^ 3 = 86.
    // d' = 362437; output = 86 + 362437.
    EXPECT_EQ(g.next_u32(), 86u + 362437u);
    const auto& st = g.current_state();
    EXPECT_EQ(st.x, 2u);
    EXPECT_EQ(st.y, 3u);
    EXPECT_EQ(st.z, 4u);
    EXPECT_EQ(st.w, 5u);
    EXPECT_EQ(st.v, 86u);
    EXPECT_EQ(st.d, 362437u);
}

TEST(Xorwow, SecondStepMatchesManualComputation) {
    xorwow::state s{1u, 2u, 3u, 4u, 5u, 0u};
    xorwow g(s);
    g.next_u32();
    // t = 2 ^ (2>>2) = 2; v = 86: (86 ^ (86<<4)) ^ (2 ^ (2<<1))
    //   = (0x56 ^ 0x560) ^ 0x6 = 0x536 ^ 0x6 = 0x530 = 1328.
    EXPECT_EQ(g.next_u32(), 1328u + 2u * 362437u);
}

TEST(Xorwow, DeterministicForSameSeed) {
    xorwow a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Xorwow, DifferentSeedsDiverge) {
    xorwow a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u32() == b.next_u32()) ++equal;
    EXPECT_LT(equal, 4);
}

TEST(Xorwow, FloatsInUnitInterval) {
    xorwow g(7);
    for (int i = 0; i < 10000; ++i) {
        const float f = g.next_float();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Xorwow, UniformMeanNearHalf) {
    xorwow g(123);
    double sum = 0.0;
    constexpr int kN = 200000;
    for (int i = 0; i < kN; ++i) sum += g.next_float();
    EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Xorwow, NoShortCycles) {
    xorwow g(99);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 10000; ++i) seen.insert(g.next_u32());
    EXPECT_GT(seen.size(), 9990u);  // collisions are possible but rare
}

TEST(Splitmix, KnownGoldenValue) {
    // splitmix64(0) first output is the published 0xE220A8397B1DCDAF.
    std::uint64_t s = 0;
    EXPECT_EQ(splitmix64(s), 0xE220A8397B1DCDAFull);
}

}  // namespace
}  // namespace altis::rng
