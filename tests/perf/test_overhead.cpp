#include "perf/overhead.hpp"

#include <gtest/gtest.h>

namespace altis::perf {
namespace {

TEST(Overhead, SyclLaunchCostsMoreThanCudaOnGpu) {
    const auto& gpu = device_by_name("rtx_2080");
    EXPECT_GT(launch_overhead_ns(runtime_kind::sycl, gpu),
              launch_overhead_ns(runtime_kind::cuda, gpu));
    // Figure 1 requires roughly an order of magnitude between them.
    EXPECT_GT(launch_overhead_ns(runtime_kind::sycl, gpu) /
                  launch_overhead_ns(runtime_kind::cuda, gpu),
              5.0);
}

TEST(Overhead, TransferScalesWithBytes) {
    const auto& gpu = device_by_name("a100");
    const double small = transfer_ns(runtime_kind::sycl, gpu, 1024.0);
    const double big = transfer_ns(runtime_kind::sycl, gpu, 64.0 * 1024 * 1024);
    EXPECT_GT(big, small);
    // 64 MiB over ~24 GB/s PCIe: at least 2 ms.
    EXPECT_GT(big, 2e6);
}

TEST(Overhead, CpuTransfersPayOnlyFixedCost) {
    const auto& cpu = device_by_name("xeon_6128");
    EXPECT_DOUBLE_EQ(transfer_ns(runtime_kind::sycl, cpu, 0.0),
                     transfer_ns(runtime_kind::sycl, cpu, 1e9));
}

TEST(Overhead, ZeroByteTransferStillPaysFixedCost) {
    const auto& gpu = device_by_name("rtx_2080");
    EXPECT_GT(transfer_ns(runtime_kind::cuda, gpu, 0.0), 0.0);
}

TEST(Overhead, SetupOrdering) {
    const auto& gpu = device_by_name("rtx_2080");
    // SYCL's JIT + lazy context beats CUDA's primary context in cost.
    EXPECT_GT(setup_overhead_ns(runtime_kind::sycl, gpu),
              setup_overhead_ns(runtime_kind::cuda, gpu));
}

TEST(Overhead, RuntimeKindNames) {
    EXPECT_STREQ(to_string(runtime_kind::cuda), "cuda");
    EXPECT_STREQ(to_string(runtime_kind::sycl), "sycl");
}

}  // namespace
}  // namespace altis::perf
