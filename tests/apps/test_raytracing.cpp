#include "apps/raytracing/raytracing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace altis::apps::raytracing {
namespace {

TEST(Raytracing, MaterialLayoutMatchesListing1) {
    const material met = material::make_metal({0.8f, 0.6f, 0.4f}, 0.3f);
    EXPECT_FLOAT_EQ(met.data[0], 0.3f);   // fuzz
    EXPECT_FLOAT_EQ(met.data[2], 0.8f);   // albedo r
    EXPECT_FLOAT_EQ(met.data[4], 0.4f);   // albedo b
    EXPECT_EQ(met.kind(), material::metal);

    const material die = material::make_dielectric(1.5f);
    EXPECT_FLOAT_EQ(die.data[1], 1.5f);  // ref_idx
    EXPECT_EQ(die.kind(), material::dielectric);

    const material lam = material::make_lambertian({0.1f, 0.2f, 0.3f});
    EXPECT_EQ(lam.kind(), material::lambertian);
    EXPECT_EQ(sizeof(material), 8 * sizeof(float));  // one float8, no vtable
}

TEST(Raytracing, SceneHasAllThreeMaterialTypes) {
    const auto scene = make_scene();
    EXPECT_GE(scene.size(), 20u);
    int counts[3] = {0, 0, 0};
    for (const auto& s : scene) counts[s.mat.kind()]++;
    EXPECT_GT(counts[material::metal], 0);
    EXPECT_GT(counts[material::dielectric], 0);
    EXPECT_GT(counts[material::lambertian], 0);
}

TEST(Raytracing, GoldenImageIsPlausible) {
    params p;
    p.width = p.height = 64;
    p.samples = 2;
    const auto img = golden(p, rng_kind::philox);
    double mean = 0.0;
    for (const auto& px : img) {
        ASSERT_TRUE(std::isfinite(px.x));
        ASSERT_GE(px.x, 0.0f);
        ASSERT_LE(px.x, 1.01f);
        mean += (px.x + px.y + px.z) / 3.0;
    }
    mean /= static_cast<double>(img.size());
    EXPECT_GT(mean, 0.05);  // not black
    EXPECT_LT(mean, 0.98);  // not blown out
}

// The two generators produce different images of the same scene whose
// overall statistics agree -- exactly the paper's "not directly comparable
// but both correct" situation (Sec. 3.3).
TEST(Raytracing, XorwowAndPhiloxImagesAgreeStatistically) {
    params p;
    p.width = p.height = 64;
    p.samples = 4;
    const auto a = golden(p, rng_kind::xorwow);
    const auto b = golden(p, rng_kind::philox);
    double mean_a = 0.0, mean_b = 0.0;
    std::size_t identical = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        mean_a += a[i].x + a[i].y + a[i].z;
        mean_b += b[i].x + b[i].y + b[i].z;
        if (a[i].x == b[i].x && a[i].y == b[i].y) ++identical;
    }
    EXPECT_NEAR(mean_a / mean_b, 1.0, 0.02);
    // Sky-only pixels match exactly (no RNG involved); hit pixels differ.
    EXPECT_LT(identical, a.size());
}

TEST(Raytracing, ProbeProfileIsSane) {
    const trace_profile prof = probe_profile(params::preset(1));
    EXPECT_GT(prof.mean_bounces, 1.0);
    EXPECT_LT(prof.mean_bounces, 8.0);
    EXPECT_NEAR(prof.tests_per_ray, 20.0, 5.0);  // ~20-sphere scene
}

struct Case {
    const char* device;
    Variant variant;
};

class RaytracingVariants : public ::testing::TestWithParam<Case> {};

TEST_P(RaytracingVariants, FunctionalRunVerifies) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = GetParam().device;
    cfg.variant = GetParam().variant;
    const AppResult r = run(cfg);
    EXPECT_GT(r.kernel_ms, 0.0);
    EXPECT_LE(r.error, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndVariants, RaytracingVariants,
    ::testing::Values(Case{"rtx_2080", Variant::cuda},
                      Case{"rtx_2080", Variant::sycl_opt},
                      Case{"a100", Variant::sycl_base},
                      Case{"stratix_10", Variant::fpga_base},
                      Case{"stratix_10", Variant::fpga_opt},
                      Case{"agilex", Variant::fpga_opt}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.device) + "_" +
               to_string(info.param.variant);
    });

// Fig. 2: the refactored SYCL Raytracing reports 11.6x-21.7x over CUDA.
TEST(Raytracing, RefactoredSyclFarOutrunsVirtualFunctionCuda) {
    const auto& rtx = perf::device_by_name("rtx_2080");
    const auto cuda = simulate_region(region(Variant::cuda, rtx, 3), rtx,
                                      perf::runtime_kind::cuda);
    const auto sycl = simulate_region(region(Variant::sycl_opt, rtx, 3), rtx,
                                      perf::runtime_kind::sycl);
    const double speedup = cuda.total_ms() / sycl.total_ms();
    EXPECT_GT(speedup, 6.0);
    EXPECT_LT(speedup, 60.0);
}

TEST(Raytracing, FpgaUnrollRetunedThirtyToSixteen) {
    EXPECT_EQ(fpga_design(perf::device_by_name("stratix_10"), 1)[0].unroll, 30);
    EXPECT_EQ(fpga_design(perf::device_by_name("agilex"), 1)[0].unroll, 16);
}

TEST(Raytracing, RunMatchesRegionSimulation) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "rtx_2080";
    cfg.variant = Variant::sycl_opt;
    const AppResult r = run(cfg);
    const auto& dev = perf::device_by_name(cfg.device);
    const auto est = simulate_region(region(cfg.variant, dev, cfg.size), dev,
                                     perf::runtime_kind::sycl);
    EXPECT_NEAR(r.kernel_ms, est.kernel_ms(), r.kernel_ms * 0.02);
}

}  // namespace
}  // namespace altis::apps::raytracing
