
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/option_parser.cpp" "src/core/CMakeFiles/altis_core.dir/option_parser.cpp.o" "gcc" "src/core/CMakeFiles/altis_core.dir/option_parser.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/altis_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/altis_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/altis_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/altis_core.dir/report.cpp.o.d"
  "/root/repo/src/core/result_database.cpp" "src/core/CMakeFiles/altis_core.dir/result_database.cpp.o" "gcc" "src/core/CMakeFiles/altis_core.dir/result_database.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
