// Model descriptors for NW. Each anti-diagonal is one launch (2*nb - 1 of
// them), so small problem sizes are dominated by launch overhead on GPUs,
// while on FPGAs the arbitrated local-memory tile throttles the pipeline.
#include "apps/nw/nw.hpp"

#include <algorithm>

namespace altis::apps::nw {
namespace detail {

perf::kernel_stats stats_diag(const params& p, Variant v,
                              const perf::device_spec& dev, double avg_blocks) {
    (void)p;
    perf::kernel_stats k;
    k.name = "nw_diagonal";
    k.global_items = avg_blocks * kTile;
    k.wg_size = kTile;
    const double t = kTile;
    // Per work-item (one tile row): 3 max-candidates per cell over t cells.
    k.int_ops = 8.0 * t;
    k.bytes_read = ((t + 1.0) * 2.0 * 4.0 + 2.0 * t) / 1.0;  // boundaries + seqs
    k.bytes_written = t * 4.0;
    k.barriers = 2.0 * t - 1.0;
    // The (kTile+1)^2 tile with diagonal-wavefront indexing: the FPGA
    // compiler cannot bank it and inserts stall-capable arbiters (Sec. 5.2
    // case 3); unrolling is not an option (timing violations).
    k.pattern = perf::local_pattern::congested;
    k.local_arrays = 1;
    k.local_mem_bytes = (t + 1.0) * (t + 1.0) * 4.0;
    k.local_accesses = 4.0 * t;
    k.dynamic_local_size = (v == Variant::sycl_base || v == Variant::fpga_base);
    k.static_int_ops = 40;
    k.static_branches = 8;
    k.accessor_args = 3;
    k.control_complexity = 3;
    k.divergence = 0.3;  // wavefront edge threads idle per phase

    if (v == Variant::sycl_base) {
        // Sec. 3.3: without -finlining-threshold the similarity/max helper
        // calls stay un-inlined: double the dynamic instruction stream and,
        // through register pressure, halved SM occupancy (the paper
        // recovered up to 2x for NW by raising the threshold).
        k.int_ops *= 2.0;
        k.divergence = 0.45;
        k.occupancy = 0.5;
    }
    if (v == Variant::fpga_opt) {
        // Sec. 5.5: 16x compute units on Stratix 10, scaled down to 8x on
        // the smaller Agilex.
        k.replication = dev.name != "stratix_10" ? 8 : 16;
        k.args_restrict = true;
    }
    return k;
}

}  // namespace detail

timed_region region(Variant v, const perf::device_spec& dev, int size) {
    const params p = params::preset(size);
    timed_region r;
    r.name = std::string("nw/") + to_string(v) + "/size" + std::to_string(size);
    r.include_setup = false;  // timed region excludes one-time setup (warm-up)
    const double m = static_cast<double>(p.n + 1);
    r.transfer_bytes = m * m * 4.0 * 2.0 + 2.0 * static_cast<double>(p.n);
    r.transfer_calls = 4.0;
    r.syncs = 1.0;
    // One slot per anti-diagonal, mirroring the launch sequence exactly
    // (diagonal lengths vary, and per-launch floors are nonlinear in them).
    const std::size_t nb = p.blocks();
    for (std::size_t d = 0; d < 2 * nb - 1; ++d) {
        const std::size_t first = d < nb ? 0 : d - nb + 1;
        const std::size_t count = std::min(d, nb - 1) - first + 1;
        r.kernels.push_back(
            {detail::stats_diag(p, v, dev, static_cast<double>(count)), 1.0});
    }
    return r;
}

std::vector<perf::kernel_stats> fpga_design(const perf::device_spec& dev,
                                            int size) {
    const params p = params::preset(size);
    const double nb = static_cast<double>(p.blocks());
    return {detail::stats_diag(p, Variant::fpga_opt, dev,
                               nb * nb / (2.0 * nb - 1.0))};
}

}  // namespace altis::apps::nw
