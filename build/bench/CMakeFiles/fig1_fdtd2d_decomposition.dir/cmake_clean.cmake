file(REMOVE_RECURSE
  "CMakeFiles/fig1_fdtd2d_decomposition.dir/fig1_fdtd2d_decomposition.cpp.o"
  "CMakeFiles/fig1_fdtd2d_decomposition.dir/fig1_fdtd2d_decomposition.cpp.o.d"
  "fig1_fdtd2d_decomposition"
  "fig1_fdtd2d_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fdtd2d_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
