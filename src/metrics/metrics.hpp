// Wall-clock telemetry primitives (altis::metrics). Everything in this file
// is lock-free and built for the functional runtime's hot paths: counters,
// gauges and log-bucketed histograms are sharded per thread across
// cache-line-padded cells (the same padding discipline as pipe.hpp), updated
// with relaxed atomics, and aggregated only on read. Instruments are always
// compiled in; collection is gated by one process-wide flag so the disabled
// path costs a single relaxed load and a predictable branch -- the same
// discipline fault::maybe_inject() and the accessor counting switch follow.
//
// Unlike altis::trace (which records the *simulated* clock), these measure
// the real execution engine: wall-clock nanoseconds, real queue/pool/pipe
// traffic. docs/OBSERVABILITY.md has the metric catalog.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace altis::metrics {

namespace detail {

/// Process-wide collection switch; flipped by metrics::session (session.hpp).
/// Instrument updates are skipped entirely while false.
inline std::atomic<bool> g_enabled{false};

/// Session generation, bumped by registry::reset_all() at session start.
/// Long-lived objects (buffers) remember the epoch that metered their
/// allocation and only reverse it against the same epoch, so an object that
/// straddles two sessions cannot drive the second session's gauges negative.
inline std::atomic<std::uint64_t> g_epoch{0};

/// Shard count: power of two, small enough that aggregate-on-read stays
/// cheap, large enough that the suite's thread population (pool workers +
/// dataflow kernels + samplers) rarely collides on a cell.
inline constexpr unsigned kShards = 16;

/// Stable per-thread shard slot: threads take the next ticket on first use,
/// so the first kShards threads get private cells and later threads wrap.
[[nodiscard]] inline unsigned shard_index() {
    static std::atomic<unsigned> next{0};
    thread_local const unsigned idx =
        next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
    return idx;
}

/// One counter cell per cache line so concurrent writers on different shards
/// never bounce a line between cores.
struct alignas(64) padded_u64 {
    std::atomic<std::uint64_t> v{0};
};

struct alignas(64) padded_i64 {
    std::atomic<std::int64_t> v{0};
};

}  // namespace detail

/// True while a metrics::session is active. Instrumentation sites guard on
/// this before touching any instrument or the clock.
[[nodiscard]] inline bool collecting() {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Generation of the current collection interval; see detail::g_epoch.
[[nodiscard]] inline std::uint64_t collection_epoch() {
    return detail::g_epoch.load(std::memory_order_relaxed);
}

/// Monotonic event count. add() is one relaxed fetch_add on the caller's
/// shard; value() sums the shards (reads may be torn across shards, which is
/// fine for telemetry: every added quantum is counted exactly once).
class counter {
public:
    void add(std::uint64_t v = 1) {
        shards_[detail::shard_index()].v.fetch_add(v,
                                                   std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t value() const {
        std::uint64_t total = 0;
        for (const auto& s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

    void reset() {
        for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
    }

private:
    std::array<detail::padded_u64, detail::kShards> shards_;
};

/// Signed level (live bytes, in-flight kernels): add/sub on the caller's
/// shard, value() sums. The sum is exact once every in-flight update has
/// landed; transient reads can be momentarily negative under contention and
/// are clamped by readers that need a level (the sampler reports the raw
/// signed sum so bugs stay visible).
class gauge {
public:
    void add(std::int64_t v) {
        shards_[detail::shard_index()].v.fetch_add(v,
                                                   std::memory_order_relaxed);
    }
    void sub(std::int64_t v) { add(-v); }

    [[nodiscard]] std::int64_t value() const {
        std::int64_t total = 0;
        for (const auto& s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

    void reset() {
        for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
    }

private:
    std::array<detail::padded_i64, detail::kShards> shards_;
};

/// High-water mark (pipe occupancy, peak live bytes). record() is a load
/// plus a CAS loop only when the mark actually rises; steady-state traffic
/// below the mark pays one relaxed load.
class watermark {
public:
    void record(std::uint64_t v) {
        std::uint64_t cur = max_.load(std::memory_order_relaxed);
        while (v > cur &&
               !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed))
            ;
    }

    [[nodiscard]] std::uint64_t value() const {
        return max_.load(std::memory_order_relaxed);
    }

    void reset() { max_.store(0, std::memory_order_relaxed); }

private:
    alignas(64) std::atomic<std::uint64_t> max_{0};
};

/// Log-bucketed histogram: bucket i counts values whose bit width is i, so
/// bucket 0 holds {0} and bucket i>=1 holds [2^(i-1), 2^i). Each shard owns
/// a private bucket array plus a running sum; record() is two relaxed
/// fetch_adds with no boundary search (std::bit_width is a single
/// instruction). Aggregation sums shard-by-shard, so total count and sum are
/// exact after writers quiesce -- the hammer test in tests/metrics/ asserts
/// both identities.
class histogram {
public:
    /// 0..64 bit widths of a uint64_t value.
    static constexpr int kBuckets = 65;

    void record(std::uint64_t v) {
        shard& s = shards_[detail::shard_index()];
        s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(v, std::memory_order_relaxed);
    }

    [[nodiscard]] static int bucket_of(std::uint64_t v) {
        return std::bit_width(v);
    }
    /// Inclusive upper bound of bucket i (2^i - 1); used by the Prometheus
    /// exposition's `le` labels.
    [[nodiscard]] static std::uint64_t bucket_bound(int i) {
        return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
    }

    struct snapshot {
        std::array<std::uint64_t, kBuckets> buckets{};
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
    };

    [[nodiscard]] snapshot aggregate() const {
        snapshot out;
        for (const shard& s : shards_) {
            for (int b = 0; b < kBuckets; ++b) {
                const std::uint64_t n =
                    s.buckets[b].load(std::memory_order_relaxed);
                out.buckets[static_cast<std::size_t>(b)] += n;
                out.count += n;
            }
            out.sum += s.sum.load(std::memory_order_relaxed);
        }
        return out;
    }

    void reset() {
        for (shard& s : shards_) {
            for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
            s.sum.store(0, std::memory_order_relaxed);
        }
    }

private:
    /// The bucket array spans several cache lines; aligning the shard keeps
    /// two shards from splitting a line at their boundary.
    struct alignas(64) shard {
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
        std::atomic<std::uint64_t> sum{0};
    };

    std::array<shard, detail::kShards> shards_;
};

}  // namespace altis::metrics
