// Kernel advisor: runs the analysis engine (the reproduction's VTune
// stand-in, Sec. 5.2) over every optimized FPGA design in the suite and over
// a few GPU kernels, printing what bounds each kernel and which of the
// paper's techniques the model predicts would help.
//
// Build & run:   ./examples/kernel_advisor [device]
#include <iostream>

#include "apps/common/suite.hpp"
#include "perf/analysis.hpp"
#include "perf/resource_model.hpp"

int main(int argc, char** argv) {
    namespace bench = altis::bench;
    namespace perf = altis::perf;

    const std::string device_name = argc > 1 ? argv[1] : "stratix_10";
    const perf::device_spec& dev = perf::device_by_name(device_name);

    std::cout << "Kernel advisor -- " << dev.display << ", size-2 designs\n\n";
    for (const auto& e : bench::suite()) {
        if (dev.is_fpga() && !e.in_fig45) continue;
        const altis::Variant v = dev.is_fpga() ? altis::Variant::fpga_opt
                                               : altis::Variant::sycl_opt;
        altis::apps::timed_region region;
        try {
            region = e.region(v, dev, 2);
        } catch (const std::exception&) {
            continue;
        }
        double design_fmax = 0.0;
        if (dev.is_fpga())
            design_fmax =
                perf::estimate_design_resources(region.all_kernels(), dev)
                    .fmax_mhz;
        std::cout << "== " << e.label << " ==\n";
        for (const auto& k : region.all_kernels()) {
            const auto a = perf::analyze(k, dev, design_fmax);
            perf::render(a, k, dev, std::cout);
        }
        std::cout << '\n';
    }
    return 0;
}
