// Allocation-conscious callable wrappers for the submission hot path.
//
// small_function<R(Args...)> is a move-only std::function replacement with
// inline storage: kernel execution thunks (an nd_range, a user lambda with a
// handful of accessors) fit in the buffer, so queue::submit performs no heap
// allocation per command group. Larger captures fall back to the heap with
// identical semantics, so nothing constrains what a kernel may capture.
//
// function_ref<R(Args...)> is a non-owning view of a callable -- two words,
// trivially copyable, nothing allocated or destroyed. thread_pool takes its
// work this way: the caller's lambda outlives the blocking parallel_for
// call by construction, so ownership would only buy an allocation.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace syclite::detail {

template <typename Sig>
class small_function;  // undefined; only the R(Args...) form below exists

template <typename R, typename... Args>
class small_function<R(Args...)> {
    /// Inline capacity: sized for parallel_for thunks (nd_range<3> + a lambda
    /// with several accessors); measured across the suite's kernels, 120
    /// bytes keeps every app's submissions on the inline path.
    static constexpr std::size_t kInlineSize = 120;

public:
    small_function() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, small_function> &&
                  std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
    small_function(F&& f) {  // NOLINT(google-explicit-constructor)
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
            invoke_ = [](small_function& self, Args... args) -> R {
                return (*std::launder(reinterpret_cast<Fn*>(self.buffer_)))(
                    std::forward<Args>(args)...);
            };
            manage_ = [](small_function& self, small_function* dst) {
                Fn* fn = std::launder(reinterpret_cast<Fn*>(self.buffer_));
                if (dst != nullptr)
                    ::new (static_cast<void*>(dst->buffer_)) Fn(std::move(*fn));
                fn->~Fn();
            };
        } else {
            heap_ = new Fn(std::forward<F>(f));
            invoke_ = [](small_function& self, Args... args) -> R {
                return (*static_cast<Fn*>(self.heap_))(
                    std::forward<Args>(args)...);
            };
            manage_ = [](small_function& self, small_function* dst) {
                if (dst != nullptr) {
                    dst->heap_ = self.heap_;
                    self.heap_ = nullptr;
                    return;
                }
                delete static_cast<Fn*>(self.heap_);
            };
        }
    }

    small_function(small_function&& other) noexcept { move_from(other); }

    small_function& operator=(small_function&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    small_function(const small_function&) = delete;
    small_function& operator=(const small_function&) = delete;

    ~small_function() { reset(); }

    R operator()(Args... args) {
        return invoke_(*this, std::forward<Args>(args)...);
    }

    [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

private:
    void move_from(small_function& other) noexcept {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        if (manage_ != nullptr) manage_(other, this);
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    void reset() noexcept {
        if (manage_ != nullptr) manage_(*this, nullptr);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

    union {
        alignas(std::max_align_t) std::byte buffer_[kInlineSize];
        void* heap_;
    };
    R (*invoke_)(small_function&, Args...) = nullptr;
    /// dst == nullptr: destroy; else: move-construct into dst and destroy.
    void (*manage_)(small_function&, small_function*) = nullptr;
};

template <typename Sig>
class function_ref;  // undefined; only the R(Args...) form below exists

template <typename R, typename... Args>
class function_ref<R(Args...)> {
public:
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, function_ref> &&
                  std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
    function_ref(F&& f) noexcept  // NOLINT(google-explicit-constructor)
        : obj_(const_cast<void*>(
              static_cast<const void*>(std::addressof(f)))),
          invoke_([](void* obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F>*>(obj))(
                  std::forward<Args>(args)...);
          }) {}

    R operator()(Args... args) const {
        return invoke_(obj_, std::forward<Args>(args)...);
    }

private:
    void* obj_;
    R (*invoke_)(void*, Args...);
};

}  // namespace syclite::detail
