#include "fault/spec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace altis::fault {
namespace {

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

std::uint64_t parse_uint(std::string_view s, const std::string& context) {
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc{} || ptr != s.data() + s.size())
        throw spec_error("fault spec: bad number '" + std::string(s) + "' in " +
                         context);
    return value;
}

double parse_probability(std::string_view s, const std::string& context) {
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc{} || ptr != s.data() + s.size() || value < 0.0 ||
        value > 1.0)
        throw spec_error("fault spec: probability must be in [0,1], got '" +
                         std::string(s) + "' in " + context);
    return value;
}

op_kind parse_kind(std::string_view s, const std::string& context) {
    if (s == "alloc") return op_kind::alloc;
    if (s == "launch") return op_kind::launch;
    if (s == "transfer") return op_kind::transfer;
    if (s == "pipe") return op_kind::pipe;
    if (s == "device") return op_kind::device;
    throw spec_error("fault spec: unknown kind '" + std::string(s) + "' in " +
                     context + " (expected alloc|launch|transfer|pipe|device)");
}

rule parse_rule(std::string_view clause) {
    const std::string context = std::string(clause);
    rule r;

    // Trigger first: exactly one of '@' or '%'.
    const std::size_t at = clause.find('@');
    const std::size_t pct = clause.find('%');
    if (at == std::string_view::npos && pct == std::string_view::npos)
        throw spec_error("fault spec: rule '" + context +
                         "' has no trigger (expected @N[xM] or %P)");
    if (at != std::string_view::npos && pct != std::string_view::npos)
        throw spec_error("fault spec: rule '" + context +
                         "' mixes @ and % triggers");

    std::string_view head, trigger;
    if (at != std::string_view::npos) {
        head = clause.substr(0, at);
        trigger = clause.substr(at + 1);
        const std::size_t x = trigger.find('x');
        if (x == std::string_view::npos) {
            r.nth = parse_uint(trigger, context);
        } else {
            r.nth = parse_uint(trigger.substr(0, x), context);
            r.times = parse_uint(trigger.substr(x + 1), context);
        }
        if (r.nth == 0 || r.times == 0)
            throw spec_error("fault spec: indices in '" + context +
                             "' are 1-based (@0 or x0 is meaningless)");
    } else {
        head = clause.substr(0, pct);
        trigger = clause.substr(pct + 1);
        r.probability = parse_probability(trigger, context);
    }

    const std::size_t colon = head.find(':');
    if (colon == std::string_view::npos) {
        r.kind = parse_kind(trim(head), context);
    } else {
        r.kind = parse_kind(trim(head.substr(0, colon)), context);
        r.match = std::string(trim(head.substr(colon + 1)));
    }
    return r;
}

}  // namespace

const char* to_string(op_kind k) {
    switch (k) {
        case op_kind::alloc: return "alloc";
        case op_kind::launch: return "launch";
        case op_kind::transfer: return "transfer";
        case op_kind::pipe: return "pipe";
        case op_kind::device: return "device";
    }
    return "?";
}

bool retryable(op_kind k) {
    switch (k) {
        case op_kind::alloc:
        case op_kind::transfer:
        case op_kind::device:
            return true;
        case op_kind::launch:
        case op_kind::pipe:
            return false;
    }
    return false;
}

std::string rule::text() const {
    std::string s = to_string(kind);
    if (!match.empty()) s += ":" + match;
    if (probability >= 0.0) {
        s += "%" + std::to_string(probability);
    } else {
        s += "@" + std::to_string(nth);
        if (times != 1) s += "x" + std::to_string(times);
    }
    return s;
}

bool glob_match(std::string_view pattern, std::string_view text) {
    if (pattern.empty()) return true;
    // Iterative glob with single-star backtracking.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string_view::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == text[t] || pattern[p] == '?')) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string_view::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') ++p;
    return p == pattern.size();
}

plan::plan(const plan& other) {
    rules_ = other.rules_;
    seed_ = other.seed_;
    states_ = other.states_;
}

plan& plan::operator=(const plan& other) {
    if (this != &other) {
        std::scoped_lock lock(mutex_);
        rules_ = other.rules_;
        seed_ = other.seed_;
        states_ = other.states_;
    }
    return *this;
}

plan plan::parse(const std::string& spec) {
    plan p;
    std::string_view rest = spec;
    bool seeded = false;
    while (!rest.empty()) {
        const std::size_t semi = rest.find(';');
        std::string_view clause = trim(rest.substr(0, semi));
        rest = semi == std::string_view::npos ? std::string_view{}
                                              : rest.substr(semi + 1);
        if (clause.empty()) continue;
        if (clause.rfind("seed=", 0) == 0) {
            // A silently-overwritten seed makes "reproduce with the spec
            // from the report" lie; duplicates are a spec error.
            if (seeded)
                throw spec_error("fault spec: duplicate seed= clause '" +
                                 std::string(clause) + "'");
            p.seed_ = parse_uint(clause.substr(5), std::string(clause));
            seeded = true;
            continue;
        }
        p.rules_.push_back(parse_rule(clause));
    }
    p.reset();
    return p;
}

void plan::reset() {
    std::scoped_lock lock(mutex_);
    states_.clear();
    states_.reserve(rules_.size());
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        rule_state st;
        // Independent per-rule streams: rules fire identically regardless of
        // how other rules interleave.
        st.stream = rng::xorwow(seed_ ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
        states_.push_back(std::move(st));
    }
}

std::optional<hit> plan::check(op_kind kind, std::string_view name) {
    if (rules_.empty()) return std::nullopt;
    std::scoped_lock lock(mutex_);
    // Every matching rule observes every operation (counters advance even
    // when an earlier rule already fired), so rule states never depend on
    // the order rules appear in the spec.
    std::optional<hit> first;
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const rule& r = rules_[i];
        if (r.kind != kind || !glob_match(r.match, name)) continue;
        rule_state& st = states_[i];
        bool fires = false;
        if (r.probability >= 0.0) {
            fires = st.stream.next_double() < r.probability;
        } else {
            ++st.matches;
            fires = st.matches >= r.nth && st.matches < r.nth + r.times;
        }
        if (fires && !first) first = hit{kind, std::string(name), r.text()};
    }
    return first;
}

}  // namespace altis::fault
