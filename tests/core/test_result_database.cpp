#include "core/result_database.hpp"

#include <gtest/gtest.h>

#include <cfloat>
#include <sstream>

#include "support/mini_json.hpp"

namespace altis {
namespace {

TEST(ResultDatabase, AggregatesSamplesIntoOneSeries) {
    ResultDatabase db;
    db.add_result("kernel_time", "size=1", "ms", 2.0);
    db.add_result("kernel_time", "size=1", "ms", 4.0);
    db.add_result("kernel_time", "size=2", "ms", 8.0);
    ASSERT_EQ(db.results().size(), 2u);
    const Result* r = db.find("kernel_time", "size=1");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->values.size(), 2u);
}

TEST(ResultDatabase, Statistics) {
    Result r{"t", "a", "ms", {1.0, 2.0, 3.0, 4.0}};
    EXPECT_DOUBLE_EQ(r.min(), 1.0);
    EXPECT_DOUBLE_EQ(r.max(), 4.0);
    EXPECT_DOUBLE_EQ(r.mean(), 2.5);
    EXPECT_DOUBLE_EQ(r.median(), 2.5);
    EXPECT_NEAR(r.stddev(), 1.2909944487, 1e-9);
}

TEST(ResultDatabase, MedianOddCount) {
    Result r{"t", "a", "ms", {5.0, 1.0, 3.0}};
    EXPECT_DOUBLE_EQ(r.median(), 3.0);
}

TEST(ResultDatabase, FailuresExcludedFromStatsButCounted) {
    ResultDatabase db;
    db.add_result("t", "a", "ms", 10.0);
    db.add_failure("t", "a", "ms");
    const Result* r = db.find("t", "a");
    ASSERT_NE(r, nullptr);
    EXPECT_DOUBLE_EQ(r->mean(), 10.0);
    EXPECT_DOUBLE_EQ(r->error_fraction(), 0.5);
}

TEST(ResultDatabase, AllFailedSeriesReportsSentinel) {
    Result r{"t", "a", "ms", {Result::failure_sentinel()}};
    EXPECT_GE(r.mean(), FLT_MAX);
    EXPECT_DOUBLE_EQ(r.error_fraction(), 1.0);
}

TEST(ResultDatabase, GeomeanOverSeriesMeans) {
    ResultDatabase db;
    db.add_result("speedup", "app=a", "x", 2.0);
    db.add_result("speedup", "app=b", "x", 8.0);
    db.add_result("other", "app=a", "x", 100.0);
    EXPECT_NEAR(db.geomean("speedup"), 4.0, 1e-12);
}

TEST(ResultDatabase, GeomeanSkipsNonPositiveAndFailedSeries) {
    ResultDatabase db;
    db.add_result("speedup", "app=a", "x", 4.0);
    db.add_result("speedup", "app=bad", "x", 0.0);
    db.add_failure("speedup", "app=fail", "x");
    EXPECT_NEAR(db.geomean("speedup"), 4.0, 1e-12);
}

TEST(ResultDatabase, GeomeanEmptyIsZero) {
    ResultDatabase db;
    EXPECT_DOUBLE_EQ(db.geomean("absent"), 0.0);
}

TEST(ResultDatabase, CsvDumpContainsAllTrials) {
    ResultDatabase db;
    db.add_result("t", "a", "ms", 1.5);
    db.add_result("t", "a", "ms", 2.5);
    std::ostringstream os;
    db.dump_csv(os);
    EXPECT_NE(os.str().find("t,a,ms,1.5,2.5"), std::string::npos);
}

TEST(ResultDatabase, JsonDumpIsWellFormedAndEscaped) {
    ResultDatabase db;
    db.add_result("kernel \"time\"", "size=1", "ms", 1.5);
    db.add_result("kernel \"time\"", "size=1", "ms", 2.5);
    db.add_failure("kernel \"time\"", "size=1", "ms");
    std::ostringstream os;
    db.dump_json(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"values\": [1.5, 2.5, null]"), std::string::npos) << s;
    EXPECT_NE(s.find("\\\"time\\\""), std::string::npos);  // escaped quote
    EXPECT_NE(s.find("\"mean\": 2"), std::string::npos);
    EXPECT_EQ(s.front(), '[');
    EXPECT_EQ(s[s.size() - 2], ']');
}

TEST(ResultDatabase, JsonRoundTripsEscapesInAtts) {
    // Attribute strings carry free-form text (device names, size presets,
    // file paths); quotes, backslashes and whitespace controls in them must
    // come back unchanged through a strict JSON parser, and failure
    // sentinels must encode as JSON null, not FLT_MAX.
    ResultDatabase db;
    const std::string atts = "path=C:\\altis\\\"run 1\"\tsize=2\nline";
    db.add_result("back\\slash", atts, "ms", 1.5);
    db.add_failure("back\\slash", atts, "ms");
    std::ostringstream os;
    db.dump_json(os);

    const mini_json::value doc = mini_json::parse(os.str());
    ASSERT_EQ(doc.as_array().size(), 1u);
    const mini_json::value& r = doc.as_array()[0];
    EXPECT_EQ(r.at("test").as_string(), "back\\slash");
    EXPECT_EQ(r.at("atts").as_string(), atts);
    EXPECT_EQ(r.at("unit").as_string(), "ms");
    const auto& values = r.at("values").as_array();
    ASSERT_EQ(values.size(), 2u);
    EXPECT_DOUBLE_EQ(values[0].as_number(), 1.5);
    EXPECT_TRUE(values[1].is_null());
    // The raw text must not leak an unescaped backslash sequence: every
    // backslash in the source strings appears doubled.
    EXPECT_NE(os.str().find("back\\\\slash"), std::string::npos);
    EXPECT_EQ(os.str().find("C:\\altis\\\""), std::string::npos);
}

TEST(ResultDatabase, JsonEmptyDatabase) {
    ResultDatabase db;
    std::ostringstream os;
    db.dump_json(os);
    EXPECT_EQ(os.str(), "[\n]\n");
}

TEST(ResultDatabase, SummaryTableHasHeaderAndRows) {
    ResultDatabase db;
    db.add_result("kernel_time", "size=1", "ms", 1.0);
    std::ostringstream os;
    db.dump_summary(os);
    EXPECT_NE(os.str().find("median"), std::string::npos);
    EXPECT_NE(os.str().find("kernel_time"), std::string::npos);
}

}  // namespace
}  // namespace altis
