file(REMOVE_RECURSE
  "libaltis_core.a"
)
