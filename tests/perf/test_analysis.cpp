#include "perf/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "perf/model.hpp"

namespace altis::perf {
namespace {

TEST(Analysis, MemoryBoundStreamingKernel) {
    kernel_stats k;
    k.name = "stream";
    k.global_items = 1 << 24;
    k.wg_size = 256;
    k.fp32_ops = 1;
    k.bytes_read = 24;
    k.bytes_written = 8;
    const auto a = analyze(k, device_by_name("rtx_2080"));
    EXPECT_EQ(a.bound, bottleneck::memory_bandwidth);
    EXPECT_GT(a.limit_utilization, 0.9);
}

TEST(Analysis, ComputeBoundKernel) {
    kernel_stats k;
    k.name = "flops";
    k.global_items = 1 << 22;
    k.wg_size = 256;
    k.fp32_ops = 2000;
    k.bytes_read = 4;
    const auto a = analyze(k, device_by_name("a100"));
    EXPECT_EQ(a.bound, bottleneck::compute);
    EXPECT_GT(a.compute_only_ns, a.memory_only_ns);
}

TEST(Analysis, TinyKernelIsLatencyBound) {
    kernel_stats k;
    k.name = "tiny";
    k.global_items = 64;
    k.wg_size = 64;
    k.fp32_ops = 2;
    k.bytes_read = 4;
    const auto a = analyze(k, device_by_name("rtx_2080"));
    EXPECT_EQ(a.bound, bottleneck::latency);
    // And the advisor points at launch batching.
    bool found = false;
    for (const auto& s : a.suggestions)
        if (s.what.find("launch-bound") != std::string::npos) found = true;
    EXPECT_TRUE(found);
}

TEST(Analysis, SfuHeavyKernelGetsPowAdvice) {
    kernel_stats k;
    k.name = "pow";
    k.global_items = 1 << 20;
    k.wg_size = 128;
    k.fp32_ops = 10;
    k.sfu_ops = 100;
    const auto a = analyze(k, device_by_name("rtx_2080"));
    bool found = false;
    for (const auto& s : a.suggestions)
        if (s.what.find("pow(a,2)") != std::string::npos) {
            found = true;
            EXPECT_GT(s.expected_gain, 1.5);
            EXPECT_EQ(s.paper_ref, "Sec. 3.3");
        }
    EXPECT_TRUE(found);
}

TEST(Analysis, FpgaCongestedLocalMemoryDiagnosed) {
    kernel_stats k;
    k.name = "nw_like";
    k.form = kernel_form::nd_range;
    k.global_items = 1 << 20;
    k.wg_size = 16;
    k.pattern = local_pattern::congested;
    k.local_arrays = 1;
    k.local_mem_bytes = 1156;
    k.local_accesses = 64;
    k.static_int_ops = 40;
    const auto a = analyze(k, device_by_name("stratix_10"));
    EXPECT_EQ(a.bound, bottleneck::local_memory);
    bool found = false;
    for (const auto& s : a.suggestions)
        if (s.paper_ref == "Sec. 5.2 case 3") found = true;
    EXPECT_TRUE(found);
}

TEST(Analysis, FpgaBankedLocalMemorySuggestsUnrolling) {
    kernel_stats k;
    k.name = "lavamd_like";
    k.form = kernel_form::nd_range;
    k.global_items = 1 << 18;
    k.wg_size = 64;
    k.pattern = local_pattern::banked;
    k.local_arrays = 3;
    k.local_mem_bytes = 3072;
    k.local_accesses = 128;
    k.static_fp32_ops = 16;
    const auto a = analyze(k, device_by_name("stratix_10"));
    EXPECT_EQ(a.bound, bottleneck::local_memory);
    bool found = false;
    for (const auto& s : a.suggestions)
        if (s.paper_ref == "Sec. 5.2 case 1") {
            found = true;
            EXPECT_GT(s.expected_gain, 2.0);
        }
    EXPECT_TRUE(found);
}

TEST(Analysis, FpgaMemoryBoundWithoutRestrictSuggestsIt) {
    kernel_stats k;
    k.name = "copy";
    k.form = kernel_form::nd_range;
    k.global_items = 1 << 24;
    k.wg_size = 128;
    k.bytes_read = 32;
    k.bytes_written = 32;
    k.simd = 8;  // wide enough that the datapath outruns the board DRAM
    k.args_restrict = false;
    const auto a = analyze(k, device_by_name("agilex"));
    EXPECT_EQ(a.bound, bottleneck::memory_bandwidth);
    bool found = false;
    for (const auto& s : a.suggestions)
        if (s.what.find("kernel_args_restrict") != std::string::npos) {
            found = true;
            EXPECT_NEAR(s.expected_gain, 1.35, 0.05);
        }
    EXPECT_TRUE(found);
}

TEST(Analysis, FpgaDepChainSuggestsSingleTaskRewrite) {
    kernel_stats k;
    k.name = "mandelbrot_like";
    k.form = kernel_form::nd_range;
    k.global_items = 1 << 20;
    k.wg_size = 128;
    k.dep_chain_cycles = 600;
    k.bytes_written = 2;
    const auto a = analyze(k, device_by_name("stratix_10"));
    EXPECT_EQ(a.bound, bottleneck::pipeline);
    bool found = false;
    for (const auto& s : a.suggestions)
        if (s.paper_ref == "Sec. 5.3") found = true;
    EXPECT_TRUE(found);
}

TEST(Analysis, SingleTaskSpeculationWasteFlagged) {
    kernel_stats k;
    k.name = "spec";
    k.form = kernel_form::single_task;
    loop_info loop;
    loop.name = "escape";
    loop.trip_count = 1e6;
    loop.entries = 1e6;  // one iteration per entry: waste dominates
    loop.speculated_iterations = 4;
    k.loops.push_back(loop);
    const auto a = analyze(k, device_by_name("stratix_10"));
    bool found = false;
    for (const auto& s : a.suggestions)
        if (s.what.find("speculated_iterations") != std::string::npos)
            found = true;
    EXPECT_TRUE(found);
}

TEST(Analysis, AccessorObjectAndDynamicLocalAdvice) {
    kernel_stats k;
    k.name = "srad_like";
    k.form = kernel_form::nd_range;
    k.global_items = 1 << 20;
    k.wg_size = 64;
    k.pass_accessor_objects = true;
    k.dynamic_local_size = true;
    k.pattern = local_pattern::banked;
    k.local_arrays = 11;
    k.local_mem_bytes = 2816;
    k.local_accesses = 8;
    const auto a = analyze(k, device_by_name("stratix_10"));
    int hits = 0;
    for (const auto& s : a.suggestions) {
        if (s.what.find("accessor objects") != std::string::npos) ++hits;
        if (s.what.find("group_local_memory_for_overwrite") !=
            std::string::npos)
            ++hits;
    }
    EXPECT_EQ(hits, 2);
}

TEST(Analysis, RenderMentionsBottleneckAndAdvice) {
    kernel_stats k;
    k.name = "stream";
    k.global_items = 1 << 24;
    k.wg_size = 256;
    k.bytes_read = 64;
    const auto& dev = device_by_name("rtx_2080");
    const auto a = analyze(k, dev);
    std::ostringstream os;
    render(a, k, dev, os);
    EXPECT_NE(os.str().find("memory bandwidth"), std::string::npos);
    EXPECT_NE(os.str().find("stream"), std::string::npos);
}

TEST(Analysis, BottleneckNames) {
    EXPECT_STREQ(to_string(bottleneck::pipeline), "FPGA pipeline cycles");
    EXPECT_STREQ(to_string(bottleneck::local_memory),
                 "local-memory ports/arbiters");
}

}  // namespace
}  // namespace altis::perf
