#include "apps/srad/srad.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perf/model.hpp"
#include "perf/resource_model.hpp"

namespace altis::apps::srad {
namespace {

TEST(Srad, GoldenSmoothsSpeckle) {
    params p{64, 64, 20, 0.5f};
    std::vector<float> img = make_image(p);
    // Variance before vs after diffusion.
    auto variance = [](const std::vector<float>& v) {
        double mean = 0.0;
        for (float x : v) mean += x;
        mean /= static_cast<double>(v.size());
        double var = 0.0;
        for (float x : v) var += (x - mean) * (x - mean);
        return var / static_cast<double>(v.size());
    };
    const double before = variance(img);
    golden(p, img);
    EXPECT_LT(variance(img), before);
    for (float x : img) {
        EXPECT_TRUE(std::isfinite(x));
        EXPECT_GT(x, 0.0f);
    }
}

struct Case {
    const char* device;
    Variant variant;
};

class SradVariants : public ::testing::TestWithParam<Case> {};

TEST_P(SradVariants, FunctionalRunVerifies) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = GetParam().device;
    cfg.variant = GetParam().variant;
    const AppResult r = run(cfg);
    EXPECT_GT(r.kernel_ms, 0.0);
    EXPECT_LE(r.error, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndVariants, SradVariants,
    ::testing::Values(Case{"rtx_2080", Variant::cuda},
                      Case{"a100", Variant::sycl_opt},
                      Case{"xeon_6128", Variant::sycl_base},
                      Case{"stratix_10", Variant::fpga_base},
                      Case{"stratix_10", Variant::fpga_opt},
                      Case{"agilex", Variant::fpga_opt}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.device) + "_" +
               to_string(info.param.variant);
    });

// Sec. 4's headline synthesis failure: eleven accessor objects exceed the
// Stratix 10; the pointer-passing refactor fits.
TEST(Srad, AccessorObjectDesignFailsPlacementOnStratix10) {
    const auto& s10 = perf::device_by_name("stratix_10");
    const auto bad = perf::estimate_design_resources(
        fpga_design_accessor_objects(s10, 1), s10);
    EXPECT_FALSE(bad.fits);
    const auto good =
        perf::estimate_design_resources(fpga_design(s10, 1), s10);
    EXPECT_TRUE(good.fits);
}

// Sec. 5.2 case 2: a 64x64 work-group at SIMD 2 beats 16x16 at SIMD 8 by ~4x
// -- wide SIMD on eleven shared arrays explodes resources and melts Fmax.
TEST(Srad, WorkGroupSimdTradeoff) {
    const auto& s10 = perf::device_by_name("stratix_10");
    auto k = fpga_design(s10, 2)[1];  // the single-task kernel: use nd proxy
    // Build the comparison on the ND-Range kernel descriptor directly.
    const params p = params::preset(2);
    (void)p;
    (void)k;
    // Large WG + narrow SIMD.
    perf::kernel_stats wide;
    wide.form = perf::kernel_form::nd_range;
    wide.global_items = 1 << 20;
    wide.wg_size = 64 * 64;
    wide.simd = 2;
    wide.fp32_ops = 30;
    wide.static_fp32_ops = 30;
    wide.local_arrays = 11;
    wide.local_mem_bytes = 11.0 * 64 * 64 * 4;
    wide.local_accesses = 8;
    wide.pattern = perf::local_pattern::banked;
    perf::kernel_stats narrow = wide;
    narrow.wg_size = 16 * 16;
    narrow.simd = 8;
    narrow.local_mem_bytes = 11.0 * 16 * 16 * 4;
    const double t_wide = perf::kernel_time_ns(wide, s10);
    const double t_narrow = perf::kernel_time_ns(narrow, s10);
    EXPECT_LT(t_wide, t_narrow);
}

TEST(Srad, AgilexRetunesWindow) {
    // Sec. 5.5: 16 -> 32 (we encode it as doubling the single-task unroll).
    const auto s10 = fpga_design(perf::device_by_name("stratix_10"), 1);
    const auto agx = fpga_design(perf::device_by_name("agilex"), 1);
    EXPECT_LT(s10[1].loops[0].unroll, agx[1].loops[0].unroll);
}

TEST(Srad, RunMatchesRegionSimulation) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "a100";
    cfg.variant = Variant::sycl_opt;
    const AppResult r = run(cfg);
    const auto& dev = perf::device_by_name(cfg.device);
    const auto est = simulate_region(region(cfg.variant, dev, cfg.size), dev,
                                     perf::runtime_kind::sycl);
    EXPECT_NEAR(r.kernel_ms, est.kernel_ms(), r.kernel_ms * 0.02);
}

}  // namespace
}  // namespace altis::apps::srad
