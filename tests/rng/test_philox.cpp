#include "rng/philox.hpp"

#include <gtest/gtest.h>

#include <set>

namespace altis::rng {
namespace {

// Known-answer vectors from the Random123 distribution's kat_vectors file
// (philox4x32 10 rounds).
TEST(Philox, KnownAnswerZeroInput) {
    const auto out = philox4x32::block({0u, 0u, 0u, 0u}, {0u, 0u});
    EXPECT_EQ(out[0], 0x6627e8d5u);
    EXPECT_EQ(out[1], 0xe169c58du);
    EXPECT_EQ(out[2], 0xbc57ac4cu);
    EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, KnownAnswerAllOnesInput) {
    const auto out = philox4x32::block(
        {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
        {0xffffffffu, 0xffffffffu});
    EXPECT_EQ(out[0], 0x408f276du);
    EXPECT_EQ(out[1], 0x41c83b0eu);
    EXPECT_EQ(out[2], 0xa20bc7c6u);
    EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(Philox, CounterModeIsStateless) {
    // Same counter+key always produce the same block: the property that lets
    // each work-item derive its stream from its global id.
    const auto a = philox4x32::block({7u, 8u, 9u, 10u}, {11u, 12u});
    const auto b = philox4x32::block({7u, 8u, 9u, 10u}, {11u, 12u});
    EXPECT_EQ(a, b);
}

TEST(Philox, AdjacentCountersDecorrelate) {
    const auto a = philox4x32::block({0u, 0u, 0u, 0u}, {1u, 0u});
    const auto b = philox4x32::block({1u, 0u, 0u, 0u}, {1u, 0u});
    int same = 0;
    for (int i = 0; i < 4; ++i)
        if (a[static_cast<std::size_t>(i)] == b[static_cast<std::size_t>(i)])
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Philox, SequentialDrawsConsumeWholeBlocks) {
    philox4x32 g(42);
    const auto first_block = philox4x32::block({0u, 0u, 0u, 0u}, {42u, 0u});
    EXPECT_EQ(g.next_u32(), first_block[0]);
    EXPECT_EQ(g.next_u32(), first_block[1]);
    EXPECT_EQ(g.next_u32(), first_block[2]);
    EXPECT_EQ(g.next_u32(), first_block[3]);
    const auto second_block = philox4x32::block({1u, 0u, 0u, 0u}, {42u, 0u});
    EXPECT_EQ(g.next_u32(), second_block[0]);
}

TEST(Philox, StreamsAreIndependent) {
    philox4x32 a(5, 0), b(5, 1);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u32() == b.next_u32()) ++equal;
    EXPECT_LT(equal, 4);
}

TEST(Philox, UniformMeanNearHalf) {
    philox4x32 g(2026);
    double sum = 0.0;
    constexpr int kN = 200000;
    for (int i = 0; i < kN; ++i) sum += g.next_float();
    EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Philox, DoublesInUnitInterval) {
    philox4x32 g(3);
    for (int i = 0; i < 10000; ++i) {
        const double d = g.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

}  // namespace
}  // namespace altis::rng
