#include "apps/common/region.hpp"

#include <algorithm>

#include "analyze/recorder.hpp"
#include "fault/inject.hpp"
#include "perf/model.hpp"
#include "perf/resource_model.hpp"
#include "resilience/cancel.hpp"
#include "sycl/error.hpp"

namespace altis::apps {

double timed_region::total_launches() const {
    double n = 0.0;
    for (const auto& k : kernels) n += k.count;
    for (const auto& g : dataflow)
        n += g.count * static_cast<double>(g.kernels.size());
    return n;
}

std::vector<perf::kernel_stats> timed_region::all_kernels() const {
    std::vector<perf::kernel_stats> all;
    for (const auto& k : kernels) all.push_back(k.stats);
    for (const auto& g : dataflow)
        all.insert(all.end(), g.kernels.begin(), g.kernels.end());
    return all;
}

timing_estimate simulate_region(const timed_region& region,
                                const perf::device_spec& dev,
                                perf::runtime_kind rt) {
    return simulate_region(region, dev, rt, trace::session::current());
}

timing_estimate simulate_region(const timed_region& region,
                                const perf::device_spec& dev,
                                perf::runtime_kind rt,
                                trace::session* trace) {
    namespace fault = altis::fault;
    timing_estimate t;

    double design_fmax = 0.0;
    if (dev.is_fpga()) {
        const auto design =
            perf::estimate_design_resources(region.all_kernels(), dev);
        design_fmax = design.fmax_mhz;
    }
    auto one_kernel_ns = [&](const perf::kernel_stats& k) {
        return dev.is_fpga() ? perf::fpga_kernel_time_ns(k, dev, design_fmax)
                             : perf::kernel_time_ns(k, dev);
    };

    const double launch = perf::launch_overhead_ns(rt, dev);

    // Span emission walks one simulated cursor through the same charges the
    // estimate accumulates; each slot is one aggregated span (invocations =
    // slot count) so huge regions stay inspectable without emitting
    // thousands of identical events.
    double cursor = 0.0;
    if (trace != nullptr) {
        if (trace->device() == nullptr) trace->bind_device(dev);
        cursor = trace->last_end_ns();
        trace->begin_region(region.name, cursor);
    }
    auto emit = [&](trace::span s) {
        if (trace != nullptr) trace->record(std::move(s));
    };

    // The analytic path has no queue to capture, but the perf-lint rules
    // only need the descriptors: hand each one to the current recorder (if
    // any) at the same spot where its cost is charged.
    auto* sanitize = analyze::recorder::current();
    auto record_stats = [&](const perf::kernel_stats& k) {
        if (sanitize != nullptr) sanitize->record_simulated_kernel(k, dev);
    };

    // The analytic path has no real queue/buffers/pipes, so the fault plan's
    // checkpoints live here instead: the same op kinds fire at the
    // equivalent spots of the simulated schedule (device at region entry,
    // alloc per region, launch per kernel slot, pipe stalls against dataflow
    // kernel names, transfer at the PCIe charge), and a firing checkpoint
    // throws out of the simulation just as the functional runtime would.
    // The failure is recorded as a zero-length failed span and the region
    // span is closed before rethrowing, so a faulted config still leaves a
    // well-formed trace.
    try {
        resilience::checkpoint();
        fault::maybe_inject(fault::op_kind::device, dev.name);
        fault::maybe_inject(fault::op_kind::alloc, region.name,
                            "region working set");

        if (region.include_setup) {
            const double setup = perf::setup_overhead_ns(rt, dev);
            t.non_kernel_ns += setup;
            emit({trace::span_kind::setup, "setup", cursor, cursor + setup});
            cursor += setup;
        }

        for (const auto& slot : region.kernels) {
            resilience::checkpoint();
            fault::maybe_inject(fault::op_kind::launch, slot.stats.name);
            record_stats(slot.stats);
            const double per = one_kernel_ns(slot.stats);
            t.kernel_ns += per * slot.count;
            t.non_kernel_ns += launch * slot.count;
            emit({trace::span_kind::overhead, "launch", cursor,
                  cursor + launch * slot.count});
            cursor += launch * slot.count;
            if (trace != nullptr)
                trace->record_kernel(slot.stats, cursor,
                                     cursor + per * slot.count, 0, slot.count);
            cursor += per * slot.count;
        }
        for (const auto& group : region.dataflow) {
            // An injected pipe stall wedges the whole group: report it the
            // way the functional watchdog would, as a dataflow_error naming
            // the blocked kernels.
            std::vector<std::string> stalled;
            for (const auto& k : group.kernels) {
                fault::maybe_inject(fault::op_kind::launch, k.name);
                if (fault::should_stall_pipe(k.name)) stalled.push_back(k.name);
            }
            if (!stalled.empty()) {
                std::string msg =
                    "dataflow deadlock: kernel(s) blocked on pipes "
                    "[injected stall]:";
                for (const auto& k : stalled) msg += " " + k;
                throw syclite::dataflow_error(msg, std::move(stalled));
            }
            double worst = 0.0;
            for (const auto& k : group.kernels) {
                record_stats(k);
                worst = std::max(worst, one_kernel_ns(k));
            }
            t.kernel_ns += worst * group.count;
            const double group_launch = launch * group.count *
                                        static_cast<double>(group.kernels.size());
            t.non_kernel_ns += group_launch;
            emit({trace::span_kind::overhead, "launch", cursor,
                  cursor + group_launch});
            cursor += group_launch;
            if (trace != nullptr) {
                std::string label = "dataflow";
                for (const auto& k : group.kernels) label += ":" + k.name;
                trace->record({trace::span_kind::dataflow_group, label, cursor,
                               cursor + worst * group.count});
                int lane = 1;
                for (const auto& k : group.kernels)
                    trace->record_kernel(
                        k, cursor, cursor + one_kernel_ns(k) * group.count,
                        lane++, group.count);
            }
            cursor += worst * group.count;
        }

        if (region.transfer_calls > 0.0) {
            fault::maybe_inject(
                fault::op_kind::transfer, region.name,
                std::to_string(static_cast<long long>(region.transfer_bytes)) +
                    " bytes");
            // Amortize the payload across the calls; transfer_ns adds the
            // fixed per-call cost itself.
            const double per_call = region.transfer_bytes / region.transfer_calls;
            const double total =
                perf::transfer_ns(rt, dev, per_call) * region.transfer_calls;
            t.non_kernel_ns += total;
            trace::span s{trace::span_kind::transfer, "transfers", cursor,
                          cursor + total};
            s.counters.bytes = region.transfer_bytes;
            s.counters.invocations = region.transfer_calls;
            emit(std::move(s));
            cursor += total;
        }
        {
            const double sync = perf::sync_overhead_ns(rt, dev) * region.syncs;
            t.non_kernel_ns += sync;
            emit({trace::span_kind::sync, "sync", cursor, cursor + sync});
            cursor += sync;
        }
        if (region.extra_non_kernel_ns > 0.0) {
            t.non_kernel_ns += region.extra_non_kernel_ns;
            emit({trace::span_kind::overhead, "library overhead", cursor,
                  cursor + region.extra_non_kernel_ns});
            cursor += region.extra_non_kernel_ns;
        }
    } catch (const std::exception& e) {
        if (trace != nullptr) {
            trace::span s{trace::span_kind::overhead, e.what(), cursor, cursor};
            s.status = trace::span_status::failed;
            trace->record(std::move(s));
            trace->end_region(cursor);
        }
        throw;
    }

    // An unsynchronized timed region only observes submission cost: the
    // kernels are still in flight when the timer stops (FDTD2D's original
    // CUDA mismeasurement, Sec. 3.3). The kernel spans stay on the trace --
    // the work happens even if the host timer misses it.
    if (!region.synchronized) t.kernel_ns = 0.0;

    if (trace != nullptr) trace->end_region(cursor);

    return t;
}

}  // namespace altis::apps
