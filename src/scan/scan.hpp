// Prefix-sum implementations and their device descriptors. The paper tells a
// three-part scan story for the `Where` application (Sec. 3.3, 5.3,
// Listing 2):
//  1) CUDA's library scan (CUB-based) is the baseline;
//  2) DPCT migrates it to oneDPL's scan, which is ~50% slower on RTX 2080;
//  3) oneDPL has no FPGA-optimized scan, so a custom unrolled Single-Task
//     scan is written for FPGAs (up to 100x faster there than oneDPL's
//     GPU-shaped scan).
// All three are implemented: serial reference, a blocked-parallel scan with
// the multi-pass structure of the library scans, and the Listing-2 kernel.
#pragma once

#include <cstddef>
#include <span>

#include "perf/kernel_stats.hpp"
#include "sycl/thread_pool.hpp"

namespace altis::scan {

/// Exclusive serial scan; out[0] = 0. out may alias in.
void exclusive_scan_serial(std::span<const int> in, std::span<int> out);

/// Inclusive serial scan. out may alias in.
void inclusive_scan_serial(std::span<const int> in, std::span<int> out);

/// Blocked three-phase exclusive scan (local scans, block-sum scan, offset
/// add) -- the structure oneDPL/CUB use on GPUs. Functionally parallel via
/// the thread pool. out must not alias in.
void exclusive_scan_blocked(std::span<const int> in, std::span<int> out,
                            syclite::thread_pool& pool,
                            std::size_t block = 4096);

/// The custom FPGA scan of Listing 2: a single pipelined loop carrying the
/// running sum, unrolled by 2. Semantically exclusive_scan over `results`
/// where prefix[0] = 0 and prefix[i] = prefix[i-1] + results[i] (note: the
/// paper's kernel skips results[0], reproduced faithfully).
void exclusive_scan_fpga_custom(std::span<const int> results,
                                std::span<int> prefix);

// ---- device descriptors for the three implementations ----

/// CUDA library scan on a GPU: two bandwidth-efficient passes.
[[nodiscard]] perf::kernel_stats stats_scan_cuda(std::size_t n);

/// oneDPL scan: same structure but ~3 passes over the data and extra
/// work-item bookkeeping -- the source of the 50% GPU slowdown.
[[nodiscard]] perf::kernel_stats stats_scan_onedpl(std::size_t n);

/// Listing-2 Single-Task scan for FPGAs: II=1, unroll 2, one pass.
[[nodiscard]] perf::kernel_stats stats_scan_fpga_custom(std::size_t n);

}  // namespace altis::scan
