// HB-precise sanitize passes over the observed-access shadow store:
//
//   ALS-R1  two overlapping accesses, >= 1 write, by different actors, with
//           no happens-before path in either direction (the precise
//           successor of the ALS-H1/H2 heuristics -- a pipe edge or a
//           wait() that really orders the pair exonerates it).
//   ALS-R2  pipe-ordered but round-skewed: a receive straddles a multiple
//           of the declared items_per_round, so the consumer mixes two
//           steady-state rounds in one read.
//   ALS-D1  declaration drift: a kernel's observed accesses leave the union
//           of everything its command group declared (accessors, uses_usm)
//           -- the lie that blinds every declaration-based pass.
//
// The store must be finalized before calling (open per-thread runs flushed).
#pragma once

#include "analyze/findings.hpp"
#include "analyze/graph.hpp"
#include "analyze/shadow.hpp"

namespace altis::analyze {

void lint_races(const shadow::store& s, const command_graph& g, report& r);

}  // namespace altis::analyze
