#include "core/option_parser.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <ostream>

namespace altis {

void OptionParser::add_option(const std::string& long_name,
                              const std::string& default_value,
                              const std::string& help) {
    if (find(long_name) != nullptr)
        throw OptionError("duplicate option: --" + long_name);
    options_.push_back(Option{long_name, default_value, help, false, false});
}

void OptionParser::add_flag(const std::string& long_name, const std::string& help) {
    if (find(long_name) != nullptr)
        throw OptionError("duplicate option: --" + long_name);
    options_.push_back(Option{long_name, "0", help, true, false});
}

OptionParser::Option* OptionParser::find(const std::string& name) {
    for (auto& o : options_)
        if (o.name == name) return &o;
    return nullptr;
}

const OptionParser::Option* OptionParser::find(const std::string& name) const {
    for (const auto& o : options_)
        if (o.name == name) return &o;
    return nullptr;
}

bool OptionParser::parse(int argc, const char* const* argv, std::ostream& out) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            print_usage(out);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string inline_value;
        bool has_inline = false;
        if (auto eq = name.find('='); eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_inline = true;
        }
        Option* opt = find(name);
        if (opt == nullptr) throw OptionError("unknown option: --" + name);
        opt->seen = true;
        if (opt->is_flag) {
            if (has_inline) throw OptionError("flag --" + name + " takes no value");
            opt->value = "1";
        } else if (has_inline) {
            opt->value = inline_value;
        } else {
            if (i + 1 >= argc)
                throw OptionError("option --" + name + " requires a value");
            opt->value = argv[++i];
        }
    }
    return true;
}

std::string OptionParser::get_string(const std::string& name) const {
    const Option* opt = find(name);
    if (opt == nullptr) throw OptionError("option not registered: --" + name);
    return opt->value;
}

std::int64_t OptionParser::get_int(const std::string& name) const {
    const std::string v = get_string(name);
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
        throw OptionError("option --" + name + " expects an integer, got: " + v);
    if (errno == ERANGE)
        throw OptionError("option --" + name + " value out of range: " + v);
    return parsed;
}

double OptionParser::get_double(const std::string& name) const {
    const std::string v = get_string(name);
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        throw OptionError("option --" + name + " expects a number, got: " + v);
    if (errno == ERANGE && !std::isfinite(parsed))
        throw OptionError("option --" + name + " value out of range: " + v);
    return parsed;
}

bool OptionParser::get_flag(const std::string& name) const {
    return get_string(name) == "1";
}

void OptionParser::print_usage(std::ostream& out) const {
    out << "options:\n";
    for (const auto& o : options_) {
        out << "  --" << o.name;
        if (!o.is_flag) out << " <value> (default: " << o.value << ")";
        out << "\n      " << o.help << '\n';
    }
}

void add_standard_options(OptionParser& parser) {
    parser.add_option("size", "1", "problem size preset: 1, 2 or 3");
    parser.add_option("device", "xeon_6128",
                      "target device: xeon_6128, rtx_2080, a100, max_1100, "
                      "stratix_10, agilex");
    parser.add_option("passes", "3", "number of measured trials");
    parser.add_flag("verbose", "print per-trial details");
    parser.add_flag("quiet", "suppress the summary table");
}

}  // namespace altis
