#include "analyze/hazard.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace altis::analyze {

namespace {

std::string range_str(const mem_access& a) {
    std::ostringstream os;
    os << a.base << "+" << a.bytes << "B";
    return os.str();
}

const char* conflict_name(const mem_access& a, const mem_access& b) {
    if (writes(a.mode) && writes(b.mode)) return "write/write";
    return writes(a.mode) ? "write/read" : "read/write";
}

/// Union-find over the kernels of one dataflow group, connected when they
/// share a pipe identity. Pipe-connected kernels are treated as internally
/// synchronized (the channel sequences their rounds).
class pipe_connectivity {
public:
    explicit pipe_connectivity(const std::vector<const node*>& kernels) {
        parent_.resize(kernels.size());
        for (std::size_t i = 0; i < parent_.size(); ++i) parent_[i] = i;
        std::map<const void*, std::size_t> first_user;
        for (std::size_t i = 0; i < kernels.size(); ++i)
            for (const pipe_endpoint& p : kernels[i]->pipes) {
                const auto [it, fresh] = first_user.emplace(p.pipe, i);
                if (!fresh) unite(it->second, i);
            }
    }

    [[nodiscard]] bool connected(std::size_t a, std::size_t b) {
        return find(a) == find(b);
    }

private:
    std::size_t find(std::size_t x) {
        while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
        return x;
    }
    void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

    std::vector<std::size_t> parent_;
};

void lint_group_conflicts(const command_graph& g, report& out) {
    // Collect kernels per (queue, group).
    std::map<std::pair<int, int>, std::vector<const node*>> groups;
    for (const node& n : g.nodes)
        if (n.kind == node_kind::kernel && !n.simulated && n.group >= 0)
            groups[{n.queue, n.group}].push_back(&n);

    for (const auto& [key, kernels] : groups) {
        pipe_connectivity conn(kernels);
        for (std::size_t i = 0; i < kernels.size(); ++i)
            for (std::size_t j = i + 1; j < kernels.size(); ++j) {
                if (conn.connected(i, j)) continue;
                for (const mem_access& a : kernels[i]->accesses)
                    for (const mem_access& b : kernels[j]->accesses) {
                        if (!a.overlaps(b)) continue;
                        if (!writes(a.mode) && !writes(b.mode)) continue;
                        out.add(make_finding(
                            "ALS-H1",
                            kernels[i]->kernel + " & " + kernels[j]->kernel,
                            range_str(a),
                            std::string(conflict_name(a, b)) +
                                " conflict between concurrent kernels with "
                                "no pipe between them"));
                    }
            }
    }
}

void lint_host_transfers(const command_graph& g, report& out) {
    // Per queue: kernel accesses in flight since the last wait().
    std::map<int, std::vector<std::pair<const node*, const mem_access*>>>
        in_flight;
    for (const node& n : g.nodes) {
        if (n.simulated) continue;
        // Out-of-order nodes: the log position is a submission order, not an
        // execution order, so the in-flight window is meaningless. Host/device
        // overlap on OOO queues is covered by the HB-precise ALS-R1 pass over
        // the graph's real edges.
        if (n.ooo && n.kind != node_kind::wait) continue;
        switch (n.kind) {
            case node_kind::kernel:
                for (const mem_access& a : n.accesses)
                    if (a.kind == mem_kind::buffer)
                        in_flight[n.queue].emplace_back(&n, &a);
                break;
            case node_kind::wait:
                in_flight[n.queue].clear();
                break;
            case node_kind::transfer_in:
            case node_kind::transfer_out: {
                const mem_access& t = n.accesses.front();
                for (const auto& [k, a] : in_flight[n.queue]) {
                    if (!t.overlaps(*a)) continue;
                    // Host read needs the kernel's writes finished; a host
                    // write additionally races with kernel reads.
                    if (!writes(a->mode) && n.kind == node_kind::transfer_out)
                        continue;
                    out.add(make_finding(
                        "ALS-H2", k->kernel, range_str(t),
                        std::string(n.kind == node_kind::transfer_out
                                        ? "host read of"
                                        : "host write to") +
                            " memory " + to_string(a->mode) + " by '" +
                            k->kernel + "' with no wait() in between"));
                }
                break;
            }
            default: break;
        }
    }
}

void lint_usm(const command_graph& g, report& out) {
    struct region {
        const char* base;
        std::size_t bytes;
        std::uint64_t generation;  ///< allocator generation (0: untagged)
    };
    std::vector<region> live;
    std::vector<region> freed;

    const auto contains = [](const region& r, const mem_access& a) {
        const auto* p = static_cast<const char*>(a.base);
        return p >= r.base && p + a.bytes <= r.base + r.bytes;
    };
    const auto touches = [](const region& r, const mem_access& a) {
        const auto* p = static_cast<const char*>(a.base);
        return p < r.base + r.bytes && r.base < p + a.bytes;
    };
    // The pool recycles addresses, so a bare `0x...` object label could
    // alias two logical allocations onto one finding fingerprint (pointers
    // canonicalize to `0x?`; the `#g<N>` suffix is not hex and survives).
    const auto gen_tag = [](std::uint64_t generation) {
        return generation == 0 ? std::string()
                               : "#g" + std::to_string(generation);
    };

    for (const node& n : g.nodes) {
        if (n.simulated) continue;
        if (n.kind == node_kind::usm_alloc) {
            const mem_access& a = n.accesses.front();
            live.push_back(
                {static_cast<const char*>(a.base), a.bytes, a.generation});
            // A reused address shadows any older freed record.
            std::erase_if(freed, [&](const region& r) {
                return r.base == a.base;
            });
        } else if (n.kind == node_kind::usm_free) {
            const mem_access& a = n.accesses.front();
            bool found = false;
            for (std::size_t i = 0; i < live.size(); ++i)
                if (live[i].base == a.base) {
                    freed.push_back(live[i]);
                    live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
                    found = true;
                    break;
                }
            if (!found) {
                std::ostringstream os;
                os << a.base;
                out.add(make_finding("ALS-H4", "usm_free",
                                     os.str() + gen_tag(a.generation),
                                     "free of a pointer that is not a live "
                                     "USM allocation (double free?)"));
            }
        } else if (n.kind == node_kind::kernel) {
            for (const mem_access& a : n.accesses) {
                if (a.kind != mem_kind::usm) continue;
                bool ok = false;
                for (const region& r : live)
                    if (contains(r, a)) ok = true;
                if (ok) continue;
                std::uint64_t freed_gen = 0;
                bool after_free = false;
                for (const region& r : freed)
                    if (touches(r, a)) {
                        after_free = true;
                        freed_gen = r.generation;
                    }
                out.add(make_finding(
                    "ALS-H4", n.kernel, range_str(a) + gen_tag(freed_gen),
                    after_free
                        ? "kernel uses a USM range that was already freed"
                        : "kernel uses a USM range with no live allocation"));
            }
        }
    }
}

void lint_redundant_waits(const command_graph& g, report& out) {
    std::map<int, std::size_t> work_since_wait;
    for (const node& n : g.nodes) {
        if (n.simulated) continue;
        if (n.kind == node_kind::wait) {
            if (n.ooo) {
                // Graph queues carry the truth on the node itself: `pending`
                // counts the join's incoming edges. An edge-free join is a
                // full-queue barrier that ordered nothing.
                if (n.pending == 0)
                    out.add(make_finding(
                        "ALS-L5", "wait", "queue #" + std::to_string(n.queue),
                        "graph join with no commands pending since the "
                        "previous synchronization; wait on the producing "
                        "command's event (event::wait()) or drop the wait()"));
            } else if (work_since_wait[n.queue] == 0) {
                out.add(make_finding("ALS-L5", "wait",
                                     "queue #" + std::to_string(n.queue),
                                     "wait() with no commands submitted since "
                                     "the previous synchronization"));
            }
            work_since_wait[n.queue] = 0;
        } else if (n.kind != node_kind::usm_alloc &&
                   n.kind != node_kind::usm_free) {
            ++work_since_wait[n.queue];
        }
    }
}

}  // namespace

void lint_hazards(const command_graph& g, report& out) {
    lint_group_conflicts(g, out);
    lint_host_transfers(g, out);
    lint_usm(g, out);
    lint_redundant_waits(g, out);
}

}  // namespace altis::analyze
