// Transfer fast path: large host<->device copies and buffer init copies fan
// out through the syclite thread pool as chunked parallel memcpy jobs
// (docs/PERFORMANCE.md "Memory subsystem"). The layer is wall-clock only --
// the simulated PCIe timeline (queue::annotate_transfer) is charged exactly
// as before, independent of how the functional bytes move.
//
// altis::mem sits below the syclite runtime, so it cannot call the thread
// pool directly; the pool installs itself as the parallel runner when the
// first thread_pool (or queue) is constructed. Without a runner -- or below
// the threshold -- copy_bytes degrades to one memcpy.
#pragma once

#include <cstddef>

namespace altis::mem {

/// Runs fn(ctx, i) for i in [0, n), possibly in parallel; must not return
/// until every invocation completed.
using parallel_runner = void (*)(std::size_t n, void (*fn)(void*, std::size_t),
                                 void* ctx);

/// Installs (or clears, with nullptr) the process-wide runner. Idempotent;
/// called by syclite::thread_pool's constructor. Does not return until every
/// copy_bytes call in flight through the *previous* runner has completed, so
/// disarming the bridge before pool teardown cannot race an async graph
/// transfer node still copying through it.
void set_parallel_runner(parallel_runner r);
[[nodiscard]] parallel_runner parallel_runner_installed();

/// Copies below this many bytes stay a single memcpy. Defaults to 4 MiB;
/// $ALTIS_MEM_PCOPY_MIN (bytes, read once) overrides.
[[nodiscard]] std::size_t parallel_copy_threshold();

/// memcpy with the parallel fast path: chunks of 2 MiB are claimed by pool
/// workers when `bytes` reaches the threshold and a runner is installed.
/// Ranges must not overlap (cudaMemcpy semantics, like the copy_to_device /
/// copy_from_device calls this backs).
void copy_bytes(void* dst, const void* src, std::size_t bytes);

}  // namespace altis::mem
