#include "core/registry.hpp"

#include <gtest/gtest.h>

#include "apps/common/app.hpp"
#include "core/result_database.hpp"

namespace altis {
namespace {

TEST(Registry, AllAppsRegisteredOnce) {
    apps::register_all_apps();
    apps::register_all_apps();  // idempotent
    auto& reg = Registry::instance();
    EXPECT_GE(reg.apps().size(), 1u);
    const AppInfo* m = reg.find("mandelbrot");
    ASSERT_NE(m, nullptr);
    EXPECT_FALSE(m->variants.empty());
}

TEST(Registry, FindUnknownReturnsNull) {
    EXPECT_EQ(Registry::instance().find("no-such-app"), nullptr);
}

TEST(Registry, VariantNamesRoundTrip) {
    EXPECT_STREQ(to_string(Variant::cuda), "cuda");
    EXPECT_STREQ(to_string(Variant::sycl_base), "sycl_base");
    EXPECT_STREQ(to_string(Variant::sycl_opt), "sycl_opt");
    EXPECT_STREQ(to_string(Variant::fpga_base), "fpga_base");
    EXPECT_STREQ(to_string(Variant::fpga_opt), "fpga_opt");
}

TEST(Registry, RegisteredRunReportsMetrics) {
    apps::register_all_apps();
    const AppInfo* m = Registry::instance().find("mandelbrot");
    ASSERT_NE(m, nullptr);
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "rtx_2080";
    cfg.variant = Variant::sycl_opt;
    cfg.passes = 2;
    ResultDatabase db;
    m->run(cfg, db);
    const Result* r =
        db.find("kernel_time", "size=1,device=rtx_2080,variant=sycl_opt");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->values.size(), 2u);
    EXPECT_GT(r->mean(), 0.0);
}

TEST(AppContract, VariantDeviceMatrix) {
    using apps::variant_allowed;
    const auto& rtx = perf::device_by_name("rtx_2080");
    const auto& max1100 = perf::device_by_name("max_1100");
    const auto& cpu = perf::device_by_name("xeon_6128");
    const auto& s10 = perf::device_by_name("stratix_10");

    EXPECT_TRUE(variant_allowed(Variant::cuda, rtx));
    EXPECT_FALSE(variant_allowed(Variant::cuda, max1100));  // no CUDA on PVC
    EXPECT_FALSE(variant_allowed(Variant::cuda, cpu));
    EXPECT_TRUE(variant_allowed(Variant::sycl_opt, cpu));
    EXPECT_FALSE(variant_allowed(Variant::sycl_opt, s10));
    EXPECT_TRUE(variant_allowed(Variant::fpga_opt, s10));
    EXPECT_FALSE(variant_allowed(Variant::fpga_opt, rtx));
}

}  // namespace
}  // namespace altis
