// Model descriptors for CFD FP32/FP64. Per iteration the solver launches
// copy + step_factor + RK3 x (flux + time_step) = 8 kernels; fluxes dominate.
// FPGA tuning per Sec. 5.1/5.5: pipes to decouple memory access, compute
// units 4x (S10) -> 8x (Agilex) for FP32 but only 2x for FP64 (resources),
// SIMD 2 for FP32 (memory-bandwidth capped), 2x -> 1x for FP64.
#include "apps/cfd/cfd.hpp"

namespace altis::apps::cfd {
namespace detail {

namespace {

double real_bytes(bool fp64) { return fp64 ? 8.0 : 4.0; }

void fp_cost(perf::kernel_stats& k, bool fp64, double ops) {
    if (fp64)
        k.fp64_ops = ops;
    else
        k.fp32_ops = ops;
}

void static_fp_cost(perf::kernel_stats& k, bool fp64, double ops) {
    if (fp64)
        k.static_fp64_ops = ops;
    else
        k.static_fp32_ops = ops;
}

struct tuning {
    int cus;
    int simd;
};

tuning fpga_tuning(bool fp64, const perf::device_spec& dev) {
    const bool s10 = dev.name == "stratix_10";
    if (fp64) return s10 ? tuning{2, 2} : tuning{2, 1};  // SIMD 2x -> 1x
    return s10 ? tuning{4, 2} : tuning{8, 2};            // CUs 4x -> 8x
}

}  // namespace

perf::kernel_stats stats_copy(const params& p, bool fp64) {
    perf::kernel_stats k;
    k.name = "cfd_copy";
    k.global_items = static_cast<double>(p.nel()) * kVars;
    k.wg_size = 192;
    k.int_ops = 2.0;
    k.bytes_read = real_bytes(fp64);
    k.bytes_written = real_bytes(fp64);
    k.static_int_ops = 4;
    k.accessor_args = 2;
    k.control_complexity = 1;
    return k;
}

perf::kernel_stats stats_step_factor(const params& p, bool fp64, Variant v,
                                     const perf::device_spec& dev) {
    perf::kernel_stats k;
    k.name = "cfd_step_factor";
    k.global_items = static_cast<double>(p.nel());
    k.wg_size = dev.is_fpga() ? 128 : 192;
    fp_cost(k, fp64, 20.0);
    k.sfu_ops = 2.0;  // sqrt + divide
    k.int_ops = 10.0;
    k.bytes_read = kVars * real_bytes(fp64);
    k.bytes_written = real_bytes(fp64);
    static_fp_cost(k, fp64, 20.0);
    k.static_int_ops = 14;
    k.static_branches = 2;
    k.accessor_args = 2;
    k.control_complexity = 2;
    if (v == Variant::fpga_opt) {
        const tuning t = fpga_tuning(fp64, dev);
        k.simd = t.simd;
        k.replication = t.cus;
        k.args_restrict = true;
    }
    return k;
}

perf::kernel_stats stats_flux(const params& p, bool fp64, Variant v,
                              const perf::device_spec& dev) {
    perf::kernel_stats k;
    k.name = "cfd_compute_flux";
    k.global_items = static_cast<double>(p.nel());
    k.wg_size = dev.is_fpga() ? 128 : 192;
    fp_cost(k, fp64, kNeighbors * 130.0 + 10.0);
    k.sfu_ops = kNeighbors * 3.0;  // two sqrt + divide per face
    k.int_ops = kNeighbors * 10.0;
    k.bytes_read = (kNeighbors * (kVars + 2.0) + kVars) * real_bytes(fp64) +
                   kNeighbors * 4.0;
    k.bytes_written = kVars * real_bytes(fp64);
    static_fp_cost(k, fp64, 70.0);
    k.static_int_ops = 50;
    k.static_branches = 10;
    k.accessor_args = 5;
    k.control_complexity = 3;
    k.divergence = 0.1;  // boundary faces
    if (v == Variant::cuda && fp64) {
        // Sec. 3.3 / Fig. 2: the unrolled CUDA FP64 flux spills registers
        // and re-computes spilled subexpressions, which is why the migrated
        // SYCL runs ~1.5x *faster* than CUDA at every size.
        k.fp64_ops *= 1.5;
        k.int_ops *= 1.5;
    }
    if (v == Variant::sycl_base) {
        // DPCT keeps the #pragma unroll: 3x regression until removed.
        k.int_ops *= 2.0;
        if (!fp64) k.fp32_ops *= 1.6;
        else k.fp64_ops *= 1.2;
    }
    if (v == Variant::fpga_opt) {
        const tuning t = fpga_tuning(fp64, dev);
        k.simd = t.simd;
        k.replication = t.cus;
        k.args_restrict = true;
        // Pipes decouple the variable loads from the flux datapath
        // (Sec. 5.4): redundant global reads across the RK substeps stream
        // on chip instead. FP64 buffers twice the bytes, so it saves less.
        k.reads_pipe = true;
        k.bytes_read *= fp64 ? 0.6 : 0.3;
    }
    return k;
}

perf::kernel_stats stats_time_step(const params& p, bool fp64, Variant v,
                                   const perf::device_spec& dev) {
    perf::kernel_stats k;
    k.name = "cfd_time_step";
    k.global_items = static_cast<double>(p.nel());
    k.wg_size = dev.is_fpga() ? 128 : 192;
    fp_cost(k, fp64, kVars * 3.0);
    k.int_ops = kVars * 3.0;
    k.bytes_read = (2.0 * kVars + 1.0) * real_bytes(fp64);
    k.bytes_written = kVars * real_bytes(fp64);
    static_fp_cost(k, fp64, kVars * 3.0);
    k.static_int_ops = 18;
    k.static_branches = 3;
    k.accessor_args = 4;
    k.control_complexity = 1;
    if (v == Variant::fpga_opt) {
        const tuning t = fpga_tuning(fp64, dev);
        k.simd = t.simd;
        k.replication = t.cus;
        k.args_restrict = true;
        k.writes_pipe = true;
    }
    return k;
}

}  // namespace detail

timed_region region(bool fp64, Variant v, const perf::device_spec& dev,
                    int size) {
    const params p = params::preset(size);
    timed_region r;
    r.name = std::string("cfd/") + to_string(v) + "/size" + std::to_string(size);
    r.include_setup = false;  // timed region excludes one-time setup (warm-up)
    const double rb = fp64 ? 8.0 : 4.0;
    r.transfer_bytes = static_cast<double>(p.nel()) * kVars * rb * 2.0 +
                       static_cast<double>(p.nel()) * kNeighbors * 12.0;
    r.transfer_calls = 4.0;
    r.syncs = 1.0;
    const double iters = static_cast<double>(p.iterations);
    r.kernels.push_back({detail::stats_copy(p, fp64), iters});
    r.kernels.push_back({detail::stats_step_factor(p, fp64, v, dev), iters});
    // Pipes' effect is captured in the flux kernel's reduced global traffic
    // (reads_pipe + bytes_read scaling); the launch sequence stays serial
    // because time_step consumes the fluxes of the same RK substep.
    r.kernels.push_back({detail::stats_flux(p, fp64, v, dev),
                         iters * kRkSteps});
    r.kernels.push_back({detail::stats_time_step(p, fp64, v, dev),
                         iters * kRkSteps});
    return r;
}

std::vector<perf::kernel_stats> fpga_design(bool fp64,
                                            const perf::device_spec& dev,
                                            int size) {
    const params p = params::preset(size);
    return {detail::stats_copy(p, fp64),
            detail::stats_step_factor(p, fp64, Variant::fpga_opt, dev),
            detail::stats_flux(p, fp64, Variant::fpga_opt, dev),
            detail::stats_time_step(p, fp64, Variant::fpga_opt, dev)};
}

}  // namespace altis::apps::cfd
