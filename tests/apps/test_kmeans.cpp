#include "apps/kmeans/kmeans.hpp"

#include <gtest/gtest.h>

namespace altis::apps::kmeans {
namespace {

params tiny_params() {
    params p;
    p.n = 512;
    p.d = 4;
    p.k = 4;
    p.iterations = 12;
    return p;
}

TEST(Kmeans, GoldenSeparatesSyntheticBlobs) {
    const params p = tiny_params();
    const dataset data = make_dataset(p);
    const clustering c = golden(p, data);
    // Points were generated as k blobs on a line; after Lloyd the centers
    // must be distinct and each cluster non-empty.
    std::vector<int> counts(p.k, 0);
    for (int a : c.assignment) {
        ASSERT_GE(a, 0);
        ASSERT_LT(a, static_cast<int>(p.k));
        counts[static_cast<std::size_t>(a)]++;
    }
    for (int cnt : counts) EXPECT_GT(cnt, 0);
}

TEST(Kmeans, GoldenIsDeterministic) {
    const params p = tiny_params();
    const dataset data = make_dataset(p);
    const clustering a = golden(p, data);
    const clustering b = golden(p, data);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.centers, b.centers);
}

struct Case {
    const char* device;
    Variant variant;
};

class KmeansVariants : public ::testing::TestWithParam<Case> {};

TEST_P(KmeansVariants, FunctionalRunVerifies) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = GetParam().device;
    cfg.variant = GetParam().variant;
    const AppResult r = run(cfg);
    EXPECT_GT(r.kernel_ms, 0.0);
    EXPECT_LE(r.error, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndVariants, KmeansVariants,
    ::testing::Values(Case{"rtx_2080", Variant::cuda},
                      Case{"a100", Variant::sycl_opt},
                      Case{"xeon_6128", Variant::sycl_base},
                      Case{"stratix_10", Variant::fpga_base},
                      Case{"stratix_10", Variant::fpga_opt},
                      Case{"agilex", Variant::fpga_opt}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.device) + "_" +
               to_string(info.param.variant);
    });

// Fig. 4: pipes + Single-Task fusion give KMeans its ~500x FPGA speedup.
TEST(Kmeans, PipesDeliverLargeFpgaSpeedup) {
    const auto& s10 = perf::device_by_name("stratix_10");
    const auto base = simulate_region(region(Variant::fpga_base, s10, 3), s10,
                                      perf::runtime_kind::sycl);
    const auto opt = simulate_region(region(Variant::fpga_opt, s10, 3), s10,
                                     perf::runtime_kind::sycl);
    const double speedup = base.total_ms() / opt.total_ms();
    EXPECT_GT(speedup, 100.0);
    EXPECT_LT(speedup, 2000.0);
}

TEST(Kmeans, OptimizedDesignIsOneDataflowLaunch) {
    const auto& s10 = perf::device_by_name("stratix_10");
    const timed_region r = region(Variant::fpga_opt, s10, 2);
    EXPECT_TRUE(r.kernels.empty());
    ASSERT_EQ(r.dataflow.size(), 1u);
    EXPECT_EQ(r.dataflow[0].kernels.size(), 2u);  // mapCenters + resetAccFin
    // Only mapCenters moves bulk data to/from global memory (Fig. 3b).
    const auto& map = r.dataflow[0].kernels[0];
    const auto& raf = r.dataflow[0].kernels[1];
    EXPECT_GT(map.bytes_read, raf.bytes_read * 100.0);
    EXPECT_TRUE(map.writes_pipe);
    EXPECT_TRUE(raf.reads_pipe);
}

TEST(Kmeans, BaselineLaunchesFourKernelsPerIteration) {
    const auto& s10 = perf::device_by_name("stratix_10");
    const timed_region r = region(Variant::fpga_base, s10, 1);
    ASSERT_EQ(r.kernels.size(), 4u);
    const double iters = static_cast<double>(params::preset(1).iterations);
    for (const auto& slot : r.kernels) EXPECT_DOUBLE_EQ(slot.count, iters);
}

TEST(Kmeans, RunMatchesRegionSimulation) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "stratix_10";
    cfg.variant = Variant::fpga_opt;
    const AppResult r = run(cfg);
    const auto& dev = perf::device_by_name(cfg.device);
    const auto est = simulate_region(region(cfg.variant, dev, cfg.size), dev,
                                     perf::runtime_kind::sycl);
    EXPECT_NEAR(r.kernel_ms, est.kernel_ms(), r.kernel_ms * 0.01);
}

}  // namespace
}  // namespace altis::apps::kmeans
