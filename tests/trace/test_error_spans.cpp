// Regression: the failed span recorded for a kernel that throws must carry
// the kernel's *name*, captured before the handler is torn down. The label
// used to be built from state that record() may donate away, so the span
// could silently lose its kernel attribution.
#include <gtest/gtest.h>

#include <string>

#include "fault/inject.hpp"
#include "sycl/syclite.hpp"
#include "trace/session.hpp"

namespace altis::trace {
namespace {

namespace fault = altis::fault;

perf::kernel_stats named_stats(const char* name) {
    perf::kernel_stats k;
    k.name = name;
    k.fp32_ops = 1.0;
    return k;
}

const span* find_failed_span(const session& s) {
    for (const span& sp : s.spans())
        if (sp.status == span_status::failed) return &sp;
    return nullptr;
}

TEST(ErrorSpans, FailedLaunchSpanNamesTheKernel) {
    fault::plan p = fault::plan::parse("launch:k1@1");
    fault::scope fs(p);

    session s("t");
    session::scope scope(s);
    int delivered = 0;
    syclite::queue q("rtx_2080", perf::runtime_kind::sycl,
                     [&](syclite::exception_list errors) {
                         delivered += static_cast<int>(errors.size());
                     });
    syclite::buffer<int> b(64);

    // First submission of k1 is injected to fail; k2 afterwards must trace
    // normally, proving the error span did not disturb the timeline.
    q.submit([&](syclite::handler& h) {
        auto acc = h.get_access(b, syclite::access_mode::discard_write);
        h.parallel_for(
            syclite::nd_range<1>(syclite::range<1>(64), syclite::range<1>(64)),
            named_stats("k1"),
            [=](syclite::nd_item<1> it) { acc[it.get_global_id(0)] = 1; });
    });
    q.submit([&](syclite::handler& h) {
        auto acc = h.get_access(b, syclite::access_mode::read_write);
        h.parallel_for(
            syclite::nd_range<1>(syclite::range<1>(64), syclite::range<1>(64)),
            named_stats("k2"),
            [=](syclite::nd_item<1> it) { acc[it.get_global_id(0)] += 1; });
    });
    q.wait();
    EXPECT_EQ(delivered, 1);

    const span* failed = find_failed_span(s);
    ASSERT_NE(failed, nullptr);
    // The label format is "error[<kernel>]: <what>".
    EXPECT_NE(failed->name.find("error[k1]"), std::string::npos)
        << "failed span label was: " << failed->name;
    EXPECT_NE(failed->name.find("kernel launch failed"), std::string::npos);

    // The surviving kernel still shows up as an ordinary kernel span.
    bool saw_k2 = false;
    for (const span& sp : s.spans())
        if (sp.kind == span_kind::kernel && sp.name == "k2") saw_k2 = true;
    EXPECT_TRUE(saw_k2);
}

}  // namespace
}  // namespace altis::trace
