// Minimal strict JSON parser for round-trip tests: everything the suite's
// exporters emit (objects, arrays, strings with escapes, numbers, bools,
// null) and nothing more. Throws std::runtime_error on malformed input, so a
// test that parses an exporter's output locks down its well-formedness.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace mini_json {

struct value;
using array = std::vector<value>;
using object = std::map<std::string, value>;

struct value {
    std::variant<std::nullptr_t, bool, double, std::string, array, object> v =
        nullptr;

    [[nodiscard]] bool is_null() const {
        return std::holds_alternative<std::nullptr_t>(v);
    }
    [[nodiscard]] bool as_bool() const { return std::get<bool>(v); }
    [[nodiscard]] double as_number() const { return std::get<double>(v); }
    [[nodiscard]] const std::string& as_string() const {
        return std::get<std::string>(v);
    }
    [[nodiscard]] const array& as_array() const { return std::get<array>(v); }
    [[nodiscard]] const object& as_object() const {
        return std::get<object>(v);
    }
    [[nodiscard]] bool has(const std::string& key) const {
        return as_object().count(key) > 0;
    }
    [[nodiscard]] const value& at(const std::string& key) const {
        auto it = as_object().find(key);
        if (it == as_object().end())
            throw std::runtime_error("mini_json: missing key " + key);
        return it->second;
    }
};

namespace detail {

inline void skip_ws(const std::string& s, std::size_t& i) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

inline value parse_value(const std::string& s, std::size_t& i);

inline std::string parse_string(const std::string& s, std::size_t& i) {
    if (s.at(i) != '"') throw std::runtime_error("mini_json: expected string");
    ++i;
    std::string out;
    while (true) {
        if (i >= s.size()) throw std::runtime_error("mini_json: unterminated string");
        const char c = s[i++];
        if (c == '"') return out;
        if (c == '\\') {
            if (i >= s.size()) throw std::runtime_error("mini_json: bad escape");
            const char e = s[i++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (i + 4 > s.size())
                        throw std::runtime_error("mini_json: bad \\u escape");
                    const int code =
                        static_cast<int>(std::strtol(s.substr(i, 4).c_str(),
                                                     nullptr, 16));
                    i += 4;
                    // Exporters only emit control-range escapes; keep ASCII.
                    out += static_cast<char>(code);
                    break;
                }
                default:
                    throw std::runtime_error("mini_json: unknown escape");
            }
        } else if (static_cast<unsigned char>(c) < 0x20) {
            throw std::runtime_error("mini_json: raw control char in string");
        } else {
            out += c;
        }
    }
}

inline value parse_value(const std::string& s, std::size_t& i) {
    skip_ws(s, i);
    if (i >= s.size()) throw std::runtime_error("mini_json: unexpected end");
    const char c = s[i];
    if (c == '{') {
        ++i;
        object o;
        skip_ws(s, i);
        if (i < s.size() && s[i] == '}') {
            ++i;
            return value{o};
        }
        while (true) {
            skip_ws(s, i);
            std::string key = parse_string(s, i);
            skip_ws(s, i);
            if (i >= s.size() || s[i] != ':')
                throw std::runtime_error("mini_json: expected ':'");
            ++i;
            o.emplace(std::move(key), parse_value(s, i));
            skip_ws(s, i);
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            if (i < s.size() && s[i] == '}') {
                ++i;
                return value{std::move(o)};
            }
            throw std::runtime_error("mini_json: expected ',' or '}'");
        }
    }
    if (c == '[') {
        ++i;
        array a;
        skip_ws(s, i);
        if (i < s.size() && s[i] == ']') {
            ++i;
            return value{a};
        }
        while (true) {
            a.push_back(parse_value(s, i));
            skip_ws(s, i);
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            if (i < s.size() && s[i] == ']') {
                ++i;
                return value{std::move(a)};
            }
            throw std::runtime_error("mini_json: expected ',' or ']'");
        }
    }
    if (c == '"') return value{parse_string(s, i)};
    if (s.compare(i, 4, "true") == 0) {
        i += 4;
        return value{true};
    }
    if (s.compare(i, 5, "false") == 0) {
        i += 5;
        return value{false};
    }
    if (s.compare(i, 4, "null") == 0) {
        i += 4;
        return value{nullptr};
    }
    char* end = nullptr;
    const double num = std::strtod(s.c_str() + i, &end);
    if (end == s.c_str() + i)
        throw std::runtime_error(std::string("mini_json: unexpected '") + c +
                                 "'");
    i = static_cast<std::size_t>(end - s.c_str());
    return value{num};
}

}  // namespace detail

/// Parses `text` as one JSON document; throws on malformed or trailing junk.
inline value parse(const std::string& text) {
    std::size_t i = 0;
    value v = detail::parse_value(text, i);
    detail::skip_ws(text, i);
    if (i != text.size())
        throw std::runtime_error("mini_json: trailing characters");
    return v;
}

}  // namespace mini_json
