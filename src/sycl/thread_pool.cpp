#include "sycl/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "mem/transfer.hpp"
#include "metrics/instruments.hpp"
#include "resilience/cancel.hpp"

namespace syclite {

namespace {

/// Nanoseconds since an arbitrary epoch; used to meter busy/idle stretches.
[[nodiscard]] std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Bridge handed to altis::mem so large host<->device copies fan out as
/// chunked memcpy jobs on the global pool. A plain function pointer keeps
/// mem free of a link dependency on syclite.
void pool_copy_runner(std::size_t n, void (*fn)(void*, std::size_t),
                      void* ctx) {
    thread_pool::global().parallel_for(n,
                                       [&](std::size_t i) { fn(ctx, i); });
}

}  // namespace

thread_pool::thread_pool(unsigned threads) {
    unsigned n = threads;
    if (n == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n = hw > 1 ? hw - 1 : 0;
    }
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { worker_loop(); });
    // First pool up (usually the global one) wires the transfer fast path.
    // Idempotent: re-installing the same bridge is harmless.
    altis::mem::set_parallel_runner(&pool_copy_runner);
}

thread_pool::~thread_pool() {
    // Disarm the transfer bridge before joining: a copy_bytes issued during
    // static destruction must fall back to plain memcpy, never dispatch into
    // a pool whose workers are gone. Costs only the fast path, never data.
    altis::mem::set_parallel_runner(nullptr);
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& t : workers_) t.join();
}

void thread_pool::run_job(job& j) {
    // Chunked self-scheduling: amortizes the atomic across iterations while
    // staying balanced for irregular per-index costs. Busy time covers the
    // whole claim-and-execute stretch for every participant, submitting
    // thread included, so the metric is meaningful even on a pool with zero
    // workers.
    altis::analyze::shadow::actor_scope actor(j.actor);
    const bool metered = altis::metrics::collecting();
    const std::uint64_t t0 = metered ? now_ns() : 0;
    std::uint64_t chunks = 0;
    for (;;) {
        // Observe cooperative cancellation between chunks: workers must not
        // throw (they would terminate the pool), so they simply stop
        // claiming work; the submitting thread raises after the drain in
        // parallel_for.
        if (altis::resilience::cancellation_requested()) break;
        const std::size_t begin = j.next.fetch_add(j.chunk);
        if (begin >= j.n) break;
        const std::size_t end = std::min(begin + j.chunk, j.n);
        for (std::size_t i = begin; i < end; ++i) j.fn(i);
        ++chunks;
    }
    if (metered) {
        namespace mi = altis::metrics::instruments;
        mi::pool_worker_busy_ns().add(now_ns() - t0);
        mi::pool_chunks().add(chunks);
    }
}

thread_pool::job* thread_pool::pick_job() {
    for (job* j : jobs_)
        if (j->next.load(std::memory_order_relaxed) < j->n) return j;
    return nullptr;
}

void thread_pool::worker_loop() {
    for (;;) {
        job* j = nullptr;
        {
            const bool meter_idle = altis::metrics::collecting();
            const std::uint64_t idle_from = meter_idle ? now_ns() : 0;
            std::unique_lock lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || !tasks_.empty() ||
                       (j = pick_job()) != nullptr;
            });
            if (meter_idle)
                altis::metrics::instruments::pool_worker_idle_ns().add(
                    now_ns() - idle_from);
            if (stop_) return;
            if (!tasks_.empty()) {
                // Tasks drain ahead of jobs: a posted graph dispatch usually
                // *produces* the parallel_for work the jobs path then shares.
                detail::small_function<void()> task =
                    std::move(tasks_.front());
                tasks_.pop_front();
                lock.unlock();
                task();
                continue;
            }
            // Joining under the lock pairs with retirement in parallel_for:
            // once the submitter removes its job from jobs_, no new worker
            // can raise active_workers, so draining to zero is final.
            j->active_workers.fetch_add(1, std::memory_order_relaxed);
        }
        // Capture the gauge decision once so the add/sub always pairs even
        // if a metrics session starts or stops while the job runs.
        const bool meter_active = altis::metrics::collecting();
        if (meter_active)
            altis::metrics::instruments::pool_active_workers().add(1);
        run_job(*j);
        if (meter_active)
            altis::metrics::instruments::pool_active_workers().sub(1);
        {
            std::lock_guard lock(mutex_);
            if (j->active_workers.fetch_sub(1, std::memory_order_relaxed) == 1)
                done_.notify_all();
        }
    }
}

void thread_pool::post(detail::small_function<void()> task) {
    {
        std::lock_guard lock(mutex_);
        if (stop_) return;
        tasks_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void thread_pool::parallel_for(std::size_t n,
                               detail::function_ref<void(std::size_t)> fn) {
    if (n == 0) return;
    if (altis::metrics::collecting())
        altis::metrics::instruments::pool_jobs().add();
    if (workers_.empty() || n == 1) {
        // Serial fallback still meters busy time: on single-core hosts the
        // global pool has no workers and this is the only execution path.
        const bool metered = altis::metrics::collecting();
        const std::uint64_t t0 = metered ? now_ns() : 0;
        for (std::size_t i = 0; i < n; ++i) {
            // Masked so the disabled-token fast path costs one relaxed load
            // per 1024 iterations, not per iteration.
            if ((i & 1023u) == 0u) altis::resilience::checkpoint();
            fn(i);
        }
        if (metered) {
            namespace mi = altis::metrics::instruments;
            mi::pool_worker_busy_ns().add(now_ns() - t0);
            mi::pool_chunks().add();
        }
        return;
    }
    job j(fn, n, std::max<std::size_t>(1, n / ((workers_.size() + 1) * 8)),
          altis::analyze::shadow::current_actor());
    {
        std::lock_guard lock(mutex_);
        jobs_.push_back(&j);
    }
    wake_.notify_all();
    run_job(j);
    {
        // Retire the job, then wait for workers that joined it to drain
        // before j (on our stack) dies.
        std::unique_lock lock(mutex_);
        jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &j));
        done_.wait(lock, [&] {
            return j.active_workers.load(std::memory_order_relaxed) == 0;
        });
    }
    // Workers bailed silently on cancellation; raise it here on the
    // submitting thread, after the job is retired and nobody references the
    // stack-allocated state anymore.
    altis::resilience::checkpoint();
}

thread_pool& thread_pool::global() {
    static thread_pool pool;
    return pool;
}

}  // namespace syclite
