// Ablation: host-side microbenchmarks of the syclite runtime itself --
// kernel dispatch cost, hierarchical work-group execution, pipe throughput
// (element-wise and burst), ND-Range dispatch across sizes, and concurrent
// thread-pool jobs. These measure the *functional* substrate (real
// wall-clock), not the simulated device times.
//
// `--json [path]` writes the google-benchmark JSON report to `path`
// (default BENCH_runtime.json) in addition to the console output -- the
// recorded point of the runtime's perf trajectory (docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mem/pool.hpp"
#include "metrics/export.hpp"
#include "metrics/session.hpp"
#include "sycl/syclite.hpp"

namespace {

using namespace syclite;

perf::kernel_stats tiny_stats() {
    perf::kernel_stats k;
    k.name = "tiny";
    k.fp32_ops = 1;
    return k;
}

void BM_SubmitDispatch(benchmark::State& state) {
    queue q("xeon_6128");
    buffer<int> b(1);
    for (auto _ : state) {
        q.submit([&](handler& h) {
            auto acc = h.get_access(b, access_mode::read_write);
            h.single_task(tiny_stats(), [=]() { acc[0] += 1; });
        });
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitDispatch);

void BM_ParallelFor(benchmark::State& state) {
    queue q("xeon_6128");
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    buffer<float> b(n);
    for (auto _ : state) {
        q.submit([&](handler& h) {
            auto acc = h.get_access(b, access_mode::read_write);
            h.parallel_for(nd_range<1>(range<1>(n), range<1>(256)), tiny_stats(),
                           [=](nd_item<1> it) {
                               acc[it.get_global_id(0)] += 1.0f;
                           });
        });
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelFor)->Range(1 << 10, 1 << 24);

void BM_HierarchicalTwoPhase(benchmark::State& state) {
    queue q("xeon_6128");
    const std::size_t groups = static_cast<std::size_t>(state.range(0));
    buffer<float> b(groups * 64);
    for (auto _ : state) {
        q.submit([&](handler& h) {
            auto acc = h.get_access(b, access_mode::read_write);
            h.parallel_for_work_group(
                range<1>(groups), range<1>(64), tiny_stats(), [=](group<1> g) {
                    float tile[64];
                    g.parallel_for_work_item([&](h_item<1> it) {
                        tile[it.get_local_id(0)] =
                            acc[it.get_global_id(0)];
                    });
                    g.parallel_for_work_item([&](h_item<1> it) {
                        acc[it.get_global_id(0)] =
                            tile[63 - it.get_local_id(0)];
                    });
                });
        });
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 64);
}
BENCHMARK(BM_HierarchicalTwoPhase)->Range(16, 4096);

void BM_PipeThroughput(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        syclite::pipe<int> p(64);  // qualified: POSIX pipe() shadows the name
        queue q("stratix_10");
        const int n = static_cast<int>(state.range(0));
        state.ResumeTiming();
        q.begin_dataflow();
        q.submit([&](handler& h) {
            perf::kernel_stats k = tiny_stats();
            k.writes_pipe = true;
            h.single_task(k, [&p, n] {
                for (int i = 0; i < n; ++i) p.write(i);
            });
        });
        q.submit([&](handler& h) {
            perf::kernel_stats k = tiny_stats();
            k.reads_pipe = true;
            h.single_task(k, [&p, n] {
                long sum = 0;
                for (int i = 0; i < n; ++i) sum += p.read();
                benchmark::DoNotOptimize(sum);
            });
        });
        q.end_dataflow();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipeThroughput)->Range(1 << 10, 1 << 16);

/// Streaming transfer through the burst API: whole spans per counter
/// publication instead of one element each (the KMeans dataflow pattern).
constexpr std::size_t kBurst = 64;

void BM_PipeThroughputBurst(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        syclite::pipe<int> p(256);
        queue q("stratix_10");
        const std::size_t n = static_cast<std::size_t>(state.range(0));
        state.ResumeTiming();
        q.begin_dataflow();
        q.submit([&](handler& h) {
            perf::kernel_stats k = tiny_stats();
            k.writes_pipe = true;
            h.single_task(k, [&p, n] {
                int batch[kBurst];
                std::size_t sent = 0;
                while (sent < n) {
                    const std::size_t take = std::min(kBurst, n - sent);
                    for (std::size_t i = 0; i < take; ++i)
                        batch[i] = static_cast<int>(sent + i);
                    p.write_burst(batch, take);
                    sent += take;
                }
            });
        });
        q.submit([&](handler& h) {
            perf::kernel_stats k = tiny_stats();
            k.reads_pipe = true;
            h.single_task(k, [&p, n] {
                int batch[kBurst];
                long sum = 0;
                std::size_t got = 0;
                while (got < n) {
                    const std::size_t take = std::min(kBurst, n - got);
                    p.read_burst(batch, take);
                    for (std::size_t i = 0; i < take; ++i) sum += batch[i];
                    got += take;
                }
                benchmark::DoNotOptimize(sum);
            });
        });
        q.end_dataflow();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipeThroughputBurst)->Range(1 << 10, 1 << 16);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
    thread_pool pool;
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<double> data(n, 1.0);
    for (auto _ : state) {
        pool.parallel_for(n, [&](std::size_t i) { data[i] *= 1.0000001; });
    }
    benchmark::DoNotOptimize(data.data());
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ThreadPoolParallelFor)->Range(1 << 10, 1 << 20);

/// Concurrent-job scaling: range(0) submitter threads issue parallel_for
/// jobs to one shared pool simultaneously, the shape of a dataflow group
/// whose members are ND-Range kernels. Before the per-job work list the
/// submitters serialized behind a single submission mutex.
void BM_ConcurrentPoolJobs(benchmark::State& state) {
    thread_pool pool(4);
    const int submitters = static_cast<int>(state.range(0));
    constexpr std::size_t kPerJob = 1 << 14;
    for (auto _ : state) {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(submitters));
        for (int t = 0; t < submitters; ++t)
            threads.emplace_back([&pool] {
                double acc = 1.0;
                pool.parallel_for(kPerJob, [&](std::size_t i) {
                    acc += static_cast<double>(i) * 1e-9;
                });
                benchmark::DoNotOptimize(acc);
            });
        for (auto& t : threads) t.join();
    }
    state.SetItemsProcessed(state.iterations() * submitters *
                            static_cast<long>(kPerJob));
}
BENCHMARK(BM_ConcurrentPoolJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---- altis::mem (docs/PERFORMANCE.md "Memory subsystem") ----

/// Allocation churn, the sweep-loop shape: allocate, touch every page, free,
/// repeat with the same size. The pool serves repeats from its magazine /
/// reuse cache on warm pages; the `system` backend replays the pre-pool
/// behaviour (::operator new(align_val_t{64}) per request), which above the
/// malloc mmap threshold also re-faults every page per iteration.
void alloc_churn(benchmark::State& state, altis::mem::backend b) {
    const auto prev = altis::mem::current_backend();
    altis::mem::set_backend(b);
    const std::size_t bytes = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        void* p = altis::mem::allocate(bytes);
        auto* c = static_cast<char*>(p);
        for (std::size_t off = 0; off < bytes; off += 4096) c[off] = 1;
        benchmark::DoNotOptimize(c);
        altis::mem::deallocate(p);
    }
    altis::mem::set_backend(prev);
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes));
}

void BM_AllocChurnPool(benchmark::State& state) {
    alloc_churn(state, altis::mem::backend::pooled);
}
BENCHMARK(BM_AllocChurnPool)
    ->Arg(256)->Arg(64 << 10)->Arg(1 << 20)->Arg(64 << 20);

void BM_AllocChurnSystem(benchmark::State& state) {
    alloc_churn(state, altis::mem::backend::system);
}
BENCHMARK(BM_AllocChurnSystem)
    ->Arg(256)->Arg(64 << 10)->Arg(1 << 20)->Arg(64 << 20);

/// Host->device upload of range(0) floats, the cudaMemcpy H2D shape. The
/// fast path pairs a recycled no_init buffer with mem::copy_bytes: one
/// memcpy into warm pages.
void BM_TransferUpload(benchmark::State& state) {
    queue q("xeon_6128");
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const std::vector<float> src(n, 1.5f);
    for (auto _ : state) {
        buffer<float> dev(n, no_init);
        q.copy_to_device(dev, src.data());
        benchmark::DoNotOptimize(dev.host_data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(n * sizeof(float)));
}
BENCHMARK(BM_TransferUpload)->Arg(1 << 22)->Arg(16 << 20);

// ---- command-graph scheduler (docs/PERFORMANCE.md "Graph overlap") ----

/// Independent wall-clock workloads (no shared accessors, no explicit
/// edges): the in-order queue runs them back to back, the out-of-order
/// queue dispatches all of them onto pool workers at once. Real sleeps, so
/// the benches must run on real time -- CPU time is ~0 either way.
constexpr int kOverlapKernels = 4;
constexpr std::chrono::milliseconds kOverlapSleep{2};

void overlap_round(queue& q) {
    for (int i = 0; i < kOverlapKernels; ++i)
        q.submit([&](handler& h) {
            h.library_call(tiny_stats(),
                           [] { std::this_thread::sleep_for(kOverlapSleep); });
        });
    q.wait();
}

void BM_GraphOverlapInOrder(benchmark::State& state) {
    queue q("xeon_6128");
    for (auto _ : state) overlap_round(q);
    state.SetItemsProcessed(state.iterations() * kOverlapKernels);
}
BENCHMARK(BM_GraphOverlapInOrder)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_GraphOverlapOOO(benchmark::State& state) {
    thread_pool pool(kOverlapKernels);
    queue q("xeon_6128", queue_property::out_of_order);
    q.set_graph_pool(&pool);
    for (auto _ : state) overlap_round(q);
    // The pool outlives the queue: drop the scheduler's reference before the
    // pool's workers go away.
    q.wait();
    state.SetItemsProcessed(state.iterations() * kOverlapKernels);
}
BENCHMARK(BM_GraphOverlapOOO)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Submit-side scheduler cost on a dependent chain: every submission
/// read-writes the same buffer, so the graph path resolves one implied edge
/// per node (segment carving + two-phase release) where the eager path just
/// runs. Measures bookkeeping, not overlap.
void sched_latency_round(queue& q, buffer<int>& b, int n) {
    for (int i = 0; i < n; ++i)
        q.submit([&](handler& h) {
            auto acc = h.get_access(b, access_mode::read_write);
            h.single_task(tiny_stats(), [=]() { acc[0] += 1; });
        });
    q.wait();
}

constexpr int kSchedChain = 64;

void BM_SchedLatencyInOrder(benchmark::State& state) {
    queue q("xeon_6128");
    buffer<int> b(1);
    for (auto _ : state) sched_latency_round(q, b, kSchedChain);
    state.SetItemsProcessed(state.iterations() * kSchedChain);
}
BENCHMARK(BM_SchedLatencyInOrder);

void BM_SchedLatencyOOO(benchmark::State& state) {
    queue q("xeon_6128", queue_property::out_of_order);
    buffer<int> b(1);
    for (auto _ : state) sched_latency_round(q, b, kSchedChain);
    state.SetItemsProcessed(state.iterations() * kSchedChain);
}
BENCHMARK(BM_SchedLatencyOOO);

/// The same upload as the runtime performed it before the memory subsystem:
/// a fresh std::vector (whose value-initialization writes every byte once
/// before the copy overwrites it) filled element-wise with std::copy.
void BM_TransferUploadLegacy(benchmark::State& state) {
    queue q("xeon_6128");
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const std::vector<float> src(n, 1.5f);
    for (auto _ : state) {
        std::vector<float> dev(n);
        q.annotate_transfer(static_cast<double>(n * sizeof(float)));
        std::copy(src.begin(), src.end(), dev.begin());
        benchmark::DoNotOptimize(dev.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(n * sizeof(float)));
}
BENCHMARK(BM_TransferUploadLegacy)->Arg(1 << 22)->Arg(16 << 20);

}  // namespace

// BENCHMARK_MAIN with a `--json [path]` extension: rewrites the flag into
// google-benchmark's --benchmark_out before initialization so the JSON
// report (BENCH_runtime.json by default) rides along with the console run.
int main(int argc, char** argv) {
    std::vector<char*> args;
    std::string out_path;
    bool json = false;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
            continue;
        }
        args.push_back(argv[i]);
    }
    std::string out_flag, fmt_flag;
    if (json) {
        if (out_path.empty()) out_path = "BENCH_runtime.json";
        out_flag = "--benchmark_out=" + out_path;
        fmt_flag = "--benchmark_out_format=json";
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int argn = static_cast<int>(args.size());
    benchmark::Initialize(&argn, args.data());
    if (benchmark::ReportUnrecognizedArguments(argn, args.data())) return 1;
    // The recorded report doubles as a telemetry baseline: run the suite
    // under a metrics session and embed the snapshot, so compare_bench.py
    // can diff engine counters (pool busy ns, pipe parks, ...) alongside
    // the timings between two recorded runs.
    std::optional<altis::metrics::session> msession;
    if (json) msession.emplace("ablation_runtime");
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (msession) {
        msession->stop();
        std::string report;
        {
            std::ifstream in(out_path);
            std::stringstream buf;
            buf << in.rdbuf();
            report = buf.str();
        }
        const std::size_t brace = report.rfind('}');
        if (brace != std::string::npos) {
            std::ostringstream mjson;
            altis::metrics::write_json(msession->take_snapshot(),
                                       msession->series(), mjson);
            report.insert(brace, ",\n  \"altis_metrics\": " + mjson.str());
            std::ofstream out(out_path, std::ios::trunc);
            out << report;
        }
    }
    return 0;
}
