
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cfd/cfd.cpp" "src/apps/CMakeFiles/altis_apps.dir/cfd/cfd.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/cfd/cfd.cpp.o.d"
  "/root/repo/src/apps/cfd/cfd_model.cpp" "src/apps/CMakeFiles/altis_apps.dir/cfd/cfd_model.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/cfd/cfd_model.cpp.o.d"
  "/root/repo/src/apps/common/app.cpp" "src/apps/CMakeFiles/altis_apps.dir/common/app.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/common/app.cpp.o.d"
  "/root/repo/src/apps/common/image.cpp" "src/apps/CMakeFiles/altis_apps.dir/common/image.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/common/image.cpp.o.d"
  "/root/repo/src/apps/common/region.cpp" "src/apps/CMakeFiles/altis_apps.dir/common/region.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/common/region.cpp.o.d"
  "/root/repo/src/apps/common/suite.cpp" "src/apps/CMakeFiles/altis_apps.dir/common/suite.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/common/suite.cpp.o.d"
  "/root/repo/src/apps/dwt2d/dwt2d.cpp" "src/apps/CMakeFiles/altis_apps.dir/dwt2d/dwt2d.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/dwt2d/dwt2d.cpp.o.d"
  "/root/repo/src/apps/dwt2d/dwt2d_model.cpp" "src/apps/CMakeFiles/altis_apps.dir/dwt2d/dwt2d_model.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/dwt2d/dwt2d_model.cpp.o.d"
  "/root/repo/src/apps/fdtd2d/fdtd2d.cpp" "src/apps/CMakeFiles/altis_apps.dir/fdtd2d/fdtd2d.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/fdtd2d/fdtd2d.cpp.o.d"
  "/root/repo/src/apps/fdtd2d/fdtd2d_model.cpp" "src/apps/CMakeFiles/altis_apps.dir/fdtd2d/fdtd2d_model.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/fdtd2d/fdtd2d_model.cpp.o.d"
  "/root/repo/src/apps/kmeans/kmeans.cpp" "src/apps/CMakeFiles/altis_apps.dir/kmeans/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/kmeans/kmeans.cpp.o.d"
  "/root/repo/src/apps/kmeans/kmeans_model.cpp" "src/apps/CMakeFiles/altis_apps.dir/kmeans/kmeans_model.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/kmeans/kmeans_model.cpp.o.d"
  "/root/repo/src/apps/lavamd/lavamd.cpp" "src/apps/CMakeFiles/altis_apps.dir/lavamd/lavamd.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/lavamd/lavamd.cpp.o.d"
  "/root/repo/src/apps/lavamd/lavamd_model.cpp" "src/apps/CMakeFiles/altis_apps.dir/lavamd/lavamd_model.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/lavamd/lavamd_model.cpp.o.d"
  "/root/repo/src/apps/mandelbrot/mandelbrot.cpp" "src/apps/CMakeFiles/altis_apps.dir/mandelbrot/mandelbrot.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/mandelbrot/mandelbrot.cpp.o.d"
  "/root/repo/src/apps/mandelbrot/mandelbrot_model.cpp" "src/apps/CMakeFiles/altis_apps.dir/mandelbrot/mandelbrot_model.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/mandelbrot/mandelbrot_model.cpp.o.d"
  "/root/repo/src/apps/nw/nw.cpp" "src/apps/CMakeFiles/altis_apps.dir/nw/nw.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/nw/nw.cpp.o.d"
  "/root/repo/src/apps/nw/nw_model.cpp" "src/apps/CMakeFiles/altis_apps.dir/nw/nw_model.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/nw/nw_model.cpp.o.d"
  "/root/repo/src/apps/particlefilter/particlefilter.cpp" "src/apps/CMakeFiles/altis_apps.dir/particlefilter/particlefilter.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/particlefilter/particlefilter.cpp.o.d"
  "/root/repo/src/apps/particlefilter/particlefilter_model.cpp" "src/apps/CMakeFiles/altis_apps.dir/particlefilter/particlefilter_model.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/particlefilter/particlefilter_model.cpp.o.d"
  "/root/repo/src/apps/raytracing/raytracing.cpp" "src/apps/CMakeFiles/altis_apps.dir/raytracing/raytracing.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/raytracing/raytracing.cpp.o.d"
  "/root/repo/src/apps/raytracing/raytracing_model.cpp" "src/apps/CMakeFiles/altis_apps.dir/raytracing/raytracing_model.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/raytracing/raytracing_model.cpp.o.d"
  "/root/repo/src/apps/register_all.cpp" "src/apps/CMakeFiles/altis_apps.dir/register_all.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/register_all.cpp.o.d"
  "/root/repo/src/apps/srad/srad.cpp" "src/apps/CMakeFiles/altis_apps.dir/srad/srad.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/srad/srad.cpp.o.d"
  "/root/repo/src/apps/srad/srad_model.cpp" "src/apps/CMakeFiles/altis_apps.dir/srad/srad_model.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/srad/srad_model.cpp.o.d"
  "/root/repo/src/apps/where/where.cpp" "src/apps/CMakeFiles/altis_apps.dir/where/where.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/where/where.cpp.o.d"
  "/root/repo/src/apps/where/where_model.cpp" "src/apps/CMakeFiles/altis_apps.dir/where/where_model.cpp.o" "gcc" "src/apps/CMakeFiles/altis_apps.dir/where/where_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/altis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/altis_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sycl/CMakeFiles/altis_syclite.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/altis_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/altis_scan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
