#include "apps/lavamd/lavamd.hpp"

#include <cmath>

#include "apps/common/verify.hpp"
#include "rng/philox.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps::lavamd {

params params::preset(int size) {
    params p;
    switch (size) {
        case 1: p.boxes1d = 6; break;
        case 2: p.boxes1d = 8; break;
        case 3: p.boxes1d = 12; break;
        default: throw std::invalid_argument("lavamd: size must be 1..3");
    }
    return p;
}

std::vector<particle> make_particles(const params& p) {
    std::vector<particle> out(p.particles());
    rng::philox4x32 gen(p.seed);
    for (auto& pt : out) {
        pt.x = gen.next_float();
        pt.y = gen.next_float();
        pt.z = gen.next_float();
        pt.q = gen.next_float();
    }
    return out;
}

namespace {

/// Force of neighbour particle b on home particle a (Rodinia lavaMD kernel
/// formula); shared verbatim by golden and the device kernel.
force pair_force(const particle& a, const particle& b) {
    constexpr float a2 = 2.0f * kAlpha * kAlpha;
    const float dx = a.x - b.x;
    const float dy = a.y - b.y;
    const float dz = a.z - b.z;
    const float r2 = dx * dx + dy * dy + dz * dz;
    const float u2 = a2 * r2;
    const float vij = std::exp(-u2);
    const float fs = 2.0f * vij;
    return {fs * dx * b.q, fs * dy * b.q, fs * dz * b.q, vij * b.q};
}

/// Neighbour boxes of box (bx,by,bz) including itself, in z,y,x-major order
/// (the iteration order both golden and kernels use).
template <typename F>
void for_each_neighbor(const params& p, std::size_t bx, std::size_t by,
                       std::size_t bz, F&& fn) {
    const auto n1 = static_cast<long>(p.boxes1d);
    for (long dz = -1; dz <= 1; ++dz)
        for (long dy = -1; dy <= 1; ++dy)
            for (long dx = -1; dx <= 1; ++dx) {
                const long nx = static_cast<long>(bx) + dx;
                const long ny = static_cast<long>(by) + dy;
                const long nz = static_cast<long>(bz) + dz;
                if (nx < 0 || ny < 0 || nz < 0 || nx >= n1 || ny >= n1 ||
                    nz >= n1)
                    continue;
                fn((static_cast<std::size_t>(nz) * p.boxes1d +
                    static_cast<std::size_t>(ny)) *
                       p.boxes1d +
                   static_cast<std::size_t>(nx));
            }
}

}  // namespace

std::vector<force> golden(const params& p, std::span<const particle> particles) {
    std::vector<force> out(p.particles(), force{0, 0, 0, 0});
    for (std::size_t bz = 0; bz < p.boxes1d; ++bz)
        for (std::size_t by = 0; by < p.boxes1d; ++by)
            for (std::size_t bx = 0; bx < p.boxes1d; ++bx) {
                const std::size_t home =
                    (bz * p.boxes1d + by) * p.boxes1d + bx;
                for_each_neighbor(p, bx, by, bz, [&](std::size_t nb) {
                    for (std::size_t i = 0; i < kParPerBox; ++i) {
                        const std::size_t ai = home * kParPerBox + i;
                        force acc = out[ai];
                        for (std::size_t j = 0; j < kParPerBox; ++j) {
                            const force f = pair_force(
                                particles[ai], particles[nb * kParPerBox + j]);
                            acc.fx += f.fx;
                            acc.fy += f.fy;
                            acc.fz += f.fz;
                            acc.energy += f.energy;
                        }
                        out[ai] = acc;
                    }
                });
            }
    return out;
}

namespace detail {

perf::kernel_stats stats_boxes(const params& p, Variant v,
                               const perf::device_spec& dev);

}  // namespace detail

AppResult run(const RunConfig& cfg) {
    const perf::device_spec& dev = resolve_device(cfg);
    const params p = params::preset(cfg.size);
    const std::vector<particle> particles = make_particles(p);
    const std::vector<force> expected = golden(p, particles);

    sl::queue q(dev, runtime_for(cfg.variant));
    if (dev.is_fpga()) q.set_design(region(cfg.variant, dev, cfg.size).all_kernels());
    // One-time context/JIT setup is excluded from the timed region (warmed up).

    sl::buffer<particle> parts(p.particles());
    q.copy_to_device(parts, particles.data());
    sl::buffer<force> forces(p.particles());

    // One work-group per home box; home and neighbour particles staged in
    // work-group local arrays (the shared-memory loop the paper unrolls).
    q.submit([&](sl::handler& h) {
        auto in = h.get_access(parts, sl::access_mode::read);
        auto out = h.get_access(forces, sl::access_mode::discard_write);
        const params cp = p;
        h.parallel_for_work_group(
            sl::range<1>(p.boxes()), sl::range<1>(kParPerBox),
            detail::stats_boxes(p, cfg.variant, dev), [=](sl::group<1> g) {
                const std::size_t home = g.get_group_id(0);
                const std::size_t bx = home % cp.boxes1d;
                const std::size_t by = (home / cp.boxes1d) % cp.boxes1d;
                const std::size_t bz = home / (cp.boxes1d * cp.boxes1d);

                particle rA[kParPerBox];
                force acc[kParPerBox];
                g.parallel_for_work_item([&](sl::h_item<1> it) {
                    const std::size_t tx = it.get_local_id(0);
                    rA[tx] = in[home * kParPerBox + tx];
                    acc[tx] = force{0, 0, 0, 0};
                });
                for_each_neighbor(cp, bx, by, bz, [&](std::size_t nb) {
                    particle rB[kParPerBox];
                    g.parallel_for_work_item([&](sl::h_item<1> it) {
                        const std::size_t tx = it.get_local_id(0);
                        rB[tx] = in[nb * kParPerBox + tx];
                    });
                    // implicit barrier
                    g.parallel_for_work_item([&](sl::h_item<1> it) {
                        const std::size_t tx = it.get_local_id(0);
                        force a = acc[tx];
                        for (std::size_t j = 0; j < kParPerBox; ++j) {
                            const force f = pair_force(rA[tx], rB[j]);
                            a.fx += f.fx;
                            a.fy += f.fy;
                            a.fz += f.fz;
                            a.energy += f.energy;
                        }
                        acc[tx] = a;
                    });
                });
                g.parallel_for_work_item([&](sl::h_item<1> it) {
                    const std::size_t tx = it.get_local_id(0);
                    out[home * kParPerBox + tx] = acc[tx];
                });
            });
    });
    q.wait();

    std::vector<force> got(p.particles());
    q.copy_from_device(forces, got.data());
    double worst = 0.0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        worst = std::max(
            worst, static_cast<double>(std::abs(got[i].fx - expected[i].fx)));
        worst = std::max(worst, static_cast<double>(std::abs(
                                    got[i].energy - expected[i].energy)));
    }
    require_close(worst, 1e-4, "lavamd");

    AppResult r;
    r.kernel_ms = q.kernel_ns() / 1e6;
    r.non_kernel_ms = q.non_kernel_ns() / 1e6;
    r.total_ms = q.sim_now_ns() / 1e6;
    r.error = worst;
    return r;
}

void register_app() {
    register_standard_app(
        "lavamd", "Cutoff N-body in a 3D box grid (shared-memory unrolling)",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run);
}

}  // namespace altis::apps::lavamd
