// Chrome trace-event exporter: serializes a session as the JSON object
// format understood by Perfetto / chrome://tracing / speedscope. Spans
// become complete ("ph":"X") duration events; timestamps are microseconds
// with nanosecond precision preserved as fractions. Dataflow kernels land on
// their own tracks (tid = lane + 1) so the Fig. 3 overlap is visible as
// parallel bars; everything sequential shares the main track.
#pragma once

#include <iosfwd>

#include "trace/session.hpp"

namespace altis::trace {

void write_chrome_json(const session& s, std::ostream& out);

}  // namespace altis::trace
