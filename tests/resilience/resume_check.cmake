# Deterministic-resume gate (docs/ROBUSTNESS.md): run a supervised fig4
# sweep to completion with a --journal, truncate the journal to its first
# few completed configurations (simulating a SIGKILL mid-sweep), --resume
# from the stump, and byte-compare the resumed run's full output against
# the uninterrupted run's. Replayed configurations must reproduce status,
# attempts, backoff, values and printed cells exactly -- any drift here
# means a crash-resumed campaign would silently report different numbers.
#
# Usage: cmake -DBIN=<fig4 binary> -DWORK=<scratch dir> -P resume_check.cmake

if(NOT DEFINED BIN OR NOT DEFINED WORK)
    message(FATAL_ERROR "resume_check.cmake requires -DBIN=... and -DWORK=...")
endif()

file(MAKE_DIRECTORY "${WORK}")
set(full_journal "${WORK}/full.jsonl")
set(part_journal "${WORK}/partial.jsonl")
file(REMOVE "${full_journal}" "${part_journal}")

# Pass 1: uninterrupted supervised sweep, journaling every configuration.
execute_process(
    COMMAND "${BIN}" --journal "${full_journal}"
    OUTPUT_VARIABLE full_out
    ERROR_VARIABLE full_err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "full run exited with ${rc}:\n${full_out}${full_err}")
endif()

# Truncate the journal after the header plus a handful of entries -- the
# state a SIGKILL mid-sweep leaves behind (the writer fsyncs per line, so a
# real crash can also leave a torn final line; the reader drops it).
file(READ "${full_journal}" content)
set(keep 6)  # header + 5 completed configurations
set(prefix "")
set(count 0)
while(count LESS keep)
    string(FIND "${content}" "\n" nl)
    if(nl EQUAL -1)
        message(FATAL_ERROR "journal has only ${count} lines; expected >${keep}")
    endif()
    math(EXPR nlp "${nl} + 1")
    string(SUBSTRING "${content}" 0 ${nlp} line)
    string(APPEND prefix "${line}")
    string(SUBSTRING "${content}" ${nlp} -1 content)
    math(EXPR count "${count} + 1")
endwhile()
file(WRITE "${part_journal}" "${prefix}")

# Pass 2: resume from the stump. Replayed configs come from the journal,
# the rest run live; the combined report must be byte-identical.
execute_process(
    COMMAND "${BIN}" --resume "${part_journal}"
    OUTPUT_VARIABLE resumed_out
    ERROR_VARIABLE resumed_err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "resumed run exited with ${rc}:\n${resumed_out}${resumed_err}")
endif()

string(APPEND full_out "${full_err}")
string(APPEND resumed_out "${resumed_err}")
if(NOT resumed_out STREQUAL full_out)
    file(WRITE "${WORK}/full.out" "${full_out}")
    file(WRITE "${WORK}/resumed.out" "${resumed_out}")
    message(FATAL_ERROR
        "resumed sweep output differs from the uninterrupted run -- resume "
        "must be byte-identical (compare ${WORK}/full.out against "
        "${WORK}/resumed.out)")
endif()

# The resumed journal must now cover the full sweep again.
file(READ "${full_journal}" want_journal)
file(READ "${part_journal}" got_journal)
if(NOT got_journal STREQUAL want_journal)
    message(FATAL_ERROR
        "resumed journal differs from the uninterrupted journal -- a second "
        "resume from it would not replay the same sweep")
endif()
