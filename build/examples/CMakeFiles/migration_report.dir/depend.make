# Empty dependencies file for migration_report.
# This may be replaced when dependencies are built.
