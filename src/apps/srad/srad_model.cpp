// Model descriptors for SRAD: the eleven-shared-array kernels of Sec. 4/5.2.
#include "apps/srad/srad.hpp"

#include <cmath>

namespace altis::apps::srad {
namespace detail {

perf::kernel_stats stats_reduce(const params& p) {
    perf::kernel_stats k;
    k.name = "srad_reduce";
    const double chunk = 1024.0;
    k.global_items = std::ceil(static_cast<double>(p.cells()) / chunk);
    k.wg_size = 1;
    k.fp32_ops = 3.0 * chunk;
    k.bytes_read = 4.0 * chunk;
    k.bytes_written = 8.0;
    k.barriers = 1.0;
    k.pattern = perf::local_pattern::scalar;  // register accumulators
    k.local_arrays = 1;
    k.local_mem_bytes = 8.0;
    k.local_accesses = 2.0;
    k.static_fp32_ops = 3;
    k.static_int_ops = 8;
    k.static_branches = 2;
    k.accessor_args = 2;
    k.control_complexity = 1;
    return k;
}

namespace {

// Shared local-memory structure of the srad1/srad2 tiles: 5-6 shared arrays
// each (J tile, c tile, four derivative tiles) -- eleven across the design.
void apply_tile_structure(perf::kernel_stats& k, int arrays, Variant v,
                          const perf::device_spec& dev) {
    k.pattern = perf::local_pattern::banked;
    k.local_arrays = arrays;
    const double wg = (v == Variant::fpga_opt || !dev.is_fpga())
                          ? k.wg_size
                          : 64.0;
    k.local_mem_bytes = static_cast<double>(arrays) * wg * 4.0;
    k.local_accesses = static_cast<double>(arrays) * 1.0;
    // DPCT-migrated accessors are dynamically sized until the
    // group_local_memory_for_overwrite rewrite (Sec. 5.2).
    k.dynamic_local_size = (v == Variant::sycl_base || v == Variant::fpga_base);
}

}  // namespace

perf::kernel_stats stats_srad1(const params& p, Variant v,
                               const perf::device_spec& dev) {
    perf::kernel_stats k;
    k.name = "srad1";
    k.global_items = static_cast<double>(p.cells());
    k.wg_size = dev.is_fpga() ? 64 : 256;
    k.fp32_ops = 30.0;
    k.sfu_ops = 1.0;  // the reciprocal in the coefficient
    k.int_ops = 14.0;
    k.bytes_read = 4.0 * 2.0;        // J + halo (cached)
    k.bytes_written = 4.0 * 5.0;     // c + 4 derivative arrays
    k.static_fp32_ops = 30;
    k.static_int_ops = 24;
    k.static_branches = 8;
    k.accessor_args = 6;
    k.control_complexity = 3;
    apply_tile_structure(k, 6, v, dev);
    if (v == Variant::fpga_base) k.unroll = 1;
    return k;
}

perf::kernel_stats stats_srad2(const params& p, Variant v,
                               const perf::device_spec& dev) {
    perf::kernel_stats k;
    k.name = "srad2";
    k.global_items = static_cast<double>(p.cells());
    k.wg_size = dev.is_fpga() ? 64 : 256;
    k.fp32_ops = 12.0;
    k.int_ops = 10.0;
    k.bytes_read = 4.0 * 6.0;  // c + 4 derivatives + J
    k.bytes_written = 4.0;
    k.static_fp32_ops = 12;
    k.static_int_ops = 18;
    k.static_branches = 6;
    k.accessor_args = 6;
    k.control_complexity = 2;
    apply_tile_structure(k, 5, v, dev);
    return k;
}

perf::kernel_stats stats_srad_st(const params& p,
                                 const perf::device_spec& dev) {
    perf::kernel_stats k;
    k.name = "srad_st";
    k.form = perf::kernel_form::single_task;
    const double cells = static_cast<double>(p.cells());
    k.bytes_read = cells * 4.0 * 3.0;
    k.bytes_written = cells * 4.0 * 3.0;
    k.args_restrict = true;
    k.accessor_args = 6;  // pointers, not accessor objects (Sec. 4)
    k.static_fp32_ops = 42;
    k.static_int_ops = 30;
    k.static_branches = 8;
    k.control_complexity = 2;
    // Line-buffered stencil: the row buffers are exactly sized.
    k.pattern = perf::local_pattern::banked;
    k.local_arrays = 3;
    k.local_mem_bytes = static_cast<double>(p.cols) * 4.0 * 3.0;
    // Line-buffered window processes several columns per cycle; the window
    // parameter doubles 16 -> 32 on Agilex (Sec. 5.5).
    k.unroll = dev.name != "stratix_10" ? 8 : 4;
    perf::loop_info loop;
    loop.name = "cells";
    loop.trip_count = cells;
    loop.entries = static_cast<double>(p.rows);
    loop.initiation_interval = 1;
    loop.speculated_iterations = 2;
    loop.unroll = dev.name != "stratix_10" ? 8 : 4;
    k.loops.push_back(loop);
    return k;
}

}  // namespace detail

timed_region region(Variant v, const perf::device_spec& dev, int size) {
    const params p = params::preset(size);
    timed_region r;
    r.name = std::string("srad/") + to_string(v) + "/size" + std::to_string(size);
    r.include_setup = false;  // timed region excludes one-time setup (warm-up)
    r.transfer_bytes = static_cast<double>(p.cells()) * 4.0 * 2.0 +
                       static_cast<double>(p.iterations) * 8.0;
    r.transfer_calls = 2.0 + static_cast<double>(p.iterations);
    r.syncs = 1.0;
    const double iters = static_cast<double>(p.iterations);
    r.kernels.push_back({detail::stats_reduce(p), iters});
    if (v == Variant::fpga_opt) {
        r.kernels.push_back({detail::stats_srad_st(p, dev), 2.0 * iters});
    } else {
        r.kernels.push_back({detail::stats_srad1(p, v, dev), iters});
        r.kernels.push_back({detail::stats_srad2(p, v, dev), iters});
    }
    return r;
}

std::vector<perf::kernel_stats> fpga_design(const perf::device_spec& dev,
                                            int size) {
    const params p = params::preset(size);
    return {detail::stats_reduce(p), detail::stats_srad_st(p, dev)};
}

std::vector<perf::kernel_stats> fpga_design_accessor_objects(
    const perf::device_spec& dev, int size) {
    const params p = params::preset(size);
    auto k1 = detail::stats_srad1(p, Variant::fpga_base, dev);
    auto k2 = detail::stats_srad2(p, Variant::fpga_base, dev);
    // Eleven accessor objects across the two kernels (Sec. 4).
    k1.pass_accessor_objects = true;
    k2.pass_accessor_objects = true;
    k1.accessor_args = 6;
    k2.accessor_args = 5;
    return {k1, k2};
}

}  // namespace altis::apps::srad
