// Analytic kernel-timing models. One entry point dispatches on device kind:
//  - CPU/GPU: roofline (compute vs memory-bandwidth bound) plus wave/launch
//    latency floors and SIMT divergence penalties.
//  - FPGA: pipelined-datapath model -- initiation interval, SIMD width,
//    compute-unit replication, speculated-iteration waste, barrier drains and
//    local-memory arbitration, bounded by board memory bandwidth, clocked at
//    the Fmax predicted by the resource model.
// These simulators substitute for the paper's physical testbed; see
// DESIGN.md Sec. 2.
#pragma once

#include <span>
#include <vector>

#include "perf/device.hpp"
#include "perf/kernel_stats.hpp"

namespace altis::perf {

/// Simulated execution time of one kernel in nanoseconds. For FPGAs the
/// kernel's own estimated Fmax is used; prefer the explicit-Fmax overload
/// when the kernel is part of a larger design (design Fmax = min over
/// kernels).
[[nodiscard]] double kernel_time_ns(const kernel_stats& k,
                                    const device_spec& dev);

/// FPGA kernel time at an externally-supplied design frequency.
[[nodiscard]] double fpga_kernel_time_ns(const kernel_stats& k,
                                         const device_spec& dev,
                                         double fmax_mhz);

/// Time of a dataflow group: kernels connected by pipes execute
/// concurrently, so the group finishes with its slowest member (Fig. 3's
/// optimized KMeans design). Works for GPU concurrent queues too.
[[nodiscard]] double dataflow_time_ns(std::span<const kernel_stats> kernels,
                                      const device_spec& dev);
[[nodiscard]] double dataflow_time_ns(const std::vector<kernel_stats>& kernels,
                                      const device_spec& dev);

}  // namespace altis::perf
